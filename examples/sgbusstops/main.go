// sgbusstops: a bus-stop panel operator in a Singapore-style network.
//
// Bus-stop billboards see exactly the riders of the routes serving their
// stop, so coverage barely changes with the influence radius λ below the
// stop spacing — one of the paper's findings (Figure 12b). The example
// generates the synthetic SG dataset, shows that λ-insensitivity, and then
// allocates the default market with BLS at each λ.
//
//	go run ./examples/sgbusstops
package main

import (
	"fmt"
	"log"

	mroam "repro"
)

func main() {
	const (
		seed  = 7
		scale = 0.08
	)
	ds, err := mroam.GenerateSG(seed, scale)
	if err != nil {
		log.Fatal(err)
	}
	row := ds.Table5()
	fmt.Printf("SG network: %d bus rides, %d stop panels (avg ride %.1f km, %.0f s)\n\n",
		row.NumTraj, row.NumBillboards, row.AvgDistanceKM, row.AvgTravelSec)

	fmt.Println("λ sensitivity (supply = Σ per-panel influence):")
	for _, lambda := range []float64{50, 100, 150, 200} {
		u, err := ds.BuildUniverse(lambda)
		if err != nil {
			log.Fatal(err)
		}
		advs, err := mroam.GenerateMarket(u,
			mroam.MarketConfig{Alpha: mroam.DefaultAlpha, P: mroam.DefaultP}, seed)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
		if err != nil {
			log.Fatal(err)
		}
		plan := mroam.BLS(inst, mroam.SearchOptions{Restarts: 2, Seed: seed})
		fmt.Printf("  λ=%3.0fm  supply %8d  BLS regret %8.1f  satisfied %d/%d\n",
			lambda, u.TotalSupply(), plan.TotalRegret(),
			plan.SatisfiedCount(), inst.NumAdvertisers())
	}
	fmt.Println("\nBelow ~150m the supply and the regret barely move: riders are either")
	fmt.Println("at the stop (distance 0) or a whole stop away — the paper's Figure 12b.")
}
