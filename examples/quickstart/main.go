// Quickstart: the paper's running example (Tables 1-4 of Section 1),
// solved by hand and by the library's algorithms.
//
// A host owns six billboards with influences {2, 6, 3, 7, 1, 1}; three
// advertisers demand influence (5, 7, 8) for payments ($10, $11, $20).
// Strategy 1 wastes influence on a1 and fails a3; Strategy 2 satisfies
// everyone exactly — zero regret. BLS and the exact solver both find it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mroam "repro"
)

func main() {
	// Each billboard influences its own disjoint block of trajectories,
	// exactly as in the paper's example (influence = audience count).
	influences := []int{2, 6, 3, 7, 1, 1}
	lists := make([]mroam.CoverageList, len(influences))
	next := int32(0)
	for i, n := range influences {
		for j := 0; j < n; j++ {
			lists[i] = append(lists[i], next)
			next++
		}
	}
	u, err := mroam.NewUniverse(int(next), lists)
	if err != nil {
		log.Fatal(err)
	}

	inst, err := mroam.NewInstance(u, []mroam.Advertiser{
		{Demand: 5, Payment: 10}, // a1
		{Demand: 7, Payment: 11}, // a2
		{Demand: 8, Payment: 20}, // a3
	}, mroam.DefaultGamma)
	if err != nil {
		log.Fatal(err)
	}

	// Strategy 1 (Table 3): a1←{o2}, a2←{o4}, a3←{o1,o3,o5,o6}.
	s1 := mroam.NewPlan(inst)
	s1.Assign(1, 0)
	s1.Assign(3, 1)
	for _, b := range []int{0, 2, 4, 5} {
		s1.Assign(b, 2)
	}
	fmt.Printf("Strategy 1: regret %.2f (a3 satisfied: %v)\n", s1.TotalRegret(), s1.Satisfied(2))

	// Strategy 2 (Table 4): a1←{o1,o3}, a2←{o4}, a3←{o2,o5,o6}.
	s2 := mroam.NewPlan(inst)
	s2.Assign(0, 0)
	s2.Assign(2, 0)
	s2.Assign(3, 1)
	for _, b := range []int{1, 4, 5} {
		s2.Assign(b, 2)
	}
	fmt.Printf("Strategy 2: regret %.2f (all satisfied: %v)\n", s2.TotalRegret(), s2.SatisfiedCount() == 3)

	// The algorithms find the zero-regret deployment on their own.
	for _, alg := range mroam.Algorithms(1, 5) {
		plan := alg.Solve(inst)
		fmt.Printf("%-8s → regret %.2f, satisfied %d/3\n",
			alg.Name(), plan.TotalRegret(), plan.SatisfiedCount())
	}

	// And the exhaustive oracle confirms 0 is optimal.
	opt, err := mroam.Exact(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Exact    → regret %.2f (optimal)\n", opt.TotalRegret())
}
