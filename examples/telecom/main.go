// telecom: the paper's General Applicability scenario (Section 1).
//
// A tower company (the host) leases telecommunication towers to mobile
// operators (the advertisers). Each tower reaches a set of subscribers;
// each operator demands a subscriber count and commits a payment. Nothing
// is geographic here — the solvers only need the tower→subscriber coverage
// structure, built directly with mroam.NewUniverse. Regret is exactly the
// paper's: unsatisfied operators pay partially (penalty ratio γ), and
// over-provisioned capacity is opportunity cost.
//
//	go run ./examples/telecom
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	mroam "repro"
)

func main() {
	const (
		towers      = 60
		subscribers = 20000
		operators   = 6
		seed        = 99
	)
	r := rand.New(rand.NewSource(seed))

	// Each tower reaches a contiguous neighborhood of subscribers plus
	// some roaming spillover, so nearby towers overlap — the same
	// structure billboard coverage has.
	lists := make([]mroam.CoverageList, towers)
	for t := range lists {
		center := r.Intn(subscribers)
		reach := 150 + r.Intn(500)
		ids := make([]int32, 0, reach+50)
		for k := -reach / 2; k < reach/2; k++ {
			id := (center + k + subscribers) % subscribers
			ids = append(ids, int32(id))
		}
		for k := 0; k < 50; k++ { // roaming spillover
			ids = append(ids, int32(r.Intn(subscribers)))
		}
		lists[t] = dedup(ids)
	}
	u, err := mroam.NewUniverse(subscribers, lists)
	if err != nil {
		log.Fatal(err)
	}

	// Operators: one incumbent with a big contract, mid-size carriers,
	// and small virtual operators.
	demand := []int64{6000, 3500, 2500, 1500, 800, 400}
	advs := make([]mroam.Advertiser, operators)
	for i := range advs {
		advs[i] = mroam.Advertiser{
			Demand:  demand[i],
			Payment: float64(demand[i]) * (0.9 + 0.2*r.Float64()),
		}
	}
	inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tower company: %d towers, %d subscribers reachable (capacity %d)\n",
		towers, subscribers, u.TotalSupply())
	fmt.Printf("operators: total demand %d (α = %.0f%%)\n\n",
		inst.TotalDemand(), inst.DemandSupplyRatio()*100)

	for _, alg := range mroam.Algorithms(seed, 4) {
		plan := alg.Solve(inst)
		excess, unsat := plan.Breakdown()
		fmt.Printf("%-8s regret %8.1f  (over-provisioned %7.1f, under-served %7.1f)\n",
			alg.Name(), plan.TotalRegret(), excess, unsat)
	}

	best := mroam.BLS(inst, mroam.SearchOptions{Restarts: 6, Seed: seed})
	fmt.Println("\nBLS allocation:")
	for i := 0; i < operators; i++ {
		fmt.Printf("  operator %d: demand %5d, delivered %5d, towers %2d, regret %7.1f\n",
			i, advs[i].Demand, best.Influence(i), best.SetSize(i), best.Regret(i))
	}
}

// dedup sorts and deduplicates subscriber IDs into a valid coverage list.
func dedup(ids []int32) mroam.CoverageList {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return mroam.CoverageList(out)
}
