// dailyops: the operational setting of the paper's introduction — "the
// host needs to deal with multiple advertisers coming every day."
//
// The example simulates 30 days of a billboard market on the synthetic NYC
// city: proposals arrive daily, contracts lock billboards for several days,
// and payments follow Equation 1's business model (full on satisfaction,
// γ-scaled fraction otherwise). It runs the identical market once per
// allocation policy and reports what the host banks under each — turning
// the one-shot regret numbers of the paper's figures into revenue over time.
//
//	go run ./examples/dailyops
package main

import (
	"fmt"
	"log"

	mroam "repro"
)

func main() {
	const seed = 11
	ds, err := mroam.GenerateNYC(seed, 0.12)
	if err != nil {
		log.Fatal(err)
	}
	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		log.Fatal(err)
	}

	cfg := mroam.SimulationConfig{
		Days:             30,
		ArrivalsPerDay:   4,
		ContractMinDays:  3,
		ContractMaxDays:  7,
		DemandFractionLo: 0.08,
		DemandFractionHi: 0.22,
		Gamma:            mroam.DefaultGamma,
		Seed:             seed,
	}

	results, err := mroam.ComparePolicies(u, mroam.Algorithms(seed, 2), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("30-day market on NYC (%d billboards, %d trips)\n\n",
		ds.Billboards.Len(), ds.Trajectories.Len())
	fmt.Println("policy     revenue   cum.regret  satisfied/proposals")
	for _, name := range []string{"G-Order", "G-Global", "ALS", "BLS"} {
		r := results[name]
		fmt.Printf("%-9s %9.0f   %9.0f   %d/%d\n",
			name, r.TotalRevenue, r.TotalRegret, r.TotalSatisfied, r.TotalProposals)
	}

	fmt.Println("\nfirst week under BLS:")
	fmt.Println("day  arrived  satisfied  booked  regret  free/held billboards")
	for _, d := range results["BLS"].Days[:7] {
		fmt.Printf("%3d  %7d  %9d  %6.0f  %6.0f  %d/%d\n",
			d.Day, d.Arrived, d.Satisfied, d.RevenueBooked, d.DayRegret,
			d.FreeBillboards, d.HeldBillboards)
	}
}
