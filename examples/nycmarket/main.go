// nycmarket: a host running a Manhattan-style billboard market.
//
// The example generates the synthetic NYC taxi dataset, builds the
// influence model at λ=100 m, and walks the demand-supply ratio α from a
// quiet market (40%) to an oversubscribed one (120%), comparing all four
// allocation methods. It prints the regret breakdown the paper's stacked
// bars report: when supply is plentiful the regret is wasted (excessive)
// influence; when demand outstrips supply the unsatisfied penalty takes
// over, and a careful allocator (BLS) is worth several times the greedy.
//
//	go run ./examples/nycmarket
package main

import (
	"fmt"
	"log"

	mroam "repro"
)

func main() {
	const (
		seed  = 42
		scale = 0.15 // keep the example snappy; raise for larger markets
	)
	ds, err := mroam.GenerateNYC(seed, scale)
	if err != nil {
		log.Fatal(err)
	}
	row := ds.Table5()
	fmt.Printf("NYC market: %d taxi trips, %d billboards (avg trip %.1f km, %.0f s)\n\n",
		row.NumTraj, row.NumBillboards, row.AvgDistanceKM, row.AvgTravelSec)

	u, err := ds.BuildUniverse(mroam.DefaultLambda)
	if err != nil {
		log.Fatal(err)
	}

	for _, alpha := range []float64{0.4, 0.8, 1.2} {
		advs, err := mroam.GenerateMarket(u, mroam.MarketConfig{Alpha: alpha, P: mroam.DefaultP}, seed)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := mroam.NewInstance(u, advs, mroam.DefaultGamma)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("α = %.0f%% — %d advertisers, total demand %d vs supply %d\n",
			alpha*100, inst.NumAdvertisers(), inst.TotalDemand(), u.TotalSupply())
		for _, alg := range mroam.Algorithms(seed, 3) {
			plan := alg.Solve(inst)
			excess, unsat := plan.Breakdown()
			fmt.Printf("  %-8s regret %8.1f  (waste %7.1f, unsatisfied %7.1f, satisfied %d/%d)\n",
				alg.Name(), plan.TotalRegret(), excess, unsat,
				plan.SatisfiedCount(), inst.NumAdvertisers())
		}
		fmt.Println()
	}
}
