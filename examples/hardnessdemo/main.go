// hardnessdemo: the paper's NP-hardness proof (§4), executed.
//
// MROAM's hardness comes from a reduction from numerical 3-dimensional
// matching (N3DM): three multisets X, Y, Z of n integers must be split into
// n triples each summing to a bound b. The reduction builds 3n billboards
// (influences c+x, 3c+y, 9c+z over disjoint audiences) and n advertisers
// demanding b+13c each at γ=0; a zero-regret deployment exists iff a
// perfect matching does. This example generates a YES instance, reduces it,
// solves the MROAM side exactly, and reads the matching back off the
// zero-regret plan.
//
//	go run ./examples/hardnessdemo
package main

import (
	"fmt"
	"log"

	mroam "repro"
)

func main() {
	p, err := mroam.RandomN3DM(5, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N3DM instance (b = %d):\n  X = %v\n  Y = %v\n  Z = %v\n\n", p.B, p.X, p.Y, p.Z)

	inst, err := mroam.ReduceN3DM(p)
	if err != nil {
		log.Fatal(err)
	}
	u := inst.Universe()
	fmt.Printf("reduced MROAM instance: %d billboards, %d advertisers, demand %d each, γ=0\n",
		u.NumBillboards(), inst.NumAdvertisers(), inst.Advertiser(0).Demand)

	opt, err := mroam.Exact(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum regret: %g\n\n", opt.TotalRegret())

	if opt.TotalRegret() != 0 {
		fmt.Println("nonzero optimum → the N3DM instance has NO perfect matching")
		return
	}
	m, err := mroam.ExtractMatching(p, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("zero regret → perfect matching recovered from the deployment plan:")
	for _, tr := range m {
		fmt.Printf("  %d + %d + %d = %d\n", p.X[tr.XI], p.Y[tr.YI], p.Z[tr.ZI], p.B)
	}
	fmt.Println("\nDeciding zero-regret MROAM therefore decides N3DM (NP-complete),")
	fmt.Println("so MROAM is NP-hard — and NP-hard to approximate within any constant.")
}
