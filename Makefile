# Development entry points for the MROAM reproduction.

GO ?= go

.PHONY: all build test test-race vet fmt bench repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel restart engine must stay race-clean at any worker count.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# One benchmark per table/figure of the paper plus ablations; see
# EXPERIMENTS.md for a recorded run. -run=^$ skips the unit tests so the
# suite measures only benchmark iterations.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Regenerate the full evaluation (text + CSV) into results/.
repro:
	mkdir -p results
	$(GO) run ./cmd/mroam exp -all -scale 0.25 -seed 42 -restarts 3 \
		-csv results/figures.csv | tee results/figures.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nycmarket
	$(GO) run ./examples/sgbusstops
	$(GO) run ./examples/telecom
	$(GO) run ./examples/dailyops
	$(GO) run ./examples/hardnessdemo

clean:
	$(GO) clean ./...
