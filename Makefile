# Development entry points for the MROAM reproduction.

GO ?= go

.PHONY: all build test vet fmt bench repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# One benchmark per table/figure of the paper plus ablations; see
# EXPERIMENTS.md for a recorded run.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full evaluation (text + CSV) into results/.
repro:
	mkdir -p results
	$(GO) run ./cmd/mroam exp -all -scale 0.25 -seed 42 -restarts 3 \
		-csv results/figures.csv | tee results/figures.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nycmarket
	$(GO) run ./examples/sgbusstops
	$(GO) run ./examples/telecom
	$(GO) run ./examples/dailyops
	$(GO) run ./examples/hardnessdemo

clean:
	$(GO) clean ./...
