# Development entry points for the MROAM reproduction.

GO ?= go

.PHONY: all build test test-race vet fmt lint bench bench-json bench-serving scale-smoke repro examples clean check fuzz-smoke trace-demo catalog-demo cache-demo load-smoke trace-smoke variant-smoke churn-smoke

all: build test

# The full pre-merge gate: build, lint (format + vet), the race-detector
# suite, a short smoke run of every fuzz target, the serving demos
# (multi-instance catalog, solve-result cache, reproducible load harness),
# and the paper-scale coverage smoke.
check: build lint test-race fuzz-smoke catalog-demo cache-demo load-smoke trace-smoke variant-smoke churn-smoke scale-smoke

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so inter-test state dependencies
# cannot hide; failures print the seed to reproduce.
test:
	$(GO) test -shuffle=on ./...

# The parallel restart engine must stay race-clean at any worker count.
test-race:
	$(GO) test -race -shuffle=on ./...

# Run each native fuzz target for 10s against its checked-in seed corpus
# (go test accepts one -fuzz pattern per package invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPlanRoundTrip$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSwapDeltaMerge$$' -fuzztime 10s ./internal/coverage
	$(GO) test -run '^$$' -fuzz '^FuzzCompressedContainers$$' -fuzztime 10s ./internal/bitset

vet:
	$(GO) vet ./...

# lint fails if any file is not gofmt-clean, then runs go vet; no output
# means clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# trace-demo runs one traced solve and asserts the JSONL trajectory is
# non-empty and ends with a done record — a smoke test for the tracing
# pipeline an operator can run before wiring dashboards to it.
trace-demo:
	$(GO) run ./cmd/mroam solve -scale 0.05 -alg BLS -restarts 4 -workers 4 \
		-trace /tmp/mroam-trace.jsonl
	@test -s /tmp/mroam-trace.jsonl || { echo "trace-demo: empty trace"; exit 1; }
	@tail -1 /tmp/mroam-trace.jsonl | grep -q '"event":"done"' \
		|| { echo "trace-demo: missing done record"; exit 1; }
	@wc -l < /tmp/mroam-trace.jsonl | xargs echo "trace-demo: OK, events:"

# catalog-demo boots the daemon with the two-instance fleet file, solves
# against each named instance, and hot-swaps one over the admin API — an
# end-to-end smoke test of multi-instance serving an operator can run
# before deploying a fleet config.
CATALOG_DEMO_ADDR ?= 127.0.0.1:18321
catalog-demo:
	@$(GO) build -o /tmp/mroamd-demo ./cmd/mroamd
	@/tmp/mroamd-demo -addr $(CATALOG_DEMO_ADDR) -instances testdata/catalog-demo.json \
		-workers 2 > /tmp/mroamd-demo.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	up=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(CATALOG_DEMO_ADDR)/healthz >/dev/null && { up=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$up -eq 1 ] || { echo "catalog-demo: daemon never came up"; cat /tmp/mroamd-demo.log; exit 1; }; \
	curl -s -d '{"instance":"nyc","algorithm":"G-Order"}' http://$(CATALOG_DEMO_ADDR)/solve \
		| grep -q '"instance": "nyc"' || { echo "catalog-demo: nyc solve failed"; exit 1; }; \
	curl -s -d '{"instance":"sg","algorithm":"G-Order"}' http://$(CATALOG_DEMO_ADDR)/solve \
		| grep -q '"instance": "sg"' || { echo "catalog-demo: sg solve failed"; exit 1; }; \
	curl -s -X PUT -d '{"city":"NYC","scale":0.02,"seed":9,"alpha":2.0,"p":0.1}' \
		http://$(CATALOG_DEMO_ADDR)/instances/nyc \
		| grep -q '"generation": 3' || { echo "catalog-demo: nyc hot-swap failed"; exit 1; }; \
	curl -s -d '{"instance":"nyc","algorithm":"G-Order"}' http://$(CATALOG_DEMO_ADDR)/solve \
		| grep -q '"generation": 3' || { echo "catalog-demo: post-swap solve failed"; exit 1; }; \
	echo "catalog-demo: OK (2 instances served, 1 hot-swapped)"

# cache-demo boots the daemon with the solve-result cache enabled, runs the
# same solve twice, and asserts the second is answered from cache — the
# smoke test an operator can run before turning -cache-entries on in a
# deployment.
CACHE_DEMO_ADDR ?= 127.0.0.1:18341
cache-demo:
	@$(GO) build -o /tmp/mroamd-cache-demo ./cmd/mroamd
	@/tmp/mroamd-cache-demo -addr $(CACHE_DEMO_ADDR) -scale 0.02 -workers 2 \
		-cache-entries 64 > /tmp/mroamd-cache-demo.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	up=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(CACHE_DEMO_ADDR)/healthz >/dev/null && { up=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$up -eq 1 ] || { echo "cache-demo: daemon never came up"; cat /tmp/mroamd-cache-demo.log; exit 1; }; \
	first=$$(curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7}' http://$(CACHE_DEMO_ADDR)/solve); \
	echo "$$first" | grep -q '"total_regret"' || { echo "cache-demo: first solve failed: $$first"; exit 1; }; \
	echo "$$first" | grep -q '"cached"' && { echo "cache-demo: first solve claims cached"; exit 1; }; \
	second=$$(curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7}' http://$(CACHE_DEMO_ADDR)/solve); \
	echo "$$second" | grep -q '"cached": true' || { echo "cache-demo: repeat not cached: $$second"; exit 1; }; \
	curl -s http://$(CACHE_DEMO_ADDR)/metrics \
		| grep -q 'mroamd_solve_cache_events_total{event="hit"} 1' \
		|| { echo "cache-demo: hit not counted"; exit 1; }; \
	echo "cache-demo: OK (repeat solve served from cache)"

# load-smoke is the serving-layer reproducibility gate in `check`: the same
# seeded 2-second workload is replayed twice through mroamload's bench mode
# (each replay boots a fresh mroamd per admission policy). The two recorded
# request traces must be byte-identical — the harness determinism contract —
# and the report must carry a well-formed counterfactual-regret summary.
load-smoke:
	@$(GO) build -o /tmp/mroamd-load ./cmd/mroamd
	@$(GO) build -o /tmp/mroamload ./cmd/mroamload
	@/tmp/mroamload -mroamd /tmp/mroamd-load -policies shed,deadline \
		-seed 7 -duration 2s -rate 40 -algorithms G-Order -deadlines 0,40 \
		-mroamd-args "-scale 0.02 -workers 2 -queue 2" \
		-trace-out /tmp/mroam-load-1.jsonl -o /tmp/mroam-load-1.json
	@/tmp/mroamload -mroamd /tmp/mroamd-load -policies shed,deadline \
		-seed 7 -duration 2s -rate 40 -algorithms G-Order -deadlines 0,40 \
		-mroamd-args "-scale 0.02 -workers 2 -queue 2" \
		-trace-out /tmp/mroam-load-2.jsonl -o /tmp/mroam-load-2.json
	@cmp -s /tmp/mroam-load-1.jsonl /tmp/mroam-load-2.jsonl \
		|| { echo "load-smoke: same seed produced different traces"; exit 1; }
	@grep -q '"counterfactuals"' /tmp/mroam-load-1.json \
		&& grep -q '"regret"' /tmp/mroam-load-1.json \
		&& grep -q '"alternative": "fair"' /tmp/mroam-load-1.json \
		|| { echo "load-smoke: report missing counterfactual summary"; exit 1; }
	@wc -l < /tmp/mroam-load-1.jsonl | xargs echo "load-smoke: OK, byte-identical traces, requests:"

# trace-smoke is the request-tracing gate in `check`: boot mroamd with the
# span store enabled, replay a short seeded workload through mroamload with
# -trace-check, and require that the slowest trace fetched back from
# GET /debug/traces/{id} validates — a single request root covering at least
# 4 lifecycle phases whose durations sum to the root within tolerance. The
# report must also carry the Server-Timing phase attribution and the
# daemon's /metrics must expose the new phase histograms.
TRACE_SMOKE_ADDR ?= 127.0.0.1:18361
trace-smoke:
	@$(GO) build -o /tmp/mroamd-trace ./cmd/mroamd
	@$(GO) build -o /tmp/mroamload-trace ./cmd/mroamload
	@/tmp/mroamd-trace -addr $(TRACE_SMOKE_ADDR) -scale 0.02 -workers 2 -queue 4 \
		-trace-store 256 -trace-keep-slowest 1 > /tmp/mroamd-trace.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	up=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(TRACE_SMOKE_ADDR)/healthz >/dev/null && { up=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$up -eq 1 ] || { echo "trace-smoke: daemon never came up"; cat /tmp/mroamd-trace.log; exit 1; }; \
	/tmp/mroamload-trace -target http://$(TRACE_SMOKE_ADDR) \
		-seed 7 -duration 500ms -rate 40 -algorithms G-Order \
		-trace-check 1 -o /tmp/mroam-trace-smoke.json \
		|| { echo "trace-smoke: replay or trace validation failed"; exit 1; }; \
	grep -q '"server_phases"' /tmp/mroam-trace-smoke.json \
		&& grep -q '"trace_checks"' /tmp/mroam-trace-smoke.json \
		|| { echo "trace-smoke: report missing phase attribution"; exit 1; }; \
	curl -s http://$(TRACE_SMOKE_ADDR)/metrics \
		| grep -q 'mroamd_solve_phase_seconds_count{phase="solve"}' \
		|| { echo "trace-smoke: phase histogram missing from /metrics"; exit 1; }; \
	grep -A1 '"trace_checks"' /tmp/mroam-trace-smoke.json | tail -1 | sed 's/^ *//;s/"//g'; \
	echo "trace-smoke: OK (slowest trace validated end-to-end)"

# variant-smoke is the regret-model gate in `check`: boot the daemon on the
# base+zonal fleet file, solve the zonal instance with BLS and G-Global and
# require the responses to echo the model kind; validate the same zonal
# build's plans against the per-zone caps through `mroam plan` (whose
# Plan.Validate consults the zonal model — the fixture cap 10 demonstrably
# binds, see TestBuildZonal); and replay the unnamed base solve against the
# pre-refactor golden, which must match byte-for-byte (latency aside) —
# proof the model seam left base output untouched.
VARIANT_SMOKE_ADDR ?= 127.0.0.1:18371
variant-smoke:
	@$(GO) build -o /tmp/mroamd-variant ./cmd/mroamd
	@$(GO) build -o /tmp/mroam-variant ./cmd/mroam
	@/tmp/mroam-variant plan -city NYC -scale 0.02 -seed 5 -alpha 2.0 -p 0.1 \
		-model zonal -zone-cap 10 -alg BLS -restarts 2 -top 0 \
		| grep -q 'zonal caps hold: cap 10' \
		|| { echo "variant-smoke: BLS zonal plan failed cap validation"; exit 1; }
	@/tmp/mroam-variant plan -city NYC -scale 0.02 -seed 5 -alpha 2.0 -p 0.1 \
		-model zonal -zone-cap 10 -alg G-Global -top 0 \
		| grep -q 'zonal caps hold: cap 10' \
		|| { echo "variant-smoke: G-Global zonal plan failed cap validation"; exit 1; }
	@/tmp/mroamd-variant -addr $(VARIANT_SMOKE_ADDR) -instances testdata/variant-demo.json \
		-workers 2 > /tmp/mroamd-variant.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	up=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(VARIANT_SMOKE_ADDR)/healthz >/dev/null && { up=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$up -eq 1 ] || { echo "variant-smoke: daemon never came up"; cat /tmp/mroamd-variant.log; exit 1; }; \
	curl -s -d '{"instance":"zonal","algorithm":"BLS","restarts":2,"seed":7}' \
		http://$(VARIANT_SMOKE_ADDR)/solve | grep -q '"model": "zonal"' \
		|| { echo "variant-smoke: BLS response missing zonal model echo"; exit 1; }; \
	curl -s -d '{"instance":"zonal","algorithm":"G-Global"}' \
		http://$(VARIANT_SMOKE_ADDR)/solve | grep -q '"model": "zonal"' \
		|| { echo "variant-smoke: G-Global response missing zonal model echo"; exit 1; }; \
	curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7}' http://$(VARIANT_SMOKE_ADDR)/solve \
		| sed 's/"latency_ms": [0-9.eE+-]*/"latency_ms": 0/' > /tmp/mroam-variant-base.json; \
	cmp -s /tmp/mroam-variant-base.json testdata/variant-base-solve.golden \
		|| { echo "variant-smoke: base solve drifted from pre-refactor golden:"; \
		     diff testdata/variant-base-solve.golden /tmp/mroam-variant-base.json; exit 1; }; \
	echo "variant-smoke: OK (zonal caps hold, model echoed, base output byte-identical)"

# churn-smoke is the delta-solve gate in `check`: boot mroamd with the solve
# cache on, establish an incumbent plan, PATCH the live market (remove one
# advertiser, revise another, admit a new one), and require (a) the repeat
# pre-patch solve was answered from cache, (b) the PATCH invalidated that
# entry — the post-patch plain solve is a miss, (c) a "warm_start": true
# solve of the patched market reports warm_started, and (d) the warm
# response is byte-identical to the cold solve of the same patched market
# once volatile fields (latency, evals) are normalized away — the
# end-to-end delta-solve contract of DESIGN.md §16 over HTTP.
CHURN_SMOKE_ADDR ?= 127.0.0.1:18381
churn-smoke:
	@$(GO) build -o /tmp/mroamd-churn ./cmd/mroamd
	@/tmp/mroamd-churn -addr $(CHURN_SMOKE_ADDR) -scale 0.02 -workers 2 \
		-cache-entries 64 > /tmp/mroamd-churn.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	up=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(CHURN_SMOKE_ADDR)/healthz >/dev/null && { up=1; break; }; \
		sleep 0.2; \
	done; \
	[ $$up -eq 1 ] || { echo "churn-smoke: daemon never came up"; cat /tmp/mroamd-churn.log; exit 1; }; \
	first=$$(curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7}' http://$(CHURN_SMOKE_ADDR)/solve); \
	echo "$$first" | grep -q '"total_regret"' || { echo "churn-smoke: incumbent solve failed: $$first"; exit 1; }; \
	curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7}' http://$(CHURN_SMOKE_ADDR)/solve \
		| grep -q '"cached": true' || { echo "churn-smoke: pre-patch repeat not served from cache"; exit 1; }; \
	curl -s -X PATCH http://$(CHURN_SMOKE_ADDR)/instances/default/advertisers \
		-d '{"ops":[{"op":"remove","advertiser":3},{"op":"revise","advertiser":0,"demand":40},{"op":"add","demand":25,"payment":25}]}' \
		| grep -q '"generation": 2' || { echo "churn-smoke: patch failed"; exit 1; }; \
	curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7,"warm_start":true,"include_assignments":true}' \
		http://$(CHURN_SMOKE_ADDR)/solve > /tmp/mroam-churn-warm.json; \
	grep -q '"warm_started": true' /tmp/mroam-churn-warm.json \
		|| { echo "churn-smoke: post-patch solve did not warm-start"; cat /tmp/mroam-churn-warm.json; exit 1; }; \
	cold=$$(curl -s -d '{"algorithm":"BLS","restarts":2,"seed":7,"include_assignments":true}' \
		http://$(CHURN_SMOKE_ADDR)/solve); \
	echo "$$cold" | grep -q '"cached"' && { echo "churn-smoke: PATCH left a stale cache entry"; exit 1; }; \
	printf '%s\n' "$$cold" > /tmp/mroam-churn-cold.json; \
	for f in /tmp/mroam-churn-warm.json /tmp/mroam-churn-cold.json; do \
		sed -e 's/"latency_ms": [0-9.eE+-]*/"latency_ms": 0/' \
		    -e 's/"evals": [0-9]*/"evals": 0/' \
		    -e '/"warm_started"/d' -e '/"frozen_advertisers"/d' \
		    $$f > $$f.norm; \
	done; \
	cmp -s /tmp/mroam-churn-warm.json.norm /tmp/mroam-churn-cold.json.norm \
		|| { echo "churn-smoke: warm plan drifted from cold solve of the patched market:"; \
		     diff /tmp/mroam-churn-cold.json.norm /tmp/mroam-churn-warm.json.norm; exit 1; }; \
	echo "churn-smoke: OK (cache hit pre-patch, miss after invalidation, warm == cold on the patched market)"

# One benchmark per table/figure of the paper plus ablations; see
# EXPERIMENTS.md for a recorded run. -run=^$ skips the unit tests so the
# suite measures only benchmark iterations.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-json regenerates BENCH_coverage.json — the recorded evidence for
# the compressed coverage substrate (build/compress/solve times, memory,
# compression ratio at 50k/500k/1.7M trajectories) — and BENCH_serving.json
# via bench-serving. The 1.7M rung takes a few minutes; the dense BLS
# baseline runs up to 500k.
bench-json: bench-serving
	$(GO) run ./cmd/mroambench -sizes 50000,500000,1700000 -dense-max 500000 \
		-out BENCH_coverage.json

# bench-serving regenerates BENCH_serving.json — the recorded serving-layer
# evidence: one seeded 2-second burst replay per admission policy (shed,
# deadline, fair) against a freshly booted mroamd, each with outcome and
# latency distributions plus the counterfactual-regret summary. The restart
# budget is set high enough that BLS solves hold a worker for tens of
# milliseconds; combined with the 4x burst peaks this genuinely overloads
# the 2-worker pool, so the recorded runs show sheds and non-zero regret
# rather than an idle server.
bench-serving:
	$(GO) build -o /tmp/mroamd-bench ./cmd/mroamd
	$(GO) run ./cmd/mroamload -mroamd /tmp/mroamd-bench -policies shed,deadline,fair \
		-seed 42 -duration 2s -rate 120 -arrival burst -algorithms G-Order,BLS \
		-deadlines 0,25,100 -restarts 400 \
		-mroamd-args "-scale 0.02 -workers 2 -queue 4" -o BENCH_serving.json

# scale-smoke is the paper-scale regression gate in `check`: stream-build a
# 500k-trajectory NYC universe, corridor-compress it, and finish a
# 1-restart BLS solve — all inside one wall-clock deadline.
scale-smoke:
	$(GO) run ./cmd/mroambench -sizes 500000 -dense-max 0 -deadline 5m \
		-out /tmp/mroam-scale-smoke.json
	@grep -q '"compressed_solve_ms"' /tmp/mroam-scale-smoke.json \
		|| { echo "scale-smoke: no solve recorded"; exit 1; }
	@echo "scale-smoke: OK"

# Regenerate the full evaluation (text + CSV) into results/.
repro:
	mkdir -p results
	$(GO) run ./cmd/mroam exp -all -scale 0.25 -seed 42 -restarts 3 \
		-csv results/figures.csv | tee results/figures.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nycmarket
	$(GO) run ./examples/sgbusstops
	$(GO) run ./examples/telecom
	$(GO) run ./examples/dailyops
	$(GO) run ./examples/hardnessdemo

clean:
	$(GO) clean ./...
