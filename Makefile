# Development entry points for the MROAM reproduction.

GO ?= go

.PHONY: all build test test-race vet fmt lint bench repro examples clean check fuzz-smoke trace-demo

all: build test

# The full pre-merge gate: build, lint (format + vet), the race-detector
# suite, and a short smoke run of every fuzz target.
check: build lint test-race fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel restart engine must stay race-clean at any worker count.
test-race:
	$(GO) test -race ./...

# Run each native fuzz target for 10s against its checked-in seed corpus
# (go test accepts one -fuzz pattern per package invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPlanRoundTrip$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSwapDeltaMerge$$' -fuzztime 10s ./internal/coverage

vet:
	$(GO) vet ./...

# lint fails if any file is not gofmt-clean, then runs go vet; no output
# means clean.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# trace-demo runs one traced solve and asserts the JSONL trajectory is
# non-empty and ends with a done record — a smoke test for the tracing
# pipeline an operator can run before wiring dashboards to it.
trace-demo:
	$(GO) run ./cmd/mroam solve -scale 0.05 -alg BLS -restarts 4 -workers 4 \
		-trace /tmp/mroam-trace.jsonl
	@test -s /tmp/mroam-trace.jsonl || { echo "trace-demo: empty trace"; exit 1; }
	@tail -1 /tmp/mroam-trace.jsonl | grep -q '"event":"done"' \
		|| { echo "trace-demo: missing done record"; exit 1; }
	@wc -l < /tmp/mroam-trace.jsonl | xargs echo "trace-demo: OK, events:"

# One benchmark per table/figure of the paper plus ablations; see
# EXPERIMENTS.md for a recorded run. -run=^$ skips the unit tests so the
# suite measures only benchmark iterations.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Regenerate the full evaluation (text + CSV) into results/.
repro:
	mkdir -p results
	$(GO) run ./cmd/mroam exp -all -scale 0.25 -seed 42 -restarts 3 \
		-csv results/figures.csv | tee results/figures.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nycmarket
	$(GO) run ./examples/sgbusstops
	$(GO) run ./examples/telecom
	$(GO) run ./examples/dailyops
	$(GO) run ./examples/hardnessdemo

clean:
	$(GO) clean ./...
