package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
)

// WriteFigureMarkdown renders a figure as a GitHub-flavored markdown table,
// the format EXPERIMENTS.md uses to record reproduction runs.
func WriteFigureMarkdown(w io.Writer, fig experiment.Figure) error {
	if _, err := fmt.Fprintf(w, "**%s** — %s\n\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| point | algorithm | total regret | excess % | unsat % | satisfied | runtime |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---:|---:|---:|---:|---:|"); err != nil {
		return err
	}
	for _, pt := range fig.Points {
		for _, m := range pt.Metrics {
			if _, err := fmt.Fprintf(w, "| %s | %s | %.1f | %.1f | %.1f | %d/%d | %.3fs |\n",
				mdEscape(pt.Label), m.Algorithm, m.TotalRegret,
				m.ExcessPct(), m.UnsatisfiedPct(),
				m.SatisfiedCount, m.NumAdvertisers, m.Runtime.Seconds()); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteGapMarkdown renders the approximation-gap study as a markdown table.
func WriteGapMarkdown(w io.Writer, rows []experiment.GapRow) error {
	if _, err := fmt.Fprintln(w, "| algorithm | mean ratio to optimum | worst ratio | exact hits |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---:|---:|---:|"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %.3f | %.3f | %d/%d |\n",
			row.Algorithm, row.MeanRatio, row.WorstRatio, row.OptimalHits, row.Instances); err != nil {
			return err
		}
	}
	return nil
}

// mdEscape protects table-breaking characters in labels.
func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
