package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
)

func sampleFigure() experiment.Figure {
	return experiment.Figure{
		ID:    "fig2",
		Title: "Regret vs α (NYC, p=1%)",
		Points: []experiment.Point{
			{
				Label: "α=40%",
				Metrics: []experiment.Metrics{
					{Algorithm: "G-Order", TotalRegret: 100, Excess: 80, Unsatisfied: 20,
						SatisfiedCount: 8, NumAdvertisers: 10, Runtime: 12 * time.Millisecond, Evals: 1000},
					{Algorithm: "BLS", TotalRegret: 20, Excess: 20, Unsatisfied: 0,
						SatisfiedCount: 10, NumAdvertisers: 10, Runtime: 150 * time.Millisecond, Evals: 50000},
				},
			},
			{
				Label: "α=120%",
				Metrics: []experiment.Metrics{
					{Algorithm: "G-Order", TotalRegret: 500, Excess: 50, Unsatisfied: 450,
						SatisfiedCount: 2, NumAdvertisers: 10, Runtime: 20 * time.Millisecond, Evals: 2000},
					{Algorithm: "BLS", TotalRegret: 200, Excess: 10, Unsatisfied: 190,
						SatisfiedCount: 6, NumAdvertisers: 10, Runtime: 300 * time.Millisecond, Evals: 90000},
				},
			},
		},
	}
}

func TestWriteFigure(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigure(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig2", "α=40%", "α=120%", "G-Order", "BLS", "satisfied 10/10", "excess 80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The largest bar (500) should be full width; the 20 bar tiny.
	lines := strings.Split(out, "\n")
	var fullBar string
	for _, l := range lines {
		if strings.Contains(l, "500.0") {
			fullBar = l
		}
	}
	if strings.Count(fullBar, "#")+strings.Count(fullBar, "=") != barWidth {
		t.Errorf("max bar not full width: %q", fullBar)
	}
}

func TestWriteFigureZeroRegret(t *testing.T) {
	fig := experiment.Figure{
		ID:    "figZ",
		Title: "all zero",
		Points: []experiment.Point{{
			Label: "x",
			Metrics: []experiment.Metrics{
				{Algorithm: "BLS", TotalRegret: 0, SatisfiedCount: 5, NumAdvertisers: 5},
			},
		}},
	}
	var sb strings.Builder
	if err := WriteFigure(&sb, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), strings.Repeat(".", barWidth)) {
		t.Error("zero regret should render an empty bar")
	}
}

func TestWriteRuntimeFigure(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeFigure(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"runtime", "evals", "0.012s", "90000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureCSV(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("%d lines, want 5:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "figure,point,algorithm") {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[1], "fig2,α=40%,G-Order,100.0000") {
		t.Errorf("bad first row %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape(plain) = %q", got)
	}
	if got := csvEscape(`a,b"c`); got != `"a,b""c"` {
		t.Errorf("csvEscape quoted = %q", got)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", "40%")
	tbl.AddRow("a-very-long-name", "1")
	tbl.AddRow("short") // missing cell
	var sb strings.Builder
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
	// Columns aligned: "value" of row 1 starts at the same offset as the
	// header's "value".
	if strings.Index(lines[0], "value") != strings.Index(lines[2], "40%") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestStackedBarComposition(t *testing.T) {
	m := experiment.Metrics{TotalRegret: 100, Excess: 25, Unsatisfied: 75}
	bar := stackedBar(m, 100)
	if len([]rune(bar)) != barWidth {
		t.Fatalf("bar width %d, want %d", len(bar), barWidth)
	}
	hashes := strings.Count(bar, "#")
	eqs := strings.Count(bar, "=")
	if hashes+eqs != barWidth {
		t.Errorf("full-scale bar should fill the width: %q", bar)
	}
	if hashes != 30 { // 75% of 40
		t.Errorf("unsat span = %d, want 30", hashes)
	}
}

func TestWriteFigureMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureMarkdown(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**fig2**", "| point |", "| α=40% | G-Order | 100.0 |", "| 8/10 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGapMarkdown(t *testing.T) {
	rows := []experiment.GapRow{
		{Algorithm: "BLS", MeanRatio: 1.04, WorstRatio: 1.2, OptimalHits: 7, Instances: 10},
	}
	var sb strings.Builder
	if err := WriteGapMarkdown(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| BLS | 1.040 | 1.200 | 7/10 |") {
		t.Errorf("gap markdown wrong:\n%s", sb.String())
	}
}

func TestMDEscape(t *testing.T) {
	if got := mdEscape("a|b"); got != `a\|b` {
		t.Errorf("mdEscape = %q", got)
	}
}

func TestWriteFigureSVG(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureSVG(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "fig2", "G-Order", "BLS", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(out, "<rect") < 8 { // 2 legend + 2 per bar × 4 bars minimum
		t.Errorf("too few rects: %d", strings.Count(out, "<rect"))
	}
}

func TestWriteFigureSVGEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureSVG(&sb, experiment.Figure{ID: "x"}); err == nil {
		t.Fatal("empty figure accepted")
	}
}

func TestSVGEscape(t *testing.T) {
	if got := svgEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("svgEscape = %q", got)
	}
}
