// Package report renders experiment results as aligned text tables, ASCII
// stacked-bar "figures" mirroring the paper's plots, and CSV for external
// plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
)

// barWidth is the width of the ASCII stacked bars in characters.
const barWidth = 40

// WriteFigure renders one figure as an ASCII stacked-bar chart: one bar per
// (point, algorithm) pair, scaled to the figure's maximum total regret.
// The '#' span is the unsatisfied-penalty component and the '=' span the
// excessive-influence component, with the two percentages annotated after
// the bar exactly like the numbers atop the paper's stacked bars.
func WriteFigure(w io.Writer, fig experiment.Figure) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	maxRegret := 0.0
	algWidth := 0
	for _, pt := range fig.Points {
		for _, m := range pt.Metrics {
			if m.TotalRegret > maxRegret {
				maxRegret = m.TotalRegret
			}
			if len(m.Algorithm) > algWidth {
				algWidth = len(m.Algorithm)
			}
		}
	}
	for _, pt := range fig.Points {
		if _, err := fmt.Fprintf(w, "  %s\n", pt.Label); err != nil {
			return err
		}
		for _, m := range pt.Metrics {
			bar := stackedBar(m, maxRegret)
			if _, err := fmt.Fprintf(w, "    %-*s %s %12.1f  (excess %4.1f%%, unsat %4.1f%%, satisfied %d/%d)\n",
				algWidth, m.Algorithm, bar, m.TotalRegret,
				m.ExcessPct(), m.UnsatisfiedPct(), m.SatisfiedCount, m.NumAdvertisers); err != nil {
				return err
			}
		}
	}
	return nil
}

// stackedBar renders one metrics row as a fixed-width two-component bar.
func stackedBar(m experiment.Metrics, maxRegret float64) string {
	if maxRegret <= 0 {
		return strings.Repeat(".", barWidth)
	}
	total := int(m.TotalRegret / maxRegret * barWidth)
	if total > barWidth {
		total = barWidth
	}
	unsat := 0
	if m.TotalRegret > 0 {
		unsat = int(m.Unsatisfied / m.TotalRegret * float64(total))
	}
	excess := total - unsat
	return strings.Repeat("#", unsat) + strings.Repeat("=", excess) +
		strings.Repeat(".", barWidth-total)
}

// WriteRuntimeFigure renders an efficiency figure: wall-clock time and
// marginal-evaluation counts per method, formatted as a table (the paper's
// Figures 8-9 are log-scale line plots; a table carries the same ordering
// information).
func WriteRuntimeFigure(w io.Writer, fig experiment.Figure) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	tbl := NewTable("point", "algorithm", "runtime", "evals")
	for _, pt := range fig.Points {
		for _, m := range pt.Metrics {
			tbl.AddRow(pt.Label, m.Algorithm,
				fmt.Sprintf("%.3fs", m.Runtime.Seconds()),
				fmt.Sprintf("%d", m.Evals))
		}
	}
	return tbl.Write(w)
}

// WriteFigureCSV emits the figure's raw numbers as CSV with one row per
// (point, algorithm).
func WriteFigureCSV(w io.Writer, fig experiment.Figure) error {
	if _, err := fmt.Fprintln(w, "figure,point,algorithm,total_regret,excess,unsatisfied,excess_pct,unsat_pct,satisfied,advertisers,runtime_seconds,evals"); err != nil {
		return err
	}
	for _, pt := range fig.Points {
		for _, m := range pt.Metrics {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%.4f,%.4f,%.4f,%.2f,%.2f,%d,%d,%.6f,%d\n",
				fig.ID, csvEscape(pt.Label), m.Algorithm,
				m.TotalRegret, m.Excess, m.Unsatisfied,
				m.ExcessPct(), m.UnsatisfiedPct(),
				m.SatisfiedCount, m.NumAdvertisers,
				m.Runtime.Seconds(), m.Evals); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvEscape quotes a field if it contains a comma or quote.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Table is a simple aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
