package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
)

// WriteFigureSVG renders a figure as a standalone SVG stacked-bar chart in
// the style of the paper's plots: one bar group per point, one bar per
// method, the unsatisfied-penalty component stacked under the
// excessive-influence component, with the two percentages printed above
// each bar. Pure stdlib, no fonts beyond SVG defaults — drop the file into
// a browser or a README.
func WriteFigureSVG(w io.Writer, fig experiment.Figure) error {
	const (
		barW      = 26  // bar width in px
		barGap    = 6   // gap between bars of a group
		groupGap  = 34  // gap between groups
		plotH     = 260 // plot area height
		marginL   = 64
		marginTop = 56
		marginBot = 46
	)
	nAlgs := 0
	maxRegret := 0.0
	for _, pt := range fig.Points {
		if len(pt.Metrics) > nAlgs {
			nAlgs = len(pt.Metrics)
		}
		for _, m := range pt.Metrics {
			if m.TotalRegret > maxRegret {
				maxRegret = m.TotalRegret
			}
		}
	}
	if nAlgs == 0 {
		return fmt.Errorf("report: figure %q has no metrics", fig.ID)
	}
	if maxRegret == 0 {
		maxRegret = 1
	}
	groupW := nAlgs*(barW+barGap) - barGap
	width := marginL + len(fig.Points)*(groupW+groupGap) + 16
	height := marginTop + plotH + marginBot

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="20" font-size="13" font-weight="bold">%s: %s</text>`+"\n",
		marginL, svgEscape(fig.ID), svgEscape(fig.Title))

	// Y axis with four gridlines.
	for tick := 0; tick <= 4; tick++ {
		v := maxRegret * float64(tick) / 4
		y := float64(marginTop+plotH) - float64(plotH)*float64(tick)/4
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-16, y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%.0f</text>`+"\n",
			marginL-6, y+4, v)
	}

	// Legend: per-method fill colors (unsatisfied component darker).
	colors := []string{"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#9c755f", "#76b7b2"}
	for a := 0; a < nAlgs && a < len(fig.Points[0].Metrics); a++ {
		x := marginL + a*120
		fmt.Fprintf(&sb, `<rect x="%d" y="30" width="10" height="10" fill="%s"/>`+"\n", x, colors[a%len(colors)])
		fmt.Fprintf(&sb, `<text x="%d" y="39">%s</text>`+"\n", x+14, svgEscape(fig.Points[0].Metrics[a].Algorithm))
	}

	for gi, pt := range fig.Points {
		gx := marginL + gi*(groupW+groupGap)
		for ai, m := range pt.Metrics {
			x := gx + ai*(barW+barGap)
			total := m.TotalRegret / maxRegret * float64(plotH)
			unsat := 0.0
			if m.TotalRegret > 0 {
				unsat = m.Unsatisfied / m.TotalRegret * total
			}
			excess := total - unsat
			baseY := float64(marginTop + plotH)
			color := colors[ai%len(colors)]
			// Unsatisfied component: solid fill at the bottom.
			fmt.Fprintf(&sb, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"/>`+"\n",
				x, baseY-unsat, barW, unsat, color)
			// Excessive component: translucent fill stacked above.
			fmt.Fprintf(&sb, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s" fill-opacity="0.45"/>`+"\n",
				x, baseY-total, barW, excess, color)
			// Percentages above the bar, as in the paper.
			if m.TotalRegret > 0 {
				fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="middle" font-size="8" fill="#333">%.0f/%.0f</text>`+"\n",
					x+barW/2, baseY-total-3, m.ExcessPct(), m.UnsatisfiedPct())
			}
		}
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" fill="#333">%s</text>`+"\n",
			gx+groupW/2, marginTop+plotH+18, svgEscape(pt.Label))
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" fill="#555">solid = unsatisfied penalty, translucent = excessive influence; labels are excess%%/unsat%%</text>`+"\n",
		marginL, marginTop+plotH+36)
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// svgEscape protects XML-special characters in labels.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
