package solvecache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// eventCount is a concurrency-safe OnEvent sink.
type eventCount struct {
	mu sync.Mutex
	n  map[Event]int
}

func newEventCount() *eventCount { return &eventCount{n: make(map[Event]int)} }

func (e *eventCount) record(ev Event) {
	e.mu.Lock()
	e.n[ev]++
	e.mu.Unlock()
}

func (e *eventCount) get(ev Event) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n[ev]
}

func key(instance string, gen uint64, seed uint64) Key {
	return Key{Instance: instance, Generation: gen, Algorithm: "BLS", Seed: seed, Restarts: 2}
}

// res returns a distinguishable completed (untruncated) result. The cache
// never dereferences Plan, so a nil Plan keeps the tests free of instance
// construction.
func res(regret float64) *core.Anytime {
	return &core.Anytime{TotalRegret: regret}
}

// fill runs one immediate solve through Do so the result lands in the LRU.
func fill(t *testing.T, c *Cache, k Key, r *core.Anytime) {
	t.Helper()
	got, info := c.Do(context.Background(), k, func(context.Context) *core.Anytime { return r })
	if got != r || info.Outcome != Led {
		t.Fatalf("fill %v: got %v outcome %v", k, got, info.Outcome)
	}
}

func TestLRUHitEvictAndAge(t *testing.T) {
	ev := newEventCount()
	base := time.Unix(1000, 0)
	now := base
	c := New(Config{Entries: 2, OnEvent: ev.record, now: func() time.Time { return now }})

	kA, kB, kC := key("m", 1, 1), key("m", 1, 2), key("m", 1, 3)
	fill(t, c, kA, res(10))
	fill(t, c, kB, res(20))
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}

	// Hit A so B becomes the LRU victim, and check the age echo.
	now = base.Add(5 * time.Second)
	got, age, ok := c.Lookup(kA)
	if !ok || got.TotalRegret != 10 || age != 5*time.Second {
		t.Fatalf("lookup A: ok=%v res=%v age=%v", ok, got, age)
	}

	fill(t, c, kC, res(30))
	if c.Len() != 2 {
		t.Fatalf("len %d after eviction, want 2", c.Len())
	}
	if _, _, ok := c.Lookup(kB); ok {
		t.Error("B survived eviction; LRU order ignored the A hit")
	}
	if _, _, ok := c.Lookup(kA); !ok {
		t.Error("A evicted despite being most recently used")
	}

	if ev.get(EventMiss) != 3 || ev.get(EventHit) != 2 || ev.get(EventEvicted) != 1 {
		t.Errorf("events: %d miss / %d hit / %d evicted, want 3/2/1",
			ev.get(EventMiss), ev.get(EventHit), ev.get(EventEvicted))
	}

	// A second Do for a cached key is a hit without a new flight.
	if _, info := c.Do(context.Background(), kC, func(context.Context) *core.Anytime {
		t.Error("cached key re-solved")
		return res(0)
	}); info.Outcome != Hit {
		t.Errorf("Do on cached key: outcome %v, want Hit", info.Outcome)
	}
}

func TestTruncatedResultsAreNotCached(t *testing.T) {
	c := New(Config{Entries: 4})
	k := key("m", 1, 1)
	truncated := &core.Anytime{TotalRegret: 7, Truncated: true}
	got, info := c.Do(context.Background(), k, func(context.Context) *core.Anytime { return truncated })
	if got != truncated || info.Outcome != Led {
		t.Fatalf("truncated solve: got %v outcome %v", got, info.Outcome)
	}
	if c.Len() != 0 {
		t.Fatalf("truncated result was cached (len %d)", c.Len())
	}
	if _, _, ok := c.Lookup(k); ok {
		t.Error("truncated result served from cache")
	}
}

func TestCoalescingSingleSolve(t *testing.T) {
	ev := newEventCount()
	c := New(Config{Entries: 4, OnEvent: ev.record})
	k := key("m", 3, 9)

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var solves atomic.Int64
	solve := func(context.Context) *core.Anytime {
		solves.Add(1)
		started <- struct{}{}
		<-gate
		return res(42)
	}

	const waiters = 8
	results := make(chan *core.Anytime, waiters)
	outcomes := make(chan Outcome, waiters)
	var wg sync.WaitGroup
	// Lead with one guaranteed-first call so exactly one flight exists
	// before the followers pile on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, info := c.Do(context.Background(), k, solve)
		results <- r
		outcomes <- info.Outcome
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, info := c.Do(context.Background(), k, solve)
			results <- r
			outcomes <- info.Outcome
		}()
	}
	// Followers are parked on the flight; release it.
	for ev.get(EventCoalesced) < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)
	close(outcomes)

	if n := solves.Load(); n != 1 {
		t.Errorf("%d solves for %d concurrent identical requests, want 1", n, waiters)
	}
	for r := range results {
		if r == nil || r.TotalRegret != 42 {
			t.Errorf("waiter got %v, want the flight result", r)
		}
	}
	led, followed := 0, 0
	for o := range outcomes {
		switch o {
		case Led:
			led++
		case Followed:
			followed++
		default:
			t.Errorf("unexpected outcome %v", o)
		}
	}
	if led != 1 || followed != waiters-1 {
		t.Errorf("%d led / %d followed, want 1/%d", led, followed, waiters-1)
	}
	if ev.get(EventMiss) != 1 || ev.get(EventCoalesced) != waiters-1 {
		t.Errorf("events: %d miss / %d coalesced, want 1/%d",
			ev.get(EventMiss), ev.get(EventCoalesced), waiters-1)
	}
	// The flight's result is now cached.
	if _, _, ok := c.Lookup(k); !ok {
		t.Error("flight result missing from cache")
	}
}

// TestLeaderExpiryDoesNotStarveTheFlight is the context-detachment contract:
// the leader's own context firing returns Expired to the leader but leaves
// the flight running, and the flight still fills the cache.
func TestLeaderExpiryDoesNotStarveTheFlight(t *testing.T) {
	c := New(Config{Entries: 4})
	k := key("m", 1, 1)

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel() // the "client" hangs up mid-solve
	}()
	got, info := c.Do(ctx, k, func(fctx context.Context) *core.Anytime {
		if fctx.Err() != nil {
			t.Error("flight context already cancelled at start")
		}
		started <- struct{}{}
		<-gate
		if fctx.Err() != nil {
			t.Error("requester cancellation reached the detached flight context")
		}
		return res(5)
	})
	if got != nil || info.Outcome != Expired {
		t.Fatalf("cancelled leader got %v outcome %v, want nil/Expired", got, info.Outcome)
	}

	close(gate)
	// The orphaned flight completes and caches its result.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if r, _, ok := c.Lookup(k); ok {
			if r.TotalRegret != 5 {
				t.Fatalf("cached %v, want the orphaned flight's result", r)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned flight never filled the cache")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFollowerHonorsItsOwnDeadline(t *testing.T) {
	c := New(Config{Entries: 4})
	k := key("m", 1, 1)

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	go c.Do(context.Background(), k, func(context.Context) *core.Anytime {
		started <- struct{}{}
		<-gate
		return res(1)
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	begin := time.Now()
	got, info := c.Do(ctx, k, func(context.Context) *core.Anytime {
		t.Error("follower started a second solve")
		return nil
	})
	if got != nil || info.Outcome != Expired {
		t.Fatalf("expired follower got %v outcome %v", got, info.Outcome)
	}
	if waited := time.Since(begin); waited > 2*time.Second {
		t.Errorf("follower waited %v past its 10ms budget", waited)
	}
	close(gate)
}

func TestMaxFlightBoundsDetachedContext(t *testing.T) {
	c := New(Config{Entries: 4, MaxFlight: 25 * time.Millisecond})
	k := key("m", 1, 1)
	got, info := c.Do(context.Background(), k, func(fctx context.Context) *core.Anytime {
		dl, ok := fctx.Deadline()
		if !ok {
			t.Error("flight context missing the MaxFlight deadline")
		} else if until := time.Until(dl); until > 25*time.Millisecond {
			t.Errorf("flight deadline %v out, want <= MaxFlight", until)
		}
		<-fctx.Done() // simulate a solve truncated by the flight bound
		return &core.Anytime{TotalRegret: 3, Truncated: true}
	})
	if info.Outcome != Led || got == nil || !got.Truncated {
		t.Fatalf("got %v outcome %v", got, info.Outcome)
	}
	if c.Len() != 0 {
		t.Error("flight-truncated result was cached")
	}
}

func TestInvalidateInstance(t *testing.T) {
	ev := newEventCount()
	c := New(Config{Entries: 8, OnEvent: ev.record})
	fill(t, c, key("a", 1, 1), res(1))
	fill(t, c, key("a", 2, 1), res(2)) // older generation of the same name
	fill(t, c, key("b", 3, 1), res(3))

	if n := c.InvalidateInstance("a"); n != 2 {
		t.Errorf("invalidated %d, want 2", n)
	}
	if c.Len() != 1 {
		t.Errorf("len %d after invalidation, want 1", c.Len())
	}
	if _, _, ok := c.Lookup(key("b", 3, 1)); !ok {
		t.Error("unrelated instance was invalidated")
	}
	if _, _, ok := c.Lookup(key("a", 1, 1)); ok {
		t.Error("invalidated entry still served")
	}
	if ev.get(EventEvicted) != 2 {
		t.Errorf("evicted events %d, want 2", ev.get(EventEvicted))
	}
	if n := c.InvalidateInstance("missing"); n != 0 {
		t.Errorf("invalidating an absent instance dropped %d", n)
	}
}

// TestConcurrentMixedKeys hammers Do with overlapping keys under -race:
// every key must be solved at most once while its entry stays resident, and
// every waiter must observe its own key's result.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(Config{Entries: 64})
	const keys, goroutines, iters = 8, 12, 50
	var solves [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ki := (g + i) % keys
				k := key("m", 1, uint64(ki))
				r, info := c.Do(context.Background(), k, func(context.Context) *core.Anytime {
					solves[ki].Add(1)
					return res(float64(ki))
				})
				if info.Outcome == Expired {
					t.Errorf("background ctx expired")
					return
				}
				if r.TotalRegret != float64(ki) {
					t.Errorf("key %d got regret %v", ki, r.TotalRegret)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i := range solves {
		if n := solves[i].Load(); n != 1 {
			t.Errorf("key %d solved %d times, want 1 (capacity was never exceeded)", i, n)
		}
	}
}
