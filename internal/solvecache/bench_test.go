package solvecache

import (
	"context"
	"testing"

	"repro/internal/core"
)

// The cache sits on the admission path of every /solve request, so its
// lookup cost is the overhead a hit saves a whole BLS run for — these
// benches record it for the BENCH snapshot.

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{Entries: 1024})
	k := key("m", 1, 7)
	fillBench(b, c, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Lookup(k); !ok {
			b.Fatal("miss on a resident key")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New(Config{Entries: 1024})
	fillBench(b, c, key("m", 1, 7))
	absent := key("m", 2, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := c.Lookup(absent); ok {
			b.Fatal("hit on an absent key")
		}
	}
}

// BenchmarkDoMissStore measures the full uncached round trip: flight setup,
// a trivial solve, store and eviction (the cache stays at capacity, so every
// insert evicts).
func BenchmarkDoMissStore(b *testing.B) {
	c := New(Config{Entries: 64})
	r := &core.Anytime{TotalRegret: 1}
	solve := func(context.Context) *core.Anytime { return r }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, info := c.Do(context.Background(), key("m", 1, uint64(i)), solve); info.Outcome != Led {
			b.Fatalf("outcome %v", info.Outcome)
		}
	}
}

func fillBench(b *testing.B, c *Cache, k Key) {
	b.Helper()
	if _, info := c.Do(context.Background(), k, func(context.Context) *core.Anytime {
		return &core.Anytime{TotalRegret: 1}
	}); info.Outcome != Led {
		b.Fatalf("fill outcome %v", info.Outcome)
	}
}
