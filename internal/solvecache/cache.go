// Package solvecache memoizes completed anytime solves behind the serving
// layer. The solvers are pure functions of their request tuple: for a fixed
// instance build, algorithm, seed, restart budget and improvement ratio the
// returned plan is bit-identical on every run and for every worker count
// (the determinism proven by the worker-invariance and equal-specs tests).
// That makes a repeated /solve request a cache lookup, not a recomputation —
// exactly the traffic shape of an influence provider whose advertisers probe
// near-identical demand/payment queries over and over.
//
// The cache is a capacity-bounded LRU of *untruncated* results keyed by the
// canonical request tuple (Key). A deadline-truncated result is not the
// deterministic fixed point — it depends on how much wall clock the request
// happened to get — so it is never stored: serving it to a request with a
// longer budget would silently hand back less work than the budget bought.
//
// Identical requests that arrive while the answer is being computed coalesce
// onto one in-flight solve (singleflight). The flight runs on a context
// detached from every requester, bounded only by the configured MaxFlight,
// so one impatient client hanging up cannot starve the requesters still
// waiting — or the cache fill. Each requester waits for the flight under its
// own context and gives up individually (Expired) when that context fires;
// the flight keeps running and its result still lands in the cache.
//
// The package is stdlib-only, in keeping with the repository's
// dependency-free go.mod contract.
package solvecache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/core"
)

// Key is the canonical request tuple a solve result is a pure function of.
// Generation identifies the exact catalog build (a hot-swap installs a
// strictly larger generation, so stale entries can never be hit again), and
// the remaining fields pin the algorithm configuration. Worker counts are
// deliberately absent: results are bit-identical for any parallelism.
type Key struct {
	// Instance is the catalog name the request resolved.
	Instance string
	// Generation is the catalog generation of the resolved snapshot.
	Generation uint64
	// Algorithm is the canonical algorithm name (core's Name(), not the
	// client's spelling).
	Algorithm string
	// Model is the instance's regret-model kind ("base" or "zonal"). The
	// generation already changes on every reload, but the model kind is
	// part of the answer's semantics — folding it into the key guarantees a
	// base request can never be answered from a zonal entry (or vice versa)
	// even across code paths that reuse generations.
	Model string
	// Seed drives the randomized local search.
	Seed uint64
	// Restarts is the requested restart budget, as sent by the client.
	Restarts int
	// ImprovementRatio is Definition 6.1's r, as sent by the client.
	ImprovementRatio float64
}

// Event is one cache occurrence, reported through Config.OnEvent so the
// embedder can count them (the server wires these into
// mroamd_solve_cache_events_total).
type Event string

const (
	// EventHit: a completed result was served from the LRU.
	EventHit Event = "hit"
	// EventMiss: no entry and no flight existed; a new flight was started.
	EventMiss Event = "miss"
	// EventCoalesced: the request joined an already in-flight solve.
	EventCoalesced Event = "coalesced"
	// EventEvicted: an entry left the cache — pushed out by capacity or
	// dropped by instance invalidation.
	EventEvicted Event = "evicted"
)

// Outcome reports how Do satisfied (or failed to satisfy) one request.
type Outcome int

const (
	// Hit: served from the LRU without waiting.
	Hit Outcome = iota
	// Led: this call started the flight and waited for its completion.
	Led
	// Followed: this call joined an existing flight and waited for its
	// completion.
	Followed
	// Expired: the requester's own context fired before the flight
	// finished; no result is returned. The flight keeps running.
	Expired
)

// Info annotates a Do result.
type Info struct {
	Outcome Outcome
	// Age is how long the returned entry had been cached; non-zero only
	// for Hit.
	Age time.Duration
}

// Config parameterizes a Cache.
type Config struct {
	// Entries is the LRU capacity; must be >= 1 (a zero-capacity cache is
	// represented by not constructing one).
	Entries int
	// MaxFlight bounds the detached context a flight solves under — the
	// embedder passes its own max request deadline so an orphaned flight
	// cannot outlive what any client could have asked for. 0 means
	// unbounded.
	MaxFlight time.Duration
	// OnEvent, when non-nil, receives every cache event. It is called
	// outside the cache lock and must be safe for concurrent use.
	OnEvent func(Event)
	// now is a test hook; nil selects time.Now.
	now func() time.Time
}

// Cache is a capacity-bounded LRU of completed solve results with
// singleflight coalescing. All methods are safe for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	ll      *list.List            // front = most recently used
	items   map[Key]*list.Element // key -> element whose Value is *entry
	flights map[Key]*flight       // solves currently in progress
}

type entry struct {
	key      Key
	res      *core.Anytime
	storedAt time.Time
}

// flight is one in-progress solve. res is written exactly once, before done
// is closed; waiters read it only after <-done, so the channel close is the
// publication point.
type flight struct {
	done chan struct{}
	res  *core.Anytime
}

// New returns a Cache holding at most cfg.Entries results.
func New(cfg Config) *Cache {
	if cfg.Entries < 1 {
		panic("solvecache: Config.Entries must be >= 1")
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Cache{
		cfg:     cfg,
		ll:      list.New(),
		items:   make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
}

func (c *Cache) event(ev Event, n int) {
	if c.cfg.OnEvent == nil {
		return
	}
	for i := 0; i < n; i++ {
		c.cfg.OnEvent(ev)
	}
}

// Lookup returns the cached result for key and its age, if present. It is
// the admission fast path: a hit costs one mutex acquisition and no tokens.
// A miss is silent (no event) — the caller is expected to follow up with Do,
// which classifies the request as miss or coalesced exactly once.
func (c *Cache) Lookup(key Key) (*core.Anytime, time.Duration, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	age := c.cfg.now().Sub(e.storedAt)
	c.mu.Unlock()
	c.event(EventHit, 1)
	return e.res, age, true
}

// Do returns the result for key, computing it at most once across all
// concurrent callers. The first caller for a key starts a flight running
// solve on a context detached from every requester (bounded by MaxFlight);
// later callers wait on the same flight. Every caller — the leader included
// — waits under its own ctx and returns Expired with a nil result if ctx
// fires first; the flight is unaffected and still fills the cache when it
// completes untruncated.
func (c *Cache) Do(ctx context.Context, key Key, solve func(context.Context) *core.Anytime) (*core.Anytime, Info) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		// A flight completed between the caller's Lookup and this Do.
		c.ll.MoveToFront(el)
		e := el.Value.(*entry)
		age := c.cfg.now().Sub(e.storedAt)
		c.mu.Unlock()
		c.event(EventHit, 1)
		return e.res, Info{Outcome: Hit, Age: age}
	}
	f, joined := c.flights[key]
	if !joined {
		f = &flight{done: make(chan struct{})}
		c.flights[key] = f
		go c.runFlight(key, f, solve)
	}
	c.mu.Unlock()
	if joined {
		c.event(EventCoalesced, 1)
	} else {
		c.event(EventMiss, 1)
	}

	select {
	case <-f.done:
		out := Led
		if joined {
			out = Followed
		}
		return f.res, Info{Outcome: out}
	case <-ctx.Done():
		return nil, Info{Outcome: Expired}
	}
}

// runFlight executes one coalesced solve on a detached context and
// publishes the result to the cache and to every waiter.
func (c *Cache) runFlight(key Key, f *flight, solve func(context.Context) *core.Anytime) {
	ctx := context.Background()
	if c.cfg.MaxFlight > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.MaxFlight)
		defer cancel()
	}
	res := solve(ctx)

	evicted := 0
	c.mu.Lock()
	delete(c.flights, key)
	if res != nil && !res.Truncated {
		// Only the untruncated fixed point is cacheable: a truncated plan
		// reflects this flight's wall-clock budget, not the request tuple.
		evicted = c.storeLocked(key, res)
	}
	c.mu.Unlock()
	c.event(EventEvicted, evicted)

	f.res = res
	close(f.done)
}

// storeLocked inserts (or refreshes) key and evicts past capacity,
// returning how many entries were evicted. Caller holds c.mu.
func (c *Cache) storeLocked(key Key, res *core.Anytime) int {
	now := c.cfg.now()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		e.res, e.storedAt = res, now
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, res: res, storedAt: now})
	evicted := 0
	for c.ll.Len() > c.cfg.Entries {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		evicted++
	}
	return evicted
}

// InvalidateInstance drops every entry whose key names instance, for any
// generation, and returns how many were dropped (each also fires an evicted
// event). The serving layer calls it when an instance is deleted or
// reloaded; reloads would be correct without it (the new generation can
// never hit an old key) but dropping the dead entries returns their
// capacity immediately. Flights in progress for the instance are not
// cancelled — their entries land and age out via LRU order.
func (c *Cache) InvalidateInstance(instance string) int {
	c.mu.Lock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Instance == instance {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	c.mu.Unlock()
	c.event(EventEvicted, dropped)
	return dropped
}

// Len returns the number of cached entries (the size gauge).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
