package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/influence"
	"repro/internal/market"
)

// This file maps each table/figure of the paper's Section 7 to a harness
// method. The per-experiment index in DESIGN.md mirrors this mapping.

// Table5 computes the dataset statistics row for each city (paper Table 5).
func (r *Runner) Table5() ([]dataset.Table5Row, error) {
	var rows []dataset.Table5Row
	for _, city := range []dataset.City{dataset.NYC, dataset.SG} {
		d, err := r.Dataset(city)
		if err != nil {
			return nil, err
		}
		rows = append(rows, d.Table5())
	}
	return rows, nil
}

// DistributionSeries holds the two curves of Figure 1 for one city.
type DistributionSeries struct {
	City dataset.City
	// InfluenceCurve is Figure 1a: normalized influence by descending
	// rank, sampled at SampleFractions of the billboard count.
	InfluenceCurve []float64
	// ImpressionCurve is Figure 1b: covered trajectory fraction when the
	// top fraction of billboards is selected, at SampleFractions.
	ImpressionCurve []float64
	// SampleFractions are the x positions of both curves.
	SampleFractions []float64
}

// Figure1 computes the influence and impression distribution curves of
// Figure 1 for both cities at the default λ.
func (r *Runner) Figure1() ([]DistributionSeries, error) {
	fractions := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	var out []DistributionSeries
	for _, city := range []dataset.City{dataset.NYC, dataset.SG} {
		u, err := r.Universe(city, market.DefaultLambda)
		if err != nil {
			return nil, err
		}
		full := influence.NormalizedInfluenceCurve(u)
		ic := make([]float64, len(fractions))
		for i, f := range fractions {
			idx := int(f*float64(len(full))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(full) {
				idx = len(full) - 1
			}
			ic[i] = full[idx]
		}
		out = append(out, DistributionSeries{
			City:            city,
			InfluenceCurve:  ic,
			ImpressionCurve: influence.ImpressionCurve(u, fractions),
			SampleFractions: fractions,
		})
	}
	return out, nil
}

// RegretVsAlpha produces the regret-vs-α figure for a fixed p (Figures 2-6
// on NYC; the same sweep is available for SG). γ and λ stay at defaults.
func (r *Runner) RegretVsAlpha(city dataset.City, p float64) (Figure, error) {
	fig := Figure{
		Title: fmt.Sprintf("Regret vs demand-supply ratio α (%s, p=%g%%, γ=%g, λ=%gm)",
			city, p*100, market.DefaultGamma, float64(market.DefaultLambda)),
	}
	labels, insts, err := r.sweep(func(add func(string, float64, float64, float64, float64)) {
		for _, alpha := range market.Alphas {
			add(fmt.Sprintf("α=%.0f%%", alpha*100), alpha, p, market.DefaultGamma, market.DefaultLambda)
		}
	}, city)
	if err != nil {
		return Figure{}, err
	}
	fig.Points = r.runPoints(labels, insts, false)
	return fig, nil
}

// sweep builds the labeled instances of one parameter sweep.
func (r *Runner) sweep(build func(add func(label string, alpha, p, gamma, lambda float64)), city dataset.City) ([]string, []*core.Instance, error) {
	var labels []string
	var insts []*core.Instance
	var firstErr error
	build(func(label string, alpha, p, gamma, lambda float64) {
		if firstErr != nil {
			return
		}
		inst, err := r.instance(city, alpha, p, gamma, lambda)
		if err != nil {
			firstErr = err
			return
		}
		labels = append(labels, label)
		insts = append(insts, inst)
	})
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return labels, insts, nil
}

// RegretVsGamma produces the regret-vs-γ figure (Figure 10 NYC, Figure 11
// SG) at default α, p and λ.
func (r *Runner) RegretVsGamma(city dataset.City) (Figure, error) {
	fig := Figure{
		Title: fmt.Sprintf("Regret vs unsatisfied penalty ratio γ (%s, α=%g%%, p=%g%%, λ=%gm)",
			city, market.DefaultAlpha*100, market.DefaultP*100, float64(market.DefaultLambda)),
	}
	labels, insts, err := r.sweep(func(add func(string, float64, float64, float64, float64)) {
		for _, gamma := range market.Gammas {
			add(fmt.Sprintf("γ=%.2f", gamma), market.DefaultAlpha, market.DefaultP, gamma, market.DefaultLambda)
		}
	}, city)
	if err != nil {
		return Figure{}, err
	}
	fig.Points = r.runPoints(labels, insts, false)
	return fig, nil
}

// RegretVsLambda produces the regret-vs-λ figure for one city (Figure 12
// parts a and b) at default α, p, γ.
func (r *Runner) RegretVsLambda(city dataset.City) (Figure, error) {
	fig := Figure{
		Title: fmt.Sprintf("Regret vs influence range λ (%s, α=%g%%, p=%g%%, γ=%g)",
			city, market.DefaultAlpha*100, market.DefaultP*100, market.DefaultGamma),
	}
	labels, insts, err := r.sweep(func(add func(string, float64, float64, float64, float64)) {
		for _, lambda := range market.Lambdas {
			add(fmt.Sprintf("λ=%.0fm", lambda), market.DefaultAlpha, market.DefaultP, market.DefaultGamma, lambda)
		}
	}, city)
	if err != nil {
		return Figure{}, err
	}
	fig.Points = r.runPoints(labels, insts, false)
	return fig, nil
}

// RuntimeVsAlpha produces the efficiency figure varying α (Figure 8) for
// one city at default p; the metrics of interest are Runtime and Evals.
func (r *Runner) RuntimeVsAlpha(city dataset.City) (Figure, error) {
	fig := Figure{
		Title: fmt.Sprintf("Running time vs α (%s, p=%g%%)", city, market.DefaultP*100),
	}
	labels, insts, err := r.sweep(func(add func(string, float64, float64, float64, float64)) {
		for _, alpha := range market.Alphas {
			add(fmt.Sprintf("α=%.0f%%", alpha*100), alpha, market.DefaultP, market.DefaultGamma, market.DefaultLambda)
		}
	}, city)
	if err != nil {
		return Figure{}, err
	}
	// Efficiency figures report wall-clock: always sequential.
	fig.Points = r.runPoints(labels, insts, true)
	return fig, nil
}

// RuntimeVsP produces the efficiency figure varying p (Figure 9) for one
// city at default α.
func (r *Runner) RuntimeVsP(city dataset.City) (Figure, error) {
	fig := Figure{
		Title: fmt.Sprintf("Running time vs p (%s, α=%g%%)", city, market.DefaultAlpha*100),
	}
	labels, insts, err := r.sweep(func(add func(string, float64, float64, float64, float64)) {
		for _, p := range market.Ps {
			add(fmt.Sprintf("p=%.0f%%", p*100), market.DefaultAlpha, p, market.DefaultGamma, market.DefaultLambda)
		}
	}, city)
	if err != nil {
		return Figure{}, err
	}
	// Efficiency figures report wall-clock: always sequential.
	fig.Points = r.runPoints(labels, insts, true)
	return fig, nil
}

// Figure dispatches a figure by its number in the paper. Figures that have
// NYC and SG parts return one Figure per part.
//
//	1        → distribution curves (use Figure1 directly for the series)
//	2..6     → regret vs α on NYC at p = 1%, 2%, 5%, 10%, 20%
//	7        → regret vs α on SG at the default p
//	8        → runtime vs α (NYC, SG)
//	9        → runtime vs p (NYC, SG)
//	10, 11   → regret vs γ on NYC, SG
//	12       → regret vs λ (NYC, SG)
func (r *Runner) Figure(num int) ([]Figure, error) {
	withID := func(f Figure, err error) ([]Figure, error) {
		if err != nil {
			return nil, err
		}
		f.ID = fmt.Sprintf("fig%d", num)
		return []Figure{f}, nil
	}
	switch num {
	case 2:
		return withID(r.RegretVsAlpha(dataset.NYC, 0.01))
	case 3:
		return withID(r.RegretVsAlpha(dataset.NYC, 0.02))
	case 4:
		return withID(r.RegretVsAlpha(dataset.NYC, 0.05))
	case 5:
		return withID(r.RegretVsAlpha(dataset.NYC, 0.10))
	case 6:
		return withID(r.RegretVsAlpha(dataset.NYC, 0.20))
	case 7:
		return withID(r.RegretVsAlpha(dataset.SG, market.DefaultP))
	case 8:
		return r.twoCity(num, r.RuntimeVsAlpha)
	case 9:
		return r.twoCity(num, r.RuntimeVsP)
	case 10:
		return withID(r.RegretVsGamma(dataset.NYC))
	case 11:
		return withID(r.RegretVsGamma(dataset.SG))
	case 12:
		return r.twoCity(num, r.RegretVsLambda)
	default:
		return nil, fmt.Errorf("experiment: no figure %d (supported: 2-12)", num)
	}
}

// twoCity runs a per-city figure builder for both cities.
func (r *Runner) twoCity(num int, build func(dataset.City) (Figure, error)) ([]Figure, error) {
	var out []Figure
	for _, city := range []dataset.City{dataset.NYC, dataset.SG} {
		f, err := build(city)
		if err != nil {
			return nil, err
		}
		f.ID = fmt.Sprintf("fig%d-%s", num, city)
		out = append(out, f)
	}
	return out, nil
}
