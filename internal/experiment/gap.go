package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// The approximation-gap study measures how far each heuristic lands from
// the true optimum on instances small enough for the exact solver — an
// empirical companion to §4's result that no polynomial algorithm can
// guarantee any constant factor, and to §6.3's dual-objective guarantee
// for BLS. It is not in the paper's evaluation (their instances are far
// beyond exact solvability) but is the natural ground-truth check a
// reproduction can add.

// GapRow summarizes one algorithm's empirical optimality gap.
type GapRow struct {
	Algorithm string
	// MeanRatio is mean over instances of (1+R_alg)/(1+R_opt); the +1
	// smoothing keeps zero-optimum instances meaningful.
	MeanRatio float64
	// WorstRatio is the maximum such ratio observed.
	WorstRatio float64
	// OptimalHits counts instances where the heuristic matched the
	// optimum exactly (within 1e-9).
	OptimalHits int
	// Instances is the number of instances evaluated.
	Instances int
}

// GapConfig tunes the study.
type GapConfig struct {
	// Instances is the number of random small instances; values < 1
	// select 20.
	Instances int
	// Billboards per instance (must stay exact-solvable); values < 1
	// select 8.
	Billboards int
	// Advertisers per instance; values < 1 select 2.
	Advertisers int
	// Seed drives instance generation.
	Seed uint64
	// Restarts configures the local searches; values < 1 select 3.
	Restarts int
}

func (c GapConfig) withDefaults() GapConfig {
	if c.Instances < 1 {
		c.Instances = 20
	}
	if c.Billboards < 1 {
		c.Billboards = 8
	}
	if c.Advertisers < 1 {
		c.Advertisers = 2
	}
	if c.Restarts < 1 {
		c.Restarts = 3
	}
	return c
}

// ApproximationGap runs the four methods against the exact optimum on
// random small instances and aggregates their gaps.
func ApproximationGap(cfg GapConfig) ([]GapRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Billboards > core.ExactMaxBillboards {
		return nil, fmt.Errorf("experiment: %d billboards beyond the exact solver's bound %d",
			cfg.Billboards, core.ExactMaxBillboards)
	}
	algs := core.PaperAlgorithms(cfg.Seed, cfg.Restarts)
	rows := make([]GapRow, len(algs))
	for i, alg := range algs {
		rows[i] = GapRow{Algorithm: alg.Name(), Instances: cfg.Instances}
	}

	r := rng.New(cfg.Seed).Derive("gap")
	for n := 0; n < cfg.Instances; n++ {
		inst, err := randomSmallInstance(r, cfg)
		if err != nil {
			return nil, err
		}
		opt, err := core.Exact(inst)
		if err != nil {
			return nil, err
		}
		for i, alg := range algs {
			p := alg.Solve(inst)
			if p.TotalRegret() < opt.TotalRegret()-1e-9 {
				return nil, fmt.Errorf("experiment: %s beat the exact optimum (%v < %v) — solver bug",
					alg.Name(), p.TotalRegret(), opt.TotalRegret())
			}
			ratio := (1 + p.TotalRegret()) / (1 + opt.TotalRegret())
			rows[i].MeanRatio += ratio
			if ratio > rows[i].WorstRatio {
				rows[i].WorstRatio = ratio
			}
			if p.TotalRegret() <= opt.TotalRegret()+1e-9 {
				rows[i].OptimalHits++
			}
		}
	}
	for i := range rows {
		rows[i].MeanRatio /= float64(cfg.Instances)
	}
	return rows, nil
}

// randomSmallInstance builds one exact-solvable instance with overlapping
// random coverage and a demanding workload (α ≈ 0.9).
func randomSmallInstance(r *rng.RNG, cfg GapConfig) (*core.Instance, error) {
	nTraj := 20 * cfg.Billboards
	lists := make([]coverage.List, cfg.Billboards)
	for b := range lists {
		deg := 4 + r.Intn(nTraj/3)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(nTraj))
		}
		lists[b] = coverage.NewList(ids)
	}
	u, err := coverage.NewUniverse(nTraj, lists)
	if err != nil {
		return nil, err
	}
	supply := float64(u.TotalSupply())
	advs := make([]core.Advertiser, cfg.Advertisers)
	for i := range advs {
		d := int64(0.9 * supply / float64(cfg.Advertisers) * r.Range(0.8, 1.2))
		if d < 1 {
			d = 1
		}
		advs[i] = core.Advertiser{Demand: d, Payment: float64(d) * r.Range(0.9, 1.1)}
	}
	return core.NewInstance(u, advs, 0.5)
}
