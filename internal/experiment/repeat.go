package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// The paper evaluates efficiency as "the average result of five runs"
// (§7.1.4). RepeatedMetrics reruns one algorithm on one instance several
// times with distinct search seeds and summarizes both the regret (which
// varies across seeds for the randomized searches) and the wall-clock time
// (which varies with the machine), so reported numbers carry their spread.

// RepeatedMetrics is the summary of several runs of one method.
type RepeatedMetrics struct {
	Algorithm string
	Runs      int
	Regret    stats.Summary // across runs (identical for deterministic methods)
	Seconds   stats.Summary // wall-clock per run
	Evals     stats.Summary // work measure per run
}

// RunRepeated executes the method `runs` times. The greedy methods are
// deterministic, so only their timing varies; the local searches are
// re-seeded per run (base seed + run index) to expose their variance.
// runs < 1 selects the paper's 5.
func RunRepeated(inst *core.Instance, algName string, baseSeed uint64, restarts, runs int) (RepeatedMetrics, error) {
	if runs < 1 {
		runs = 5
	}
	out := RepeatedMetrics{Algorithm: algName, Runs: runs}
	regrets := make([]float64, 0, runs)
	seconds := make([]float64, 0, runs)
	evals := make([]float64, 0, runs)
	for k := 0; k < runs; k++ {
		alg, err := core.AlgorithmByName(algName, baseSeed+uint64(k), restarts)
		if err != nil {
			return RepeatedMetrics{}, err
		}
		start := time.Now()
		plan := alg.Solve(inst)
		seconds = append(seconds, time.Since(start).Seconds())
		regrets = append(regrets, plan.TotalRegret())
		evals = append(evals, float64(plan.Evals()))
	}
	out.Regret = stats.Summarize(regrets)
	out.Seconds = stats.Summarize(seconds)
	out.Evals = stats.Summarize(evals)
	return out, nil
}

// RunAllRepeated applies RunRepeated to the paper's four methods.
func RunAllRepeated(inst *core.Instance, baseSeed uint64, restarts, runs int) ([]RepeatedMetrics, error) {
	var out []RepeatedMetrics
	for _, alg := range core.PaperAlgorithms(baseSeed, restarts) {
		m, err := RunRepeated(inst, alg.Name(), baseSeed, restarts, runs)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", alg.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}
