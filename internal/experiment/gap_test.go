package experiment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func TestApproximationGap(t *testing.T) {
	rows, err := ApproximationGap(GapConfig{Instances: 8, Billboards: 7, Advertisers: 2, Seed: 5, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byName := map[string]GapRow{}
	for _, row := range rows {
		byName[row.Algorithm] = row
		if row.MeanRatio < 1-1e-9 {
			t.Errorf("%s mean ratio %v < 1 — heuristic beat the optimum", row.Algorithm, row.MeanRatio)
		}
		if row.WorstRatio < row.MeanRatio-1e-9 {
			t.Errorf("%s worst ratio %v below mean %v", row.Algorithm, row.WorstRatio, row.MeanRatio)
		}
		if row.OptimalHits < 0 || row.OptimalHits > row.Instances {
			t.Errorf("%s optimal hits %d out of range", row.Algorithm, row.OptimalHits)
		}
	}
	// The local searches should be at least as close to optimal as the
	// plain synchronous greedy on average.
	if byName["BLS"].MeanRatio > byName["G-Global"].MeanRatio+1e-9 {
		t.Errorf("BLS mean ratio %v worse than G-Global %v",
			byName["BLS"].MeanRatio, byName["G-Global"].MeanRatio)
	}
}

func TestApproximationGapDefaultsAndBounds(t *testing.T) {
	cfg := GapConfig{}.withDefaults()
	if cfg.Instances != 20 || cfg.Billboards != 8 || cfg.Advertisers != 2 || cfg.Restarts != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
	if _, err := ApproximationGap(GapConfig{Billboards: core.ExactMaxBillboards + 1, Instances: 1}); err == nil {
		t.Error("oversized billboards accepted")
	}
}

func TestApproximationGapDeterministic(t *testing.T) {
	cfg := GapConfig{Instances: 4, Billboards: 6, Seed: 9, Restarts: 1}
	a, err := ApproximationGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApproximationGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs", i)
		}
	}
}

func TestRunRepeated(t *testing.T) {
	r := testRunner()
	inst, err := r.instance(dataset.NYC, 0.8, 0.10, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunRepeated(inst, "G-Global", 7, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 3 || m.Regret.N != 3 {
		t.Fatalf("runs = %d / %d", m.Runs, m.Regret.N)
	}
	// Deterministic method: zero regret spread.
	if m.Regret.Std != 0 {
		t.Errorf("G-Global regret varies across seeds: std %v", m.Regret.Std)
	}
	if m.Seconds.Mean <= 0 {
		t.Error("no timing recorded")
	}
	if _, err := RunRepeated(inst, "Nope", 7, 1, 2); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// runs < 1 → default 5.
	m5, err := RunRepeated(inst, "G-Order", 7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m5.Runs != 5 {
		t.Errorf("default runs = %d, want 5", m5.Runs)
	}
}

func TestRunAllRepeated(t *testing.T) {
	r := testRunner()
	inst, err := r.instance(dataset.NYC, 0.8, 0.10, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunAllRepeated(inst, 7, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("%d summaries", len(ms))
	}
	// The randomized searches may vary across seeds but must never be
	// worse than their greedy initialization on average.
	var gg, bls float64
	for _, m := range ms {
		switch m.Algorithm {
		case "G-Global":
			gg = m.Regret.Mean
		case "BLS":
			bls = m.Regret.Mean
		}
	}
	if bls > gg+1e-6 {
		t.Errorf("BLS mean regret %v worse than G-Global %v", bls, gg)
	}
}
