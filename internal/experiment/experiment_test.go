package experiment

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// testRunner returns a harness at a small scale with one restart, enough to
// check figure shapes while keeping the package tests fast.
func testRunner() *Runner {
	return NewRunner(Config{Scale: 0.15, Seed: 11, Restarts: 1})
}

func TestRunCollectsMetrics(t *testing.T) {
	r := testRunner()
	inst, err := r.instance(dataset.NYC, 0.8, 0.10, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := Run(inst, core.GGlobalAlgorithm{})
	if m.Algorithm != "G-Global" {
		t.Errorf("Algorithm = %q", m.Algorithm)
	}
	if math.Abs(m.Excess+m.Unsatisfied-m.TotalRegret) > 1e-6 {
		t.Errorf("breakdown %v + %v != total %v", m.Excess, m.Unsatisfied, m.TotalRegret)
	}
	if m.NumAdvertisers != inst.NumAdvertisers() {
		t.Errorf("NumAdvertisers = %d", m.NumAdvertisers)
	}
	if m.Runtime <= 0 {
		t.Error("runtime not measured")
	}
	if m.Evals <= 0 {
		t.Error("evals not counted")
	}
	if m.TotalRegret > 0 {
		if math.Abs(m.ExcessPct()+m.UnsatisfiedPct()-100) > 1e-6 {
			t.Errorf("percentages should sum to 100: %v + %v", m.ExcessPct(), m.UnsatisfiedPct())
		}
	}
}

func TestMetricsPctZeroTotal(t *testing.T) {
	m := Metrics{}
	if m.ExcessPct() != 0 || m.UnsatisfiedPct() != 0 {
		t.Error("zero-total percentages should be 0")
	}
}

func TestRunnerCachesDatasetsAndUniverses(t *testing.T) {
	r := testRunner()
	d1, err := r.Dataset(dataset.NYC)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Dataset(dataset.NYC)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("dataset not cached")
	}
	u1, err := r.Universe(dataset.NYC, 100)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := r.Universe(dataset.NYC, 100)
	if err != nil {
		t.Fatal(err)
	}
	if u1 != u2 {
		t.Error("universe not cached")
	}
	u3, err := r.Universe(dataset.NYC, 50)
	if err != nil {
		t.Fatal(err)
	}
	if u3 == u1 {
		t.Error("different λ should build a different universe")
	}
}

func TestRunnerUnknownCity(t *testing.T) {
	r := testRunner()
	if _, err := r.Dataset(dataset.City(9)); err == nil {
		t.Fatal("unknown city accepted")
	}
}

func TestTable5(t *testing.T) {
	rows, err := testRunner().Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "NYC" || rows[1].Name != "SG" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, row := range rows {
		if row.NumTraj <= 0 || row.NumBillboards <= 0 || row.AvgDistanceKM <= 0 {
			t.Errorf("degenerate row %+v", row)
		}
	}
}

func TestFigure1Series(t *testing.T) {
	series, err := testRunner().Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series, want 2", len(series))
	}
	for _, s := range series {
		if len(s.InfluenceCurve) != len(s.SampleFractions) ||
			len(s.ImpressionCurve) != len(s.SampleFractions) {
			t.Fatalf("%s: curve lengths mismatch", s.City)
		}
		for i := 1; i < len(s.ImpressionCurve); i++ {
			if s.ImpressionCurve[i] < s.ImpressionCurve[i-1]-1e-9 {
				t.Fatalf("%s: impression curve not monotone", s.City)
			}
			if s.InfluenceCurve[i] > s.InfluenceCurve[i-1]+1e-9 {
				t.Fatalf("%s: influence curve not descending", s.City)
			}
		}
	}
}

// TestFigureShapeRegretVsAlpha checks the core effectiveness claims on one
// α sweep: local search beats the plain greedy everywhere, the unsatisfied
// penalty emerges as α passes 100%, and all breakdowns are consistent.
func TestFigureShapeRegretVsAlpha(t *testing.T) {
	r := testRunner()
	fig, err := r.RegretVsAlpha(dataset.NYC, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("%d points, want 5 α values", len(fig.Points))
	}
	byName := func(pt Point, name string) Metrics {
		for _, m := range pt.Metrics {
			if m.Algorithm == name {
				return m
			}
		}
		t.Fatalf("missing %s", name)
		return Metrics{}
	}
	for _, pt := range fig.Points {
		if len(pt.Metrics) != 4 {
			t.Fatalf("point %s has %d metrics", pt.Label, len(pt.Metrics))
		}
		gg := byName(pt, "G-Global")
		als := byName(pt, "ALS")
		bls := byName(pt, "BLS")
		// The local searches start from G-Global's plan and only accept
		// improvements, so they can never be worse.
		if als.TotalRegret > gg.TotalRegret+1e-6 {
			t.Errorf("%s: ALS %.1f worse than G-Global %.1f", pt.Label, als.TotalRegret, gg.TotalRegret)
		}
		if bls.TotalRegret > gg.TotalRegret+1e-6 {
			t.Errorf("%s: BLS %.1f worse than G-Global %.1f", pt.Label, bls.TotalRegret, gg.TotalRegret)
		}
	}
	// Unsatisfied penalty share grows from the low-α to the high-α regime
	// (paper Cases 1/2 vs 3/4) for the best method.
	lo := byName(fig.Points[0], "BLS") // α=40%
	hi := byName(fig.Points[4], "BLS") // α=120%
	if hi.Unsatisfied <= lo.Unsatisfied {
		t.Errorf("unsatisfied penalty should grow with α: %.1f → %.1f", lo.Unsatisfied, hi.Unsatisfied)
	}
	if hi.SatisfiedCount >= hi.NumAdvertisers {
		t.Errorf("α=120%% should leave advertisers unsatisfied (%d/%d)", hi.SatisfiedCount, hi.NumAdvertisers)
	}
}

func TestFigureDispatch(t *testing.T) {
	// Dispatch mapping only — a tiny scale keeps the SG sweep cheap.
	r := NewRunner(Config{Scale: 0.02, Seed: 11, Restarts: 1})
	// Single-part figure numbers → 1 figure; two-city ones → 2.
	oneCity, err := r.Figure(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(oneCity) != 1 || oneCity[0].ID != "fig7" {
		t.Fatalf("Figure(7) = %d figures, id %s", len(oneCity), oneCity[0].ID)
	}
	if _, err := r.Figure(1); err == nil {
		t.Error("Figure(1) should direct users to Figure1()")
	}
	if _, err := r.Figure(13); err == nil {
		t.Error("Figure(13) accepted")
	}
}

func TestRuntimeFigureOrdering(t *testing.T) {
	r := testRunner()
	fig, err := r.RuntimeVsAlpha(dataset.NYC)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy methods must be cheaper than the local searches in the work
	// measure (evals), which is deterministic unlike wall-clock time.
	for _, pt := range fig.Points {
		var gOrder, gGlobal, als, bls int64
		for _, m := range pt.Metrics {
			switch m.Algorithm {
			case "G-Order":
				gOrder = m.Evals
			case "G-Global":
				gGlobal = m.Evals
			case "ALS":
				als = m.Evals
			case "BLS":
				bls = m.Evals
			}
		}
		if gOrder == 0 || gGlobal == 0 || als == 0 || bls == 0 {
			t.Fatalf("%s: missing metrics", pt.Label)
		}
		if als < gGlobal || bls < gGlobal {
			t.Errorf("%s: local search cheaper than its own greedy init (gg=%d als=%d bls=%d)",
				pt.Label, gGlobal, als, bls)
		}
	}
}

func TestDeterministicAcrossRunners(t *testing.T) {
	a, err := NewRunner(Config{Scale: 0.05, Seed: 3, Restarts: 1}).RegretVsAlpha(dataset.NYC, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(Config{Scale: 0.05, Seed: 3, Restarts: 1}).RegretVsAlpha(dataset.NYC, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for j := range a.Points[i].Metrics {
			ma, mb := a.Points[i].Metrics[j], b.Points[i].Metrics[j]
			if ma.TotalRegret != mb.TotalRegret || ma.Evals != mb.Evals {
				t.Fatalf("point %d alg %d: %v/%v vs %v/%v",
					i, j, ma.TotalRegret, ma.Evals, mb.TotalRegret, mb.Evals)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	r := NewRunner(Config{})
	if r.Config().Scale != 1.0 || r.Config().Restarts != core.DefaultRestarts {
		t.Errorf("defaults = %+v", r.Config())
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq, err := NewRunner(Config{Scale: 0.05, Seed: 3, Restarts: 1}).RegretVsAlpha(dataset.NYC, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(Config{Scale: 0.05, Seed: 3, Restarts: 1, Parallel: 4}).RegretVsAlpha(dataset.NYC, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Points {
		if seq.Points[i].Label != par.Points[i].Label {
			t.Fatalf("point %d label order changed under parallelism", i)
		}
		for j := range seq.Points[i].Metrics {
			a, b := seq.Points[i].Metrics[j], par.Points[i].Metrics[j]
			if a.TotalRegret != b.TotalRegret || a.SatisfiedCount != b.SatisfiedCount {
				t.Fatalf("point %d alg %s differs under parallelism", i, a.Algorithm)
			}
		}
	}
}
