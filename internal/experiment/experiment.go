// Package experiment is the evaluation harness: it regenerates every table
// and figure of the paper's Section 7 on the synthetic NYC and SG datasets.
//
// A Runner caches generated datasets and coverage universes (per city and
// λ), then each FigureX method sweeps the relevant parameter grid, runs the
// four methods (G-Order, G-Global, ALS, BLS), and collects effectiveness
// (total regret split into excessive-influence and unsatisfied-penalty
// components) or efficiency (wall-clock time and marginal evaluations).
// Everything is deterministic in the Runner seed.
package experiment

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/rng"
)

// Metrics is the outcome of one algorithm on one instance.
type Metrics struct {
	Algorithm      string
	TotalRegret    float64
	Excess         float64 // excessive-influence component
	Unsatisfied    float64 // unsatisfied-penalty component
	SatisfiedCount int
	NumAdvertisers int
	Runtime        time.Duration
	Evals          int64 // marginal-influence evaluations (work measure)
}

// ExcessPct returns the excessive-influence share of the total regret in
// percent (0 when the total is 0), matching the stacked-bar annotations of
// the paper's figures.
func (m Metrics) ExcessPct() float64 {
	if m.TotalRegret == 0 {
		return 0
	}
	return 100 * m.Excess / m.TotalRegret
}

// UnsatisfiedPct returns the unsatisfied-penalty share in percent.
func (m Metrics) UnsatisfiedPct() float64 {
	if m.TotalRegret == 0 {
		return 0
	}
	return 100 * m.Unsatisfied / m.TotalRegret
}

// Run solves the instance with the algorithm and collects metrics.
func Run(inst *core.Instance, alg core.Algorithm) Metrics {
	start := time.Now()
	plan := alg.Solve(inst)
	elapsed := time.Since(start)
	excess, unsat := plan.Breakdown()
	return Metrics{
		Algorithm:      alg.Name(),
		TotalRegret:    plan.TotalRegret(),
		Excess:         excess,
		Unsatisfied:    unsat,
		SatisfiedCount: plan.SatisfiedCount(),
		NumAdvertisers: inst.NumAdvertisers(),
		Runtime:        elapsed,
		Evals:          plan.Evals(),
	}
}

// Point is one x-position of a figure (one bar group): a parameter setting
// and the metrics of every method at that setting.
type Point struct {
	Label   string
	Metrics []Metrics
}

// Figure is one (sub-)figure: an identifier, a caption, and its points.
type Figure struct {
	ID     string
	Title  string
	Points []Point
}

// Config tunes the harness.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 reproduces the
	// repository's full synthetic scale; tests use much less). Values
	// <= 0 select 1.0.
	Scale float64
	// Seed drives dataset generation, market generation and the
	// randomized searches.
	Seed uint64
	// Restarts is the local search restart count (Algorithm 3's preset
	// iteration count); values < 1 select core.DefaultRestarts.
	Restarts int
	// Parallel runs a figure's points concurrently with up to this many
	// workers (0/1 = sequential). Results are deterministic regardless;
	// per-point Runtime readings become noisy under contention, so the
	// efficiency figures (8-9) always run sequentially.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Restarts < 1 {
		c.Restarts = core.DefaultRestarts
	}
	return c
}

// Runner generates datasets lazily and caches coverage universes per
// (city, λ). It is not safe for concurrent use.
type Runner struct {
	cfg       Config
	datasets  map[dataset.City]*dataset.Dataset
	universes map[universeKey]*coverage.Universe
}

type universeKey struct {
	city   dataset.City
	lambda float64
}

// NewRunner returns a harness with the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:       cfg.withDefaults(),
		datasets:  make(map[dataset.City]*dataset.Dataset),
		universes: make(map[universeKey]*coverage.Universe),
	}
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// Dataset returns the generated dataset for the city, generating it on
// first use.
func (r *Runner) Dataset(city dataset.City) (*dataset.Dataset, error) {
	if d, ok := r.datasets[city]; ok {
		return d, nil
	}
	d, err := catalog.BuildDataset(catalog.Spec{
		City:  city.String(),
		Scale: r.cfg.Scale,
		Seed:  r.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	r.datasets[city] = d
	return d, nil
}

// Universe returns the coverage universe for (city, λ), building it on
// first use.
func (r *Runner) Universe(city dataset.City, lambda float64) (*coverage.Universe, error) {
	key := universeKey{city, lambda}
	if u, ok := r.universes[key]; ok {
		return u, nil
	}
	d, err := r.Dataset(city)
	if err != nil {
		return nil, err
	}
	u, err := d.BuildUniverse(lambda)
	if err != nil {
		return nil, err
	}
	r.universes[key] = u
	return u, nil
}

// instance builds the MROAM instance for one parameter setting. The market
// RNG is derived from (city, α, p) only: γ and λ sweeps must vary the
// objective or the influence model over the *same* advertiser market, as in
// the paper's Figures 10-12 — deriving per-(γ, λ) would redraw the ω/ε
// noise each cell and bury the trend in market noise near the α=1
// satisfiability cliff. Demands still scale with the λ-dependent supply
// I*(λ) through the market generator.
func (r *Runner) instance(city dataset.City, alpha, p, gamma, lambda float64) (*core.Instance, error) {
	u, err := r.Universe(city, lambda)
	if err != nil {
		return nil, err
	}
	mr := rng.New(r.cfg.Seed).Derive(fmt.Sprintf("market/%s/a%.2f/p%.2f", city, alpha, p))
	return catalog.Market(u, market.Config{Alpha: alpha, P: p}, gamma, mr)
}

// algorithms returns the paper's four methods configured for this runner.
func (r *Runner) algorithms() []core.Algorithm {
	return core.PaperAlgorithms(r.cfg.Seed, r.cfg.Restarts)
}

// runPoint solves one instance with all four methods.
func (r *Runner) runPoint(label string, inst *core.Instance) Point {
	pt := Point{Label: label}
	for _, alg := range r.algorithms() {
		pt.Metrics = append(pt.Metrics, Run(inst, alg))
	}
	return pt
}

// runPoints solves every labeled instance with all four methods,
// concurrently when cfg.Parallel > 1 (and sequential is not forced).
// Points are returned in input order either way.
func (r *Runner) runPoints(labels []string, insts []*core.Instance, forceSequential bool) []Point {
	points := make([]Point, len(insts))
	workers := r.cfg.Parallel
	if workers <= 1 || forceSequential || len(insts) < 2 {
		for i := range insts {
			points[i] = r.runPoint(labels[i], insts[i])
		}
		return points
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				points[i] = r.runPoint(labels[i], insts[i])
			}
		}()
	}
	for i := range insts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return points
}
