// Package stats provides the small statistical helpers used by the
// experiment harness and reports: summary statistics and percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics over xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(s.N))
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics if xs is empty or p is
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns a/b, or 0 when b is 0 — the convention used when reporting
// component percentages of a zero total.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
