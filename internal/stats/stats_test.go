package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
	if got := Summarize(nil); got.N != 0 || got.Mean != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty": func() { Percentile(nil, 50) },
		"p<0":   func() { Percentile([]float64{1}, -1) },
		"p>100": func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	check := func(raw []float64, pq uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := float64(pq % 101)
		got := Percentile(raw, p)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Error("Ratio(1,2)")
	}
	if Ratio(5, 0) != 0 {
		t.Error("Ratio(x,0) should be 0")
	}
}
