package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestDeriveStableAndIndependent(t *testing.T) {
	root := New(7)
	a1 := root.Derive("billboards")
	a2 := root.Derive("billboards")
	b := root.Derive("trajectories")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatalf("Derive not stable at draw %d", i)
		}
	}
	// The parent state must be unchanged by derivation.
	c1 := root.Derive("billboards")
	if c1.Uint64() != New(7).Derive("billboards").Uint64() {
		t.Fatal("Derive advanced the parent state")
	}
	// Substreams should not track each other.
	a := root.Derive("billboards")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams look correlated: %d/100 identical draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(0.9, 1.1)
		if v < 0.9 || v >= 1.1 {
			t.Fatalf("Range(0.9,1.1) = %v out of bounds", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(13)
	s := []int{1, 1, 2, 3, 5, 8, 13, 21}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(21)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("Zipf rank %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Errorf("Zipf counts not decreasing: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(22)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		if c < 4000 || c > 6000 {
			t.Errorf("s=0 bucket %d: got %d, want ~5000", k, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n<=0": func() { NewZipf(New(1), 0, 1) },
		"s<0":  func() { NewZipf(New(1), 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf %s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(31)
	for _, n := range []uint64{1, 2, 10, 1 << 40} {
		for i := 0; i < 100; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
