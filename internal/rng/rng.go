// Package rng provides a small, deterministic pseudo-random number generator
// used throughout the repository.
//
// Every dataset, market and experiment in this project must be reproducible
// from a single integer seed. The standard library's math/rand/v2 offers good
// generators, but its global functions are seeded randomly and its sources do
// not support the named-substream derivation we rely on to keep independent
// parts of an experiment (billboard layout, trajectory sampling, advertiser
// demands, algorithm restarts, ...) statistically independent while remaining
// stable when one part changes the number of draws it makes.
//
// The generator is PCG-XSH-RR 64/32 combined into 64-bit outputs (two 32-bit
// halves from consecutive states), after O'Neill's PCG family. It is not
// cryptographically secure and must never be used for security purposes.
package rng

import (
	"math"
	"math/bits"
)

const (
	pcgMultiplier = 6364136223846793005
	pcgDefaultInc = 1442695040888963407
)

// RNG is a deterministic pseudo-random number generator. The zero value is
// not valid; construct with New or Derive.
type RNG struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *RNG {
	return NewStream(seed, pcgDefaultInc>>1)
}

// NewStream returns a generator seeded with seed on the given stream.
// Distinct streams produce statistically independent sequences even for the
// same seed.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	r.state = r.inc + seed
	r.next32()
	r.next32()
	return r
}

// Derive returns a new generator whose seed is derived from the parent's seed
// material and the given name. Deriving the same name twice yields identical
// generators; the parent is not advanced. This gives named substreams:
//
//	root := rng.New(42)
//	bbRNG := root.Derive("billboards")
//	tjRNG := root.Derive("trajectories")
func (r *RNG) Derive(name string) *RNG {
	h := fnv64(name)
	return NewStream(r.state^h, r.inc>>1^bits.RotateLeft64(h, 31))
}

// fnv64 is the FNV-1a hash of s.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next32() }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
// The implementation uses Lemire's nearly-divisionless bounded sampling.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniformly distributed float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate via the polar Box–Muller
// method (Marsaglia polar method). It is deterministic given the generator
// state, consuming a variable number of uniforms.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of ints.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a bounded Zipf distribution over {0, ..., n-1} with
// exponent s > 0 (probability of rank k proportional to 1/(k+1)^s). The
// sampler uses the precomputed cumulative table held in z.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s, drawing
// randomness from r. It panics if n <= 0 or s < 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("rng: NewZipf called with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first index with cdf >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
