package catalog

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/billboard"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/rng"
)

// BuildInfo summarizes what Build produced — the dimensions a server
// reports per instance and the CLI prints in its solve banner.
type BuildInfo struct {
	// City is the dataset's city name ("NYC" or "SG"), including for
	// datasets loaded from a directory.
	City string `json:"city"`
	// Trajectories is |T|, Billboards |U|, Advertisers |A|.
	Trajectories int `json:"trajectories"`
	Billboards   int `json:"billboards"`
	Advertisers  int `json:"advertisers"`
	// Corridors is the compressed coverage ID space: the number of
	// distinct coverage signatures the trajectories collapse into.
	Corridors int `json:"corridors"`
	// CompressionRatio is Trajectories / Corridors.
	CompressionRatio float64 `json:"compression_ratio"`
	// Model is the regret-model kind the instance carries ("base" or
	// "zonal"), echoed through /instances, healthz and the CLI banners.
	Model string `json:"model"`
	// Zones and ZoneCap describe the zonal partition: the number of
	// occupied geo-grid zones and the per-zone influence cap. Zero for the
	// base model.
	Zones   int   `json:"zones,omitempty"`
	ZoneCap int64 `json:"zone_cap,omitempty"`
	// BuildMS is the wall-clock build time in milliseconds.
	BuildMS float64 `json:"build_ms"`
}

// BuildDataset loads (Spec.Data) or generates (Spec.City at Spec.Scale) the
// dataset a Spec names. This is the repository's single call site of
// dataset.Load/dataset.Generate outside tests; every CLI subcommand and the
// daemon route through it. Paper-scale ("scale" tier) instances cannot be
// materialized as a Dataset — Build streams them straight into a coverage
// universe — so commands that need raw trajectories reject that tier here.
func BuildDataset(s Spec) (*dataset.Dataset, error) {
	if s.Tier == TierScale {
		return nil, fmt.Errorf("catalog: tier %q datasets are streamed, not materialized; only Build can construct them", TierScale)
	}
	if s.Data != "" {
		return dataset.Load(s.Data)
	}
	cfg, err := datasetConfig(s)
	if err != nil {
		return nil, err
	}
	return dataset.Generate(cfg)
}

// datasetConfig resolves the generator configuration a (normalized) Spec
// names: the city defaults scaled by Spec.Scale on the default tier, the
// paper-scale configuration with Scale applied to the trajectory count only
// on the "scale" tier (the billboard inventory is part of the paper's
// Table 5 and does not shrink).
func datasetConfig(s Spec) (dataset.Config, error) {
	var cfg dataset.Config
	switch strings.ToUpper(s.City) {
	case "", "NYC":
		if s.Tier == TierScale {
			cfg = dataset.PaperNYC(s.Seed)
		} else {
			cfg = dataset.DefaultNYC(s.Seed)
		}
	case "SG":
		if s.Tier == TierScale {
			cfg = dataset.PaperSG(s.Seed)
		} else {
			cfg = dataset.DefaultSG(s.Seed)
		}
	default:
		return dataset.Config{}, fmt.Errorf("catalog: unknown city %q (want NYC or SG)", s.City)
	}
	if s.Tier == TierScale {
		cfg.Trajectories = int(float64(cfg.Trajectories) * s.Scale)
		if cfg.Trajectories < 1 {
			cfg.Trajectories = 1
		}
		return cfg, nil
	}
	return cfg.Scale(s.Scale), nil
}

// Market generates the advertiser set for the universe and wraps it into an
// instance — the repository's single call site of market.NewInstance
// outside tests. It exists separately from Build for callers (the
// experiment harness) that cache universes and derive their own market RNG
// streams.
func Market(u *coverage.Universe, cfg market.Config, gamma float64, r *rng.RNG) (*core.Instance, error) {
	return market.NewInstance(u, cfg, gamma, r)
}

// Build runs the full pipeline for one Spec: dataset (generate, load, or —
// on the "scale" tier — streamed) → coverage universe at λ → corridor
// compression → advertiser market at (α, p, γ). The returned instance is
// immutable and safe for any number of concurrent solves; equal Specs build
// instances on which the solvers return bit-identical plans.
//
// Every instance is served on the corridor-compressed substrate. This is
// invisible to callers — all influence quantities are expressed in raw
// trajectories, and compression preserves them exactly (see
// coverage.Compress) — but per-advertiser state shrinks from |T| to the
// corridor count, which is what makes paper-scale instances solvable
// in memory.
func Build(s Spec) (*core.Instance, BuildInfo, error) {
	start := time.Now()
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, BuildInfo{}, err
	}

	var u *coverage.Universe
	var bills *billboard.DB
	var city string
	if s.Tier == TierScale {
		cfg, err := datasetConfig(s)
		if err != nil {
			return nil, BuildInfo{}, err
		}
		streamed, err := dataset.GenerateUniverse(cfg, dataset.StreamOptions{Lambda: s.Lambda})
		if err != nil {
			return nil, BuildInfo{}, err
		}
		u, bills, city = streamed.Universe, streamed.Billboards, cfg.City.String()
	} else {
		d, err := BuildDataset(s)
		if err != nil {
			return nil, BuildInfo{}, err
		}
		du, err := d.BuildUniverse(s.Lambda)
		if err != nil {
			return nil, BuildInfo{}, err
		}
		u, bills, city = du, d.Billboards, d.Config.City.String()
	}

	cu, stats := coverage.Compress(u)
	inst, err := Market(cu, market.Config{Alpha: s.Alpha, P: s.P}, *s.Gamma,
		rng.New(s.Seed).Derive("market"))
	if err != nil {
		return nil, BuildInfo{}, err
	}
	info := BuildInfo{
		City:             city,
		Trajectories:     cu.NumTrajectories(),
		Billboards:       cu.NumBillboards(),
		Advertisers:      inst.NumAdvertisers(),
		Corridors:        stats.Corridors,
		CompressionRatio: stats.Ratio,
		Model:            core.ModelBase,
	}
	// Corridor compression rewrites trajectory IDs but never billboard
	// IDs, so the billboard DB's geometry indexes the compressed universe
	// directly — zones are derived from real billboard locations.
	if s.ModelKind() == core.ModelZonal {
		zoneOf, zones := ZonePartition(bills.Locations(), s.Model.ZoneMeters)
		zm, err := core.NewZonalModel(zoneOf, s.Model.ZoneCap)
		if err != nil {
			return nil, BuildInfo{}, err
		}
		inst, err = inst.WithModel(zm)
		if err != nil {
			return nil, BuildInfo{}, err
		}
		info.Model, info.Zones, info.ZoneCap = core.ModelZonal, zones, s.Model.ZoneCap
	}
	info.BuildMS = float64(time.Since(start).Microseconds()) / 1e3
	return inst, info, nil
}
