package catalog

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataset"
	"repro/internal/market"
	"repro/internal/rng"
)

// BuildInfo summarizes what Build produced — the dimensions a server
// reports per instance and the CLI prints in its solve banner.
type BuildInfo struct {
	// City is the dataset's city name ("NYC" or "SG"), including for
	// datasets loaded from a directory.
	City string `json:"city"`
	// Trajectories is |T|, Billboards |U|, Advertisers |A|.
	Trajectories int `json:"trajectories"`
	Billboards   int `json:"billboards"`
	Advertisers  int `json:"advertisers"`
	// BuildMS is the wall-clock build time in milliseconds.
	BuildMS float64 `json:"build_ms"`
}

// BuildDataset loads (Spec.Data) or generates (Spec.City at Spec.Scale) the
// dataset a Spec names. This is the repository's single call site of
// dataset.Load/dataset.Generate outside tests; every CLI subcommand and the
// daemon route through it.
func BuildDataset(s Spec) (*dataset.Dataset, error) {
	if s.Data != "" {
		return dataset.Load(s.Data)
	}
	var cfg dataset.Config
	switch strings.ToUpper(s.City) {
	case "", "NYC":
		cfg = dataset.DefaultNYC(s.Seed)
	case "SG":
		cfg = dataset.DefaultSG(s.Seed)
	default:
		return nil, fmt.Errorf("catalog: unknown city %q (want NYC or SG)", s.City)
	}
	return dataset.Generate(cfg.Scale(s.Scale))
}

// Market generates the advertiser set for the universe and wraps it into an
// instance — the repository's single call site of market.NewInstance
// outside tests. It exists separately from Build for callers (the
// experiment harness) that cache universes and derive their own market RNG
// streams.
func Market(u *coverage.Universe, cfg market.Config, gamma float64, r *rng.RNG) (*core.Instance, error) {
	return market.NewInstance(u, cfg, gamma, r)
}

// Build runs the full pipeline for one Spec: dataset (generate or load) →
// coverage universe at λ → advertiser market at (α, p, γ). The returned
// instance is immutable and safe for any number of concurrent solves; equal
// Specs build instances on which the solvers return bit-identical plans.
func Build(s Spec) (*core.Instance, BuildInfo, error) {
	start := time.Now()
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, BuildInfo{}, err
	}
	d, err := BuildDataset(s)
	if err != nil {
		return nil, BuildInfo{}, err
	}
	u, err := d.BuildUniverse(s.Lambda)
	if err != nil {
		return nil, BuildInfo{}, err
	}
	inst, err := Market(u, market.Config{Alpha: s.Alpha, P: s.P}, *s.Gamma,
		rng.New(s.Seed).Derive("market"))
	if err != nil {
		return nil, BuildInfo{}, err
	}
	info := BuildInfo{
		City:         d.Config.City.String(),
		Trajectories: u.NumTrajectories(),
		Billboards:   u.NumBillboards(),
		Advertisers:  inst.NumAdvertisers(),
		BuildMS:      float64(time.Since(start).Microseconds()) / 1e3,
	}
	return inst, info, nil
}
