package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ErrNotFound reports a name with no loaded instance (servers map it to
// 404).
var ErrNotFound = errors.New("catalog: instance not found")

// ErrDefaultDelete reports an attempt to delete the default instance
// (servers map it to 409): a catalog that serves traffic must always be
// able to answer a request that names no instance.
var ErrDefaultDelete = errors.New("catalog: cannot delete the default instance")

// Entry is one immutable loaded instance: the snapshot a solve runs
// against. Reloading a name installs a brand-new Entry; existing solves
// keep the Entry they resolved and are unaffected (the old snapshot is
// garbage-collected when the last solve holding it finishes).
type Entry struct {
	// Name is the catalog name the entry is registered under.
	Name string
	// Generation is a catalog-wide monotone counter stamped when the
	// entry was installed; a reload of the same name always carries a
	// strictly larger generation, so a response reporting (name,
	// generation) identifies exactly one build. The solve-result cache
	// (internal/solvecache) leans on this invariant: (name, generation)
	// in its key means a hot-swapped instance can never serve a stale
	// cached plan — the new generation is simply a different key.
	Generation uint64
	// Spec is the normalized spec the entry was built from; the zero Spec
	// for entries registered from a pre-built instance.
	Spec Spec
	// Info carries the build dimensions (|T|, |U|, |A|, city, build time).
	Info BuildInfo
	// Instance is the immutable problem instance.
	Instance *core.Instance
}

// snapshot is the immutable state the readers see: one atomic pointer swap
// publishes a whole new name→entry map.
type snapshot struct {
	entries     map[string]*Entry
	defaultName string
}

// Catalog is a named registry of immutable instance snapshots with atomic
// hot-swap. Reads (Get/List/Len) are lock-free: they follow one
// atomic.Pointer to an immutable snapshot, so a reload never blocks or
// perturbs in-flight solves. Writes (Load/AddInstance/Delete) serialize on
// a mutex but only to swap the pointer — instance building happens outside
// the lock.
//
// The first instance registered becomes the default (the one Get("")
// resolves); deleting the default is refused.
type Catalog struct {
	mu   sync.Mutex // writers only; never held while building
	snap atomic.Pointer[snapshot]
	gen  atomic.Uint64
}

// New returns an empty catalog.
func New() *Catalog {
	c := &Catalog{}
	c.snap.Store(&snapshot{entries: map[string]*Entry{}})
	return c
}

// install swaps in a new snapshot with the given entry added/replaced,
// stamping its generation. It is the single writer commit point.
func (c *Catalog) install(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installLocked(e)
}

// installLocked is install for callers already holding c.mu — Patch, whose
// read-modify-write must be atomic with respect to other writers.
func (c *Catalog) installLocked(e *Entry) {
	old := c.snap.Load()
	next := &snapshot{
		entries:     make(map[string]*Entry, len(old.entries)+1),
		defaultName: old.defaultName,
	}
	for k, v := range old.entries {
		next.entries[k] = v
	}
	e.Generation = c.gen.Add(1)
	next.entries[e.Name] = e
	if next.defaultName == "" {
		next.defaultName = e.Name
	}
	c.snap.Store(next)
}

// Load builds the spec and installs the result under name, replacing any
// previous entry atomically. The build runs outside the catalog lock, so
// concurrent solves (and even concurrent loads of other names) proceed
// undisturbed; on build error the catalog is unchanged.
func (c *Catalog) Load(name string, spec Spec) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	spec = spec.Normalized()
	spec.Name = name
	inst, info, err := Build(spec)
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", name, err)
	}
	e := &Entry{Name: name, Spec: spec, Info: info, Instance: inst}
	c.install(e)
	return e, nil
}

// AddInstance installs an already-built instance under name — the path for
// embedders and tests that construct instances directly rather than from a
// Spec. The entry's Spec is zero; its Info carries the instance dimensions.
func (c *Catalog) AddInstance(name string, inst *core.Instance) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if inst == nil {
		return nil, errors.New("catalog: nil instance")
	}
	u := inst.Universe()
	ratio := 1.0
	if u.NumIDs() > 0 {
		ratio = float64(u.NumTrajectories()) / float64(u.NumIDs())
	}
	e := &Entry{
		Name: name,
		Info: BuildInfo{
			Trajectories:     u.NumTrajectories(),
			Billboards:       u.NumBillboards(),
			Advertisers:      inst.NumAdvertisers(),
			Corridors:        u.NumIDs(),
			CompressionRatio: ratio,
			Model:            inst.Model().Kind(),
		},
		Instance: inst,
	}
	c.install(e)
	return e, nil
}

// Get resolves name to its current entry; the empty name resolves the
// default instance. Lock-free.
func (c *Catalog) Get(name string) (*Entry, bool) {
	s := c.snap.Load()
	if name == "" {
		name = s.defaultName
		if name == "" {
			return nil, false
		}
	}
	e, ok := s.entries[name]
	return e, ok
}

// Delete removes name from the catalog. The default instance cannot be
// deleted; deleting an unknown name returns ErrNotFound. Solves already
// holding the entry finish normally.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.snap.Load()
	if _, ok := old.entries[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if name == old.defaultName {
		return fmt.Errorf("%w: %q", ErrDefaultDelete, name)
	}
	next := &snapshot{
		entries:     make(map[string]*Entry, len(old.entries)-1),
		defaultName: old.defaultName,
	}
	for k, v := range old.entries {
		if k != name {
			next.entries[k] = v
		}
	}
	c.snap.Store(next)
	return nil
}

// List returns the current entries sorted by name. Lock-free.
func (c *Catalog) List() []*Entry {
	s := c.snap.Load()
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of loaded instances. Lock-free.
func (c *Catalog) Len() int { return len(c.snap.Load().entries) }

// DefaultName returns the name of the default instance ("" while the
// catalog is empty). Lock-free.
func (c *Catalog) DefaultName() string { return c.snap.Load().defaultName }
