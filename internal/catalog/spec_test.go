package catalog

import (
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSpecJSONRoundTrip pins the Spec wire format: the golden file decodes
// to specs that re-encode byte-identically (no field renames, reorderings
// or omitempty regressions can slip in silently), and decoding is lossless.
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{}, // everything defaulted
		{Name: "nyc-quarter", City: "NYC", Scale: 0.25, Seed: 42},
		{Name: "sg-dense", City: "SG", Scale: 0.5, Seed: 7, Alpha: 1.2, P: 0.2,
			Gamma: GammaPtr(0), Lambda: 150}, // γ=0 must survive the trip
		{Name: "from-disk", Data: "data/nyc", Alpha: 0.8, P: 0.05},
		{Name: "zonal-default-grid", City: "NYC", Scale: 0.02, Seed: 5,
			Model: &ModelSpec{Kind: "zonal", ZoneCap: 40}},
		{Name: "zonal-fine-grid", City: "SG", Scale: 0.1, Seed: 9,
			Model: &ModelSpec{Kind: "zonal", ZoneCap: 12, ZoneMeters: 500}},
		DefaultSpec(),
	}
	got, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	const path = "testdata/specs.golden"
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("spec encoding drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Decoding the golden must reproduce the specs losslessly — in
	// particular the nil-vs-zero γ distinction.
	var back []Spec
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, specs) {
		t.Errorf("round trip lost data:\ngot  %+v\nwant %+v", back, specs)
	}
}

func TestNormalizedFillsDefaults(t *testing.T) {
	n := Spec{}.Normalized()
	want := DefaultSpec()
	want.Seed = 0 // seed 0 is a valid seed and must not be rewritten
	if n.City != want.City || n.Scale != want.Scale || n.Seed != 0 ||
		n.Alpha != want.Alpha || n.P != want.P || *n.Gamma != *want.Gamma ||
		n.Lambda != want.Lambda {
		t.Errorf("Normalized zero spec = %+v, want %+v", n, want)
	}

	// An explicit γ=0 survives normalization.
	z := Spec{Gamma: GammaPtr(0)}.Normalized()
	if *z.Gamma != 0 {
		t.Errorf("γ=0 rewritten to %v", *z.Gamma)
	}

	// A Data spec must not invent a city or scale.
	d := Spec{Data: "data/nyc"}.Normalized()
	if d.City != "" || d.Scale != 0 {
		t.Errorf("Data spec normalized to city %q scale %v", d.City, d.Scale)
	}

	// Normalizing is idempotent.
	if !reflect.DeepEqual(n.Normalized(), n) {
		t.Error("Normalized is not idempotent")
	}
}

func TestValidateNames(t *testing.T) {
	for _, ok := range []string{"a", "nyc-quarter", "A.b_c-9", "0x"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q): %v", ok, err)
		}
	}
	long := make([]byte, 66)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "-lead", ".lead", "has space", "a/b", string(long)} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) accepted", bad)
		}
	}
}

func TestDescribe(t *testing.T) {
	got := Spec{}.Describe()
	if got != "α=100%, p=5%, γ=0.50, λ=100m" {
		t.Errorf("Describe() = %q", got)
	}
}
