package catalog

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestBaseModelPlansMatchGolden pins the exact plans the four paper solvers
// produce on a catalog-built instance under the base regret model, at both a
// serial and a parallel worker count. The golden file was generated from the
// pre-Model-seam code, so this test is the refactor's bit-identical contract:
// lifting the objective behind core.Model must not change a single assignment
// or a single regret bit on the default model, at any worker count.
//
// Regenerate (only for a deliberate, understood behavior change) with:
//
//	go test ./internal/catalog -run BaseModelPlansMatchGolden -update
func TestBaseModelPlansMatchGolden(t *testing.T) {
	spec := Spec{City: "NYC", Scale: 0.03, Seed: 9, Alpha: 1.2, P: 0.1}.Normalized()
	inst, _, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	for _, workers := range []int{1, 4} {
		opts := core.LocalSearchOptions{Seed: spec.Seed, Restarts: 2, Workers: workers}
		for _, name := range []string{"G-Order", "G-Global", "ALS", "BLS"} {
			alg, err := core.AlgorithmByNameOpts(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			p := alg.Solve(inst)
			fmt.Fprintf(&b, "%s workers=%d regret=%s\n", name, workers,
				strconv.FormatFloat(p.TotalRegret(), 'g', -1, 64))
			for i := 0; i < inst.NumAdvertisers(); i++ {
				set := p.Set(i, nil)
				fmt.Fprintf(&b, "  adv %d: %v\n", i, set)
			}
		}
	}
	got := b.String()

	const path = "testdata/plans_base.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("base-model plans drifted from pre-refactor golden (bit-identical contract broken):\ngot:\n%s\nwant:\n%s", got, want)
	}
}
