package catalog

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// Fields selects which flag groups Bind registers, so each command exposes
// exactly the knobs that affect it.
type Fields uint8

const (
	// FieldDataset registers -city, -scale and -seed.
	FieldDataset Fields = 1 << iota
	// FieldData registers -data (load a saved dataset directory).
	FieldData
	// FieldLambda registers -lambda (influence radius).
	FieldLambda
	// FieldMarket registers -alpha, -p and -gamma.
	FieldMarket
	// FieldModel registers -model, -zone-cap and -zone-meters.
	FieldModel

	// FieldsAll registers every Spec flag — the full instance pipeline.
	FieldsAll = FieldDataset | FieldData | FieldLambda | FieldMarket | FieldModel
)

// Flags is the handle Bind returns; read the parsed Spec back with Spec().
type Flags struct {
	fields Fields
	base   Spec

	city, data *string
	tier       *string
	scale      *float64
	seed       *uint64
	alpha      *float64
	p          *float64
	gamma      *float64
	lambda     *float64
	model      *string
	zoneCap    *int64
	zoneMeters *float64
}

// Bind registers the shared instance flags on fs — the one Spec-from-flags
// helper every mroam subcommand and mroamd share, replacing the per-command
// flag plumbing. defaults seeds the flag default values (commands usually
// pass DefaultSpec with an adjusted Scale); unregistered groups keep their
// defaults from it.
func Bind(fs *flag.FlagSet, fields Fields, defaults Spec) *Flags {
	defaults = defaults.Normalized()
	f := &Flags{fields: fields, base: defaults}
	if fields&FieldDataset != 0 {
		f.city = fs.String("city", defaults.City, "city (NYC or SG); ignored when -data is set")
		f.tier = fs.String("tier", defaults.Tier, `dataset size class: "" (default) or "scale" (paper-scale, streamed)`)
		f.scale = fs.Float64("scale", defaults.Scale, "fraction of the tier's base dataset scale")
		f.seed = fs.Uint64("seed", defaults.Seed, "seed for dataset, market and search")
	}
	if fields&FieldData != 0 {
		f.data = fs.String("data", defaults.Data, "load a saved dataset directory instead of generating")
	}
	if fields&FieldMarket != 0 {
		f.alpha = fs.Float64("alpha", defaults.Alpha, "demand-supply ratio α")
		f.p = fs.Float64("p", defaults.P, "average-individual demand ratio p")
		f.gamma = fs.Float64("gamma", *defaults.Gamma, "unsatisfied penalty ratio γ")
	}
	if fields&FieldLambda != 0 {
		f.lambda = fs.Float64("lambda", defaults.Lambda, "influence radius λ in meters")
	}
	if fields&FieldModel != 0 {
		var cap int64
		var meters float64
		if m := defaults.Model; m != nil {
			cap, meters = m.ZoneCap, m.ZoneMeters
		}
		f.model = fs.String("model", defaults.ModelKind(),
			fmt.Sprintf("regret model: %q or %q (per-zone caps on counted influence)", core.ModelBase, core.ModelZonal))
		f.zoneCap = fs.Int64("zone-cap", cap, "zonal model: per-zone cap on one advertiser's counted influence (required for -model zonal)")
		f.zoneMeters = fs.Float64("zone-meters", meters,
			fmt.Sprintf("zonal model: zone grid cell size in meters (0 = %dm)", DefaultZoneMeters))
	}
	return f
}

// Spec returns the Spec the parsed flags describe. Groups that were not
// registered keep the defaults Bind was given.
func (f *Flags) Spec() Spec {
	s := f.base
	if f.city != nil {
		s.City, s.Tier, s.Scale, s.Seed = *f.city, *f.tier, *f.scale, *f.seed
	}
	if f.data != nil {
		s.Data = *f.data
	}
	if f.alpha != nil {
		s.Alpha, s.P, s.Gamma = *f.alpha, *f.p, GammaPtr(*f.gamma)
	}
	if f.lambda != nil {
		s.Lambda = *f.lambda
	}
	if f.model != nil {
		if *f.model == core.ModelBase && *f.zoneCap == 0 && *f.zoneMeters == 0 {
			s.Model = nil // canonical base spec carries no model block
		} else {
			s.Model = &ModelSpec{Kind: *f.model, ZoneCap: *f.zoneCap, ZoneMeters: *f.zoneMeters}
		}
	}
	return s
}

// ReadSpecs decodes a fleet file: a JSON array of Specs, each with a
// required, unique name. It is the format of `mroamd -instances`.
func ReadSpecs(r io.Reader) ([]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var specs []Spec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("catalog: decode specs: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("catalog: specs file lists no instances")
	}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("catalog: spec %d is missing a name", i)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("catalog: spec %q: %w", s.Name, err)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("catalog: duplicate instance name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return specs, nil
}

// ReadSpecsFile is ReadSpecs over a file path.
func ReadSpecsFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	specs, err := ReadSpecs(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return specs, nil
}

// Describe renders the human-readable parameter banner the CLI prints:
// "α=100%, p=5%, γ=0.50, λ=100m" for the base model, with a
// ", model=zonal(cap=40, zone=1000m)" suffix when a variant is selected.
func (s Spec) Describe() string {
	n := s.Normalized()
	base := fmt.Sprintf("α=%.0f%%, p=%.0f%%, γ=%.2f, λ=%.0fm",
		n.Alpha*100, n.P*100, *n.Gamma, n.Lambda)
	if n.ModelKind() == core.ModelZonal {
		base += fmt.Sprintf(", model=zonal(cap=%d, zone=%.0fm)", n.Model.ZoneCap, n.Model.ZoneMeters)
	}
	return base
}
