package catalog

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
)

// patchInstance builds a small hand-made instance with nAdv advertisers so
// tests can predict indexes and demands exactly.
func patchInstance(tb testing.TB, nAdv int) *core.Instance {
	tb.Helper()
	lists := make([]coverage.List, 6)
	for b := range lists {
		ids := make([]int32, b+2)
		for i := range ids {
			ids[i] = int32((b*3 + i) % 12)
		}
		lists[b] = coverage.NewList(ids)
	}
	u, err := coverage.NewUniverse(12, lists)
	if err != nil {
		tb.Fatal(err)
	}
	advs := make([]core.Advertiser, nAdv)
	for i := range advs {
		advs[i] = core.Advertiser{Demand: int64(2 + i), Payment: float64(10 * (i + 1))}
	}
	inst, err := core.NewInstance(u, advs, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func TestPatchRewritesAdvertisers(t *testing.T) {
	c := New()
	e0, err := c.AddInstance("m", patchInstance(t, 3))
	if err != nil {
		t.Fatal(err)
	}

	e1, res, err := c.Patch("m", []PatchOp{
		{Op: "remove", Advertiser: 1},
		{Op: "revise", Advertiser: 2, Demand: 9},
		{Op: "add", Demand: 5, Payment: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Generation <= e0.Generation {
		t.Fatalf("generation not bumped: %d -> %d", e0.Generation, e1.Generation)
	}
	if got, ok := c.Get("m"); !ok || got != e1 {
		t.Fatal("patched entry not installed")
	}
	inst := e1.Instance
	if inst.NumAdvertisers() != 3 {
		t.Fatalf("advertisers = %d, want 3", inst.NumAdvertisers())
	}
	// Post-patch order: kept 0, kept-revised 2, added.
	wantOld := []int{0, 2, -1}
	wantDirty := []bool{false, true, true}
	for j := range wantOld {
		if res.OldIndexOf[j] != wantOld[j] || res.Dirty[j] != wantDirty[j] {
			t.Fatalf("mapping[%d] = (%d, %v), want (%d, %v)",
				j, res.OldIndexOf[j], res.Dirty[j], wantOld[j], wantDirty[j])
		}
	}
	if res.Removed != 1 {
		t.Fatalf("Removed = %d, want 1", res.Removed)
	}
	if inst.Advertiser(0).Demand != 2 || inst.Advertiser(1).Demand != 9 || inst.Advertiser(2).Demand != 5 {
		t.Fatalf("demands = %d,%d,%d, want 2,9,5",
			inst.Advertiser(0).Demand, inst.Advertiser(1).Demand, inst.Advertiser(2).Demand)
	}
	// Revise without payment keeps the old payment.
	if inst.Advertiser(1).Payment != 30 {
		t.Fatalf("revised payment = %v, want 30 (kept)", inst.Advertiser(1).Payment)
	}
	if e1.Instance.Universe() != e0.Instance.Universe() {
		t.Fatal("patch rebuilt the universe instead of sharing it")
	}
	if e1.Info.Advertisers != 3 {
		t.Fatalf("Info.Advertisers = %d, want 3", e1.Info.Advertisers)
	}
}

func TestPatchValidation(t *testing.T) {
	c := New()
	if _, err := c.AddInstance("m", patchInstance(t, 2)); err != nil {
		t.Fatal(err)
	}
	gen := func() uint64 {
		e, _ := c.Get("m")
		return e.Generation
	}
	before := gen()

	cases := []struct {
		name string
		ops  []PatchOp
		want error
	}{
		{"unknown name", []PatchOp{{Op: "add", Demand: 1, Payment: 1}}, ErrNotFound},
		{"empty ops", []PatchOp{}, nil},
		{"bad op", []PatchOp{{Op: "upsert"}}, nil},
		{"remove out of range", []PatchOp{{Op: "remove", Advertiser: 7}}, ErrUnknownAdvertiser},
		{"revise out of range", []PatchOp{{Op: "revise", Advertiser: -1, Demand: 3}}, ErrUnknownAdvertiser},
		{"double remove", []PatchOp{{Op: "remove", Advertiser: 0}, {Op: "remove", Advertiser: 0}}, ErrUnknownAdvertiser},
		{"revise removed", []PatchOp{{Op: "remove", Advertiser: 0}, {Op: "revise", Advertiser: 0, Demand: 3}}, ErrUnknownAdvertiser},
		{"add zero demand", []PatchOp{{Op: "add", Demand: 0, Payment: 1}}, nil},
		{"revise zero demand", []PatchOp{{Op: "revise", Advertiser: 0}}, nil},
		{"empty market", []PatchOp{{Op: "remove", Advertiser: 0}, {Op: "remove", Advertiser: 1}}, nil},
	}
	for _, tc := range cases {
		name := "m"
		if tc.name == "unknown name" {
			name = "ghost"
		}
		_, _, err := c.Patch(name, tc.ops)
		if err == nil {
			t.Errorf("%s: patch accepted", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if gen() != before {
		t.Fatal("failed patches mutated the catalog")
	}
}

func TestPatchKeepsModel(t *testing.T) {
	inst := patchInstance(t, 2)
	zoneOf := make([]int, inst.Universe().NumBillboards())
	for b := range zoneOf {
		zoneOf[b] = b % 2
	}
	zm, err := core.NewZonalModel(zoneOf, 100)
	if err != nil {
		t.Fatal(err)
	}
	zinst, err := inst.WithModel(zm)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	if _, err := c.AddInstance("z", zinst); err != nil {
		t.Fatal(err)
	}
	e, _, err := c.Patch("z", []PatchOp{{Op: "add", Demand: 4, Payment: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Instance.Model().Kind() != core.ModelZonal {
		t.Fatalf("model kind = %q, want %q", e.Instance.Model().Kind(), core.ModelZonal)
	}
}

func TestPatchDefaultName(t *testing.T) {
	c := New()
	if _, err := c.AddInstance("only", patchInstance(t, 2)); err != nil {
		t.Fatal(err)
	}
	e, _, err := c.Patch("", []PatchOp{{Op: "add", Demand: 3, Payment: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "only" {
		t.Fatalf("patched %q, want default instance", e.Name)
	}
}
