package catalog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geo"
)

// DefaultZoneMeters is the zone grid cell size assumed when a zonal model
// spec leaves zone_meters unset: ~1km square zones, the granularity at
// which the cited zonal-constraint work partitions a city.
const DefaultZoneMeters = 1000

// ModelSpec is the "model" block of a Spec: which regret model the built
// instance carries and the variant's parameters. The zero value (and an
// absent block) selects the base MROAM model.
//
//	{"kind": "base"}
//	{"kind": "zonal", "zone_cap": 40}
//	{"kind": "zonal", "zone_cap": 40, "zone_meters": 500}
type ModelSpec struct {
	// Kind names the model: "base" (default) or "zonal". Wire names are
	// shared with the solve-cache key and the mroamd_requests_total model
	// label.
	Kind string `json:"kind,omitempty"`
	// ZoneCap is the zonal model's uniform per-zone cap on one
	// advertiser's counted influence supply. Required (≥ 1) for "zonal";
	// must be unset for "base".
	ZoneCap int64 `json:"zone_cap,omitempty"`
	// ZoneMeters is the zone grid cell size in meters; zero selects
	// DefaultZoneMeters. Only meaningful for "zonal".
	ZoneMeters float64 `json:"zone_meters,omitempty"`
}

// UnmarshalJSON decodes the block rejecting unknown fields. The top-level
// spec decoders (ReadSpecs, the PUT /instances handler) already use
// DisallowUnknownFields, but a json.Decoder's strictness does not descend
// into types with custom unmarshallers — and a typo like "zone_caps" inside
// the nested block must fail loudly on every decode path, not silently
// build an unconstrained instance.
func (m *ModelSpec) UnmarshalJSON(b []byte) error {
	type plain ModelSpec // drops the method set; no recursion
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var p plain
	if err := dec.Decode(&p); err != nil {
		return fmt.Errorf("model block: %w", err)
	}
	*m = ModelSpec(p)
	return nil
}

// ModelKind returns the model kind the spec selects, normalizing the
// absent/empty cases to the base model's wire name.
func (s Spec) ModelKind() string {
	if s.Model == nil || s.Model.Kind == "" {
		return core.ModelBase
	}
	return s.Model.Kind
}

// normalizedModel fills the model block's defaults, copying the block so
// Normalized never aliases its receiver's pointer.
func (s Spec) normalizedModel() *ModelSpec {
	if s.Model == nil {
		return nil
	}
	m := *s.Model
	if m.Kind == "" {
		m.Kind = core.ModelBase
	}
	if m.Kind == core.ModelZonal && m.ZoneMeters == 0 {
		m.ZoneMeters = DefaultZoneMeters
	}
	return &m
}

// validateModel checks a (normalized) model block.
func validateModel(m *ModelSpec) error {
	if m == nil {
		return nil
	}
	switch m.Kind {
	case core.ModelBase:
		if m.ZoneCap != 0 || m.ZoneMeters != 0 {
			return fmt.Errorf("catalog: model %q takes no zone parameters (zone_cap %d, zone_meters %v)",
				m.Kind, m.ZoneCap, m.ZoneMeters)
		}
	case core.ModelZonal:
		if m.ZoneCap < 1 {
			return fmt.Errorf("catalog: zonal model requires zone_cap >= 1, got %d", m.ZoneCap)
		}
		if m.ZoneMeters <= 0 {
			return fmt.Errorf("catalog: zonal zone_meters %v must be positive", m.ZoneMeters)
		}
	default:
		return fmt.Errorf("catalog: unknown model kind %q (want %q or %q)",
			m.Kind, core.ModelBase, core.ModelZonal)
	}
	return nil
}

// ZonePartition assigns each billboard to a zone: uniform square cells of
// cellMeters over the billboards' bounding rectangle (the same cell math as
// geo.Grid), re-indexed densely in billboard-ID order so zone IDs are
// contiguous and deterministic. It returns the partition and the number of
// occupied zones. Build uses it to construct zonal instances; it is exported
// for callers (mroam sim) that build universes outside the catalog pipeline
// but want the same zone geometry.
func ZonePartition(pts []geo.Point, cellMeters float64) (zoneOf []int, zones int) {
	zoneOf = make([]int, len(pts))
	if len(pts) == 0 {
		return zoneOf, 0
	}
	bounds := geo.BoundingRect(pts)
	cols := int(math.Floor(bounds.Width()/cellMeters)) + 1
	rows := int(math.Floor(bounds.Height()/cellMeters)) + 1
	cellZone := make(map[int]int)
	for i, p := range pts {
		cx := int((p.X - bounds.Min.X) / cellMeters)
		cy := int((p.Y - bounds.Min.Y) / cellMeters)
		if cx < 0 {
			cx = 0
		} else if cx >= cols {
			cx = cols - 1
		}
		if cy < 0 {
			cy = 0
		} else if cy >= rows {
			cy = rows - 1
		}
		cell := cy*cols + cx
		z, ok := cellZone[cell]
		if !ok {
			z = len(cellZone)
			cellZone[cell] = z
		}
		zoneOf[i] = z
	}
	return zoneOf, len(cellZone)
}
