package catalog

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/market"
	"repro/internal/rng"
)

// TestSolversInvariantUnderCompression is the corridor substrate's
// end-to-end guarantee: every paper algorithm, serial or parallel, must
// return a bit-identical plan whether it runs on the dense per-trajectory
// universe or on the corridor-compressed one. This holds by construction —
// compression preserves every influence quantity the solvers and their
// tie-breaks read (Degree, TotalSupply, union counts, marginal gains) —
// and this test pins it against both cities' generators.
//
// It is deliberately run under -race -shuffle=on in `make check`: the
// workers=4 runs exercise the parallel restart loop on the weighted
// counter path.
func TestSolversInvariantUnderCompression(t *testing.T) {
	for _, city := range []string{"NYC", "SG"} {
		spec := Spec{City: city, Scale: 0.03, Seed: 9, Alpha: 1.2, P: 0.1}.Normalized()
		d, err := BuildDataset(spec)
		if err != nil {
			t.Fatal(err)
		}
		dense, err := d.BuildUniverse(spec.Lambda)
		if err != nil {
			t.Fatal(err)
		}
		comp, stats := coverage.Compress(dense)
		if stats.Corridors >= dense.NumTrajectories() {
			t.Fatalf("%s: no compression (%d corridors for %d trajectories) — test would be vacuous",
				city, stats.Corridors, dense.NumTrajectories())
		}
		build := func(u *coverage.Universe) *core.Instance {
			inst, err := Market(u, market.Config{Alpha: spec.Alpha, P: spec.P}, *spec.Gamma,
				rng.New(spec.Seed).Derive("market"))
			if err != nil {
				t.Fatal(err)
			}
			return inst
		}
		di, ci := build(dense), build(comp)

		for _, workers := range []int{1, 4} {
			opts := core.LocalSearchOptions{Seed: spec.Seed, Restarts: 2, Workers: workers}
			for _, name := range []string{"G-Order", "G-Global", "ALS", "BLS"} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", city, name, workers), func(t *testing.T) {
					alg, err := core.AlgorithmByNameOpts(name, opts)
					if err != nil {
						t.Fatal(err)
					}
					pd, pc := alg.Solve(di), alg.Solve(ci)
					if pd.TotalRegret() != pc.TotalRegret() {
						t.Fatalf("regret dense %v, compressed %v", pd.TotalRegret(), pc.TotalRegret())
					}
					for a := 0; a < di.NumAdvertisers(); a++ {
						ds, cs := pd.Set(a, nil), pc.Set(a, nil)
						if !slices.Equal(ds, cs) {
							t.Fatalf("advertiser %d: dense set %v, compressed set %v", a, ds, cs)
						}
					}
				})
			}
		}
	}
}
