package catalog

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrUnknownAdvertiser reports a patch op referencing an advertiser index
// that does not exist in the entry being patched (servers map it to 409:
// the caller's view of the market is stale).
var ErrUnknownAdvertiser = errors.New("catalog: unknown advertiser")

// PatchOp is one advertiser mutation in a PATCH request. Advertiser indexes
// reference the pre-patch entry — every op in one Patch call is resolved
// against the same generation, so a client that read the instance listing
// can compose a whole day of churn without tracking intermediate indexes.
type PatchOp struct {
	// Op is "add", "remove" or "revise".
	Op string `json:"op"`
	// Advertiser is the pre-patch advertiser index for "remove" and
	// "revise"; ignored by "add".
	Advertiser int `json:"advertiser,omitempty"`
	// Demand is the demanded influence I_i: required (>= 1) for "add" and
	// "revise"; ignored by "remove".
	Demand int64 `json:"demand,omitempty"`
	// Payment is the committed payment L_i: required (>= 0) for "add". For
	// "revise" a positive value replaces the payment and zero keeps the
	// current one (a revision that zeroes a payment is a "remove" in all
	// but name — model it as remove + add).
	Payment float64 `json:"payment,omitempty"`
}

// PatchResult maps the patched entry back onto its predecessor — the
// information a warm-starting solver needs to carry an incumbent plan
// across the generation bump.
type PatchResult struct {
	// OldIndexOf[j] is the pre-patch index of post-patch advertiser j, or
	// -1 when j was added by this patch.
	OldIndexOf []int
	// Dirty[j] reports that post-patch advertiser j cannot reuse its
	// incumbent billboard set as-is: it was added or its demand was
	// revised. Advertisers that merely shifted index are not dirty.
	Dirty []bool
	// Removed is the number of advertisers the patch removed. A removal
	// frees the supply the incumbent had assigned to it, which widens the
	// neighborhood of every remaining advertiser (core.WarmStart.FreedSupply).
	Removed int
}

// Patch applies ops to the named entry as one atomic copy-on-write rebuild:
// the coverage universe, γ, impression threshold and regret model are
// reused unchanged, only the advertiser set is rewritten, and the result is
// installed under a fresh generation. In-flight solves keep the entry they
// resolved; the solve cache keys on generation, so no stale plan can be
// served for the patched market.
//
// Ops are validated against the pre-patch advertiser set before anything is
// installed — on any error the catalog is unchanged. Unlike Load, the
// rebuild is cheap (no dataset work), so it runs under the writer lock,
// which makes concurrent patches linearizable: each sees its predecessor's
// result, and none is lost.
func (c *Catalog) Patch(name string, ops []PatchOp) (*Entry, PatchResult, error) {
	if len(ops) == 0 {
		return nil, PatchResult{}, errors.New("catalog: empty patch")
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	snap := c.snap.Load()
	if name == "" {
		name = snap.defaultName
	}
	old, ok := snap.entries[name]
	if !ok {
		return nil, PatchResult{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}

	n := old.Instance.NumAdvertisers()
	cur := make([]core.Advertiser, n)
	for i := range cur {
		cur[i] = old.Instance.Advertiser(i)
	}
	removed := make([]bool, n)
	revised := make([]bool, n)
	var added []core.Advertiser
	for k, op := range ops {
		switch op.Op {
		case "add":
			if op.Demand < 1 {
				return nil, PatchResult{}, fmt.Errorf("catalog: patch op %d: add demand %d < 1", k, op.Demand)
			}
			if op.Payment < 0 {
				return nil, PatchResult{}, fmt.Errorf("catalog: patch op %d: add payment %v < 0", k, op.Payment)
			}
			added = append(added, core.Advertiser{Demand: op.Demand, Payment: op.Payment})
		case "remove":
			if op.Advertiser < 0 || op.Advertiser >= n || removed[op.Advertiser] {
				return nil, PatchResult{}, fmt.Errorf("%w: %d (entry %q has %d advertisers)", ErrUnknownAdvertiser, op.Advertiser, name, n)
			}
			removed[op.Advertiser] = true
		case "revise":
			if op.Advertiser < 0 || op.Advertiser >= n || removed[op.Advertiser] {
				return nil, PatchResult{}, fmt.Errorf("%w: %d (entry %q has %d advertisers)", ErrUnknownAdvertiser, op.Advertiser, name, n)
			}
			if op.Demand < 1 {
				return nil, PatchResult{}, fmt.Errorf("catalog: patch op %d: revise demand %d < 1", k, op.Demand)
			}
			cur[op.Advertiser].Demand = op.Demand
			if op.Payment > 0 {
				cur[op.Advertiser].Payment = op.Payment
			}
			revised[op.Advertiser] = true
		default:
			return nil, PatchResult{}, fmt.Errorf("catalog: patch op %d: unknown op %q (want add, remove or revise)", k, op.Op)
		}
	}

	res := PatchResult{}
	var advs []core.Advertiser
	for i := 0; i < n; i++ {
		if removed[i] {
			res.Removed++
			continue
		}
		advs = append(advs, cur[i])
		res.OldIndexOf = append(res.OldIndexOf, i)
		res.Dirty = append(res.Dirty, revised[i])
	}
	for _, a := range added {
		advs = append(advs, a)
		res.OldIndexOf = append(res.OldIndexOf, -1)
		res.Dirty = append(res.Dirty, true)
	}
	if len(advs) == 0 {
		return nil, PatchResult{}, errors.New("catalog: patch would remove every advertiser")
	}

	inst, err := core.NewInstanceWithImpressions(old.Instance.Universe(), advs,
		old.Instance.Gamma(), old.Instance.Impressions())
	if err != nil {
		return nil, PatchResult{}, fmt.Errorf("catalog: patch %q: %w", name, err)
	}
	// Models are stateless over plans and keyed to the universe (which is
	// shared), so the predecessor's model reattaches verbatim.
	if old.Instance.Model().Kind() != core.ModelBase {
		inst, err = inst.WithModel(old.Instance.Model())
		if err != nil {
			return nil, PatchResult{}, fmt.Errorf("catalog: patch %q: %w", name, err)
		}
	}

	e := &Entry{Name: old.Name, Spec: old.Spec, Info: old.Info, Instance: inst}
	e.Info.Advertisers = len(advs)
	c.installLocked(e)
	return e, res, nil
}
