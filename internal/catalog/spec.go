// Package catalog is the instance-construction layer of the reproduction:
// a declarative, JSON-round-trippable Spec describing one MROAM instance,
// a single Build pipeline that turns a Spec into an immutable
// *core.Instance (replacing the build code previously copy-pasted across
// every CLI subcommand and the daemon), and a named registry of loaded
// instances with atomic hot-swap so a serving process can host many
// markets at once and reload any of them without perturbing in-flight
// solves.
//
// The three layers:
//
//	Spec                 what to build (city, scale, seed, λ, α, p, γ, or
//	                     a saved dataset directory)
//	Build(Spec)          the one dataset.Generate/Load → BuildUniverse →
//	                     market.NewInstance pipeline in the repository
//	Catalog              name → immutable Entry snapshots, lock-free reads,
//	                     atomic replace with a monotone generation counter
package catalog

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/market"
)

// Default knob values a Spec leaves unset; they mirror the bold entries of
// the paper's Table 6 plus the CLI's customary quarter-scale dataset.
const (
	// DefaultCity is assumed when a Spec names neither a city nor a saved
	// dataset directory.
	DefaultCity = "NYC"
	// DefaultScale is the dataset scale fraction applied when a Spec
	// leaves Scale unset.
	DefaultScale = 0.25
	// TierScale is the Spec.Tier value selecting paper-scale streaming
	// generation.
	TierScale = "scale"
)

// Spec declaratively describes one MROAM instance. The zero value of every
// field means "use the default", so a Spec round-trips through JSON without
// noise: marshalling a normalized Spec and unmarshalling it back yields an
// equivalent instance. γ is a pointer because 0 is a meaningful γ (the
// paper's Table 6 grid includes it); nil selects market.DefaultGamma.
type Spec struct {
	// Name is the catalog name of the instance. Optional for direct
	// Build calls; required (and unique) in an -instances fleet file.
	Name string `json:"name,omitempty"`
	// City is the synthetic dataset generator: "NYC" or "SG". Ignored
	// when Data is set. Empty selects DefaultCity.
	City string `json:"city,omitempty"`
	// Data is a saved dataset directory (written by `mroam gen`) to load
	// instead of generating; it overrides City/Scale.
	Data string `json:"data,omitempty"`
	// Scale is the fraction of the tier's base dataset scale. Zero selects
	// DefaultScale ("" tier) or 1.0 ("scale" tier).
	Scale float64 `json:"scale,omitempty"`
	// Tier selects the dataset size class. Empty is the default tier:
	// materialized generation at DefaultScale of the ~40-55k-trajectory
	// synthetic defaults. TierScale selects the paper-scale configuration
	// (Table 5: |T| = 1.7M NYC / 2.2M SG) built with streaming generation —
	// trajectories are never materialized, so Data cannot be combined with
	// it and `mroam gen` cannot save it. Scale then multiplies the
	// trajectory count only; the billboard inventory stays at the paper's
	// (1462 NYC / 4092 SG).
	Tier string `json:"tier,omitempty"`
	// Seed drives dataset generation, market generation and (by CLI
	// convention) the solvers. Zero is a valid seed and is kept.
	Seed uint64 `json:"seed,omitempty"`
	// Alpha is the demand-supply ratio α; zero selects market.DefaultAlpha.
	Alpha float64 `json:"alpha,omitempty"`
	// P is the average-individual demand ratio p; zero selects
	// market.DefaultP.
	P float64 `json:"p,omitempty"`
	// Gamma is the unsatisfied penalty ratio γ; nil selects
	// market.DefaultGamma (0 is a legal value, hence the pointer).
	Gamma *float64 `json:"gamma,omitempty"`
	// Lambda is the influence radius λ in meters; zero selects
	// market.DefaultLambda.
	Lambda float64 `json:"lambda,omitempty"`
	// Model selects the regret model the built instance carries; nil (and
	// the absent JSON block) is the base MROAM model. See ModelSpec.
	Model *ModelSpec `json:"model,omitempty"`
}

// GammaPtr is a convenience for building Specs with an explicit γ.
func GammaPtr(g float64) *float64 { return &g }

// DefaultSpec returns a Spec with every defaultable field filled in: NYC at
// quarter scale, seed 42, and the paper's Table 6 default market knobs.
func DefaultSpec() Spec {
	return Spec{
		City:   DefaultCity,
		Scale:  DefaultScale,
		Seed:   42,
		Alpha:  market.DefaultAlpha,
		P:      market.DefaultP,
		Gamma:  GammaPtr(market.DefaultGamma),
		Lambda: market.DefaultLambda,
	}
}

// Normalized returns a copy with defaults filled in for every unset field.
// Build normalizes its input, so callers only need this to inspect the
// effective parameters (or to produce a canonical JSON form).
func (s Spec) Normalized() Spec {
	if s.City == "" && s.Data == "" {
		s.City = DefaultCity
	}
	if s.Scale <= 0 && s.Data == "" {
		if s.Tier == TierScale {
			s.Scale = 1.0
		} else {
			s.Scale = DefaultScale
		}
	}
	if s.Alpha == 0 {
		s.Alpha = market.DefaultAlpha
	}
	if s.P == 0 {
		s.P = market.DefaultP
	}
	if s.Gamma == nil {
		s.Gamma = GammaPtr(market.DefaultGamma)
	}
	if s.Lambda == 0 {
		s.Lambda = market.DefaultLambda
	}
	s.Model = s.normalizedModel()
	return s
}

// validName bounds catalog names to something safe in URLs, log lines and
// metric label values.
var validName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateName reports whether name is usable as a catalog instance name.
func ValidateName(name string) error {
	if !validName.MatchString(name) {
		return fmt.Errorf("catalog: invalid instance name %q (want 1-64 of [A-Za-z0-9._-], starting alphanumeric)", name)
	}
	return nil
}

// Validate reports whether the (normalized) Spec describes a buildable
// instance. It checks everything checkable without touching the filesystem;
// Data directories are only validated by Build actually loading them.
func (s Spec) Validate() error {
	s = s.Normalized()
	if s.Name != "" {
		if err := ValidateName(s.Name); err != nil {
			return err
		}
	}
	switch s.Tier {
	case "", TierScale:
	default:
		return fmt.Errorf("catalog: unknown tier %q (want empty or %q)", s.Tier, TierScale)
	}
	if s.Tier == TierScale && s.Data != "" {
		return fmt.Errorf("catalog: tier %q generates by streaming and cannot load -data directories", TierScale)
	}
	if s.Data == "" {
		switch strings.ToUpper(s.City) {
		case "NYC", "SG":
		default:
			return fmt.Errorf("catalog: unknown city %q (want NYC or SG)", s.City)
		}
		if s.Scale <= 0 {
			return fmt.Errorf("catalog: scale %v must be positive", s.Scale)
		}
	}
	if s.Alpha <= 0 {
		return fmt.Errorf("catalog: alpha %v must be positive", s.Alpha)
	}
	if s.P <= 0 || s.P > 1 {
		return fmt.Errorf("catalog: p %v must be in (0, 1]", s.P)
	}
	if *s.Gamma < 0 {
		return fmt.Errorf("catalog: gamma %v must be non-negative", *s.Gamma)
	}
	if s.Lambda <= 0 {
		return fmt.Errorf("catalog: lambda %v must be positive", s.Lambda)
	}
	return validateModel(s.Model)
}
