package catalog

import (
	"errors"
	"flag"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
)

// tinySpec builds in a few milliseconds; tests that exercise registry
// mechanics rather than the pipeline use it.
func tinySpec() Spec {
	return Spec{City: "NYC", Scale: 0.02, Seed: 5, Alpha: 2.0, P: 0.1}
}

func tinyInstance(tb testing.TB) *core.Instance {
	tb.Helper()
	inst, _, err := Build(tinySpec())
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func TestBuildMatchesHandwrittenPipeline(t *testing.T) {
	// Build must be a faithful refactor of the pipeline the CLI used to
	// inline: same dataset, same universe, same advertisers.
	inst, info, err := Build(Spec{City: "NYC", Scale: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if info.City != "NYC" || info.Trajectories != 800 {
		t.Errorf("info = %+v, want NYC with 800 trajectories (scale 0.02)", info)
	}
	if info.Billboards != inst.Universe().NumBillboards() ||
		info.Advertisers != inst.NumAdvertisers() {
		t.Errorf("info dims %+v disagree with instance (%d billboards, %d advertisers)",
			info, inst.Universe().NumBillboards(), inst.NumAdvertisers())
	}
	if info.Advertisers != 20 { // α=1.0 / p=0.05 defaults
		t.Errorf("advertisers = %d, want round(α/p) = 20", info.Advertisers)
	}
}

// TestBuildDeterminism: the same Spec must yield instances on which BLS
// returns bit-identical plans, at any worker count — the contract that
// makes hot-swap reloads reproducible.
func TestBuildDeterminism(t *testing.T) {
	spec := tinySpec()
	instA, _, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	instB, _, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*core.Plan
	for _, inst := range []*core.Instance{instA, instB} {
		for _, workers := range []int{1, 4} {
			alg := core.BLSAlgorithm{Opts: core.LocalSearchOptions{
				Seed: 9, Restarts: 3, Workers: workers,
			}}
			plans = append(plans, alg.Solve(inst))
		}
	}
	want := plans[0]
	for i, p := range plans[1:] {
		if p.TotalRegret() != want.TotalRegret() {
			t.Fatalf("plan %d regret %v, want %v", i+1, p.TotalRegret(), want.TotalRegret())
		}
		for a := 0; a < instA.NumAdvertisers(); a++ {
			got, ws := p.Set(a, nil), want.Set(a, nil)
			if len(got) != len(ws) {
				t.Fatalf("plan %d advertiser %d set %v, want %v", i+1, a, got, ws)
			}
			for j := range got {
				if got[j] != ws[j] {
					t.Fatalf("plan %d advertiser %d set %v, want %v", i+1, a, got, ws)
				}
			}
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{City: "Atlantis"},
		{Alpha: -1},
		{P: 2},
		{Gamma: GammaPtr(-0.5)},
		{Lambda: -10},
		{Data: "/nonexistent/dataset"},
		{Name: "no spaces allowed"},
	}
	for _, s := range bad {
		if _, _, err := Build(s); err == nil {
			t.Errorf("Build(%+v) accepted", s)
		}
	}
}

func TestCatalogDefaultAndHotSwap(t *testing.T) {
	c := New()
	if _, ok := c.Get(""); ok {
		t.Error("empty catalog resolved a default")
	}
	e1, err := c.Load("a", tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.DefaultName() != "a" || e1.Generation != 1 {
		t.Errorf("first load: default %q gen %d, want a/1", c.DefaultName(), e1.Generation)
	}
	if got, ok := c.Get(""); !ok || got != e1 {
		t.Error("Get(\"\") did not resolve the default entry")
	}

	// Reload under the same name: new entry, strictly larger generation,
	// and the old entry object is untouched (in-flight solves keep it).
	spec2 := tinySpec()
	spec2.Seed = 6
	e2, err := c.Load("a", spec2)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Generation <= e1.Generation {
		t.Errorf("reload generation %d not above %d", e2.Generation, e1.Generation)
	}
	if e1.Instance == e2.Instance {
		t.Error("reload returned the same instance pointer")
	}
	if got, _ := c.Get("a"); got != e2 {
		t.Error("Get did not observe the reload")
	}
	if e1.Spec.Seed != 5 { // old snapshot unperturbed
		t.Errorf("old entry mutated: seed %d", e1.Spec.Seed)
	}

	if _, err := c.Load("bad name", tinySpec()); err == nil {
		t.Error("invalid name accepted")
	}
	if _, ok := c.Get("missing"); ok {
		t.Error("unknown name resolved")
	}
}

func TestCatalogDelete(t *testing.T) {
	c := New()
	if _, err := c.AddInstance("main", tinyInstance(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddInstance("aux", tinyInstance(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("main"); !errors.Is(err, ErrDefaultDelete) {
		t.Errorf("deleting the default: %v, want ErrDefaultDelete", err)
	}
	if err := c.Delete("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleting a missing name: %v, want ErrNotFound", err)
	}
	if err := c.Delete("aux"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("len %d after delete, want 1", c.Len())
	}
	if names := entryNames(c); names != "main" {
		t.Errorf("entries %q, want main", names)
	}
}

func entryNames(c *Catalog) string {
	var names []string
	for _, e := range c.List() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ",")
}

// TestCatalogConcurrentReads: readers resolving entries while a writer
// hot-swaps must never observe a torn state (run under -race).
func TestCatalogConcurrentReads(t *testing.T) {
	c := New()
	inst := tinyInstance(t)
	if _, err := c.AddInstance("a", inst); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, ok := c.Get("a")
				if !ok || e.Instance == nil || e.Name != "a" {
					t.Error("torn read")
					return
				}
				c.List()
				c.Len()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := c.AddInstance("a", inst); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if e, _ := c.Get("a"); e.Generation != 51 {
		t.Errorf("final generation %d, want 51", e.Generation)
	}
}

func TestAddInstanceRecordsDims(t *testing.T) {
	lists := []coverage.List{coverage.NewList([]int32{0, 1}), coverage.NewList([]int32{1})}
	u, err := coverage.NewUniverse(3, lists)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.NewInstance(u, []core.Advertiser{{Demand: 1, Payment: 1}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	e, err := c.AddInstance("hand", inst)
	if err != nil {
		t.Fatal(err)
	}
	if e.Info.Billboards != 2 || e.Info.Trajectories != 3 || e.Info.Advertisers != 1 {
		t.Errorf("info %+v, want 2 billboards / 3 trajectories / 1 advertiser", e.Info)
	}
}

func TestBindFlagsFieldGroups(t *testing.T) {
	defaults := DefaultSpec()
	defaults.Scale = 0.12

	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	f := Bind(fs, FieldDataset|FieldData|FieldLambda, defaults)
	if fs.Lookup("alpha") != nil || fs.Lookup("gamma") != nil {
		t.Error("market flags registered without FieldMarket")
	}
	if err := fs.Parse([]string{"-city", "SG", "-lambda", "150"}); err != nil {
		t.Fatal(err)
	}
	s := f.Spec().Normalized()
	if s.City != "SG" || s.Lambda != 150 || s.Scale != 0.12 {
		t.Errorf("spec %+v, want SG λ=150 scale=0.12", s)
	}
	if s.Alpha != defaults.Alpha || *s.Gamma != *defaults.Gamma {
		t.Errorf("unregistered groups drifted from defaults: %+v", s)
	}

	full := flag.NewFlagSet("solve", flag.ContinueOnError)
	g := Bind(full, FieldsAll, DefaultSpec())
	if err := full.Parse([]string{"-alpha", "0.8", "-gamma", "0", "-data", "/tmp/x"}); err != nil {
		t.Fatal(err)
	}
	got := g.Spec()
	if got.Alpha != 0.8 || got.Gamma == nil || *got.Gamma != 0 || got.Data != "/tmp/x" {
		t.Errorf("spec %+v, want α=0.8 γ=0 data=/tmp/x", got)
	}
}

func TestReadSpecs(t *testing.T) {
	good := `[{"name":"nyc","city":"NYC","scale":0.02},{"name":"sg","city":"SG","scale":0.02,"seed":7}]`
	specs, err := ReadSpecs(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "nyc" || specs[1].Seed != 7 {
		t.Errorf("specs %+v", specs)
	}
	bad := []string{
		`[]`,
		`[{"city":"NYC"}]`,                 // missing name
		`[{"name":"a"},{"name":"a"}]`,      // duplicate
		`[{"name":"a","city":"Atlantis"}]`, // invalid city
		`[{"name":"a","frobnicate":1}]`,    // unknown field
		`{"name":"a"}`,                     // not an array
	}
	for _, in := range bad {
		if _, err := ReadSpecs(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSpecs(%s) accepted", in)
		}
	}
}
