package catalog

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

// TestModelSpecRejectsUnknownFields pins the nested-strictness contract: a
// typo inside the "model" block fails on every decode path, because
// json.Decoder.DisallowUnknownFields does not descend into types with custom
// unmarshallers — ModelSpec carries its own strict decoder.
func TestModelSpecRejectsUnknownFields(t *testing.T) {
	bad := `{"name": "z", "city": "NYC", "model": {"kind": "zonal", "zone_caps": 40}}`

	// Direct Spec decode (the PUT /instances handler path).
	var s Spec
	err := json.Unmarshal([]byte(bad), &s)
	if err == nil || !strings.Contains(err.Error(), "model block") ||
		!strings.Contains(err.Error(), "zone_caps") {
		t.Errorf("Spec decode of typo'd model block: err = %v", err)
	}

	// Fleet-file decode (the mroamd -instances path).
	if _, err := ReadSpecs(strings.NewReader("[" + bad + "]")); err == nil ||
		!strings.Contains(err.Error(), "zone_caps") {
		t.Errorf("ReadSpecs accepted typo'd model block: err = %v", err)
	}

	// Unknown fields outside the block still fail via the top-level decoder.
	if _, err := ReadSpecs(strings.NewReader(`[{"name": "a", "citty": "NYC"}]`)); err == nil {
		t.Error("ReadSpecs accepted unknown top-level field")
	}

	// A well-formed block still decodes.
	good := `{"name": "z", "model": {"kind": "zonal", "zone_cap": 40, "zone_meters": 500}}`
	if err := json.Unmarshal([]byte(good), &s); err != nil {
		t.Fatalf("well-formed model block rejected: %v", err)
	}
	if s.Model == nil || s.Model.Kind != core.ModelZonal || s.Model.ZoneCap != 40 || s.Model.ZoneMeters != 500 {
		t.Errorf("model block decoded to %+v", s.Model)
	}
}

func TestModelSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error; "" means valid
	}{
		{"absent block", Spec{}, ""},
		{"explicit base", Spec{Model: &ModelSpec{Kind: "base"}}, ""},
		{"zonal", Spec{Model: &ModelSpec{Kind: "zonal", ZoneCap: 10}}, ""},
		{"zonal custom grid", Spec{Model: &ModelSpec{Kind: "zonal", ZoneCap: 10, ZoneMeters: 250}}, ""},
		{"base with zone params", Spec{Model: &ModelSpec{Kind: "base", ZoneCap: 10}}, "takes no zone parameters"},
		{"zonal without cap", Spec{Model: &ModelSpec{Kind: "zonal"}}, "zone_cap >= 1"},
		{"zonal negative cap", Spec{Model: &ModelSpec{Kind: "zonal", ZoneCap: -3}}, "zone_cap >= 1"},
		{"zonal negative grid", Spec{Model: &ModelSpec{Kind: "zonal", ZoneCap: 5, ZoneMeters: -1}}, "must be positive"},
		{"unknown kind", Spec{Model: &ModelSpec{Kind: "fractal"}}, "unknown model kind"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestModelSpecNormalization(t *testing.T) {
	// Absent block stays absent; ModelKind still reports base.
	if n := (Spec{}).Normalized(); n.Model != nil {
		t.Errorf("absent model block normalized to %+v", n.Model)
	}
	if got := (Spec{}).ModelKind(); got != core.ModelBase {
		t.Errorf("absent block ModelKind %q", got)
	}

	// Zonal defaults fill in; the input spec's pointer is not aliased.
	in := Spec{Model: &ModelSpec{Kind: "zonal", ZoneCap: 7}}
	n := in.Normalized()
	if n.Model.ZoneMeters != DefaultZoneMeters {
		t.Errorf("zone_meters defaulted to %v, want %v", n.Model.ZoneMeters, DefaultZoneMeters)
	}
	if in.Model.ZoneMeters != 0 {
		t.Error("Normalized aliased the caller's model block")
	}
	if got := n.ModelKind(); got != core.ModelZonal {
		t.Errorf("ModelKind %q", got)
	}

	// Empty kind inside a present block means base.
	if got := (Spec{Model: &ModelSpec{}}).Normalized().Model.Kind; got != core.ModelBase {
		t.Errorf("empty kind normalized to %q", got)
	}
}

func TestDescribeZonal(t *testing.T) {
	s := Spec{Model: &ModelSpec{Kind: "zonal", ZoneCap: 40}}
	got := s.Describe()
	if !strings.Contains(got, "model=zonal(cap=40, zone=1000m)") {
		t.Errorf("Describe() = %q", got)
	}
}

func TestZonePartition(t *testing.T) {
	pts := []geo.Point{
		{X: 0, Y: 0},
		{X: 10, Y: 10},   // same 100m cell as the first point
		{X: 150, Y: 0},   // next column
		{X: 0, Y: 150},   // next row
		{X: 150, Y: 150}, // diagonal cell
		{X: 10, Y: 10},   // duplicate location
	}
	zoneOf, zones := ZonePartition(pts, 100)
	if zones != 4 {
		t.Fatalf("zones = %d, want 4 (partition %v)", zones, zoneOf)
	}
	if zoneOf[0] != zoneOf[1] || zoneOf[1] != zoneOf[5] {
		t.Errorf("co-located points split across zones: %v", zoneOf)
	}
	// Dense re-index in first-seen order: zone IDs appear in increasing order
	// of first occurrence.
	seen := -1
	for _, z := range zoneOf {
		if z > seen+1 {
			t.Fatalf("zone IDs not densely assigned in first-seen order: %v", zoneOf)
		}
		if z == seen+1 {
			seen = z
		}
	}
	// Empty input.
	if zo, z := ZonePartition(nil, 100); len(zo) != 0 || z != 0 {
		t.Errorf("empty partition: %v, %d", zo, z)
	}
}

// TestBuildZonal builds a zonal instance end-to-end through the catalog
// pipeline and checks the instance carries the model, the plan respects it,
// and BuildInfo reports the partition.
func TestBuildZonal(t *testing.T) {
	spec := Spec{City: "NYC", Scale: 0.02, Seed: 5,
		Model: &ModelSpec{Kind: "zonal", ZoneCap: 10}}
	inst, info, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	zm, ok := inst.Model().(*core.ZonalModel)
	if !ok {
		t.Fatalf("built instance carries %T, want *core.ZonalModel", inst.Model())
	}
	if zm.Cap() != 10 {
		t.Errorf("cap %d, want 10", zm.Cap())
	}
	if info.Model != core.ModelZonal || info.Zones != zm.Zones() || info.ZoneCap != 10 {
		t.Errorf("BuildInfo model fields: %q zones=%d cap=%d (model has %d zones)",
			info.Model, info.Zones, info.ZoneCap, zm.Zones())
	}
	if info.Zones < 2 {
		t.Errorf("degenerate partition: %d zones", info.Zones)
	}

	alg, err := core.AlgorithmByNameOpts("BLS", core.LocalSearchOptions{Seed: 7, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := alg.Solve(inst)
	if err := p.Validate(); err != nil {
		t.Fatalf("zonal plan infeasible: %v", err)
	}

	// The base build of the same spec reports the base model and no zones.
	bspec := spec
	bspec.Model = nil
	binst, binfo, err := Build(bspec)
	if err != nil {
		t.Fatal(err)
	}
	if binfo.Model != core.ModelBase || binfo.Zones != 0 || binfo.ZoneCap != 0 {
		t.Errorf("base BuildInfo model fields: %q zones=%d cap=%d", binfo.Model, binfo.Zones, binfo.ZoneCap)
	}
	if binst.Model().Kind() != core.ModelBase {
		t.Errorf("base instance model %q", binst.Model().Kind())
	}
	// The zonal constraint must actually bind on this configuration —
	// an unconstrained solve of the same market must violate the caps,
	// otherwise the fixture proves nothing about the model plumbing.
	bp := alg.Solve(binst)
	if zm.Validate(bp) == nil {
		t.Error("base plan already satisfies the zonal caps; fixture cap 10 does not bind")
	}
}
