package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

// recordingTracer captures every probe event; safe for concurrent use.
type recordingTracer struct {
	mu       sync.Mutex
	started  []int
	done     []int
	improved []float64 // in arrival order; the engine must serialize these
	evals    atomic.Int64
	cache    struct{ hits, misses, rescans atomic.Int64 }
}

func (r *recordingTracer) RestartStart(slot int, _ time.Duration) {
	r.mu.Lock()
	r.started = append(r.started, slot)
	r.mu.Unlock()
}

func (r *recordingTracer) RestartDone(slot int, _ float64, _ int64, _ time.Duration) {
	r.mu.Lock()
	r.done = append(r.done, slot)
	r.mu.Unlock()
}

func (r *recordingTracer) Improved(_ int, regret float64, _ time.Duration) {
	r.mu.Lock()
	r.improved = append(r.improved, regret)
	r.mu.Unlock()
}

func (r *recordingTracer) Evals(delta int64) { r.evals.Add(delta) }

func (r *recordingTracer) Cache(delta CacheStats) {
	r.cache.hits.Add(delta.Hits)
	r.cache.misses.Add(delta.Misses)
	r.cache.rescans.Add(delta.Rescans)
}

// TestTracerDoesNotPerturbResults: attaching a tracer must leave the plan
// bit-identical — same sets, regret and evals — for both neighborhood
// strategies and for serial and parallel restart loops. This is the
// zero-interference contract that lets the server attach debug tracing to
// production solves.
func TestTracerDoesNotPerturbResults(t *testing.T) {
	inst := randomInstance(rng.New(512), 350, 40, 25, 6, 1.1, 0.5)
	for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
		base := RandomizedLocalSearch(inst, LocalSearchOptions{
			Search: kind, Restarts: 4, Seed: 99, Workers: 1,
		})
		for _, workers := range []int{1, 4} {
			rec := &recordingTracer{}
			traced := RandomizedLocalSearch(inst, LocalSearchOptions{
				Search: kind, Restarts: 4, Seed: 99, Workers: workers, Tracer: rec,
			})
			comparePlans(t, kind.String(), base, traced)

			// Slots 0..Restarts must each start and finish exactly once.
			if len(rec.started) != 5 || len(rec.done) != 5 {
				t.Errorf("%s workers=%d: %d starts / %d dones, want 5/5",
					kind, workers, len(rec.started), len(rec.done))
			}
			seen := map[int]int{}
			for _, s := range rec.done {
				seen[s]++
			}
			for slot := 0; slot <= 4; slot++ {
				if seen[slot] != 1 {
					t.Errorf("%s workers=%d: slot %d finished %d times", kind, workers, slot, seen[slot])
				}
			}

			// Improved events arrive serialized in strictly decreasing
			// regret order, ending at the final answer.
			if len(rec.improved) == 0 {
				t.Fatalf("%s workers=%d: no improvement events", kind, workers)
			}
			for i := 1; i < len(rec.improved); i++ {
				if rec.improved[i] >= rec.improved[i-1] {
					t.Errorf("%s workers=%d: improvements not strictly decreasing: %v",
						kind, workers, rec.improved)
				}
			}
			if last := rec.improved[len(rec.improved)-1]; last != traced.TotalRegret() {
				t.Errorf("%s workers=%d: last improvement %v != final regret %v",
					kind, workers, last, traced.TotalRegret())
			}

			// Counter deltas must account for all work: the per-slot evals
			// and cache deltas sum to the plan's aggregate counters.
			if got := rec.evals.Load(); got != traced.Evals() {
				t.Errorf("%s workers=%d: tracer evals %d != plan evals %d",
					kind, workers, got, traced.Evals())
			}
			want := traced.CacheStats()
			if rec.cache.hits.Load() != want.Hits ||
				rec.cache.misses.Load() != want.Misses ||
				rec.cache.rescans.Load() != want.Rescans {
				t.Errorf("%s workers=%d: tracer cache {%d %d %d} != plan cache %+v",
					kind, workers,
					rec.cache.hits.Load(), rec.cache.misses.Load(), rec.cache.rescans.Load(), want)
			}
		}
	}
}

// TestTracerFuncsNilCallbacks: a TracerFuncs with every callback nil must
// be usable as a Tracer without panicking — partial instrumentation is the
// common case.
func TestTracerFuncsNilCallbacks(t *testing.T) {
	inst := randomInstance(rng.New(8), 200, 25, 20, 4, 1.0, 0.4)
	var improved int
	tr := &TracerFuncs{
		OnImproved: func(int, float64, time.Duration) { improved++ },
	}
	p := RandomizedLocalSearch(inst, LocalSearchOptions{
		Search: BillboardDriven, Restarts: 3, Seed: 5, Workers: 1, Tracer: tr,
	})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if improved == 0 {
		t.Error("OnImproved never fired")
	}
}
