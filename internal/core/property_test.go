package core

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// This file is the property-based pass over the regret model (Equation 1):
// rather than pinning individual examples, it samples hundreds of random
// instances and random plans and checks the invariants the paper's analysis
// leans on. Each test draws at least 200 instances.

// randomPlan assigns roughly two thirds of the billboards to random
// advertisers.
func randomPlan(r *rng.RNG, inst *Instance) *Plan {
	p := NewPlan(inst)
	for b := 0; b < inst.Universe().NumBillboards(); b++ {
		if r.Intn(3) != 0 {
			p.Assign(b, r.Intn(inst.NumAdvertisers()))
		}
	}
	return p
}

// drawInstance samples instance-shape parameters across the ranges the
// paper's experiments sweep (under- and over-supplied, all γ).
func drawInstance(r *rng.RNG) *Instance {
	nTraj := 20 + r.Intn(200)
	nBB := 5 + r.Intn(40)
	maxDeg := 1 + r.Intn(20)
	nAdv := 1 + r.Intn(8)
	alpha := r.Range(0.2, 2.5)
	gamma := r.Range(0, 1)
	return randomInstance(r, nTraj, nBB, maxDeg, nAdv, alpha, gamma)
}

func TestPropertyRegretInvariants(t *testing.T) {
	r := rng.New(1234)
	const trials = 220
	for trial := 0; trial < trials; trial++ {
		inst := drawInstance(r)
		p := randomPlan(r, inst)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < inst.NumAdvertisers(); i++ {
			// The incremental counter must agree with the from-scratch
			// bitset evaluator.
			achieved := inst.Universe().UnionCount(p.Set(i, nil))
			if achieved != p.Influence(i) {
				t.Fatalf("trial %d adv %d: counter influence %d, bitset %d",
					trial, i, p.Influence(i), achieved)
			}
			// R(S_i) ≥ 0 on both branches of Equation 1, and at most the
			// worst case max(L_i, L_i·(I(S)−I_i)/I_i).
			if reg := p.Regret(i); reg < 0 {
				t.Fatalf("trial %d adv %d: negative regret %v", trial, i, reg)
			}
			if !p.Satisfied(i) {
				a := inst.Advertiser(i)
				if reg := p.Regret(i); reg > a.Payment+1e-9 {
					t.Fatalf("trial %d adv %d: unsatisfied regret %v exceeds payment %v",
						trial, i, reg, a.Payment)
				}
			}
			// R′(S_i) ≤ L_i with equality iff R(S_i) = 0 (for L_i > 0).
			a := inst.Advertiser(i)
			dual := inst.Dual(i, p.Influence(i))
			if dual > a.Payment+1e-9 {
				t.Fatalf("trial %d adv %d: dual %v exceeds payment %v", trial, i, dual, a.Payment)
			}
			if a.Payment > 0 {
				zeroRegret := p.Regret(i) == 0
				fullDual := math.Abs(dual-a.Payment) < 1e-9
				if zeroRegret != fullDual {
					t.Fatalf("trial %d adv %d: R=%v but R′=%v (L=%v)",
						trial, i, p.Regret(i), dual, a.Payment)
				}
			}
		}
		// The stacked-bar decomposition must sum back to the objective.
		excess, unsat := p.Breakdown()
		if diff := math.Abs(excess + unsat - p.TotalRegret()); diff > 1e-6 {
			t.Fatalf("trial %d: breakdown %v + %v != total %v", trial, excess, unsat, p.TotalRegret())
		}
		// The host never collects more than the perfect-deployment revenue.
		if rev := Revenue(p); rev < 0 || rev > inst.TotalPayment()+1e-6 {
			t.Fatalf("trial %d: revenue %v outside [0, %v]", trial, rev, inst.TotalPayment())
		}
	}
}

// TestPropertyBranchSwitchContinuity checks the closed-form behavior of
// Equation 1 where its two branches meet, on 200 random (I_i, L_i, γ)
// draws: R is exactly 0 at I(S_i) = I_i, the drop across the last
// demanded trajectory is L_i(1−γ) + L_i·γ/I_i, the first excess
// trajectory costs L_i/I_i, and R is monotone on each side of the demand.
func TestPropertyBranchSwitchContinuity(t *testing.T) {
	r := rng.New(99)
	emptyUniverse := coverage.MustUniverse(0, nil)
	for trial := 0; trial < 200; trial++ {
		d := int64(1 + r.Intn(1000))
		L := r.Range(0.01, 50)
		gamma := r.Range(0, 1)
		inst := MustInstance(emptyUniverse, []Advertiser{{Demand: d, Payment: L}}, gamma)

		if reg := inst.Regret(0, int(d)); reg != 0 {
			t.Fatalf("trial %d: R at demand = %v, want 0", trial, reg)
		}
		if dual := inst.Dual(0, int(d)); math.Abs(dual-L) > 1e-9*L {
			t.Fatalf("trial %d: R′ at demand = %v, want L = %v", trial, dual, L)
		}
		drop := inst.Regret(0, int(d)-1) - inst.Regret(0, int(d))
		wantDrop := L*(1-gamma) + L*gamma/float64(d)
		if math.Abs(drop-wantDrop) > 1e-9*L {
			t.Fatalf("trial %d: branch-switch drop %v, want %v (d=%d γ=%v)",
				trial, drop, wantDrop, d, gamma)
		}
		step := inst.Regret(0, int(d)+1)
		if math.Abs(step-L/float64(d)) > 1e-9*L {
			t.Fatalf("trial %d: first excess step %v, want %v", trial, step, L/float64(d))
		}
		// Monotone: decreasing up to the demand, increasing beyond it.
		probe := func(a int) float64 { return inst.Regret(0, a) }
		for a := 1; int64(a) <= d; a += 1 + int(d)/7 {
			if probe(a) > probe(a-1)+1e-12 {
				t.Fatalf("trial %d: R increased from %d to %d while unsatisfied", trial, a-1, a)
			}
		}
		for a := int(d) + 1; a < int(d)+20; a++ {
			if probe(a) < probe(a-1)-1e-12 {
				t.Fatalf("trial %d: R decreased from %d to %d while over-satisfied", trial, a-1, a)
			}
		}
	}
}

// TestPropertyReleaseFromUnsatisfiedNeverHelps samples random plans and
// checks the exchange-argument lemma behind the local-search moves: taking
// a billboard away from an advertiser whose demand is not met can only
// raise (never lower) the total regret, for any γ — the freed billboard
// helps only if it is subsequently given to someone else.
func TestPropertyReleaseFromUnsatisfiedNeverHelps(t *testing.T) {
	r := rng.New(777)
	trials := 0
	for trials < 200 {
		inst := drawInstance(r)
		p := randomPlan(r, inst)
		victim := -1
		for i := 0; i < inst.NumAdvertisers(); i++ {
			if !p.Satisfied(i) && p.SetSize(i) > 0 {
				victim = i
				break
			}
		}
		if victim < 0 {
			continue // fully satisfied draw; resample
		}
		set := p.Set(victim, nil)
		b := set[r.Intn(len(set))]
		before := p.TotalRegret()
		p.Release(b)
		after := p.TotalRegret()
		if after < before-1e-9 {
			t.Fatalf("trial %d: releasing billboard %d from unsatisfied advertiser %d dropped regret %v -> %v",
				trials, b, victim, before, after)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: after release: %v", trials, err)
		}
		trials++
	}
}
