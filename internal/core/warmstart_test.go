package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// planSets extracts every advertiser's billboard set from a plan, for
// bit-identity comparisons between runs.
func planSets(p *Plan) [][]int {
	sets := make([][]int, p.Instance().NumAdvertisers())
	for i := range sets {
		sets[i] = p.Set(i, nil)
	}
	return sets
}

func TestWarmStartSeedsIncumbent(t *testing.T) {
	r := rng.New(101)
	inst := randomInstance(r, 300, 25, 30, 4, 1.0, 0.5)
	opts := LocalSearchOptions{Search: BillboardDriven, Seed: 7, Restarts: 4}

	cold := RandomizedLocalSearchCtx(context.Background(), inst, opts)
	if cold.WarmStarted {
		t.Fatal("cold run reported WarmStarted")
	}
	if cold.FrozenAdvertisers != 0 {
		t.Fatalf("cold run froze %d advertisers", cold.FrozenAdvertisers)
	}

	opts.WarmStart = &WarmStart{Sets: planSets(cold.Plan)}
	warm := RandomizedLocalSearchCtx(context.Background(), inst, opts)
	if !warm.WarmStarted {
		t.Fatal("incumbent replay did not report WarmStarted")
	}
	if err := warm.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Seeding slot 0 with the cold incumbent can only help: slot 0's descent
	// starts from the incumbent instead of empty, slots 1..R are unchanged.
	if warm.TotalRegret > cold.TotalRegret+1e-9 {
		t.Fatalf("warm regret %v worse than cold %v", warm.TotalRegret, cold.TotalRegret)
	}
}

// TestWarmStartDeterministicAcrossWorkers pins the determinism guarantee:
// a warm-started solve returns a bit-identical plan for any worker count,
// because only slot 0 is seeded and the reduction is order-independent.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	r := rng.New(102)
	inst := randomInstance(r, 300, 25, 30, 4, 1.0, 0.5)
	base := RandomizedLocalSearch(inst, LocalSearchOptions{Search: BillboardDriven, Seed: 3, Restarts: 4})

	var ref *Anytime
	for _, workers := range []int{1, 2, 4} {
		opts := LocalSearchOptions{
			Search:    BillboardDriven,
			Seed:      3,
			Restarts:  4,
			Workers:   workers,
			WarmStart: &WarmStart{Sets: planSets(base), Dirty: []bool{true, false, false, false}},
		}
		got := RandomizedLocalSearchCtx(context.Background(), inst, opts)
		if !got.WarmStarted {
			t.Fatalf("workers=%d: not warm started", workers)
		}
		if ref == nil {
			ref = got
			continue
		}
		if got.TotalRegret != ref.TotalRegret || got.Evals != ref.Evals ||
			got.FrozenAdvertisers != ref.FrozenAdvertisers ||
			!reflect.DeepEqual(planSets(got.Plan), planSets(ref.Plan)) {
			t.Fatalf("workers=%d diverged: regret %v vs %v, evals %d vs %d",
				workers, got.TotalRegret, ref.TotalRegret, got.Evals, ref.Evals)
		}
	}
}

// TestWarmStartRejectsBadIncumbent exercises the defensive paths: billboard
// indexes out of range and duplicated across sets must not corrupt the plan —
// the offending advertiser is marked dirty (never frozen) and the solve
// completes on a valid plan.
func TestWarmStartRejectsBadIncumbent(t *testing.T) {
	r := rng.New(103)
	inst := randomInstance(r, 300, 25, 30, 4, 1.0, 0.5)
	ws := &WarmStart{Sets: [][]int{
		{-5, 1, 99999}, // out of range both sides
		{2, 2},         // duplicate within a set
		{1},            // already claimed by advertiser 0
	}}
	res := RandomizedLocalSearchCtx(context.Background(), inst, LocalSearchOptions{
		Search: BillboardDriven, Seed: 5, Restarts: 2, WarmStart: ws,
	})
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	cold := RandomizedLocalSearchCtx(context.Background(), inst, LocalSearchOptions{
		Search: BillboardDriven, Seed: 5, Restarts: 2,
	})
	if res.TotalRegret > cold.TotalRegret+1e-9 {
		t.Fatalf("bad incumbent worsened the solve: %v vs cold %v", res.TotalRegret, cold.TotalRegret)
	}
}

// TestWarmStartColdPathUntouched guards the bit-identity contract of the
// nil option: the pre-warm engine and the current one must agree exactly.
func TestWarmStartColdPathUntouched(t *testing.T) {
	r := rng.New(104)
	inst := randomInstance(r, 300, 25, 30, 4, 1.0, 0.5)
	for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
		a := RandomizedLocalSearch(inst, LocalSearchOptions{Search: kind, Seed: 9, Restarts: 3})
		b := RandomizedLocalSearchCtx(context.Background(), inst, LocalSearchOptions{Search: kind, Seed: 9, Restarts: 3, Workers: 4})
		if a.TotalRegret() != b.TotalRegret || !reflect.DeepEqual(planSets(a), planSets(b.Plan)) {
			t.Fatalf("%v: context run diverged from plain run", kind)
		}
	}
}

func TestApplyWarmStartFrozenScreen(t *testing.T) {
	// Disjoint universe: three billboards of degree 4, 3, 5; three
	// advertisers whose demands make the screen's branches explicit.
	u := disjointUniverse([]int{4, 3, 5})
	inst := MustInstance(u, []Advertiser{
		{Demand: 4, Payment: 4}, // satisfied exactly by billboard 0 → R=0 → frozen
		{Demand: 2, Payment: 2}, // oversatisfied by billboard 1 → frozen unless FreedSupply
		{Demand: 9, Payment: 9}, // unsatisfied by billboard 2 → always dirty
	}, 0.5)

	p := NewPlan(inst)
	frozen := applyWarmStart(p, &WarmStart{Sets: [][]int{{0}, {1}, {2}}})
	if frozen == nil {
		t.Fatal("valid incumbent rejected")
	}
	if !frozen[0] {
		t.Error("zero-regret advertiser not frozen")
	}
	if !frozen[1] {
		t.Error("over-satisfied advertiser not frozen without freed supply")
	}
	if frozen[2] {
		t.Error("unsatisfied advertiser frozen")
	}

	// Freed supply re-opens the over-satisfied branch (it could shed excess
	// onto returned billboards) but not the zero-regret one.
	p2 := NewPlan(inst)
	frozen = applyWarmStart(p2, &WarmStart{Sets: [][]int{{0}, {1}, {2}}, FreedSupply: true})
	if !frozen[0] || frozen[1] || frozen[2] {
		t.Errorf("freed-supply screen = %v, want [true false false]", frozen)
	}

	// An explicit dirty mark overrides the screen.
	p3 := NewPlan(inst)
	frozen = applyWarmStart(p3, &WarmStart{Sets: [][]int{{0}, {1}, {2}}, Dirty: []bool{true, false, false}})
	if frozen[0] || !frozen[1] {
		t.Errorf("dirty-mask screen = %v, want [false true false]", frozen)
	}
}
