package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	r := rng.New(808)
	inst := randomInstance(r, 200, 20, 25, 3, 1.0, 0.5)
	p := GGlobal(inst)

	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlan(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRegret() != p.TotalRegret() {
		t.Fatalf("regret drifted: %v vs %v", got.TotalRegret(), p.TotalRegret())
	}
	for i := 0; i < inst.NumAdvertisers(); i++ {
		sa, sb := p.Set(i, nil), got.Set(i, nil)
		if len(sa) != len(sb) {
			t.Fatalf("advertiser %d set size changed", i)
		}
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("advertiser %d set changed", i)
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadPlanRejectsMismatchedInstance(t *testing.T) {
	r := rng.New(809)
	inst := randomInstance(r, 100, 10, 15, 2, 0.8, 0.5)
	p := GGlobal(inst)
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()

	otherGamma := MustInstance(inst.Universe(), []Advertiser{
		inst.Advertiser(0), inst.Advertiser(1),
	}, 0.25)
	if _, err := ReadPlan(strings.NewReader(raw), otherGamma); err == nil {
		t.Error("γ mismatch accepted")
	}

	fewerAdvs := MustInstance(inst.Universe(), []Advertiser{inst.Advertiser(0)}, 0.5)
	if _, err := ReadPlan(strings.NewReader(raw), fewerAdvs); err == nil {
		t.Error("advertiser count mismatch accepted")
	}

	changedDemand := MustInstance(inst.Universe(), []Advertiser{
		{Demand: inst.Advertiser(0).Demand + 1, Payment: inst.Advertiser(0).Payment},
		inst.Advertiser(1),
	}, 0.5)
	if _, err := ReadPlan(strings.NewReader(raw), changedDemand); err == nil {
		t.Error("demand fingerprint mismatch accepted")
	}
}

func TestReadPlanRejectsCorruptAssignments(t *testing.T) {
	u := disjointUniverse([]int{2, 3})
	inst := MustInstance(u, []Advertiser{{Demand: 2, Payment: 4}}, 0.5)
	cases := map[string]string{
		"bad json":      `{`,
		"wrong version": `{"version":9,"gamma":0.5,"demands":[2],"payments":[4],"num_billboards":2,"assignments":[[0]]}`,
		"bb count":      `{"version":1,"gamma":0.5,"demands":[2],"payments":[4],"num_billboards":5,"assignments":[[0]]}`,
		"oob billboard": `{"version":1,"gamma":0.5,"demands":[2],"payments":[4],"num_billboards":2,"assignments":[[7]]}`,
		"double assign": `{"version":1,"gamma":0.5,"demands":[2],"payments":[4],"num_billboards":2,"assignments":[[0,0]]}`,
	}
	for name, raw := range cases {
		if _, err := ReadPlan(strings.NewReader(raw), inst); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAuditSortedByRegret(t *testing.T) {
	u := disjointUniverse([]int{5, 3})
	inst := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 10, Payment: 30},
	}, 0.5)
	p := NewPlan(inst)
	p.Assign(0, 0) // a0 satisfied exactly (regret 0)
	p.Assign(1, 1) // a1 at 3/10 (regret 30·(1−0.5·0.3) = 25.5)
	rows := Audit(p)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Advertiser != 1 || rows[1].Advertiser != 0 {
		t.Fatalf("audit not sorted by regret: %+v", rows)
	}
	if !rows[1].Satisfied || rows[0].Satisfied {
		t.Error("satisfied flags wrong")
	}
	if math.Abs(rows[0].Fulfillment-0.3) > 1e-12 || rows[1].Fulfillment != 1 {
		t.Errorf("fulfillment wrong: %+v", rows)
	}
	if rows[0].Billboards != 1 || rows[0].Achieved != 3 {
		t.Errorf("row detail wrong: %+v", rows[0])
	}
}

func TestRevenue(t *testing.T) {
	u := disjointUniverse([]int{5, 3})
	inst := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 10, Payment: 30},
	}, 0.5)
	p := NewPlan(inst)
	if Revenue(p) != 0 {
		t.Error("empty plan should collect nothing under γ·L·0")
	}
	p.Assign(0, 0) // satisfied → full 10
	p.Assign(1, 1) // 3/10 at γ=0.5 → 0.5·30·0.3 = 4.5
	if got := Revenue(p); math.Abs(got-14.5) > 1e-9 {
		t.Fatalf("Revenue = %v, want 14.5", got)
	}
	// With γ=0 the unsatisfied advertiser pays nothing.
	inst0 := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 10, Payment: 30},
	}, 0)
	p0 := NewPlan(inst0)
	p0.Assign(0, 0)
	p0.Assign(1, 1)
	if got := Revenue(p0); got != 10 {
		t.Fatalf("γ=0 Revenue = %v, want 10", got)
	}
}

// TestRevenueRegretDuality: collected revenue plus revenue regret equals
// total payment for unsatisfied advertisers; for satisfied ones revenue is
// full payment while regret measures opportunity cost (not cash).
func TestRevenueRegretDuality(t *testing.T) {
	r := rng.New(404)
	inst := randomInstance(r, 150, 15, 20, 3, 1.2, 0.5)
	p := GGlobal(inst)
	revenue := Revenue(p)
	lostRevenue := 0.0
	for i := 0; i < inst.NumAdvertisers(); i++ {
		if !p.Satisfied(i) {
			lostRevenue += p.Regret(i)
		}
	}
	if math.Abs(revenue+lostRevenue-inst.TotalPayment()) > 1e-6 {
		t.Fatalf("revenue %v + unsatisfied regret %v != total payment %v",
			revenue, lostRevenue, inst.TotalPayment())
	}
}
