package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

func TestExactRefusesLargeInstances(t *testing.T) {
	lists := make([]coverage.List, ExactMaxBillboards+1)
	for i := range lists {
		lists[i] = coverage.List{}
	}
	u := coverage.MustUniverse(1, lists)
	inst := MustInstance(u, []Advertiser{{Demand: 1, Payment: 1}}, 0.5)
	if _, err := Exact(inst); err == nil {
		t.Fatal("Exact accepted an oversized instance")
	}
	// Search-space bound: 10 billboards × 20 advertisers = 21^10 ≈ 1.7e13.
	lists = make([]coverage.List, 10)
	for i := range lists {
		lists[i] = coverage.List{}
	}
	u = coverage.MustUniverse(1, lists)
	advs := make([]Advertiser, 20)
	for i := range advs {
		advs[i] = Advertiser{Demand: 1, Payment: 1}
	}
	inst = MustInstance(u, advs, 0.5)
	if _, err := Exact(inst); err == nil {
		t.Fatal("Exact accepted an oversized search space")
	}
}

func TestExactFindsZeroRegretWhenItExists(t *testing.T) {
	// Perfect partition: demands match billboard influences exactly.
	u := disjointUniverse([]int{3, 5, 2})
	inst := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 5, Payment: 10}, // must take {3, 2}
	}, 0.5)
	p, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalRegret() != 0 {
		t.Fatalf("Exact regret = %v, want 0", p.TotalRegret())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExactLeavesBillboardsUnassignedWhenBetter(t *testing.T) {
	// One advertiser, demand 2; billboards of influence 2 and 5. The
	// optimum assigns only the 2 and leaves the 5 unassigned.
	u := disjointUniverse([]int{2, 5})
	inst := MustInstance(u, []Advertiser{{Demand: 2, Payment: 10}}, 0.5)
	p, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalRegret() != 0 {
		t.Fatalf("regret = %v, want 0", p.TotalRegret())
	}
	if p.Owner(1) != Unassigned {
		t.Fatal("optimum should leave the 5-influence billboard unassigned")
	}
}

// TestHeuristicsAgainstExact measures every heuristic against the optimum
// on random small instances: no heuristic may beat the optimum, and BLS
// must land within a reasonable factor on these easy instances.
func TestHeuristicsAgainstExact(t *testing.T) {
	r := rng.New(555)
	sumOpt, sumBLS := 0.0, 0.0
	for trial := 0; trial < 12; trial++ {
		inst := randomInstance(r, 60, 7, 12, 2, 0.9, 0.5)
		opt, err := Exact(inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range PaperAlgorithms(uint64(trial), 3) {
			p := alg.Solve(inst)
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.Name(), err)
			}
			if p.TotalRegret() < opt.TotalRegret()-1e-9 {
				t.Fatalf("trial %d: %s regret %v beats optimum %v",
					trial, alg.Name(), p.TotalRegret(), opt.TotalRegret())
			}
			if alg.Name() == "BLS" {
				sumOpt += opt.TotalRegret()
				sumBLS += p.TotalRegret()
			}
		}
	}
	// Aggregate check: BLS should be within 2.5× of optimal on these tiny
	// instances (it is usually much closer; the bound is loose to keep
	// the test robust).
	if sumBLS > 2.5*sumOpt+1 {
		t.Fatalf("BLS aggregate regret %v too far from optimal %v", sumBLS, sumOpt)
	}
}

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"G-Order", "G-Global", "ALS", "BLS"} {
		alg, err := AlgorithmByName(name, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() != name {
			t.Fatalf("AlgorithmByName(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := AlgorithmByName("Simplex", 1, 2); err == nil {
		t.Fatal("unknown algorithm name accepted")
	}
}

func TestPaperAlgorithmsOrder(t *testing.T) {
	algs := PaperAlgorithms(1, 2)
	want := []string{"G-Order", "G-Global", "ALS", "BLS"}
	if len(algs) != len(want) {
		t.Fatalf("%d algorithms, want %d", len(algs), len(want))
	}
	for i, alg := range algs {
		if alg.Name() != want[i] {
			t.Fatalf("algorithm %d is %q, want %q", i, alg.Name(), want[i])
		}
	}
}
