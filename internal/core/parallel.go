package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// This file implements the parallel restart engine behind
// RandomizedLocalSearch (Algorithm 3). The framework's outer loop is
// embarrassingly parallel: the greedy initialization and every restart
// iteration build their own Plan from scratch, read only the immutable
// Instance/Universe, and draw randomness from a named substream
// (rng.Derive("restart-i")) that depends solely on the seed and the restart
// index — never on execution order. Each worker therefore owns its scratch
// state outright, results land in a slot indexed by iteration, and the
// caller reduces them serially in iteration order, which makes the selected
// plan, its total regret and the aggregated Evals counter bit-identical to
// the serial run for any worker count. Model variants (model.go) need no
// handling here: the seeding, greedy and search helpers each consult the
// instance's Model, and a Model is stateless across plans, so restarts stay
// embarrassingly parallel under every variant.
//
// Cancellation rides the same slot structure: a job interrupted by the
// context leaves its partially improved plan in the partials slot instead of
// the results slot, workers stop pulling new jobs once the context fires,
// and the reduction (anytime.go) consumes only the longest completed prefix
// of results so that truncation is deterministic at restart granularity.

// restartTestHook, when non-nil, is invoked after each job slot completes
// with that slot's index. Tests use it to fire a cancellation at an exact
// point of the restart schedule; production code never sets it.
var restartTestHook func(job int)

// warmOutcome reports what a warm-started slot 0 actually did: whether the
// incumbent validated and seeded the slot, and how many advertisers the
// branch-switch screen froze for its descent. The zero value means slot 0
// ran cold (no WarmStart option, or the incumbent failed validation).
type warmOutcome struct {
	applied bool
	frozen  int
}

// runRestarts executes the greedy initialization (slot 0) and the
// opts.Restarts restart iterations (slots 1..Restarts) of Algorithm 3 on
// min(opts.Workers, iterations) goroutines. results[j] holds slot j's plan
// iff the slot ran to completion; partials[j] holds the abandoned plan of a
// slot interrupted by ctx (always structurally valid, never both set). opts
// must already have defaults applied; Workers < 1 selects
// runtime.GOMAXPROCS(0).
//
// With opts.WarmStart set, slot 0 replays the incumbent (warmstart.go),
// completes it with the greedy and descends with the frozen mask applied;
// slots 1..Restarts are byte-identical to the cold run (their substreams
// depend only on seed and slot index), which keeps the reduction
// deterministic at any worker count. Only slot 0's goroutine writes warm,
// and the caller reads it after all slots finished.
func runRestarts(ctx context.Context, inst *Instance, opts LocalSearchOptions) (results, partials []*Plan, warm warmOutcome) {
	jobs := opts.Restarts + 1
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	done := ctxDone(ctx)

	// The root generator is never advanced: Derive only reads its state,
	// so concurrent derivation by the workers is safe and yields the same
	// substreams the serial loop would.
	root := rng.New(opts.Seed)
	results = make([]*Plan, jobs)
	partials = make([]*Plan, jobs)

	// Tracing state. All of it is touched only when a tracer is attached,
	// so the disabled path executes exactly the pre-probe instructions.
	// The incumbent (trBest) is tracked under trMu across workers purely
	// for Improved emission — it never feeds back into the solve, whose
	// result remains the deterministic prefix reduction of anytime.go.
	tr := opts.Tracer
	var t0 time.Time
	var trMu sync.Mutex
	trBest := math.Inf(1)
	if tr != nil {
		t0 = time.Now()
	}

	run := func(job int) {
		if tr != nil {
			tr.RestartStart(job, time.Since(t0))
		}
		p := NewPlan(inst)
		var frozen []bool
		if job == 0 && opts.WarmStart != nil {
			if frozen = applyWarmStart(p, opts.WarmStart); frozen != nil {
				warm = warmOutcome{applied: true, frozen: frozenCount(frozen)}
			}
		} else if job > 0 {
			seedRandomPlan(p, root.Derive(fmt.Sprintf("restart-%d", job-1)))
		}
		completed := synchronousGreedyDone(done, p) && localSearchDone(done, p, opts, frozen)
		if !completed {
			partials[job] = p
			if tr != nil {
				tr.Evals(p.Evals())
				tr.Cache(p.CacheStats())
			}
			return
		}
		results[job] = p
		if tr != nil {
			regret := p.TotalRegret()
			tr.RestartDone(job, regret, p.Evals(), time.Since(t0))
			tr.Evals(p.Evals())
			tr.Cache(p.CacheStats())
			// Emitting under the lock keeps Improved calls strictly
			// decreasing in regret and non-decreasing in elapsed time
			// even when several slots finish simultaneously.
			trMu.Lock()
			if regret < trBest {
				trBest = regret
				tr.Improved(job, regret, time.Since(t0))
			}
			trMu.Unlock()
		}
		if restartTestHook != nil {
			restartTestHook(job)
		}
	}

	if workers == 1 {
		for job := 0; job < jobs; job++ {
			if cancelled(done) {
				break
			}
			run(job)
		}
		return results, partials, warm
	}

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cancelled(done) {
					return
				}
				job := int(next.Add(1))
				if job >= jobs {
					return
				}
				run(job)
			}
		}()
	}
	wg.Wait()
	return results, partials, warm
}
