package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// This file implements the parallel restart engine behind
// RandomizedLocalSearch (Algorithm 3). The framework's outer loop is
// embarrassingly parallel: the greedy initialization and every restart
// iteration build their own Plan from scratch, read only the immutable
// Instance/Universe, and draw randomness from a named substream
// (rng.Derive("restart-i")) that depends solely on the seed and the restart
// index — never on execution order. Each worker therefore owns its scratch
// state outright, results land in a slot indexed by iteration, and the
// caller reduces them serially in iteration order, which makes the selected
// plan, its total regret and the aggregated Evals counter bit-identical to
// the serial run for any worker count.

// runRestarts executes the greedy initialization (slot 0) and the
// opts.Restarts restart iterations (slots 1..Restarts) of Algorithm 3 on
// min(opts.Workers, iterations) goroutines and returns the per-iteration
// plans. opts must already have defaults applied; Workers < 1 selects
// runtime.GOMAXPROCS(0).
func runRestarts(inst *Instance, opts LocalSearchOptions) []*Plan {
	jobs := opts.Restarts + 1
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}

	// The root generator is never advanced: Derive only reads its state,
	// so concurrent derivation by the workers is safe and yields the same
	// substreams the serial loop would.
	root := rng.New(opts.Seed)
	results := make([]*Plan, jobs)
	run := func(job int) {
		if job == 0 {
			p := SynchronousGreedy(NewPlan(inst))
			localSearch(p, opts)
			results[0] = p
			return
		}
		iter := job - 1
		cand := NewPlan(inst)
		seedRandomPlan(cand, root.Derive(fmt.Sprintf("restart-%d", iter)))
		SynchronousGreedy(cand)
		localSearch(cand, opts)
		results[job] = cand
	}

	if workers == 1 {
		for job := 0; job < jobs; job++ {
			run(job)
		}
		return results
	}

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job := int(next.Add(1))
				if job >= jobs {
					return
				}
				run(job)
			}
		}()
	}
	wg.Wait()
	return results
}
