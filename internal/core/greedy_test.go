package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// randomInstance builds a random instance whose total demand is roughly
// alpha times the supply, split across nAdv advertisers.
func randomInstance(r *rng.RNG, nTraj, nBB, maxDeg, nAdv int, alpha, gamma float64) *Instance {
	lists := make([]coverage.List, nBB)
	for b := range lists {
		deg := 1 + r.Intn(maxDeg)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(nTraj))
		}
		lists[b] = coverage.NewList(ids)
	}
	u := coverage.MustUniverse(nTraj, lists)
	supply := float64(u.TotalSupply())
	per := alpha * supply / float64(nAdv)
	advs := make([]Advertiser, nAdv)
	for i := range advs {
		d := int64(per * r.Range(0.8, 1.2))
		if d < 1 {
			d = 1
		}
		advs[i] = Advertiser{Demand: d, Payment: float64(d) * r.Range(0.9, 1.1)}
	}
	return MustInstance(u, advs, gamma)
}

func TestGreedyOrderProducesValidPlan(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(r, 300, 40, 30, 5, 0.8, 0.5)
		p := GreedyOrder(inst)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGreedyOrderServesBudgetEffectiveFirst(t *testing.T) {
	// Two advertisers wanting the same influence; only enough supply for
	// one. The budget-effective one (higher L/I) must be satisfied.
	u := coverage.MustUniverse(10, []coverage.List{
		{0, 1, 2, 3, 4},
		{5, 6, 7, 8, 9},
	})
	inst := MustInstance(u, []Advertiser{
		{Demand: 10, Payment: 5},  // L/I = 0.5
		{Demand: 10, Payment: 20}, // L/I = 2.0 — served first
	}, 0.5)
	p := GreedyOrder(inst)
	if !p.Satisfied(1) {
		t.Fatal("budget-effective advertiser not satisfied")
	}
	if p.Satisfied(0) {
		t.Fatal("low-effectiveness advertiser cannot also be satisfied")
	}
}

func TestGreedyOrderStopsAtSatisfaction(t *testing.T) {
	// Once satisfied, G-Order must not keep piling billboards on.
	u := coverage.MustUniverse(10, []coverage.List{
		{0, 1, 2}, {3, 4, 5}, {6, 7}, {8, 9},
	})
	inst := MustInstance(u, []Advertiser{{Demand: 3, Payment: 10}}, 0.5)
	p := GreedyOrder(inst)
	if p.Influence(0) != 3 || p.SetSize(0) != 1 {
		t.Fatalf("expected exactly one 3-influence billboard, got I=%d |S|=%d",
			p.Influence(0), p.SetSize(0))
	}
	if p.TotalRegret() != 0 {
		t.Fatalf("regret = %v, want 0", p.TotalRegret())
	}
}

func TestGreedyPrefersTightFit(t *testing.T) {
	// Demand 3 with billboards of influence 3 and 5: the greedy criterion
	// ΔR/I(o) favors the exact fit (ΔR equal, lower I(o) denominator...
	// actually ΔR differs: overshoot costs). Either way the chosen plan
	// must reach zero regret with the 3-billboard.
	u := coverage.MustUniverse(8, []coverage.List{
		{0, 1, 2},
		{3, 4, 5, 6, 7},
	})
	inst := MustInstance(u, []Advertiser{{Demand: 3, Payment: 9}}, 0.5)
	p := GreedyOrder(inst)
	if p.TotalRegret() != 0 {
		t.Fatalf("greedy picked overshooting billboard: regret %v", p.TotalRegret())
	}
}

func TestSynchronousGreedySharesInventory(t *testing.T) {
	// Two ideal billboards and two advertisers each demanding one ideal
	// billboard's influence. G-Order would serve them fine too, but the
	// synchronous greedy must also satisfy both (one billboard each).
	u := coverage.MustUniverse(20, []coverage.List{
		{0, 1, 2, 3, 4},
		{5, 6, 7, 8, 9},
		{10, 11},
		{12, 13},
	})
	inst := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 5, Payment: 10},
	}, 0.5)
	p := GGlobal(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.SatisfiedCount() != 2 {
		t.Fatalf("satisfied %d advertisers, want 2 (I0=%d, I1=%d)",
			p.SatisfiedCount(), p.Influence(0), p.Influence(1))
	}
	if p.TotalRegret() != 0 {
		t.Fatalf("regret = %v, want 0", p.TotalRegret())
	}
}

func TestSynchronousGreedyReleasesWeakest(t *testing.T) {
	// Supply covers only one advertiser's demand; three advertisers are
	// competing. With the release rule the weakest (lowest L/I) must end
	// empty and at most one advertiser can remain partially served.
	u := coverage.MustUniverse(9, []coverage.List{
		{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
	})
	inst := MustInstance(u, []Advertiser{
		{Demand: 9, Payment: 18}, // L/I = 2
		{Demand: 9, Payment: 9},  // L/I = 1
		{Demand: 9, Payment: 4},  // L/I ≈ 0.44 — weakest
	}, 0.5)
	p := GGlobal(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Satisfied(0) {
		t.Fatalf("strongest advertiser unsatisfied: I=%d", p.Influence(0))
	}
	if p.SetSize(2) != 0 {
		t.Fatalf("weakest advertiser kept %d billboards, want 0 (released)", p.SetSize(2))
	}
}

func TestSynchronousGreedyWithSeedPlan(t *testing.T) {
	// The local search framework calls SynchronousGreedy with a non-empty
	// S^in; the seeded assignment must be preserved or improved upon, and
	// the result must remain valid.
	r := rng.New(7)
	inst := randomInstance(r, 400, 30, 40, 4, 1.0, 0.5)
	p := NewPlan(inst)
	seedRandomPlan(p, rng.New(5))
	seeded := make([]int, 0)
	for i := 0; i < inst.NumAdvertisers(); i++ {
		seeded = append(seeded, p.SetSize(i))
	}
	SynchronousGreedy(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each advertiser keeps at least its seed unless it was released.
	for i, n := range seeded {
		if p.SetSize(i) != 0 && p.SetSize(i) < n {
			t.Fatalf("advertiser %d shrank from %d to %d without release", i, n, p.SetSize(i))
		}
	}
}

func TestSynchronousGreedyTerminatesOnExcessDemand(t *testing.T) {
	// α ≈ 3: demand hugely exceeds supply. The algorithm must terminate
	// and produce a valid plan.
	r := rng.New(13)
	inst := randomInstance(r, 200, 15, 20, 6, 3.0, 0.5)
	p := GGlobal(inst)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyOnEmptyAdvertisers(t *testing.T) {
	u := coverage.MustUniverse(5, []coverage.List{{0, 1}})
	inst := MustInstance(u, nil, 0.5)
	for _, alg := range []Algorithm{GOrderAlgorithm{}, GGlobalAlgorithm{}} {
		p := alg.Solve(inst)
		if p.TotalRegret() != 0 {
			t.Errorf("%s: no advertisers should give zero regret", alg.Name())
		}
	}
}

func TestGreedyOnEmptyInventory(t *testing.T) {
	u := coverage.MustUniverse(0, nil)
	inst := MustInstance(u, []Advertiser{{Demand: 5, Payment: 10}}, 0.5)
	for _, alg := range []Algorithm{GOrderAlgorithm{}, GGlobalAlgorithm{}} {
		p := alg.Solve(inst)
		if p.TotalRegret() != 10 {
			t.Errorf("%s: regret = %v, want 10 (nothing assignable)", alg.Name(), p.TotalRegret())
		}
	}
}

func TestZeroInfluenceBillboardsSkipped(t *testing.T) {
	u := coverage.MustUniverse(4, []coverage.List{{}, {0, 1, 2, 3}, {}})
	inst := MustInstance(u, []Advertiser{{Demand: 4, Payment: 8}}, 0.5)
	p := GGlobal(inst)
	if p.TotalRegret() != 0 {
		t.Fatalf("regret = %v, want 0", p.TotalRegret())
	}
	if p.Owner(0) != Unassigned || p.Owner(2) != Unassigned {
		t.Fatal("zero-influence billboards were assigned")
	}
}

func TestByBudgetEffectivenessOrder(t *testing.T) {
	u := coverage.MustUniverse(1, []coverage.List{{0}})
	inst := MustInstance(u, []Advertiser{
		{Demand: 10, Payment: 10}, // 1.0
		{Demand: 10, Payment: 30}, // 3.0
		{Demand: 10, Payment: 20}, // 2.0
	}, 0.5)
	order := byBudgetEffectiveness(inst)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestGreedyPropertyValidPlans: both greedies produce structurally valid
// plans on arbitrary random instances across the workload space.
func TestGreedyPropertyValidPlans(t *testing.T) {
	r := rng.New(7117)
	for trial := 0; trial < 25; trial++ {
		alpha := r.Range(0.2, 2.0)
		gamma := r.Range(0, 1)
		nAdv := 1 + r.Intn(8)
		inst := randomInstance(r, 100+r.Intn(200), 5+r.Intn(25), 1+r.Intn(30), nAdv, alpha, gamma)
		for _, alg := range []Algorithm{GOrderAlgorithm{}, GGlobalAlgorithm{}} {
			p := alg.Solve(inst)
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.Name(), err)
			}
			if p.TotalRegret() < 0 {
				t.Fatalf("trial %d %s: negative regret", trial, alg.Name())
			}
			// No advertiser may hold a billboard while over-satisfied by
			// a margin the greedy should not have created from scratch:
			// specifically the greedy stops assigning once satisfied, so
			// removing the last-added billboard of a satisfied advertiser
			// must drop it below the demand or it would not have been
			// added. Weak form checked here: every satisfied advertiser
			// with at least one billboard cannot discard a billboard and
			// remain satisfied without regret change... simply assert the
			// plan never assigns zero-influence billboards.
			u := inst.Universe()
			for b := 0; b < u.NumBillboards(); b++ {
				if p.Owner(b) != Unassigned && u.Degree(b) == 0 {
					t.Fatalf("trial %d %s: zero-influence billboard assigned", trial, alg.Name())
				}
			}
		}
	}
}

// TestGreedyOrderDeterministic: repeated runs produce identical plans.
func TestGreedyOrderDeterministic(t *testing.T) {
	r := rng.New(515)
	inst := randomInstance(r, 200, 20, 25, 4, 1.0, 0.5)
	a, b := GreedyOrder(inst), GreedyOrder(inst)
	for i := 0; i < inst.NumAdvertisers(); i++ {
		sa, sb := a.Set(i, nil), b.Set(i, nil)
		if len(sa) != len(sb) {
			t.Fatal("non-deterministic greedy")
		}
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatal("non-deterministic greedy")
			}
		}
	}
}
