package core

import (
	"testing"

	"repro/internal/rng"
)

// comparePlans fails the test unless a and b have identical per-advertiser
// billboard sets, identical total regret, and identical evals counters.
func comparePlans(t *testing.T, label string, a, b *Plan) {
	t.Helper()
	if a.TotalRegret() != b.TotalRegret() {
		t.Fatalf("%s: regret %v != %v", label, a.TotalRegret(), b.TotalRegret())
	}
	if a.Evals() != b.Evals() {
		t.Fatalf("%s: evals %d != %d", label, a.Evals(), b.Evals())
	}
	n := a.Instance().NumAdvertisers()
	var sa, sb []int
	for i := 0; i < n; i++ {
		sa, sb = a.Set(i, sa[:0]), b.Set(i, sb[:0])
		if len(sa) != len(sb) {
			t.Fatalf("%s: advertiser %d set size %d != %d", label, i, len(sa), len(sb))
		}
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("%s: advertiser %d sets differ: %v vs %v", label, i, sa, sb)
			}
		}
	}
}

// TestRandomizedLocalSearchWorkerCountInvariance: the parallel restart
// engine must return bit-identical plans, regret, and aggregated evals for
// every worker count, on both neighborhood strategies, across several
// seeded instances.
func TestRandomizedLocalSearchWorkerCountInvariance(t *testing.T) {
	cases := []struct {
		name         string
		seed         uint64
		nTraj, nBB   int
		maxDeg, nAdv int
		alpha, gamma float64
	}{
		{"tight-market", 101, 300, 35, 25, 5, 1.2, 0.5},
		{"loose-market", 202, 400, 40, 30, 4, 0.6, 0.3},
		{"zero-gamma", 303, 250, 30, 20, 6, 1.0, 0},
	}
	for _, tc := range cases {
		inst := randomInstance(rng.New(tc.seed), tc.nTraj, tc.nBB, tc.maxDeg, tc.nAdv, tc.alpha, tc.gamma)
		for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
			opts := LocalSearchOptions{Search: kind, Restarts: 5, Seed: tc.seed, Workers: 1}
			serial := RandomizedLocalSearch(inst, opts)
			if err := serial.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, kind, err)
			}
			for _, workers := range []int{2, 8} {
				opts.Workers = workers
				got := RandomizedLocalSearch(inst, opts)
				comparePlans(t, tc.name+"/"+kind.String(), serial, got)
			}
		}
	}
}

// TestRandomizedLocalSearchAutoWorkers: Workers <= 0 (the GOMAXPROCS
// default) must also reproduce the serial result.
func TestRandomizedLocalSearchAutoWorkers(t *testing.T) {
	inst := randomInstance(rng.New(77), 300, 30, 25, 5, 1.0, 0.5)
	serial := RandomizedLocalSearch(inst, LocalSearchOptions{
		Search: BillboardDriven, Restarts: 3, Seed: 9, Workers: 1,
	})
	auto := RandomizedLocalSearch(inst, LocalSearchOptions{
		Search: BillboardDriven, Restarts: 3, Seed: 9,
	})
	comparePlans(t, "auto-workers", serial, auto)
}
