package core

import (
	"context"
	"fmt"

	"repro/internal/rng"
)

// This file implements Section 6: the randomized local search framework
// (Algorithm 3) and its two neighborhood strategies, the advertiser-driven
// local search ALS (Algorithm 4) and the billboard-driven local search BLS
// (Algorithm 5).

// SearchKind selects the neighborhood strategy used inside the randomized
// local search framework.
type SearchKind uint8

const (
	// AdvertiserDriven exchanges whole billboard sets between advertiser
	// pairs (ALS, Algorithm 4).
	AdvertiserDriven SearchKind = iota
	// BillboardDriven exchanges, replaces and releases individual
	// billboards (BLS, Algorithm 5).
	BillboardDriven
)

func (k SearchKind) String() string {
	switch k {
	case AdvertiserDriven:
		return "ALS"
	case BillboardDriven:
		return "BLS"
	default:
		return fmt.Sprintf("SearchKind(%d)", uint8(k))
	}
}

// LocalSearchOptions configures the randomized local search framework.
type LocalSearchOptions struct {
	// Search selects ALS or BLS as the neighborhood strategy.
	Search SearchKind
	// Restarts is the preset iteration count of Algorithm 3's outer loop:
	// the number of random baseline plans to generate and improve.
	// Values < 1 are treated as DefaultRestarts.
	Restarts int
	// Seed drives the random baseline plan generation.
	Seed uint64
	// ImprovementRatio is the r of Definition 6.1: a BLS move is only
	// accepted if it reduces the total regret by more than
	// r·max(R(S), 1) (strictly positive progress is enforced even at
	// r = 0 via a tiny absolute epsilon, guaranteeing termination).
	// Ignored by ALS. Values < 0 are treated as 0.
	ImprovementRatio float64
	// MaxPasses bounds the number of full neighborhood sweeps per local
	// search invocation as a safety valve; the search normally stops
	// earlier, when a sweep yields no accepted move. Values < 1 are
	// treated as DefaultMaxPasses.
	MaxPasses int
	// Workers is the number of goroutines the restart loop fans out
	// over. Restarts are fully independent (each derives its own RNG
	// stream), and the reduction is performed in restart order, so the
	// returned plan, its regret and its aggregated Evals counter are
	// bit-identical for every worker count. Values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// Tracer, when non-nil, receives solver progress events: restart
	// lifecycle, best-regret improvements, eval-count and gain-cache
	// counter deltas (trace.go). Tracing is purely observational — the
	// solve result is bit-identical with or without it — and the nil
	// (disabled) path costs nothing. Implementations must be safe for
	// concurrent use when Workers > 1.
	Tracer Tracer
	// WarmStart, when non-nil, seeds restart slot 0 from an incumbent plan
	// instead of the greedy-from-empty descent and freezes the advertisers
	// the branch-switch screen proves unaffected (warmstart.go). Slots
	// 1..Restarts are untouched, so the result is deterministic at any
	// worker count; nil (the default) is bit-identical to the pre-warm
	// engine. Only the randomized local searches consult it — the greedy
	// algorithms have no restart pool.
	WarmStart *WarmStart
}

// Defaults for LocalSearchOptions.
const (
	DefaultRestarts  = 10
	DefaultMaxPasses = 50
	// minImprove is the absolute progress each accepted move must make,
	// guaranteeing termination of the sweep loop even at r = 0.
	minImprove = 1e-9
)

func (o LocalSearchOptions) withDefaults() LocalSearchOptions {
	if o.Restarts < 1 {
		o.Restarts = DefaultRestarts
	}
	if o.MaxPasses < 1 {
		o.MaxPasses = DefaultMaxPasses
	}
	if o.ImprovementRatio < 0 {
		o.ImprovementRatio = 0
	}
	return o
}

// threshold returns the minimum regret reduction an accepted move must
// achieve given the current total regret.
func (o LocalSearchOptions) threshold(current float64) float64 {
	t := o.ImprovementRatio * current
	if t < minImprove {
		t = minImprove
	}
	return t
}

// RandomizedLocalSearch is Algorithm 3. It initializes the incumbent with
// the synchronous greedy, then repeatedly (1) seeds a random baseline plan
// by giving each advertiser one random billboard, (2) completes it with the
// synchronous greedy, (3) improves it with the selected local search, and
// keeps the best plan seen. The returned plan's Evals counter aggregates
// the work of all restarts.
//
// The greedy initialization and the opts.Restarts restart iterations are
// fully independent, so they run on a pool of opts.Workers goroutines
// (parallel.go). The reduction — min total regret with ties broken by the
// earlier restart, evals summed over all iterations — happens serially in
// restart order afterwards, so the result is bit-identical to a serial run
// for every worker count.
//
// RandomizedLocalSearchCtx (anytime.go) is the cancellable, deadline-aware
// form; this entry point is exactly that run under a context that never
// fires.
func RandomizedLocalSearch(inst *Instance, opts LocalSearchOptions) *Plan {
	return RandomizedLocalSearchCtx(context.Background(), inst, opts).Plan
}

// seedRandomPlan assigns one random distinct billboard to every advertiser
// (Lines 3.3-3.7). If there are fewer billboards than advertisers, the
// excess advertisers start empty. The base path is byte-for-byte the
// pre-Model loop (the shuffled pool consumed in order); under a constrained
// model each advertiser takes the first remaining billboard its CanAssign
// hook accepts — still deterministic in the seed.
func seedRandomPlan(p *Plan, r *rng.RNG) {
	pool := p.UnassignedBillboards(nil)
	r.ShuffleInts(pool)
	n := p.inst.NumAdvertisers()
	if p.inst.base {
		for i := 0; i < n && i < len(pool); i++ {
			p.Assign(pool[i], i)
		}
		return
	}
	m := p.inst.model
	next := 0
	for i := 0; i < n && next < len(pool); i++ {
		for j := next; j < len(pool); j++ {
			if m.CanAssign(p, i, pool[j]) {
				pool[next], pool[j] = pool[j], pool[next]
				p.Assign(pool[next], i)
				next++
				break
			}
		}
	}
}

// localSearchDone dispatches to the selected neighborhood strategy,
// improving p in place. It reports false iff done fired before the search
// converged; p is always left structurally valid. A non-nil frozen mask
// (warm slot 0 only) excludes the marked advertisers from every move.
func localSearchDone(done <-chan struct{}, p *Plan, opts LocalSearchOptions, frozen []bool) bool {
	switch opts.Search {
	case AdvertiserDriven:
		_, completed := advertiserLocalSearch(done, p, opts.MaxPasses, frozen)
		return completed
	case BillboardDriven:
		_, completed := billboardLocalSearch(done, p, opts, frozen)
		return completed
	default:
		panic(fmt.Sprintf("core: unknown search kind %d", opts.Search))
	}
}

// AdvertiserLocalSearch is ALS (Algorithm 4): repeatedly scan all ordered
// advertiser pairs and exchange their whole billboard sets whenever that
// reduces the total regret, until a full sweep makes no exchange (or
// maxPasses sweeps have run). It returns the number of exchanges performed.
//
// Exchanging sets does not change the sets' influences, only which demand
// each influence is matched against, so each candidate exchange is
// evaluated in O(1) from cached influences.
func AdvertiserLocalSearch(p *Plan, maxPasses int) int {
	exchanges, _ := advertiserLocalSearch(nil, p, maxPasses, nil)
	return exchanges
}

// AdvertiserLocalSearchCtx is AdvertiserLocalSearch under a context: it
// additionally reports whether the search converged before ctx fired. The
// plan is always left structurally valid.
func AdvertiserLocalSearchCtx(ctx context.Context, p *Plan, maxPasses int) (exchanges int, completed bool) {
	return advertiserLocalSearch(ctxDone(ctx), p, maxPasses, nil)
}

func advertiserLocalSearch(done <-chan struct{}, p *Plan, maxPasses int, frozen []bool) (exchanges int, completed bool) {
	if maxPasses < 1 {
		maxPasses = DefaultMaxPasses
	}
	inst := p.inst
	n := inst.NumAdvertisers()
	checkFeasible := !inst.base
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			if cancelled(done) {
				return exchanges, false
			}
			if frozen != nil && frozen[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if frozen != nil && frozen[j] {
					continue
				}
				ii, ij := p.Influence(i), p.Influence(j)
				cur := p.Regret(i) + p.Regret(j)
				p.AddEvals(1)
				swapped := inst.Regret(i, ij) + inst.Regret(j, ii)
				if swapped < cur-minImprove &&
					(!checkFeasible || inst.model.CanExchangeSets(p, i, j)) {
					p.ExchangeSets(i, j)
					exchanges++
					improved = true
				}
			}
		}
		if !improved {
			return exchanges, true
		}
	}
	return exchanges, true
}

// BillboardLocalSearch is BLS (Algorithm 5): a fine-grained neighborhood
// search around the current plan using four moves, applied first-improvement
// until a full sweep accepts nothing (or MaxPasses sweeps have run):
//
//	(1) exchange a billboard of one advertiser with a billboard of another;
//	(2) replace an assigned billboard with an unassigned one;
//	(3) release an assigned billboard;
//	(4) allocate unassigned billboards by re-running the synchronous greedy
//	    and keeping the result if it improves.
//
// A move is accepted only if it reduces total regret by more than the
// improvement threshold derived from opts.ImprovementRatio (Definition
// 6.1's r). It returns the number of accepted moves.
func BillboardLocalSearch(p *Plan, opts LocalSearchOptions) int {
	accepted, _ := billboardLocalSearch(nil, p, opts, nil)
	return accepted
}

// BillboardLocalSearchCtx is BillboardLocalSearch under a context: it
// additionally reports whether the search converged before ctx fired. The
// plan is always left structurally valid (cancellation points sit between
// atomic moves).
func BillboardLocalSearchCtx(ctx context.Context, p *Plan, opts LocalSearchOptions) (accepted int, completed bool) {
	return billboardLocalSearch(ctxDone(ctx), p, opts, nil)
}

func billboardLocalSearch(done <-chan struct{}, p *Plan, opts LocalSearchOptions, frozen []bool) (accepted int, completed bool) {
	opts = opts.withDefaults()
	inst := p.inst
	n := inst.NumAdvertisers()
	// Scratch buffers reused across every sweep: the member/free lists the
	// moves enumerate (refilled in place, allocation-free after the first
	// pass) and the trial plan of move (4), copied instead of cloned.
	var s blsScratch
	skip := func(i int) bool { return frozen != nil && frozen[i] }

	for pass := 0; pass < opts.MaxPasses; pass++ {
		improved := false

		// Move (1): pairwise billboard exchange between advertisers.
		for i := 0; i < n; i++ {
			if skip(i) {
				continue
			}
			for j := i + 1; j < n; j++ {
				if cancelled(done) {
					return accepted, false
				}
				if skip(j) {
					continue
				}
				if tryExchangeMove(p, i, j, opts, &s, done) {
					accepted++
					improved = true
				}
			}
		}
		// Move (2): replace an assigned billboard with an unassigned one.
		for i := 0; i < n; i++ {
			if cancelled(done) {
				return accepted, false
			}
			if skip(i) {
				continue
			}
			if tryReplaceMove(p, i, opts, &s, done) {
				accepted++
				improved = true
			}
		}
		// Move (3): release an assigned billboard.
		for i := 0; i < n; i++ {
			if cancelled(done) {
				return accepted, false
			}
			if skip(i) {
				continue
			}
			if tryReleaseMove(p, i, opts, &s) {
				accepted++
				improved = true
			}
		}
		// Move (4): allocate unassigned billboards via the synchronous
		// greedy; keep only if it improves (Lines 5.11-5.13). Frozen
		// advertisers need no gate here: they are satisfied by
		// construction (warmstart.go) and the greedy only assigns to and
		// releases unsatisfied advertisers, so the trial cannot perturb
		// them.
		before := p.TotalRegret()
		if s.trial == nil {
			s.trial = p.Clone()
		} else {
			s.trial.CopyFrom(p)
		}
		greedyOK := synchronousGreedyDone(done, s.trial)
		// The trial starts as a copy of p, so adopting its counters
		// wholesale credits p with exactly the greedy's extra work —
		// mirrored for the selection-effectiveness counters below.
		p.AddEvals(s.trial.Evals() - p.Evals())
		p.stats = s.trial.stats
		if !greedyOK {
			// The trial is a half-finished greedy; discard it rather than
			// let cancellation timing leak into the plan.
			return accepted, false
		}
		if s.trial.TotalRegret() < before-opts.threshold(before) {
			p.CopyFrom(s.trial)
			accepted++
			improved = true
		}

		if !improved {
			return accepted, true
		}
	}
	return accepted, true
}

// blsScratch holds the buffers one billboardLocalSearch invocation reuses
// across sweeps: candidate lists for the three point moves and the greedy
// trial plan of move (4).
type blsScratch struct {
	si, sj []int
	free   []int
	trial  *Plan
}

// tryExchangeMove searches S_i × S_j for one accepted billboard exchange
// (first improvement) and applies it. Reports whether a move was accepted;
// a cancellation mid-scan simply abandons the scan (the caller re-checks
// done and unwinds).
func tryExchangeMove(p *Plan, i, j int, opts LocalSearchOptions, s *blsScratch, done <-chan struct{}) bool {
	inst := p.inst
	checkFeasible := !inst.base
	s.si = p.Set(i, s.si[:0])
	s.sj = p.Set(j, s.sj[:0])
	for _, bm := range s.si {
		if cancelled(done) {
			return false
		}
		for _, bn := range s.sj {
			cur := p.Regret(i) + p.Regret(j)
			di := p.SwapDeltaOf(i, bm, bn)
			dj := p.SwapDeltaOf(j, bn, bm)
			next := inst.Regret(i, p.Influence(i)+di) + inst.Regret(j, p.Influence(j)+dj)
			if next < cur-opts.threshold(p.TotalRegret()) {
				if checkFeasible && (!inst.model.CanSwap(p, i, bm, bn) || !inst.model.CanSwap(p, j, bn, bm)) {
					continue
				}
				p.ExchangeBillboards(bm, bn)
				return true
			}
		}
	}
	return false
}

// tryReplaceMove searches S_i × unassigned for one accepted replacement and
// applies it. Reports whether a move was accepted.
func tryReplaceMove(p *Plan, i int, opts LocalSearchOptions, s *blsScratch, done <-chan struct{}) bool {
	inst := p.inst
	checkFeasible := !inst.base
	s.si = p.Set(i, s.si[:0])
	s.free = p.UnassignedBillboards(s.free[:0])
	for _, bm := range s.si {
		if cancelled(done) {
			return false
		}
		for _, bn := range s.free {
			cur := p.Regret(i)
			di := p.SwapDeltaOf(i, bm, bn)
			next := inst.Regret(i, p.Influence(i)+di)
			if next < cur-opts.threshold(p.TotalRegret()) {
				if checkFeasible && !inst.model.CanSwap(p, i, bm, bn) {
					continue
				}
				p.Replace(bm, bn)
				return true
			}
		}
	}
	return false
}

// tryReleaseMove searches S_i for one accepted release and applies it.
// Reports whether a move was accepted.
func tryReleaseMove(p *Plan, i int, opts LocalSearchOptions, s *blsScratch) bool {
	inst := p.inst
	s.si = p.Set(i, s.si[:0])
	for _, bm := range s.si {
		cur := p.Regret(i)
		loss := p.LossOf(i, bm)
		next := inst.Regret(i, p.Influence(i)-loss)
		if next < cur-opts.threshold(p.TotalRegret()) {
			p.Release(bm)
			return true
		}
	}
	return false
}
