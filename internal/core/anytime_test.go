package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/rng"
)

// assertSamePlan fails unless the two plans assign identical billboard sets
// to every advertiser and report identical regret and eval counters.
func assertSamePlan(t *testing.T, label string, got, want *Plan) {
	t.Helper()
	if g, w := got.TotalRegret(), want.TotalRegret(); g != w {
		t.Errorf("%s: regret %v, want %v", label, g, w)
	}
	if g, w := got.Evals(), want.Evals(); g != w {
		t.Errorf("%s: evals %d, want %d", label, g, w)
	}
	for i := 0; i < want.Instance().NumAdvertisers(); i++ {
		g, w := got.Set(i, nil), want.Set(i, nil)
		if len(g) != len(w) {
			t.Fatalf("%s: advertiser %d has %d billboards, want %d", label, i, len(g), len(w))
		}
		for k := range w {
			if g[k] != w[k] {
				t.Fatalf("%s: advertiser %d set %v, want %v", label, i, g, w)
			}
		}
	}
}

// TestAnytimeUncancelledMatchesBlocking pins the determinism caveat of the
// anytime contract: when the context never fires, the ctx entry point is
// bit-identical to the blocking one for any worker count.
func TestAnytimeUncancelledMatchesBlocking(t *testing.T) {
	r := rng.New(91)
	inst := randomInstance(r, 400, 30, 40, 4, 1.1, 0.5)
	for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
		opts := LocalSearchOptions{Search: kind, Restarts: 4, Seed: 7}
		want := RandomizedLocalSearch(inst, opts)
		for _, workers := range []int{1, 2, 8} {
			opts.Workers = workers
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			res := RandomizedLocalSearchCtx(ctx, inst, opts)
			cancel()
			if res.Truncated {
				t.Fatalf("%v workers=%d: truncated without a deadline firing", kind, workers)
			}
			if res.RestartsCompleted != res.RestartsRequested || res.RestartsCompleted != 4 {
				t.Fatalf("%v workers=%d: restarts %d/%d, want 4/4",
					kind, workers, res.RestartsCompleted, res.RestartsRequested)
			}
			if res.TotalRegret != res.Plan.TotalRegret() {
				t.Fatalf("%v workers=%d: TotalRegret field %v != plan %v",
					kind, workers, res.TotalRegret, res.Plan.TotalRegret())
			}
			assertSamePlan(t, kind.String(), res.Plan, want)
		}
	}
}

// TestAnytimeTruncationMatchesShorterRun is the deterministic-truncation
// table test: a run cancelled after k completed restart iterations must
// return the same plan (regret, sets, evals) as an uncancelled run
// configured with Restarts = k.
func TestAnytimeTruncationMatchesShorterRun(t *testing.T) {
	r := rng.New(92)
	inst := randomInstance(r, 300, 25, 30, 4, 1.2, 0.5)
	for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
		for _, k := range []int{1, 2, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			restartTestHook = func(job int) {
				if job == k {
					cancel()
				}
			}
			res := RandomizedLocalSearchCtx(ctx, inst,
				LocalSearchOptions{Search: kind, Restarts: 8, Seed: 5, Workers: 1})
			restartTestHook = nil
			cancel()

			if !res.Truncated {
				t.Fatalf("%v k=%d: not truncated", kind, k)
			}
			if res.RestartsCompleted != k {
				t.Fatalf("%v k=%d: RestartsCompleted = %d", kind, k, res.RestartsCompleted)
			}
			if err := res.Plan.Validate(); err != nil {
				t.Fatalf("%v k=%d: %v", kind, k, err)
			}
			want := RandomizedLocalSearch(inst,
				LocalSearchOptions{Search: kind, Restarts: k, Seed: 5, Workers: 1})
			assertSamePlan(t, kind.String(), res.Plan, want)
		}
	}
}

// TestAnytimeCancelReturnsQuickly bounds the cancellation latency: on a
// 600-billboard instance mid-solve, cancelling the context must unwind and
// return a valid best-so-far plan within 50ms.
func TestAnytimeCancelReturnsQuickly(t *testing.T) {
	r := rng.New(93)
	inst := randomInstance(r, 20000, 600, 300, 6, 1.2, 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *Anytime
		at  time.Time
	}
	ch := make(chan outcome, 1)
	go func() {
		res := RandomizedLocalSearchCtx(ctx, inst,
			LocalSearchOptions{Search: BillboardDriven, Restarts: 50, Seed: 3, Workers: 2})
		ch <- outcome{res, time.Now()}
	}()

	time.Sleep(30 * time.Millisecond) // let the solve get going
	cancelledAt := time.Now()
	cancel()
	select {
	case out := <-ch:
		if lat := out.at.Sub(cancelledAt); lat > 50*time.Millisecond {
			t.Errorf("cancellation latency %v, want <= 50ms", lat)
		}
		if !out.res.Truncated {
			t.Error("50-restart BLS finished within 30ms — instance too small to exercise cancellation")
		}
		if out.res.Plan == nil {
			t.Fatal("nil plan after cancellation")
		}
		if err := out.res.Plan.Validate(); err != nil {
			t.Errorf("cancelled plan invalid: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve did not return within 5s of cancellation")
	}
}

// TestAnytimeExpiredContext covers the zero-budget edge: a context that is
// already cancelled still yields a structurally valid (possibly empty) plan.
func TestAnytimeExpiredContext(t *testing.T) {
	inst := smallInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range PaperAlgorithms(1, 3) {
		aa, ok := alg.(AnytimeAlgorithm)
		if !ok {
			t.Fatalf("%s does not implement AnytimeAlgorithm", alg.Name())
		}
		res := aa.SolveCtx(ctx, inst)
		if !res.Truncated {
			t.Errorf("%s: expired context not reported as truncated", alg.Name())
		}
		if res.Plan == nil {
			t.Fatalf("%s: nil plan", alg.Name())
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
		if res.RestartsCompleted != 0 {
			t.Errorf("%s: RestartsCompleted = %d, want 0", alg.Name(), res.RestartsCompleted)
		}
	}
}

// TestAnytimeGreedySolveCtxMatchesSolve checks the greedy algorithms'
// anytime form against their blocking form under a context that never fires.
func TestAnytimeGreedySolveCtxMatchesSolve(t *testing.T) {
	r := rng.New(94)
	inst := randomInstance(r, 300, 20, 30, 3, 1.0, 0.5)
	for _, alg := range []Algorithm{GOrderAlgorithm{}, GGlobalAlgorithm{}} {
		res := alg.(AnytimeAlgorithm).SolveCtx(context.Background(), inst)
		if res.Truncated {
			t.Fatalf("%s: truncated under background context", alg.Name())
		}
		assertSamePlan(t, alg.Name(), res.Plan, alg.Solve(inst))
	}
}

// TestSolveAnytimeFallback checks the helper used by the serving layer.
func TestSolveAnytimeFallback(t *testing.T) {
	inst := smallInstance()
	res := SolveAnytime(context.Background(), BLSAlgorithm{Opts: LocalSearchOptions{Restarts: 2, Seed: 1}}, inst)
	if res.Truncated || res.Plan == nil {
		t.Fatalf("background solve truncated=%v plan=%v", res.Truncated, res.Plan)
	}
	if res.Evals < res.Plan.Evals() {
		t.Errorf("Evals %d < plan evals %d", res.Evals, res.Plan.Evals())
	}
}
