package core

import (
	"math"
	"slices"
	"testing"

	"repro/internal/rng"
)

// zonalInstance attaches a ZonalModel to a random instance: billboards are
// partitioned round-robin into the given number of zones and capped at a
// fraction of the total supply, tight enough that the constraint actually
// binds on most draws.
func zonalInstance(t *testing.T, r *rng.RNG, zones int, cap int64) *Instance {
	t.Helper()
	inst := drawInstance(r)
	u := inst.Universe()
	zoneOf := make([]int, u.NumBillboards())
	for b := range zoneOf {
		zoneOf[b] = b % zones
	}
	m, err := NewZonalModel(zoneOf, cap)
	if err != nil {
		t.Fatal(err)
	}
	zi, err := inst.WithModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return zi
}

func TestWithModelValidation(t *testing.T) {
	r := rng.New(5)
	inst := drawInstance(r)
	if _, err := NewZonalModel([]int{0, 1}, 0); err == nil {
		t.Error("NewZonalModel accepted cap 0")
	}
	if _, err := NewZonalModel([]int{0, -1}, 5); err == nil {
		t.Error("NewZonalModel accepted negative zone")
	}
	m, err := NewZonalModel(make([]int, inst.Universe().NumBillboards()+1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.WithModel(m); err == nil {
		t.Error("WithModel accepted a zone partition of the wrong length")
	}
	// nil restores the base model.
	bi, err := inst.WithModel(nil)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Model().Kind() != ModelBase || !bi.base {
		t.Errorf("WithModel(nil) kind %q base %v", bi.Model().Kind(), bi.base)
	}
	if inst.Model().Kind() != ModelBase {
		t.Errorf("fresh instance model kind %q, want %q", inst.Model().Kind(), ModelBase)
	}
}

// TestZonalSolversRespectCaps runs all four solvers on zonal instances and
// checks the end-to-end feasibility contract: every returned plan passes the
// model's Validate (no advertiser's per-zone counted influence exceeds the
// cap), at both worker counts, with bit-identical results across them.
func TestZonalSolversRespectCaps(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 10; trial++ {
		inst := zonalInstance(t, r, 3, int64(3+r.Intn(20)))
		solve := func(name string, workers int) *Plan {
			alg, err := AlgorithmByNameOpts(name, LocalSearchOptions{Seed: 7, Restarts: 2, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			return alg.Solve(inst)
		}
		for _, name := range []string{"G-Order", "G-Global", "ALS", "BLS"} {
			p1, p4 := solve(name, 1), solve(name, 4)
			if err := p1.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if p1.TotalRegret() != p4.TotalRegret() {
				t.Fatalf("trial %d %s: workers=1 regret %v, workers=4 regret %v",
					trial, name, p1.TotalRegret(), p4.TotalRegret())
			}
			for i := 0; i < inst.NumAdvertisers(); i++ {
				if !slices.Equal(p1.Set(i, nil), p4.Set(i, nil)) {
					t.Fatalf("trial %d %s adv %d: worker counts disagree", trial, name, i)
				}
			}
		}
	}
}

// TestZonalFeasibilityHooks pins the hook semantics against a brute-force
// load recount on random plans.
func TestZonalFeasibilityHooks(t *testing.T) {
	r := rng.New(654)
	for trial := 0; trial < 50; trial++ {
		inst := zonalInstance(t, r, 2+r.Intn(4), int64(2+r.Intn(15)))
		m := inst.Model().(*ZonalModel)
		u := inst.Universe()
		// Build a feasible plan greedily with CanAssign as the only guard.
		p := NewPlan(inst)
		for b := 0; b < u.NumBillboards(); b++ {
			i := r.Intn(inst.NumAdvertisers())
			if r.Intn(3) != 0 && m.CanAssign(p, i, b) {
				p.Assign(b, i)
			}
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: CanAssign-guarded plan infeasible: %v", trial, err)
		}
		// CanAssign must agree with "apply then Validate".
		for b := 0; b < u.NumBillboards(); b++ {
			if p.Owner(b) != Unassigned {
				continue
			}
			i := r.Intn(inst.NumAdvertisers())
			allowed := m.CanAssign(p, i, b)
			p.Assign(b, i)
			feasible := m.Validate(p) == nil
			p.Release(b)
			if allowed != feasible {
				t.Fatalf("trial %d: CanAssign(%d,%d)=%v but post-assign Validate says %v",
					trial, i, b, allowed, feasible)
			}
		}
		// CanSwap must agree with "apply then Validate" for owned×free pairs.
		for i := 0; i < inst.NumAdvertisers(); i++ {
			for _, out := range p.Set(i, nil) {
				for b := 0; b < u.NumBillboards(); b++ {
					if p.Owner(b) != Unassigned {
						continue
					}
					allowed := m.CanSwap(p, i, out, b)
					p.Replace(out, b)
					feasible := m.Validate(p) == nil
					p.Replace(b, out)
					if allowed != feasible {
						t.Fatalf("trial %d: CanSwap(%d,%d,%d)=%v but post-swap Validate says %v",
							trial, i, out, b, allowed, feasible)
					}
					break // one free partner per owned billboard keeps this O(n²)
				}
				break // one owned billboard per advertiser
			}
		}
	}
}

// TestModelMarginalUpperBound is the CELF-admissibility property the gain
// cache depends on (gaincache.go): across ≥200 random instances and plans,
// for every advertiser and every unassigned billboard b,
//
//	key1(b) = (R(S_i) − R(S_i ∪ {b})) / I({b}) ≤ C · (gain(b)/I({b}))
//
// where C = MarginalUpperBound(i, achieved, R(S_i)) — so C·r̂ dominates
// key1 for any stale ratio r̂ ≥ gain/deg, and the lazy-greedy prune can
// never discard the true argmax. Checked for BaseModel and ZonalModel.
func TestModelMarginalUpperBound(t *testing.T) {
	for _, kind := range []string{ModelBase, ModelZonal} {
		t.Run(kind, func(t *testing.T) {
			r := rng.New(2026)
			for trial := 0; trial < 220; trial++ {
				var inst *Instance
				if kind == ModelZonal {
					inst = zonalInstance(t, r, 3, int64(2+r.Intn(25)))
				} else {
					inst = drawInstance(r)
				}
				m := inst.Model()
				p := randomPlan(r, inst)
				u := inst.Universe()
				for i := 0; i < inst.NumAdvertisers(); i++ {
					achieved := p.Influence(i)
					curRegret := inst.Regret(i, achieved)
					c := m.MarginalUpperBound(inst, i, achieved, curRegret)
					if c < 0 {
						t.Fatalf("trial %d adv %d: negative bound %v", trial, i, c)
					}
					for b := 0; b < u.NumBillboards(); b++ {
						if p.Owner(b) != Unassigned || u.Degree(b) == 0 {
							continue
						}
						deg := float64(u.Degree(b))
						gain := p.GainOf(i, b)
						key1 := (curRegret - inst.Regret(i, achieved+gain)) / deg
						bound := c * (float64(gain) / deg)
						if key1 > bound+1e-9*(math.Abs(key1)+math.Abs(bound)+1) {
							t.Fatalf("trial %d adv %d billboard %d: key1 %v exceeds bound %v (C=%v gain=%d deg=%v)",
								trial, i, b, key1, bound, c, gain, deg)
						}
					}
				}
			}
		})
	}
}

// TestZonalPsiExcludesUnassignable pins the zonal ψ refinement: billboards
// whose degree alone exceeds the cap cannot join any feasible set, so they
// must not inflate ψ or the approximation factor.
func TestZonalPsiExcludesUnassignable(t *testing.T) {
	r := rng.New(31)
	inst := drawInstance(r)
	u := inst.Universe()
	maxDeg := 0
	for b := 0; b < u.NumBillboards(); b++ {
		if d := u.Degree(b); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 2 {
		t.Skip("degenerate draw")
	}
	zoneOf := make([]int, u.NumBillboards())
	m, err := NewZonalModel(zoneOf, int64(maxDeg-1)) // excludes the max-degree billboard
	if err != nil {
		t.Fatal(err)
	}
	zi, err := inst.WithModel(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.NumAdvertisers(); i++ {
		if zp, bp := Psi(zi, i), Psi(inst, i); zp >= bp {
			t.Fatalf("adv %d: zonal ψ %v not below base ψ %v", i, zp, bp)
		}
	}
}

// TestModelKindStrings pins the wire names the catalog, cache key and
// metrics label all share.
func TestModelKindStrings(t *testing.T) {
	if got := (BaseModel{}).Kind(); got != "base" {
		t.Errorf("BaseModel kind %q", got)
	}
	m, err := NewZonalModel([]int{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Kind(); got != "zonal" {
		t.Errorf("ZonalModel kind %q", got)
	}
	if m.Zones() != 1 || m.Cap() != 1 || m.ZoneOf(0) != 0 {
		t.Errorf("accessors: zones %d cap %d zone(0) %d", m.Zones(), m.Cap(), m.ZoneOf(0))
	}
	var _ Assignment = (*Plan)(nil)
	var _ Model = BaseModel{}
	var _ Model = (*ZonalModel)(nil)
}
