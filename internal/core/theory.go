package core

import (
	"fmt"
	"math"
)

// This file makes Section 6.3's analysis executable: the ψ statistic, the
// (1+r)-approximate local maximum check of Definition 6.1, and the
// approximation factor ρ of Theorem 2 for the dual maximize-R′ objective.
// Package tests verify the theorem's inequality ρ·R′(S) ≥ R′(OPT) against
// the exact solver on small instances.

// Psi returns the instance model's ψ statistic for advertiser i (Lemma
// 6.1). For BaseModel this is max_o I({o}) / I_i, the ratio of the largest
// single billboard influence to the demand; constrained models may exclude
// billboards no feasible set can contain. Values ≥ 1 mean one billboard
// alone can satisfy the demand, which voids the (1−ψ)^{−|U|} branch of the
// bound.
func Psi(inst *Instance, i int) float64 {
	return inst.model.Psi(inst, i)
}

// ApproximationFactor returns the model's Theorem 2 factor — for BaseModel
// ρ = max(1 + r·|U|, (1−ψ)^{−|U|}) — for advertiser i under improvement
// ratio r. It returns +Inf when ψ ≥ 1 (the second branch diverges),
// mirroring the theory: the guarantee is only informative when no single
// billboard dwarfs the demand.
func ApproximationFactor(inst *Instance, i int, r float64) float64 {
	return inst.model.ApproximationFactor(inst, i, r)
}

// IsApproxLocalMaximum reports whether the plan's set for advertiser i is a
// (1+r)-approximate local maximum of the dual objective R′ per Definition
// 6.1: (1+r)·R′(S) ≥ R′(S \ {o}) for every o ∈ S and (1+r)·R′(S) ≥
// R′(S ∪ {o}) for every unassigned o ∉ S. It returns the first violating
// billboard and direction when not.
func IsApproxLocalMaximum(p *Plan, i int, r float64) (ok bool, violator int, direction string) {
	inst := p.Instance()
	checkFeasible := !inst.base
	base := inst.Dual(i, p.Influence(i))
	threshold := (1 + r) * base
	for _, b := range p.Set(i, nil) {
		loss := p.LossOf(i, b)
		if inst.Dual(i, p.Influence(i)-loss) > threshold+1e-9 {
			return false, b, "remove"
		}
	}
	for _, b := range p.UnassignedBillboards(nil) {
		// Under a constrained model the neighborhood is the feasible moves
		// only: an addition the model forbids cannot witness non-maximality.
		if checkFeasible && !inst.model.CanAssign(p, i, b) {
			continue
		}
		gain := p.GainOf(i, b)
		if inst.Dual(i, p.Influence(i)+gain) > threshold+1e-9 {
			return false, b, "add"
		}
	}
	return true, -1, ""
}

// DefaultDualMaxMoves is the move cap DualLocalSearch applies when the
// caller passes maxMoves < 1. It is a termination safety valve, not part of
// the theory: a search that stops here has NOT necessarily reached a local
// maximum, which is why the function reports convergence separately.
const DefaultDualMaxMoves = 10000

// DualLocalSearch greedily improves advertiser i's set under the dual
// objective R′ using single add/remove/swap moves until it reaches a
// (1+r)-approximate local maximum (the single-advertiser search analyzed in
// §6.3). Only unassigned billboards are considered for additions and swaps,
// so multi-advertiser plans remain disjoint.
//
// maxMoves bounds the number of accepted moves; values < 1 select
// DefaultDualMaxMoves. It returns the number of accepted moves and whether
// the search converged — stopped because no improving move exists (a true
// (1+r)-approximate local maximum) rather than because the cap fired.
// Callers asserting fixed-point properties must check converged: on
// adversarial instances the cap can stop the search mid-descent.
func DualLocalSearch(p *Plan, i int, r float64, maxMoves int) (moves int, converged bool) {
	if r < 0 {
		r = 0
	}
	if maxMoves < 1 {
		maxMoves = DefaultDualMaxMoves
	}
	inst := p.Instance()
	checkFeasible := !inst.base
	for moves < maxMoves {
		base := inst.Dual(i, p.Influence(i))
		threshold := (1 + r) * base
		improved := false

		for _, b := range p.UnassignedBillboards(nil) {
			if checkFeasible && !inst.model.CanAssign(p, i, b) {
				continue
			}
			gain := p.GainOf(i, b)
			if inst.Dual(i, p.Influence(i)+gain) > threshold+1e-9 {
				p.Assign(b, i)
				improved = true
				break
			}
		}
		if !improved {
			for _, b := range p.Set(i, nil) {
				loss := p.LossOf(i, b)
				if inst.Dual(i, p.Influence(i)-loss) > threshold+1e-9 {
					p.Release(b)
					improved = true
					break
				}
			}
		}
		if !improved {
		swap:
			for _, out := range p.Set(i, nil) {
				for _, in := range p.UnassignedBillboards(nil) {
					if checkFeasible && !inst.model.CanSwap(p, i, out, in) {
						continue
					}
					delta := p.SwapDeltaOf(i, out, in)
					if inst.Dual(i, p.Influence(i)+delta) > threshold+1e-9 {
						p.Replace(out, in)
						improved = true
						break swap
					}
				}
			}
		}
		if !improved {
			return moves, true
		}
		moves++
	}
	return moves, false
}

// VerifyTheorem2 checks Theorem 2's inequality ρ·R′(S) ≥ R′(OPT) for a
// single-advertiser instance: it runs DualLocalSearch to a fixed point,
// computes ρ, finds the dual optimum exhaustively, and returns an error if
// the bound fails. Only instances within Exact's size limits are accepted.
func VerifyTheorem2(inst *Instance, r float64) error {
	if inst.NumAdvertisers() != 1 {
		return fmt.Errorf("core: Theorem 2 analysis covers the single-advertiser case, got %d", inst.NumAdvertisers())
	}
	p := NewPlan(inst)
	if _, converged := DualLocalSearch(p, 0, r, 0); !converged {
		return fmt.Errorf("core: dual local search hit the %d-move cap before reaching a fixed point", DefaultDualMaxMoves)
	}
	if ok, b, dir := IsApproxLocalMaximum(p, 0, r); !ok {
		return fmt.Errorf("core: search did not reach a local maximum (billboard %d, %s)", b, dir)
	}
	rho := ApproximationFactor(inst, 0, r)
	if math.IsInf(rho, 1) {
		return nil // bound vacuous when ψ ≥ 1
	}
	optDual, err := exactDualOptimum(inst)
	if err != nil {
		return err
	}
	got := inst.Dual(0, p.Influence(0))
	if rho*got+1e-9 < optDual {
		return fmt.Errorf("core: Theorem 2 violated: ρ·R'(S) = %v·%v < R'(OPT) = %v", rho, got, optDual)
	}
	return nil
}

// exactDualOptimum exhaustively maximizes R′ over all subsets for a
// single-advertiser instance.
func exactDualOptimum(inst *Instance) (float64, error) {
	nB := inst.Universe().NumBillboards()
	if nB > ExactMaxBillboards {
		return 0, fmt.Errorf("core: dual optimum limited to %d billboards, got %d", ExactMaxBillboards, nB)
	}
	p := NewPlan(inst)
	best := inst.Dual(0, 0)
	var rec func(b int)
	rec = func(b int) {
		if b == nB {
			if v := inst.Dual(0, p.Influence(0)); v > best {
				best = v
			}
			return
		}
		rec(b + 1)
		p.Assign(b, 0)
		rec(b + 1)
		p.Release(b)
	}
	rec(0)
	return best, nil
}
