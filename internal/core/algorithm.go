package core

import "fmt"

// Algorithm is a named MROAM solver. The four methods compared in the
// paper's evaluation all implement it.
type Algorithm interface {
	// Name returns the method name as used in the paper's figures.
	Name() string
	// Solve computes a deployment plan for the instance.
	Solve(inst *Instance) *Plan
}

// GOrderAlgorithm is the budget-effective greedy, "G-Order" in the figures.
type GOrderAlgorithm struct{}

// Name implements Algorithm.
func (GOrderAlgorithm) Name() string { return "G-Order" }

// Solve implements Algorithm.
func (GOrderAlgorithm) Solve(inst *Instance) *Plan { return GreedyOrder(inst) }

// GGlobalAlgorithm is the synchronous greedy, "G-Global" in the figures.
type GGlobalAlgorithm struct{}

// Name implements Algorithm.
func (GGlobalAlgorithm) Name() string { return "G-Global" }

// Solve implements Algorithm.
func (GGlobalAlgorithm) Solve(inst *Instance) *Plan { return GGlobal(inst) }

// ALSAlgorithm is the randomized local search framework with the
// advertiser-driven neighborhood, "ALS" in the figures.
type ALSAlgorithm struct {
	Opts LocalSearchOptions
}

// Name implements Algorithm.
func (ALSAlgorithm) Name() string { return "ALS" }

// Solve implements Algorithm.
func (a ALSAlgorithm) Solve(inst *Instance) *Plan {
	opts := a.Opts
	opts.Search = AdvertiserDriven
	return RandomizedLocalSearch(inst, opts)
}

// BLSAlgorithm is the randomized local search framework with the
// billboard-driven neighborhood, "BLS" in the figures.
type BLSAlgorithm struct {
	Opts LocalSearchOptions
}

// Name implements Algorithm.
func (BLSAlgorithm) Name() string { return "BLS" }

// Solve implements Algorithm.
func (b BLSAlgorithm) Solve(inst *Instance) *Plan {
	opts := b.Opts
	opts.Search = BillboardDriven
	return RandomizedLocalSearch(inst, opts)
}

// PaperAlgorithms returns the four methods of the evaluation section in the
// paper's presentation order, configured with the given seed and restart
// count (restarts < 1 selects DefaultRestarts).
func PaperAlgorithms(seed uint64, restarts int) []Algorithm {
	return PaperAlgorithmsOpts(LocalSearchOptions{Seed: seed, Restarts: restarts})
}

// PaperAlgorithmsOpts is PaperAlgorithms with full control over the local
// search options (restart count, improvement ratio, worker count). The
// Search field is overridden per method.
func PaperAlgorithmsOpts(opts LocalSearchOptions) []Algorithm {
	return []Algorithm{
		GOrderAlgorithm{},
		GGlobalAlgorithm{},
		ALSAlgorithm{Opts: opts},
		BLSAlgorithm{Opts: opts},
	}
}

// AlgorithmByName returns the algorithm with the given figure name.
func AlgorithmByName(name string, seed uint64, restarts int) (Algorithm, error) {
	return AlgorithmByNameOpts(name, LocalSearchOptions{Seed: seed, Restarts: restarts})
}

// AlgorithmByNameOpts is AlgorithmByName with full control over the local
// search options.
func AlgorithmByNameOpts(name string, opts LocalSearchOptions) (Algorithm, error) {
	for _, a := range PaperAlgorithmsOpts(opts) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("core: unknown algorithm %q", name)
}
