package core

import (
	"context"
	"fmt"
	"strings"
)

// Algorithm is a named MROAM solver. The four methods compared in the
// paper's evaluation all implement it (and all four also implement
// AnytimeAlgorithm, the cancellable form — see anytime.go).
type Algorithm interface {
	// Name returns the method name as used in the paper's figures.
	Name() string
	// Solve computes a deployment plan for the instance.
	Solve(inst *Instance) *Plan
}

// greedyAnytime packages a ctx-bounded greedy run as an Anytime result.
// The greedy algorithms have no restart loop, so both restart counters
// stay 0 and Truncated simply reports whether the greedy converged.
func greedyAnytime(p *Plan, completed bool) *Anytime {
	return &Anytime{
		Plan:        p,
		TotalRegret: p.TotalRegret(),
		Truncated:   !completed,
		Evals:       p.Evals(),
		Cache:       p.CacheStats(),
	}
}

// GOrderAlgorithm is the budget-effective greedy, "G-Order" in the figures.
type GOrderAlgorithm struct{}

// Name implements Algorithm.
func (GOrderAlgorithm) Name() string { return "G-Order" }

// Solve implements Algorithm.
func (GOrderAlgorithm) Solve(inst *Instance) *Plan { return GreedyOrder(inst) }

// SolveCtx implements AnytimeAlgorithm.
func (GOrderAlgorithm) SolveCtx(ctx context.Context, inst *Instance) *Anytime {
	return greedyAnytime(GreedyOrderCtx(ctx, inst))
}

// GGlobalAlgorithm is the synchronous greedy, "G-Global" in the figures.
type GGlobalAlgorithm struct{}

// Name implements Algorithm.
func (GGlobalAlgorithm) Name() string { return "G-Global" }

// Solve implements Algorithm.
func (GGlobalAlgorithm) Solve(inst *Instance) *Plan { return GGlobal(inst) }

// SolveCtx implements AnytimeAlgorithm.
func (GGlobalAlgorithm) SolveCtx(ctx context.Context, inst *Instance) *Anytime {
	p := NewPlan(inst)
	completed := SynchronousGreedyCtx(ctx, p)
	return greedyAnytime(p, completed)
}

// ALSAlgorithm is the randomized local search framework with the
// advertiser-driven neighborhood, "ALS" in the figures.
type ALSAlgorithm struct {
	Opts LocalSearchOptions
}

// Name implements Algorithm.
func (ALSAlgorithm) Name() string { return "ALS" }

// Solve implements Algorithm.
func (a ALSAlgorithm) Solve(inst *Instance) *Plan {
	opts := a.Opts
	opts.Search = AdvertiserDriven
	return RandomizedLocalSearch(inst, opts)
}

// SolveCtx implements AnytimeAlgorithm.
func (a ALSAlgorithm) SolveCtx(ctx context.Context, inst *Instance) *Anytime {
	opts := a.Opts
	opts.Search = AdvertiserDriven
	return RandomizedLocalSearchCtx(ctx, inst, opts)
}

// BLSAlgorithm is the randomized local search framework with the
// billboard-driven neighborhood, "BLS" in the figures.
type BLSAlgorithm struct {
	Opts LocalSearchOptions
}

// Name implements Algorithm.
func (BLSAlgorithm) Name() string { return "BLS" }

// Solve implements Algorithm.
func (b BLSAlgorithm) Solve(inst *Instance) *Plan {
	opts := b.Opts
	opts.Search = BillboardDriven
	return RandomizedLocalSearch(inst, opts)
}

// SolveCtx implements AnytimeAlgorithm.
func (b BLSAlgorithm) SolveCtx(ctx context.Context, inst *Instance) *Anytime {
	opts := b.Opts
	opts.Search = BillboardDriven
	return RandomizedLocalSearchCtx(ctx, inst, opts)
}

// PaperAlgorithms returns the four methods of the evaluation section in the
// paper's presentation order, configured with the given seed and restart
// count (restarts < 1 selects DefaultRestarts).
func PaperAlgorithms(seed uint64, restarts int) []Algorithm {
	return PaperAlgorithmsOpts(LocalSearchOptions{Seed: seed, Restarts: restarts})
}

// PaperAlgorithmsOpts is PaperAlgorithms with full control over the local
// search options (restart count, improvement ratio, worker count). The
// Search field is overridden per method.
func PaperAlgorithmsOpts(opts LocalSearchOptions) []Algorithm {
	return []Algorithm{
		GOrderAlgorithm{},
		GGlobalAlgorithm{},
		ALSAlgorithm{Opts: opts},
		BLSAlgorithm{Opts: opts},
	}
}

// AlgorithmByName returns the algorithm with the given figure name.
func AlgorithmByName(name string, seed uint64, restarts int) (Algorithm, error) {
	return AlgorithmByNameOpts(name, LocalSearchOptions{Seed: seed, Restarts: restarts})
}

// AlgorithmByNameOpts is AlgorithmByName with full control over the local
// search options.
func AlgorithmByNameOpts(name string, opts LocalSearchOptions) (Algorithm, error) {
	all := PaperAlgorithmsOpts(opts)
	for _, a := range all {
		if a.Name() == name {
			return a, nil
		}
	}
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name()
	}
	return nil, fmt.Errorf("core: unknown algorithm %q (want one of %s)", name, strings.Join(names, ", "))
}
