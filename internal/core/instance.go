// Package core implements the paper's contribution: the MROAM problem
// (Minimizing Regret for the OOH Advertising Market, Definition 3.1), its
// regret model (Equation 1), the dual maximum-revenue objective R′
// (Equation 2), deployment plans, and the four algorithms evaluated in the
// paper — the budget-effective greedy G-Order (Algorithm 1), the synchronous
// greedy G-Global (Algorithm 2), and the randomized local search framework
// (Algorithm 3) with its advertiser-driven (ALS, Algorithm 4) and
// billboard-driven (BLS, Algorithm 5) neighborhood strategies — plus an
// exact brute-force solver used as a test oracle on small instances.
package core

import (
	"fmt"

	"repro/internal/coverage"
)

// Advertiser is one campaign proposal: a minimum demanded influence I_i and
// the payment L_i committed if the demand is met (§3.1).
type Advertiser struct {
	ID      int
	Demand  int64   // I_i, must be >= 1
	Payment float64 // L_i, must be >= 0
}

// Instance is one MROAM problem: a coverage universe (billboards ×
// trajectories), an advertiser set, and the unsatisfied penalty ratio γ.
// The influence measure is the paper's union coverage by default; an
// impression threshold k > 1 (NewInstanceWithImpressions) switches to the
// impression-count measure the paper cites as an orthogonal alternative.
type Instance struct {
	universe    *coverage.Universe
	advertisers []Advertiser
	gamma       float64
	impressions int // influence threshold k; 1 = union coverage
	// model owns the objective and feasibility semantics (model.go); base
	// caches whether it is the canonical BaseModel so the hot-path regret
	// evaluations stay inlined closed forms instead of interface dispatch.
	model Model
	base  bool
}

// NewInstance validates and constructs an MROAM instance. Advertiser IDs
// are reassigned densely in slice order. γ must lie in [0, 1] (§3.2): γ=0
// means no payment at all unless the demand is fully met; γ=1 means payment
// proportional to the satisfied fraction.
func NewInstance(u *coverage.Universe, advertisers []Advertiser, gamma float64) (*Instance, error) {
	return NewInstanceWithImpressions(u, advertisers, gamma, 1)
}

// NewInstanceWithImpressions constructs an instance under the
// impression-count influence measure: a trajectory counts toward I(S_i)
// only after it meets at least k billboards of S_i. k = 1 recovers
// NewInstance exactly.
func NewInstanceWithImpressions(u *coverage.Universe, advertisers []Advertiser, gamma float64, k int) (*Instance, error) {
	if u == nil {
		return nil, fmt.Errorf("core: nil universe")
	}
	if gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("core: gamma %v outside [0, 1]", gamma)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: impression threshold %d < 1", k)
	}
	for i := range advertisers {
		advertisers[i].ID = i
		if advertisers[i].Demand < 1 {
			return nil, fmt.Errorf("core: advertiser %d demand %d < 1", i, advertisers[i].Demand)
		}
		if advertisers[i].Payment < 0 {
			return nil, fmt.Errorf("core: advertiser %d payment %v < 0", i, advertisers[i].Payment)
		}
	}
	return &Instance{universe: u, advertisers: advertisers, gamma: gamma, impressions: k,
		model: BaseModel{}, base: true}, nil
}

// WithModel returns a copy of the instance carrying the given regret model
// (nil restores BaseModel). Plans and solvers built from the returned
// instance evaluate the model's objective and consult its feasibility hooks;
// the receiver is unchanged, so base and variant instances over the same
// universe can coexist.
func (in *Instance) WithModel(m Model) (*Instance, error) {
	if m == nil {
		m = BaseModel{}
	}
	if zm, ok := m.(*ZonalModel); ok && len(zm.zoneOf) != in.universe.NumBillboards() {
		return nil, fmt.Errorf("core: zonal model covers %d billboards, universe has %d",
			len(zm.zoneOf), in.universe.NumBillboards())
	}
	c := *in
	c.model = m
	_, c.base = m.(BaseModel)
	return &c, nil
}

// Model returns the instance's regret model (BaseModel unless WithModel
// attached another).
func (in *Instance) Model() Model { return in.model }

// MustInstance is NewInstance that panics on error, for tests and hand-built
// examples.
func MustInstance(u *coverage.Universe, advertisers []Advertiser, gamma float64) *Instance {
	inst, err := NewInstance(u, advertisers, gamma)
	if err != nil {
		panic(err)
	}
	return inst
}

// Universe returns the coverage universe.
func (in *Instance) Universe() *coverage.Universe { return in.universe }

// NumAdvertisers returns |A|.
func (in *Instance) NumAdvertisers() int { return len(in.advertisers) }

// Advertiser returns advertiser i.
func (in *Instance) Advertiser(i int) Advertiser { return in.advertisers[i] }

// Gamma returns the unsatisfied penalty ratio γ.
func (in *Instance) Gamma() float64 { return in.gamma }

// Impressions returns the influence threshold k (1 = union coverage).
func (in *Instance) Impressions() int { return in.impressions }

// Regret evaluates the model's regret for advertiser i achieving the given
// influence. For the default BaseModel this is Equation 1:
//
//	R(S_i) = L_i·(1 − γ·I(S_i)/I_i)  if I(S_i) < I_i
//	R(S_i) = L_i·(I(S_i) − I_i)/I_i  otherwise
//
// The first branch is the revenue regret of an unsatisfied advertiser, the
// second the excessive-influence (opportunity-cost) regret of an
// over-satisfied one. Regret is 0 exactly when I(S_i) = I_i (or L_i = 0).
// The base branch is inlined (no interface dispatch) so the solvers' hot
// loops keep their pre-Model cost.
func (in *Instance) Regret(i int, achieved int) float64 {
	if in.base {
		return in.baseRegret(i, achieved)
	}
	return in.model.Regret(in, i, achieved)
}

// baseRegret is Equation 1's closed form, shared by the base fast path and
// any model that keeps the paper's objective.
func (in *Instance) baseRegret(i int, achieved int) float64 {
	a := in.advertisers[i]
	d := float64(a.Demand)
	if int64(achieved) < a.Demand {
		return a.Payment * (1 - in.gamma*float64(achieved)/d)
	}
	return a.Payment * (float64(achieved) - d) / d
}

// Satisfied reports whether the given achieved influence meets advertiser
// i's demand under the instance's model.
func (in *Instance) Satisfied(i int, achieved int) bool {
	if in.base {
		return in.baseSatisfied(i, achieved)
	}
	return in.model.Satisfied(in, i, achieved)
}

func (in *Instance) baseSatisfied(i int, achieved int) bool {
	return int64(achieved) >= in.advertisers[i].Demand
}

// Dual evaluates the model's rewired objective R′. For BaseModel this is
// Equation 2, the revenue-like quantity whose maximization is dual to
// minimizing R (§6.3):
//
//	R′(S_i) = L_i·I(S_i)/I_i             if I(S_i) < I_i
//	R′(S_i) = L_i − L_i·(I(S_i) − I_i)/I_i  otherwise
//
// R(S_i) + R′(S_i) = L_i whenever γ = 1; in general R′(S_i) = L_i iff
// R(S_i) = 0 (for L_i > 0).
func (in *Instance) Dual(i int, achieved int) float64 {
	if in.base {
		return in.baseDual(i, achieved)
	}
	return in.model.Dual(in, i, achieved)
}

func (in *Instance) baseDual(i int, achieved int) float64 {
	a := in.advertisers[i]
	d := float64(a.Demand)
	if int64(achieved) < a.Demand {
		return a.Payment * float64(achieved) / d
	}
	return a.Payment - a.Payment*(float64(achieved)-d)/d
}

// TotalPayment returns Σ L_i, the revenue of a perfect deployment. Useful
// for normalizing regret across instances.
func (in *Instance) TotalPayment() float64 {
	total := 0.0
	for _, a := range in.advertisers {
		total += a.Payment
	}
	return total
}

// TotalDemand returns I^A = Σ I_i, the global demand (§7.1.3).
func (in *Instance) TotalDemand() int64 {
	var total int64
	for _, a := range in.advertisers {
		total += a.Demand
	}
	return total
}

// DemandSupplyRatio returns α = I^A / I*, the global demand over the host's
// supply (§7.1.3). Returns 0 when the universe has no supply.
func (in *Instance) DemandSupplyRatio() float64 {
	supply := in.universe.TotalSupply()
	if supply == 0 {
		return 0
	}
	return float64(in.TotalDemand()) / float64(supply)
}
