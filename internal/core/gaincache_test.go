package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// withScanReference runs f with the lazy-greedy cache forced off,
// restoring the mode afterwards. Tests use it to obtain the reference
// full-scan behavior.
func withScanReference(f func()) {
	prev := celfMode
	celfMode = celfForceOff
	defer func() { celfMode = prev }()
	f()
}

// withCELF runs f with the lazy-greedy cache forced on (the auto-mode size
// threshold would route the small test instances to the scan).
func withCELF(f func()) {
	prev := celfMode
	celfMode = celfForceOn
	defer func() { celfMode = prev }()
	f()
}

// TestGainCacheMatchesScanAcrossAlgorithms: all four methods must return
// plans identical (sets, regret) to the reference full-scan implementation
// on seeded random instances spanning the workload space, including the
// degenerate γ=0 and γ=1 corners where greedy keys tie en masse.
func TestGainCacheMatchesScanAcrossAlgorithms(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 12; trial++ {
		alpha := r.Range(0.3, 2.0)
		gamma := []float64{0, 1, r.Range(0, 1)}[trial%3]
		nAdv := 2 + r.Intn(6)
		inst := randomInstance(r, 150+r.Intn(250), 10+r.Intn(30), 1+r.Intn(25), nAdv, alpha, gamma)
		opts := LocalSearchOptions{Restarts: 2, Seed: uint64(trial)}
		algs := []Algorithm{
			GOrderAlgorithm{},
			GGlobalAlgorithm{},
			ALSAlgorithm{Opts: opts},
			BLSAlgorithm{Opts: opts},
		}
		for _, alg := range algs {
			var want *Plan
			withScanReference(func() { want = alg.Solve(inst) })
			var got *Plan
			withCELF(func() { got = alg.Solve(inst) })
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.Name(), err)
			}
			if got.TotalRegret() != want.TotalRegret() {
				t.Fatalf("trial %d %s: regret %v (cache) != %v (scan)",
					trial, alg.Name(), got.TotalRegret(), want.TotalRegret())
			}
			var sg, sw []int
			for i := 0; i < inst.NumAdvertisers(); i++ {
				sg, sw = got.Set(i, sg[:0]), want.Set(i, sw[:0])
				if len(sg) != len(sw) {
					t.Fatalf("trial %d %s adv %d: |S| %d != %d", trial, alg.Name(), i, len(sg), len(sw))
				}
				for k := range sg {
					if sg[k] != sw[k] {
						t.Fatalf("trial %d %s adv %d: sets differ %v vs %v",
							trial, alg.Name(), i, sg, sw)
					}
				}
			}
		}
	}
}

// TestGainCacheReducesEvals: the point of the CELF heap — the greedy must
// reach the identical plan with strictly fewer marginal evaluations than
// the full scan on a non-trivial instance.
func TestGainCacheReducesEvals(t *testing.T) {
	inst := randomInstance(rng.New(31), 500, 60, 30, 6, 1.0, 0.5)
	var scanEvals int64
	withScanReference(func() { scanEvals = GGlobal(inst).Evals() })
	var cacheEvals int64
	withCELF(func() { cacheEvals = GGlobal(inst).Evals() })
	if cacheEvals >= scanEvals {
		t.Fatalf("cache evals %d not below scan evals %d", cacheEvals, scanEvals)
	}
	t.Logf("G-Global marginal evals: scan=%d cache=%d (%.1f%%)",
		scanEvals, cacheEvals, 100*float64(cacheEvals)/float64(scanEvals))
}

// TestGainCacheInvalidationOnRelease: after a release shrinks a set, the
// rebuilt heap must still select exactly what the scan selects — including
// re-offering the released billboard to every advertiser.
func TestGainCacheInvalidationOnRelease(t *testing.T) {
	u := coverage.MustUniverse(12, []coverage.List{
		{0, 1, 2, 3}, {4, 5, 6}, {7, 8}, {9, 10, 11}, {0, 4, 7},
	})
	inst := MustInstance(u, []Advertiser{
		{Demand: 6, Payment: 10},
		{Demand: 4, Payment: 8},
	}, 0.5)
	p := NewPlan(inst)
	// Warm both advertisers' heaps, then mutate through every move kind.
	withCELF(func() {
		if b, ok := bestBillboardFor(p, 0); ok {
			p.Assign(b, 0)
		}
		if b, ok := bestBillboardFor(p, 1); ok {
			p.Assign(b, 1)
		}
		p.ExchangeSets(0, 1)
		if b, ok := bestBillboardFor(p, 0); ok {
			p.Assign(b, 0)
		}
		p.ReleaseAll(0)
	})
	// After invalidation, selection must agree with the scan exactly.
	for i := 0; i < 2; i++ {
		gotB, gotOK := bestBillboardCELF(p, i)
		wantB, wantOK := bestBillboardScan(p, i)
		if gotB != wantB || gotOK != wantOK {
			t.Fatalf("advertiser %d: cache picked (%d,%v), scan picked (%d,%v)",
				i, gotB, gotOK, wantB, wantOK)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGainCacheStatsMatchRecount drives a deterministic selection sequence
// and checks the CacheStats counters against a brute-force recount of the
// eligible candidates before every selection:
//
//   - scan mode: Misses = Σ eligible (every candidate is exactly
//     evaluated), Hits = 0, Rescans = number of selection calls;
//   - CELF mode: same selections, and Hits + Misses = the scan's Misses —
//     every candidate the CELF bound skipped is a Hit, every one it popped
//     and evaluated is a Miss — with Rescans = 0 (no fallback under k=1).
func TestGainCacheStatsMatchRecount(t *testing.T) {
	inst := randomInstance(rng.New(909), 300, 30, 20, 5, 1.0, 0.5)
	u := inst.Universe()

	// drive performs greedy fills for each advertiser in turn, returning
	// the selection sequence and the brute-force eligible recount.
	drive := func(p *Plan) (picks []int, eligibleTotal int64, calls int64) {
		for i := 0; i < inst.NumAdvertisers(); i++ {
			for !p.Satisfied(i) {
				var eligible int64
				for b := 0; b < u.NumBillboards(); b++ {
					if p.Owner(b) == Unassigned && u.Degree(b) > 0 {
						eligible++
					}
				}
				b, ok := bestBillboardFor(p, i)
				calls++
				eligibleTotal += eligible
				if !ok {
					break
				}
				picks = append(picks, b)
				p.Assign(b, i)
			}
		}
		return picks, eligibleTotal, calls
	}

	var scanPicks []int
	var scanStats CacheStats
	var recount, calls int64
	withScanReference(func() {
		p := NewPlan(inst)
		scanPicks, recount, calls = drive(p)
		scanStats = p.CacheStats()
	})
	if scanStats.Hits != 0 {
		t.Errorf("scan mode recorded %d hits, want 0", scanStats.Hits)
	}
	if scanStats.Misses != recount {
		t.Errorf("scan misses %d != brute-force eligible recount %d", scanStats.Misses, recount)
	}
	if scanStats.Rescans != calls {
		t.Errorf("scan rescans %d != selection calls %d", scanStats.Rescans, calls)
	}

	var celfPicks []int
	var celfStats CacheStats
	withCELF(func() {
		p := NewPlan(inst)
		celfPicks, _, _ = drive(p)
		celfStats = p.CacheStats()
	})
	if len(celfPicks) != len(scanPicks) {
		t.Fatalf("CELF made %d picks, scan %d", len(celfPicks), len(scanPicks))
	}
	for k := range celfPicks {
		if celfPicks[k] != scanPicks[k] {
			t.Fatalf("pick %d: CELF chose %d, scan chose %d", k, celfPicks[k], scanPicks[k])
		}
	}
	if celfStats.Rescans != 0 {
		t.Errorf("CELF mode recorded %d rescans, want 0", celfStats.Rescans)
	}
	if got := celfStats.Hits + celfStats.Misses; got != scanStats.Misses {
		t.Errorf("CELF hits+misses %d != scan misses %d (the candidate sets must partition)",
			got, scanStats.Misses)
	}
	if celfStats.Hits == 0 {
		t.Error("CELF recorded no hits; the bound never skipped a candidate")
	}
	t.Logf("candidates: scan evaluated %d, CELF evaluated %d + skipped %d",
		scanStats.Misses, celfStats.Misses, celfStats.Hits)
}

// TestGainCacheStatsAcrossAlgorithms: the partition invariant — CELF
// hits+misses equals the scan's exact-evaluation count — must hold for the
// full algorithms too, since both modes provably make identical selections.
func TestGainCacheStatsAcrossAlgorithms(t *testing.T) {
	inst := randomInstance(rng.New(313), 250, 28, 22, 5, 1.2, 0.5)
	opts := LocalSearchOptions{Restarts: 2, Seed: 7}
	algs := []Algorithm{
		GOrderAlgorithm{},
		GGlobalAlgorithm{},
		ALSAlgorithm{Opts: opts},
		BLSAlgorithm{Opts: opts},
	}
	for _, alg := range algs {
		var scan, celf CacheStats
		withScanReference(func() { scan = alg.Solve(inst).CacheStats() })
		withCELF(func() { celf = alg.Solve(inst).CacheStats() })
		if scan.Hits != 0 {
			t.Errorf("%s: scan mode recorded %d hits", alg.Name(), scan.Hits)
		}
		if celf.Rescans != 0 {
			t.Errorf("%s: CELF mode recorded %d rescans", alg.Name(), celf.Rescans)
		}
		if celf.Hits+celf.Misses != scan.Misses {
			t.Errorf("%s: CELF hits+misses %d != scan misses %d",
				alg.Name(), celf.Hits+celf.Misses, scan.Misses)
		}
	}
}

// TestGainCacheImpressionThresholdFallback: under the k>1 impression-count
// measure gains are not submodular, so bestBillboardFor must use the scan
// (and still produce valid plans).
func TestGainCacheImpressionThresholdFallback(t *testing.T) {
	u := coverage.MustUniverse(8, []coverage.List{
		{0, 1, 2}, {0, 1, 3}, {2, 3, 4}, {5, 6, 7},
	})
	inst, err := NewInstanceWithImpressions(u, []Advertiser{{Demand: 3, Payment: 6}}, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var p *Plan
	withCELF(func() { p = GGlobal(inst) })
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.cache != nil {
		t.Fatal("gain cache built under impression threshold k=2")
	}
}
