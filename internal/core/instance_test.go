package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/coverage"
)

// disjointUniverse builds a universe where billboard i covers its own block
// of `degrees[i]` trajectories, with no overlap — the setting of the
// paper's Example 1 and the hardness reduction.
func disjointUniverse(degrees []int) *coverage.Universe {
	total := 0
	for _, d := range degrees {
		total += d
	}
	lists := make([]coverage.List, len(degrees))
	next := int32(0)
	for i, d := range degrees {
		l := make(coverage.List, d)
		for j := range l {
			l[j] = next
			next++
		}
		lists[i] = l
	}
	return coverage.MustUniverse(total, lists)
}

func TestNewInstanceValidation(t *testing.T) {
	u := disjointUniverse([]int{1})
	ok := []Advertiser{{Demand: 1, Payment: 1}}
	if _, err := NewInstance(nil, ok, 0.5); err == nil {
		t.Error("nil universe accepted")
	}
	if _, err := NewInstance(u, ok, -0.1); err == nil {
		t.Error("gamma < 0 accepted")
	}
	if _, err := NewInstance(u, ok, 1.1); err == nil {
		t.Error("gamma > 1 accepted")
	}
	if _, err := NewInstance(u, []Advertiser{{Demand: 0, Payment: 1}}, 0.5); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := NewInstance(u, []Advertiser{{Demand: 1, Payment: -1}}, 0.5); err == nil {
		t.Error("negative payment accepted")
	}
	inst, err := NewInstance(u, []Advertiser{{Demand: 5, Payment: 10}, {Demand: 3, Payment: 6}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Advertiser(0).ID != 0 || inst.Advertiser(1).ID != 1 {
		t.Error("IDs not densely reassigned")
	}
}

func TestRegretEquation1(t *testing.T) {
	u := disjointUniverse([]int{10})
	inst := MustInstance(u, []Advertiser{{Demand: 10, Payment: 100}}, 0.5)
	tests := []struct {
		achieved int
		want     float64
	}{
		{0, 100},  // nothing achieved: full payment lost (γ·0 credit)
		{5, 75},   // 100·(1 − 0.5·5/10)
		{9, 55},   // 100·(1 − 0.5·9/10)
		{10, 0},   // exactly satisfied
		{15, 50},  // 100·(15−10)/10
		{20, 100}, // 100·(20−10)/10
	}
	for _, tt := range tests {
		if got := inst.Regret(0, tt.achieved); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Regret(achieved=%d) = %v, want %v", tt.achieved, got, tt.want)
		}
	}
}

func TestRegretGammaExtremes(t *testing.T) {
	u := disjointUniverse([]int{10})
	// γ = 0: no credit at all when unsatisfied.
	inst0 := MustInstance(u, []Advertiser{{Demand: 10, Payment: 50}}, 0)
	for _, achieved := range []int{0, 5, 9} {
		if got := inst0.Regret(0, achieved); got != 50 {
			t.Errorf("γ=0 Regret(%d) = %v, want 50", achieved, got)
		}
	}
	// γ = 1: credit proportional to satisfied fraction.
	inst1 := MustInstance(u, []Advertiser{{Demand: 10, Payment: 50}}, 1)
	if got := inst1.Regret(0, 5); math.Abs(got-25) > 1e-9 {
		t.Errorf("γ=1 Regret(5) = %v, want 25", got)
	}
	if got := inst1.Regret(0, 0); got != 50 {
		t.Errorf("γ=1 Regret(0) = %v, want 50", got)
	}
}

func TestRegretNonNegativeProperty(t *testing.T) {
	u := disjointUniverse([]int{1})
	check := func(demand uint16, payment uint16, gammaQ uint8, achieved uint16) bool {
		d := int64(demand)%1000 + 1
		gamma := float64(gammaQ%101) / 100
		inst := MustInstance(u, []Advertiser{{Demand: d, Payment: float64(payment)}}, gamma)
		r := inst.Regret(0, int(achieved))
		if r < 0 {
			return false
		}
		// Zero regret iff exact satisfaction (when payment > 0, γ < 1).
		if payment > 0 && gamma < 1 && (r == 0) != (int64(achieved) == d) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDualRelationship(t *testing.T) {
	u := disjointUniverse([]int{1})
	// R + R′ = L when γ = 1, for any achieved influence (§6.3).
	inst := MustInstance(u, []Advertiser{{Demand: 20, Payment: 80}}, 1)
	for _, achieved := range []int{0, 7, 19, 20, 25, 60} {
		r := inst.Regret(0, achieved)
		rp := inst.Dual(0, achieved)
		if math.Abs(r+rp-80) > 1e-9 {
			t.Errorf("achieved=%d: R + R' = %v, want 80", achieved, r+rp)
		}
	}
	// R′ = L iff R = 0 for any γ.
	instHalf := MustInstance(u, []Advertiser{{Demand: 20, Payment: 80}}, 0.5)
	for _, achieved := range []int{0, 10, 19, 20, 21, 40} {
		r := instHalf.Regret(0, achieved)
		rp := instHalf.Dual(0, achieved)
		if (math.Abs(rp-80) < 1e-12) != (r < 1e-12) {
			t.Errorf("achieved=%d: R'=L should hold iff R=0 (R=%v, R'=%v)", achieved, r, rp)
		}
	}
}

func TestAggregates(t *testing.T) {
	u := disjointUniverse([]int{4, 6}) // supply I* = 10
	inst := MustInstance(u, []Advertiser{
		{Demand: 3, Payment: 7},
		{Demand: 5, Payment: 13},
	}, 0.5)
	if got := inst.TotalPayment(); got != 20 {
		t.Errorf("TotalPayment = %v", got)
	}
	if got := inst.TotalDemand(); got != 8 {
		t.Errorf("TotalDemand = %v", got)
	}
	if got := inst.DemandSupplyRatio(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("DemandSupplyRatio = %v, want 0.8", got)
	}
	empty := MustInstance(coverage.MustUniverse(0, nil), nil, 0.5)
	if empty.DemandSupplyRatio() != 0 {
		t.Error("empty supply ratio should be 0")
	}
}

// TestPaperExample1 reproduces Tables 1-4 of the paper: six billboards with
// influences {2, 6, 3, 7, 1, 1} over disjoint audiences, three advertisers
// (I, L) = (5, $10), (7, $11), (8, $20). Strategy 1 leaves a3 unsatisfied
// and wastes influence on a1; Strategy 2 achieves zero regret.
func TestPaperExample1(t *testing.T) {
	u := disjointUniverse([]int{2, 6, 3, 7, 1, 1})
	const gamma = 0.5
	inst := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 10},
		{Demand: 7, Payment: 11},
		{Demand: 8, Payment: 20},
	}, gamma)
	o := func(i int) int { return i - 1 } // paper's 1-based billboard names

	strategy1 := NewPlan(inst)
	strategy1.Assign(o(2), 0)             // a1 ← {o2}: I = 6 > 5
	strategy1.Assign(o(4), 1)             // a2 ← {o4}: I = 7 = 7
	for _, b := range []int{1, 3, 5, 6} { // a3 ← {o1,o3,o5,o6}: I = 7 < 8
		strategy1.Assign(o(b), 2)
	}
	if got := strategy1.Influence(0); got != 6 {
		t.Fatalf("strategy 1: I(S_1) = %d, want 6", got)
	}
	if got := strategy1.Influence(2); got != 7 {
		t.Fatalf("strategy 1: I(S_3) = %d, want 7", got)
	}
	if strategy1.Satisfied(2) {
		t.Fatal("strategy 1 should leave a3 unsatisfied")
	}
	// R = 10·(6−5)/5 + 0 + 20·(1 − 0.5·7/8) = 2 + 11.25 = 13.25.
	if got := strategy1.TotalRegret(); math.Abs(got-13.25) > 1e-9 {
		t.Fatalf("strategy 1 regret = %v, want 13.25", got)
	}
	excess, unsat := strategy1.Breakdown()
	if math.Abs(excess-2) > 1e-9 || math.Abs(unsat-11.25) > 1e-9 {
		t.Fatalf("strategy 1 breakdown = (%v, %v), want (2, 11.25)", excess, unsat)
	}

	strategy2 := NewPlan(inst)
	strategy2.Assign(o(1), 0) // a1 ← {o1, o3}: I = 5
	strategy2.Assign(o(3), 0)
	strategy2.Assign(o(4), 1)          // a2 ← {o4}: I = 7
	for _, b := range []int{2, 5, 6} { // a3 ← {o2, o5, o6}: I = 8
		strategy2.Assign(o(b), 2)
	}
	if got := strategy2.TotalRegret(); got != 0 {
		t.Fatalf("strategy 2 regret = %v, want 0", got)
	}
	if strategy2.SatisfiedCount() != 3 {
		t.Fatal("strategy 2 should satisfy all advertisers")
	}

	// The zero-regret optimum exists, so Exact must find it.
	opt, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalRegret() != 0 {
		t.Fatalf("Exact regret = %v, want 0", opt.TotalRegret())
	}
}

// TestExample2NonSubmodular replays Example 2 of §6: the regret objective is
// neither monotone nor submodular.
func TestExample2NonSubmodular(t *testing.T) {
	// Universe: 10 trajectories. S1 covers 8, S2 ⊃ S1 covers 9, o adds 1
	// to either. Advertiser: I = 10, L = 10.
	u := coverage.MustUniverse(10, []coverage.List{
		{0, 1, 2, 3, 4, 5, 6, 7}, // b0: the set S1 collapsed to one billboard
		{8},                      // b1: S2 \ S1
		{9},                      // b2: the o of the example
		{0, 1},                   // b3: a redundant billboard (for monotonicity)
	})
	const gamma = 0.5
	inst := MustInstance(u, []Advertiser{{Demand: 10, Payment: 10}}, gamma)

	r := func(achieved int) float64 { return inst.Regret(0, achieved) }
	// Submodularity would require the marginal drop of adding o to shrink
	// as the base set grows: R(S1)−R(S1∪{o}) ≥ R(S2)−R(S2∪{o}).
	dropSmall := r(8) - r(9)  // 10−8γ − (10−9γ) = γ
	dropLarge := r(9) - r(10) // 10−9γ − 0 = 10−9γ
	if !(dropSmall < dropLarge) {
		t.Fatalf("expected non-submodular gap: drop at S1 = %v, drop at S2 = %v", dropSmall, dropLarge)
	}
	// Monotonicity fails too: past satisfaction, adding influence raises R.
	if !(r(11) > r(10)) {
		t.Fatal("expected regret to rise after over-satisfaction")
	}
}

func TestImpressionThresholdInstance(t *testing.T) {
	// Two billboards over the same three trajectories plus one unique
	// each; with k=2 only the shared trajectories count.
	u := coverage.MustUniverse(5, []coverage.List{
		{0, 1, 2, 3},
		{0, 1, 2, 4},
	})
	inst, err := NewInstanceWithImpressions(u, []Advertiser{{Demand: 3, Payment: 6}}, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Impressions() != 2 {
		t.Fatalf("Impressions = %d", inst.Impressions())
	}
	p := NewPlan(inst)
	p.Assign(0, 0)
	if p.Influence(0) != 0 {
		t.Fatalf("one billboard at k=2: influence = %d, want 0", p.Influence(0))
	}
	p.Assign(1, 0)
	if p.Influence(0) != 3 { // trajectories 0,1,2 meet both billboards
		t.Fatalf("influence = %d, want 3", p.Influence(0))
	}
	if p.TotalRegret() != 0 {
		t.Fatalf("regret = %v, want 0 (demand exactly met)", p.TotalRegret())
	}
	// k=1 over the same plan would see influence 5 and positive regret.
	inst1 := MustInstance(u, []Advertiser{{Demand: 3, Payment: 6}}, 0.5)
	p1 := NewPlan(inst1)
	p1.Assign(0, 0)
	p1.Assign(1, 0)
	if p1.Influence(0) != 5 {
		t.Fatalf("k=1 influence = %d, want 5", p1.Influence(0))
	}
	if p1.TotalRegret() <= 0 {
		t.Fatal("k=1 should over-satisfy and incur excess regret")
	}
}

func TestNewInstanceWithImpressionsValidation(t *testing.T) {
	u := disjointUniverse([]int{1})
	if _, err := NewInstanceWithImpressions(u, []Advertiser{{Demand: 1, Payment: 1}}, 0.5, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestAlgorithmsUnderImpressionMeasure(t *testing.T) {
	// The solvers must work unchanged under k=2: build a universe where
	// pairs of billboards overlap heavily, so double-impression coverage
	// is attainable.
	u := coverage.MustUniverse(12, []coverage.List{
		{0, 1, 2, 3},
		{0, 1, 2, 4},
		{5, 6, 7, 8},
		{5, 6, 7, 9},
		{10, 11},
	})
	inst, err := NewInstanceWithImpressions(u, []Advertiser{
		{Demand: 3, Payment: 9},
		{Demand: 3, Payment: 9},
	}, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range PaperAlgorithms(3, 3) {
		p := alg.Solve(inst)
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
	p := BLSAlgorithm{Opts: LocalSearchOptions{Restarts: 3, Seed: 1}}.Solve(inst)
	if p.TotalRegret() != 0 {
		t.Fatalf("BLS regret under k=2 = %v, want 0 (perfect pairing exists)", p.TotalRegret())
	}
}
