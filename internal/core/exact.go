package core

import "fmt"

// ExactMaxBillboards bounds the instance size Exact will attempt: the
// search space is (|A|+1)^|U|, so anything beyond small sanity instances is
// intractable (MROAM is NP-hard, §4).
const ExactMaxBillboards = 16

// Exact finds a minimum-regret deployment by exhaustive search, assigning
// each billboard to one of the |A|+1 choices (an advertiser or unassigned).
// It exists as a test oracle and for the empirical approximation-gap study;
// it returns an error for instances with more than ExactMaxBillboards
// billboards or when the search space exceeds ~100M states.
func Exact(inst *Instance) (*Plan, error) {
	nB := inst.Universe().NumBillboards()
	nA := inst.NumAdvertisers()
	if nB > ExactMaxBillboards {
		return nil, fmt.Errorf("core: Exact limited to %d billboards, got %d", ExactMaxBillboards, nB)
	}
	states := 1.0
	for i := 0; i < nB; i++ {
		states *= float64(nA + 1)
		if states > 1e8 {
			return nil, fmt.Errorf("core: Exact search space too large: (|A|+1)^|U| = (%d)^%d", nA+1, nB)
		}
	}
	cur := NewPlan(inst)
	best := cur.Clone()
	exactRec(cur, 0, &best)
	return best, nil
}

// exactRec enumerates assignments of billboards [b, nB) given the partial
// plan cur, updating *best whenever a complete assignment improves on it.
func exactRec(cur *Plan, b int, best **Plan) {
	nB := cur.inst.Universe().NumBillboards()
	if b == nB {
		if cur.TotalRegret() < (*best).TotalRegret() {
			*best = cur.Clone()
		}
		return
	}
	// Choice: leave b unassigned.
	exactRec(cur, b+1, best)
	// Choice: give b to each advertiser in turn.
	for i := 0; i < cur.inst.NumAdvertisers(); i++ {
		cur.Assign(b, i)
		exactRec(cur, b+1, best)
		cur.Release(b)
	}
}
