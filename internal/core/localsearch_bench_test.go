package core

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// benchProtoPlan builds a seeded, greedily completed baseline plan — the
// state BLS starts from inside the randomized framework.
func benchProtoPlan(inst *Instance) *Plan {
	p := NewPlan(inst)
	seedRandomPlan(p, rng.New(5))
	SynchronousGreedy(p)
	return p
}

// BenchmarkBillboardLocalSearch measures one full BLS improvement of a
// seeded baseline. The allocation count is the headline: the sweep reuses
// its member/free-list buffers and one scratch trial plan, so allocs/op
// stays flat in the number of passes and moves.
func BenchmarkBillboardLocalSearch(b *testing.B) {
	inst := randomInstance(rng.New(9), 2000, 120, 60, 8, 1.2, 0.5)
	proto := benchProtoPlan(inst)
	scratch := proto.Clone()
	opts := LocalSearchOptions{Search: BillboardDriven}.withDefaults()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(proto)
		BillboardLocalSearch(scratch, opts)
	}
}

// BenchmarkSynchronousGreedySelection compares the lazy-greedy (CELF) gain
// cache against the reference full scan on the same workload, reporting
// the marginal-evaluation count per run. The instance is sized so marginal
// evaluations dominate (high-degree billboards): that is the regime the
// cache targets — on tiny instances heap upkeep can cost more than the
// cheap evaluations it skips.
func BenchmarkSynchronousGreedySelection(b *testing.B) {
	inst := randomInstance(rng.New(9), 20000, 600, 400, 40, 1.2, 0.5)
	for _, mode := range []struct {
		name string
		celf celfModeKind
	}{{"celf", celfForceOn}, {"scan", celfForceOff}} {
		b.Run(mode.name, func(b *testing.B) {
			defer func(prev celfModeKind) { celfMode = prev }(celfMode)
			celfMode = mode.celf
			var evals int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evals = GGlobal(inst).Evals()
			}
			b.ReportMetric(float64(evals), "evals")
		})
	}
}

// BenchmarkRandomizedLocalSearchWorkers exercises the parallel restart
// engine at several worker counts (results are bit-identical across them;
// only wall-clock changes, and only on multi-core hosts).
func BenchmarkRandomizedLocalSearchWorkers(b *testing.B) {
	inst := randomInstance(rng.New(9), 2000, 120, 60, 8, 1.2, 0.5)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var regret float64
			for i := 0; i < b.N; i++ {
				p := RandomizedLocalSearch(inst, LocalSearchOptions{
					Search: BillboardDriven, Restarts: 8, Seed: 5, Workers: workers,
				})
				regret = p.TotalRegret()
			}
			b.ReportMetric(regret, "regret")
		})
	}
}
