package core

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// TestExample3BLSBeatsALS reproduces Example 3 of §6.2: exchanging whole
// advertiser sets (ALS) cannot improve the plan, but exchanging two
// billboards (BLS) reaches zero regret.
func TestExample3BLSBeatsALS(t *testing.T) {
	// x = 5. Trajectories t1..t6 (IDs 0..5).
	// o1 covers {t1..t4}, o2 covers {t1..t3, t5}, o3 covers {t5, t6}.
	u := coverage.MustUniverse(6, []coverage.List{
		{0, 1, 2, 3},
		{0, 1, 2, 4},
		{4, 5},
	})
	const gamma = 0.5
	inst := MustInstance(u, []Advertiser{
		{Demand: 5, Payment: 5}, // a1: I = x, L = x
		{Demand: 4, Payment: 4}, // a2: I = x−1, L = x−1
	}, gamma)

	build := func() *Plan {
		p := NewPlan(inst)
		p.Assign(0, 0) // S_1 = {o1, o2}: I = 5, satisfied exactly
		p.Assign(1, 0)
		p.Assign(2, 1) // S_2 = {o3}: I = 2 < 4
		return p
	}

	// Baseline: R = 0 + 4·(1 − 0.5·2/4) = 3.
	p := build()
	if got := p.TotalRegret(); got != 3 {
		t.Fatalf("baseline regret = %v, want 3", got)
	}

	// ALS: exchanging S_1 and S_2 gives R = 5·(1−0.5·2/5) + 4·(5−4)/4 = 5,
	// worse, so ALS accepts nothing and the regret stays at 3.
	alsPlan := build()
	if n := AdvertiserLocalSearch(alsPlan, 10); n != 0 {
		t.Fatalf("ALS made %d exchanges, want 0", n)
	}
	if alsPlan.TotalRegret() != 3 {
		t.Fatalf("ALS regret = %v, want 3", alsPlan.TotalRegret())
	}

	// BLS: exchanging o1 ↔ o3 yields S_1 = {o2, o3} (I = 5) and
	// S_2 = {o1} (I = 4), total regret 0.
	blsPlan := build()
	BillboardLocalSearch(blsPlan, LocalSearchOptions{})
	if err := blsPlan.Validate(); err != nil {
		t.Fatal(err)
	}
	if blsPlan.TotalRegret() != 0 {
		t.Fatalf("BLS regret = %v, want 0", blsPlan.TotalRegret())
	}
}

func TestAdvertiserLocalSearchFindsGoodPairing(t *testing.T) {
	// Two sets already formed but mismatched to demands; exchanging the
	// whole sets fixes both advertisers.
	u := coverage.MustUniverse(9, []coverage.List{
		{0, 1, 2, 3, 4, 5}, // influence 6
		{6, 7, 8},          // influence 3
	})
	inst := MustInstance(u, []Advertiser{
		{Demand: 3, Payment: 9},
		{Demand: 6, Payment: 12},
	}, 0.5)
	p := NewPlan(inst)
	p.Assign(0, 0) // a1 gets influence 6 (wants 3) — over-satisfied
	p.Assign(1, 1) // a2 gets influence 3 (wants 6) — unsatisfied
	if p.TotalRegret() == 0 {
		t.Fatal("test setup should start with positive regret")
	}
	n := AdvertiserLocalSearch(p, 10)
	if n != 1 {
		t.Fatalf("ALS exchanges = %d, want 1", n)
	}
	if p.TotalRegret() != 0 {
		t.Fatalf("ALS regret = %v, want 0", p.TotalRegret())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBLSReleaseMove(t *testing.T) {
	// A single advertiser holding a redundant billboard whose removal
	// reduces the excessive influence.
	u := coverage.MustUniverse(8, []coverage.List{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
	})
	inst := MustInstance(u, []Advertiser{{Demand: 4, Payment: 8}}, 0.5)
	p := NewPlan(inst)
	p.Assign(0, 0)
	p.Assign(1, 0) // influence 8 vs demand 4: regret 8
	BillboardLocalSearch(p, LocalSearchOptions{})
	if p.TotalRegret() != 0 {
		t.Fatalf("BLS regret = %v, want 0 (release move)", p.TotalRegret())
	}
	if p.SetSize(0) != 1 {
		t.Fatalf("BLS kept %d billboards, want 1", p.SetSize(0))
	}
}

func TestBLSReplaceMove(t *testing.T) {
	// The assigned billboard overshoots; an unassigned one fits exactly.
	u := coverage.MustUniverse(9, []coverage.List{
		{0, 1, 2, 3, 4, 5}, // assigned: influence 6
		{6, 7, 8},          // free: influence 3 — exact fit
	})
	inst := MustInstance(u, []Advertiser{{Demand: 3, Payment: 6}}, 0.5)
	p := NewPlan(inst)
	p.Assign(0, 0)
	BillboardLocalSearch(p, LocalSearchOptions{})
	if p.TotalRegret() != 0 {
		t.Fatalf("BLS regret = %v, want 0 (replace move)", p.TotalRegret())
	}
	if p.Owner(1) != 0 || p.Owner(0) != Unassigned {
		t.Fatal("replace move not applied")
	}
}

func TestBLSAllocateMove(t *testing.T) {
	// Unassigned billboards that the greedy can use to satisfy a demand
	// (move 4: re-run synchronous greedy on the remainder).
	u := coverage.MustUniverse(6, []coverage.List{
		{0, 1, 2},
		{3, 4, 5},
	})
	inst := MustInstance(u, []Advertiser{{Demand: 6, Payment: 12}}, 0.5)
	p := NewPlan(inst)
	p.Assign(0, 0) // influence 3 < 6; b1 free
	BillboardLocalSearch(p, LocalSearchOptions{})
	if p.TotalRegret() != 0 {
		t.Fatalf("BLS regret = %v, want 0 (allocate move)", p.TotalRegret())
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		inst := randomInstance(r, 300, 25, 30, 4, 1.0, 0.5)
		for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
			p := GGlobal(inst)
			before := p.TotalRegret()
			localSearchDone(nil, p, LocalSearchOptions{Search: kind}.withDefaults(), nil)
			if p.TotalRegret() > before+1e-9 {
				t.Fatalf("trial %d: %v worsened regret %v → %v", trial, kind, before, p.TotalRegret())
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d %v: %v", trial, kind, err)
			}
		}
	}
}

func TestRandomizedLocalSearchAtLeastAsGoodAsGGlobal(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 5; trial++ {
		inst := randomInstance(r, 250, 20, 25, 4, 1.1, 0.5)
		base := GGlobal(inst).TotalRegret()
		for _, kind := range []SearchKind{AdvertiserDriven, BillboardDriven} {
			p := RandomizedLocalSearch(inst, LocalSearchOptions{
				Search:   kind,
				Restarts: 3,
				Seed:     uint64(trial),
			})
			if p.TotalRegret() > base+1e-9 {
				t.Fatalf("trial %d: RLS(%v) regret %v > G-Global %v", trial, kind, p.TotalRegret(), base)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRandomizedLocalSearchDeterministicForSeed(t *testing.T) {
	r := rng.New(303)
	inst := randomInstance(r, 200, 15, 20, 3, 0.9, 0.5)
	opts := LocalSearchOptions{Search: BillboardDriven, Restarts: 3, Seed: 42}
	a := RandomizedLocalSearch(inst, opts)
	b := RandomizedLocalSearch(inst, opts)
	if a.TotalRegret() != b.TotalRegret() {
		t.Fatalf("same seed gave different regrets: %v vs %v", a.TotalRegret(), b.TotalRegret())
	}
	for i := 0; i < inst.NumAdvertisers(); i++ {
		sa, sb := a.Set(i, nil), b.Set(i, nil)
		if len(sa) != len(sb) {
			t.Fatalf("same seed gave different plans for advertiser %d", i)
		}
		for k := range sa {
			if sa[k] != sb[k] {
				t.Fatalf("same seed gave different plans for advertiser %d", i)
			}
		}
	}
}

func TestSeedRandomPlanWithFewBillboards(t *testing.T) {
	u := coverage.MustUniverse(4, []coverage.List{{0}, {1}})
	inst := MustInstance(u, []Advertiser{
		{Demand: 1, Payment: 1},
		{Demand: 1, Payment: 1},
		{Demand: 1, Payment: 1},
	}, 0.5)
	p := NewPlan(inst)
	seedRandomPlan(p, rng.New(1))
	assigned := 0
	for i := 0; i < 3; i++ {
		assigned += p.SetSize(i)
	}
	if assigned != 2 {
		t.Fatalf("seeded %d billboards, want 2 (pool size)", assigned)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBLSImprovementRatioLimitsMoves(t *testing.T) {
	// With a huge improvement threshold no move can qualify.
	u := coverage.MustUniverse(8, []coverage.List{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
	})
	inst := MustInstance(u, []Advertiser{{Demand: 4, Payment: 8}}, 0.5)
	p := NewPlan(inst)
	p.Assign(0, 0)
	p.Assign(1, 0)
	before := p.TotalRegret()
	n := BillboardLocalSearch(p, LocalSearchOptions{ImprovementRatio: 100})
	if n != 0 || p.TotalRegret() != before {
		t.Fatalf("threshold ignored: %d moves, regret %v → %v", n, before, p.TotalRegret())
	}
}

func TestSearchKindString(t *testing.T) {
	if AdvertiserDriven.String() != "ALS" || BillboardDriven.String() != "BLS" {
		t.Error("SearchKind strings wrong")
	}
	if SearchKind(9).String() == "" {
		t.Error("unknown SearchKind should stringify")
	}
}

func TestLocalSearchUnknownKindPanics(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown search kind did not panic")
		}
	}()
	localSearchDone(nil, p, LocalSearchOptions{Search: SearchKind(9)}.withDefaults(), nil)
}

// TestBLSApproximateLocalMaximum verifies the structural property behind
// Theorem 2: at a BLS fixed point (r = 0), no single release or single
// unassigned-billboard addition... additions are handled through the greedy
// allocate move, so we check the release direction of Definition 6.1: for
// every assigned billboard o, releasing o does not reduce the regret (i.e.
// does not increase the dual beyond the threshold).
func TestBLSApproximateLocalMaximum(t *testing.T) {
	r := rng.New(2024)
	inst := randomInstance(r, 300, 20, 30, 3, 1.0, 0.5)
	p := GGlobal(inst)
	BillboardLocalSearch(p, LocalSearchOptions{})
	for i := 0; i < inst.NumAdvertisers(); i++ {
		for _, b := range p.Set(i, nil) {
			loss := p.LossOf(i, b)
			after := inst.Regret(i, p.Influence(i)-loss)
			if after < p.Regret(i)-1e-6 {
				t.Fatalf("BLS fixed point violated: releasing %d from %d improves %v → %v",
					b, i, p.Regret(i), after)
			}
		}
	}
}
