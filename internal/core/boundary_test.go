package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObjectiveStaysBehindModelSeam walks every Go file outside
// internal/core and fails on direct calls to the Instance-level objective —
// the two-argument Regret/Satisfied/Dual forms. Outside callers must go
// through Plan (whose one-argument accessors are the supported read API) or
// the Model interface (whose three-argument forms name the variant
// explicitly); a direct Instance call would silently bypass whichever model
// the instance carries the moment someone copies it into variant-unaware
// code. The check is textual on purpose: it covers examples, commands and
// tests that a type-based audit inside this package could not see.
func TestObjectiveStaysBehindModelSeam(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	coreDir := filepath.Join(root, "internal", "core")

	var violations []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch {
			case path == coreDir, d.Name() == ".git", d.Name() == "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				continue
			}
			for _, meth := range []string{".Regret(", ".Satisfied(", ".Dual("} {
				for col := 0; ; {
					j := strings.Index(line[col:], meth)
					if j < 0 {
						break
					}
					col += j + len(meth)
					if argCount(line[col:]) == 2 {
						violations = append(violations,
							fmt.Sprintf("%s:%d: %s", rel, i+1, strings.TrimSpace(line)))
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Errorf("direct Instance.Regret/Satisfied/Dual calls outside internal/core "+
			"(route them through Plan or the Model interface):\n  %s",
			strings.Join(violations, "\n  "))
	}
}

// argCount counts the top-level comma-separated arguments of a call whose
// opening parenthesis has just been consumed, returning -1 if the call does
// not close on this line (multi-line calls to these short accessors do not
// occur; a miss here fails loudly in review, not silently).
func argCount(rest string) int {
	depth, args := 0, 1
	for _, r := range rest {
		switch r {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			if r == ')' && depth == 0 {
				return args
			}
			depth--
		case ',':
			if depth == 0 {
				args++
			}
		}
	}
	return -1
}

// TestBoundaryGateCatchesViolations pins the gate's own detector: the exact
// call shapes it must flag and the Plan/Model shapes it must allow.
func TestBoundaryGateCatchesViolations(t *testing.T) {
	cases := []struct {
		rest string // text after the matched ".Regret(" etc.
		want int
	}{
		{"0, 5)", 2},                 // Instance form: flag
		{"i, plan.Influence(i))", 2}, // Instance form, nested call: flag
		{"i)", 1},                    // Plan form: allow
		{"inst, 0, 5)", 3},           // Model form: allow
		{"in, i, achieved)", 3},      // Model form: allow
		{"ctx,", -1},                 // spills to next line: surfaced as -1
		{"f(a, b), g(c, d))", 2},     // two nested two-arg calls
	}
	for _, c := range cases {
		if got := argCount(c.rest); got != c.want {
			t.Errorf("argCount(%q) = %d, want %d", c.rest, got, c.want)
		}
	}
}
