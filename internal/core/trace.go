package core

import "time"

// This file defines the solver probe interface: a Tracer receives progress
// events from the randomized local search framework (restart lifecycle,
// best-regret improvements, eval-count and gain-cache counter deltas) so
// that serving layers can meter solves and the CLI can record the paper's
// regret-vs-time convergence trajectories.
//
// Tracing is strictly observational. Every hook site is nil-checked, the
// solvers never read anything back from the tracer, and all wall-clock
// reads happen only when a tracer is attached — with Tracer == nil the
// solve path executes exactly the instructions it executed before the
// probes existed, so results stay bit-identical and the disabled path pays
// nothing (see TestTracerDoesNotPerturbResults).

// Tracer receives solver progress events. When the restart loop runs on
// multiple workers (LocalSearchOptions.Workers > 1) the callbacks are
// invoked concurrently from the worker goroutines; implementations must be
// safe for concurrent use. Improved calls are serialized by the engine and
// arrive in strictly decreasing regret order.
//
// Slot numbering follows the restart schedule of Algorithm 3: slot 0 is
// the greedy-initialized descent, slots 1..Restarts are the randomized
// restart iterations.
type Tracer interface {
	// RestartStart fires when a worker begins executing slot's descent,
	// with the wall-clock time elapsed since the solve started.
	RestartStart(slot int, elapsed time.Duration)
	// RestartDone fires when slot's descent converges, with the slot's
	// local-optimum regret, the marginal evaluations it spent, and the
	// wall-clock time elapsed since the solve started.
	RestartDone(slot int, regret float64, evals int64, elapsed time.Duration)
	// Improved fires when a completed slot's regret beats every slot
	// completed before it (wall-clock order). The first completed slot
	// always fires it, so a traced solve emits at least one improvement;
	// successive calls carry strictly decreasing regrets and
	// non-decreasing elapsed times. Under truncation the deterministic
	// prefix reduction may discard an out-of-order slot, so the final
	// Anytime regret can exceed the last Improved regret; with no
	// truncation they agree.
	Improved(slot int, regret float64, elapsed time.Duration)
	// Evals reports the marginal-evaluation delta of a finished (or
	// abandoned) slot. Deltas sum to the Anytime.Evals work measure.
	Evals(delta int64)
	// Cache reports the gain-cache counter delta of a finished (or
	// abandoned) slot.
	Cache(delta CacheStats)
}

// TracerFuncs adapts a set of optional callbacks to the Tracer interface;
// nil fields are no-ops. The zero value is a valid tracer that ignores
// everything.
type TracerFuncs struct {
	OnRestartStart func(slot int, elapsed time.Duration)
	OnRestartDone  func(slot int, regret float64, evals int64, elapsed time.Duration)
	OnImproved     func(slot int, regret float64, elapsed time.Duration)
	OnEvals        func(delta int64)
	OnCache        func(delta CacheStats)
}

// RestartStart implements Tracer.
func (t TracerFuncs) RestartStart(slot int, elapsed time.Duration) {
	if t.OnRestartStart != nil {
		t.OnRestartStart(slot, elapsed)
	}
}

// RestartDone implements Tracer.
func (t TracerFuncs) RestartDone(slot int, regret float64, evals int64, elapsed time.Duration) {
	if t.OnRestartDone != nil {
		t.OnRestartDone(slot, regret, evals, elapsed)
	}
}

// Improved implements Tracer.
func (t TracerFuncs) Improved(slot int, regret float64, elapsed time.Duration) {
	if t.OnImproved != nil {
		t.OnImproved(slot, regret, elapsed)
	}
}

// Evals implements Tracer.
func (t TracerFuncs) Evals(delta int64) {
	if t.OnEvals != nil {
		t.OnEvals(delta)
	}
}

// Cache implements Tracer.
func (t TracerFuncs) Cache(delta CacheStats) {
	if t.OnCache != nil {
		t.OnCache(delta)
	}
}
