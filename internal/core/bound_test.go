package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestLowerBoundVacuousWhenSupplyAmple(t *testing.T) {
	u := disjointUniverse([]int{10, 10, 10})
	inst := MustInstance(u, []Advertiser{{Demand: 5, Payment: 10}}, 0.5)
	if got := LowerBound(inst); got != 0 {
		t.Fatalf("LowerBound = %v, want 0 (ample supply)", got)
	}
}

func TestLowerBoundTightOnDisjointShortage(t *testing.T) {
	// Supply 10, two advertisers each demanding 10 at L = 10. Envelope:
	// fill one fully (drop 10), nothing left; bound = 20 − 10 = 10.
	u := disjointUniverse([]int{5, 5})
	inst := MustInstance(u, []Advertiser{
		{Demand: 10, Payment: 10},
		{Demand: 10, Payment: 10},
	}, 0)
	if got := LowerBound(inst); math.Abs(got-10) > 1e-9 {
		t.Fatalf("LowerBound = %v, want 10", got)
	}
	// The true γ=0 optimum: one advertiser satisfied exactly (both
	// billboards), the other gets nothing → regret 10. Bound is tight.
	opt, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalRegret() != 10 {
		t.Fatalf("optimum = %v, want 10", opt.TotalRegret())
	}
}

func TestLowerBoundTrajectoryCap(t *testing.T) {
	// One billboard covering all 5 trajectories, demand 20: even
	// fractionally at most 5 of 20 units are attainable (x ≤ |T|), so
	// env = 10·(1 − 5/20) = 7.5.
	u := disjointUniverse([]int{5})
	inst := MustInstance(u, []Advertiser{{Demand: 20, Payment: 10}}, 1)
	if got := LowerBound(inst); math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("LowerBound = %v, want 7.5", got)
	}
}

// TestLowerBoundNeverExceedsOptimum is the soundness property: on random
// exact-solvable instances, LowerBound ≤ optimal regret for every γ.
func TestLowerBoundNeverExceedsOptimum(t *testing.T) {
	r := rng.New(606)
	for trial := 0; trial < 15; trial++ {
		for _, gamma := range []float64{0, 0.5, 1} {
			inst := randomInstance(r, 60, 7, 12, 2, 1.2, gamma)
			lb := LowerBound(inst)
			opt, err := Exact(inst)
			if err != nil {
				t.Fatal(err)
			}
			if lb > opt.TotalRegret()+1e-9 {
				t.Fatalf("trial %d γ=%v: LowerBound %v exceeds optimum %v",
					trial, gamma, lb, opt.TotalRegret())
			}
		}
	}
}

// TestLowerBoundGreedyKnapsackTrap replays the configuration where a
// naive whole-demand greedy would over-bound: supply 10 with demands
// (6, L=9), (5, L=6), (5, L=6) at γ=0. The true optimum satisfies the two
// 5-demands (regret 9); the envelope bound must stay below it.
func TestLowerBoundGreedyKnapsackTrap(t *testing.T) {
	u := disjointUniverse([]int{5, 5})
	inst := MustInstance(u, []Advertiser{
		{Demand: 6, Payment: 9},
		{Demand: 5, Payment: 6},
		{Demand: 5, Payment: 6},
	}, 0)
	lb := LowerBound(inst)
	opt, err := Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalRegret() != 9 {
		t.Fatalf("optimum = %v, want 9 (satisfy both 5-demands)", opt.TotalRegret())
	}
	if lb > 9+1e-9 {
		t.Fatalf("LowerBound %v exceeds optimum 9", lb)
	}
}

func TestLowerBoundZeroAdvertisers(t *testing.T) {
	u := disjointUniverse([]int{3})
	inst := MustInstance(u, nil, 0.5)
	if got := LowerBound(inst); got != 0 {
		t.Fatalf("LowerBound = %v, want 0", got)
	}
}
