package core

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

func smallInstance() *Instance {
	u := coverage.MustUniverse(12, []coverage.List{
		{0, 1, 2},
		{2, 3, 4},
		{5, 6},
		{7, 8, 9, 10},
		{10, 11},
	})
	return MustInstance(u, []Advertiser{
		{Demand: 4, Payment: 10},
		{Demand: 3, Payment: 6},
	}, 0.5)
}

func TestPlanAssignReleaseLifecycle(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	if p.TotalRegret() != 16 { // both fully unsatisfied at 0 achieved
		t.Fatalf("empty plan regret = %v, want 16", p.TotalRegret())
	}
	p.Assign(0, 0)
	p.Assign(1, 0) // overlap at trajectory 2: influence 5
	if got := p.Influence(0); got != 5 {
		t.Fatalf("Influence = %d, want 5", got)
	}
	if !p.Satisfied(0) || p.Satisfied(1) {
		t.Fatal("satisfaction wrong")
	}
	// R(S_0) = 10·(5−4)/4 = 2.5; R(S_1) = 6 (empty).
	if got := p.TotalRegret(); math.Abs(got-8.5) > 1e-9 {
		t.Fatalf("regret = %v, want 8.5", got)
	}
	if got := p.Owner(0); got != 0 {
		t.Fatalf("Owner(0) = %d", got)
	}
	if got := p.Owner(4); got != Unassigned {
		t.Fatalf("Owner(4) = %d, want Unassigned", got)
	}
	p.Release(1)
	if got := p.Influence(0); got != 3 {
		t.Fatalf("after release: Influence = %d, want 3", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanPanics(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0)
	p.Assign(1, 1)
	for name, f := range map[string]func(){
		"double assign":       func() { p.Assign(0, 1) },
		"release unowned":     func() { p.Release(3) },
		"exchange same owner": func() { p2 := p.Clone(); p2.Assign(2, 0); p2.ExchangeBillboards(0, 2) },
		"exchange unowned":    func() { p.ExchangeBillboards(0, 3) },
		"replace unowned out": func() { p.Replace(3, 4) },
		"replace owned in":    func() { p.Replace(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExchangeSets(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0) // S_0 = {b0}: influence 3
	p.Assign(3, 1) // S_1 = {b3}: influence 4
	i0, i1 := p.Influence(0), p.Influence(1)
	p.ExchangeSets(0, 1)
	if p.Influence(0) != i1 || p.Influence(1) != i0 {
		t.Fatal("influences did not travel with sets")
	}
	if p.Owner(0) != 1 || p.Owner(3) != 0 {
		t.Fatal("owner table not updated by exchange")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Self-exchange is a no-op.
	before := p.TotalRegret()
	p.ExchangeSets(1, 1)
	if p.TotalRegret() != before {
		t.Fatal("self-exchange changed regret")
	}
}

func TestExchangeBillboardsAndReplace(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0)
	p.Assign(2, 1)
	p.ExchangeBillboards(0, 2)
	if p.Owner(0) != 1 || p.Owner(2) != 0 {
		t.Fatal("exchange did not swap owners")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Replace(2, 3)
	if p.Owner(2) != Unassigned || p.Owner(3) != 0 {
		t.Fatal("replace did not move ownership")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAll(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0)
	p.Assign(1, 0)
	p.Assign(2, 1)
	if got := p.ReleaseAll(0); got != 2 {
		t.Fatalf("ReleaseAll = %d, want 2", got)
	}
	if p.SetSize(0) != 0 || p.Influence(0) != 0 {
		t.Fatal("set 0 not emptied")
	}
	if p.SetSize(1) != 1 {
		t.Fatal("set 1 affected by ReleaseAll(0)")
	}
	free := p.UnassignedBillboards(nil)
	if len(free) != 4 {
		t.Fatalf("unassigned = %v, want 4 entries", free)
	}
}

func TestCloneAndCopyFromIndependence(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0)
	c := p.Clone()
	c.Assign(2, 1)
	if p.Owner(2) != Unassigned {
		t.Fatal("clone mutation leaked to original")
	}
	if c.Influence(1) != 2 || p.Influence(1) != 0 {
		t.Fatal("clone counters not independent")
	}
	fresh := NewPlan(inst)
	fresh.CopyFrom(c)
	if fresh.Influence(1) != 2 || fresh.Owner(0) != 0 {
		t.Fatal("CopyFrom missed state")
	}
	fresh.Release(0)
	if c.Owner(0) != 0 {
		t.Fatal("CopyFrom shares counter state")
	}
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFromCrossInstancePanics(t *testing.T) {
	a, b := smallInstance(), smallInstance()
	pa, pb := NewPlan(a), NewPlan(b)
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across instances did not panic")
		}
	}()
	pa.CopyFrom(pb)
}

func TestGainLossSwapDeltaThroughPlan(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0)                   // covers {0,1,2}
	if g := p.GainOf(0, 1); g != 2 { // b1 covers {2,3,4}, adds {3,4}
		t.Fatalf("GainOf = %d, want 2", g)
	}
	if l := p.LossOf(0, 0); l != 3 {
		t.Fatalf("LossOf = %d, want 3", l)
	}
	if d := p.SwapDeltaOf(0, 0, 3); d != 1 { // {0,1,2} → {7,8,9,10}
		t.Fatalf("SwapDeltaOf = %d, want 1", d)
	}
	if p.Evals() < 3 {
		t.Fatal("evaluation counter not advancing")
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	r := rng.New(17)
	inst := smallInstance()
	p := NewPlan(inst)
	for step := 0; step < 100; step++ {
		b := r.Intn(inst.Universe().NumBillboards())
		if p.Owner(b) == Unassigned {
			p.Assign(b, r.Intn(inst.NumAdvertisers()))
		} else {
			p.Release(b)
		}
		excess, unsat := p.Breakdown()
		if math.Abs(excess+unsat-p.TotalRegret()) > 1e-9 {
			t.Fatalf("breakdown %v + %v != total %v", excess, unsat, p.TotalRegret())
		}
		if excess < 0 || unsat < 0 {
			t.Fatal("negative breakdown component")
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	inst := smallInstance()
	p := NewPlan(inst)
	p.Assign(0, 0)
	p.owner[0] = 1 // corrupt: counter 0 has b0 but owner table says 1
	if err := p.Validate(); err == nil {
		t.Fatal("Validate missed owner/counter mismatch")
	}
	p.owner[0] = 0
	p.regrets[0] = 12345
	if err := p.Validate(); err == nil {
		t.Fatal("Validate missed stale regret cache")
	}
	p.refreshRegret(0)
	p.owner[1] = 7 // invalid advertiser index
	if err := p.Validate(); err == nil {
		t.Fatal("Validate missed invalid owner")
	}
}

func TestPlanRandomOpsKeepInvariants(t *testing.T) {
	r := rng.New(99)
	u := coverage.MustUniverse(50, func() []coverage.List {
		lists := make([]coverage.List, 20)
		for i := range lists {
			ids := make([]int32, r.Intn(10))
			for j := range ids {
				ids[j] = int32(r.Intn(50))
			}
			lists[i] = coverage.NewList(ids)
		}
		return lists
	}())
	inst := MustInstance(u, []Advertiser{
		{Demand: 10, Payment: 20},
		{Demand: 15, Payment: 25},
		{Demand: 8, Payment: 5},
	}, 0.25)
	p := NewPlan(inst)
	for step := 0; step < 500; step++ {
		b := r.Intn(u.NumBillboards())
		switch {
		case p.Owner(b) == Unassigned:
			p.Assign(b, r.Intn(3))
		case r.Float64() < 0.5:
			p.Release(b)
		default:
			free := p.UnassignedBillboards(nil)
			if len(free) > 0 {
				p.Replace(b, free[r.Intn(len(free))])
			}
		}
		if step%50 == 0 {
			if err := p.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
