package core

import (
	"fmt"

	"repro/internal/coverage"
)

// Unassigned is the owner value of a billboard not assigned to any
// advertiser.
const Unassigned = -1

// Plan is a mutable deployment strategy S = {S_1, ..., S_|A|}: a partial
// assignment of billboards to advertisers respecting the disjointness
// constraint S_i ∩ S_j = ∅ (each billboard has at most one owner).
//
// The plan maintains, per advertiser, an incremental coverage counter so
// that influence and regret are always available in O(1) and every
// mutation costs O(deg) in the size of the affected coverage lists. It also
// counts marginal-influence evaluations (evals) as the work measure
// reported by the efficiency study.
type Plan struct {
	inst     *Instance
	counters []*coverage.Counter // one per advertiser
	regrets  []float64           // cached R(S_i)
	owner    []int               // billboard -> advertiser index or Unassigned
	evals    int64               // marginal-evaluation counter (work measure)
	cache    *gainCache          // lazy-greedy selection state (gaincache.go)
	stats    CacheStats          // selection-engine effectiveness counters
	eligible int                 // unassigned billboards with non-zero degree
}

// NewPlan returns the empty plan (every billboard unassigned) for the
// instance.
func NewPlan(inst *Instance) *Plan {
	n := inst.NumAdvertisers()
	p := &Plan{
		inst:     inst,
		counters: make([]*coverage.Counter, n),
		regrets:  make([]float64, n),
		owner:    make([]int, inst.Universe().NumBillboards()),
	}
	for i := range p.counters {
		p.counters[i] = coverage.NewCounterWithThreshold(inst.Universe(), inst.Impressions())
		p.regrets[i] = inst.Regret(i, 0)
	}
	u := inst.Universe()
	for b := range p.owner {
		p.owner[b] = Unassigned
		if u.Degree(b) > 0 {
			p.eligible++
		}
	}
	return p
}

// Instance returns the instance this plan deploys.
func (p *Plan) Instance() *Instance { return p.inst }

// Owner returns the advertiser owning billboard b, or Unassigned.
func (p *Plan) Owner(b int) int { return p.owner[b] }

// Influence returns I(S_i), the influence currently achieved for
// advertiser i.
func (p *Plan) Influence(i int) int { return p.counters[i].Covered() }

// Regret returns R(S_i) for advertiser i.
func (p *Plan) Regret(i int) float64 { return p.regrets[i] }

// TotalRegret returns R(S) = Σ_i R(S_i), the MROAM objective. The sum is
// taken over the cached per-advertiser regrets, each of which is recomputed
// exactly whenever its coverage changes, so the result carries no
// incremental drift.
func (p *Plan) TotalRegret() float64 {
	total := 0.0
	for _, r := range p.regrets {
		total += r
	}
	return total
}

// TotalDual returns R′(S) = Σ_i R′(S_i), the dual objective of §6.3.
func (p *Plan) TotalDual() float64 {
	total := 0.0
	for i := range p.counters {
		total += p.inst.Dual(i, p.counters[i].Covered())
	}
	return total
}

// Satisfied reports whether advertiser i's demand is met.
func (p *Plan) Satisfied(i int) bool {
	return p.inst.Satisfied(i, p.counters[i].Covered())
}

// SatisfiedCount returns the number of advertisers whose demand is met.
func (p *Plan) SatisfiedCount() int {
	n := 0
	for i := range p.counters {
		if p.Satisfied(i) {
			n++
		}
	}
	return n
}

// Set appends the billboards assigned to advertiser i to dst in ascending
// order and returns the extended slice.
func (p *Plan) Set(i int, dst []int) []int { return p.counters[i].Members(dst) }

// SetSize returns |S_i|.
func (p *Plan) SetSize(i int) int { return p.counters[i].Size() }

// UnassignedBillboards appends all unassigned billboard IDs to dst in
// ascending order and returns the extended slice.
func (p *Plan) UnassignedBillboards(dst []int) []int {
	for b, o := range p.owner {
		if o == Unassigned {
			dst = append(dst, b)
		}
	}
	return dst
}

// Evals returns the cumulative number of marginal-influence evaluations
// performed through this plan, the work measure used by the efficiency
// study.
func (p *Plan) Evals() int64 { return p.evals }

// AddEvals adds n to the evaluation counter. Algorithms call this when they
// perform marginal evaluations outside the plan's own mutation methods.
func (p *Plan) AddEvals(n int64) { p.evals += n }

// CacheStats returns the cumulative selection-engine effectiveness counters
// (gain-cache hits/misses and full-scan fallbacks) accrued through this
// plan. Like Evals, the counters of a plan returned by the restart
// framework aggregate the deterministic completed prefix, so they are
// identical for any worker count.
func (p *Plan) CacheStats() CacheStats { return p.stats }

// refreshRegret recomputes the cached regret of advertiser i after its
// coverage changed.
func (p *Plan) refreshRegret(i int) {
	p.regrets[i] = p.inst.Regret(i, p.counters[i].Covered())
}

// Assign gives unassigned billboard b to advertiser i. It panics if b is
// already owned.
func (p *Plan) Assign(b, i int) {
	if p.owner[b] != Unassigned {
		panic(fmt.Sprintf("core: Assign(%d, %d): billboard owned by %d", b, i, p.owner[b]))
	}
	p.owner[b] = i
	if p.inst.Universe().Degree(b) > 0 {
		p.eligible--
	}
	p.counters[i].Add(b)
	p.evals++
	p.refreshRegret(i)
}

// Release returns billboard b to the unassigned pool. It panics if b is not
// owned.
func (p *Plan) Release(b int) {
	i := p.owner[b]
	if i == Unassigned {
		panic(fmt.Sprintf("core: Release(%d): billboard not owned", b))
	}
	p.owner[b] = Unassigned
	if p.inst.Universe().Degree(b) > 0 {
		p.eligible++
	}
	p.counters[i].Remove(b)
	p.evals++
	p.refreshRegret(i)
	// S_i shrank, so i's cached gain upper bounds are no longer bounds;
	// the freed billboard re-enters the other advertisers' heaps.
	p.invalidateGainCache(i)
	p.gainCacheOnRelease(b)
}

// ReleaseAll returns every billboard of advertiser i to the unassigned pool
// and returns how many were released.
func (p *Plan) ReleaseAll(i int) int {
	members := p.counters[i].Members(nil)
	for _, b := range members {
		p.Release(b)
	}
	return len(members)
}

// GainOf returns I(S_i ∪ {b}) − I(S_i) for an unowned billboard b, counting
// one evaluation.
func (p *Plan) GainOf(i, b int) int {
	p.evals++
	return p.counters[i].Gain(b)
}

// LossOf returns I(S_i) − I(S_i \ {b}) for a billboard b owned by i,
// counting one evaluation.
func (p *Plan) LossOf(i, b int) int {
	p.evals++
	return p.counters[i].Loss(b)
}

// SwapDeltaOf returns I((S_i \ {out}) ∪ {in}) − I(S_i) without mutating,
// counting one evaluation. out must be owned by i and in must not be owned
// by i (it may be owned by another advertiser or unassigned).
func (p *Plan) SwapDeltaOf(i, out, in int) int {
	p.evals++
	return p.counters[i].SwapDelta(out, in)
}

// ExchangeSets swaps the entire billboard sets of advertisers i and j
// (the ALS move). Influence values travel with the sets; only the regret
// mapping changes.
func (p *Plan) ExchangeSets(i, j int) {
	if i == j {
		return
	}
	for _, b := range p.counters[i].Members(nil) {
		p.owner[b] = j
	}
	for _, b := range p.counters[j].Members(nil) {
		p.owner[b] = i
	}
	p.counters[i], p.counters[j] = p.counters[j], p.counters[i]
	p.evals++
	p.refreshRegret(i)
	p.refreshRegret(j)
	// Both sets changed wholesale; their gain bounds are meaningless now.
	p.invalidateGainCache(i)
	p.invalidateGainCache(j)
}

// ExchangeBillboards swaps billboard bi (owned by advertiser i) with
// billboard bj (owned by advertiser j), the BLS move (1).
func (p *Plan) ExchangeBillboards(bi, bj int) {
	i, j := p.owner[bi], p.owner[bj]
	if i == Unassigned || j == Unassigned || i == j {
		panic(fmt.Sprintf("core: ExchangeBillboards(%d, %d): owners %d, %d", bi, bj, i, j))
	}
	p.Release(bi)
	p.Release(bj)
	p.Assign(bj, i)
	p.Assign(bi, j)
}

// Replace substitutes billboard out (owned by some advertiser) with the
// unassigned billboard in, the BLS move (2).
func (p *Plan) Replace(out, in int) {
	i := p.owner[out]
	if i == Unassigned {
		panic(fmt.Sprintf("core: Replace(%d, %d): out not owned", out, in))
	}
	if p.owner[in] != Unassigned {
		panic(fmt.Sprintf("core: Replace(%d, %d): in owned by %d", out, in, p.owner[in]))
	}
	p.Release(out)
	p.Assign(in, i)
}

// Clone returns a deep, independent copy of the plan. The evaluation
// counter is copied as well.
func (p *Plan) Clone() *Plan {
	c := &Plan{
		inst:     p.inst,
		counters: make([]*coverage.Counter, len(p.counters)),
		regrets:  append([]float64(nil), p.regrets...),
		owner:    append([]int(nil), p.owner...),
		evals:    p.evals,
		stats:    p.stats,
		eligible: p.eligible,
	}
	for i, ctr := range p.counters {
		c.counters[i] = ctr.Clone()
	}
	return c
}

// CopyFrom overwrites this plan's state with src's (both must be plans of
// the same instance). It reuses the destination's counter storage, so a
// scratch plan copied once per local-search sweep allocates nothing.
func (p *Plan) CopyFrom(src *Plan) {
	if p.inst != src.inst {
		panic("core: CopyFrom across instances")
	}
	if p == src {
		return
	}
	for i := range p.counters {
		p.counters[i].CopyFrom(src.counters[i])
	}
	copy(p.regrets, src.regrets)
	copy(p.owner, src.owner)
	p.evals = src.evals
	p.stats = src.stats
	p.eligible = src.eligible
	p.invalidateAllGainCaches()
}

// Validate checks the structural invariants: the owner table matches the
// counters, cached regrets match a recomputation, and disjointness holds by
// construction of the owner table. It returns the first violation found.
func (p *Plan) Validate() error {
	u := p.inst.Universe()
	for b := 0; b < u.NumBillboards(); b++ {
		o := p.owner[b]
		if o == Unassigned {
			for i := range p.counters {
				if p.counters[i].Has(b) {
					return fmt.Errorf("core: billboard %d unowned but in counter %d", b, i)
				}
			}
			continue
		}
		if o < 0 || o >= len(p.counters) {
			return fmt.Errorf("core: billboard %d has invalid owner %d", b, o)
		}
		for i := range p.counters {
			if p.counters[i].Has(b) != (i == o) {
				return fmt.Errorf("core: billboard %d owner table says %d but counter %d disagrees", b, o, i)
			}
		}
	}
	for i := range p.counters {
		want := p.inst.Regret(i, p.counters[i].Covered())
		if diff := p.regrets[i] - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("core: advertiser %d cached regret %v, recomputed %v", i, p.regrets[i], want)
		}
	}
	// The model's own feasibility constraints (per-zone caps for
	// ZonalModel; nothing for BaseModel) are part of a plan's validity.
	return p.inst.model.Validate(p)
}

// Breakdown splits the total regret into its two components as reported in
// the paper's stacked-bar figures: the excessive-influence regret of
// over-satisfied advertisers and the unsatisfied penalty of under-satisfied
// ones.
func (p *Plan) Breakdown() (excess, unsatisfied float64) {
	for i := range p.counters {
		if p.Satisfied(i) {
			excess += p.regrets[i]
		} else {
			unsatisfied += p.regrets[i]
		}
	}
	return excess, unsatisfied
}
