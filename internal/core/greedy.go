package core

import (
	"context"
	"sort"
)

// This file implements the two greedy heuristics of Section 5:
// G-Order (Algorithm 1, budget-effective greedy) and G-Global (Algorithm 2,
// synchronous greedy).

// bestBillboardFor returns the unassigned billboard maximizing the paper's
// greedy criterion for advertiser i:
//
//	(R(S_i) − R(S_i ∪ {o})) / I({o})
//
// Ties (which always occur under γ=0 while the demand is unreachable, where
// ΔR is 0 for every non-satisfying billboard) are broken by the marginal
// coverage ratio gain(o)/I({o}) and then by the smaller ID, so selection is
// deterministic. Billboards with I({o}) = 0 can never change any influence
// and are skipped. Returns ok=false if no eligible billboard exists.
//
// Under the union-coverage measure on large universes the selection runs
// on the lazy-greedy gain cache (gaincache.go), which returns the
// identical billboard while evaluating far fewer marginal gains; small
// universes keep the full scan (heap upkeep would cost more than it
// saves), and the impression-count measure (k > 1) is not submodular and
// always uses the scan. See planUsesCELF.
func bestBillboardFor(p *Plan, i int) (best int, ok bool) {
	if planUsesCELF(p) {
		return bestBillboardCELF(p, i)
	}
	p.stats.Rescans++
	return bestBillboardScan(p, i)
}

// bestBillboardScan is the reference O(|U|·deg) implementation of
// bestBillboardFor: evaluate every unassigned billboard. Under a non-base
// model, billboards the model's CanAssign hook rejects are skipped before
// they count as candidates — the greedy only ever selects feasible moves.
func bestBillboardScan(p *Plan, i int) (best int, ok bool) {
	u := p.inst.Universe()
	curRegret := p.Regret(i)
	curInfl := p.Influence(i)
	checkFeasible := !p.inst.base
	var bestKey1, bestKey2 float64
	var candidates int64
	best = -1
	for b, owner := range p.owner {
		if owner != Unassigned {
			continue
		}
		deg := u.Degree(b)
		if deg == 0 {
			continue
		}
		if checkFeasible && !p.inst.model.CanAssign(p, i, b) {
			continue
		}
		candidates++
		gain := p.GainOf(i, b)
		dR := curRegret - p.inst.Regret(i, curInfl+gain)
		key1 := dR / float64(deg)
		key2 := float64(gain) / float64(deg)
		if best == -1 || key1 > bestKey1 || (key1 == bestKey1 && key2 > bestKey2) {
			best, bestKey1, bestKey2 = b, key1, key2
		}
	}
	p.stats.Misses += candidates
	return best, best != -1
}

// byBudgetEffectiveness returns advertiser indices sorted by descending
// L_i/I_i (ties by smaller index).
func byBudgetEffectiveness(inst *Instance) []int {
	order := make([]int, inst.NumAdvertisers())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		ax, ay := inst.Advertiser(order[x]), inst.Advertiser(order[y])
		return ax.Payment/float64(ax.Demand) > ay.Payment/float64(ay.Demand)
	})
	return order
}

// GreedyOrder is Algorithm 1 (G-Order): advertisers are served one at a
// time in descending budget-effectiveness order; each receives billboards
// that maximize regret reduction per unit influence until satisfied or the
// inventory runs out.
func GreedyOrder(inst *Instance) *Plan {
	p, _ := greedyOrder(nil, inst)
	return p
}

// GreedyOrderCtx is GreedyOrder under a context: if ctx fires mid-build the
// partially assigned plan (structurally valid) is returned with ok=false.
func GreedyOrderCtx(ctx context.Context, inst *Instance) (p *Plan, completed bool) {
	return greedyOrder(ctxDone(ctx), inst)
}

func greedyOrder(done <-chan struct{}, inst *Instance) (p *Plan, completed bool) {
	p = NewPlan(inst)
	for _, i := range byBudgetEffectiveness(inst) {
		for !p.Satisfied(i) {
			if cancelled(done) {
				return p, false
			}
			b, ok := bestBillboardFor(p, i)
			if !ok {
				break
			}
			p.Assign(b, i)
		}
	}
	return p, true
}

// SynchronousGreedy is Algorithm 2 (G-Global): it assigns one
// regret-effective billboard per round to every unsatisfied advertiser,
// so that no advertiser monopolizes the ideal inventory. When the inventory
// is exhausted while two or more advertisers remain unsatisfied, the least
// budget-effective unsatisfied advertiser releases its billboards back to
// the pool and leaves the active set (its partial assignment is abandoned),
// until fewer than two advertisers remain unsatisfied.
//
// The plan is modified in place (it plays the S^in role of the paper's
// pseudo-code, which is non-empty when this routine is invoked from the
// local search framework) and returned for convenience.
func SynchronousGreedy(p *Plan) *Plan {
	synchronousGreedyDone(nil, p)
	return p
}

// SynchronousGreedyCtx is SynchronousGreedy under a context: it reports
// whether the greedy ran to convergence before ctx fired. On cancellation
// the plan is left in its current (structurally valid) intermediate state.
func SynchronousGreedyCtx(ctx context.Context, p *Plan) (completed bool) {
	return synchronousGreedyDone(ctxDone(ctx), p)
}

func synchronousGreedyDone(done <-chan struct{}, p *Plan) (completed bool) {
	inst := p.inst
	active := make([]bool, inst.NumAdvertisers())
	for i := range active {
		active[i] = true
	}
	for {
		assignedAny := false
		exhausted := false
		for i := range active {
			if !active[i] || p.Satisfied(i) {
				continue
			}
			if cancelled(done) {
				return false
			}
			b, ok := bestBillboardFor(p, i)
			if !ok {
				exhausted = true
				continue
			}
			p.Assign(b, i)
			assignedAny = true
		}
		unsat := 0
		for i := range active {
			if active[i] && !p.Satisfied(i) {
				unsat++
			}
		}
		if unsat == 0 {
			return true
		}
		if exhausted && !assignedAny {
			if unsat < 2 {
				return true
			}
			// Release the least budget-effective unsatisfied advertiser
			// and retire it from the active set (Lines 2.9-2.11).
			j := -1
			var jEff float64
			for i := range active {
				if !active[i] || p.Satisfied(i) {
					continue
				}
				a := inst.Advertiser(i)
				eff := a.Payment / float64(a.Demand)
				if j == -1 || eff < jEff {
					j, jEff = i, eff
				}
			}
			p.ReleaseAll(j)
			active[j] = false
		}
	}
}

// GGlobal runs Algorithm 2 from the empty plan, the G-Global method of the
// experiment section.
func GGlobal(inst *Instance) *Plan {
	return SynchronousGreedy(NewPlan(inst))
}
