package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file provides plan persistence and host-facing audit reports: a host
// that computed a deployment overnight needs to hand the assignment to its
// operations team and to re-validate it later against the same instance.

// planJSON is the serialized form of a Plan. Only the assignment is stored;
// influences and regrets are recomputed against the instance on load so a
// stale file cannot smuggle in inconsistent cached values.
type planJSON struct {
	// Version guards the format.
	Version int `json:"version"`
	// Gamma, demands and payments fingerprint the instance so a plan
	// cannot be silently loaded against a different problem.
	Gamma       float64   `json:"gamma"`
	Impressions int       `json:"impressions"`
	Demands     []int64   `json:"demands"`
	Payments    []float64 `json:"payments"`
	NumBB       int       `json:"num_billboards"`
	Assignments [][]int   `json:"assignments"` // per advertiser, sorted billboard IDs
}

const planFormatVersion = 1

// WritePlan serializes the plan assignment as JSON.
func WritePlan(w io.Writer, p *Plan) error {
	inst := p.Instance()
	out := planJSON{
		Version:     planFormatVersion,
		Gamma:       inst.Gamma(),
		Impressions: inst.Impressions(),
		NumBB:       inst.Universe().NumBillboards(),
	}
	for i := 0; i < inst.NumAdvertisers(); i++ {
		a := inst.Advertiser(i)
		out.Demands = append(out.Demands, a.Demand)
		out.Payments = append(out.Payments, a.Payment)
		out.Assignments = append(out.Assignments, p.Set(i, []int{}))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadPlan deserializes a plan written by WritePlan and replays it against
// the instance, re-deriving all influences and regrets. It errors if the
// file does not match the instance (advertiser count, demands, payments, γ,
// billboard count) or encodes an invalid assignment.
func ReadPlan(r io.Reader, inst *Instance) (*Plan, error) {
	var in planJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if in.Version != planFormatVersion {
		return nil, fmt.Errorf("core: plan format version %d, want %d", in.Version, planFormatVersion)
	}
	if in.Gamma != inst.Gamma() {
		return nil, fmt.Errorf("core: plan γ=%v, instance γ=%v", in.Gamma, inst.Gamma())
	}
	if in.Impressions != inst.Impressions() {
		return nil, fmt.Errorf("core: plan impressions=%d, instance %d", in.Impressions, inst.Impressions())
	}
	if in.NumBB != inst.Universe().NumBillboards() {
		return nil, fmt.Errorf("core: plan has %d billboards, instance %d", in.NumBB, inst.Universe().NumBillboards())
	}
	if len(in.Assignments) != inst.NumAdvertisers() ||
		len(in.Demands) != inst.NumAdvertisers() ||
		len(in.Payments) != inst.NumAdvertisers() {
		return nil, fmt.Errorf("core: plan has %d advertisers, instance %d", len(in.Assignments), inst.NumAdvertisers())
	}
	for i := 0; i < inst.NumAdvertisers(); i++ {
		a := inst.Advertiser(i)
		if in.Demands[i] != a.Demand || in.Payments[i] != a.Payment {
			return nil, fmt.Errorf("core: advertiser %d fingerprint mismatch", i)
		}
	}
	p := NewPlan(inst)
	for i, set := range in.Assignments {
		for _, b := range set {
			if b < 0 || b >= in.NumBB {
				return nil, fmt.Errorf("core: advertiser %d assigned out-of-range billboard %d", i, b)
			}
			if p.Owner(b) != Unassigned {
				return nil, fmt.Errorf("core: billboard %d assigned twice", b)
			}
			p.Assign(b, i)
		}
	}
	return p, nil
}

// AuditRow summarizes one advertiser's outcome under a plan.
type AuditRow struct {
	Advertiser int
	Demand     int64
	Payment    float64
	Achieved   int
	Billboards int
	Satisfied  bool
	Regret     float64
	// Fulfillment is achieved/demand (can exceed 1 when over-satisfied).
	Fulfillment float64
}

// Audit produces per-advertiser outcome rows sorted by descending regret —
// the host's "who is costing me" view.
func Audit(p *Plan) []AuditRow {
	inst := p.Instance()
	rows := make([]AuditRow, inst.NumAdvertisers())
	for i := range rows {
		a := inst.Advertiser(i)
		rows[i] = AuditRow{
			Advertiser:  i,
			Demand:      a.Demand,
			Payment:     a.Payment,
			Achieved:    p.Influence(i),
			Billboards:  p.SetSize(i),
			Satisfied:   p.Satisfied(i),
			Regret:      p.Regret(i),
			Fulfillment: float64(p.Influence(i)) / float64(a.Demand),
		}
	}
	sort.SliceStable(rows, func(x, y int) bool { return rows[x].Regret > rows[y].Regret })
	return rows
}

// Revenue returns the payment the host actually collects under the plan:
// the full L_i from satisfied advertisers and the γ-scaled fraction
// γ·L_i·I(S_i)/I_i from unsatisfied ones (the business model behind
// Equation 1's revenue-regret branch).
func Revenue(p *Plan) float64 {
	inst := p.Instance()
	total := 0.0
	for i := 0; i < inst.NumAdvertisers(); i++ {
		a := inst.Advertiser(i)
		if p.Satisfied(i) {
			total += a.Payment
		} else {
			total += inst.Gamma() * a.Payment * float64(p.Influence(i)) / float64(a.Demand)
		}
	}
	return total
}
