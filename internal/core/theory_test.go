package core

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

func singleAdvInstance(r *rng.RNG, nTraj, nBB, maxDeg int, demandFrac float64) *Instance {
	lists := make([]coverage.List, nBB)
	for b := range lists {
		deg := 1 + r.Intn(maxDeg)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(nTraj))
		}
		lists[b] = coverage.NewList(ids)
	}
	u := coverage.MustUniverse(nTraj, lists)
	d := int64(demandFrac * float64(u.TotalSupply()))
	if d < 1 {
		d = 1
	}
	return MustInstance(u, []Advertiser{{Demand: d, Payment: float64(d)}}, 0.5)
}

func TestPsi(t *testing.T) {
	u := disjointUniverse([]int{3, 7, 2})
	inst := MustInstance(u, []Advertiser{{Demand: 14, Payment: 14}}, 0.5)
	if got := Psi(inst, 0); got != 0.5 { // max degree 7, demand 14
		t.Fatalf("Psi = %v, want 0.5", got)
	}
}

func TestApproximationFactor(t *testing.T) {
	u := disjointUniverse([]int{3, 7, 2}) // |U| = 3, max deg 7
	inst := MustInstance(u, []Advertiser{{Demand: 14, Payment: 14}}, 0.5)
	// ψ = 0.5: ρ = max(1 + r·3, (0.5)^{-3} = 8).
	if got := ApproximationFactor(inst, 0, 0); math.Abs(got-8) > 1e-9 {
		t.Fatalf("ρ(r=0) = %v, want 8", got)
	}
	if got := ApproximationFactor(inst, 0, 10); math.Abs(got-31) > 1e-9 {
		t.Fatalf("ρ(r=10) = %v, want 1+30 = 31", got)
	}
	// ψ ≥ 1 → +Inf.
	small := MustInstance(u, []Advertiser{{Demand: 5, Payment: 5}}, 0.5)
	if got := ApproximationFactor(small, 0, 0); !math.IsInf(got, 1) {
		t.Fatalf("ρ with ψ ≥ 1 = %v, want +Inf", got)
	}
	// Negative r is clamped.
	if got := ApproximationFactor(inst, 0, -5); math.Abs(got-8) > 1e-9 {
		t.Fatalf("ρ(r<0) = %v, want 8", got)
	}
}

func TestDualLocalSearchReachesLocalMaximum(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		inst := singleAdvInstance(r, 120, 12, 25, 0.5)
		p := NewPlan(inst)
		moves, converged := DualLocalSearch(p, 0, 0, 0)
		if moves == 0 && p.Influence(0) == 0 && inst.Universe().TotalSupply() > 0 {
			t.Fatalf("trial %d: search made no moves from empty plan", trial)
		}
		if !converged {
			t.Fatalf("trial %d: search hit the default move cap", trial)
		}
		if ok, b, dir := IsApproxLocalMaximum(p, 0, 0); !ok {
			t.Fatalf("trial %d: not a local maximum (billboard %d, %s)", trial, b, dir)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDualLocalSearchRespectsMaxMoves(t *testing.T) {
	r := rng.New(32)
	inst := singleAdvInstance(r, 200, 14, 30, 0.6)
	p := NewPlan(inst)
	moves, converged := DualLocalSearch(p, 0, 0, 1)
	if moves > 1 {
		t.Fatalf("maxMoves ignored: %d moves", moves)
	}
	// The cap must be reported as such: a search stopped after one move on
	// an instance that needs more is not a fixed point, and claiming
	// convergence here is exactly the unsoundness the convergence flag
	// exists to prevent.
	if converged {
		if ok, _, _ := IsApproxLocalMaximum(p, 0, 0); !ok {
			t.Fatal("search claimed convergence at the cap without reaching a local maximum")
		}
	} else if ok, _, _ := IsApproxLocalMaximum(p, 0, 0); ok {
		t.Fatal("search reported a cap stop at a true local maximum")
	}
}

// TestDualLocalSearchReportsConvergence pins the convergence contract from
// both sides: unbounded runs converge (and say so), while a binding cap is
// reported as non-convergence rather than silently presented as a fixed
// point — VerifyTheorem2's soundness rests on this distinction.
func TestDualLocalSearchReportsConvergence(t *testing.T) {
	r := rng.New(47)
	inst := singleAdvInstance(r, 200, 14, 30, 0.6)

	free := NewPlan(inst)
	freeMoves, converged := DualLocalSearch(free, 0, 0, 0)
	if !converged {
		t.Fatalf("unbounded search did not converge in %d moves", freeMoves)
	}
	if freeMoves < 2 {
		t.Skipf("instance converges in %d moves; cannot exercise the cap", freeMoves)
	}

	capped := NewPlan(inst)
	moves, converged := DualLocalSearch(capped, 0, 0, freeMoves-1)
	if moves != freeMoves-1 {
		t.Fatalf("capped search accepted %d moves, want %d", moves, freeMoves-1)
	}
	if converged {
		t.Fatal("search stopped by the cap reported convergence")
	}

	// Re-running with the cap lifted finishes the descent.
	rest, converged := DualLocalSearch(capped, 0, 0, 0)
	if !converged || moves+rest < freeMoves {
		t.Fatalf("resumed search: %d+%d moves, converged=%v; want >= %d, true",
			moves, rest, converged, freeMoves)
	}
}

// TestTheorem2Holds verifies Theorem 2's ρ·R'(S) ≥ R'(OPT) on random small
// single-advertiser instances, for several improvement ratios.
func TestTheorem2Holds(t *testing.T) {
	r := rng.New(33)
	checked := 0
	for trial := 0; trial < 40 && checked < 15; trial++ {
		// Demand well above the largest billboard so ψ < 1 and the
		// bound is informative.
		inst := singleAdvInstance(r, 150, 9, 12, 0.7)
		if Psi(inst, 0) >= 1 {
			continue
		}
		checked++
		for _, ratio := range []float64{0, 0.05, 0.2} {
			if err := VerifyTheorem2(inst, ratio); err != nil {
				t.Fatalf("trial %d r=%v: %v", trial, ratio, err)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances had ψ < 1 — generator drifted", checked)
	}
}

func TestVerifyTheorem2Validation(t *testing.T) {
	u := disjointUniverse([]int{2, 2})
	multi := MustInstance(u, []Advertiser{
		{Demand: 2, Payment: 2},
		{Demand: 2, Payment: 2},
	}, 0.5)
	if err := VerifyTheorem2(multi, 0); err == nil {
		t.Error("multi-advertiser instance accepted")
	}
	// Oversized universes must be rejected by the exhaustive dual step.
	degrees := make([]int, ExactMaxBillboards+1)
	for i := range degrees {
		degrees[i] = 1
	}
	big := MustInstance(disjointUniverse(degrees), []Advertiser{
		{Demand: int64(ExactMaxBillboards + 10), Payment: 10},
	}, 0.5)
	if err := VerifyTheorem2(big, 0); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestExactDualOptimumSimple(t *testing.T) {
	// Demand 5 over disjoint billboards {3, 2, 4}: the dual optimum is
	// L = 5 achieved by {3, 2}.
	u := disjointUniverse([]int{3, 2, 4})
	inst := MustInstance(u, []Advertiser{{Demand: 5, Payment: 5}}, 0.5)
	got, err := exactDualOptimum(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("dual optimum = %v, want 5", got)
	}
}
