package core

import "sort"

// LowerBound returns a provable lower bound on the optimal total regret of
// the instance, from a fractional relaxation in which influence is
// divisible and billboard overlap is ignored.
//
// Any feasible deployment S induces x_i = I(S_i) with Σ_i x_i ≤ I* (the
// S_i are disjoint billboard sets, and each set's coverage is at most the
// sum of its members' individual influences) and x_i ≤ |T|. The true
// per-advertiser regret R_i(x) of Equation 1 is discontinuous at the
// demand (it jumps from L_i(1−γ) down to 0), so the relaxation minimizes
// its convex envelope instead:
//
//	env_i(x) = L_i·(1 − x/I_i)   for x ≤ I_i
//	env_i(x) = L_i·(x − I_i)/I_i for x ≥ I_i
//
// env_i ≤ R_i pointwise for every γ ∈ [0, 1] (the descending slope
// −L_i/I_i is at least as steep as the true −γ·L_i/I_i), so
//
//	min { Σ env_i(x_i) : Σ x_i ≤ I*, 0 ≤ x_i ≤ |T| }  ≤  R(S_opt).
//
// The envelope problem is convex and separable with one packing
// constraint, so a marginal-slope greedy solves it exactly: allocate
// supply to advertisers in descending L_i/I_i, each up to min(I_i, |T|),
// and never beyond a demand (the slope turns positive there). Runs in
// O(|A| log |A|).
//
// The bound certifies heuristic quality at scales far beyond the exact
// solver: a plan with R(S) close to LowerBound is provably near-optimal.
// It is 0 (vacuous) whenever the relaxed supply covers every demand.
func LowerBound(inst *Instance) float64 {
	supply := float64(inst.Universe().TotalSupply())
	maxPer := float64(inst.Universe().NumTrajectories())
	n := inst.NumAdvertisers()

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		ax, ay := inst.Advertiser(order[x]), inst.Advertiser(order[y])
		return ax.Payment/float64(ax.Demand) > ay.Payment/float64(ay.Demand)
	})

	total := inst.TotalPayment() // Σ env_i(0) = Σ L_i
	remaining := supply
	for _, i := range order {
		if remaining <= 0 {
			break
		}
		a := inst.Advertiser(i)
		cap := float64(a.Demand)
		if cap > maxPer {
			cap = maxPer
		}
		x := cap
		if x > remaining {
			x = remaining
		}
		remaining -= x
		total -= a.Payment * x / float64(a.Demand) // envelope drop at L_i/I_i per unit
	}
	if total < 0 {
		total = 0
	}
	return total
}
