package core

// This file implements the lazy-greedy (CELF-style) gain cache behind
// bestBillboardFor. Under the union-coverage influence measure the marginal
// gain I(S_i ∪ {b}) − I(S_i) is submodular: it can only shrink as S_i grows.
// A per-advertiser max-heap of stale gain-ratio upper bounds therefore lets
// the greedy re-evaluate only a handful of heap tops per selection instead
// of rescanning every unassigned billboard.
//
// The greedy's primary selection key is not the gain itself but
// key1 = (R(S_i) − R(S_i ∪ {b})) / I({b}), which is *not* submodular (a
// billboard that crosses the demand threshold can see its key1 jump up as
// S_i approaches the demand). The heap is therefore ordered by the
// submodular quantity r̂(b) ≥ gain(b)/deg(b), and selection prunes with a
// provable per-call bound. Writing x = I(S_i), d = I_i, t = d − x > 0,
// g = gain(b), deg = I({b}), Equation 1 gives
//
//	g <  t:  key1 = (L·γ/d)·(g/deg)            ≤ (L·γ/d)·r̂
//	g >= t:  key1 ≤ R(S_i)/deg ≤ R(S_i)·r̂/t    (since r̂ ≥ g/deg ≥ t/deg)
//
// so with C = max(L·γ/d, R(S_i)/t) every unassigned billboard satisfies
// key1 ≤ C·r̂ and key2 = g/deg ≤ r̂. Popping while the top's C·r̂ can still
// match the best evaluated key therefore yields exactly the same selection
// (including the key2 and smaller-ID tie-breaks) as the full scan.
//
// Validity is maintained by the Plan mutation hooks: assigning billboards
// only shrinks gains (bounds stay upper bounds), releasing a billboard of
// advertiser i invalidates i's heap (gains of i may grow) and re-inserts
// the freed billboard into the other advertisers' heaps, and whole-set
// operations (ExchangeSets, CopyFrom) invalidate the affected heaps. The
// cache is only used under the union-coverage measure (impression threshold
// k = 1) and the base regret model; for k > 1 gains are not submodular, and
// constrained models (model.go) filter candidates by feasibility, so both
// cases make bestBillboardFor fall back to the full scan.

// CacheStats counts the effectiveness of the greedy's billboard selection
// engine for one plan. A "candidate" is an unassigned billboard with
// non-zero degree — exactly the set the reference full scan evaluates per
// selection call — so, because the cache provably makes the same
// selections, Hits+Misses over a CELF-mode run equals Misses over the
// corresponding scan-mode run (see TestGainCacheStatsMatchRecount).
type CacheStats struct {
	// Hits counts candidate evaluations the CELF pruning bound avoided:
	// per selection call, the eligible candidates left unevaluated.
	Hits int64
	// Misses counts candidates whose marginal gain was exactly evaluated,
	// whether off the heap (CELF) or by the full scan.
	Misses int64
	// Rescans counts bestBillboardFor calls that fell back to the full
	// scan (small universe in auto mode, or the non-submodular k > 1
	// impression measure).
	Rescans int64
}

// Add returns the field-wise sum s + o.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:    s.Hits + o.Hits,
		Misses:  s.Misses + o.Misses,
		Rescans: s.Rescans + o.Rescans,
	}
}

// Sub returns the field-wise difference s − o.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{
		Hits:    s.Hits - o.Hits,
		Misses:  s.Misses - o.Misses,
		Rescans: s.Rescans - o.Rescans,
	}
}

// celfSlack is the relative margin added to the pruning bound so that
// floating-point rounding in C·r̂ can never prune a candidate whose exactly
// evaluated key ties the incumbent. Popping a few extra entries only costs
// evaluations; pruning one too many could change the selected billboard.
const celfSlack = 1e-9

// gainEntry is one heap element: a billboard and a stale upper bound on its
// gain(b)/deg(b) ratio for the owning advertiser's current set.
type gainEntry struct {
	b     int
	ratio float64
}

// advGainCache is the lazy-greedy state of one advertiser: a max-heap of
// gainEntry ordered by (ratio desc, b asc) plus a membership bitmap so
// released billboards are re-inserted at most once.
type advGainCache struct {
	heap   []gainEntry
	inHeap []bool
}

// less reports whether entry x has strictly higher heap priority than y.
func (gainEntry) less(x, y gainEntry) bool {
	if x.ratio != y.ratio {
		return x.ratio > y.ratio
	}
	return x.b < y.b
}

// push inserts e into the heap.
func (c *advGainCache) push(e gainEntry) {
	c.heap = append(c.heap, e)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(c.heap[i], c.heap[parent]) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

// pop removes and returns the maximum entry. The heap must be non-empty.
func (c *advGainCache) pop() gainEntry {
	top := c.heap[0]
	last := len(c.heap) - 1
	c.heap[0] = c.heap[last]
	c.heap = c.heap[:last]
	n := len(c.heap)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && top.less(c.heap[l], c.heap[m]) {
			m = l
		}
		if r < n && top.less(c.heap[r], c.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		c.heap[i], c.heap[m] = c.heap[m], c.heap[i]
		i = m
	}
	return top
}

// gainCache holds the lazily built per-advertiser heaps of one Plan plus a
// scratch buffer for re-inserting entries evaluated during one selection.
type gainCache struct {
	adv     []*advGainCache
	scratch []gainEntry
}

// gainCacheFor returns advertiser i's heap, building it from the plan's
// current unassigned pool on first use (or after an invalidation). All
// initial ratios are Degree(b)/Degree(b) = 1, so appending billboards in
// ascending ID order already satisfies the heap invariant.
func (p *Plan) gainCacheFor(i int) *advGainCache {
	if p.cache == nil {
		p.cache = &gainCache{adv: make([]*advGainCache, len(p.counters))}
	}
	if c := p.cache.adv[i]; c != nil {
		return c
	}
	u := p.inst.Universe()
	c := &advGainCache{inHeap: make([]bool, len(p.owner))}
	for b, owner := range p.owner {
		if owner != Unassigned || u.Degree(b) == 0 {
			continue
		}
		c.heap = append(c.heap, gainEntry{b: b, ratio: 1})
		c.inHeap[b] = true
	}
	p.cache.adv[i] = c
	return c
}

// invalidateGainCache drops advertiser i's heap. It is called whenever S_i
// shrinks (gains may grow, so the cached upper bounds would become invalid).
func (p *Plan) invalidateGainCache(i int) {
	if p.cache != nil {
		p.cache.adv[i] = nil
	}
}

// invalidateAllGainCaches drops every heap (used by CopyFrom).
func (p *Plan) invalidateAllGainCaches() {
	if p.cache == nil {
		return
	}
	for i := range p.cache.adv {
		p.cache.adv[i] = nil
	}
}

// gainCacheOnRelease records that billboard b returned to the unassigned
// pool: it is re-inserted (with the trivially valid bound ratio 1) into
// every built heap it had been popped from. The releasing advertiser's own
// heap must already have been invalidated by the caller.
func (p *Plan) gainCacheOnRelease(b int) {
	if p.cache == nil || p.inst.Universe().Degree(b) == 0 {
		return
	}
	for _, c := range p.cache.adv {
		if c == nil || c.inHeap[b] {
			continue
		}
		c.push(gainEntry{b: b, ratio: 1})
		c.inHeap[b] = true
	}
}

// celfModeKind selects the greedy's selection engine. The default,
// celfAuto, routes through the gain cache only where it is measured to pay
// off; tests force either path to cross-check them against each other. The
// mode is never written concurrently with a running solver.
type celfModeKind int

const (
	celfAuto celfModeKind = iota
	celfForceOn
	celfForceOff
)

var celfMode = celfAuto

// celfMinBillboards is the auto-mode activation threshold. The cache
// always evaluates fewer marginal gains than the scan, but each evaluation
// carries heap upkeep (pop, re-push, bound checks); the measured crossover
// where the savings win on this implementation sits at roughly 400
// high-degree billboards (see BenchmarkSynchronousGreedySelection).
// Smaller universes keep the full scan's tight loop.
const celfMinBillboards = 400

// planUsesCELF reports whether bestBillboardFor should route through the
// gain cache for this plan. The impression-threshold check is a
// correctness requirement — k > 1 gains are not submodular — and applies
// in every mode, as does the base-model check: a constrained model can
// declare heap tops infeasible, and popping them would permanently lose
// their entries (the heap only re-inserts on release), so non-base models
// always take the full scan with its per-candidate CanAssign filter. The
// size threshold is a performance heuristic and only applies in celfAuto.
func planUsesCELF(p *Plan) bool {
	if p.inst.Impressions() != 1 || !p.inst.base {
		return false
	}
	switch celfMode {
	case celfForceOn:
		return true
	case celfForceOff:
		return false
	}
	return p.inst.Universe().NumBillboards() >= celfMinBillboards
}

// bestBillboardCELF is the lazy-greedy implementation of bestBillboardFor:
// identical selection, evaluating only as many candidates as the pruning
// bound requires.
func bestBillboardCELF(p *Plan, i int) (best int, ok bool) {
	u := p.inst.Universe()
	c := p.gainCacheFor(i)
	curRegret := p.Regret(i)
	curInfl := p.Influence(i)

	// C such that key1(b) ≤ C·r̂(b) for every unassigned b — the model's
	// admissibility contract (Model.MarginalUpperBound). For BaseModel the
	// bound is max(L·γ/d, R(S_i)/t) while unsatisfied and 0 once satisfied;
	// TestModelMarginalUpperBound property-checks admissibility for every
	// shipped model.
	cBound := p.inst.model.MarginalUpperBound(p.inst, i, curInfl, curRegret)

	best = -1
	var bestKey1, bestKey2 float64
	evaluated := p.cache.scratch[:0]
	for len(c.heap) > 0 {
		top := c.heap[0]
		if best != -1 {
			ub := cBound * top.ratio
			// Prune only when even the inflated bound cannot reach the
			// incumbent's key1; ties on key1 must keep popping for the
			// key2/ID tie-breaks.
			if ub+celfSlack*(abs(ub)+abs(bestKey1)) < bestKey1 {
				break
			}
			// Exact-zero regime (γ=0 below the demand, or L=0): every
			// key1 is exactly 0, so selection degenerates to the pure
			// coverage ratio key2 — which the heap bounds directly and
			// exactly (r̂ ≥ g/deg holds in float arithmetic: division
			// rounding is monotone). Remaining entries can then neither
			// beat bestKey2 nor tie it, so pruning is exact.
			if cBound == 0 && bestKey1 == 0 && top.ratio < bestKey2 {
				break
			}
		}
		c.pop()
		c.inHeap[top.b] = false
		if p.owner[top.b] != Unassigned {
			continue
		}
		deg := u.Degree(top.b)
		gain := p.GainOf(i, top.b)
		dR := curRegret - p.inst.Regret(i, curInfl+gain)
		key1 := dR / float64(deg)
		key2 := float64(gain) / float64(deg)
		evaluated = append(evaluated, gainEntry{b: top.b, ratio: key2})
		if best == -1 || key1 > bestKey1 ||
			(key1 == bestKey1 && key2 > bestKey2) ||
			(key1 == bestKey1 && key2 == bestKey2 && top.b < best) {
			best, bestKey1, bestKey2 = top.b, key1, key2
		}
	}
	// Every eligible candidate was either exactly evaluated above or had
	// its evaluation pruned by the bound.
	p.stats.Misses += int64(len(evaluated))
	p.stats.Hits += int64(p.eligible - len(evaluated))
	// Entries evaluated this call go back with their refreshed (exact)
	// ratios, staying valid upper bounds for every later call.
	for _, e := range evaluated {
		c.push(e)
		c.inHeap[e.b] = true
	}
	p.cache.scratch = evaluated[:0]
	return best, best != -1
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
