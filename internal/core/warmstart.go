package core

// This file implements the warm-start seam of the delta-solve path
// (DESIGN.md §16): restart slot 0 of the randomized local search can be
// seeded from an incumbent plan — typically the previous solve of a market
// that has since seen advertiser churn — instead of the greedy-from-empty
// descent. The incumbent is replayed defensively (out-of-range, conflicting
// or model-infeasible holdings are dropped, and Plan.Validate backstops the
// result), and the branch-switch closed forms of Equation 1 screen which
// advertisers the churn can still affect: an untouched advertiser sitting
// exactly at its regret minimum cannot be improved by any move, so its set
// is frozen for the warm descent. Slots 1..Restarts are untouched, so a
// warm run differs from the cold run in slot 0 only, and the cold path
// (WarmStart == nil) is bit-identical to the pre-warm-start engine.

// WarmStart seeds restart slot 0 of RandomizedLocalSearch(Ctx) from an
// incumbent plan. The zero/nil value (no warm start) leaves the engine
// bit-identical to a cold run.
type WarmStart struct {
	// Sets holds the incumbent's per-advertiser billboard sets, indexed by
	// the *current* instance's advertiser IDs (a caller tracking churn
	// remaps them before solving; see catalog.PatchResult). Advertisers
	// with no entry start empty and are treated as dirty.
	Sets [][]int
	// Dirty marks advertisers whose terms changed since the incumbent was
	// computed (revised demand/payment, or newly added); they are always
	// re-optimized. Indices beyond len(Dirty) default to clean.
	Dirty []bool
	// FreedSupply reports that billboards were released since the
	// incumbent was computed (an advertiser was removed, or holdings were
	// dropped during remapping). Over-satisfied advertisers are only
	// frozen when no supply was freed: new free billboards can enable
	// regret-reducing swaps on the increasing branch that were not
	// available at the previous optimum.
	FreedSupply bool
}

// applyWarmStart replays the incumbent onto the empty plan p and returns
// the frozen-advertiser mask for the warm descent, or nil when the
// incumbent could not be validated (p is then left empty and slot 0 runs
// exactly like a cold greedy descent).
//
// Replay is CanAssign-gated: a holding that is out of range, already owned,
// or infeasible under the instance's current model is skipped and its
// advertiser marked touched (never frozen). Plan.Validate then backstops
// the replayed plan against the model's own invariants.
//
// The screen derives from the branch-switch closed forms (Equation 1,
// pinned by TestPropertyBranchSwitchContinuity): R_i is strictly decreasing
// in achieved influence below the demand and strictly increasing above it,
// with R_i = 0 exactly at the switch point. An untouched advertiser with
// R_i = 0 sits at its per-advertiser global minimum — no move can improve
// it. An untouched advertiser on the increasing branch (satisfied, R_i > 0)
// was already move-optimal at the previous local optimum, and nothing about
// its own branch changed — unless supply was freed, which can enable new
// swaps. Unsatisfied advertisers are always dirty: they live on the
// decreasing branch, where any newly available billboard could help.
//
// Freezing is a search restriction, not an exactness guarantee: moves
// involving a frozen advertiser are skipped, which also keeps its
// billboards out of reach of dirty advertisers during the warm descent.
// Slots 1..Restarts search unrestricted, so the reduction still sees
// unfrozen optima.
func applyWarmStart(p *Plan, ws *WarmStart) []bool {
	inst := p.inst
	n := inst.NumAdvertisers()
	nB := inst.Universe().NumBillboards()
	checkFeasible := !inst.base
	touched := make([]bool, n)
	for i := 0; i < n && i < len(ws.Sets); i++ {
		for _, b := range ws.Sets[i] {
			if b < 0 || b >= nB || p.Owner(b) != Unassigned ||
				(checkFeasible && !inst.model.CanAssign(p, i, b)) {
				touched[i] = true
				continue
			}
			p.Assign(b, i)
		}
	}
	if err := p.Validate(); err != nil {
		// The incumbent does not fit the current instance at all (e.g. a
		// model whose invariants the per-assignment gate cannot express).
		// Release everything: slot 0 degrades to the cold greedy descent.
		for i := 0; i < n; i++ {
			p.ReleaseAll(i)
		}
		return nil
	}
	frozen := make([]bool, n)
	for i := 0; i < n; i++ {
		if touched[i] || i >= len(ws.Sets) || (i < len(ws.Dirty) && ws.Dirty[i]) {
			continue
		}
		frozen[i] = p.Regret(i) == 0 || (p.Satisfied(i) && !ws.FreedSupply)
	}
	return frozen
}

// frozenCount is the number of set bits in a frozen mask.
func frozenCount(frozen []bool) int {
	n := 0
	for _, f := range frozen {
		if f {
			n++
		}
	}
	return n
}
