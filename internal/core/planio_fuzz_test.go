package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

// fuzzPlanInstance is the fixed instance every FuzzPlanRoundTrip input is
// replayed against. Keep it stable: the checked-in corpus under
// testdata/fuzz/FuzzPlanRoundTrip encodes plans for exactly this instance.
func fuzzPlanInstance() *Instance {
	r := rng.New(5)
	return randomInstance(r, 30, 12, 8, 3, 0.9, 0.5)
}

// fuzzPlanSeeds returns the seed corpus: a genuine serialized plan plus
// structured corruptions of it.
func fuzzPlanSeeds(tb testing.TB) [][]byte {
	inst := fuzzPlanInstance()
	var buf bytes.Buffer
	if err := WritePlan(&buf, GreedyOrder(inst)); err != nil {
		tb.Fatal(err)
	}
	valid := buf.Bytes()
	return [][]byte{
		valid,
		nil,
		[]byte("{}"),
		[]byte(`{"version":1}`),
		[]byte(`not json at all`),
		bytes.Replace(valid, []byte(`"version": 1`), []byte(`"version": 2`), 1),
		bytes.Replace(valid, []byte(`"gamma": 0.5`), []byte(`"gamma": 0.25`), 1),
		// Truncation mid-document.
		valid[:len(valid)/2],
	}
}

// FuzzPlanRoundTrip asserts the planio contract under arbitrary bytes:
// ReadPlan never panics, anything it accepts validates against the
// instance, and Write∘Read is the identity on accepted plans.
func FuzzPlanRoundTrip(f *testing.F) {
	inst := fuzzPlanInstance()
	for _, seed := range fuzzPlanSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data), inst)
		if err != nil {
			return // rejected input; only panics are bugs here
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadPlan accepted a plan that fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := WritePlan(&out, p); err != nil {
			t.Fatalf("re-serialize accepted plan: %v", err)
		}
		q, err := ReadPlan(bytes.NewReader(out.Bytes()), inst)
		if err != nil {
			t.Fatalf("re-read serialized plan: %v", err)
		}
		if q.TotalRegret() != p.TotalRegret() {
			t.Fatalf("round-trip regret %v != %v", q.TotalRegret(), p.TotalRegret())
		}
		for i := 0; i < inst.NumAdvertisers(); i++ {
			a, b := p.Set(i, nil), q.Set(i, nil)
			if len(a) != len(b) {
				t.Fatalf("advertiser %d: round-trip set %v != %v", i, b, a)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("advertiser %d: round-trip set %v != %v", i, b, a)
				}
			}
			if p.Influence(i) != q.Influence(i) {
				t.Fatalf("advertiser %d: round-trip influence %d != %d", i, q.Influence(i), p.Influence(i))
			}
		}
	})
}

// TestRegenerateFuzzPlanCorpus rewrites the checked-in seed corpus when run
// with UPDATE_FUZZ_CORPUS=1; otherwise it verifies the files exist so a
// deleted corpus is caught before the fuzz targets silently run seedless.
func TestRegenerateFuzzPlanCorpus(t *testing.T) {
	var seeds [][]byte
	for _, s := range fuzzPlanSeeds(t) {
		if len(s) > 0 { // the corpus encoder round-trips nil to ""; skip the empty seed
			seeds = append(seeds, s)
		}
	}
	writeFuzzCorpus(t, filepath.Join("testdata", "fuzz", "FuzzPlanRoundTrip"), seeds)
}

// writeFuzzCorpus writes one "go test fuzz v1" file per seed under dir (when
// UPDATE_FUZZ_CORPUS=1) or asserts the directory is non-empty.
func writeFuzzCorpus(t *testing.T, dir string, seeds [][]byte) {
	t.Helper()
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("fuzz seed corpus %s missing; regenerate with UPDATE_FUZZ_CORPUS=1 go test -run TestRegenerate", dir)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
