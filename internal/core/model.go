package core

import (
	"fmt"
	"math"
)

// This file defines the pluggable regret-model layer. A Model owns the
// per-advertiser objective (regret, satisfaction, the dual R′) and the
// feasibility semantics of a problem variant, so the four solvers, the gain
// cache and the theory checks can serve materially different markets
// (zonal-capped, tag-specific, time-sliced, ...) without forking. The
// contract every variant must supply is documented in DESIGN.md §15.
//
// BaseModel reproduces the paper's MROAM closed forms bit-identically: the
// Instance methods Regret/Satisfied/Dual keep inlined fast paths for it
// (instance.go), so attaching the default model costs the hot loops nothing.
// ZonalModel is the first shipped variant: the same objective under per-zone
// caps on an advertiser's counted influence, after "Minimizing Regret in
// Billboard Advertisement under Zonal Influence Constraint" (arXiv
// 2402.01294).

// Assignment is the read-only view of a deployment plan a Model consults for
// feasibility decisions. *Plan satisfies it; the interface keeps models from
// mutating the plan mid-check and lets tests feed hand-built assignments.
type Assignment interface {
	// Instance returns the instance the assignment deploys.
	Instance() *Instance
	// Owner returns the advertiser owning billboard b, or Unassigned.
	Owner(b int) int
	// Influence returns I(S_i).
	Influence(i int) int
	// SetSize returns |S_i|.
	SetSize(i int) int
	// Set appends S_i's billboards to dst in ascending order.
	Set(i int, dst []int) []int
}

// Model is one problem variant: the objective evaluated per advertiser at a
// given achieved influence, the prune bound that keeps the lazy-greedy gain
// cache admissible, and the feasibility hooks the solvers consult before
// add/swap/exchange moves. Implementations must be stateless with respect to
// any particular plan (the same Model value serves concurrent restarts) and
// every method must be deterministic.
type Model interface {
	// Kind is the wire name of the variant ("base", "zonal").
	Kind() string

	// Regret evaluates R(S_i) for advertiser i achieving the given
	// influence (the variant's Equation 1).
	Regret(in *Instance, i, achieved int) float64
	// Satisfied reports whether the achieved influence meets advertiser
	// i's demand under this model.
	Satisfied(in *Instance, i, achieved int) bool
	// Dual evaluates the variant's rewired revenue objective R′
	// (Equation 2 for the base model).
	Dual(in *Instance, i, achieved int) float64

	// MarginalUpperBound returns a constant C such that for advertiser i at
	// the given achieved influence and current regret, every candidate
	// billboard b satisfies
	//
	//	(R(S_i) − R(S_i ∪ {b})) / I({b}) ≤ C · r̂(b)
	//
	// for any upper bound r̂(b) ≥ gain(b)/I({b}). This is the admissibility
	// contract of the CELF gain cache (gaincache.go): an inadmissible bound
	// silently changes greedy selections. TestModelMarginalUpperBound
	// property-checks it for every shipped model.
	MarginalUpperBound(in *Instance, i, achieved int, curRegret float64) float64

	// CanAssign reports whether giving unassigned billboard b to advertiser
	// i keeps S_i feasible. Release moves need no hook: feasible sets are
	// downward closed in every variant.
	CanAssign(p Assignment, i, b int) bool
	// CanSwap reports whether replacing billboard out ∈ S_i with billboard
	// repl ∉ S_i keeps S_i feasible (BLS exchange/replace moves).
	CanSwap(p Assignment, i, out, repl int) bool
	// CanExchangeSets reports whether swapping the entire sets of
	// advertisers i and j keeps both feasible (the ALS move).
	CanExchangeSets(p Assignment, i, j int) bool
	// Validate checks the whole assignment against the variant's
	// feasibility constraints, returning the first violation. Plan.Validate
	// consults it in addition to the structural invariants.
	Validate(p Assignment) error

	// Psi returns the variant's ψ statistic for advertiser i (Lemma 6.1):
	// the largest single-billboard influence any feasible assignment could
	// add, over the demand.
	Psi(in *Instance, i int) float64
	// ApproximationFactor returns the variant's Theorem 2 factor ρ for
	// advertiser i under improvement ratio r (+Inf when the bound is
	// vacuous).
	ApproximationFactor(in *Instance, i int, r float64) float64
}

// BaseModel is the paper's MROAM market: Equation 1 regret, Equation 2 dual,
// and no feasibility constraints beyond billboard disjointness. It is the
// model every instance carries unless WithModel attaches another.
type BaseModel struct{}

// Kind returns "base".
func (BaseModel) Kind() string { return ModelBase }

// Regret evaluates Equation 1 (see Instance.Regret).
func (BaseModel) Regret(in *Instance, i, achieved int) float64 {
	return in.baseRegret(i, achieved)
}

// Satisfied reports I(S_i) ≥ I_i.
func (BaseModel) Satisfied(in *Instance, i, achieved int) bool {
	return in.baseSatisfied(i, achieved)
}

// Dual evaluates Equation 2 (see Instance.Dual).
func (BaseModel) Dual(in *Instance, i, achieved int) float64 {
	return in.baseDual(i, achieved)
}

// MarginalUpperBound derives C from Equation 1's two branches. Writing
// x = achieved, d = I_i, t = d − x > 0, g = gain(b), deg = I({b}):
//
//	g <  t:  key1 = (L·γ/d)·(g/deg)         ≤ (L·γ/d)·r̂
//	g >= t:  key1 ≤ R(S_i)/deg ≤ R(S_i)·r̂/t  (since r̂ ≥ g/deg ≥ t/deg)
//
// The crossing term R(S_i)/t only matters when some billboard could actually
// cross the remaining demand t, which requires a degree of at least t. When
// the advertiser is already satisfied, key1 ≤ 0 for every billboard (extra
// influence only adds excessive regret), so C = 0 remains a valid bound.
func (BaseModel) MarginalUpperBound(in *Instance, i, achieved int, curRegret float64) float64 {
	a := in.advertisers[i]
	if int64(achieved) >= a.Demand {
		return 0
	}
	c := a.Payment * in.gamma / float64(a.Demand)
	if t := a.Demand - int64(achieved); t <= int64(in.universe.MaxDegree()) {
		if rb := curRegret / float64(t); rb > c {
			c = rb
		}
	}
	return c
}

// CanAssign always allows: the base market has no per-set constraints.
func (BaseModel) CanAssign(Assignment, int, int) bool { return true }

// CanSwap always allows.
func (BaseModel) CanSwap(Assignment, int, int, int) bool { return true }

// CanExchangeSets always allows.
func (BaseModel) CanExchangeSets(Assignment, int, int) bool { return true }

// Validate reports no violations: disjointness is structural (the owner
// table) and the base market adds nothing on top.
func (BaseModel) Validate(Assignment) error { return nil }

// Psi returns ψ = max_o I({o}) / I_i (Lemma 6.1).
func (BaseModel) Psi(in *Instance, i int) float64 {
	return float64(in.universe.MaxDegree()) / float64(in.advertisers[i].Demand)
}

// ApproximationFactor returns Theorem 2's ρ = max(1 + r·|U|, (1−ψ)^{−|U|}),
// +Inf when ψ ≥ 1.
func (m BaseModel) ApproximationFactor(in *Instance, i int, r float64) float64 {
	return approximationFactor(m.Psi(in, i), in, r)
}

// approximationFactor is the Theorem 2 shape shared by the shipped models;
// only ψ differs between them.
func approximationFactor(psi float64, in *Instance, r float64) float64 {
	if r < 0 {
		r = 0
	}
	nU := float64(in.universe.NumBillboards())
	first := 1 + r*nU
	if psi >= 1 {
		return math.Inf(1)
	}
	return math.Max(first, math.Pow(1-psi, -nU))
}

// Model kind wire names.
const (
	ModelBase  = "base"
	ModelZonal = "zonal"
)

// ZonalModel is the zonal-influence-constrained market: the base objective
// under a uniform per-zone cap on each advertiser's counted influence. A
// set S_i is feasible iff for every zone z,
//
//	Σ_{b ∈ S_i, zone(b) = z} I({b}) ≤ cap
//
// — no advertiser may concentrate more than cap influence supply in one
// zone. Zones partition the billboards (derived from the geo grid by
// catalog.Build); the cap is uniform across zones and advertisers, which
// makes whole-set exchanges (the ALS move) trivially feasibility-preserving.
type ZonalModel struct {
	zoneOf []int // billboard ID -> zone index
	zones  int   // number of distinct zones
	cap    int64 // per-zone influence-supply cap
}

// NewZonalModel builds a ZonalModel over the given billboard→zone partition.
// zoneOf is indexed by billboard ID; its length must match the universe the
// model is later attached to (WithModel enforces that). cap must be ≥ 1.
func NewZonalModel(zoneOf []int, cap int64) (*ZonalModel, error) {
	if cap < 1 {
		return nil, fmt.Errorf("core: zonal cap %d < 1", cap)
	}
	zones := 0
	for b, z := range zoneOf {
		if z < 0 {
			return nil, fmt.Errorf("core: billboard %d has negative zone %d", b, z)
		}
		if z+1 > zones {
			zones = z + 1
		}
	}
	return &ZonalModel{zoneOf: append([]int(nil), zoneOf...), zones: zones, cap: cap}, nil
}

// Kind returns "zonal".
func (*ZonalModel) Kind() string { return ModelZonal }

// Zones returns the number of distinct zones in the partition.
func (m *ZonalModel) Zones() int { return m.zones }

// Cap returns the per-zone influence-supply cap.
func (m *ZonalModel) Cap() int64 { return m.cap }

// ZoneOf returns billboard b's zone index.
func (m *ZonalModel) ZoneOf(b int) int { return m.zoneOf[b] }

// Regret evaluates the base Equation 1: the zonal variant constrains
// feasibility, not the objective.
func (*ZonalModel) Regret(in *Instance, i, achieved int) float64 {
	return in.baseRegret(i, achieved)
}

// Satisfied reports I(S_i) ≥ I_i.
func (*ZonalModel) Satisfied(in *Instance, i, achieved int) bool {
	return in.baseSatisfied(i, achieved)
}

// Dual evaluates the base Equation 2.
func (*ZonalModel) Dual(in *Instance, i, achieved int) float64 {
	return in.baseDual(i, achieved)
}

// MarginalUpperBound is the base bound: the objective is unchanged, so the
// same C remains admissible over any feasible candidate subset.
func (*ZonalModel) MarginalUpperBound(in *Instance, i, achieved int, curRegret float64) float64 {
	return BaseModel{}.MarginalUpperBound(in, i, achieved, curRegret)
}

// zoneLoad returns advertiser i's influence supply currently counted in
// zone, in O(|S_i|) with no retained state (the model serves concurrent
// restarts).
func (m *ZonalModel) zoneLoad(p Assignment, i, zone int) int64 {
	u := p.Instance().Universe()
	var load int64
	for _, b := range p.Set(i, nil) {
		if m.zoneOf[b] == zone {
			load += int64(u.Degree(b))
		}
	}
	return load
}

// CanAssign allows the assignment iff billboard b's zone stays within the
// cap after adding b's supply to advertiser i's load there.
func (m *ZonalModel) CanAssign(p Assignment, i, b int) bool {
	deg := int64(p.Instance().Universe().Degree(b))
	if deg == 0 {
		return true
	}
	z := m.zoneOf[b]
	return m.zoneLoad(p, i, z)+deg <= m.cap
}

// CanSwap allows replacing out ∈ S_i with repl iff repl's zone stays within
// the cap; out leaving can only lower its own zone's load.
func (m *ZonalModel) CanSwap(p Assignment, i, out, repl int) bool {
	u := p.Instance().Universe()
	deg := int64(u.Degree(repl))
	if deg == 0 {
		return true
	}
	z := m.zoneOf[repl]
	load := m.zoneLoad(p, i, z) + deg
	if m.zoneOf[out] == z {
		load -= int64(u.Degree(out))
	}
	return load <= m.cap
}

// CanExchangeSets always allows: the cap is uniform across advertisers, so
// two individually feasible sets remain feasible after trading owners.
func (*ZonalModel) CanExchangeSets(Assignment, int, int) bool { return true }

// Validate checks every advertiser's per-zone load against the cap.
func (m *ZonalModel) Validate(p Assignment) error {
	u := p.Instance().Universe()
	loads := make([]int64, m.zones)
	var set []int
	for i := 0; i < p.Instance().NumAdvertisers(); i++ {
		for z := range loads {
			loads[z] = 0
		}
		set = p.Set(i, set[:0])
		for _, b := range set {
			z := m.zoneOf[b]
			loads[z] += int64(u.Degree(b))
			if loads[z] > m.cap {
				return fmt.Errorf("core: advertiser %d exceeds zonal cap %d in zone %d (load %d at billboard %d)",
					i, m.cap, z, loads[z], b)
			}
		}
	}
	return nil
}

// Psi returns ψ over the assignable billboards only: a billboard whose
// degree alone exceeds the zonal cap can never join any feasible set, so it
// cannot bound the single-step gain.
func (m *ZonalModel) Psi(in *Instance, i int) float64 {
	u := in.universe
	maxDeg := 0
	for b := 0; b < u.NumBillboards(); b++ {
		if d := u.Degree(b); int64(d) <= m.cap && d > maxDeg {
			maxDeg = d
		}
	}
	return float64(maxDeg) / float64(in.advertisers[i].Demand)
}

// ApproximationFactor is Theorem 2's shape under the zonal ψ.
func (m *ZonalModel) ApproximationFactor(in *Instance, i int, r float64) float64 {
	return approximationFactor(m.Psi(in, i), in, r)
}
