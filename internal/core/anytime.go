package core

import "context"

// This file implements the anytime contract over the solvers: every
// algorithm can run under a context.Context and, when the context is
// cancelled or its deadline fires mid-solve, still return the best complete
// plan found so far instead of either blocking to completion or returning
// nothing. The serving layer (internal/server) is built on this contract.
//
// Determinism under truncation is defined at restart granularity: a run cut
// off after k completed restart iterations returns the same plan (same
// assignment, same regret, same aggregated Evals counter) as an uncancelled
// run configured with Restarts = k. To make that hold for any worker count,
// the reduction only consumes the longest completed *prefix* of iteration
// slots — a restart that finished out of order ahead of an abandoned earlier
// slot is discarded rather than allowed to make the answer depend on
// scheduling. When the context never fires, every slot completes, the prefix
// is the whole run, and the result is bit-identical to the non-context entry
// points.

// Anytime is the result of a context-aware solve: the best complete plan
// found before the context fired, plus how much of the configured work was
// actually performed.
type Anytime struct {
	// Plan is the best complete plan found. It is always a structurally
	// valid (disjoint, well-formed) plan; if the context fired before even
	// the greedy initialization finished, it is the best partially built
	// plan (cancellation points only occur between atomic plan mutations),
	// or the empty plan as a last resort.
	Plan *Plan
	// TotalRegret is Plan.TotalRegret(), captured for convenience.
	TotalRegret float64
	// RestartsRequested is the configured outer-loop iteration count
	// (0 for the greedy algorithms, which have no restart loop).
	RestartsRequested int
	// RestartsCompleted is the length of the longest completed prefix of
	// restart iterations that entered the reduction. Equal to
	// RestartsRequested when the run was not truncated.
	RestartsCompleted int
	// Truncated reports whether the context fired before the configured
	// work finished. When false, the result is bit-identical to the
	// corresponding non-context solver.
	Truncated bool
	// Evals is the total number of marginal-influence evaluations
	// performed, including work on abandoned restarts that did not enter
	// the reduction. Plan.Evals() carries only the deterministic aggregate
	// of the completed prefix (matching an uncancelled run truncated to
	// RestartsCompleted); Evals is the truthful work measure for metrics.
	Evals int64
	// Cache aggregates the gain-cache effectiveness counters over all
	// work performed (like Evals, including abandoned restarts);
	// Plan.CacheStats() carries the deterministic prefix aggregate.
	Cache CacheStats
	// WarmStarted reports that restart slot 0 was seeded from a validated
	// incumbent (LocalSearchOptions.WarmStart). False when no incumbent
	// was supplied or it failed validation — the run was then fully cold.
	WarmStarted bool
	// FrozenAdvertisers is how many advertisers the branch-switch screen
	// froze during the warm slot's descent (0 for cold runs).
	FrozenAdvertisers int
}

// AnytimeAlgorithm is an Algorithm that supports deadline-bounded and
// cancellable solving. All four paper algorithms implement it.
type AnytimeAlgorithm interface {
	Algorithm
	// SolveCtx computes a plan under ctx, returning the best complete
	// plan found so far if ctx fires mid-solve.
	SolveCtx(ctx context.Context, inst *Instance) *Anytime
}

// SolveAnytime runs alg under ctx when it supports the anytime contract and
// falls back to a blocking Solve otherwise.
func SolveAnytime(ctx context.Context, alg Algorithm, inst *Instance) *Anytime {
	if aa, ok := alg.(AnytimeAlgorithm); ok {
		return aa.SolveCtx(ctx, inst)
	}
	p := alg.Solve(inst)
	return &Anytime{Plan: p, TotalRegret: p.TotalRegret(), Evals: p.Evals(), Cache: p.CacheStats()}
}

// ctxDone extracts the done channel once so the hot paths can poll with a
// single non-blocking channel read. A nil context (or context.Background())
// yields a nil channel, for which cancelled reports false without any work —
// the non-context entry points pay nothing for the cancellation plumbing.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// cancelled polls a done channel obtained from ctxDone.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// RandomizedLocalSearchCtx is the anytime form of RandomizedLocalSearch
// (Algorithm 3). Restart iterations completed before ctx fires are reduced
// exactly as in the uncancelled run; the iteration in flight when ctx fires
// is abandoned (its partial plan is used only if nothing completed). With a
// context that never fires the returned plan, regret and eval counter are
// bit-identical to RandomizedLocalSearch for every worker count.
func RandomizedLocalSearchCtx(ctx context.Context, inst *Instance, opts LocalSearchOptions) *Anytime {
	opts = opts.withDefaults()
	results, partials, warm := runRestarts(ctx, inst, opts)

	// Longest completed prefix of slots (slot 0 is the greedy-initialized
	// descent, slots 1..Restarts the restart iterations).
	prefix := 0
	for prefix < len(results) && results[prefix] != nil {
		prefix++
	}

	var extraEvals int64      // work outside the deterministic prefix
	var extraCache CacheStats // ditto, for the selection-engine counters
	for _, p := range results[prefix:] {
		if p != nil {
			extraEvals += p.Evals()
			extraCache = extraCache.Add(p.CacheStats())
		}
	}
	for _, p := range partials {
		if p != nil {
			extraEvals += p.Evals()
			extraCache = extraCache.Add(p.CacheStats())
		}
	}

	if prefix == 0 {
		// Not even the greedy initialization completed. Fall back to the
		// best partially built plan — still structurally valid, because
		// cancellation points sit between atomic plan mutations.
		var best *Plan
		for _, p := range partials {
			if p != nil && (best == nil || p.TotalRegret() < best.TotalRegret()) {
				best = p
			}
		}
		if best == nil {
			best = NewPlan(inst)
		}
		return &Anytime{
			Plan:              best,
			TotalRegret:       best.TotalRegret(),
			RestartsRequested: opts.Restarts,
			Truncated:         true,
			Evals:             extraEvals,
			Cache:             extraCache,
			WarmStarted:       warm.applied,
			FrozenAdvertisers: warm.frozen,
		}
	}

	best := results[0]
	totalEvals := best.Evals()
	totalCache := best.CacheStats()
	for _, cand := range results[1:prefix] {
		totalEvals += cand.Evals()
		totalCache = totalCache.Add(cand.CacheStats())
		if cand.TotalRegret() < best.TotalRegret() {
			best = cand
		}
	}
	best.AddEvals(totalEvals - best.Evals())
	best.stats = totalCache
	return &Anytime{
		Plan:              best,
		TotalRegret:       best.TotalRegret(),
		RestartsRequested: opts.Restarts,
		RestartsCompleted: prefix - 1,
		Truncated:         prefix < len(results),
		Evals:             totalEvals + extraEvals,
		Cache:             totalCache.Add(extraCache),
		WarmStarted:       warm.applied,
		FrozenAdvertisers: warm.frozen,
	}
}
