// Package hardness implements Section 4 of the paper: the numerical
// 3-dimensional matching (N3DM) problem and the polynomial reduction from
// N3DM to MROAM used to prove that MROAM is NP-hard and NP-hard to
// approximate within any constant factor.
//
// The reduction maps an N3DM instance (multisets X, Y, Z of n integers with
// bound b = (ΣX + ΣY + ΣZ)/n) to an MROAM instance with 3n billboards over
// disjoint audiences and n identical advertisers, such that the MROAM
// optimum has zero regret iff the N3DM instance has a perfect matching.
// Package tests exercise both directions of the equivalence with the exact
// solver, turning the paper's proof into executable checks.
package hardness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// N3DM is a numerical 3-dimensional matching instance: three multisets of n
// positive integers and the bound b. A YES instance admits a partition into
// n triples (x, y, z), one element from each multiset, with x + y + z = b
// for every triple. A necessary condition is b = (ΣX + ΣY + ΣZ)/n.
type N3DM struct {
	X, Y, Z []int
	B       int
}

// Validate checks structural well-formedness (equal sizes, positive
// elements, and the necessary sum condition n·b = ΣX + ΣY + ΣZ).
func (p N3DM) Validate() error {
	n := len(p.X)
	if n == 0 {
		return fmt.Errorf("hardness: empty instance")
	}
	if len(p.Y) != n || len(p.Z) != n {
		return fmt.Errorf("hardness: sizes |X|=%d |Y|=%d |Z|=%d differ", len(p.X), len(p.Y), len(p.Z))
	}
	sum := 0
	for _, s := range [][]int{p.X, p.Y, p.Z} {
		for _, v := range s {
			if v < 1 {
				return fmt.Errorf("hardness: non-positive element %d", v)
			}
			sum += v
		}
	}
	if sum != n*p.B {
		return fmt.Errorf("hardness: ΣX+ΣY+ΣZ = %d but n·b = %d — no matching can exist", sum, n*p.B)
	}
	return nil
}

// N returns the number of triples n.
func (p N3DM) N() int { return len(p.X) }

// Triple is one matched triple of element indices (into X, Y, Z).
type Triple struct{ XI, YI, ZI int }

// VerifyMatching checks that m is a perfect matching for p: every index of
// each multiset used exactly once and every triple summing to b.
func (p N3DM) VerifyMatching(m []Triple) error {
	n := p.N()
	if len(m) != n {
		return fmt.Errorf("hardness: %d triples for n = %d", len(m), n)
	}
	usedX := make([]bool, n)
	usedY := make([]bool, n)
	usedZ := make([]bool, n)
	for k, tr := range m {
		if tr.XI < 0 || tr.XI >= n || tr.YI < 0 || tr.YI >= n || tr.ZI < 0 || tr.ZI >= n {
			return fmt.Errorf("hardness: triple %d has out-of-range index", k)
		}
		if usedX[tr.XI] || usedY[tr.YI] || usedZ[tr.ZI] {
			return fmt.Errorf("hardness: triple %d reuses an element", k)
		}
		usedX[tr.XI], usedY[tr.YI], usedZ[tr.ZI] = true, true, true
		if s := p.X[tr.XI] + p.Y[tr.YI] + p.Z[tr.ZI]; s != p.B {
			return fmt.Errorf("hardness: triple %d sums to %d, want %d", k, s, p.B)
		}
	}
	return nil
}

// SolveBruteForce searches for a perfect matching by exhaustive
// backtracking over Y and Z permutations. It is exponential and intended
// for the small instances used in tests; ok is false when no matching
// exists.
func (p N3DM) SolveBruteForce() (m []Triple, ok bool) {
	if err := p.Validate(); err != nil {
		return nil, false
	}
	n := p.N()
	usedY := make([]bool, n)
	usedZ := make([]bool, n)
	m = make([]Triple, 0, n)
	var rec func(xi int) bool
	rec = func(xi int) bool {
		if xi == n {
			return true
		}
		for yi := 0; yi < n; yi++ {
			if usedY[yi] {
				continue
			}
			rest := p.B - p.X[xi] - p.Y[yi]
			for zi := 0; zi < n; zi++ {
				if usedZ[zi] || p.Z[zi] != rest {
					continue
				}
				usedY[yi], usedZ[zi] = true, true
				m = append(m, Triple{XI: xi, YI: yi, ZI: zi})
				if rec(xi + 1) {
					return true
				}
				m = m[:len(m)-1]
				usedY[yi], usedZ[zi] = false, false
			}
		}
		return false
	}
	if rec(0) {
		return m, true
	}
	return nil, false
}

// RandomYes generates an N3DM instance that is guaranteed to have a perfect
// matching: n triples (x, y, z) are drawn with x + y + z = b, then each
// multiset is shuffled independently. Elements are in [1, maxVal] (maxVal
// must be at least 3 so a valid triple exists).
func RandomYes(r *rng.RNG, n, maxVal int) (N3DM, error) {
	if n < 1 {
		return N3DM{}, fmt.Errorf("hardness: n %d < 1", n)
	}
	if maxVal < 3 {
		return N3DM{}, fmt.Errorf("hardness: maxVal %d < 3", maxVal)
	}
	b := 3 + r.Intn(3*maxVal-2) // b ∈ [3, 3·maxVal]
	p := N3DM{B: b, X: make([]int, n), Y: make([]int, n), Z: make([]int, n)}
	for i := 0; i < n; i++ {
		// Split b into three parts, each in [1, maxVal].
		for {
			x := 1 + r.Intn(maxVal)
			y := 1 + r.Intn(maxVal)
			z := b - x - y
			if z >= 1 && z <= maxVal {
				p.X[i], p.Y[i], p.Z[i] = x, y, z
				break
			}
		}
	}
	r.ShuffleInts(p.Y)
	r.ShuffleInts(p.Z)
	return p, nil
}

// ReductionScale returns the c used by Reduce for an instance: the paper
// takes c → ∞; any c strictly larger than the total numeric mass
// ΣX + ΣY + ΣZ already makes the base-multiplier accounting exact, because
// no combination of element perturbations can bridge a gap of c.
func ReductionScale(p N3DM) int {
	sum := 0
	for _, s := range [][]int{p.X, p.Y, p.Z} {
		for _, v := range s {
			sum += v
		}
	}
	return sum + 1
}

// Reduce builds the MROAM instance of the paper's reduction:
//
//	3n billboards over pairwise disjoint audiences, with influences
//	  c + x_i (i ∈ X),  3c + y_j (j ∈ Y),  9c + z_k (k ∈ Z);
//	n advertisers, each with demand b + 13c, and γ = 0.
//
// The returned instance has zero optimal regret iff p has a perfect
// matching. Each advertiser's payment is 1 so total regret counts
// unmatched advertisers. The billboard order is X elements first, then Y,
// then Z, so billboard i maps back to multiset elements directly.
func Reduce(p N3DM) (*core.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	c := ReductionScale(p)
	influences := make([]int, 0, 3*n)
	for _, x := range p.X {
		influences = append(influences, c+x)
	}
	for _, y := range p.Y {
		influences = append(influences, 3*c+y)
	}
	for _, z := range p.Z {
		influences = append(influences, 9*c+z)
	}

	lists := make([]coverage.List, len(influences))
	next := int32(0)
	for i, infl := range influences {
		l := make(coverage.List, infl)
		for j := range l {
			l[j] = next
			next++
		}
		lists[i] = l
	}
	u, err := coverage.NewUniverse(int(next), lists)
	if err != nil {
		return nil, err
	}

	demand := int64(p.B + 13*c)
	advs := make([]core.Advertiser, n)
	for i := range advs {
		advs[i] = core.Advertiser{Demand: demand, Payment: 1}
	}
	return core.NewInstance(u, advs, 0)
}

// ExtractMatching interprets a zero-regret plan for a reduced instance as
// an N3DM matching: each advertiser's three billboards, mapped back to
// multiset indices. It returns an error if the plan does not decompose
// into one-per-multiset triples (which cannot happen for a zero-regret
// plan, by the paper's argument — making this a checked theorem).
func ExtractMatching(p N3DM, plan *core.Plan) ([]Triple, error) {
	n := p.N()
	m := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		set := plan.Set(i, nil)
		if len(set) != 3 {
			return nil, fmt.Errorf("hardness: advertiser %d holds %d billboards, want 3", i, len(set))
		}
		tr := Triple{XI: -1, YI: -1, ZI: -1}
		for _, b := range set {
			switch {
			case b < n:
				if tr.XI != -1 {
					return nil, fmt.Errorf("hardness: advertiser %d holds two X billboards", i)
				}
				tr.XI = b
			case b < 2*n:
				if tr.YI != -1 {
					return nil, fmt.Errorf("hardness: advertiser %d holds two Y billboards", i)
				}
				tr.YI = b - n
			default:
				if tr.ZI != -1 {
					return nil, fmt.Errorf("hardness: advertiser %d holds two Z billboards", i)
				}
				tr.ZI = b - 2*n
			}
		}
		if tr.XI == -1 || tr.YI == -1 || tr.ZI == -1 {
			return nil, fmt.Errorf("hardness: advertiser %d missing a multiset", i)
		}
		m = append(m, tr)
	}
	return m, nil
}

// PlanFromMatching builds the zero-regret plan corresponding to a perfect
// matching (the only-if direction of the paper's proof, executable).
func PlanFromMatching(p N3DM, inst *core.Instance, m []Triple) (*core.Plan, error) {
	if err := p.VerifyMatching(m); err != nil {
		return nil, err
	}
	n := p.N()
	plan := core.NewPlan(inst)
	for i, tr := range m {
		plan.Assign(tr.XI, i)
		plan.Assign(n+tr.YI, i)
		plan.Assign(2*n+tr.ZI, i)
	}
	return plan, nil
}
