package hardness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestValidate(t *testing.T) {
	good := N3DM{X: []int{1, 2}, Y: []int{2, 1}, Z: []int{3, 3}, B: 6}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []N3DM{
		{},
		{X: []int{1}, Y: []int{1, 2}, Z: []int{1}, B: 3},
		{X: []int{0}, Y: []int{1}, Z: []int{2}, B: 3},
		{X: []int{1}, Y: []int{1}, Z: []int{1}, B: 5}, // sum ≠ n·b
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestVerifyMatching(t *testing.T) {
	p := N3DM{X: []int{1, 2}, Y: []int{2, 1}, Z: []int{3, 3}, B: 6}
	good := []Triple{{0, 0, 0}, {1, 1, 1}} // 1+2+3, 2+1+3
	if err := p.VerifyMatching(good); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	cases := map[string][]Triple{
		"wrong length": {{0, 0, 0}},
		"bad sum":      {{0, 1, 0}, {1, 0, 1}}, // 1+1+3=5 ≠ 6
		"reuse":        {{0, 0, 0}, {0, 1, 1}},
		"out of range": {{0, 0, 0}, {1, 1, 5}},
	}
	for name, m := range cases {
		if err := p.VerifyMatching(m); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSolveBruteForce(t *testing.T) {
	yes := N3DM{X: []int{1, 2}, Y: []int{2, 1}, Z: []int{3, 3}, B: 6}
	m, ok := yes.SolveBruteForce()
	if !ok {
		t.Fatal("solver missed existing matching")
	}
	if err := yes.VerifyMatching(m); err != nil {
		t.Fatalf("solver returned invalid matching: %v", err)
	}
	// NO instance: sums satisfy the necessary condition but no perfect
	// matching exists. X={1,3}, Y={1,3}, Z={2,2}, b=6: triples need
	// x+y=4: (1,3) and (3,1) both work... pick another:
	// X={1,2}, Y={1,2}, Z={2,4}, b=6: need x+y+z=6 → pairs (x,y) with
	// z=6-x-y ∈ {2,4}: (1,1)→4 ✓, (2,2)→2 ✓ → matching exists. Try:
	// X={1,1}, Y={1,3}, Z={2,4}, b=6: (1,1,4) ✓ then (1,3,2) ✓ — exists.
	// X={1,1}, Y={2,2}, Z={1,5}, b=6: (1,2,z=3)? no 3. (1,2,1)=4 no.
	// need z=3 for all — none. Matching impossible.
	no := N3DM{X: []int{1, 1}, Y: []int{2, 2}, Z: []int{1, 5}, B: 6}
	if err := no.Validate(); err != nil {
		t.Fatalf("NO instance should be structurally valid: %v", err)
	}
	if _, ok := no.SolveBruteForce(); ok {
		t.Fatal("solver found matching in NO instance")
	}
}

func TestRandomYesAlwaysSolvable(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		p, err := RandomYes(r, 1+r.Intn(5), 3+r.Intn(10))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid instance: %v", trial, err)
		}
		m, ok := p.SolveBruteForce()
		if !ok {
			t.Fatalf("trial %d: YES instance unsolvable: %+v", trial, p)
		}
		if err := p.VerifyMatching(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomYesValidation(t *testing.T) {
	if _, err := RandomYes(rng.New(1), 0, 5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RandomYes(rng.New(1), 2, 2); err == nil {
		t.Error("maxVal=2 accepted")
	}
}

func TestReduceStructure(t *testing.T) {
	p := N3DM{X: []int{1, 2}, Y: []int{2, 1}, Z: []int{3, 3}, B: 6}
	inst, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	c := ReductionScale(p)
	u := inst.Universe()
	if u.NumBillboards() != 6 {
		t.Fatalf("billboards = %d, want 3n = 6", u.NumBillboards())
	}
	if inst.NumAdvertisers() != 2 {
		t.Fatalf("advertisers = %d, want n = 2", inst.NumAdvertisers())
	}
	if inst.Gamma() != 0 {
		t.Fatalf("gamma = %v, want 0", inst.Gamma())
	}
	// Influence revision: c + x, 3c + y, 9c + z.
	if u.Degree(0) != c+1 || u.Degree(1) != c+2 {
		t.Error("X billboard influences wrong")
	}
	if u.Degree(2) != 3*c+2 || u.Degree(3) != 3*c+1 {
		t.Error("Y billboard influences wrong")
	}
	if u.Degree(4) != 9*c+3 || u.Degree(5) != 9*c+3 {
		t.Error("Z billboard influences wrong")
	}
	if inst.Advertiser(0).Demand != int64(p.B+13*c) {
		t.Error("demand wrong")
	}
}

func TestReduceRejectsInvalid(t *testing.T) {
	if _, err := Reduce(N3DM{}); err == nil {
		t.Fatal("Reduce accepted invalid instance")
	}
}

// TestReductionIfDirection is the "if" direction of the paper's Theorem 1,
// executable: a zero-regret MROAM plan yields a valid N3DM matching.
func TestReductionIfDirection(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 5; trial++ {
		p, err := RandomYes(r, 2, 6)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := Reduce(p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := core.Exact(inst)
		if err != nil {
			t.Fatal(err)
		}
		if opt.TotalRegret() != 0 {
			t.Fatalf("trial %d: YES instance reduced to nonzero optimum %v", trial, opt.TotalRegret())
		}
		m, err := ExtractMatching(p, opt)
		if err != nil {
			t.Fatalf("trial %d: zero-regret plan is not a matching: %v", trial, err)
		}
		if err := p.VerifyMatching(m); err != nil {
			t.Fatalf("trial %d: extracted matching invalid: %v", trial, err)
		}
	}
}

// TestReductionOnlyIfDirection is the "only if" direction: a perfect
// matching yields a zero-regret plan.
func TestReductionOnlyIfDirection(t *testing.T) {
	r := rng.New(22)
	p, err := RandomYes(r, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := p.SolveBruteForce()
	if !ok {
		t.Fatal("YES instance unsolvable")
	}
	inst, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanFromMatching(p, inst, m)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalRegret() != 0 {
		t.Fatalf("matching plan regret = %v, want 0", plan.TotalRegret())
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReductionNoInstance checks the contrapositive: a NO instance reduces
// to an MROAM instance with strictly positive optimal regret.
func TestReductionNoInstance(t *testing.T) {
	no := N3DM{X: []int{1, 1}, Y: []int{2, 2}, Z: []int{1, 5}, B: 6}
	inst, err := Reduce(no)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Exact(inst)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalRegret() <= 0 {
		t.Fatalf("NO instance reduced to zero-regret optimum")
	}
}

func TestPlanFromMatchingRejectsBadMatching(t *testing.T) {
	p := N3DM{X: []int{1, 2}, Y: []int{2, 1}, Z: []int{3, 3}, B: 6}
	inst, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanFromMatching(p, inst, []Triple{{0, 1, 0}, {1, 0, 1}}); err == nil {
		t.Fatal("invalid matching accepted")
	}
}

// TestBLSOnReducedInstance runs the paper's best heuristic on reduced
// instances; it needn't find the optimum (the whole point of the hardness
// result), but it must return a valid plan without error.
func TestBLSOnReducedInstance(t *testing.T) {
	r := rng.New(23)
	p, err := RandomYes(r, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Reduce(p)
	if err != nil {
		t.Fatal(err)
	}
	plan := core.BLSAlgorithm{Opts: core.LocalSearchOptions{Restarts: 3, Seed: 1}}.Solve(inst)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}
