// Package market generates advertiser sets from the paper's experiment
// knobs (§7.1.3): the demand-supply ratio α and the average-individual
// demand ratio p, plus the noise factors ω (demand) and ε (payment).
//
// Given a coverage universe with supply I* = Σ_o I({o}):
//
//	|A| = round(α / p)                    advertisers
//	I_i = ⌊ω · I* · p⌋,  ω ∈ [0.8, 1.2)   demand of advertiser i
//	L_i = ⌊ε · I_i⌋,     ε ∈ [0.9, 1.1)   payment of advertiser i
//
// so α=100%, p=1% yields 100 small advertisers while α=100%, p=20% yields 5
// big ones — the macro/micro workload axes of the paper's Q1 and Q2.
package market

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// Config describes one advertiser-market workload.
type Config struct {
	// Alpha is the demand-supply ratio α = I^A / I*. The paper evaluates
	// {40%, 60%, 80%, 100%, 120%} with a default of 100%.
	Alpha float64
	// P is the average-individual demand ratio p = (I^A/|A|) / I*. The
	// paper evaluates {1%, 2%, 5%, 10%, 20%} with a default of 5%.
	P float64
	// OmegaLo/OmegaHi bound the per-advertiser demand noise ω; zero
	// values select the paper's [0.8, 1.2).
	OmegaLo, OmegaHi float64
	// EpsilonLo/EpsilonHi bound the payment noise ε; zero values select
	// the paper's [0.9, 1.1).
	EpsilonLo, EpsilonHi float64
}

// Paper default parameter grids (Table 6).
var (
	// Alphas is the α grid of Table 6 (default 100%).
	Alphas = []float64{0.40, 0.60, 0.80, 1.00, 1.20}
	// Ps is the p grid of Table 6 (default 5%).
	Ps = []float64{0.01, 0.02, 0.05, 0.10, 0.20}
	// Gammas is the γ grid of Table 6 (default 0.5).
	Gammas = []float64{0, 0.25, 0.5, 0.75, 1}
	// Lambdas is the λ grid of Table 6 in meters (default 100).
	Lambdas = []float64{50, 100, 150, 200}
)

// Paper default values (bold entries of Table 6).
const (
	DefaultAlpha  = 1.00
	DefaultP      = 0.05
	DefaultGamma  = 0.5
	DefaultLambda = 100
)

func (c Config) withDefaults() Config {
	if c.OmegaLo == 0 && c.OmegaHi == 0 {
		c.OmegaLo, c.OmegaHi = 0.8, 1.2
	}
	if c.EpsilonLo == 0 && c.EpsilonHi == 0 {
		c.EpsilonLo, c.EpsilonHi = 0.9, 1.1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Alpha <= 0 {
		return fmt.Errorf("market: alpha %v must be positive", c.Alpha)
	}
	if c.P <= 0 || c.P > 1 {
		return fmt.Errorf("market: p %v must be in (0, 1]", c.P)
	}
	if c.OmegaLo <= 0 || c.OmegaHi < c.OmegaLo {
		return fmt.Errorf("market: omega range [%v, %v) invalid", c.OmegaLo, c.OmegaHi)
	}
	if c.EpsilonLo <= 0 || c.EpsilonHi < c.EpsilonLo {
		return fmt.Errorf("market: epsilon range [%v, %v) invalid", c.EpsilonLo, c.EpsilonHi)
	}
	return nil
}

// NumAdvertisers returns |A| = round(α/p), at least 1.
func (c Config) NumAdvertisers() int {
	n := int(math.Round(c.Alpha / c.P))
	if n < 1 {
		n = 1
	}
	return n
}

// Generate produces the advertiser set for the universe under this
// configuration, drawing noise from r. Demands are at least 1 even for
// tiny universes so the resulting advertisers are always valid for
// core.NewInstance.
func Generate(u *coverage.Universe, c Config, r *rng.RNG) ([]core.Advertiser, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	supply := float64(u.TotalSupply())
	if supply <= 0 {
		return nil, fmt.Errorf("market: universe has zero supply")
	}
	n := c.NumAdvertisers()
	advs := make([]core.Advertiser, n)
	for i := range advs {
		omega := r.Range(c.OmegaLo, c.OmegaHi)
		demand := int64(omega * supply * c.P)
		if demand < 1 {
			demand = 1
		}
		epsilon := r.Range(c.EpsilonLo, c.EpsilonHi)
		payment := math.Floor(epsilon * float64(demand))
		advs[i] = core.Advertiser{Demand: demand, Payment: payment}
	}
	return advs, nil
}

// NewInstance generates advertisers and wraps them with the universe and γ
// into a core.Instance in one step.
func NewInstance(u *coverage.Universe, c Config, gamma float64, r *rng.RNG) (*core.Instance, error) {
	advs, err := Generate(u, c, r)
	if err != nil {
		return nil, err
	}
	return core.NewInstance(u, advs, gamma)
}
