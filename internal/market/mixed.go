package market

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// Mixed markets extend the paper's uniform-p setup: the Q1/Q2 discussion
// ("Revisit Q1 and Q2", §7.2.1) concludes that a large number of
// medium-demand advertisers is the ideal balance for the host. MixedConfig
// lets an experiment compose advertiser classes (e.g. a few big brands plus
// many small shops) at a fixed global α, so that conclusion can be tested
// directly (BenchmarkAblation_MarketComposition).

// Class is one advertiser class in a mixed market.
type Class struct {
	// P is the class's average-individual demand ratio (like Config.P).
	P float64
	// AlphaShare is the fraction of the global demand α contributed by
	// this class. Shares must sum to 1.
	AlphaShare float64
}

// MixedConfig describes a market composed of several advertiser classes.
type MixedConfig struct {
	// Alpha is the global demand-supply ratio α shared by all classes.
	Alpha float64
	// Classes compose the market; AlphaShares must sum to 1 (±1e-9).
	Classes []Class
	// OmegaLo/OmegaHi and EpsilonLo/EpsilonHi as in Config; zero values
	// select the paper's defaults.
	OmegaLo, OmegaHi     float64
	EpsilonLo, EpsilonHi float64
}

// Validate reports whether the mixed configuration is usable.
func (c MixedConfig) Validate() error {
	if c.Alpha <= 0 {
		return fmt.Errorf("market: alpha %v must be positive", c.Alpha)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("market: no classes")
	}
	total := 0.0
	for i, cl := range c.Classes {
		if cl.P <= 0 || cl.P > 1 {
			return fmt.Errorf("market: class %d p %v must be in (0, 1]", i, cl.P)
		}
		if cl.AlphaShare <= 0 {
			return fmt.Errorf("market: class %d share %v must be positive", i, cl.AlphaShare)
		}
		total += cl.AlphaShare
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		return fmt.Errorf("market: class shares sum to %v, want 1", total)
	}
	return nil
}

// GenerateMixed produces the advertiser set of a mixed market: each class
// contributes round(α·share/p) advertisers with demands ⌊ω·I*·p⌋, exactly
// as the uniform generator does per class.
func GenerateMixed(u *coverage.Universe, c MixedConfig, r *rng.RNG) ([]core.Advertiser, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var advs []core.Advertiser
	for i, cl := range c.Classes {
		sub := Config{
			Alpha:     c.Alpha * cl.AlphaShare,
			P:         cl.P,
			OmegaLo:   c.OmegaLo,
			OmegaHi:   c.OmegaHi,
			EpsilonLo: c.EpsilonLo,
			EpsilonHi: c.EpsilonHi,
		}
		part, err := Generate(u, sub, r.Derive(fmt.Sprintf("class-%d", i)))
		if err != nil {
			return nil, err
		}
		advs = append(advs, part...)
	}
	// Reassign dense IDs across classes (NewInstance would anyway).
	for i := range advs {
		advs[i].ID = i
	}
	return advs, nil
}

// Compositions returns three canonical market mixes at the same α, the
// comparison behind the paper's Q2 answer:
//
//	"many-small":  everything from p=1% advertisers
//	"few-big":     everything from p=20% advertisers
//	"mixed":       half the demand from p=2%, half from p=10%
func Compositions(alpha float64) map[string]MixedConfig {
	return map[string]MixedConfig{
		"many-small": {Alpha: alpha, Classes: []Class{{P: 0.01, AlphaShare: 1}}},
		"few-big":    {Alpha: alpha, Classes: []Class{{P: 0.20, AlphaShare: 1}}},
		"mixed": {Alpha: alpha, Classes: []Class{
			{P: 0.02, AlphaShare: 0.5},
			{P: 0.10, AlphaShare: 0.5},
		}},
	}
}
