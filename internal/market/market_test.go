package market

import (
	"math"
	"testing"

	"repro/internal/coverage"
	"repro/internal/rng"
)

// uniformUniverse builds nBB billboards each covering deg distinct
// trajectories with no overlap (supply = nBB·deg).
func uniformUniverse(nBB, deg int) *coverage.Universe {
	lists := make([]coverage.List, nBB)
	next := int32(0)
	for i := range lists {
		l := make(coverage.List, deg)
		for j := range l {
			l[j] = next
			next++
		}
		lists[i] = l
	}
	return coverage.MustUniverse(nBB*deg, lists)
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: 0, P: 0.05},
		{Alpha: -1, P: 0.05},
		{Alpha: 1, P: 0},
		{Alpha: 1, P: 1.5},
		{Alpha: 1, P: 0.05, OmegaLo: -1, OmegaHi: 1},
		{Alpha: 1, P: 0.05, OmegaLo: 1.2, OmegaHi: 0.8},
		{Alpha: 1, P: 0.05, EpsilonLo: 2, EpsilonHi: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := (Config{Alpha: 1, P: 0.05}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNumAdvertisers(t *testing.T) {
	tests := []struct {
		alpha, p float64
		want     int
	}{
		{1.00, 0.01, 100},
		{1.00, 0.05, 20},
		{1.00, 0.20, 5},
		{0.40, 0.02, 20},
		{1.20, 0.10, 12},
		{0.01, 0.20, 1}, // rounds to 0 → clamped to 1
	}
	for _, tt := range tests {
		c := Config{Alpha: tt.alpha, P: tt.p}
		if got := c.NumAdvertisers(); got != tt.want {
			t.Errorf("NumAdvertisers(α=%v, p=%v) = %d, want %d", tt.alpha, tt.p, got, tt.want)
		}
	}
}

func TestGenerateDemandsMatchConfiguration(t *testing.T) {
	u := uniformUniverse(100, 50) // supply 5000
	r := rng.New(11)
	c := Config{Alpha: 1.0, P: 0.05}
	advs, err := Generate(u, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 20 {
		t.Fatalf("|A| = %d, want 20", len(advs))
	}
	var totalDemand int64
	for i, a := range advs {
		// I_i = ⌊ω·5000·0.05⌋ = ⌊ω·250⌋, ω ∈ [0.8, 1.2) → [200, 300).
		if a.Demand < 200 || a.Demand >= 300 {
			t.Errorf("advertiser %d demand %d outside [200, 300)", i, a.Demand)
		}
		// L_i = ⌊ε·I_i⌋, ε ∈ [0.9, 1.1).
		if a.Payment < 0.9*float64(a.Demand)-1 || a.Payment >= 1.1*float64(a.Demand) {
			t.Errorf("advertiser %d payment %v outside ε bounds for demand %d", i, a.Payment, a.Demand)
		}
		totalDemand += a.Demand
	}
	// Global demand ≈ α·I* within the ω noise (mean 1.0).
	if math.Abs(float64(totalDemand)-5000) > 0.15*5000 {
		t.Errorf("total demand %d too far from α·I* = 5000", totalDemand)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	u := uniformUniverse(50, 20)
	c := Config{Alpha: 0.8, P: 0.1}
	a, err := Generate(u, c, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(u, c, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different advertisers at %d", i)
		}
	}
}

func TestGenerateMinimumDemand(t *testing.T) {
	u := uniformUniverse(2, 1) // supply 2: ⌊ω·2·0.01⌋ = 0 → clamped to 1
	advs, err := Generate(u, Config{Alpha: 0.02, P: 0.01}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range advs {
		if a.Demand < 1 {
			t.Fatalf("demand %d < 1", a.Demand)
		}
	}
}

func TestGenerateZeroSupply(t *testing.T) {
	u := coverage.MustUniverse(0, []coverage.List{{}, {}})
	if _, err := Generate(u, Config{Alpha: 1, P: 0.05}, rng.New(1)); err == nil {
		t.Fatal("zero-supply universe accepted")
	}
}

func TestNewInstanceEndToEnd(t *testing.T) {
	u := uniformUniverse(100, 50)
	inst, err := NewInstance(u, Config{Alpha: 1.0, P: 0.05}, DefaultGamma, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumAdvertisers() != 20 {
		t.Fatalf("|A| = %d, want 20", inst.NumAdvertisers())
	}
	if got := inst.DemandSupplyRatio(); math.Abs(got-1.0) > 0.15 {
		t.Errorf("realized α = %v, want ≈ 1.0", got)
	}
	if inst.Gamma() != DefaultGamma {
		t.Errorf("gamma = %v", inst.Gamma())
	}
}

func TestPaperGrids(t *testing.T) {
	if len(Alphas) != 5 || Alphas[3] != DefaultAlpha {
		t.Error("alpha grid wrong")
	}
	if len(Ps) != 5 || Ps[2] != DefaultP {
		t.Error("p grid wrong")
	}
	if len(Gammas) != 5 || Gammas[2] != DefaultGamma {
		t.Error("gamma grid wrong")
	}
	if len(Lambdas) != 4 || Lambdas[1] != DefaultLambda {
		t.Error("lambda grid wrong")
	}
}
