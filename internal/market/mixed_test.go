package market

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMixedConfigValidate(t *testing.T) {
	good := MixedConfig{Alpha: 1, Classes: []Class{
		{P: 0.02, AlphaShare: 0.5},
		{P: 0.10, AlphaShare: 0.5},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []MixedConfig{
		{Alpha: 0, Classes: []Class{{P: 0.05, AlphaShare: 1}}},
		{Alpha: 1},
		{Alpha: 1, Classes: []Class{{P: 0, AlphaShare: 1}}},
		{Alpha: 1, Classes: []Class{{P: 0.05, AlphaShare: 0}}},
		{Alpha: 1, Classes: []Class{{P: 0.05, AlphaShare: 0.7}}},                            // shares != 1
		{Alpha: 1, Classes: []Class{{P: 0.05, AlphaShare: 0.7}, {P: 0.1, AlphaShare: 0.7}}}, // > 1
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateMixedComposition(t *testing.T) {
	u := uniformUniverse(100, 100) // supply 10000
	c := MixedConfig{Alpha: 1, Classes: []Class{
		{P: 0.02, AlphaShare: 0.5}, // 0.5/0.02 = 25 advertisers at ~200 demand
		{P: 0.10, AlphaShare: 0.5}, // 0.5/0.10 = 5 advertisers at ~1000 demand
	}}
	advs, err := GenerateMixed(u, c, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 30 {
		t.Fatalf("|A| = %d, want 30", len(advs))
	}
	small, big := 0, 0
	var totalDemand int64
	for i, a := range advs {
		if a.ID != i {
			t.Fatalf("IDs not dense at %d", i)
		}
		totalDemand += a.Demand
		switch {
		case a.Demand >= 160 && a.Demand < 240:
			small++
		case a.Demand >= 800 && a.Demand < 1200:
			big++
		default:
			t.Fatalf("advertiser %d demand %d matches no class", i, a.Demand)
		}
	}
	if small != 25 || big != 5 {
		t.Fatalf("class counts %d/%d, want 25/5", small, big)
	}
	// Global demand ≈ α·I* = 10000.
	if math.Abs(float64(totalDemand)-10000) > 1500 {
		t.Fatalf("total demand %d too far from 10000", totalDemand)
	}
}

func TestGenerateMixedDeterministic(t *testing.T) {
	u := uniformUniverse(50, 40)
	c := Compositions(1.0)["mixed"]
	a, err := GenerateMixed(u, c, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMixed(u, c, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs at %d", i)
		}
	}
}

func TestCompositions(t *testing.T) {
	comps := Compositions(0.8)
	if len(comps) != 3 {
		t.Fatalf("%d compositions", len(comps))
	}
	for name, c := range comps {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if c.Alpha != 0.8 {
			t.Errorf("%s alpha = %v", name, c.Alpha)
		}
	}
}
