package trajectory

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

func twoPointTraj(x0, y0, x1, y1, dt float64) Trajectory {
	return Trajectory{
		Points:  []geo.Point{{X: x0, Y: y0}, {X: x1, Y: y1}},
		Start:   time.Unix(0, 0).UTC(),
		Offsets: []float64{0, dt},
	}
}

func TestValidate(t *testing.T) {
	good := twoPointTraj(0, 0, 1, 1, 10)
	if err := good.Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	empty := Trajectory{}
	if err := empty.Validate(); err == nil {
		t.Error("empty trajectory accepted")
	}
	badLen := Trajectory{Points: []geo.Point{{}}, Offsets: []float64{0, 1}}
	if err := badLen.Validate(); err == nil {
		t.Error("offset/point length mismatch accepted")
	}
	decreasing := Trajectory{
		Points:  []geo.Point{{}, {}, {}},
		Offsets: []float64{0, 5, 3},
	}
	if err := decreasing.Validate(); err == nil {
		t.Error("decreasing offsets accepted")
	}
	noOffsets := Trajectory{Points: []geo.Point{{}}}
	if err := noOffsets.Validate(); err != nil {
		t.Errorf("nil offsets rejected: %v", err)
	}
}

func TestDistanceAndTravelTime(t *testing.T) {
	tr := twoPointTraj(0, 0, 3, 4, 60)
	if d := tr.Distance(); math.Abs(d-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", d)
	}
	if tt := tr.TravelTime(); tt != 60 {
		t.Errorf("TravelTime = %v, want 60", tt)
	}
	single := Trajectory{Points: []geo.Point{{}}, Offsets: []float64{7}}
	if single.TravelTime() != 0 {
		t.Error("single-point travel time should be 0")
	}
	if (&Trajectory{Points: []geo.Point{{}, {}}}).TravelTime() != 0 {
		t.Error("nil offsets travel time should be 0")
	}
}

func TestNewDBAssignsIDs(t *testing.T) {
	db, err := NewDB([]Trajectory{
		twoPointTraj(0, 0, 1, 0, 5),
		twoPointTraj(0, 0, 0, 2, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.At(0).ID != 0 || db.At(1).ID != 1 {
		t.Error("dense IDs not assigned")
	}
}

func TestNewDBRejectsInvalid(t *testing.T) {
	if _, err := NewDB([]Trajectory{{}}); err == nil {
		t.Error("invalid trajectory accepted by NewDB")
	}
}

func TestComputeStats(t *testing.T) {
	db, err := NewDB([]Trajectory{
		twoPointTraj(0, 0, 3, 4, 10), // dist 5, time 10
		twoPointTraj(0, 0, 0, 1, 30), // dist 1, time 30
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.ComputeStats()
	if s.Count != 2 || s.TotalPoints != 4 {
		t.Errorf("Count/TotalPoints = %d/%d", s.Count, s.TotalPoints)
	}
	if math.Abs(s.AvgDistanceM-3) > 1e-12 {
		t.Errorf("AvgDistanceM = %v, want 3", s.AvgDistanceM)
	}
	if math.Abs(s.AvgTravelTime-20) > 1e-12 {
		t.Errorf("AvgTravelTime = %v, want 20", s.AvgTravelTime)
	}
	empty, _ := NewDB(nil)
	if s := empty.ComputeStats(); s.Count != 0 || s.AvgDistanceM != 0 {
		t.Error("empty db stats should be zero")
	}
}

func TestAllPoints(t *testing.T) {
	db, err := NewDB([]Trajectory{
		twoPointTraj(0, 0, 1, 0, 5),
		{Points: []geo.Point{{X: 9, Y: 9}}, Offsets: []float64{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pts, owner := db.AllPoints()
	if len(pts) != 3 || len(owner) != 3 {
		t.Fatalf("AllPoints lengths %d/%d", len(pts), len(owner))
	}
	if owner[0] != 0 || owner[1] != 0 || owner[2] != 1 {
		t.Errorf("owner = %v", owner)
	}
	if pts[2] != (geo.Point{X: 9, Y: 9}) {
		t.Errorf("pts[2] = %v", pts[2])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db, err := NewDB([]Trajectory{
		twoPointTraj(1.25, 2.5, 100, 200.75, 90),
		{Points: []geo.Point{{X: 5, Y: 6}, {X: 7, Y: 8}, {X: 9, Y: 10}}, Offsets: []float64{0, 30, 61.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), db.Len())
	}
	for id := 0; id < db.Len(); id++ {
		a, b := db.At(id), got.At(id)
		if len(a.Points) != len(b.Points) {
			t.Fatalf("trajectory %d: %d points, want %d", id, len(b.Points), len(a.Points))
		}
		for i := range a.Points {
			if math.Abs(a.Points[i].X-b.Points[i].X) > 0.01 ||
				math.Abs(a.Points[i].Y-b.Points[i].Y) > 0.01 {
				t.Errorf("trajectory %d point %d: got %v, want %v", id, i, b.Points[i], a.Points[i])
			}
			if math.Abs(a.Offsets[i]-b.Offsets[i]) > 0.1 {
				t.Errorf("trajectory %d offset %d: got %v, want %v", id, i, b.Offsets[i], a.Offsets[i])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "a,b,c,d,e\n",
		"short header":   "traj_id,seq\n",
		"bad id":         "traj_id,seq,x,y,offset_seconds\nxx,0,1,2,0\n",
		"bad seq":        "traj_id,seq,x,y,offset_seconds\n0,xx,1,2,0\n",
		"bad x":          "traj_id,seq,x,y,offset_seconds\n0,0,xx,2,0\n",
		"bad y":          "traj_id,seq,x,y,offset_seconds\n0,0,1,xx,0\n",
		"bad offset":     "traj_id,seq,x,y,offset_seconds\n0,0,1,2,xx\n",
		"gap in ids":     "traj_id,seq,x,y,offset_seconds\n0,0,1,2,0\n2,0,1,2,0\n",
		"seq not zero":   "traj_id,seq,x,y,offset_seconds\n0,1,1,2,0\n",
		"seq skips":      "traj_id,seq,x,y,offset_seconds\n0,0,1,2,0\n0,2,1,2,0\n",
		"id goes back":   "traj_id,seq,x,y,offset_seconds\n0,0,1,2,0\n1,0,1,2,0\n0,1,1,2,5\n",
		"offsets shrink": "traj_id,seq,x,y,offset_seconds\n0,0,1,2,9\n0,1,1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV accepted invalid input", name)
		}
	}
}

func TestWriteCSVNilOffsets(t *testing.T) {
	db, err := NewDB([]Trajectory{{Points: []geo.Point{{X: 1, Y: 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0).Offsets[0] != 0 {
		t.Error("nil offsets should serialize as 0")
	}
}
