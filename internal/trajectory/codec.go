package trajectory

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/geo"
)

// The CSV layout is one row per trajectory point:
//
//	traj_id,seq,x,y,offset_seconds
//
// Rows for a trajectory must be contiguous and seq-ordered; trajectory IDs
// must be dense and ascending. A header row is written and expected. Start
// times are serialized as a per-trajectory offset origin only (the influence
// model is time-free); all trajectories share the epoch origin on reload.

var csvHeader = []string{"traj_id", "seq", "x", "y", "offset_seconds"}

// WriteCSV serializes the database to w in the point-per-row CSV layout.
func WriteCSV(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trajectory: write header: %w", err)
	}
	row := make([]string, 5)
	for id := 0; id < db.Len(); id++ {
		t := db.At(id)
		for i, p := range t.Points {
			row[0] = strconv.Itoa(id)
			row[1] = strconv.Itoa(i)
			row[2] = strconv.FormatFloat(p.X, 'f', 2, 64)
			row[3] = strconv.FormatFloat(p.Y, 'f', 2, 64)
			off := 0.0
			if t.Offsets != nil {
				off = t.Offsets[i]
			}
			row[4] = strconv.FormatFloat(off, 'f', 1, 64)
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("trajectory: write row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a database from the point-per-row CSV layout produced by
// WriteCSV.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trajectory: read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trajectory: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trajectory: header column %d is %q, want %q", i, header[i], h)
		}
	}

	var ts []Trajectory
	cur := -1
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trajectory: read: %w", err)
		}
		line++
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad traj_id %q", line, rec[0])
		}
		seq, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad seq %q", line, rec[1])
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad x %q", line, rec[2])
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad y %q", line, rec[3])
		}
		off, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trajectory: line %d: bad offset %q", line, rec[4])
		}

		switch {
		case id == cur+1 && seq == 0:
			cur = id
			ts = append(ts, Trajectory{ID: int32(id), Start: time.Unix(0, 0).UTC()})
		case id == cur:
			if seq != len(ts[cur].Points) {
				return nil, fmt.Errorf("trajectory: line %d: trajectory %d seq %d out of order", line, id, seq)
			}
		default:
			return nil, fmt.Errorf("trajectory: line %d: trajectory id %d not dense/contiguous (current %d)", line, id, cur)
		}
		t := &ts[cur]
		t.Points = append(t.Points, geo.Point{X: x, Y: y})
		t.Offsets = append(t.Offsets, off)
	}
	return NewDB(ts)
}
