// Package trajectory models audience movements: time-stamped point sequences
// in the city-local planar frame, together with the summary statistics the
// paper reports (Table 5) and a CSV codec for persistence.
//
// A trajectory is the unit of influence in the paper: a billboard influences
// a trajectory iff one of its points passes within λ meters of the billboard
// (§7.1.2). The algorithms never look inside a trajectory — they only see
// coverage lists — so this package exists for dataset generation, statistics
// and the spatial join in package influence.
package trajectory

import (
	"fmt"
	"time"

	"repro/internal/geo"
)

// Trajectory is one audience movement: an ordered point sequence with the
// start time and per-point offsets in seconds. Offsets must be
// non-decreasing and Offsets, when non-nil, must have the same length as
// Points.
type Trajectory struct {
	ID      int32
	Points  []geo.Point
	Start   time.Time
	Offsets []float64 // seconds since Start, one per point; may be nil
}

// Validate returns an error if the trajectory is structurally inconsistent.
func (t *Trajectory) Validate() error {
	if len(t.Points) == 0 {
		return fmt.Errorf("trajectory %d: no points", t.ID)
	}
	if t.Offsets != nil {
		if len(t.Offsets) != len(t.Points) {
			return fmt.Errorf("trajectory %d: %d offsets for %d points", t.ID, len(t.Offsets), len(t.Points))
		}
		for i := 1; i < len(t.Offsets); i++ {
			if t.Offsets[i] < t.Offsets[i-1] {
				return fmt.Errorf("trajectory %d: offsets decrease at index %d", t.ID, i)
			}
		}
	}
	return nil
}

// Distance returns the total path length in meters.
func (t *Trajectory) Distance() float64 { return geo.PathLength(t.Points) }

// TravelTime returns the elapsed time from first to last point in seconds,
// or 0 if offsets are absent or the trajectory has fewer than two points.
func (t *Trajectory) TravelTime() float64 {
	if t.Offsets == nil || len(t.Offsets) < 2 {
		return 0
	}
	return t.Offsets[len(t.Offsets)-1] - t.Offsets[0]
}

// DB is an immutable collection of trajectories addressed by dense IDs
// 0..Len()-1.
type DB struct {
	trajectories []Trajectory
}

// NewDB validates the trajectories, assigns dense IDs in slice order, and
// returns the database.
func NewDB(ts []Trajectory) (*DB, error) {
	for i := range ts {
		ts[i].ID = int32(i)
		if err := ts[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &DB{trajectories: ts}, nil
}

// Len returns the number of trajectories.
func (db *DB) Len() int { return len(db.trajectories) }

// At returns the trajectory with the given ID.
func (db *DB) At(id int) *Trajectory { return &db.trajectories[id] }

// Stats summarizes a trajectory database as reported in Table 5.
type Stats struct {
	Count         int
	AvgDistanceM  float64 // mean path length in meters
	AvgTravelTime float64 // mean travel time in seconds
	TotalPoints   int
}

// ComputeStats computes summary statistics over the whole database.
func (db *DB) ComputeStats() Stats {
	s := Stats{Count: db.Len()}
	if s.Count == 0 {
		return s
	}
	var sumDist, sumTime float64
	for i := range db.trajectories {
		t := &db.trajectories[i]
		sumDist += t.Distance()
		sumTime += t.TravelTime()
		s.TotalPoints += len(t.Points)
	}
	s.AvgDistanceM = sumDist / float64(s.Count)
	s.AvgTravelTime = sumTime / float64(s.Count)
	return s
}

// AllPoints returns every point of every trajectory as one flat slice
// together with a parallel slice mapping each point to its trajectory ID.
// This is the layout consumed by the grid spatial index in package influence.
func (db *DB) AllPoints() (points []geo.Point, owner []int32) {
	total := 0
	for i := range db.trajectories {
		total += len(db.trajectories[i].Points)
	}
	points = make([]geo.Point, 0, total)
	owner = make([]int32, 0, total)
	for i := range db.trajectories {
		t := &db.trajectories[i]
		points = append(points, t.Points...)
		for range t.Points {
			owner = append(owner, t.ID)
		}
	}
	return points, owner
}
