// Package influence implements the paper's influence model (§7.1.2): a
// billboard o influences a trajectory t iff some point of t lies within λ
// meters of o.loc, and the influence of a billboard set is the number of
// distinct trajectories it covers.
//
// BuildCoverage performs the spatial join between a trajectory database and
// a billboard database for a given λ, producing the coverage.Universe that
// every algorithm and experiment consumes. The join uses a uniform grid over
// all trajectory points, so each billboard query touches only nearby cells;
// billboards are processed in parallel.
//
// Digital billboards (time-sliced panels, §3.2 Discussion) are supported:
// when a billboard is a DigitalSlot and Options.SlotsPerDay > 0, it only
// influences a trajectory if the within-λ encounter happens during the
// slot's share of the day.
package influence

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/billboard"
	"repro/internal/coverage"
	"repro/internal/geo"
	"repro/internal/trajectory"
)

// IndexKind selects the spatial index used for the radius joins.
type IndexKind uint8

const (
	// GridIndex is the uniform grid (default): fastest when the cell
	// size matches λ.
	GridIndex IndexKind = iota
	// RTreeIndex is the STR-packed R-tree: no tuning parameter, the
	// classical database choice.
	RTreeIndex
)

// Options configures the coverage build.
type Options struct {
	// Lambda is the influence radius in meters (λ in the paper). Must be
	// positive. The paper evaluates λ ∈ {50, 100, 150, 200} with a
	// default of 100 (Table 6).
	Lambda float64
	// CellSize is the grid cell size in meters; 0 selects Lambda
	// (clamped to at least 10 m), which keeps radius queries within a
	// 3×3 cell neighborhood.
	CellSize float64
	// SlotsPerDay enables time filtering for DigitalSlot billboards:
	// slot k of a panel covers only encounters whose time-of-day falls
	// in [k, k+1)·(86400/SlotsPerDay) seconds. 0 disables time
	// filtering and slots behave like static billboards.
	SlotsPerDay int
	// Parallelism bounds the number of concurrent workers; 0 selects
	// GOMAXPROCS.
	Parallelism int
	// Index selects the spatial index (default GridIndex).
	Index IndexKind
}

// DefaultLambda is the paper's default influence radius in meters.
const DefaultLambda = 100

const secondsPerDay = 86400

// BuildCoverage computes, for every billboard, the set of trajectories it
// influences, and returns them as a coverage.Universe.
func BuildCoverage(tdb *trajectory.DB, bdb *billboard.DB, opts Options) (*coverage.Universe, error) {
	if opts.Lambda <= 0 {
		return nil, fmt.Errorf("influence: lambda %v must be positive", opts.Lambda)
	}
	cell := opts.CellSize
	if cell == 0 {
		cell = opts.Lambda
		if cell < 10 {
			cell = 10
		}
	}
	if cell <= 0 {
		return nil, fmt.Errorf("influence: cell size %v must be positive", cell)
	}
	if opts.SlotsPerDay < 0 {
		return nil, fmt.Errorf("influence: slots per day %d must be non-negative", opts.SlotsPerDay)
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	points, owner := tdb.AllPoints()
	var index interface {
		Within(q geo.Point, r float64, dst []int32) []int32
	}
	switch opts.Index {
	case GridIndex:
		index = geo.NewGrid(points, cell)
	case RTreeIndex:
		index = geo.NewRTree(points)
	default:
		return nil, fmt.Errorf("influence: unknown index kind %d", opts.Index)
	}

	// Per-point second-of-day, needed only when time filtering is on.
	var pointTime []float64
	if opts.SlotsPerDay > 0 {
		pointTime = make([]float64, 0, len(points))
		for id := 0; id < tdb.Len(); id++ {
			t := tdb.At(id)
			base := float64(t.Start.Unix() % secondsPerDay)
			for i := range t.Points {
				off := 0.0
				if t.Offsets != nil {
					off = t.Offsets[i]
				}
				sec := base + off
				sec -= float64(int(sec/secondsPerDay)) * secondsPerDay
				pointTime = append(pointTime, sec)
			}
		}
	}

	lists := make([]coverage.List, bdb.Len())
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int32, 0, 1024)
			ids := make([]int32, 0, 256)
			for b := range jobs {
				bb := bdb.At(b)
				buf = index.Within(bb.Loc, opts.Lambda, buf[:0])
				ids = ids[:0]
				for _, pi := range buf {
					if pointTime != nil && bb.Kind == billboard.DigitalSlot {
						if slotOf(pointTime[pi], opts.SlotsPerDay) != int(bb.Slot)%opts.SlotsPerDay {
							continue
						}
					}
					ids = append(ids, owner[pi])
				}
				lists[b] = coverage.NewList(append([]int32(nil), ids...))
			}
		}()
	}
	for b := 0; b < bdb.Len(); b++ {
		jobs <- b
	}
	close(jobs)
	wg.Wait()

	return coverage.NewUniverse(tdb.Len(), lists)
}

// slotOf returns the slot index of a second-of-day under the given division
// of the day.
func slotOf(secOfDay float64, slotsPerDay int) int {
	s := int(secOfDay / (secondsPerDay / float64(slotsPerDay)))
	if s >= slotsPerDay {
		s = slotsPerDay - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}
