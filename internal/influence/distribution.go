package influence

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/coverage"
)

// Distribution computes the series plotted in Figure 1 of the paper.

// SortedInfluences returns every billboard's individual influence I({o}) in
// descending order.
func SortedInfluences(u *coverage.Universe) []int {
	out := make([]int, u.NumBillboards())
	for b := range out {
		out[b] = u.Degree(b)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// NormalizedInfluenceCurve returns Figure 1a's series: the proportion of
// each billboard's influence over the maximum influence, with billboards
// sorted by descending influence. Empty universes yield an empty slice.
func NormalizedInfluenceCurve(u *coverage.Universe) []float64 {
	infl := SortedInfluences(u)
	if len(infl) == 0 || infl[0] == 0 {
		return make([]float64, len(infl))
	}
	max := float64(infl[0])
	out := make([]float64, len(infl))
	for i, v := range infl {
		out[i] = float64(v) / max
	}
	return out
}

// ImpressionCurve returns Figure 1b's series: for each requested fraction
// f ∈ [0, 1] of billboards (taken in descending influence order), the
// fraction of all trajectories covered by that prefix ("impression
// count / total trajectory count").
func ImpressionCurve(u *coverage.Universe, fractions []float64) []float64 {
	order := billboardsByInfluence(u)
	out := make([]float64, len(fractions))
	if u.NumTrajectories() == 0 || len(order) == 0 {
		return out
	}
	// Evaluate incrementally: fractions are processed in ascending order
	// via an index sort, reusing one accumulating bitset.
	idx := make([]int, len(fractions))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fractions[idx[a]] < fractions[idx[b]] })

	bs := bitset.New(u.NumIDs())
	taken := 0
	total := float64(u.NumTrajectories())
	for _, fi := range idx {
		want := int(fractions[fi] * float64(len(order)))
		if want > len(order) {
			want = len(order)
		}
		for taken < want {
			bs.SetIDs(u.List(order[taken]))
			taken++
		}
		out[fi] = float64(u.WeightSum(bs)) / total
	}
	return out
}

// billboardsByInfluence returns billboard IDs sorted by descending
// individual influence (ties broken by ID for determinism).
func billboardsByInfluence(u *coverage.Universe) []int {
	order := make([]int, u.NumBillboards())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := u.Degree(order[a]), u.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// OverlapRatio quantifies how much the top-k billboards' coverage overlaps:
// 1 − |union| / Σ|individual|. 0 means disjoint coverage; values near 1 mean
// heavy overlap. The paper's NYC dataset exhibits much higher overlap than
// SG (Figure 1b discussion); dataset generator tests assert this property.
func OverlapRatio(u *coverage.Universe, k int) float64 {
	order := billboardsByInfluence(u)
	if k > len(order) {
		k = len(order)
	}
	if k <= 0 {
		return 0
	}
	sum := 0
	for _, b := range order[:k] {
		sum += u.Degree(b)
	}
	if sum == 0 {
		return 0
	}
	union := u.UnionCount(order[:k])
	return 1 - float64(union)/float64(sum)
}
