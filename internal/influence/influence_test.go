package influence

import (
	"math"
	"testing"
	"time"

	"repro/internal/billboard"
	"repro/internal/coverage"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trajectory"
)

func makeTDB(t *testing.T, trajs []trajectory.Trajectory) *trajectory.DB {
	t.Helper()
	db, err := trajectory.NewDB(trajs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildCoverageBasic(t *testing.T) {
	// Billboard at origin with λ=100; three trajectories: one passing at
	// 50m, one at 150m, one crossing through.
	tdb := makeTDB(t, []trajectory.Trajectory{
		{Points: []geo.Point{{X: 50, Y: 0}, {X: 50, Y: 500}}},
		{Points: []geo.Point{{X: 150, Y: 0}, {X: 150, Y: 500}}},
		{Points: []geo.Point{{X: -500, Y: 0}, {X: 0, Y: 0}, {X: 500, Y: 0}}},
	})
	bdb := billboard.NewDB([]billboard.Billboard{{Loc: geo.Point{X: 0, Y: 0}}})
	u, err := BuildCoverage(tdb, bdb, Options{Lambda: 100})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumBillboards() != 1 || u.NumTrajectories() != 3 {
		t.Fatalf("dims %d/%d", u.NumBillboards(), u.NumTrajectories())
	}
	l := u.List(0)
	if len(l) != 2 || !l.Contains(0) || !l.Contains(2) {
		t.Fatalf("coverage list = %v, want [0 2]", l)
	}
}

func TestBuildCoverageLambdaMonotone(t *testing.T) {
	// Larger λ can only grow coverage (for static billboards).
	r := rng.New(4)
	trajs := make([]trajectory.Trajectory, 100)
	for i := range trajs {
		pts := make([]geo.Point, 5)
		x, y := r.Range(0, 2000), r.Range(0, 2000)
		for j := range pts {
			pts[j] = geo.Point{X: x + r.Range(-300, 300), Y: y + r.Range(-300, 300)}
		}
		trajs[i] = trajectory.Trajectory{Points: pts}
	}
	tdb := makeTDB(t, trajs)
	bills := make([]billboard.Billboard, 20)
	for i := range bills {
		bills[i] = billboard.Billboard{Loc: geo.Point{X: r.Range(0, 2000), Y: r.Range(0, 2000)}}
	}
	bdb := billboard.NewDB(bills)

	var prev *coverage.Universe
	for _, lambda := range []float64{50, 100, 150, 200} {
		u, err := BuildCoverage(tdb, bdb, Options{Lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for b := 0; b < u.NumBillboards(); b++ {
				if u.Degree(b) < prev.Degree(b) {
					t.Fatalf("λ=%v billboard %d coverage shrank: %d < %d",
						lambda, b, u.Degree(b), prev.Degree(b))
				}
				for _, id := range prev.List(b) {
					if !u.List(b).Contains(id) {
						t.Fatalf("λ=%v billboard %d lost trajectory %d", lambda, b, id)
					}
				}
			}
		}
		prev = u
	}
}

func TestBuildCoverageMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	trajs := make([]trajectory.Trajectory, 60)
	for i := range trajs {
		n := 2 + r.Intn(6)
		pts := make([]geo.Point, n)
		for j := range pts {
			pts[j] = geo.Point{X: r.Range(0, 1500), Y: r.Range(0, 1500)}
		}
		trajs[i] = trajectory.Trajectory{Points: pts}
	}
	tdb := makeTDB(t, trajs)
	bills := make([]billboard.Billboard, 15)
	for i := range bills {
		bills[i] = billboard.Billboard{Loc: geo.Point{X: r.Range(0, 1500), Y: r.Range(0, 1500)}}
	}
	bdb := billboard.NewDB(bills)
	const lambda = 120
	u, err := BuildCoverage(tdb, bdb, Options{Lambda: lambda, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bdb.Len(); b++ {
		want := map[int32]bool{}
		for id := 0; id < tdb.Len(); id++ {
			for _, p := range tdb.At(id).Points {
				if p.Dist(bdb.At(b).Loc) <= lambda {
					want[int32(id)] = true
					break
				}
			}
		}
		got := u.List(b)
		if len(got) != len(want) {
			t.Fatalf("billboard %d: %d covered, want %d", b, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("billboard %d wrongly covers %d", b, id)
			}
		}
	}
}

func TestBuildCoverageOptionsValidation(t *testing.T) {
	tdb := makeTDB(t, []trajectory.Trajectory{{Points: []geo.Point{{}}}})
	bdb := billboard.NewDB([]billboard.Billboard{{}})
	if _, err := BuildCoverage(tdb, bdb, Options{Lambda: 0}); err == nil {
		t.Error("lambda=0 accepted")
	}
	if _, err := BuildCoverage(tdb, bdb, Options{Lambda: -5}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := BuildCoverage(tdb, bdb, Options{Lambda: 100, SlotsPerDay: -1}); err == nil {
		t.Error("negative slots accepted")
	}
}

func TestBuildCoverageEmptyInputs(t *testing.T) {
	tdb := makeTDB(t, nil)
	bdb := billboard.NewDB(nil)
	u, err := BuildCoverage(tdb, bdb, Options{Lambda: 100})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumBillboards() != 0 || u.NumTrajectories() != 0 {
		t.Error("empty build should yield empty universe")
	}
}

func TestDigitalSlotTimeFiltering(t *testing.T) {
	// One trajectory passing the panel in the morning (08:00), another in
	// the evening (20:00). With 2 slots/day, slot 0 covers [00:00,12:00)
	// and slot 1 covers [12:00,24:00).
	morning := time.Date(2020, 1, 1, 8, 0, 0, 0, time.UTC)
	evening := time.Date(2020, 1, 1, 20, 0, 0, 0, time.UTC)
	tdb := makeTDB(t, []trajectory.Trajectory{
		{Points: []geo.Point{{X: 0, Y: 0}}, Start: morning, Offsets: []float64{0}},
		{Points: []geo.Point{{X: 0, Y: 0}}, Start: evening, Offsets: []float64{0}},
	})
	static := billboard.NewDB([]billboard.Billboard{{Loc: geo.Point{X: 0, Y: 0}}})
	panels, err := static.ExpandDigital([]int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := BuildCoverage(tdb, panels, Options{Lambda: 50, SlotsPerDay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumBillboards() != 2 {
		t.Fatalf("want 2 slot billboards, got %d", u.NumBillboards())
	}
	if !u.List(0).Contains(0) || u.List(0).Contains(1) {
		t.Errorf("slot 0 coverage = %v, want morning only", u.List(0))
	}
	if !u.List(1).Contains(1) || u.List(1).Contains(0) {
		t.Errorf("slot 1 coverage = %v, want evening only", u.List(1))
	}
	// Without time filtering both slots cover both trajectories.
	u2, err := BuildCoverage(tdb, panels, Options{Lambda: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.List(0)) != 2 || len(u2.List(1)) != 2 {
		t.Error("slots should behave as static when filtering is off")
	}
}

func TestSlotOf(t *testing.T) {
	if slotOf(0, 2) != 0 || slotOf(43199, 2) != 0 || slotOf(43200, 2) != 1 || slotOf(86399, 2) != 1 {
		t.Error("slotOf boundaries wrong")
	}
	if slotOf(86400, 2) != 1 { // clamped
		t.Error("slotOf should clamp overflow")
	}
}

func TestNormalizedInfluenceCurve(t *testing.T) {
	u := coverage.MustUniverse(10, []coverage.List{
		{0, 1, 2, 3}, // degree 4
		{4, 5},       // degree 2
		{6},          // degree 1
	})
	got := NormalizedInfluenceCurve(u)
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("curve = %v, want %v", got, want)
		}
	}
	empty := coverage.MustUniverse(0, nil)
	if len(NormalizedInfluenceCurve(empty)) != 0 {
		t.Error("empty universe should give empty curve")
	}
	allZero := coverage.MustUniverse(5, []coverage.List{{}, {}})
	z := NormalizedInfluenceCurve(allZero)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero-influence universe should give zero curve")
	}
}

func TestImpressionCurve(t *testing.T) {
	// 10 trajectories; top billboard covers 0-4, second covers 3-7
	// (overlap 3,4), third covers 9.
	u := coverage.MustUniverse(10, []coverage.List{
		{0, 1, 2, 3, 4},
		{3, 4, 5, 6, 7},
		{9},
	})
	got := ImpressionCurve(u, []float64{0, 1.0 / 3, 2.0 / 3, 1})
	want := []float64{0, 0.5, 0.8, 0.9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ImpressionCurve = %v, want %v", got, want)
		}
	}
	// Fractions given out of order must map back to their positions.
	got2 := ImpressionCurve(u, []float64{1, 0})
	if got2[0] != 0.9 || got2[1] != 0 {
		t.Fatalf("unordered fractions mishandled: %v", got2)
	}
}

func TestImpressionCurveMonotone(t *testing.T) {
	r := rng.New(31)
	lists := make([]coverage.List, 40)
	for i := range lists {
		ids := make([]int32, r.Intn(30))
		for j := range ids {
			ids[j] = int32(r.Intn(500))
		}
		lists[i] = coverage.NewList(ids)
	}
	u := coverage.MustUniverse(500, lists)
	fr := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	c := ImpressionCurve(u, fr)
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1] {
			t.Fatalf("impression curve not monotone: %v", c)
		}
	}
	if c[len(c)-1] > 1 {
		t.Fatalf("impression curve exceeds 1: %v", c)
	}
}

func TestOverlapRatio(t *testing.T) {
	disjoint := coverage.MustUniverse(10, []coverage.List{{0, 1}, {2, 3}})
	if got := OverlapRatio(disjoint, 2); got != 0 {
		t.Errorf("disjoint overlap = %v, want 0", got)
	}
	identical := coverage.MustUniverse(10, []coverage.List{{0, 1}, {0, 1}})
	if got := OverlapRatio(identical, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("identical overlap = %v, want 0.5", got)
	}
	if got := OverlapRatio(identical, 0); got != 0 {
		t.Errorf("k=0 overlap = %v, want 0", got)
	}
	if got := OverlapRatio(identical, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("k beyond size should clamp: %v", got)
	}
	empty := coverage.MustUniverse(5, []coverage.List{{}, {}})
	if got := OverlapRatio(empty, 2); got != 0 {
		t.Errorf("zero-coverage overlap = %v, want 0", got)
	}
}

func TestRTreeIndexMatchesGrid(t *testing.T) {
	r := rng.New(404)
	trajs := make([]trajectory.Trajectory, 80)
	for i := range trajs {
		pts := make([]geo.Point, 4)
		for j := range pts {
			pts[j] = geo.Point{X: r.Range(0, 2000), Y: r.Range(0, 2000)}
		}
		trajs[i] = trajectory.Trajectory{Points: pts}
	}
	tdb := makeTDB(t, trajs)
	bills := make([]billboard.Billboard, 25)
	for i := range bills {
		bills[i] = billboard.Billboard{Loc: geo.Point{X: r.Range(0, 2000), Y: r.Range(0, 2000)}}
	}
	bdb := billboard.NewDB(bills)
	grid, err := BuildCoverage(tdb, bdb, Options{Lambda: 150, Index: GridIndex})
	if err != nil {
		t.Fatal(err)
	}
	rtree, err := BuildCoverage(tdb, bdb, Options{Lambda: 150, Index: RTreeIndex})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bdb.Len(); b++ {
		lg, lr := grid.List(b), rtree.List(b)
		if len(lg) != len(lr) {
			t.Fatalf("billboard %d: grid %d vs rtree %d trajectories", b, len(lg), len(lr))
		}
		for i := range lg {
			if lg[i] != lr[i] {
				t.Fatalf("billboard %d: coverage differs at %d", b, i)
			}
		}
	}
}

func TestUnknownIndexRejected(t *testing.T) {
	tdb := makeTDB(t, []trajectory.Trajectory{{Points: []geo.Point{{}}}})
	bdb := billboard.NewDB([]billboard.Billboard{{}})
	if _, err := BuildCoverage(tdb, bdb, Options{Lambda: 100, Index: IndexKind(9)}); err == nil {
		t.Fatal("unknown index kind accepted")
	}
}
