package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request IDs tie a served request's admission decision, its solver trace
// events and its structured log line together. An ID is a random per-process
// prefix plus a monotonic sequence number — unique across restarts of the
// same daemon (fresh prefix) and trivially ordered within one process, while
// staying cheap enough to mint on the admission hot path (one atomic add).

var reqIDPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// fixed prefix rather than failing admission.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var reqIDSeq atomic.Uint64

// NewRequestID mints a process-unique request ID such as "3fa95c1b-000042".
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

type reqIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "" when absent.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
