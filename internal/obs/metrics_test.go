package obs

import (
	"bytes"
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry builds a registry with every primitive and deterministic
// values, so the rendered exposition is byte-stable.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("demo_requests_total", "Requests served.")
	c.Add(41)
	c.Inc()
	v := r.CounterVec("demo_solves_total", "Solves by algorithm.", "algorithm")
	v.With("BLS").Add(7)
	v.With("ALS").Add(3)
	v.With(`we"ird\nam
e`).Inc() // exercises label escaping
	h := r.Histogram("demo_latency_seconds", "Latency with a\nnewline in help.", []float64{0.1, 0.5, 2.5})
	for _, x := range []float64{0.05, 0.05, 0.3, 1, 10} {
		h.Observe(x)
	}
	hv := r.HistogramVec("demo_phase_seconds", "Phase latency by phase.", []float64{0.01, 0.1, 1}, "phase")
	for _, x := range []float64{0.005, 0.05, 0.5} {
		hv.With("queue").Observe(x)
	}
	hv.With("solve").Observe(2)
	r.GaugeFunc("demo_temperature", "A gauge.", func() float64 { return 36.5 })
	g := r.GaugeVec("demo_inflight", "In-flight work by lane.", "lane")
	g.With("fast").Add(3)
	g.With("slow").Add(5)
	g.With("slow").Add(-1)
	return r
}

// TestWritePrometheusGolden locks the exposition byte-for-byte against the
// checked-in golden file, and cross-checks it with ValidateExposition so
// the golden itself can never drift into invalid text format.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("rendered exposition invalid: %v\n%s", err, buf.Bytes())
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionStructure asserts the invariants the scrape contract
// promises: HELP/TYPE pairs for every family, monotone cumulative buckets,
// and a le="+Inf" bucket equal to _count.
func TestExpositionStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP demo_latency_seconds",
		"# TYPE demo_latency_seconds histogram",
		`demo_latency_seconds_bucket{le="+Inf"} 5`,
		"demo_latency_seconds_count 5",
		`demo_solves_total{algorithm="BLS"} 7`,
		"# TYPE demo_temperature gauge",
		"# TYPE demo_phase_seconds histogram",
		`demo_phase_seconds_bucket{phase="queue",le="+Inf"} 3`,
		`demo_phase_seconds_count{phase="queue"} 3`,
		`demo_phase_seconds_bucket{phase="solve",le="1"} 0`,
		`demo_phase_seconds_count{phase="solve"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestValidateExpositionRejectsMalformed: the validator must catch the
// failure shapes it exists for.
func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample without TYPE", "foo_total 3\n"},
		{"TYPE without HELP", "# TYPE foo_total counter\nfoo_total 3\n"},
		{"unknown kind", "# HELP foo_total x\n# TYPE foo_total summary\nfoo_total 3\n"},
		{"duplicate family", "# HELP a x\n# TYPE a counter\na 1\n# HELP a x\n# TYPE a counter\na 1\n"},
		{"non-cumulative buckets", "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n"},
		{"missing +Inf", "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 1\nh_count 2\n"},
		{"+Inf != count", "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n"},
		{"unparseable le", "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="wat"} 2` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n"},
		{"unparseable value", "# HELP f x\n# TYPE f counter\nf nope\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition([]byte(tc.text)); err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.text)
		}
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; under -race this proves Observe is data-race free, and the
// exact _count/_sum equalities prove no observation is lost or double
// counted (the values are dyadic rationals, so the float sum is exact in
// any addition order).
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_h", "x", []float64{1, 2, 4})
	const goroutines, per = 16, 2000
	vals := []float64{0.5, 1.5, 2.25, 8}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(vals[(g+i)%len(vals)])
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * per
	if h.Count() != total {
		t.Errorf("count %d != %d", h.Count(), total)
	}
	var wantSum float64
	for _, v := range vals {
		wantSum += v * total / float64(len(vals))
	}
	if h.Sum() != wantSum {
		t.Errorf("sum %v != %v", h.Sum(), wantSum)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("exposition after concurrent observes invalid: %v\n%s", err, buf.Bytes())
	}
	// Every bucket boundary is deterministic too: per value class,
	// total/len(vals) observations landed in a known bucket.
	if !strings.Contains(buf.String(), "t_h_count 32000") {
		t.Errorf("missing exact count in exposition:\n%s", buf.String())
	}
}

// TestCounterVecConcurrentWith: concurrent first-touch of the same and
// different label values must neither race nor lose increments.
func TestCounterVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_v", "x", "who")
	labels := []string{"a", "b", "c"}
	const goroutines, per = 12, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.With(labels[(g+i)%len(labels)]).Inc()
			}
		}(g)
	}
	wg.Wait()
	var sum int64
	v.Each(func(_ []string, n int64) { sum += n })
	if sum != goroutines*per {
		t.Errorf("total %d != %d", sum, goroutines*per)
	}
}

// TestCounterVecDelete: a deleted child disappears from Each and the
// exposition, and a later With starts a fresh series at zero.
func TestCounterVecDelete(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_del", "x", "who")
	v.With("keep").Add(3)
	v.With("drop").Add(5)
	v.Delete("drop")
	v.Delete("never-existed") // no-op

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `t_del{who="keep"} 3`) {
		t.Errorf("kept series missing:\n%s", out)
	}
	if strings.Contains(out, "drop") {
		t.Errorf("deleted series still exposed:\n%s", out)
	}
	if got := v.With("drop").Value(); got != 0 {
		t.Errorf("recreated child starts at %d, want 0", got)
	}
}

// TestRegistryPanics: misuse (duplicate names, bad names, reserved labels,
// bad buckets) must fail loudly at registration time, not at scrape time.
// TestGaugeVec covers the labeled-gauge family: Add returns the new value
// (the atomic reserve-then-check contract admission control relies on),
// Delete retires a series from the exposition, and concurrent With/Add on
// one child never loses an update.
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("jobs_inflight", "Jobs in flight by queue.", "queue")

	if got := v.With("a").Add(1); got != 1 {
		t.Errorf("first Add returned %d, want 1", got)
	}
	if got := v.With("a").Add(2); got != 3 {
		t.Errorf("second Add returned %d, want 3", got)
	}
	if got := v.With("a").Add(-3); got != 0 {
		t.Errorf("drain returned %d, want 0", got)
	}
	v.With("b").Set(7)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.Bytes())
	}
	for _, want := range []string{
		"# TYPE jobs_inflight gauge",
		`jobs_inflight{queue="a"} 0`,
		`jobs_inflight{queue="b"} 7`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}

	v.Delete("b")
	v.Delete("nonexistent") // no-op
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `queue="b"`) {
		t.Errorf("deleted series still rendered:\n%s", buf.String())
	}

	// Concurrent increments across goroutines must all land.
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v.With("hot").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := v.With("hot").Value(); got != workers*perWorker {
		t.Errorf("hot gauge %d, want %d", got, workers*perWorker)
	}

	// Label arity mismatches panic like CounterVec's.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("With with wrong arity did not panic")
			}
		}()
		v.With("a", "b")
	}()
}

// TestHistogramVecConcurrent hammers two children of one labeled histogram
// family from many goroutines: no observation may be lost (exact per-series
// _count equalities), the rendered exposition must stay valid per series,
// and concurrent first-touch With of the same label set must not race.
func TestHistogramVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("t_hv", "x", []float64{1, 2, 4}, "phase")
	phases := []string{"queue", "solve"}
	const goroutines, per = 12, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.With(phases[(g+i)%len(phases)]).Observe(float64(i % 5))
			}
		}(g)
	}
	wg.Wait()

	var total int64
	v.Each(func(_ []string, h *Histogram) { total += h.Count() })
	if total != goroutines*per {
		t.Errorf("total observations %d, want %d", total, goroutines*per)
	}
	if got := v.With("queue").Count() + v.With("solve").Count(); got != goroutines*per {
		t.Errorf("per-series counts sum to %d, want %d", got, goroutines*per)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("exposition after concurrent observes invalid: %v\n%s", err, buf.Bytes())
	}
	// Label arity mismatches panic like CounterVec's.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("With with wrong arity did not panic")
			}
		}()
		v.With("a", "b")
	}()
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("ok_total", "x")
	expectPanic("dup name", func() { r.Counter("ok_total", "x") })
	expectPanic("bad metric name", func() { r.Counter("0bad", "x") })
	expectPanic("reserved le label", func() { r.CounterVec("v_total", "x", "le") })
	expectPanic("unsorted buckets", func() { r.Histogram("h1", "x", []float64{2, 1}) })
	expectPanic("empty buckets", func() { r.Histogram("h2", "x", nil) })
	expectPanic("wrong label arity", func() { r.CounterVec("v2_total", "x", "a").With("1", "2") })
	expectPanic("bad ExpBuckets", func() { ExpBuckets(0, 2, 3) })
}

// TestHandlerContentType: the /metrics handler must advertise the text
// exposition version Prometheus scrapers negotiate on.
func TestHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", got)
	}
	if err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Errorf("handler output invalid: %v", err)
	}
}

// TestRequestIDs: unique, monotone within a process, and round-trip
// through a context.
func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("consecutive IDs equal: %s", a)
	}
	if len(a) != len("00000000-000000") {
		t.Errorf("unexpected ID shape %q", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Errorf("round-trip %q != %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("empty context yielded %q", got)
	}
}
