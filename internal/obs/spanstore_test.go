package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func servedRecord(id string, d time.Duration) *TraceRecord {
	return &TraceRecord{TraceID: id, Duration: d, Outcome: "served", Status: 200}
}

func TestSpanStoreBoundAndLookup(t *testing.T) {
	s := NewSpanStore(4, 1) // keepSlowest=1: keep every served trace
	for i := 0; i < 10; i++ {
		s.Add(servedRecord(fmt.Sprintf("t%02d", i), time.Millisecond))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", s.Len())
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot has %d records, want 4", len(snap))
	}
	// Newest first; the ring retains only the last four adds.
	for i, want := range []string{"t09", "t08", "t07", "t06"} {
		if snap[i].TraceID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, snap[i].TraceID, want)
		}
	}
	if _, ok := s.Get("t00"); ok {
		t.Error("evicted record still retrievable")
	}
	if rec, ok := s.Get("t08"); !ok || rec.TraceID != "t08" {
		t.Errorf("Get(t08) = %v, %v", rec, ok)
	}
	if s.Kept() != 10 || s.SampledOut() != 0 {
		t.Errorf("Kept=%d SampledOut=%d, want 10,0", s.Kept(), s.SampledOut())
	}
}

func TestSpanStorePartialRing(t *testing.T) {
	s := NewSpanStore(8, 1)
	s.Add(servedRecord("only", time.Millisecond))
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].TraceID != "only" {
		t.Fatalf("Snapshot = %v", snap)
	}
}

// TestSpanStoreTailSampling drives the store past warmup with a bimodal
// served-duration distribution and checks that sampling keeps the slow mode,
// drops most of the fast mode, and counts every drop.
func TestSpanStoreTailSampling(t *testing.T) {
	s := NewSpanStore(4096, 0.25)
	var events, keptEvents int
	s.OnEvent = func(kept bool) {
		events++
		if kept {
			keptEvents++
		}
	}
	const fast, slow = 1200, 300
	fastKept := 0
	for i := 0; i < fast; i++ {
		if s.Add(servedRecord(fmt.Sprintf("fast%04d", i), 500*time.Microsecond)) {
			fastKept++
		}
	}
	slowKept := 0
	for i := 0; i < slow; i++ {
		if s.Add(servedRecord(fmt.Sprintf("slow%04d", i), 2*time.Second)) {
			slowKept++
		}
	}
	if slowKept != slow {
		t.Errorf("slow-tail traces kept %d/%d, want all", slowKept, slow)
	}
	// The fast mode sits well below the 75th percentile once warmup ends;
	// only warmup and quantile-drift stragglers may survive.
	if fastKept > fast/2 {
		t.Errorf("fast traces kept %d/%d, sampling not engaging", fastKept, fast)
	}
	if fastKept < sampleWarmup {
		t.Errorf("fast traces kept %d, want at least warmup %d", fastKept, sampleWarmup)
	}
	wantKept := int64(fastKept + slowKept)
	if s.Kept() != wantKept || s.SampledOut() != int64(fast+slow)-wantKept {
		t.Errorf("Kept=%d SampledOut=%d, want %d,%d", s.Kept(), s.SampledOut(), wantKept, int64(fast+slow)-wantKept)
	}
	if events != fast+slow || keptEvents != int(wantKept) {
		t.Errorf("OnEvent saw %d/%d kept, want %d/%d", keptEvents, events, wantKept, fast+slow)
	}
}

// TestSpanStoreKeepsInterestingUnderBurst is the satellite guarantee: under a
// burst where sheds and errors interleave with a flood of fast successes,
// every non-served trace is retained (until ring eviction) and the ring never
// exceeds its bound.
func TestSpanStoreKeepsInterestingUnderBurst(t *testing.T) {
	const capacity = 512
	s := NewSpanStore(capacity, 0.1)
	outcomes := []string{"shed_queue_full", "shed_deadline", "error", "served_truncated"}
	interesting := 0
	for i := 0; i < 2000; i++ {
		if i%5 == 0 { // every fifth request fails; 400 interesting < capacity
			rec := &TraceRecord{
				TraceID: fmt.Sprintf("bad%04d", i),
				Outcome: outcomes[i%len(outcomes)],
				Status:  429,
			}
			if !s.Add(rec) {
				t.Fatalf("interesting record %s sampled out", rec.TraceID)
			}
			interesting++
		} else {
			s.Add(servedRecord(fmt.Sprintf("ok%04d", i), 200*time.Microsecond))
		}
	}
	if s.Len() > capacity {
		t.Fatalf("ring holds %d > capacity %d", s.Len(), capacity)
	}
	// All interesting traces fit in the ring alongside the kept successes
	// only if evictions didn't push them out — count what survived.
	got := 0
	for _, rec := range s.Snapshot() {
		if rec.interesting() {
			got++
		}
	}
	// The last `capacity` kept records include every interesting record in
	// that window; with 1-in-5 interesting and most successes sampled out,
	// the overwhelming majority of ring slots should be interesting.
	if got < capacity/2 {
		t.Errorf("only %d/%d ring slots hold interesting traces", got, capacity)
	}
}

// TestSpanStoreConcurrent is the -race hammer: writers adding records while
// readers snapshot, look up and count — the access pattern of request
// handlers racing /debug/traces scrapes.
func TestSpanStoreConcurrent(t *testing.T) {
	s := NewSpanStore(64, 0.5)
	var stored, dropped int64
	var mu sync.Mutex
	s.OnEvent = func(kept bool) {
		mu.Lock()
		if kept {
			stored++
		} else {
			dropped++
		}
		mu.Unlock()
	}
	const writers, perWriter, readers = 8, 500, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range s.Snapshot() {
					if rec.TraceID == "" {
						t.Error("snapshot surfaced zero record")
						return
					}
				}
				s.Get("w3-0042")
				_ = s.Len()
				_, _ = s.Kept(), s.SampledOut()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := servedRecord(fmt.Sprintf("w%d-%04d", w, i), time.Duration(i%7)*time.Millisecond)
				if i%11 == 0 {
					rec.Outcome = "shed_queue_full"
				}
				s.Add(rec)
			}
		}(w)
	}
	// Writers finish first, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		mu.Lock()
		n := stored + dropped
		mu.Unlock()
		if n == writers*perWriter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	if s.Len() > 64 {
		t.Errorf("ring over bound: %d", s.Len())
	}
	mu.Lock()
	defer mu.Unlock()
	if stored+dropped != writers*perWriter {
		t.Errorf("events %d, want %d", stored+dropped, writers*perWriter)
	}
	if s.Kept() != stored || s.SampledOut() != dropped {
		t.Errorf("counters Kept=%d SampledOut=%d, events %d/%d", s.Kept(), s.SampledOut(), stored, dropped)
	}
}

func TestSpanStoreDefaults(t *testing.T) {
	s := NewSpanStore(0, 0)
	if s.Cap() != 1 {
		t.Errorf("Cap = %d, want clamped 1", s.Cap())
	}
	if s.keepSlowest != DefaultTraceKeepSlowest {
		t.Errorf("keepSlowest = %v, want default %v", s.keepSlowest, DefaultTraceKeepSlowest)
	}
	if s2 := NewSpanStore(10, 7); s2.keepSlowest != 1 {
		t.Errorf("keepSlowest = %v, want clamped 1", s2.keepSlowest)
	}
}
