package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// TraceWriter implements core.Tracer by writing one JSON object per line
// (JSONL), giving `mroam solve -trace out.jsonl` the regret-vs-time
// trajectory the paper's convergence figures are drawn from. The improved
// events form a monotone non-increasing best-regret series (the engine
// serializes them in strictly decreasing regret order); restart_start /
// restart_done events carry the per-slot schedule, and the final done
// record (written by Done) aggregates evals and gain-cache counters.
//
// All methods are safe for concurrent use — the restart loop invokes the
// tracer from every worker goroutine.
type TraceWriter struct {
	mu       sync.Mutex
	w        io.Writer
	err      error
	evals    atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	rescans  atomic.Int64
	improved atomic.Int64
}

// NewTraceWriter returns a TraceWriter emitting JSONL to w. The caller
// owns w (and should buffer it; every event is one Write).
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w}
}

// traceEvent is the JSONL record schema. Pointer fields are omitted on
// events they do not apply to.
type traceEvent struct {
	Event     string   `json:"event"`
	TMS       *float64 `json:"t_ms,omitempty"`
	Slot      *int     `json:"slot,omitempty"`
	Regret    *float64 `json:"regret,omitempty"`
	Evals     *int64   `json:"evals,omitempty"`
	Algorithm string   `json:"algorithm,omitempty"`
	Seed      *uint64  `json:"seed,omitempty"`
	Restarts  *int     `json:"restarts,omitempty"`
	Truncated *bool    `json:"truncated,omitempty"`
	Hits      *int64   `json:"cache_hits,omitempty"`
	Misses    *int64   `json:"cache_misses,omitempty"`
	Rescans   *int64   `json:"cache_rescans,omitempty"`
}

func (t *TraceWriter) write(ev traceEvent) {
	line, err := json.Marshal(ev)
	if err != nil { // unreachable for this schema; recorded for symmetry
		t.mu.Lock()
		if t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	if t.err == nil {
		_, t.err = t.w.Write(line)
	}
	t.mu.Unlock()
}

func ms(d time.Duration) *float64 {
	v := float64(d.Microseconds()) / 1e3
	return &v
}

// Start writes the header record identifying the solve.
func (t *TraceWriter) Start(algorithm string, seed uint64, restarts int) {
	t.write(traceEvent{Event: "start", Algorithm: algorithm, Seed: &seed, Restarts: &restarts})
}

// RestartStart implements core.Tracer.
func (t *TraceWriter) RestartStart(slot int, elapsed time.Duration) {
	t.write(traceEvent{Event: "restart_start", Slot: &slot, TMS: ms(elapsed)})
}

// RestartDone implements core.Tracer.
func (t *TraceWriter) RestartDone(slot int, regret float64, evals int64, elapsed time.Duration) {
	t.write(traceEvent{Event: "restart_done", Slot: &slot, Regret: &regret, Evals: &evals, TMS: ms(elapsed)})
}

// Improved implements core.Tracer.
func (t *TraceWriter) Improved(slot int, regret float64, elapsed time.Duration) {
	t.improved.Add(1)
	t.write(traceEvent{Event: "improved", Slot: &slot, Regret: &regret, TMS: ms(elapsed)})
}

// Evals implements core.Tracer; deltas are aggregated into the done record.
func (t *TraceWriter) Evals(delta int64) { t.evals.Add(delta) }

// Cache implements core.Tracer; deltas are aggregated into the done record.
func (t *TraceWriter) Cache(delta core.CacheStats) {
	t.hits.Add(delta.Hits)
	t.misses.Add(delta.Misses)
	t.rescans.Add(delta.Rescans)
}

// Improvements returns how many improved events have been written.
func (t *TraceWriter) Improvements() int64 { return t.improved.Load() }

// Done writes the trailing record carrying the solve's final (reduced)
// regret and the aggregated work counters, and returns the first write
// error encountered, if any. If the solve emitted no per-restart events
// (the greedy algorithms have no restart loop), the done record is still
// written, so a trace file is never empty.
func (t *TraceWriter) Done(res *core.Anytime, elapsed time.Duration) error {
	evals := t.evals.Load()
	if evals == 0 {
		evals = res.Evals
	}
	hits, misses, rescans := t.hits.Load(), t.misses.Load(), t.rescans.Load()
	if hits == 0 && misses == 0 && rescans == 0 {
		hits, misses, rescans = res.Cache.Hits, res.Cache.Misses, res.Cache.Rescans
	}
	t.write(traceEvent{
		Event:     "done",
		TMS:       ms(elapsed),
		Regret:    &res.TotalRegret,
		Evals:     &evals,
		Truncated: &res.Truncated,
		Hits:      &hits,
		Misses:    &misses,
		Rescans:   &rescans,
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// LogTracer implements core.Tracer by logging solver progress events at
// Debug level, carrying whatever attributes the logger was bound with
// (typically the request ID). Counter deltas (Evals, Cache) are not
// logged per-slot; they surface in the per-request summary line instead.
type LogTracer struct {
	L *slog.Logger
}

// RestartStart implements core.Tracer.
func (t LogTracer) RestartStart(slot int, elapsed time.Duration) {
	t.L.Debug("restart start", "slot", slot, "t_ms", durMS(elapsed))
}

// RestartDone implements core.Tracer.
func (t LogTracer) RestartDone(slot int, regret float64, evals int64, elapsed time.Duration) {
	t.L.Debug("restart done", "slot", slot, "regret", regret, "evals", evals, "t_ms", durMS(elapsed))
}

// Improved implements core.Tracer.
func (t LogTracer) Improved(slot int, regret float64, elapsed time.Duration) {
	t.L.Debug("incumbent improved", "slot", slot, "regret", regret, "t_ms", durMS(elapsed))
}

// Evals implements core.Tracer.
func (t LogTracer) Evals(int64) {}

// Cache implements core.Tracer.
func (t LogTracer) Cache(core.CacheStats) {}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

var _ core.Tracer = (*TraceWriter)(nil)
var _ core.Tracer = LogTracer{}

// MultiTracer fans events out to several tracers in order.
type MultiTracer []core.Tracer

// RestartStart implements core.Tracer.
func (m MultiTracer) RestartStart(slot int, elapsed time.Duration) {
	for _, t := range m {
		t.RestartStart(slot, elapsed)
	}
}

// RestartDone implements core.Tracer.
func (m MultiTracer) RestartDone(slot int, regret float64, evals int64, elapsed time.Duration) {
	for _, t := range m {
		t.RestartDone(slot, regret, evals, elapsed)
	}
}

// Improved implements core.Tracer.
func (m MultiTracer) Improved(slot int, regret float64, elapsed time.Duration) {
	for _, t := range m {
		t.Improved(slot, regret, elapsed)
	}
}

// Evals implements core.Tracer.
func (m MultiTracer) Evals(delta int64) {
	for _, t := range m {
		t.Evals(delta)
	}
}

// Cache implements core.Tracer.
func (m MultiTracer) Cache(delta core.CacheStats) {
	for _, t := range m {
		t.Cache(delta)
	}
}

var _ core.Tracer = MultiTracer(nil)
