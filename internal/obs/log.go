package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a logger writing one JSON object per line to w at the
// given minimum level. slog's JSON handler serializes concurrent writes,
// so a single logger is safe to share between the serving goroutines and
// the shutdown path (the unsynchronized-writer bug the ad-hoc banner
// prints used to have).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards every record (and reports every
// level as disabled, so callers' Enabled gates skip attribute assembly).
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
