package obs

import (
	"sync/atomic"
	"time"
)

// TraceRecord is one completed request's trace: its identity, the
// request-level dimensions /debug/traces filters on, and the full span
// set. Records are immutable once added to a SpanStore.
type TraceRecord struct {
	TraceID string `json:"trace_id"`
	// Start and Duration mirror the root span, lifted out so list views
	// and sampling never walk the span slice.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Outcome classifies the request: "served", "served_truncated", a
	// "shed_<reason>", "abandoned" or "error". Tail sampling keeps every
	// non-"served" record unconditionally.
	Outcome string `json:"outcome"`
	// Instance, Algorithm and Model are the request's routing dimensions.
	Instance  string `json:"instance,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// Model is the resolved instance's regret-model kind ("base"/"zonal"),
	// so /debug/traces can filter variant traffic.
	Model string `json:"model,omitempty"`
	// Status is the HTTP status the client saw.
	Status int    `json:"status"`
	Spans  []Span `json:"spans"`
}

// interesting reports whether the record must bypass tail sampling: every
// outcome that is not a plain fast success is exactly what an operator
// opens the trace store to find.
func (r *TraceRecord) interesting() bool {
	return r.Outcome != "served"
}

// SpanStore retains completed traces in a bounded ring buffer with
// tail-based sampling: a record is admitted after its outcome and duration
// are known, so the store can always keep errors, sheds and truncations
// while admitting only the slowest quantile of plain successes — the
// traces worth a ring slot. Everything sampled away is counted, never
// silently gone.
//
// All methods are lock-free and safe for concurrent use: the ring is a
// slice of atomic pointers, the write cursor a single atomic counter, and
// the duration quantile estimate a fixed bucket array of atomic counts.
// Readers observe a near-point-in-time view — a scrape concurrent with
// writes may see a slot's old or new record, each of which is internally
// consistent (records are immutable).
type SpanStore struct {
	slots []atomic.Pointer[TraceRecord]
	next  atomic.Uint64 // total ring writes; next slot is next % len(slots)

	keepSlowest float64
	durBounds   []time.Duration // exp bucket upper bounds for served durations
	durCounts   []atomic.Int64  // one per bound, plus +Inf
	durTotal    atomic.Int64

	kept        atomic.Int64
	sampledOut  atomic.Int64
	boundarySeq atomic.Uint64 // stride counter for the quantile boundary bucket

	// OnEvent, when non-nil, observes every Add: kept=true when the record
	// entered the ring. Set before concurrent use; it must be safe for
	// concurrent calls (the server wires it to lock-free counters).
	OnEvent func(kept bool)
}

// DefaultTraceKeepSlowest is the fraction of plain served traces the store
// keeps when the caller passes a non-positive keepSlowest: the slowest 25%.
const DefaultTraceKeepSlowest = 0.25

// sampleWarmup is how many served durations the quantile estimate needs
// before sampling activates; until then every trace is kept, so short test
// runs and freshly booted daemons retain complete timelines.
const sampleWarmup = 64

// NewSpanStore returns a store retaining at most capacity traces (minimum
// 1), keeping the slowest keepSlowest fraction of plain successes once
// warmed up (non-positive or ≥1 values select DefaultTraceKeepSlowest and
// keep-everything respectively).
func NewSpanStore(capacity int, keepSlowest float64) *SpanStore {
	if capacity < 1 {
		capacity = 1
	}
	if keepSlowest <= 0 {
		keepSlowest = DefaultTraceKeepSlowest
	}
	if keepSlowest > 1 {
		keepSlowest = 1
	}
	// 100µs·2^k for 20 buckets spans 0.1ms..~52s, matching the latency
	// scales the serving layer sees end to end.
	bounds := make([]time.Duration, 20)
	d := 100 * time.Microsecond
	for i := range bounds {
		bounds[i] = d
		d *= 2
	}
	return &SpanStore{
		slots:       make([]atomic.Pointer[TraceRecord], capacity),
		keepSlowest: keepSlowest,
		durBounds:   bounds,
		durCounts:   make([]atomic.Int64, len(bounds)+1),
	}
}

// Cap returns the ring capacity — the hard bound on retained traces.
func (s *SpanStore) Cap() int { return len(s.slots) }

// Add offers one completed trace to the store and reports whether it was
// kept. Interesting records (anything not plainly "served") are always
// kept; served records are kept while the duration estimate warms up and
// afterwards only when their duration reaches the slowest-quantile
// threshold.
func (s *SpanStore) Add(rec *TraceRecord) bool {
	kept := true
	if !rec.interesting() {
		kept = s.admitServed(rec.Duration)
	}
	if kept {
		i := s.next.Add(1) - 1
		s.slots[i%uint64(len(s.slots))].Store(rec)
		s.kept.Add(1)
	} else {
		s.sampledOut.Add(1)
	}
	if s.OnEvent != nil {
		s.OnEvent(kept)
	}
	return kept
}

// admitServed records the duration into the quantile estimate and decides
// whether a plain served trace earns a ring slot.
func (s *SpanStore) admitServed(d time.Duration) bool {
	// Bucket index: first bound ≥ d, or +Inf.
	idx := len(s.durBounds)
	for i, b := range s.durBounds {
		if d <= b {
			idx = i
			break
		}
	}
	s.durCounts[idx].Add(1)
	total := s.durTotal.Add(1)
	if total <= sampleWarmup {
		return true
	}
	// Find the boundary bucket T: the first bucket whose cumulative count
	// crosses the (1-keepSlowest) quantile cut. Everything in a slower
	// bucket is kept, everything faster is dropped, and within T itself a
	// deterministic stride keeps the fraction of the bucket's mass that
	// sits above the cut — so a unimodal workload (all durations in one
	// bucket) still retains ~keepSlowest of its traces instead of
	// degenerating to all-or-nothing. The walk is over ~20 atomic loads; a
	// racing concurrent update can shift the threshold by one observation,
	// which sampling accuracy happily tolerates.
	cut := int64(float64(total) * (1 - s.keepSlowest))
	boundary := len(s.durCounts) - 1
	var cum, inBoundary int64
	for i := range s.durCounts {
		c := s.durCounts[i].Load()
		cum += c
		if cum > cut {
			boundary, inBoundary = i, c
			break
		}
	}
	switch {
	case idx > boundary:
		return true
	case idx < boundary:
		return false
	}
	keepFrac := float64(cum-cut) / float64(inBoundary) // in (0,1]
	stride := int64(1/keepFrac + 0.5)
	if stride < 1 {
		stride = 1
	}
	return s.boundarySeq.Add(1)%uint64(stride) == 0
}

// Kept returns how many traces entered the ring over the store's lifetime
// (retained-or-overwritten; the ring holds at most Cap of them now).
func (s *SpanStore) Kept() int64 { return s.kept.Load() }

// SampledOut returns how many served traces tail sampling dropped.
func (s *SpanStore) SampledOut() int64 { return s.sampledOut.Load() }

// Len returns how many traces the ring currently holds.
func (s *SpanStore) Len() int {
	n := s.next.Load()
	if n > uint64(len(s.slots)) {
		return len(s.slots)
	}
	return int(n)
}

// Get returns the retained trace with the given ID.
func (s *SpanStore) Get(traceID string) (*TraceRecord, bool) {
	for i := range s.slots {
		if rec := s.slots[i].Load(); rec != nil && rec.TraceID == traceID {
			return rec, true
		}
	}
	return nil, false
}

// Snapshot returns the retained traces, newest first. The slice is freshly
// allocated; the records are shared and immutable.
func (s *SpanStore) Snapshot() []*TraceRecord {
	n := s.next.Load()
	out := make([]*TraceRecord, 0, len(s.slots))
	// Walk back from the most recent write; one lap covers every slot.
	for k := 0; k < len(s.slots); k++ {
		if n < uint64(k)+1 {
			break // ring not yet full; older slots never written
		}
		idx := (n - 1 - uint64(k)) % uint64(len(s.slots))
		if rec := s.slots[idx].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}
