package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestTraceparentRoundTrip(t *testing.T) {
	traceID, spanID := NewTraceID(), NewSpanID()
	if len(traceID) != 32 || !isHex(traceID, 32) {
		t.Fatalf("NewTraceID() = %q, want 32 hex digits", traceID)
	}
	if len(spanID) != 16 || !isHex(spanID, 16) {
		t.Fatalf("NewSpanID() = %q, want 16 hex digits", spanID)
	}
	for _, sampled := range []bool{false, true} {
		h := FormatTraceparent(traceID, spanID, sampled)
		gotTrace, gotSpan, gotSampled, ok := ParseTraceparent(h)
		if !ok || gotTrace != traceID || gotSpan != spanID || gotSampled != sampled {
			t.Errorf("round trip %q: got (%q,%q,%v,%v)", h, gotTrace, gotSpan, gotSampled, ok)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("canonical header rejected: %q", valid)
	}
	// Future versions may carry extra fields; version 00 may not.
	if _, _, _, ok := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version header with extra field rejected")
	}
	for _, h := range []string{
		"",
		"not-a-header",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // reserved version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // 00 with trailing field
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",    // all-zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // all-zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",     // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",     // short span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",   // non-hex flags
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // short version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
	} {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want rejection", h)
		}
	}
	// Sampled flag is bit 0.
	if _, _, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok || sampled {
		t.Errorf("flags 00: sampled=%v ok=%v, want false,true", sampled, ok)
	}
	if _, _, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-03"); !ok || !sampled {
		t.Errorf("flags 03: sampled=%v ok=%v, want true,true", sampled, ok)
	}
}

func TestSpanRecorderTree(t *testing.T) {
	rec := NewSpanRecorder("")
	if !isHex(rec.TraceID(), 32) {
		t.Fatalf("minted trace id %q not 32 hex", rec.TraceID())
	}
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	root := rec.StartSpanAt("request", "client-span", t0)
	admission := root.StartChildAt("admission", t0)
	admission.EndAt(t0.Add(1 * time.Millisecond))
	queue := root.StartChildAt("queue", t0.Add(1*time.Millisecond))
	queue.EndAt(t0.Add(3 * time.Millisecond))
	solve := root.StartChildAt("solve", t0.Add(3*time.Millisecond))
	solve.SetAttr("algorithm", "BLS")
	solve.EndAt(t0.Add(9 * time.Millisecond))
	root.EndAt(t0.Add(9 * time.Millisecond))
	// End is idempotent.
	root.EndAt(t0.Add(99 * time.Millisecond))

	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(spans))
	}
	SortSpans(spans)
	byName := make(map[string]Span)
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != rec.TraceID() {
			t.Errorf("span %q trace id %q != recorder %q", s.Name, s.TraceID, rec.TraceID())
		}
	}
	if spans[0].Name != "admission" && spans[0].Name != "request" {
		t.Errorf("sorted order starts with %q", spans[0].Name)
	}
	req := byName["request"]
	if req.ParentID != "client-span" {
		t.Errorf("root parent = %q, want client-span", req.ParentID)
	}
	if req.Duration != 9*time.Millisecond {
		t.Errorf("idempotent End: duration %v, want 9ms", req.Duration)
	}
	var phaseSum time.Duration
	for _, name := range []string{"admission", "queue", "solve"} {
		s := byName[name]
		if s.ParentID != req.SpanID {
			t.Errorf("%s parent = %q, want root %q", name, s.ParentID, req.SpanID)
		}
		phaseSum += s.Duration
	}
	if phaseSum != req.Duration {
		t.Errorf("contiguous phases sum to %v, root is %v", phaseSum, req.Duration)
	}
	if byName["solve"].Attrs["algorithm"] != "BLS" {
		t.Errorf("solve attrs = %v", byName["solve"].Attrs)
	}
}

func TestSpanTracer(t *testing.T) {
	rec := NewSpanRecorder("")
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	solve := rec.StartSpanAt("solve", "", t0)

	var tr SpanTracer
	// Zero value ignores events entirely.
	tr.RestartStart(0, 0)
	tr.RestartDone(0, 1.5, 10, time.Millisecond)
	if n := len(rec.Spans()); n != 0 {
		t.Fatalf("unarmed tracer recorded %d spans", n)
	}

	tr.Begin(solve, t0)
	var wg sync.WaitGroup
	for slot := 0; slot < 4; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			start := time.Duration(slot) * time.Millisecond
			tr.RestartStart(slot, start)
			if slot == 2 {
				tr.Improved(slot, 0.5, start)
			}
			tr.RestartDone(slot, float64(slot)/10, int64(100+slot), start+time.Millisecond)
		}(slot)
	}
	wg.Wait()
	// Unknown-slot Done and no-op hooks must be harmless.
	tr.RestartDone(99, 0, 0, 0)
	tr.Improved(99, 0, 0)
	tr.Evals(123)
	tr.Cache(core.CacheStats{})

	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("recorded %d restart spans, want 4", len(spans))
	}
	seen := make(map[string]bool)
	for _, s := range spans {
		if s.Name != "restart" || s.ParentID != solve.ID() {
			t.Errorf("span %+v: want restart child of solve", s)
		}
		if s.Duration != time.Millisecond {
			t.Errorf("slot %s duration %v, want 1ms", s.Attrs["slot"], s.Duration)
		}
		if s.Attrs["evals"] == "" || s.Attrs["regret"] == "" {
			t.Errorf("slot span missing attrs: %v", s.Attrs)
		}
		seen[s.Attrs["slot"]] = true
		if s.Attrs["slot"] == "2" && s.Attrs["improved"] == "" {
			t.Errorf("slot 2 missing improved attr: %v", s.Attrs)
		}
	}
	for _, slot := range []string{"0", "1", "2", "3"} {
		if !seen[slot] {
			t.Errorf("no span for slot %s", slot)
		}
	}
}

func TestServerTimingRoundTrip(t *testing.T) {
	h := FormatServerTiming(1500*time.Microsecond, 42*time.Millisecond, 43500*time.Microsecond)
	want := "queue;dur=1.500, solve;dur=42.000, total;dur=43.500"
	if h != want {
		t.Fatalf("FormatServerTiming = %q, want %q", h, want)
	}
	m := ParseServerTiming(h)
	if m["queue"] != 1.5 || m["solve"] != 42 || m["total"] != 43.5 {
		t.Errorf("ParseServerTiming(%q) = %v", h, m)
	}
	// Lenient grammar: extra params, quotes, missing dur, malformed dur.
	m = ParseServerTiming(`cache;desc="hit", db;dur="3.25";desc=x, bad;dur=zz, , solo`)
	if m["cache"] != 0 || m["db"] != 3.25 || m["solo"] != 0 {
		t.Errorf("lenient parse = %v", m)
	}
	if _, present := m["bad"]; present {
		t.Errorf("malformed dur kept: %v", m)
	}
}
