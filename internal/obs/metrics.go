// Package obs is the reproduction's stdlib-only observability toolkit:
// lock-free metrics primitives with a hand-rolled Prometheus text-format
// exposition, per-request ID generation and context propagation, structured
// logging helpers over log/slog, and solver-trace recorders (JSONL and
// slog) implementing core.Tracer.
//
// The package deliberately has no third-party dependencies: the repo's
// contract is that go.mod stays dependency-free, so the subset of the
// Prometheus data model needed here — counters, labeled counter families,
// fixed-bucket histograms, gauge callbacks — is implemented directly
// against the text exposition format (version 0.0.4).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative for the exposition to remain a
// valid Prometheus counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A CounterVec is a family of Counters keyed by label values. Obtaining a
// child with With takes a read lock on first access per goroutine-visible
// key and is lock-free afterwards if the caller caches the returned
// *Counter; the child counters themselves are lock-free.
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu       sync.RWMutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// With returns the child counter for the given label values (one per label
// name, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s has %d labels, got %d values", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.children[key]; ch == nil {
			ch = &vecChild{values: append([]string(nil), values...)}
			v.children[key] = ch
		}
		v.mu.Unlock()
	}
	return &ch.c
}

// Delete removes the child with the given label values from the family, so
// a retired label value (e.g. a catalog instance that was deleted) stops
// appearing in the exposition. Deleting an absent child is a no-op. Callers
// holding the *Counter from a previous With keep a detached counter; a
// later With for the same values starts a fresh child at zero, which is the
// Prometheus reset semantic for a series that disappeared.
func (v *CounterVec) Delete(values ...string) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s has %d labels, got %d values", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	delete(v.children, key)
	v.mu.Unlock()
}

// Each calls f for every child in the family, in unspecified order, with
// the child's label values and current count.
func (v *CounterVec) Each(f func(values []string, count int64)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, ch := range v.children {
		f(ch.values, ch.c.Value())
	}
}

// A Gauge is an integer gauge: a value that can go up and down. The zero
// value is ready to use; all methods are safe for concurrent use and
// lock-free.
type Gauge struct {
	v atomic.Int64
}

// Add adds delta (which may be negative) and returns the new value. The
// return value lets admission-control callers combine the reservation and
// the limit check in one atomic step: reserve with Add(1), and if the
// result exceeds the cap, roll back with Add(-1) and reject — the admitted
// occupancy never exceeds the cap.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Set replaces the value.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A GaugeVec is a family of Gauges keyed by label values, mirroring
// CounterVec: With creates children on first use, Delete retires a label
// set from the exposition, and the children themselves are lock-free.
type GaugeVec struct {
	name   string
	help   string
	labels []string

	mu       sync.RWMutex
	children map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	g      Gauge
}

// With returns the child gauge for the given label values (one per label
// name, in declaration order), creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s has %d labels, got %d values", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.children[key]; ch == nil {
			ch = &gaugeChild{values: append([]string(nil), values...)}
			v.children[key] = ch
		}
		v.mu.Unlock()
	}
	return &ch.g
}

// Delete removes the child with the given label values, so a retired label
// value stops appearing in the exposition. Deleting an absent child is a
// no-op; callers holding the *Gauge keep a detached gauge.
func (v *GaugeVec) Delete(values ...string) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s has %d labels, got %d values", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	delete(v.children, key)
	v.mu.Unlock()
}

// Each calls f for every child in the family, in unspecified order, with
// the child's label values and current value.
func (v *GaugeVec) Each(f func(values []string, value int64)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, ch := range v.children {
		f(ch.values, ch.g.Value())
	}
}

// atomicFloat is a float64 updated with a CAS loop on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(x float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// A Histogram counts observations into fixed buckets. Observe is lock-free
// (two atomic adds and one CAS loop for the sum), so it is safe on solver
// and request hot paths. Bucket bounds are upper bounds in Prometheus "le"
// semantics; an implicit +Inf bucket catches everything beyond the last
// bound.
type Histogram struct {
	bounds  []float64 // strictly increasing, finite
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	// First bucket whose upper bound covers x; len(bounds) is +Inf.
	i := sort.SearchFloat64s(h.bounds, x)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// A HistogramVec is a family of Histograms keyed by label values — one
// bucket ladder per label set (e.g. one per solve phase). With mirrors
// CounterVec.With: first touch of a label set takes the write lock, and
// callers that cache the returned *Histogram observe lock-free.
type HistogramVec struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// With returns the child histogram for the given label values (one per
// label name, in declaration order), creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s has %d labels, got %d values", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch == nil {
		v.mu.Lock()
		if ch = v.children[key]; ch == nil {
			ch = &histChild{
				values: append([]string(nil), values...),
				h: &Histogram{
					bounds:  v.bounds,
					buckets: make([]atomic.Int64, len(v.bounds)+1),
				},
			}
			v.children[key] = ch
		}
		v.mu.Unlock()
	}
	return ch.h
}

// Each calls f for every child in the family, in unspecified order, with
// the child's label values and histogram.
func (v *HistogramVec) Each(f func(values []string, h *Histogram)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, ch := range v.children {
		f(ch.values, ch.h)
	}
}

// ExpBuckets returns n strictly increasing bucket bounds starting at start
// and growing by factor: start, start·factor, …, start·factor^(n−1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// A Registry holds named metric families and renders them in Prometheus
// text exposition format. Families are rendered in registration order,
// which keeps the output stable for golden tests and human readers.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

type family struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	// exactly one of the following is set
	counter *Counter
	vec     *CounterVec
	gvec    *GaugeVec
	hist    *Histogram
	hvec    *HistogramVec
	gauge   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(f family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.names[f.name] = true
	r.families = append(r.families, f)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(family{name: name, help: help, kind: "counter", counter: c})
	return c
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &CounterVec{
		name:     name,
		help:     help,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*vecChild),
	}
	r.register(family{name: name, help: help, kind: "counter", vec: v})
	return v
}

// GaugeVec registers and returns a new labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &GaugeVec{
		name:     name,
		help:     help,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*gaugeChild),
	}
	r.register(family{name: name, help: help, kind: "gauge", gvec: v})
	return v
}

// Histogram registers and returns a new fixed-bucket histogram. Bounds
// must be finite and strictly increasing; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds must be finite and strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(family{name: name, help: help, kind: "histogram", hist: h})
	return h
}

// HistogramVec registers and returns a new labeled histogram family: one
// fixed-bucket ladder per label set, every series sharing the same bounds
// (finite, strictly increasing; +Inf implicit).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q bounds must be finite and strictly increasing", name))
		}
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	v := &HistogramVec{
		name:     name,
		help:     help,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*histChild),
	}
	r.register(family{name: name, help: help, kind: "histogram", hvec: v})
	return v
}

// GaugeFunc registers a gauge whose value is read by calling f at scrape
// time. f must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(family{name: name, help: help, kind: "gauge", gauge: f})
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counter.Value())
		case f.vec != nil:
			writeVec(bw, f.vec)
		case f.gvec != nil:
			writeGaugeVec(bw, f.gvec)
		case f.hist != nil:
			writeHistogram(bw, f.name, f.hist)
		case f.hvec != nil:
			writeHistogramVec(bw, f.hvec)
		case f.gauge != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, fmtFloat(f.gauge()))
		}
	}
	return bw.Flush()
}

func writeVec(w io.Writer, v *CounterVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ch := v.children[k]
		pairs := make([]string, len(v.labels))
		for i, l := range v.labels {
			pairs[i] = l + `="` + escapeLabelValue(ch.values[i]) + `"`
		}
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, strings.Join(pairs, ","), ch.c.Value())
	}
	v.mu.RUnlock()
}

func writeGaugeVec(w io.Writer, v *GaugeVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ch := v.children[k]
		pairs := make([]string, len(v.labels))
		for i, l := range v.labels {
			pairs[i] = l + `="` + escapeLabelValue(ch.values[i]) + `"`
		}
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, strings.Join(pairs, ","), ch.g.Value())
	}
	v.mu.RUnlock()
}

func writeHistogram(w io.Writer, name string, h *Histogram) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, fmtFloat(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// writeHistogramVec renders one bucket ladder per label set, label sets in
// sorted order, each with its own _sum and _count (the per-series triple
// ValidateExposition checks).
func writeHistogramVec(w io.Writer, v *HistogramVec) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ch := v.children[k]
		pairs := make([]string, len(v.labels))
		for i, l := range v.labels {
			pairs[i] = l + `="` + escapeLabelValue(ch.values[i]) + `"`
		}
		labels := strings.Join(pairs, ",")
		h := ch.h
		var cum int64
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", v.name, labels, fmtFloat(b), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", v.name, labels, cum)
		fmt.Fprintf(w, "%s_sum{%s} %s\n", v.name, labels, fmtFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", v.name, labels, h.Count())
	}
	v.mu.RUnlock()
}

// Handler returns an http.Handler serving the exposition (a /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

func fmtFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // "le" is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
