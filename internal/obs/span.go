package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// Request-lifecycle span tracing. A Span is one timed operation inside a
// request (admission check, queue wait, cache lookup, the solve itself, a
// single restart slot, response encoding); the spans of one request share a
// trace ID and link to each other through parent span IDs, forming the
// "where did this request's deadline go?" timeline that aggregate
// histograms cannot answer. Identifiers follow the W3C Trace Context
// format (32-hex trace ID, 16-hex span ID) so a trace started by a client
// — mroamload stamps a traceparent header on every replayed request — is
// continued, not restarted, by the server, and the same ID works across
// nodes once solves are distributed.
//
// Tracing is strictly observational, like the solver probes in trace.go:
// a SpanRecorder only appends to its own slice, the solver never reads
// anything back, and with no recorder attached the request path mints no
// IDs and reads no clocks beyond what it always did.

// Span is one completed timed operation within a trace.
type Span struct {
	// TraceID groups every span of one request; 32 lowercase hex digits.
	TraceID string `json:"trace_id"`
	// SpanID identifies this span; 16 lowercase hex digits.
	SpanID string `json:"span_id"`
	// ParentID is the SpanID of the enclosing span ("" for a root). A
	// request root's parent may be a span the server never saw: the
	// client's span ID from an incoming traceparent header.
	ParentID string `json:"parent_id,omitempty"`
	// Name says what the span timed: "request", "admission", "queue",
	// "cache_lookup", "solve", "restart", "encode".
	Name string `json:"name"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// Duration is how long the operation took. Sibling phase spans are
	// laid out contiguously by the server, so their Durations sum exactly
	// to the parent's.
	Duration time.Duration `json:"duration_ns"`
	// Attrs carries small key=value annotations (slot number, regret,
	// outcome). Nil when the span has none.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// randHex returns n random bytes as 2n lowercase hex digits.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// fixed non-zero pattern rather than failing the request path.
		for i := range b {
			b[i] = 0xfe
		}
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a random W3C trace ID (32 hex digits).
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a random W3C span ID (16 hex digits).
func NewSpanID() string { return randHex(8) }

// Traceparent flag bit: the caller has sampled this trace.
const traceparentSampled = 0x01

// ParseTraceparent parses a W3C traceparent header
// ("00-<trace-id>-<parent-id>-<flags>"). It accepts any version except the
// reserved ff, and rejects all-zero IDs as the spec requires. ok is false
// for anything malformed; callers then mint fresh IDs instead.
func ParseTraceparent(h string) (traceID, spanID string, sampled bool, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", "", false, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isHex(version, 2) || version == "ff" {
		return "", "", false, false
	}
	// Version 00 has exactly four fields; future versions may append more,
	// which we tolerate, but the first four keep their meaning.
	if version == "00" && len(parts) != 4 {
		return "", "", false, false
	}
	if !isHex(traceID, 32) || traceID == strings.Repeat("0", 32) {
		return "", "", false, false
	}
	if !isHex(spanID, 16) || spanID == strings.Repeat("0", 16) {
		return "", "", false, false
	}
	if !isHex(flags, 2) {
		return "", "", false, false
	}
	f, _ := strconv.ParseUint(flags, 16, 8)
	return traceID, spanID, f&traceparentSampled != 0, true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// A SpanRecorder collects the completed spans of one trace. Methods are
// safe for concurrent use: restart-slot spans arrive from every solver
// worker goroutine.
type SpanRecorder struct {
	traceID string
	mu      sync.Mutex
	spans   []Span
}

// NewSpanRecorder returns a recorder for the given trace ID, minting a
// fresh one when empty.
func NewSpanRecorder(traceID string) *SpanRecorder {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &SpanRecorder{traceID: traceID}
}

// TraceID returns the trace every recorded span belongs to.
func (r *SpanRecorder) TraceID() string { return r.traceID }

// add appends one completed span.
func (r *SpanRecorder) add(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of the completed spans recorded so far.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// StartSpan opens a span starting now. parentID may be "" (a root) or a
// span ID the recorder never saw (a client's traceparent span).
func (r *SpanRecorder) StartSpan(name, parentID string) *ActiveSpan {
	return r.StartSpanAt(name, parentID, time.Now())
}

// StartSpanAt opens a span with an explicit start instant, so contiguous
// phases can share exact boundary timestamps and solver callbacks can
// reconstruct span starts from elapsed offsets.
func (r *SpanRecorder) StartSpanAt(name, parentID string, at time.Time) *ActiveSpan {
	return &ActiveSpan{
		rec: r,
		span: Span{
			TraceID:  r.traceID,
			SpanID:   NewSpanID(),
			ParentID: parentID,
			Name:     name,
			Start:    at,
		},
	}
}

// An ActiveSpan is a span that has started but not yet ended. It is NOT
// safe for concurrent use; each goroutine works on its own active spans.
type ActiveSpan struct {
	rec   *SpanRecorder
	span  Span
	ended bool
}

// ID returns the span's ID, usable as a child's parent before End.
func (s *ActiveSpan) ID() string { return s.span.SpanID }

// Start returns the span's start instant.
func (s *ActiveSpan) Start() time.Time { return s.span.Start }

// SetAttr annotates the span. Values are stringified with %v.
func (s *ActiveSpan) SetAttr(key string, value any) {
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[key] = fmt.Sprint(value)
}

// StartChild opens a child span starting now.
func (s *ActiveSpan) StartChild(name string) *ActiveSpan {
	return s.rec.StartSpanAt(name, s.span.SpanID, time.Now())
}

// StartChildAt opens a child span with an explicit start instant.
func (s *ActiveSpan) StartChildAt(name string, at time.Time) *ActiveSpan {
	return s.rec.StartSpanAt(name, s.span.SpanID, at)
}

// End completes the span as of now and records it. End is idempotent: the
// second call is a no-op, so error paths can End defensively.
func (s *ActiveSpan) End() { s.EndAt(time.Now()) }

// EndAt completes the span as of the given instant and records it.
func (s *ActiveSpan) EndAt(at time.Time) {
	if s.ended {
		return
	}
	s.ended = true
	s.span.Duration = at.Sub(s.span.Start)
	s.rec.add(s.span)
}

// Duration returns the span's recorded duration (0 until ended).
func (s *ActiveSpan) Duration() time.Duration { return s.span.Duration }

// SpanTracer adapts the solver probe interface (core.Tracer) to span
// recording: each restart slot of the local-search schedule becomes one
// child span under the request's solve span, annotated with the slot's
// local-optimum regret and eval count, plus an "improved" attribute when
// the slot improved the incumbent. Begin must be called (once) before the
// solve starts; the zero value ignores all events, so a SpanTracer can be
// constructed early and armed late.
//
// The tracer derives span boundaries purely from the elapsed offsets the
// engine already reports, so attaching it reads no additional clocks on
// the solver hot path and cannot perturb results (the engine's hooks are
// observational; see core.Tracer).
type SpanTracer struct {
	mu     sync.Mutex
	rec    *SpanRecorder
	parent string
	start  time.Time
	open   map[int]*ActiveSpan // slot → span between RestartStart and RestartDone
}

// Begin arms the tracer: slot spans become children of parent, with
// elapsed offsets resolved against start.
func (t *SpanTracer) Begin(parent *ActiveSpan, start time.Time) {
	t.mu.Lock()
	t.rec = parent.rec
	t.parent = parent.ID()
	t.start = start
	t.open = make(map[int]*ActiveSpan)
	t.mu.Unlock()
}

// RestartStart implements core.Tracer.
func (t *SpanTracer) RestartStart(slot int, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rec == nil {
		return
	}
	sp := t.rec.StartSpanAt("restart", t.parent, t.start.Add(elapsed))
	sp.SetAttr("slot", slot)
	t.open[slot] = sp
}

// RestartDone implements core.Tracer.
func (t *SpanTracer) RestartDone(slot int, regret float64, evals int64, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := t.open[slot]
	if sp == nil {
		return
	}
	delete(t.open, slot)
	sp.SetAttr("regret", strconv.FormatFloat(regret, 'g', -1, 64))
	sp.SetAttr("evals", evals)
	sp.EndAt(t.start.Add(elapsed))
}

// Improved implements core.Tracer: the improving slot's span is annotated
// rather than opening an event span of its own.
func (t *SpanTracer) Improved(slot int, regret float64, elapsed time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.open[slot]; sp != nil {
		sp.SetAttr("improved", strconv.FormatFloat(regret, 'g', -1, 64))
	}
}

// Evals implements core.Tracer.
func (t *SpanTracer) Evals(int64) {}

// Cache implements core.Tracer.
func (t *SpanTracer) Cache(core.CacheStats) {}

var _ core.Tracer = (*SpanTracer)(nil)

// FormatServerTiming renders a Server-Timing header value attributing the
// server-side phases of one request (all durations in milliseconds, the
// header's native unit): queue = waiting for a worker slot, solve = the
// solver (or cache) execution, total = everything the server spent before
// the response headers were written. Metric order is fixed so the header
// is byte-stable for tests.
func FormatServerTiming(queue, solve, total time.Duration) string {
	f := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d.Microseconds())/1e3, 'f', 3, 64)
	}
	return "queue;dur=" + f(queue) + ", solve;dur=" + f(solve) + ", total;dur=" + f(total)
}

// ParseServerTiming parses a Server-Timing header value into metric-name →
// duration (milliseconds). Entries without a dur parameter are reported
// with value 0; a malformed dur drops its entry. Parsing is deliberately
// lenient — the header grammar allows parameters we never emit.
func ParseServerTiming(h string) map[string]float64 {
	out := make(map[string]float64)
	for _, entry := range strings.Split(h, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ";")
		name := strings.TrimSpace(parts[0])
		if name == "" {
			continue
		}
		val := 0.0
		bad := false
		for _, p := range parts[1:] {
			p = strings.TrimSpace(p)
			if rest, found := strings.CutPrefix(p, "dur="); found {
				v, err := strconv.ParseFloat(strings.Trim(rest, `"`), 64)
				if err != nil {
					bad = true
					break
				}
				val = v
			}
		}
		if !bad {
			out[name] = val
		}
	}
	return out
}

// SortSpans orders spans by start time, then by name for equal starts —
// the stable display order /debug/traces uses.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].Name < spans[j].Name
	})
}
