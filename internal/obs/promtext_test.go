package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidateExpositionLabeledHistogram pins the per-series cumulative
// walk on a checked-in exposition whose histogram family carries two label
// sets. The second series' ladder restarts below the first series' +Inf
// count (2 after 9) — a shape the validator used to false-fail by carrying
// one running total across the whole family.
func TestValidateExpositionLabeledHistogram(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "labeled_histogram.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(b); err != nil {
		t.Fatalf("labeled-histogram exposition rejected: %v", err)
	}
}

// TestValidateExpositionPerSeries: with the walk grouped by non-le label
// set, defects must still be caught inside each series — and a series
// cannot borrow its +Inf/_sum/_count from a sibling label set.
func TestValidateExpositionPerSeries(t *testing.T) {
	head := "# HELP h x\n# TYPE h histogram\n"
	okSeries := `h_bucket{who="a",le="1"} 4` + "\n" +
		`h_bucket{who="a",le="+Inf"} 6` + "\n" +
		`h_sum{who="a"} 1.5` + "\n" + `h_count{who="a"} 6` + "\n"

	cases := []struct {
		name    string
		text    string
		wantErr string
	}{
		{
			"second series restarting low is valid",
			head + okSeries +
				`h_bucket{who="b",le="1"} 1` + "\n" +
				`h_bucket{who="b",le="+Inf"} 2` + "\n" +
				`h_sum{who="b"} 0.1` + "\n" + `h_count{who="b"} 2` + "\n",
			"",
		},
		{
			"non-cumulative within one series",
			head + okSeries +
				`h_bucket{who="b",le="1"} 5` + "\n" +
				`h_bucket{who="b",le="+Inf"} 3` + "\n" +
				`h_sum{who="b"} 0.1` + "\n" + `h_count{who="b"} 3` + "\n",
			"not cumulative within series",
		},
		{
			"+Inf != count in one series",
			head + okSeries +
				`h_bucket{who="b",le="+Inf"} 2` + "\n" +
				`h_sum{who="b"} 0.1` + "\n" + `h_count{who="b"} 3` + "\n",
			"+Inf bucket 2 != count 3",
		},
		{
			"series missing its own +Inf",
			head + okSeries +
				`h_bucket{who="b",le="1"} 1` + "\n" +
				`h_sum{who="b"} 0.1` + "\n" + `h_count{who="b"} 1` + "\n",
			`missing le="+Inf"`,
		},
		{
			"series missing _sum/_count",
			head + okSeries +
				`h_bucket{who="b",le="+Inf"} 2` + "\n",
			"missing _sum or _count",
		},
	}
	for _, tc := range cases {
		err := ValidateExposition([]byte(tc.text))
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.text)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
