package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks that b is well-formed Prometheus text
// exposition (version 0.0.4) as produced by Registry.WritePrometheus:
// every family opens with a # HELP line immediately followed by a matching
// # TYPE line, every sample belongs to a declared family, histogram bucket
// counts are cumulative (monotone non-decreasing), the +Inf bucket is
// present and equals the _count, and every sample value parses. Histogram
// checks are applied per series: a labeled histogram family (one bucket
// ladder per non-"le" label set) restarts the cumulative walk at each label
// set and must carry a complete +Inf/_sum/_count triple for every one —
// label sets never leak bucket counts into each other. It is used by the
// exposition tests here and in internal/server, and by operators as a cheap
// scrape sanity check.
func ValidateExposition(b []byte) error {
	type histSeries struct {
		lastCum  int64
		infSeen  bool
		infCum   int64
		sumSeen  bool
		count    int64
		countSet bool
	}
	kinds := make(map[string]string)                 // family -> counter|gauge|histogram
	hists := make(map[string]map[string]*histSeries) // family -> non-le label set -> state
	lastHelp := ""                                   // family named by the preceding HELP line

	lines := strings.Split(string(b), "\n")
	for n, line := range lines {
		lineNo := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) == 0 || fields[0] == "" {
				return fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			lastHelp = fields[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := fields[0], fields[1]
			if name != lastHelp {
				return fmt.Errorf("line %d: TYPE for %q not preceded by its HELP line (last HELP: %q)", lineNo, name, lastHelp)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				return fmt.Errorf("line %d: unknown type %q", lineNo, kind)
			}
			if _, dup := kinds[name]; dup {
				return fmt.Errorf("line %d: family %q declared twice", lineNo, name)
			}
			kinds[name] = kind
			if kind == "histogram" {
				hists[name] = make(map[string]*histSeries)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name && kinds[base] == "histogram" {
				fam, suffix = base, s
				break
			}
		}
		kind, ok := kinds[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		if kind == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
		}
		if kind == "histogram" {
			// One cumulative bucket ladder per non-le label set: the walk
			// restarts for each new label set instead of carrying the
			// previous series' running total across the family.
			series := seriesKey(labels)
			h := hists[fam][series]
			if h == nil {
				h = &histSeries{}
				hists[fam][series] = h
			}
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: bucket without le label", lineNo)
				}
				cum := int64(value)
				if cum < h.lastCum {
					return fmt.Errorf("line %d: bucket counts not cumulative within series {%s} (%d after %d)",
						lineNo, series, cum, h.lastCum)
				}
				h.lastCum = cum
				if le == "+Inf" {
					h.infSeen = true
					h.infCum = cum
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
				}
			case "_sum":
				h.sumSeen = true
			case "_count":
				h.count = int64(value)
				h.countSet = true
			}
		}
	}

	for name, byLabels := range hists {
		for series, h := range byLabels {
			if !h.infSeen {
				return fmt.Errorf("histogram %q series {%s}: missing le=\"+Inf\" bucket", name, series)
			}
			if !h.sumSeen || !h.countSet {
				return fmt.Errorf("histogram %q series {%s}: missing _sum or _count", name, series)
			}
			if h.infCum != h.count {
				return fmt.Errorf("histogram %q series {%s}: +Inf bucket %d != count %d", name, series, h.infCum, h.count)
			}
		}
	}
	return nil
}

// seriesKey canonicalizes a sample's labels minus "le" (the bucket bound is
// a position within a series, not part of its identity), so _bucket, _sum
// and _count lines of the same label set group together.
func seriesKey(labels map[string]string) string {
	pairs := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// parseSample splits one exposition sample line into its name, label map
// and value.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label pair %q", pair)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", pair)
			}
			labels[pair[:eq]] = unescapeLabelValue(v[1 : len(v)-1])
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("want 'name value', got %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	value, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value in %q: %v", line, err)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas that are not inside quoted
// values.
func splitLabels(s string) []string {
	var parts []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		parts = append(parts, cur.String())
	}
	return parts
}

func unescapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}
