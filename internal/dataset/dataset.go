// Package dataset generates the two synthetic city datasets that stand in
// for the paper's proprietary data (Table 5): a New-York-like taxi dataset
// (LAMAR billboards + TLC taxi trips in the paper) and a Singapore-like bus
// dataset (JCDecaux bus-stop billboards + EZ-link trips).
//
// The substitution preserves the properties the paper's evaluation actually
// depends on — documented in DESIGN.md and enforced by tests in this
// package:
//
//   - NYC: heavy-tailed billboard influence with strong coverage overlap
//     among the top billboards (taxi trips funnel along a few popular
//     corridors lined with many billboards), so the cumulative impression
//     curve of Figure 1b rises slowly.
//   - SG: more uniform influence with little overlap (billboards sit at
//     bus stops and see mostly the riders of the routes serving that
//     stop), so the impression curve rises nearly linearly, and coverage
//     is insensitive to λ below the stop spacing (Figure 12b).
//
// All generation is deterministic in Config.Seed.
package dataset

import (
	"fmt"

	"repro/internal/billboard"
	"repro/internal/coverage"
	"repro/internal/influence"
	"repro/internal/rng"
	"repro/internal/trajectory"
)

// City selects the generator mode.
type City uint8

const (
	// NYC is the Manhattan-like taxi mode.
	NYC City = iota
	// SG is the Singapore-like bus mode.
	SG
)

func (c City) String() string {
	switch c {
	case NYC:
		return "NYC"
	case SG:
		return "SG"
	default:
		return fmt.Sprintf("City(%d)", uint8(c))
	}
}

// Config parameterizes a synthetic city. Zero values select the defaults of
// DefaultNYC/DefaultSG; construct configs through those helpers and adjust.
type Config struct {
	City City
	// Seed drives all randomness in the generator.
	Seed uint64
	// Trajectories is |T|, the number of trips to generate.
	Trajectories int

	// NYC knobs.
	Avenues       int     // north-south corridors
	Streets       int     // east-west corridors
	AvenueSpacing float64 // meters between avenues
	StreetSpacing float64 // meters between streets
	Billboards    int     // billboard count (NYC only; SG derives it)
	CorridorSkew  float64 // Zipf exponent of corridor popularity
	TripSpeedMPS  float64 // average trip speed, meters/second

	// SG knobs.
	Routes        int     // number of bus routes
	StopsPerRoute int     // stops per route
	StopSpacing   float64 // meters between consecutive stops
	RouteSkew     float64 // Zipf exponent of route ridership
	BusSpeedMPS   float64 // average bus speed incl. dwell, meters/second
}

// DefaultNYC returns the default NYC configuration: ~1/40 of the paper's
// scale (Table 5: |T| = 1.7M, |U| = 1462), tuned so AvgDistance ≈ 2.9 km
// and AvgTravelTime ≈ 569 s match the paper's reported statistics.
func DefaultNYC(seed uint64) Config {
	return Config{
		City:          NYC,
		Seed:          seed,
		Trajectories:  40000,
		Avenues:       12,
		Streets:       110,
		AvenueSpacing: 500,
		StreetSpacing: 220,
		Billboards:    400,
		CorridorSkew:  1.4,
		TripSpeedMPS:  2900.0 / 569.0, // ≈ 5.1 m/s, Table 5 ratio
	}
}

// DefaultSG returns the default SG configuration: ~1/40 of the paper's
// scale (Table 5: |T| = 2.2M, |U| = 4092), tuned so AvgDistance ≈ 4.2 km
// and AvgTravelTime ≈ 1342 s match the paper's reported statistics.
// Billboards are derived: one per bus stop, |U| = Routes × StopsPerRoute.
func DefaultSG(seed uint64) Config {
	return Config{
		City:          SG,
		Seed:          seed,
		Trajectories:  55000,
		Routes:        48,
		StopsPerRoute: 24,
		StopSpacing:   450,
		RouteSkew:     0.15,
		BusSpeedMPS:   4200.0 / 1342.0, // ≈ 3.1 m/s, Table 5 ratio
	}
}

// Scale returns a copy of the config with trajectory and billboard counts
// multiplied by f (minimum 1 each). Street-grid geometry is unchanged.
// Use small f for fast tests, f > 1 to approach the paper's raw scale.
func (c Config) Scale(f float64) Config {
	scale := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	c.Trajectories = scale(c.Trajectories)
	if c.City == NYC {
		c.Billboards = scale(c.Billboards)
	} else {
		c.Routes = scale(c.Routes)
	}
	return c
}

// Validate reports whether the configuration can be generated.
func (c Config) Validate() error {
	if c.Trajectories < 1 {
		return fmt.Errorf("dataset: trajectories %d < 1", c.Trajectories)
	}
	switch c.City {
	case NYC:
		if c.Avenues < 2 || c.Streets < 2 {
			return fmt.Errorf("dataset: grid %d×%d too small", c.Avenues, c.Streets)
		}
		if c.AvenueSpacing <= 0 || c.StreetSpacing <= 0 {
			return fmt.Errorf("dataset: non-positive grid spacing")
		}
		if c.Billboards < 1 {
			return fmt.Errorf("dataset: billboards %d < 1", c.Billboards)
		}
		if c.TripSpeedMPS <= 0 {
			return fmt.Errorf("dataset: trip speed %v <= 0", c.TripSpeedMPS)
		}
	case SG:
		if c.Routes < 1 || c.StopsPerRoute < 2 {
			return fmt.Errorf("dataset: routes %d × stops %d too small", c.Routes, c.StopsPerRoute)
		}
		if c.StopSpacing <= 0 {
			return fmt.Errorf("dataset: stop spacing %v <= 0", c.StopSpacing)
		}
		if c.BusSpeedMPS <= 0 {
			return fmt.Errorf("dataset: bus speed %v <= 0", c.BusSpeedMPS)
		}
	default:
		return fmt.Errorf("dataset: unknown city %d", c.City)
	}
	return nil
}

// Dataset bundles the generated trajectory and billboard databases.
type Dataset struct {
	Config       Config
	Trajectories *trajectory.DB
	Billboards   *billboard.DB
}

// Generate builds the synthetic dataset for the configuration.
func Generate(c Config) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(c.Seed).Derive(c.City.String())
	switch c.City {
	case NYC:
		return generateNYC(c, r)
	case SG:
		return generateSG(c, r)
	default:
		return nil, fmt.Errorf("dataset: unknown city %d", c.City)
	}
}

// BuildUniverse runs the influence model over the dataset at the given λ
// and assigns influence-proportional billboard costs.
func (d *Dataset) BuildUniverse(lambda float64) (*coverage.Universe, error) {
	u, err := influence.BuildCoverage(d.Trajectories, d.Billboards, influence.Options{Lambda: lambda})
	if err != nil {
		return nil, err
	}
	infl := make([]int, u.NumBillboards())
	for b := range infl {
		infl[b] = u.Degree(b)
	}
	costRNG := rng.New(d.Config.Seed).Derive("costs")
	if err := d.Billboards.AssignCosts(infl, costRNG); err != nil {
		return nil, err
	}
	return u, nil
}

// Table5Row is one row of the paper's Table 5.
type Table5Row struct {
	Name          string
	NumTraj       int
	NumBillboards int
	AvgDistanceKM float64
	AvgTravelSec  float64
}

// Table5 computes the dataset-statistics row reported in the paper.
func (d *Dataset) Table5() Table5Row {
	s := d.Trajectories.ComputeStats()
	return Table5Row{
		Name:          d.Config.City.String(),
		NumTraj:       s.Count,
		NumBillboards: d.Billboards.Len(),
		AvgDistanceKM: s.AvgDistanceM / 1000,
		AvgTravelSec:  s.AvgTravelTime,
	}
}
