package dataset

import (
	"math"
	"time"

	"repro/internal/billboard"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trajectory"
)

// The NYC generator models a Manhattan-like street grid: vertical avenues
// and horizontal streets with Zipf-skewed corridor popularity. Taxi trips
// are L-shaped grid routes that detour through a popular "via" avenue, so
// traffic funnels onto a few corridors. Billboards are placed roadside near
// popular intersections (with a positional offset from the corner), which
// yields the paper's NYC signature: heavy-tailed billboard influence,
// heavy coverage overlap among top billboards, and supply that grows with λ
// (billboards sit 20-120 m off the travel paths).

// nycGrid precomputes corridor geometry and popularity.
type nycGrid struct {
	cfg          Config
	avenueX      []float64 // x coordinate per avenue
	streetY      []float64 // y coordinate per street
	avenueW      []float64 // popularity weight per avenue
	streetW      []float64 // popularity weight per street
	nodeCDF      []float64 // cumulative node weights, laid out street-major
	nodeTotal    float64
	premiumCDF   []float64 // sharpened-weight CDF for premium billboard sites
	premiumTotal float64
}

func newNYCGrid(c Config, r *rng.RNG) *nycGrid {
	g := &nycGrid{cfg: c}
	g.avenueX = make([]float64, c.Avenues)
	for a := range g.avenueX {
		g.avenueX[a] = float64(a) * c.AvenueSpacing
	}
	g.streetY = make([]float64, c.Streets)
	for s := range g.streetY {
		g.streetY[s] = float64(s) * c.StreetSpacing
	}

	// Zipf corridor popularity, shuffled so the busy corridors are not
	// all adjacent. Streets are less skewed than avenues.
	g.avenueW = zipfWeights(r.Derive("avenues"), c.Avenues, c.CorridorSkew)
	g.streetW = zipfWeights(r.Derive("streets"), c.Streets, c.CorridorSkew*0.6)

	// A "midtown" band of streets gets a popularity boost.
	lo, hi := c.Streets*2/5, c.Streets*3/5
	for s := lo; s < hi; s++ {
		g.streetW[s] *= 2
	}

	g.nodeCDF = make([]float64, c.Avenues*c.Streets)
	sum := 0.0
	for s := 0; s < c.Streets; s++ {
		for a := 0; a < c.Avenues; a++ {
			sum += g.avenueW[a] * g.streetW[s]
			g.nodeCDF[s*c.Avenues+a] = sum
		}
	}
	g.nodeTotal = sum

	// Premium billboard placement uses a sharper (power-1.5) popularity
	// profile: real premium inventory clusters on the handful of corners
	// everyone drives past, which is what makes the top boards' coverage
	// overlap heavily (Figure 1b's slowly rising NYC curve).
	g.premiumCDF = make([]float64, c.Avenues*c.Streets)
	sum = 0.0
	for s := 0; s < c.Streets; s++ {
		for a := 0; a < c.Avenues; a++ {
			w := g.avenueW[a] * g.streetW[s]
			sum += math.Pow(w, 1.5)
			g.premiumCDF[s*c.Avenues+a] = sum
		}
	}
	g.premiumTotal = sum
	return g
}

// zipfWeights returns n weights following a shuffled Zipf(s) profile.
func zipfWeights(r *rng.RNG, n int, s float64) []float64 {
	w := make([]float64, n)
	for k := range w {
		w[k] = 1 / math.Pow(float64(k+1), s)
	}
	r.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// sampleNode draws an intersection (avenue, street) proportionally to node
// popularity.
func (g *nycGrid) sampleNode(r *rng.RNG) (a, s int) {
	return g.sampleFromCDF(r, g.nodeCDF, g.nodeTotal)
}

// samplePremiumNode draws an intersection proportionally to sharpened node
// popularity — the placement profile of premium billboard sites.
func (g *nycGrid) samplePremiumNode(r *rng.RNG) (a, s int) {
	return g.sampleFromCDF(r, g.premiumCDF, g.premiumTotal)
}

func (g *nycGrid) sampleFromCDF(r *rng.RNG, cdf []float64, total float64) (a, s int) {
	u := r.Float64() * total
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo % g.cfg.Avenues, lo / g.cfg.Avenues
}

// sampleAvenueNear draws an avenue proportionally to popularity from the
// window [min(a0,a1)−1, max(a0,a1)+1], modelling drivers who pick the
// busiest corridor along (not across) their way.
func (g *nycGrid) sampleAvenueNear(r *rng.RNG, a0, a1 int) int {
	lo, hi := a0, a1
	if lo > hi {
		lo, hi = hi, lo
	}
	lo = clampInt(lo-1, 0, len(g.avenueW)-1)
	hi = clampInt(hi+1, 0, len(g.avenueW)-1)
	total := 0.0
	for a := lo; a <= hi; a++ {
		total += g.avenueW[a]
	}
	u := r.Float64() * total
	acc := 0.0
	for a := lo; a <= hi; a++ {
		acc += g.avenueW[a]
		if u <= acc {
			return a
		}
	}
	return hi
}

// nycTripPointSpacing is the along-route sampling interval for trajectory
// points, in meters. It is finer than λ so distance-to-path is measured
// faithfully.
const nycTripPointSpacing = 90

// generateNYC builds the taxi dataset.
func generateNYC(c Config, r *rng.RNG) (*Dataset, error) {
	grid := newNYCGrid(c, r.Derive("grid"))

	trips := make([]trajectory.Trajectory, 0, c.Trajectories)
	tripRNG := r.Derive("trips")
	for i := 0; i < c.Trajectories; i++ {
		trips = append(trips, genNYCTrip(grid, tripRNG))
	}
	tdb, err := trajectory.NewDB(trips)
	if err != nil {
		return nil, err
	}

	bills := genNYCBillboards(c, grid, r.Derive("billboards"))
	return &Dataset{Config: c, Trajectories: tdb, Billboards: billboard.NewDB(bills)}, nil
}

// genNYCBillboards places the billboard inventory on the grid. It is shared
// by the materializing generator above and the streaming paper-scale build
// (stream.go); both derive bbRNG from the same "billboards" substream, so
// inventories are identical between the two paths.
func genNYCBillboards(c Config, grid *nycGrid, bbRNG *rng.RNG) []billboard.Billboard {
	bills := make([]billboard.Billboard, 0, c.Billboards)
	for i := 0; i < c.Billboards; i++ {
		// Mixed placement: 55% of the inventory chases the popular
		// corridors (LAMAR-style premium boards with huge audiences and
		// heavy mutual overlap); the rest is spread uniformly over the
		// grid (neighborhood boards with small audiences). The mixture
		// produces the paper's heavy-tailed NYC influence distribution
		// and keeps the total supply I* a small multiple of |T|.
		var a, s int
		if bbRNG.Float64() < 0.55 {
			a, s = grid.samplePremiumNode(bbRNG)
		} else {
			a, s = bbRNG.Intn(c.Avenues), bbRNG.Intn(c.Streets)
		}
		// Roadside placement: 20-120 m from the corner in a random
		// direction, so coverage grows with λ as in the paper's Fig 12a.
		dist := bbRNG.Range(20, 120)
		angle := bbRNG.Range(0, 2*math.Pi)
		loc := geo.Point{
			X: grid.avenueX[a] + dist*math.Cos(angle),
			Y: grid.streetY[s] + dist*math.Sin(angle),
		}
		bills = append(bills, billboard.Billboard{Loc: loc})
	}
	return bills
}

// genNYCTrip samples one L-shaped grid trip:
// origin → (along origin street to the via avenue) → (along the via avenue
// to the destination street) → (along the destination street to the
// destination avenue).
func genNYCTrip(g *nycGrid, r *rng.RNG) trajectory.Trajectory {
	c := g.cfg
	a0, s0 := g.sampleNode(r)

	// North-south displacement dominates (Manhattan trips): 4-14 blocks.
	ds := 4 + r.Intn(11)
	if r.Float64() < 0.5 {
		ds = -ds
	}
	s1 := clampInt(s0+ds, 0, c.Streets-1)
	// East-west displacement: up to 3 avenues.
	da := r.Intn(4)
	if r.Float64() < 0.5 {
		da = -da
	}
	a1 := clampInt(a0+da, 0, c.Avenues-1)
	// Traffic funnels through a popular via avenue chosen near the
	// origin-destination corridor (drivers do not detour across town).
	via := g.sampleAvenueNear(r, a0, a1)

	waypoints := []geo.Point{
		{X: g.avenueX[a0], Y: g.streetY[s0]},
		{X: g.avenueX[via], Y: g.streetY[s0]},
		{X: g.avenueX[via], Y: g.streetY[s1]},
		{X: g.avenueX[a1], Y: g.streetY[s1]},
	}
	points := densify(waypoints, nycTripPointSpacing)
	return finishTrip(points, c.TripSpeedMPS, r)
}

// densify resamples a waypoint polyline at roughly the given spacing,
// always keeping the waypoints themselves.
func densify(waypoints []geo.Point, spacing float64) []geo.Point {
	out := []geo.Point{waypoints[0]}
	for i := 1; i < len(waypoints); i++ {
		from, to := waypoints[i-1], waypoints[i]
		d := from.Dist(to)
		steps := int(d / spacing)
		for k := 1; k <= steps; k++ {
			out = append(out, from.Lerp(to, float64(k)/float64(steps+1)))
		}
		if d > 0 {
			out = append(out, to)
		}
	}
	return out
}

// finishTrip attaches travel-time offsets (cumulative distance over a noisy
// speed) and a random start time within one day.
func finishTrip(points []geo.Point, speedMPS float64, r *rng.RNG) trajectory.Trajectory {
	speed := speedMPS * r.Range(0.85, 1.15)
	offsets := make([]float64, len(points))
	cum := 0.0
	for i := 1; i < len(points); i++ {
		cum += points[i-1].Dist(points[i])
		offsets[i] = cum / speed
	}
	start := time.Unix(int64(r.Intn(86400)), 0).UTC()
	return trajectory.Trajectory{Points: points, Start: start, Offsets: offsets}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
