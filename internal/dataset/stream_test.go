package dataset

import (
	"math"
	"slices"
	"testing"
)

// TestStreamedBuildMatchesMaterialized is the streaming path's correctness
// anchor: for both cities, GenerateUniverse must produce bit-identical
// coverage lists, billboard inventory (locations and costs), and Table-5
// statistics to the materializing Generate + BuildUniverse pipeline. The
// chunk size is deliberately odd and smaller than |T| so chunk boundaries
// fall mid-stream.
func TestStreamedBuildMatchesMaterialized(t *testing.T) {
	const lambda = 100
	for _, cfg := range []Config{DefaultNYC(11).Scale(0.05), DefaultSG(12).Scale(0.05)} {
		t.Run(cfg.City.String(), func(t *testing.T) {
			d, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := d.BuildUniverse(lambda)
			if err != nil {
				t.Fatal(err)
			}
			got, err := GenerateUniverse(cfg, StreamOptions{Lambda: lambda, ChunkSize: 257})
			if err != nil {
				t.Fatal(err)
			}
			u := got.Universe
			if u.NumTrajectories() != want.NumTrajectories() || u.NumBillboards() != want.NumBillboards() {
				t.Fatalf("dims %d/%d, want %d/%d",
					u.NumTrajectories(), u.NumBillboards(), want.NumTrajectories(), want.NumBillboards())
			}
			for b := 0; b < want.NumBillboards(); b++ {
				if !slices.Equal(u.List(b), want.List(b)) {
					t.Fatalf("billboard %d coverage differs: %d IDs streamed, %d materialized",
						b, len(u.List(b)), len(want.List(b)))
				}
			}
			if got.Billboards.Len() != d.Billboards.Len() {
				t.Fatalf("billboard counts differ")
			}
			for b := 0; b < d.Billboards.Len(); b++ {
				sb, mb := got.Billboards.At(b), d.Billboards.At(b)
				if sb.Loc != mb.Loc || sb.Cost != mb.Cost {
					t.Fatalf("billboard %d: streamed %+v/%d, materialized %+v/%d",
						b, sb.Loc, sb.Cost, mb.Loc, mb.Cost)
				}
			}
			wantStats := d.Trajectories.ComputeStats()
			if got.Stats.Count != wantStats.Count || got.Stats.TotalPoints != wantStats.TotalPoints {
				t.Fatalf("stats counts: %+v, want %+v", got.Stats, wantStats)
			}
			// The averages accumulate in a different order; allow float
			// round-off only.
			if math.Abs(got.Stats.AvgDistanceM-wantStats.AvgDistanceM) > 1e-6 ||
				math.Abs(got.Stats.AvgTravelTime-wantStats.AvgTravelTime) > 1e-6 {
				t.Fatalf("stats averages: %+v, want %+v", got.Stats, wantStats)
			}
			if got.Table5() != d.Table5() {
				// Table5 divides the same sums; exact equality can fail only
				// on the float fields checked above, so compare loosely.
				gr, wr := got.Table5(), d.Table5()
				if gr.Name != wr.Name || gr.NumTraj != wr.NumTraj || gr.NumBillboards != wr.NumBillboards {
					t.Fatalf("Table5: %+v, want %+v", gr, wr)
				}
			}
		})
	}
}

func TestGenerateUniverseValidation(t *testing.T) {
	if _, err := GenerateUniverse(Config{}, StreamOptions{Lambda: 100}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := GenerateUniverse(DefaultNYC(1).Scale(0.01), StreamOptions{}); err == nil {
		t.Error("zero lambda accepted")
	}
}

func TestPaperConfigsMatchTable5Dimensions(t *testing.T) {
	nyc := PaperNYC(42)
	if nyc.Trajectories != 1_700_000 || nyc.Billboards != 1462 {
		t.Fatalf("PaperNYC dims %d/%d", nyc.Trajectories, nyc.Billboards)
	}
	if err := nyc.Validate(); err != nil {
		t.Fatal(err)
	}
	sg := PaperSG(42)
	if sg.Trajectories != 2_200_000 || sg.Routes*sg.StopsPerRoute != 4092 {
		t.Fatalf("PaperSG dims %d/%d", sg.Trajectories, sg.Routes*sg.StopsPerRoute)
	}
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
}
