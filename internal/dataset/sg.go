package dataset

import (
	"math"

	"repro/internal/billboard"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trajectory"
)

// The SG generator models bus-based movement: a set of bus routes, each a
// smooth random walk of stops, with one billboard at every stop (JCDecaux
// operates the bus-stop panels in the paper's dataset). A trajectory is one
// bus ride: its points are exactly the stop locations between boarding and
// alighting. This yields the paper's SG signature: near-uniform billboard
// influence, low coverage overlap across routes, and λ-insensitivity below
// the stop spacing (the audience is at distance 0 from the billboard or a
// whole stop away — Figure 12b).

const sgAreaSide = 18000 // meters; square city

// sgRoute is one generated bus route.
type sgRoute struct {
	stops []geo.Point
	// firstBB is the billboard ID of stops[0]; stop k's billboard is
	// firstBB + k (billboards are laid out route-major).
	firstBB int
}

// generateSG builds the bus dataset.
func generateSG(c Config, r *rng.RNG) (*Dataset, error) {
	routes, bills, cdf := genSGNetwork(c, r)

	tripRNG := r.Derive("trips")
	trips := make([]trajectory.Trajectory, 0, c.Trajectories)
	for i := 0; i < c.Trajectories; i++ {
		route := &routes[sampleCDF(cdf, tripRNG)]
		trips = append(trips, genSGTrip(c, route, tripRNG))
	}
	tdb, err := trajectory.NewDB(trips)
	if err != nil {
		return nil, err
	}
	return &Dataset{Config: c, Trajectories: tdb, Billboards: billboard.NewDB(bills)}, nil
}

// genSGNetwork generates the fixed infrastructure of the bus city: the
// routes, the billboard inventory (one per stop, laid out route-major), and
// the ridership CDF trips are drawn from. It is shared by the materializing
// generator above and the streaming paper-scale build (stream.go); both use
// the same "routes"/"ridership" substreams, so networks are identical
// between the two paths.
func genSGNetwork(c Config, r *rng.RNG) (routes []sgRoute, bills []billboard.Billboard, cdf []float64) {
	routeRNG := r.Derive("routes")
	routes = make([]sgRoute, c.Routes)
	for i := range routes {
		routes[i] = genSGRoute(c, routeRNG)
		routes[i].firstBB = len(bills)
		for _, stop := range routes[i].stops {
			bills = append(bills, billboard.Billboard{Loc: stop})
		}
	}

	weights := zipfWeights(r.Derive("ridership"), c.Routes, c.RouteSkew)
	cdf = make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cdf[i] = sum
	}
	return routes, bills, cdf
}

// genSGRoute walks StopsPerRoute stops with direction persistence, staying
// inside the city square by turning away from the boundary.
func genSGRoute(c Config, r *rng.RNG) sgRoute {
	margin := c.StopSpacing
	cur := geo.Point{
		X: r.Range(margin, sgAreaSide-margin),
		Y: r.Range(margin, sgAreaSide-margin),
	}
	heading := r.Range(0, 2*math.Pi)
	stops := make([]geo.Point, 0, c.StopsPerRoute)
	stops = append(stops, cur)
	for len(stops) < c.StopsPerRoute {
		heading += r.Range(-0.45, 0.45) // mild curvature
		next := cur.Add(c.StopSpacing*math.Cos(heading), c.StopSpacing*math.Sin(heading))
		// Bounce off the city boundary by steering toward the center.
		if next.X < margin || next.X > sgAreaSide-margin ||
			next.Y < margin || next.Y > sgAreaSide-margin {
			heading = math.Atan2(sgAreaSide/2-cur.Y, sgAreaSide/2-cur.X) + r.Range(-0.3, 0.3)
			next = cur.Add(c.StopSpacing*math.Cos(heading), c.StopSpacing*math.Sin(heading))
		}
		stops = append(stops, next)
		cur = next
	}
	return sgRoute{stops: stops}
}

// genSGTrip samples one ride on the route: board at a random stop, ride
// 4-14 stops (clamped to the route end), with points at each visited stop.
func genSGTrip(c Config, route *sgRoute, r *rng.RNG) trajectory.Trajectory {
	n := len(route.stops)
	// Ride length first (4..15 inter-stop hops, mean 9.5 ≈ 4.3 km at the
	// default spacing), then a boarding stop that fits; only rides longer
	// than the whole route get clamped.
	ride := 4 + r.Intn(12)
	if ride > n-1 {
		ride = n - 1
	}
	board := r.Intn(n - ride)
	alight := board + ride
	points := make([]geo.Point, 0, alight-board+1)
	for k := board; k <= alight; k++ {
		points = append(points, route.stops[k])
	}
	return finishTrip(points, c.BusSpeedMPS, r)
}

// sampleCDF draws an index proportionally to the weights behind the
// cumulative distribution.
func sampleCDF(cdf []float64, r *rng.RNG) int {
	u := r.Float64() * cdf[len(cdf)-1]
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
