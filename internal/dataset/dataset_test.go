package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/coverage"
	"repro/internal/geo"
	"repro/internal/influence"
)

// testNYC/testSG are small but statistically meaningful test scales.
func testNYC(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(DefaultNYC(7).Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testSG(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(DefaultSG(7).Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildU(t *testing.T, d *Dataset, lambda float64) *coverage.Universe {
	t.Helper()
	u, err := d.BuildUniverse(lambda)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultNYC(1).Validate(); err != nil {
		t.Errorf("default NYC invalid: %v", err)
	}
	if err := DefaultSG(1).Validate(); err != nil {
		t.Errorf("default SG invalid: %v", err)
	}
	bad := []Config{
		{},
		{City: NYC, Trajectories: 10}, // no grid
		{City: NYC, Trajectories: 0, Avenues: 5, Streets: 5},
		{City: SG, Trajectories: 10}, // no routes
		{City: City(9), Trajectories: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestScale(t *testing.T) {
	nyc := DefaultNYC(1).Scale(0.5)
	if nyc.Trajectories != 20000 || nyc.Billboards != 200 {
		t.Errorf("NYC Scale(0.5): |T|=%d |U|=%d", nyc.Trajectories, nyc.Billboards)
	}
	sg := DefaultSG(1).Scale(0.5)
	if sg.Trajectories != 27500 || sg.Routes != 24 {
		t.Errorf("SG Scale(0.5): |T|=%d routes=%d", sg.Trajectories, sg.Routes)
	}
	tiny := DefaultNYC(1).Scale(0.000001)
	if tiny.Trajectories < 1 || tiny.Billboards < 1 {
		t.Error("Scale should clamp to at least 1")
	}
}

func TestCityString(t *testing.T) {
	if NYC.String() != "NYC" || SG.String() != "SG" {
		t.Error("City strings wrong")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultNYC(42).Scale(0.01)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trajectories.Len() != b.Trajectories.Len() {
		t.Fatal("same seed gave different |T|")
	}
	for i := 0; i < a.Trajectories.Len(); i++ {
		ta, tb := a.Trajectories.At(i), b.Trajectories.At(i)
		if len(ta.Points) != len(tb.Points) || ta.Points[0] != tb.Points[0] {
			t.Fatalf("same seed gave different trajectory %d", i)
		}
	}
	for i := 0; i < a.Billboards.Len(); i++ {
		if a.Billboards.At(i).Loc != b.Billboards.At(i).Loc {
			t.Fatalf("same seed gave different billboard %d", i)
		}
	}
	c, err := Generate(DefaultNYC(43).Scale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if c.Trajectories.At(0).Points[0] == a.Trajectories.At(0).Points[0] {
		t.Error("different seeds gave identical first trajectory")
	}
}

// TestTable5Calibration checks the dataset statistics against the paper's
// Table 5 (AvgDistance 2.9 km / 569 s for NYC, 4.2 km / 1342 s for SG),
// within a ±15% band.
func TestTable5Calibration(t *testing.T) {
	nyc := testNYC(t).Table5()
	if math.Abs(nyc.AvgDistanceKM-2.9) > 0.45 {
		t.Errorf("NYC AvgDistance = %.2f km, want 2.9 ± 0.45", nyc.AvgDistanceKM)
	}
	if math.Abs(nyc.AvgTravelSec-569) > 90 {
		t.Errorf("NYC AvgTravelTime = %.0f s, want 569 ± 90", nyc.AvgTravelSec)
	}
	sg := testSG(t).Table5()
	if math.Abs(sg.AvgDistanceKM-4.2) > 0.65 {
		t.Errorf("SG AvgDistance = %.2f km, want 4.2 ± 0.65", sg.AvgDistanceKM)
	}
	if math.Abs(sg.AvgTravelSec-1342) > 210 {
		t.Errorf("SG AvgTravelTime = %.0f s, want 1342 ± 210", sg.AvgTravelSec)
	}
}

// TestFigure1Properties checks the distributional signatures of Figure 1:
// NYC influence is more heavy-tailed than SG, and NYC's cumulative
// impression curve rises more slowly (heavier overlap).
func TestFigure1Properties(t *testing.T) {
	// The overlap signature needs realistic billboard density, so this
	// test runs at a quarter of the default scale rather than the tenth
	// used elsewhere (with 40 billboards the top-10% is just 4 boards and
	// the statistic is noise).
	dn, err := Generate(DefaultNYC(7).Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(DefaultSG(7).Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	un := buildU(t, dn, influence.DefaultLambda)
	us := buildU(t, ds, influence.DefaultLambda)

	cn := influence.NormalizedInfluenceCurve(un)
	cs := influence.NormalizedInfluenceCurve(us)
	// Median normalized influence: SG more uniform → higher median.
	if cn[len(cn)/2] >= cs[len(cs)/2] {
		t.Errorf("NYC median normalized influence %.3f should be below SG's %.3f",
			cn[len(cn)/2], cs[len(cs)/2])
	}
	// Impression curve at 25%% of billboards: SG covers more (Fig 1b).
	in := influence.ImpressionCurve(un, []float64{0.25})[0]
	is := influence.ImpressionCurve(us, []float64{0.25})[0]
	if in >= is {
		t.Errorf("NYC impression@25%% = %.3f should be below SG's %.3f", in, is)
	}
	// Overlap among top billboards: NYC heavier.
	on := influence.OverlapRatio(un, un.NumBillboards()/10)
	os := influence.OverlapRatio(us, us.NumBillboards()/10)
	if on <= os {
		t.Errorf("NYC top-10%% overlap %.3f should exceed SG's %.3f", on, os)
	}
}

// TestFigure12Properties checks the λ sensitivity contrast of Figure 12:
// NYC supply grows strongly with λ while SG stays nearly flat below 150 m.
func TestFigure12Properties(t *testing.T) {
	nyc, sg := testNYC(t), testSG(t)
	supply := func(d *Dataset, lambda float64) float64 {
		return float64(buildU(t, d, lambda).TotalSupply())
	}
	n50, n200 := supply(nyc, 50), supply(nyc, 200)
	if n200 < 1.4*n50 {
		t.Errorf("NYC supply should grow strongly with λ: %v → %v", n50, n200)
	}
	s50, s150 := supply(sg, 50), supply(sg, 150)
	if s150 > 1.15*s50 {
		t.Errorf("SG supply should stay nearly flat below λ=150: %v → %v", s50, s150)
	}
}

func TestSGBillboardsAtStops(t *testing.T) {
	d := testSG(t)
	want := d.Config.Routes * d.Config.StopsPerRoute
	if d.Billboards.Len() != want {
		t.Fatalf("SG |U| = %d, want routes × stops = %d", d.Billboards.Len(), want)
	}
	// Every SG trajectory point coincides exactly with some billboard
	// location (bus riders are observed at stops).
	locs := map[[2]float64]bool{}
	for i := 0; i < d.Billboards.Len(); i++ {
		p := d.Billboards.At(i).Loc
		locs[[2]float64{p.X, p.Y}] = true
	}
	for id := 0; id < 50 && id < d.Trajectories.Len(); id++ {
		for _, p := range d.Trajectories.At(id).Points {
			if !locs[[2]float64{p.X, p.Y}] {
				t.Fatalf("trajectory %d has point %v not at any stop", id, p)
			}
		}
	}
}

func TestTrajectoriesHaveValidTimes(t *testing.T) {
	for _, d := range []*Dataset{testNYC(t), testSG(t)} {
		for id := 0; id < 100 && id < d.Trajectories.Len(); id++ {
			tr := d.Trajectories.At(id)
			if tr.TravelTime() <= 0 {
				t.Fatalf("%s trajectory %d has travel time %v", d.Config.City, id, tr.TravelTime())
			}
			if tr.Start.Unix() < 0 || tr.Start.Unix() >= 86400 {
				t.Fatalf("%s trajectory %d start %v outside day", d.Config.City, id, tr.Start.Unix())
			}
		}
	}
}

func TestBuildUniverseAssignsCosts(t *testing.T) {
	d := testNYC(t)
	u := buildU(t, d, influence.DefaultLambda)
	nonzero := 0
	for b := 0; b < d.Billboards.Len(); b++ {
		cost := d.Billboards.At(b).Cost
		deg := u.Degree(b)
		// w = ⌊τ·I/10⌋ with τ ∈ [0.9, 1.1).
		lo := int64(math.Floor(0.9 * float64(deg) / 10))
		hi := int64(math.Floor(1.1 * float64(deg) / 10))
		if cost < lo-1 || cost > hi+1 {
			t.Fatalf("billboard %d cost %d outside [%d, %d] for influence %d", b, cost, lo, hi, deg)
		}
		if cost > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all costs zero — influence model produced no coverage")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, err := Generate(DefaultNYC(3).Scale(0.005))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "nyc")
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.City != NYC || got.Config.Seed != 3 {
		t.Errorf("config round trip: %+v", got.Config)
	}
	if got.Trajectories.Len() != d.Trajectories.Len() {
		t.Errorf("|T| = %d, want %d", got.Trajectories.Len(), d.Trajectories.Len())
	}
	if got.Billboards.Len() != d.Billboards.Len() {
		t.Errorf("|U| = %d, want %d", got.Billboards.Len(), d.Billboards.Len())
	}
	// Coverage built from the reloaded dataset must match the original.
	u1 := buildU(t, d, 100)
	u2 := buildU(t, got, 100)
	for b := 0; b < u1.NumBillboards(); b++ {
		if u1.Degree(b) != u2.Degree(b) {
			t.Fatalf("billboard %d influence drifted through save/load: %d vs %d",
				b, u1.Degree(b), u2.Degree(b))
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Load of missing dir succeeded")
	}
}

func TestDensify(t *testing.T) {
	pts := densify([]geo.Point{{X: 0, Y: 0}, {X: 300, Y: 0}}, 100)
	if len(pts) < 4 {
		t.Fatalf("densify produced %d points, want >= 4", len(pts))
	}
	if pts[0] != (geo.Point{X: 0, Y: 0}) || pts[len(pts)-1] != (geo.Point{X: 300, Y: 0}) {
		t.Fatal("densify lost endpoints")
	}
	for i := 1; i < len(pts); i++ {
		if d := pts[i-1].Dist(pts[i]); d > 101 {
			t.Fatalf("densify gap %v > spacing", d)
		}
	}
	// Zero-length segments must not divide by zero or drop waypoints.
	same := densify([]geo.Point{{X: 5, Y: 5}, {X: 5, Y: 5}}, 100)
	if len(same) != 1 {
		t.Fatalf("densify of coincident points = %d points, want 1", len(same))
	}
}

func TestSGRoutesStayInCity(t *testing.T) {
	d := testSG(t)
	for b := 0; b < d.Billboards.Len(); b++ {
		p := d.Billboards.At(b).Loc
		if p.X < -100 || p.X > sgAreaSide+100 || p.Y < -100 || p.Y > sgAreaSide+100 {
			t.Fatalf("stop %d at %v escapes the city square", b, p)
		}
	}
}

func TestNYCPointsFollowGrid(t *testing.T) {
	// Every NYC trajectory point lies on a grid corridor: its X matches
	// an avenue or its Y matches a street (within float tolerance).
	d := testNYC(t)
	cfg := d.Config
	onAvenue := func(x float64) bool {
		rem := math.Mod(x, cfg.AvenueSpacing)
		return rem < 1e-6 || cfg.AvenueSpacing-rem < 1e-6
	}
	onStreet := func(y float64) bool {
		rem := math.Mod(y, cfg.StreetSpacing)
		return rem < 1e-6 || cfg.StreetSpacing-rem < 1e-6
	}
	for id := 0; id < 100 && id < d.Trajectories.Len(); id++ {
		for _, p := range d.Trajectories.At(id).Points {
			if !onAvenue(p.X) && !onStreet(p.Y) {
				t.Fatalf("trajectory %d point %v off the street grid", id, p)
			}
		}
	}
}

func TestNYCSupplyRatioRegime(t *testing.T) {
	// The supply-to-trajectory ratio I*/|T| must stay in a regime where
	// the paper's p=20% workloads are satisfiable (see DESIGN.md):
	// demand = 0.2·I* must not exceed |T|, i.e. ratio <= 5. The ratio
	// grows linearly with the billboard count (each board covers a fixed
	// trip fraction), so it is checked at the evaluation scales: here
	// 0.1 (|U| = 40, expected ratio around 1.4); the recorded 0.25-scale
	// run sits around 3.5. DESIGN.md documents the regime caveat.
	d := testNYC(t)
	u := buildU(t, d, influence.DefaultLambda)
	ratio := float64(u.TotalSupply()) / float64(u.NumTrajectories())
	if ratio < 0.8 || ratio > 5 {
		t.Fatalf("NYC I*/|T| = %.2f at scale 0.1, want 0.8..5 (p=20%% regime)", ratio)
	}
}
