package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/billboard"
	"repro/internal/trajectory"
)

// On-disk layout of a saved dataset directory:
//
//	config.json       the generator Config
//	trajectories.csv  point-per-row trajectory table
//	billboards.csv    billboard table
//
// Save/Load let the CLI generate once and reuse across experiment runs.

const (
	configFile = "config.json"
	trajFile   = "trajectories.csv"
	bbFile     = "billboards.csv"
)

// Save writes the dataset into dir, creating it if needed.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	cfg, err := json.MarshalIndent(d.Config, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: marshal config: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, configFile), cfg, 0o644); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	tf, err := os.Create(filepath.Join(dir, trajFile))
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer tf.Close()
	if err := trajectory.WriteCSV(tf, d.Trajectories); err != nil {
		return err
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	bf, err := os.Create(filepath.Join(dir, bbFile))
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer bf.Close()
	if err := billboard.WriteCSV(bf, d.Billboards); err != nil {
		return err
	}
	return bf.Close()
}

// Load reads a dataset previously written by Save.
func Load(dir string) (*Dataset, error) {
	cfgBytes, err := os.ReadFile(filepath.Join(dir, configFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(cfgBytes, &cfg); err != nil {
		return nil, fmt.Errorf("dataset: parse config: %w", err)
	}
	tf, err := os.Open(filepath.Join(dir, trajFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer tf.Close()
	tdb, err := trajectory.ReadCSV(tf)
	if err != nil {
		return nil, err
	}
	bf, err := os.Open(filepath.Join(dir, bbFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer bf.Close()
	bdb, err := billboard.ReadCSV(bf)
	if err != nil {
		return nil, err
	}
	return &Dataset{Config: cfg, Trajectories: tdb, Billboards: bdb}, nil
}
