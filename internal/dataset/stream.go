package dataset

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/billboard"
	"repro/internal/coverage"
	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/trajectory"
)

// Streaming paper-scale generation. Generate materializes every trajectory
// before the spatial join, which at the paper's real dataset sizes
// (Table 5: |T| = 1.7M NYC, 2.2M SG) means tens of millions of points —
// gigabytes of transient geometry that the algorithms never look at again.
// GenerateUniverse instead generates trips in fixed-size chunks, joins each
// chunk against the billboards with a chunk-local grid index, appends the
// chunk's coverage, and discards the geometry. Peak memory is one chunk of
// trips plus the accumulated coverage lists.
//
// The streamed build is bit-identical to Generate + BuildUniverse for the
// same Config and λ: the fixed infrastructure (grid/billboards, routes/
// ridership) comes from the same named RNG substreams, trips are drawn from
// one sequential "trips" substream exactly as Generate draws them, and
// coverage is order-insensitive (chunk trip IDs ascend, so per-chunk sorted
// lists concatenate into globally sorted lists). Equivalence is enforced by
// TestStreamedBuildMatchesMaterialized.

// PaperNYC returns the NYC configuration at the paper's full scale
// (Table 5: |T| = 1.7M, |U| = 1462). Grid geometry matches DefaultNYC;
// only the trajectory and billboard counts grow.
func PaperNYC(seed uint64) Config {
	c := DefaultNYC(seed)
	c.Trajectories = 1_700_000
	c.Billboards = 1462
	return c
}

// PaperSG returns the SG configuration at the paper's full scale (Table 5:
// |T| = 2.2M, |U| = 4092 = 124 routes × 33 stops).
func PaperSG(seed uint64) Config {
	c := DefaultSG(seed)
	c.Trajectories = 2_200_000
	c.Routes = 124
	c.StopsPerRoute = 33
	return c
}

// StreamOptions configures a streaming universe build.
type StreamOptions struct {
	// Lambda is the influence radius in meters. Must be positive.
	Lambda float64
	// ChunkSize is the number of trajectories generated and joined per
	// chunk; 0 selects 100000.
	ChunkSize int
	// Parallelism bounds concurrent per-billboard join workers within a
	// chunk; 0 selects GOMAXPROCS.
	Parallelism int
}

// Streamed is the result of a streaming build: the coverage universe and
// billboard inventory (with costs assigned), plus the Table-5 trajectory
// statistics accumulated on the fly — the trajectories themselves are gone.
type Streamed struct {
	Config     Config
	Universe   *coverage.Universe
	Billboards *billboard.DB
	Stats      trajectory.Stats
}

// Table5 computes the dataset-statistics row without a trajectory DB.
func (s *Streamed) Table5() Table5Row {
	return Table5Row{
		Name:          s.Config.City.String(),
		NumTraj:       s.Stats.Count,
		NumBillboards: s.Billboards.Len(),
		AvgDistanceKM: s.Stats.AvgDistanceM / 1000,
		AvgTravelSec:  s.Stats.AvgTravelTime,
	}
}

// GenerateUniverse builds the coverage universe for the configuration at
// the given options without ever materializing the full trajectory set.
func GenerateUniverse(c Config, opts StreamOptions) (*Streamed, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opts.Lambda <= 0 {
		return nil, fmt.Errorf("dataset: lambda %v must be positive", opts.Lambda)
	}
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = 100_000
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Mirror influence.BuildCoverage's default cell size so the chunk-local
	// grids probe identical neighborhoods.
	cell := opts.Lambda
	if cell < 10 {
		cell = 10
	}

	r := rng.New(c.Seed).Derive(c.City.String())
	var nextTrip func() trajectory.Trajectory
	var bills []billboard.Billboard
	switch c.City {
	case NYC:
		grid := newNYCGrid(c, r.Derive("grid"))
		bills = genNYCBillboards(c, grid, r.Derive("billboards"))
		tripRNG := r.Derive("trips")
		nextTrip = func() trajectory.Trajectory { return genNYCTrip(grid, tripRNG) }
	case SG:
		routes, sgBills, cdf := genSGNetwork(c, r)
		bills = sgBills
		tripRNG := r.Derive("trips")
		nextTrip = func() trajectory.Trajectory {
			route := &routes[sampleCDF(cdf, tripRNG)]
			return genSGTrip(c, route, tripRNG)
		}
	default:
		return nil, fmt.Errorf("dataset: unknown city %d", c.City)
	}
	bdb := billboard.NewDB(bills)

	lists := make([]coverage.List, len(bills))
	var stats trajectory.Stats
	var sumDist, sumTime float64

	var points []geo.Point
	var owner []int32
	for base := 0; base < c.Trajectories; base += chunk {
		n := chunk
		if base+n > c.Trajectories {
			n = c.Trajectories - base
		}
		points = points[:0]
		owner = owner[:0]
		for i := 0; i < n; i++ {
			t := nextTrip()
			t.ID = int32(base + i)
			if err := t.Validate(); err != nil {
				return nil, err
			}
			sumDist += t.Distance()
			sumTime += t.TravelTime()
			stats.TotalPoints += len(t.Points)
			points = append(points, t.Points...)
			for range t.Points {
				owner = append(owner, t.ID)
			}
		}
		stats.Count += n

		index := geo.NewGrid(points, cell)
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]int32, 0, 1024)
				ids := make([]int32, 0, 256)
				for b := range jobs {
					buf = index.Within(bdb.At(b).Loc, opts.Lambda, buf[:0])
					ids = ids[:0]
					for _, pi := range buf {
						ids = append(ids, owner[pi])
					}
					// Chunk trip IDs all exceed every earlier chunk's, so
					// appending the sorted chunk list keeps the billboard's
					// full list sorted and duplicate-free.
					chunkList := coverage.NewList(append([]int32(nil), ids...))
					lists[b] = append(lists[b], chunkList...)
				}
			}()
		}
		for b := 0; b < bdb.Len(); b++ {
			jobs <- b
		}
		close(jobs)
		wg.Wait()
	}
	if stats.Count > 0 {
		stats.AvgDistanceM = sumDist / float64(stats.Count)
		stats.AvgTravelTime = sumTime / float64(stats.Count)
	}

	u, err := coverage.NewUniverse(c.Trajectories, lists)
	if err != nil {
		return nil, err
	}
	infl := make([]int, u.NumBillboards())
	for b := range infl {
		infl[b] = u.Degree(b)
	}
	if err := bdb.AssignCosts(infl, rng.New(c.Seed).Derive("costs")); err != nil {
		return nil, err
	}
	return &Streamed{Config: c, Universe: u, Billboards: bdb, Stats: stats}, nil
}
