package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
)

// CheckTrace fetches one trace from the daemon's span store and validates
// the end-to-end contract the trace-smoke target asserts: the tree has a
// single "request" root, its phase children cover at least minPhases
// distinct lifecycle phases, and the phase durations sum to the root's
// duration within tolerance (they are laid out contiguously server-side, so
// the integer-nanosecond sum is exact; the tolerance only absorbs JSON
// round-tripping). Returns a one-line description of the validated tree.
func CheckTrace(ctx context.Context, baseURL, traceID string, client *http.Client, minPhases int) (string, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/traces/"+traceID, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /debug/traces/%s: status %d: %s", traceID, resp.StatusCode, truncateErr(raw))
	}
	var tree server.TraceTree
	if err := json.Unmarshal(raw, &tree); err != nil {
		return "", fmt.Errorf("decode trace %s: %w", traceID, err)
	}
	if tree.TraceID != traceID {
		return "", fmt.Errorf("trace %s answered with id %s", traceID, tree.TraceID)
	}
	if len(tree.Roots) != 1 {
		return "", fmt.Errorf("trace %s has %d roots, want 1", traceID, len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Name != "request" {
		return "", fmt.Errorf("trace %s root span is %q, want request", traceID, root.Name)
	}
	phases := make(map[string]time.Duration, len(root.Children))
	var sum time.Duration
	for _, ph := range root.Children {
		phases[ph.Name] = ph.Duration
		sum += ph.Duration
	}
	if len(phases) < minPhases {
		return "", fmt.Errorf("trace %s covers %d phases %v, want >= %d", traceID, len(phases), phaseNames(phases), minPhases)
	}
	// 1ms or 1% of the root, whichever is larger: generous against an exact
	// server-side invariant.
	tol := max(time.Millisecond, root.Duration/100)
	diff := sum - root.Duration
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		return "", fmt.Errorf("trace %s phases sum to %v but root is %v (tolerance %v)", traceID, sum, root.Duration, tol)
	}
	return fmt.Sprintf("trace %s ok: %d phases %v sum %v = root %v (outcome %s)",
		traceID, len(phases), phaseNames(phases), sum, root.Duration, tree.Outcome), nil
}

func phaseNames(phases map[string]time.Duration) []string {
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	// map order is random; sort for stable error messages
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
