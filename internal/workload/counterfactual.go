package workload

import (
	"container/heap"
	"sort"
	"time"

	"repro/internal/server"
)

// ServiceModel supplies the oracle per-request service times the simulator
// runs on: the mean worker-hold time per algorithm, measured from a real
// replay (MeasureServiceModel) or supplied directly in tests.
type ServiceModel struct {
	// MSByAlgorithm maps solver names to mean uncached worker-hold
	// milliseconds.
	MSByAlgorithm map[string]float64 `json:"ms_by_algorithm,omitempty"`
	// DefaultMS backs algorithms absent from MSByAlgorithm.
	DefaultMS float64 `json:"default_ms"`
}

// ServiceMS returns the modeled worker-hold time for one algorithm.
func (m ServiceModel) ServiceMS(algorithm string) float64 {
	if ms, ok := m.MSByAlgorithm[algorithm]; ok && ms > 0 {
		return ms
	}
	return m.DefaultMS
}

// meanMS is the trace-exposure-weighted mean service time — the simulator's
// stand-in for the server's EWMA drain estimate. The real estimator
// converges on this value under a stationary mix; using the stationary mean
// keeps the counterfactual deterministic and free of warm-up artifacts.
func (m ServiceModel) meanMS(trace Trace) float64 {
	if len(trace) == 0 {
		return m.DefaultMS
	}
	var sum float64
	var n int
	for _, r := range trace {
		if r.IsPatch() {
			continue
		}
		sum += m.ServiceMS(r.Algorithm)
		n++
	}
	if n == 0 {
		return m.DefaultMS
	}
	return sum / float64(n)
}

// MeasureServiceModel fits a ServiceModel to an observed replay: per
// algorithm, the mean latency of uncached fully-served 200s (cached answers
// never held a worker; truncated ones measure the deadline, not the work).
// Algorithms with no usable sample fall back to DefaultMS, the mean over
// every usable sample.
func MeasureServiceModel(trace Trace, results []Result) ServiceModel {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	var allSum float64
	var allN int
	for i, res := range results {
		if res.Status != 200 || res.Cached || res.Truncated || i >= len(trace) || trace[i].IsPatch() {
			continue
		}
		alg := trace[i].Algorithm
		sums[alg] += res.LatencyMS
		counts[alg]++
		allSum += res.LatencyMS
		allN++
	}
	m := ServiceModel{MSByAlgorithm: make(map[string]float64, len(sums)), DefaultMS: 1}
	if allN > 0 {
		m.DefaultMS = allSum / float64(allN)
	}
	for alg, sum := range sums {
		m.MSByAlgorithm[alg] = sum / float64(counts[alg])
	}
	return m
}

// Cost model for the counterfactual comparison, in "lost request" units: a
// fully served request costs 0; a truncated one costs its undelivered
// fraction (a solve cut off at 40% of its modeled service cost 0.6); a shed
// request costs ShedCost. Shedding is priced cheaper than delivering almost
// nothing — the client got an honest, instant 429 with a Retry-After
// instead of waiting a full deadline for a degenerate plan — but pricier
// than any mostly-complete solve.
const ShedCost = 0.3

// SimOutcome is one request's fate in a simulated run.
type SimOutcome struct {
	Outcome string `json:"outcome"`
	// WaitMS is the simulated queue wait before a worker started the
	// request (0 for shed requests).
	WaitMS float64 `json:"wait_ms"`
	// Delivered is the fraction of the request's modeled service completed
	// before its deadline (1 for untruncated, 0 for shed).
	Delivered float64 `json:"delivered"`
	Cost      float64 `json:"cost"`
	// Outstanding is the number of admission tokens held at the moment the
	// request arrived — the queue state its admission decision was made
	// against. Property tests replay admission rules against it.
	Outstanding int `json:"-"`
}

// SimRun aggregates one simulated replay of a trace under one admission
// policy.
type SimRun struct {
	Policy   string         `json:"policy"`
	Outcomes map[string]int `json:"outcomes"`
	// MeanCost is TotalCost averaged over every trace request — the
	// quantity regret is defined on.
	MeanCost  float64 `json:"mean_cost"`
	TotalCost float64 `json:"total_cost"`
	// PerRequest is indexed by Request.Index; it is reported for tests and
	// omitted from JSON.
	PerRequest []SimOutcome `json:"-"`
	// MaxHeld records, per instance, the peak number of admission slots
	// held at once — the quantity the fair policy bounds by FairShare.
	MaxHeld map[string]int `json:"-"`
}

// Simulate replays the trace through a deterministic discrete-event model
// of mroamd's admission layer under params.Policy: the same worker/queue
// token scheme, the same rejection rules — fairness, then deadline
// feasibility (via server.DeadlineFeasible, the very function the server
// calls), then capacity — and a deadline-truncation model in which an
// admitted request holds a worker for min(service, remaining budget).
//
// Two deliberate simplifications, both documented in DESIGN.md §13: service
// times come from the oracle ServiceModel rather than per-request noise,
// and the drain estimate is the stationary mean service time rather than
// the server's warm-up EWMA. Everything else — admission order, token
// accounting, completion scheduling — mirrors the server, so the simulated
// shed set under the server's own policy tracks the observed one.
func Simulate(trace Trace, params ServerParams, svc ServiceModel) SimRun {
	run := SimRun{
		Policy:     params.Policy,
		Outcomes:   make(map[string]int),
		PerRequest: make([]SimOutcome, len(trace)),
		MaxHeld:    make(map[string]int),
	}
	if params.Policy == "" {
		run.Policy = server.AdmitShed
	}
	if params.FairShare < 1 {
		params.FairShare = server.DefaultFairShare(params.Capacity())
	}
	svcEst := time.Duration(svc.meanMS(trace) * float64(time.Millisecond))

	// Arrival order: by timestamp, index-stable on ties — the order the
	// open-loop runner issues them.
	order := make([]int, len(trace))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return trace[order[a]].AtMS < trace[order[b]].AtMS })

	var (
		done    completionHeap
		fifo    []int          // admitted requests waiting for a worker
		running int            // requests holding a worker
		held    map[string]int // admission slots held per instance
	)
	held = make(map[string]int)

	start := func(idx int, now float64) {
		running++
		r := trace[idx]
		serviceMS := svc.ServiceMS(r.Algorithm)
		waitMS := now - r.AtMS
		holdMS, delivered := serviceMS, 1.0
		if r.DeadlineMS > 0 {
			if budget := float64(r.DeadlineMS) - waitMS; budget <= 0 {
				// Deadline spent in the queue: the solver observes an
				// already-expired context and returns immediately.
				holdMS, delivered = 0, 0
			} else if budget < serviceMS {
				holdMS, delivered = budget, budget/serviceMS
			}
		}
		outcome := OutcomeServed
		if delivered < 1 {
			outcome = OutcomeServedTruncated
		}
		run.PerRequest[idx] = SimOutcome{Outcome: outcome, WaitMS: waitMS, Delivered: delivered, Cost: 1 - delivered}
		heap.Push(&done, completion{at: now + holdMS, idx: idx})
	}

	shed := func(idx int, outcome string) {
		run.PerRequest[idx] = SimOutcome{Outcome: outcome, Cost: ShedCost}
	}

	outstandingAt := make([]int, len(trace))
	arrive := func(idx int) {
		r := trace[idx]
		if r.IsPatch() {
			// PATCHes never enter the admission layer: they hold no token,
			// cost nothing, and are invisible to every policy.
			run.PerRequest[idx] = SimOutcome{Outcome: OutcomePatched}
			return
		}
		now := r.AtMS
		outstanding := running + len(fifo)
		outstandingAt[idx] = outstanding
		// Mirror the server's check order: the fairness reservation comes
		// first, then deadline screening, then the queue-full select.
		if run.Policy == server.AdmitFair && held[r.Instance]+1 > params.FairShare {
			shed(idx, OutcomeShedFairness)
			return
		}
		if run.Policy == server.AdmitDeadline &&
			!server.DeadlineFeasible(r.Deadline(), outstanding, params.Workers, svcEst) {
			shed(idx, OutcomeShedDeadline)
			return
		}
		if outstanding >= params.Capacity() {
			shed(idx, OutcomeShedCapacity)
			return
		}
		held[r.Instance]++
		if held[r.Instance] > run.MaxHeld[r.Instance] {
			run.MaxHeld[r.Instance] = held[r.Instance]
		}
		if running < params.Workers {
			start(idx, now)
		} else {
			fifo = append(fifo, idx)
		}
	}

	complete := func(c completion) {
		running--
		held[trace[c.idx].Instance]--
		if len(fifo) > 0 {
			next := fifo[0]
			fifo = fifo[1:]
			start(next, c.at)
		}
	}

	// Event loop; on timestamp ties completions run first, matching the
	// server where a freed token is available to a same-instant arrival.
	ai := 0
	for ai < len(order) || done.Len() > 0 {
		if done.Len() > 0 && (ai >= len(order) || done[0].at <= trace[order[ai]].AtMS) {
			complete(heap.Pop(&done).(completion))
			continue
		}
		arrive(order[ai])
		ai++
	}

	solves := 0
	for i := range run.PerRequest {
		run.PerRequest[i].Outstanding = outstandingAt[i]
		run.Outcomes[run.PerRequest[i].Outcome]++
		run.TotalCost += run.PerRequest[i].Cost
		if !trace[i].IsPatch() {
			solves++
		}
	}
	// Mean over solve entries only: patches carry no admission cost, and
	// counting them would dilute the per-request regret the policies are
	// compared on.
	if solves > 0 {
		run.MeanCost = run.TotalCost / float64(solves)
	}
	return run
}

// completion is a scheduled worker release.
type completion struct {
	at  float64
	idx int
}

// completionHeap orders completions by time, index-stable on ties so the
// simulation is deterministic.
type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].idx < h[b].idx
}
func (h completionHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Counterfactual prices one trace under the policy that served it and one
// alternative, on the same simulator with the same service model, and
// reports the regret of the choice: how much cheaper (positive) or pricier
// (negative) the run would have been per request under the alternative.
type Counterfactual struct {
	Baseline            string  `json:"baseline"`
	Alternative         string  `json:"alternative"`
	BaselineMeanCost    float64 `json:"baseline_mean_cost"`
	AlternativeMeanCost float64 `json:"alternative_mean_cost"`
	// Regret = BaselineMeanCost − AlternativeMeanCost: positive means the
	// alternative admission policy would have cost less on this exact
	// trace.
	Regret              float64        `json:"regret"`
	BaselineOutcomes    map[string]int `json:"baseline_outcomes"`
	AlternativeOutcomes map[string]int `json:"alternative_outcomes"`
}

// Policies lists every admission policy, in the order reports present them.
var Policies = []string{server.AdmitShed, server.AdmitDeadline, server.AdmitFair}

// Compare simulates the trace under params.Policy and under every other
// admission policy, returning one Counterfactual per alternative.
func Compare(trace Trace, params ServerParams, svc ServiceModel) []Counterfactual {
	base := Simulate(trace, params, svc)
	var out []Counterfactual
	for _, alt := range Policies {
		if alt == base.Policy {
			continue
		}
		altParams := params
		altParams.Policy = alt
		altRun := Simulate(trace, altParams, svc)
		out = append(out, Counterfactual{
			Baseline:            base.Policy,
			Alternative:         alt,
			BaselineMeanCost:    base.MeanCost,
			AlternativeMeanCost: altRun.MeanCost,
			Regret:              base.MeanCost - altRun.MeanCost,
			BaselineOutcomes:    base.Outcomes,
			AlternativeOutcomes: altRun.Outcomes,
		})
	}
	return out
}
