package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// overloadedParams is a deployment the test traces comfortably saturate:
// 2 workers, 4 admission tokens.
func overloadedParams(policy string) ServerParams {
	return ServerParams{Workers: 2, QueueDepth: 2, Policy: policy, FairShare: 2}
}

// slowModel makes every request hold a worker for 50ms — at 200 req/s the
// offered load is 10 worker-seconds per second against 2 workers, a 5×
// overload.
var slowModel = ServiceModel{DefaultMS: 50}

func overloadTrace(t *testing.T, seed uint64, deadlines []int64, instances []string) Trace {
	t.Helper()
	tr, err := Generate(Config{
		Seed:        seed,
		Duration:    2 * time.Second,
		Rate:        200,
		Instances:   instances,
		Algorithms:  []string{"G-Order"},
		DeadlinesMS: deadlines,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSimulateDeterministic: the simulator is a pure function of its
// inputs.
func TestSimulateDeterministic(t *testing.T) {
	tr := overloadTrace(t, 11, []int64{0, 30, 120}, []string{"", "sg"})
	for _, policy := range Policies {
		a := Simulate(tr, overloadedParams(policy), slowModel)
		b := Simulate(tr, overloadedParams(policy), slowModel)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two simulations of the same trace disagree", policy)
		}
	}
}

// TestSimulateConservation: every request gets exactly one outcome, and
// per-request costs stay in [0, 1].
func TestSimulateConservation(t *testing.T) {
	tr := overloadTrace(t, 12, []int64{0, 30}, []string{"", "sg"})
	for _, policy := range Policies {
		run := Simulate(tr, overloadedParams(policy), slowModel)
		total := 0
		for _, n := range run.Outcomes {
			total += n
		}
		if total != len(tr) {
			t.Fatalf("%s: %d outcomes for %d requests", policy, total, len(tr))
		}
		for i, o := range run.PerRequest {
			if o.Cost < 0 || o.Cost > 1 {
				t.Fatalf("%s: request %d cost %v outside [0,1]", policy, i, o.Cost)
			}
			if o.Outcome == "" {
				t.Fatalf("%s: request %d has no outcome", policy, i)
			}
		}
	}
}

// TestSimulateShedPolicyOnlyCapacity: the default policy never sheds for
// any reason other than a full queue — the simulated counterpart of the
// server's backward-compatibility guarantee — and under overload it does
// shed.
func TestSimulateShedPolicyOnlyCapacity(t *testing.T) {
	tr := overloadTrace(t, 13, []int64{0, 30}, []string{"", "sg"})
	run := Simulate(tr, overloadedParams(server.AdmitShed), slowModel)
	if run.Outcomes[OutcomeShedDeadline] != 0 || run.Outcomes[OutcomeShedFairness] != 0 {
		t.Fatalf("shed policy used policy-specific rejections: %v", run.Outcomes)
	}
	if run.Outcomes[OutcomeShedCapacity] == 0 {
		t.Fatalf("5× overload produced no capacity sheds: %v", run.Outcomes)
	}
	// Every capacity shed happened with the queue actually full.
	for i, o := range run.PerRequest {
		if o.Outcome == OutcomeShedCapacity && o.Outstanding < overloadedParams("").Capacity() {
			t.Fatalf("request %d shed with only %d/%d tokens held", i, o.Outstanding, overloadedParams("").Capacity())
		}
	}
}

// TestSimulateDeadlineAdmittedSetFeasible is the feasible-by-construction
// property: under the deadline policy, every admitted deadline-carrying
// request was feasible — per server.DeadlineFeasible, the function the live
// server runs — against the queue state at its admission, and every
// deadline shed was infeasible against it.
func TestSimulateDeadlineAdmittedSetFeasible(t *testing.T) {
	params := overloadedParams(server.AdmitDeadline)
	for seed := uint64(0); seed < 10; seed++ {
		tr := overloadTrace(t, seed, []int64{5, 40, 200}, nil)
		run := Simulate(tr, params, slowModel)
		svcEst := time.Duration(slowModel.meanMS(tr) * float64(time.Millisecond))
		for i, o := range run.PerRequest {
			feasible := server.DeadlineFeasible(tr[i].Deadline(), o.Outstanding, params.Workers, svcEst)
			switch o.Outcome {
			case OutcomeShedDeadline:
				if feasible {
					t.Fatalf("seed %d: request %d shed as infeasible but DeadlineFeasible=true (outstanding %d)",
						seed, i, o.Outstanding)
				}
			case OutcomeServed, OutcomeServedTruncated:
				if !feasible {
					t.Fatalf("seed %d: request %d admitted while infeasible (deadline %v, outstanding %d)",
						seed, i, tr[i].Deadline(), o.Outstanding)
				}
			}
		}
		if run.Outcomes[OutcomeShedDeadline] == 0 {
			t.Fatalf("seed %d: overload with 5ms deadlines produced no deadline sheds: %v", seed, run.Outcomes)
		}
	}
}

// TestSimulateFairnessCap is the fairness property: under the fair policy
// no instance ever holds more than FairShare admission slots, even when one
// instance sends 90% of the traffic — while the shed policy lets the hot
// instance monopolize the queue on the same trace.
func TestSimulateFairnessCap(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		// 9:1 hot:cold adversarial mix.
		hot := []string{"hot", "hot", "hot", "hot", "hot", "hot", "hot", "hot", "hot", "cold"}
		tr := overloadTrace(t, seed, nil, hot)
		params := overloadedParams(server.AdmitFair)
		run := Simulate(tr, params, slowModel)
		for inst, peak := range run.MaxHeld {
			if peak > params.FairShare {
				t.Fatalf("seed %d: instance %q peaked at %d slots, fair share is %d",
					seed, inst, peak, params.FairShare)
			}
		}
		if run.Outcomes[OutcomeShedFairness] == 0 {
			t.Fatalf("seed %d: 9:1 mix produced no fairness sheds: %v", seed, run.Outcomes)
		}
		base := Simulate(tr, overloadedParams(server.AdmitShed), slowModel)
		if base.MaxHeld["hot"] <= params.FairShare {
			t.Fatalf("seed %d: shed policy never exceeded the fair share (peak %d) — mix not adversarial enough",
				seed, base.MaxHeld["hot"])
		}
	}
}

// TestSimulateDeadlinePolicyReducesWaste: on an overloaded trace of
// tight-deadline requests, deadline screening must strictly reduce the
// count of fully-wasted solves (admitted but expired before any work)
// relative to the blind shed policy.
func TestSimulateDeadlinePolicyReducesWaste(t *testing.T) {
	tr := overloadTrace(t, 21, []int64{30}, nil)
	wasted := func(run SimRun) int {
		n := 0
		for _, o := range run.PerRequest {
			if o.Outcome == OutcomeServedTruncated && o.Delivered == 0 {
				n++
			}
		}
		return n
	}
	shed := Simulate(tr, overloadedParams(server.AdmitShed), slowModel)
	deadline := Simulate(tr, overloadedParams(server.AdmitDeadline), slowModel)
	if wasted(deadline) >= wasted(shed) && wasted(shed) > 0 {
		t.Fatalf("deadline policy wasted %d solves, shed policy %d — screening bought nothing",
			wasted(deadline), wasted(shed))
	}
}

// TestCompareRegretArithmetic: Compare prices the baseline once per
// alternative with consistent regret arithmetic, and never compares the
// baseline to itself.
func TestCompareRegretArithmetic(t *testing.T) {
	tr := overloadTrace(t, 22, []int64{0, 30}, []string{"", "sg"})
	params := overloadedParams(server.AdmitDeadline)
	cfs := Compare(tr, params, slowModel)
	if len(cfs) != len(Policies)-1 {
		t.Fatalf("%d counterfactuals, want %d", len(cfs), len(Policies)-1)
	}
	for _, cf := range cfs {
		if cf.Baseline != server.AdmitDeadline {
			t.Errorf("baseline %q, want deadline", cf.Baseline)
		}
		if cf.Alternative == cf.Baseline {
			t.Errorf("self-comparison in counterfactuals")
		}
		if got := cf.BaselineMeanCost - cf.AlternativeMeanCost; math.Abs(got-cf.Regret) > 1e-12 {
			t.Errorf("regret %v inconsistent with costs %v - %v", cf.Regret, cf.BaselineMeanCost, cf.AlternativeMeanCost)
		}
	}
}

// TestMeasureServiceModel: the fitted model averages only uncached,
// untruncated 200s and keys by algorithm.
func TestMeasureServiceModel(t *testing.T) {
	tr := Trace{
		{Index: 0, Algorithm: "G-Order"},
		{Index: 1, Algorithm: "G-Order"},
		{Index: 2, Algorithm: "BLS"},
		{Index: 3, Algorithm: "BLS"},
		{Index: 4, Algorithm: "BLS"},
	}
	results := []Result{
		{Index: 0, Status: 200, LatencyMS: 10},
		{Index: 1, Status: 200, LatencyMS: 20},
		{Index: 2, Status: 200, LatencyMS: 100},
		{Index: 3, Status: 200, LatencyMS: 999, Cached: true},    // excluded
		{Index: 4, Status: 200, LatencyMS: 999, Truncated: true}, // excluded
	}
	m := MeasureServiceModel(tr, results)
	if got := m.ServiceMS("G-Order"); got != 15 {
		t.Errorf("G-Order %v, want 15", got)
	}
	if got := m.ServiceMS("BLS"); got != 100 {
		t.Errorf("BLS %v, want 100", got)
	}
	// Unknown algorithms fall back to the pooled mean.
	if got := m.ServiceMS("ALS"); math.Abs(got-130.0/3) > 1e-9 {
		t.Errorf("fallback %v, want %v", got, 130.0/3)
	}
}

// TestSimulateEmptyTrace: degenerate inputs stay well-defined.
func TestSimulateEmptyTrace(t *testing.T) {
	run := Simulate(nil, overloadedParams(server.AdmitShed), slowModel)
	if run.MeanCost != 0 || run.TotalCost != 0 || len(run.PerRequest) != 0 {
		t.Fatalf("empty trace produced work: %+v", run)
	}
	if !strings.HasPrefix(Trace(nil).SHA256(), "e3b0c44298fc1c149afbf4c8996fb924") {
		t.Fatalf("empty trace digest is not SHA-256 of empty input")
	}
}
