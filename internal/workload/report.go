package workload

import (
	"sort"
	"time"
)

// LatencySummary summarizes observed response latencies over one class of
// results.
type LatencySummary struct {
	Count int     `json:"count"`
	AvgMS float64 `json:"avg_ms"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// summarizeLatency computes the summary over every result with a 200
// status. Percentiles use the nearest-rank method on the sorted sample.
func summarizeLatency(results []Result) LatencySummary {
	var ms []float64
	var sum float64
	for _, r := range results {
		if r.Status != 200 || r.Outcome == OutcomePatched {
			continue
		}
		ms = append(ms, r.LatencyMS)
		sum += r.LatencyMS
	}
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ms)
	rank := func(q float64) float64 {
		i := int(q*float64(len(ms))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	return LatencySummary{
		Count: len(ms),
		AvgMS: sum / float64(len(ms)),
		P50MS: rank(0.50),
		P90MS: rank(0.90),
		P99MS: rank(0.99),
		MaxMS: ms[len(ms)-1],
	}
}

// PhaseSummary aggregates the server's own phase attribution — parsed from
// Server-Timing response headers — over every result that carried one,
// splitting client-observed latency into queue wait, solve time, total
// server time and the unattributed remainder (network, client scheduling).
type PhaseSummary struct {
	Count      int     `json:"count"`
	QueueAvgMS float64 `json:"queue_avg_ms"`
	QueueMaxMS float64 `json:"queue_max_ms"`
	SolveAvgMS float64 `json:"solve_avg_ms"`
	SolveMaxMS float64 `json:"solve_max_ms"`
	// UnattributedAvgMS is the mean gap between client-observed latency and
	// the server's total — what tracing cannot see from inside the daemon.
	UnattributedAvgMS float64 `json:"unattributed_avg_ms"`
}

// summarizePhases folds the Server-Timing phases of every result that has
// them (ServerTotalMS > 0 — a served or shed response from a tracing-aware
// server).
func summarizePhases(results []Result) PhaseSummary {
	var p PhaseSummary
	var unattr float64
	for _, r := range results {
		if r.ServerTotalMS == 0 {
			continue
		}
		p.Count++
		p.QueueAvgMS += r.ServerQueueMS
		p.SolveAvgMS += r.ServerSolveMS
		p.QueueMaxMS = max(p.QueueMaxMS, r.ServerQueueMS)
		p.SolveMaxMS = max(p.SolveMaxMS, r.ServerSolveMS)
		unattr += max(r.LatencyMS-r.ServerTotalMS, 0)
	}
	if p.Count > 0 {
		n := float64(p.Count)
		p.QueueAvgMS /= n
		p.SolveAvgMS /= n
		p.UnattributedAvgMS = unattr / n
	}
	return p
}

// ModelSummary is one regret-model kind's slice of a mixed run: how many
// requests it served and their mean objective.
type ModelSummary struct {
	Served         int     `json:"served"`
	SolveRegretAvg float64 `json:"solve_regret_avg"`
}

// DefaultSlowest is how many slowest-request rows BuildReport lists.
const DefaultSlowest = 5

// SlowRow is one of the report's slowest served requests: its trace ID (the
// key into the daemon's /debug/traces/{id}) and the server's phase split.
type SlowRow struct {
	Index     int     `json:"i"`
	TraceID   string  `json:"trace_id"`
	Outcome   string  `json:"outcome"`
	LatencyMS float64 `json:"latency_ms"`
	QueueMS   float64 `json:"server_queue_ms"`
	SolveMS   float64 `json:"server_solve_ms"`
}

// SlowestRows returns the n slowest 200s by client-observed latency, slowest
// first — the rows worth opening in the trace store.
func SlowestRows(results []Result, n int) []SlowRow {
	var rows []SlowRow
	for _, r := range results {
		if r.Status != 200 || r.TraceID == "" {
			continue
		}
		rows = append(rows, SlowRow{
			Index:     r.Index,
			TraceID:   r.TraceID,
			Outcome:   r.Outcome,
			LatencyMS: r.LatencyMS,
			QueueMS:   r.ServerQueueMS,
			SolveMS:   r.ServerSolveMS,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].LatencyMS > rows[j].LatencyMS })
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Report is the per-run JSON document mroamload emits: the reproducible
// identity of the workload (config + trace digest), the observed outcome
// and latency distributions, and the counterfactual-regret summary pricing
// the run under the admission policies the server did not use.
type Report struct {
	Target string `json:"target,omitempty"`
	// Policy is the admission policy the server actually ran.
	Policy string `json:"policy"`
	Config Config `json:"config"`
	// TraceSHA256 identifies the exact request sequence; two reports with
	// equal Configs must carry equal digests (the determinism contract).
	TraceSHA256 string `json:"trace_sha256"`
	Requests    int    `json:"requests"`
	// WallMS is the observed wall-clock span of the replay.
	WallMS   float64        `json:"wall_ms"`
	Outcomes map[string]int `json:"outcomes"`
	Latency  LatencySummary `json:"latency"`
	// ServerPhases attributes client-observed latency to server phases via
	// Server-Timing; zero Count against a pre-tracing server.
	ServerPhases PhaseSummary `json:"server_phases"`
	// Slowest lists the slowest served requests with their trace IDs, ready
	// to be opened in the daemon's GET /debug/traces/{id}.
	Slowest []SlowRow `json:"slowest,omitempty"`
	// TraceChecks records span-tree validations run against the daemon's
	// trace store after the replay (mroamload -trace-check), one line per
	// validated trace. Empty unless the caller ran them.
	TraceChecks []string `json:"trace_checks,omitempty"`
	// SolveRegretAvg is the mean solver objective (the paper's total
	// regret) over served responses — the quality axis the admission
	// policies trade against availability.
	SolveRegretAvg float64 `json:"solve_regret_avg,omitempty"`
	// ByModel splits the served volume and objective by the regret-model
	// kind the server echoed, so a mixed base/zonal run reads each
	// variant's series separately. Responses where the server elided the
	// field (base answers on the default instance) count as "base".
	ByModel map[string]ModelSummary `json:"by_model,omitempty"`
	// Server echoes the deployment the counterfactuals are priced against.
	Server ServerParams `json:"server"`
	// Service is the measured service model the simulator ran on.
	Service ServiceModel `json:"service_model"`
	// ActualMeanCost is the replay's own cost under the counterfactual
	// cost model, for comparison against the simulated baselines.
	ActualMeanCost  float64          `json:"actual_mean_cost"`
	Counterfactuals []Counterfactual `json:"counterfactuals"`
}

// BuildReport assembles the Report for one replay: it fits the service
// model from the observed results, prices the run under every alternative
// admission policy, and aggregates outcomes and latencies.
func BuildReport(cfg Config, trace Trace, results []Result, params ServerParams, wall time.Duration) Report {
	rep := Report{
		Policy:       params.Policy,
		Config:       cfg,
		TraceSHA256:  trace.SHA256(),
		Requests:     len(trace),
		WallMS:       float64(wall) / float64(time.Millisecond),
		Outcomes:     make(map[string]int, 4),
		Latency:      summarizeLatency(results),
		ServerPhases: summarizePhases(results),
		Slowest:      SlowestRows(results, DefaultSlowest),
		Server:       params,
	}
	var regretSum float64
	var regretN, costN int
	byModel := make(map[string]ModelSummary)
	for _, r := range results {
		rep.Outcomes[r.Outcome]++
		if r.Outcome == OutcomePatched || r.Outcome == OutcomePatchConflict {
			continue // churn entries have no solve objective and no cost
		}
		if r.Status == 200 {
			regretSum += r.TotalRegret
			regretN++
			kind := r.Model
			if kind == "" {
				kind = "base"
			}
			m := byModel[kind]
			m.Served++
			m.SolveRegretAvg += r.TotalRegret
			byModel[kind] = m
		}
		rep.ActualMeanCost += actualCost(r)
		costN++
	}
	if regretN > 0 {
		rep.SolveRegretAvg = regretSum / float64(regretN)
		for kind, m := range byModel {
			m.SolveRegretAvg /= float64(m.Served)
			byModel[kind] = m
		}
		rep.ByModel = byModel
	}
	if costN > 0 {
		rep.ActualMeanCost /= float64(costN)
	}
	rep.Service = MeasureServiceModel(trace, results)
	rep.Counterfactuals = Compare(trace, params, rep.Service)
	return rep
}

// actualCost prices one observed result on the simulator's cost model so
// the replay and its counterfactuals are comparable. Observed truncations
// don't expose a delivered fraction, so they are priced at the model's
// worst served case short of full loss.
func actualCost(r Result) float64 {
	switch r.Outcome {
	case OutcomeServed:
		return 0
	case OutcomeServedTruncated:
		return 0.5
	case OutcomeError:
		return 1
	default: // every shed_* outcome
		return ShedCost
	}
}
