package workload

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestHotSwapLoadHammer mixes hot-swap reloads with open-loop harness
// traffic across every admission policy — the race-detector workout the
// load layer rides on (`make test-race` runs it under -race). Every request
// must classify cleanly (in-flight solves finish on their admission-time
// snapshot, so reloads never surface as errors), and the server must not
// leak goroutines once the storm passes.
func TestHotSwapLoadHammer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, policy := range []string{server.AdmitShed, server.AdmitDeadline, server.AdmitFair} {
		t.Run(policy, func(t *testing.T) {
			ts := bootServer(t, server.Config{
				Catalog:      harnessCatalog(t, "default", "swap"),
				Workers:      2,
				QueueDepth:   2,
				Admission:    policy,
				CacheEntries: 16,
			})

			trace, err := Generate(Config{
				Seed:        uint64(1 + len(policy)),
				Duration:    500 * time.Millisecond,
				Rate:        200,
				Arrival:     ArrivalBurst,
				Instances:   []string{"", "swap"},
				Algorithms:  []string{"G-Order", "BLS"},
				DeadlinesMS: []int64{0, 10, 50},
				Restarts:    2,
				SolveSeeds:  4,
			})
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			// Reload the "swap" instance repeatedly while the trace replays.
			swaps := make(chan error, 1)
			go func() {
				defer close(swaps)
				for gen := 0; gen < 3; gen++ {
					body := fmt.Sprintf(`{"city":"NYC","scale":0.01,"seed":%d,"alpha":2.0,"p":0.1}`, gen+1)
					req, err := http.NewRequestWithContext(ctx, http.MethodPut,
						ts.URL+"/instances/swap", strings.NewReader(body))
					if err != nil {
						swaps <- err
						return
					}
					resp, err := ts.Client().Do(req)
					if err != nil {
						swaps <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						swaps <- fmt.Errorf("hot swap %d: status %d", gen, resp.StatusCode)
						return
					}
					time.Sleep(100 * time.Millisecond)
				}
			}()

			results := Run(ctx, ts.URL, trace, ts.Client())
			if err := <-swaps; err != nil {
				t.Fatal(err)
			}

			served := 0
			for i, r := range results {
				switch r.Outcome {
				case OutcomeServed, OutcomeServedTruncated:
					served++
				case OutcomeShedCapacity, OutcomeShedDeadline, OutcomeShedFairness:
				default:
					t.Fatalf("request %d: outcome %q (%s)", i, r.Outcome, r.Err)
				}
			}
			if served == 0 {
				t.Fatal("hammer served nothing")
			}
		})
	}
	waitNoGoroutineLeak(t, baseline)
}
