package workload

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func churnConfig() Config {
	cfg := baseConfig()
	cfg.ChurnRate = 30
	return cfg
}

// TestGenerateChurnDigestStable: the churn mix is part of the determinism
// contract — equal configs with churn enabled generate byte-identical
// traces, and the patch entries are really there.
func TestGenerateChurnDigestStable(t *testing.T) {
	a, err := Generate(churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.SHA256() != b.SHA256() {
		t.Fatal("equal churn configs generated different traces")
	}
	patches := 0
	for i, r := range a {
		if r.Index != i {
			t.Fatalf("entry %d carries index %d after the merge", i, r.Index)
		}
		if i > 0 && a[i-1].AtMS > r.AtMS {
			t.Fatalf("entries %d..%d out of order: %v > %v", i-1, i, a[i-1].AtMS, r.AtMS)
		}
		if r.IsPatch() {
			patches++
			if len(r.Patch) != 2 || r.Patch[0].Op != "add" || r.Patch[1].Op != "remove" {
				t.Fatalf("patch entry %d has unexpected ops %+v", i, r.Patch)
			}
		}
	}
	if patches == 0 {
		t.Fatal("churn rate 30/s over 2s produced no patch entries")
	}
}

// TestGenerateChurnSolveSequenceUnperturbed: churn draws from its own rng
// substreams, so enabling it must leave the solve subsequence exactly as a
// churn-free generate produces it — only interleaved.
func TestGenerateChurnSolveSequenceUnperturbed(t *testing.T) {
	plain, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	churned, err := Generate(churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	var solves Trace
	for _, r := range churned {
		if !r.IsPatch() {
			solves = append(solves, r)
		}
	}
	if len(solves) != len(plain) {
		t.Fatalf("churned trace has %d solve entries, churn-free %d", len(solves), len(plain))
	}
	for i := range solves {
		s, p := solves[i], plain[i]
		if s.AtMS != p.AtMS || s.Algorithm != p.Algorithm || s.Seed != p.Seed ||
			s.Instance != p.Instance || s.DeadlineMS != p.DeadlineMS {
			t.Fatalf("solve %d perturbed by churn:\nchurned: %+v\nplain:   %+v", i, s, p)
		}
	}
}

// TestGenerateChurnOffByteClean: with churn and warm-start disabled the new
// Request fields must not appear in the serialization at all — old traces
// and new churn-free traces are the same bytes.
func TestGenerateChurnOffByteClean(t *testing.T) {
	tr, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"patch", "warm_start", "churn"} {
		if strings.Contains(sb.String(), field) {
			t.Fatalf("churn-free trace serialization mentions %q", field)
		}
	}
}

// TestGenerateWarmStartStamped: Config.WarmStart marks every solve entry and
// no patch entry.
func TestGenerateWarmStartStamped(t *testing.T) {
	cfg := churnConfig()
	cfg.WarmStart = true
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr {
		if r.IsPatch() {
			if r.WarmStart {
				t.Fatalf("patch entry %d stamped warm_start", i)
			}
			continue
		}
		if !r.WarmStart {
			t.Fatalf("solve entry %d missing warm_start", i)
		}
	}
}

// TestRunChurnEndToEnd replays a churned, warm-started trace against a live
// server: patches must apply (the runner resolves the default instance name
// from /healthz), solves must be served, and the report must account for
// churn entries separately from the solve economics.
func TestRunChurnEndToEnd(t *testing.T) {
	ts := bootServer(t, server.Config{
		Catalog:    harnessCatalog(t),
		Workers:    2,
		QueueDepth: 64,
	})
	cfg := Config{
		Seed:       3,
		Duration:   500 * time.Millisecond,
		Rate:       40,
		Algorithms: []string{"G-Order", "BLS"},
		Restarts:   1,
		ChurnRate:  20,
		WarmStart:  true,
	}
	trace, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	results := Run(ctx, ts.URL, trace, nil)

	params, err := FetchServerParams(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if params.Default == "" {
		t.Fatal("healthz did not expose the default instance name")
	}
	counts := map[string]int{}
	for i, r := range results {
		counts[r.Outcome]++
		if r.Outcome == OutcomeError {
			t.Fatalf("request %d errored: %s", i, r.Err)
		}
		if trace[i].IsPatch() && r.Outcome != OutcomePatched {
			t.Fatalf("patch %d: outcome %s", i, r.Outcome)
		}
	}
	if counts[OutcomePatched] == 0 {
		t.Fatal("no patch entry was applied")
	}
	if counts[OutcomeServed] == 0 {
		t.Fatal("no solve was served")
	}

	rep := BuildReport(cfg, trace, results, params, time.Second)
	if rep.Outcomes[OutcomePatched] != counts[OutcomePatched] {
		t.Fatalf("report counts %d patched, observed %d", rep.Outcomes[OutcomePatched], counts[OutcomePatched])
	}
	// Patches are free and invisible to admission: the simulated baseline
	// must report them as patched, not served or shed.
	base := Simulate(trace, params, rep.Service)
	if base.Outcomes[OutcomePatched] != counts[OutcomePatched] {
		t.Fatalf("simulator saw %d patches, trace has %d", base.Outcomes[OutcomePatched], counts[OutcomePatched])
	}
}
