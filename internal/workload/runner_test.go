package workload

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
	"repro/internal/server"
)

// harnessInstance builds a small deterministic instance, the same synthesis
// the server suite uses (the helpers are not exported across packages).
func harnessInstance(tb testing.TB, nTraj, nBB, nAdv int) *core.Instance {
	tb.Helper()
	r := rng.New(11)
	lists := make([]coverage.List, nBB)
	for b := range lists {
		deg := 1 + r.Intn(nTraj/3+1)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(nTraj))
		}
		lists[b] = coverage.NewList(ids)
	}
	u, err := coverage.NewUniverse(nTraj, lists)
	if err != nil {
		tb.Fatal(err)
	}
	per := 1.1 * float64(u.TotalSupply()) / float64(nAdv)
	advs := make([]core.Advertiser, nAdv)
	for i := range advs {
		d := int64(per * r.Range(0.8, 1.2))
		if d < 1 {
			d = 1
		}
		advs[i] = core.Advertiser{Demand: d, Payment: float64(d)}
	}
	inst, err := core.NewInstance(u, advs, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func harnessCatalog(tb testing.TB, names ...string) *catalog.Catalog {
	tb.Helper()
	c := catalog.New()
	if len(names) == 0 {
		names = []string{"default"}
	}
	for _, name := range names {
		if _, err := c.AddInstance(name, harnessInstance(tb, 120, 16, 3)); err != nil {
			tb.Fatal(err)
		}
	}
	return c
}

func bootServer(tb testing.TB, cfg server.Config) *httptest.Server {
	tb.Helper()
	s, err := server.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

// TestRunReportEndToEnd replays a short seeded workload against a live
// server and checks the full pipeline: every request classified, the report
// internally consistent, and the counterfactual summary present for both
// alternative policies.
func TestRunReportEndToEnd(t *testing.T) {
	ts := bootServer(t, server.Config{Catalog: harnessCatalog(t), Workers: 2, QueueDepth: 4})

	cfg := Config{
		Seed:       42,
		Duration:   400 * time.Millisecond,
		Rate:       100,
		Algorithms: []string{"G-Order"},
	}
	trace, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	params, err := FetchServerParams(ctx, ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if params.Workers != 2 || params.Policy != server.AdmitShed {
		t.Fatalf("healthz params %+v", params)
	}

	start := time.Now()
	results := Run(ctx, ts.URL, trace, ts.Client())
	rep := BuildReport(cfg, trace, results, params, time.Since(start))

	if len(results) != len(trace) {
		t.Fatalf("%d results for %d requests", len(results), len(trace))
	}
	served := 0
	for i, r := range results {
		if r.Index != trace[i].Index {
			t.Fatalf("result %d misjoined: index %d", i, r.Index)
		}
		if r.Outcome == OutcomeError {
			t.Fatalf("request %d errored: %s", i, r.Err)
		}
		if r.Status == 200 {
			served++
			if r.LatencyMS <= 0 {
				t.Fatalf("request %d served with non-positive latency", i)
			}
		}
	}
	if served == 0 {
		t.Fatal("no request was served")
	}

	if rep.TraceSHA256 != trace.SHA256() {
		t.Error("report digest does not match trace")
	}
	if rep.Requests != len(trace) {
		t.Errorf("report requests %d, want %d", rep.Requests, len(trace))
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != len(trace) {
		t.Errorf("report outcomes sum to %d, want %d", total, len(trace))
	}
	if rep.Latency.Count != served || rep.Latency.P50MS <= 0 || rep.Latency.MaxMS < rep.Latency.P99MS {
		t.Errorf("latency summary inconsistent: %+v", rep.Latency)
	}
	if len(rep.Counterfactuals) != 2 {
		t.Fatalf("%d counterfactuals, want 2", len(rep.Counterfactuals))
	}
	for _, cf := range rep.Counterfactuals {
		if cf.Baseline != server.AdmitShed || cf.Alternative == server.AdmitShed {
			t.Errorf("counterfactual compares %q to %q", cf.Baseline, cf.Alternative)
		}
		altTotal := 0
		for _, n := range cf.AlternativeOutcomes {
			altTotal += n
		}
		if altTotal != len(trace) {
			t.Errorf("alternative %q outcomes sum to %d, want %d", cf.Alternative, altTotal, len(trace))
		}
	}
	if rep.Service.DefaultMS <= 0 {
		t.Errorf("measured service model empty: %+v", rep.Service)
	}
}

// TestRunClassifiesCapacitySheds floods a capacity-1 server with
// simultaneous arrivals: sheds must come back labeled shed_capacity with a
// positive Retry-After.
func TestRunClassifiesCapacitySheds(t *testing.T) {
	ts := bootServer(t, server.Config{Catalog: harnessCatalog(t), Workers: 1, QueueDepth: 0})

	// Restarts are set high enough that each solve holds the single worker
	// far longer than the goroutine launch stagger, so the simultaneous
	// arrivals genuinely overlap and the excess must shed.
	trace := make(Trace, 60)
	for i := range trace {
		trace[i] = Request{Index: i, AtMS: 0, Algorithm: "BLS", Seed: uint64(i), Restarts: 400}
	}
	results := Run(context.Background(), ts.URL, trace, ts.Client())

	sheds := 0
	for _, r := range results {
		switch r.Outcome {
		case OutcomeShedCapacity:
			sheds++
			if r.RetryAfterS < 1 {
				t.Fatalf("shed without Retry-After: %+v", r)
			}
		case OutcomeServed, OutcomeServedTruncated:
		default:
			t.Fatalf("unexpected outcome %q: %+v", r.Outcome, r)
		}
	}
	if sheds == 0 {
		t.Fatal("60 simultaneous requests against capacity 1 produced no sheds")
	}
}

// TestRunHonorsContext: canceling mid-replay marks the unissued tail as
// errors instead of hanging or dropping results.
func TestRunHonorsContext(t *testing.T) {
	ts := bootServer(t, server.Config{Catalog: harnessCatalog(t), Workers: 1})

	trace := Trace{
		{Index: 0, AtMS: 0, Algorithm: "G-Order", Seed: 1},
		{Index: 1, AtMS: 10_000, Algorithm: "G-Order", Seed: 1}, // far future
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	done := make(chan []Result, 1)
	go func() { done <- Run(ctx, ts.URL, trace, ts.Client()) }()
	select {
	case results := <-done:
		if results[1].Outcome != OutcomeError {
			t.Fatalf("canceled request classified as %q", results[1].Outcome)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// waitNoGoroutineLeak mirrors the server suite's leak check for harness
// tests.
func waitNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunTracePropagation replays a workload against a tracing-enabled
// server and checks the end-to-end traceability contract: every result
// carries its minted trace ID and the server's Server-Timing phase split,
// the report aggregates phases and lists the slowest rows, and CheckTrace
// validates a listed trace's span tree against the daemon.
func TestRunTracePropagation(t *testing.T) {
	ts := bootServer(t, server.Config{
		Catalog: harnessCatalog(t), Workers: 2, QueueDepth: 8, TraceCapacity: 256,
	})
	cfg := Config{
		Seed:       7,
		Duration:   300 * time.Millisecond,
		Rate:       80,
		Algorithms: []string{"G-Order"},
	}
	trace, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	params, err := FetchServerParams(ctx, ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	results := Run(ctx, ts.URL, trace, ts.Client())
	rep := BuildReport(cfg, trace, results, params, time.Since(start))

	seen := make(map[string]bool)
	for _, r := range results {
		if r.TraceID == "" || len(r.TraceID) != 32 {
			t.Fatalf("result %d has no 32-hex trace id: %q", r.Index, r.TraceID)
		}
		if seen[r.TraceID] {
			t.Fatalf("trace id %s reused", r.TraceID)
		}
		seen[r.TraceID] = true
		if r.Status == 200 {
			if r.ServerTotalMS <= 0 {
				t.Errorf("result %d served without Server-Timing total", r.Index)
			}
			if r.ServerTotalMS > r.LatencyMS+1 {
				t.Errorf("result %d server total %.3fms exceeds client latency %.3fms",
					r.Index, r.ServerTotalMS, r.LatencyMS)
			}
		}
	}
	if rep.ServerPhases.Count == 0 {
		t.Fatal("report has no server phase summary despite Server-Timing responses")
	}
	if len(rep.Slowest) == 0 {
		t.Fatal("report lists no slowest rows")
	}
	for _, row := range rep.Slowest {
		if row.TraceID == "" {
			t.Fatalf("slowest row %d has no trace id", row.Index)
		}
	}

	// The slowest served request is the one worth opening: its trace must
	// be retained (tail sampling always keeps the slow quantile at this
	// volume) and pass the span-tree validation the smoke target runs.
	desc, err := CheckTrace(ctx, ts.URL, rep.Slowest[0].TraceID, ts.Client(), 4)
	if err != nil {
		t.Fatalf("CheckTrace: %v", err)
	}
	t.Log(desc)
}
