package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func baseConfig() Config {
	return Config{
		Seed:        7,
		Duration:    2 * time.Second,
		Rate:        200,
		Instances:   []string{"", "sg"},
		Algorithms:  []string{"G-Order", "BLS"},
		DeadlinesMS: []int64{0, 20, 100},
		Restarts:    2,
	}
}

// TestGenerateByteIdentical pins the determinism contract: equal Configs
// produce byte-identical JSONL traces (and equal SHA-256 digests), across
// every arrival process; changing the seed changes the trace.
func TestGenerateByteIdentical(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalBurst, ArrivalUniform} {
		cfg := baseConfig()
		cfg.Arrival = arrival
		a, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var bufA, bufB bytes.Buffer
		if err := a.WriteJSONL(&bufA); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteJSONL(&bufB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Fatalf("%s: same config produced different traces", arrival)
		}
		if a.SHA256() != b.SHA256() {
			t.Fatalf("%s: SHA mismatch on identical traces", arrival)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty trace", arrival)
		}

		cfg.Seed = 8
		c, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c.SHA256() == a.SHA256() {
			t.Fatalf("%s: different seeds produced identical traces", arrival)
		}
	}
}

// TestGenerateTimingAndMix: timestamps are nondecreasing and inside the
// horizon, the realized rate is near the configured mean for every arrival
// process, and every mix field draws only from its configured pool.
func TestGenerateTimingAndMix(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalBurst, ArrivalUniform} {
		cfg := baseConfig()
		cfg.Arrival = arrival
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		horizon := cfg.Duration.Seconds() * 1e3
		prev := -1.0
		for _, r := range tr {
			if r.AtMS < prev {
				t.Fatalf("%s: timestamps regress: %v after %v", arrival, r.AtMS, prev)
			}
			prev = r.AtMS
			if r.AtMS < 0 || r.AtMS >= horizon {
				t.Fatalf("%s: timestamp %v outside [0, %v)", arrival, r.AtMS, horizon)
			}
			if !contains(cfg.Instances, r.Instance) {
				t.Fatalf("%s: instance %q not in pool", arrival, r.Instance)
			}
			if !contains(cfg.Algorithms, r.Algorithm) {
				t.Fatalf("%s: algorithm %q not in pool", arrival, r.Algorithm)
			}
			if r.Seed < 1 || r.Seed > DefaultSolveSeeds {
				t.Fatalf("%s: solve seed %d outside 1..%d", arrival, r.Seed, DefaultSolveSeeds)
			}
			if r.DeadlineMS != 0 && r.DeadlineMS != 20 && r.DeadlineMS != 100 {
				t.Fatalf("%s: deadline %dms not in pool", arrival, r.DeadlineMS)
			}
		}
		want := cfg.Rate * cfg.Duration.Seconds()
		if got := float64(len(tr)); math.Abs(got-want) > 0.35*want {
			t.Errorf("%s: %v requests, want about %v", arrival, got, want)
		}
	}
}

// TestGenerateUniformSpacing: the uniform process is exactly periodic.
func TestGenerateUniformSpacing(t *testing.T) {
	cfg := Config{Seed: 1, Duration: time.Second, Rate: 100, Arrival: ArrivalUniform}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr {
		if want := float64(i+1) * 10; math.Abs(r.AtMS-want) > 0.01 {
			t.Fatalf("request %d at %vms, want %vms", i, r.AtMS, want)
		}
	}
}

// TestGenerateBurstConcentratesArrivals: the burst process must put a
// disproportionate share of arrivals inside the duty window of each period.
func TestGenerateBurstConcentratesArrivals(t *testing.T) {
	cfg := Config{Seed: 3, Duration: 5 * time.Second, Rate: 400, Arrival: ArrivalBurst,
		BurstFactor: 4, BurstDuty: 0.25, BurstPeriod: time.Second}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inBurst := 0
	for _, r := range tr {
		if pos := math.Mod(r.AtMS, 1000); pos < 250 {
			inBurst++
		}
	}
	// factor 4 × duty 0.25 means the bursts carry the entire mean rate;
	// essentially all arrivals should land inside them.
	if frac := float64(inBurst) / float64(len(tr)); frac < 0.9 {
		t.Errorf("only %.0f%% of burst arrivals inside the duty window", 100*frac)
	}
}

// TestGenerateMaxRequestsCap: the safety cap truncates runaway traces.
func TestGenerateMaxRequestsCap(t *testing.T) {
	cfg := Config{Seed: 1, Duration: 10 * time.Second, Rate: 1000, MaxRequests: 50}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 50 {
		t.Fatalf("cap ignored: %d requests", len(tr))
	}
}

// TestTraceJSONLRoundTrip: a written trace decodes back to itself, line by
// line.
func TestTraceJSONLRoundTrip(t *testing.T) {
	tr, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(tr) {
		t.Fatalf("%d lines for %d requests", len(lines), len(tr))
	}
	for i, line := range lines {
		var r Request
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, tr[i]) {
			t.Fatalf("line %d round-trips to %+v, want %+v", i, r, tr[i])
		}
	}
}

// TestConfigValidate rejects unrunnable configs with telling errors.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero rate", Config{Duration: time.Second}, "Rate"},
		{"zero duration", Config{Rate: 10}, "Duration"},
		{"bad arrival", Config{Rate: 10, Duration: time.Second, Arrival: "sawtooth"}, "arrival"},
		{"bad duty", Config{Rate: 10, Duration: time.Second, Arrival: ArrivalBurst, BurstDuty: 1}, "BurstDuty"},
		{"bad factor", Config{Rate: 10, Duration: time.Second, Arrival: ArrivalBurst, BurstFactor: 0.5}, "BurstFactor"},
		{"negative deadline", Config{Rate: 10, Duration: time.Second, DeadlinesMS: []int64{-1}}, "deadline"},
	}
	for _, tc := range cases {
		if _, err := Generate(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func contains(pool []string, v string) bool {
	for _, p := range pool {
		if p == v {
			return true
		}
	}
	return false
}
