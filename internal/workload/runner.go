package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Outcome labels for replay results. Shed outcomes carry the server's
// X-Reject-Reason so a run's outcome histogram shows which admission rule
// fired, not just that a 429 happened.
const (
	OutcomeServed          = "served"
	OutcomeServedTruncated = "served_truncated"
	OutcomeShedCapacity    = "shed_capacity"
	OutcomeShedDeadline    = "shed_deadline_infeasible"
	OutcomeShedFairness    = "shed_fairness"
	// OutcomePatched/OutcomePatchConflict classify churn PATCH entries: a
	// 200 applied the ops; a 409 means the server's advertiser set drifted
	// from the generator's model (stale index) — counted, not fatal.
	OutcomePatched       = "patched"
	OutcomePatchConflict = "patch_conflict"
	OutcomeError         = "error"
)

// Result is one replayed request's observed outcome.
type Result struct {
	Index   int    `json:"i"`
	Status  int    `json:"status"`
	Outcome string `json:"outcome"`
	// LatencyMS is wall-clock time from issuing the request to reading the
	// full response body.
	LatencyMS float64 `json:"latency_ms"`
	// Cached marks 200s answered from the server's solve cache; cached
	// latencies are excluded from the measured service model because they
	// never held a worker slot.
	Cached bool `json:"cached,omitempty"`
	// Truncated mirrors the response's truncated flag on 200s.
	Truncated bool `json:"truncated,omitempty"`
	// TotalRegret is the solve's objective value on 200s, tying the
	// serving-layer report back to the paper's metric.
	TotalRegret float64 `json:"total_regret,omitempty"`
	// Model is the regret-model kind the server echoed on 200s ("zonal",
	// or "base" on named-instance answers). Empty when the server elided it
	// (default-instance base answers keep the pre-model wire format), so a
	// mixed base/zonal run can split its outcome and regret series by model.
	Model string `json:"model,omitempty"`
	// RetryAfterS echoes the Retry-After header on 429s.
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// TraceID is the W3C trace ID minted for this request and sent as its
	// traceparent header; a slow or shed row can be looked up verbatim in
	// the daemon's GET /debug/traces/{id}. IDs are minted at replay time,
	// so they never enter the trace digest (the determinism contract).
	TraceID string `json:"trace_id,omitempty"`
	// ServerQueueMS/ServerSolveMS/ServerTotalMS are the server's own phase
	// attribution parsed from the response's Server-Timing header, splitting
	// client-observed latency into queue wait, solve time and total server
	// time (the remainder is network and client overhead). Absent when the
	// server sent no header.
	ServerQueueMS float64 `json:"server_queue_ms,omitempty"`
	ServerSolveMS float64 `json:"server_solve_ms,omitempty"`
	ServerTotalMS float64 `json:"server_total_ms,omitempty"`
	// Err carries the transport or decode error on OutcomeError results.
	Err string `json:"err,omitempty"`
}

// Run replays the trace open-loop against the mroamd at baseURL: each
// request is issued at its trace timestamp on its own goroutine, regardless
// of whether earlier requests have returned. The returned slice is indexed
// by Request.Index. Run blocks until every request has completed or ctx is
// done; a canceled context marks unissued and in-flight requests as errors
// rather than dropping them.
func Run(ctx context.Context, baseURL string, trace Trace, client *http.Client) []Result {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	// Churn PATCH entries address /instances/{name}/advertisers, so ones
	// generated without an instance pool need the server's default instance
	// name, resolved once from /healthz before the clock starts.
	defaultName := ""
	for _, req := range trace {
		if req.IsPatch() && req.Instance == "" {
			if p, err := FetchServerParams(ctx, baseURL, client); err == nil {
				defaultName = p.Default
			}
			break
		}
	}
	results := make([]Result, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	for i, req := range trace {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			if !sleepUntil(ctx, start.Add(req.At())) {
				results[i] = Result{Index: req.Index, Outcome: OutcomeError, Err: ctx.Err().Error()}
				return
			}
			if req.IsPatch() {
				results[i] = issuePatch(ctx, client, baseURL, req, defaultName)
				return
			}
			results[i] = issue(ctx, client, baseURL, req)
		}(i, req)
	}
	wg.Wait()
	return results
}

// sleepUntil blocks until the deadline or ctx cancellation; it reports
// whether the deadline was reached.
func sleepUntil(ctx context.Context, at time.Time) bool {
	d := time.Until(at)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// issue sends one trace request and classifies the response.
func issue(ctx context.Context, client *http.Client, baseURL string, req Request) Result {
	res := Result{Index: req.Index}
	body, err := json.Marshal(server.SolveRequest{
		Instance:   req.Instance,
		Algorithm:  req.Algorithm,
		Seed:       req.Seed,
		Restarts:   req.Restarts,
		DeadlineMS: req.DeadlineMS,
		WarmStart:  req.WarmStart,
	})
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/solve", bytes.NewReader(body))
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	httpReq.Header.Set("Content-Type", "application/json")
	// Every replayed request starts a trace: the server continues it (the
	// trace ID doubles as X-Request-ID there), so a report row's trace_id
	// keys straight into the daemon's /debug/traces.
	res.TraceID = obs.NewTraceID()
	httpReq.Header.Set("Traceparent", obs.FormatTraceparent(res.TraceID, obs.NewSpanID(), true))

	issued := time.Now()
	resp, err := client.Do(httpReq)
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	res.LatencyMS = float64(time.Since(issued)) / float64(time.Millisecond)
	res.Status = resp.StatusCode
	if st := obs.ParseServerTiming(resp.Header.Get("Server-Timing")); len(st) > 0 {
		res.ServerQueueMS = st["queue"]
		res.ServerSolveMS = st["solve"]
		res.ServerTotalMS = st["total"]
	}
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}

	switch resp.StatusCode {
	case http.StatusOK:
		var sr server.SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			res.Outcome, res.Err = OutcomeError, err.Error()
			return res
		}
		res.Cached, res.Truncated, res.TotalRegret = sr.Cached, sr.Truncated, sr.TotalRegret
		res.Model = sr.Model
		res.Outcome = OutcomeServed
		if sr.Truncated {
			res.Outcome = OutcomeServedTruncated
		}
	case http.StatusTooManyRequests:
		reason := resp.Header.Get("X-Reject-Reason")
		if reason == "" {
			reason = "capacity" // pre-policy servers send bare 429s
		}
		res.Outcome = "shed_" + reason
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			res.RetryAfterS = s
		}
	default:
		res.Outcome = OutcomeError
		res.Err = fmt.Sprintf("status %d: %s", resp.StatusCode, truncateErr(raw))
	}
	return res
}

// issuePatch sends one churn PATCH entry and classifies the response: 200
// applied, 409 conflicted against a drifted advertiser set, anything else is
// an error. PATCHes are not admission-gated, so no shed outcomes occur here.
func issuePatch(ctx context.Context, client *http.Client, baseURL string, req Request, defaultName string) Result {
	res := Result{Index: req.Index}
	name := req.Instance
	if name == "" {
		name = defaultName
	}
	if name == "" {
		res.Outcome, res.Err = OutcomeError, "patch entry with no instance and no resolvable default"
		return res
	}
	body, err := json.Marshal(map[string]any{"ops": req.Patch})
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPatch,
		baseURL+"/instances/"+name+"/advertisers", bytes.NewReader(body))
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	httpReq.Header.Set("Content-Type", "application/json")

	issued := time.Now()
	resp, err := client.Do(httpReq)
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	res.LatencyMS = float64(time.Since(issued)) / float64(time.Millisecond)
	res.Status = resp.StatusCode
	if err != nil {
		res.Outcome, res.Err = OutcomeError, err.Error()
		return res
	}
	switch resp.StatusCode {
	case http.StatusOK:
		res.Outcome = OutcomePatched
	case http.StatusConflict:
		res.Outcome = OutcomePatchConflict
	default:
		res.Outcome = OutcomeError
		res.Err = fmt.Sprintf("status %d: %s", resp.StatusCode, truncateErr(raw))
	}
	return res
}

func truncateErr(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}

// ServerParams is the admission-relevant server configuration, read from
// /healthz so the counterfactual simulator prices alternatives against the
// deployment that actually served the run.
type ServerParams struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Policy     string `json:"admission"`
	FairShare  int    `json:"fair_share"`
	// Default is the server's default instance name, used to address churn
	// PATCH entries generated without an instance pool.
	Default string `json:"default,omitempty"`
}

// Capacity is the total number of admission tokens: executing plus queued.
func (p ServerParams) Capacity() int { return p.Workers + p.QueueDepth }

// FetchServerParams reads ServerParams from the server's /healthz document.
func FetchServerParams(ctx context.Context, baseURL string, client *http.Client) (ServerParams, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return ServerParams{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return ServerParams{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ServerParams{}, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var p ServerParams
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return ServerParams{}, fmt.Errorf("healthz: %w", err)
	}
	if p.Workers < 1 {
		return ServerParams{}, fmt.Errorf("healthz: no worker count in response")
	}
	if p.Policy == "" {
		p.Policy = server.AdmitShed
	}
	return p, nil
}
