// Package workload is mroamd's reproducible traffic harness: a seeded
// open-loop trace generator, an HTTP replay runner, and a counterfactual
// admission simulator that prices each recorded run under the admission
// policies the server did NOT use.
//
// The determinism contract: Generate consumes randomness only from
// rng.Derive substreams of Config.Seed — never from wall time, goroutine
// scheduling or map iteration — so equal Configs yield byte-identical JSONL
// traces (pinned by TestGenerateByteIdentical and the `make load-smoke`
// gate). Replay timing and measured latencies naturally vary run to run;
// everything derived purely from the trace, the counterfactual simulation
// included, does not.
//
// The load is open-loop: request i is issued at its trace timestamp
// regardless of whether earlier requests have completed, so a slow server
// accumulates queueing pressure instead of silently throttling the
// generator — exactly the regime where admission policy choices matter.
package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/rng"
)

// Arrival process names for Config.Arrival.
const (
	// ArrivalPoisson issues requests with exponential inter-arrival times
	// at constant mean rate — the classic open-loop model.
	ArrivalPoisson = "poisson"
	// ArrivalBurst is a piecewise-constant-rate Poisson process: each
	// BurstPeriod spends BurstDuty of its length at BurstFactor× the mean
	// rate and the remainder at a compensating low rate, stressing
	// admission with recurring overload spikes.
	ArrivalBurst = "burst"
	// ArrivalUniform spaces requests exactly 1/Rate apart — no randomness
	// in timing, useful for debugging.
	ArrivalUniform = "uniform"
)

// Defaults applied by Config.withDefaults.
const (
	DefaultBurstFactor = 4.0
	DefaultBurstDuty   = 0.25
	DefaultBurstPeriod = time.Second
	DefaultSolveSeeds  = 8
	DefaultMaxRequests = 100_000
)

// DefaultAlgorithms is the request mix when Config.Algorithms is empty: the
// two greedy baselines plus BLS, the paper's headline anytime solver.
var DefaultAlgorithms = []string{"G-Order", "G-Global", "BLS"}

// Config describes one reproducible workload. The zero value is not
// runnable; Rate and Duration are required.
type Config struct {
	// Seed roots every random choice the generator makes.
	Seed uint64 `json:"seed"`
	// Duration is the span of the arrival process; requests are generated
	// with timestamps in [0, Duration).
	Duration time.Duration `json:"duration_ns"`
	// Rate is the mean arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// Arrival selects the arrival process; empty selects ArrivalPoisson.
	Arrival string `json:"arrival"`

	// BurstFactor, BurstDuty and BurstPeriod shape ArrivalBurst: each
	// period spends duty×period at factor×Rate and the rest at a rate
	// chosen so the long-run mean stays Rate (floored at zero when
	// factor×duty ≥ 1). Ignored by the other processes.
	BurstFactor float64       `json:"burst_factor,omitempty"`
	BurstDuty   float64       `json:"burst_duty,omitempty"`
	BurstPeriod time.Duration `json:"burst_period_ns,omitempty"`

	// Instances is the pool of catalog instance names requests draw from,
	// uniformly. Empty means every request targets the server's default
	// instance (the trace's instance field stays empty).
	Instances []string `json:"instances,omitempty"`
	// Algorithms is the pool of solver names requests draw from,
	// uniformly. Empty selects DefaultAlgorithms.
	Algorithms []string `json:"algorithms,omitempty"`
	// DeadlinesMS is the pool of per-request solve deadlines, drawn
	// uniformly; a 0 entry means "no deadline". Empty means no request
	// carries a deadline.
	DeadlinesMS []int64 `json:"deadlines_ms,omitempty"`
	// Restarts is the restart budget stamped on every request (0 selects
	// the server default).
	Restarts int `json:"restarts,omitempty"`
	// SolveSeeds is how many distinct solver seeds the mix draws from
	// (seeds 1..SolveSeeds); values < 1 select DefaultSolveSeeds. Small
	// pools exercise the solve cache, large pools defeat it.
	SolveSeeds int `json:"solve_seeds,omitempty"`
	// MaxRequests caps the trace length as a guard against accidental
	// rate×duration blowups; values < 1 select DefaultMaxRequests.
	MaxRequests int `json:"max_requests,omitempty"`

	// ChurnRate is the mean arrival rate, per second, of advertiser-churn
	// PATCH entries interleaved into the trace (their own Poisson process).
	// Each patch removes the market's first advertiser and adds a fresh
	// one, so the market size is invariant and every op stays valid. 0
	// disables churn; churn entries draw from dedicated rng substreams, so
	// a churn-free trace is byte-identical to one from a pre-churn
	// generator.
	ChurnRate float64 `json:"churn_rate,omitempty"`
	// WarmStart stamps warm_start on every solve entry, so replayed solves
	// seed from the daemon's incumbent plan when one is available — the
	// client side of the delta-solve path churn exercises.
	WarmStart bool `json:"warm_start,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = DefaultBurstFactor
	}
	if c.BurstDuty == 0 {
		c.BurstDuty = DefaultBurstDuty
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = DefaultBurstPeriod
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = DefaultAlgorithms
	}
	if c.SolveSeeds < 1 {
		c.SolveSeeds = DefaultSolveSeeds
	}
	if c.MaxRequests < 1 {
		c.MaxRequests = DefaultMaxRequests
	}
	return c
}

// Validate reports the first problem that would make the Config
// ungenerable. It validates the pre-default view, so zero optional fields
// are fine.
func (c Config) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("workload: Rate must be positive, got %v", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: Duration must be positive, got %v", c.Duration)
	}
	switch c.Arrival {
	case "", ArrivalPoisson, ArrivalBurst, ArrivalUniform:
	default:
		return fmt.Errorf("workload: unknown arrival process %q (want %s, %s or %s)",
			c.Arrival, ArrivalPoisson, ArrivalBurst, ArrivalUniform)
	}
	if c.BurstFactor < 0 || (c.Arrival == ArrivalBurst && c.BurstFactor != 0 && c.BurstFactor < 1) {
		return fmt.Errorf("workload: BurstFactor must be ≥ 1, got %v", c.BurstFactor)
	}
	if c.BurstDuty < 0 || c.BurstDuty >= 1 {
		return fmt.Errorf("workload: BurstDuty must be in [0, 1), got %v", c.BurstDuty)
	}
	for _, d := range c.DeadlinesMS {
		if d < 0 {
			return fmt.Errorf("workload: negative deadline %dms", d)
		}
	}
	if c.ChurnRate < 0 {
		return fmt.Errorf("workload: ChurnRate must be >= 0, got %v", c.ChurnRate)
	}
	return nil
}

// Request is one trace entry: when to issue it and what to ask the server.
// The JSON field order is the serialization contract for trace files — a
// trace line is exactly one marshaled Request.
type Request struct {
	// Index is the request's position in the trace, echoed into results so
	// replay outcomes can be joined back to trace entries.
	Index int `json:"i"`
	// AtMS is the issue time in milliseconds from run start, rounded to
	// microsecond precision so traces are human-readable and
	// representation-stable.
	AtMS float64 `json:"at_ms"`
	// Instance, Algorithm, Seed, Restarts and DeadlineMS mirror the
	// corresponding server.SolveRequest fields.
	Instance   string `json:"instance,omitempty"`
	Algorithm  string `json:"algorithm"`
	Seed       uint64 `json:"seed"`
	Restarts   int    `json:"restarts,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
	// WarmStart mirrors SolveRequest's warm_start on solve entries.
	WarmStart bool `json:"warm_start,omitempty"`
	// Patch, when non-empty, marks this entry as an advertiser-churn PATCH
	// of Instance instead of a solve; the solve fields above are ignored.
	// Both fields sit at the end of the struct so churn-free traces keep
	// the pre-churn serialization byte for byte.
	Patch []catalog.PatchOp `json:"patch,omitempty"`
}

// IsPatch reports whether the entry is a churn PATCH rather than a solve.
func (r Request) IsPatch() bool { return len(r.Patch) > 0 }

// At returns the request's issue time as an offset from run start.
func (r Request) At() time.Duration {
	return time.Duration(r.AtMS * float64(time.Millisecond))
}

// Deadline returns the request's solve deadline (0 = none).
func (r Request) Deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// Trace is a generated request sequence, ordered by AtMS.
type Trace []Request

// Generate builds the deterministic trace cfg describes. Arrival times and
// the per-request mix come from independent rng substreams, so e.g. adding
// an algorithm to the mix does not perturb the timing sequence.
func Generate(cfg Config) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	arr := rng.New(cfg.Seed).Derive("arrivals")
	mix := rng.New(cfg.Seed).Derive("mix")
	next := arrivalProcess(cfg)
	horizonMS := cfg.Duration.Seconds() * 1e3

	var tr Trace
	for t := next(0, arr); len(tr) < cfg.MaxRequests; t = next(t, arr) {
		atMS := math.Round(t*1e6) / 1e3
		// Bound the rounded timestamp, not the raw one, so a float sum that
		// lands epsilon short of the horizon cannot round onto it.
		if atMS >= horizonMS {
			break
		}
		req := Request{
			Index:     len(tr),
			AtMS:      atMS,
			Algorithm: cfg.Algorithms[mix.Intn(len(cfg.Algorithms))],
			Seed:      uint64(mix.Intn(cfg.SolveSeeds)) + 1,
			Restarts:  cfg.Restarts,
			WarmStart: cfg.WarmStart,
		}
		if len(cfg.Instances) > 0 {
			req.Instance = cfg.Instances[mix.Intn(len(cfg.Instances))]
		}
		if len(cfg.DeadlinesMS) > 0 {
			req.DeadlineMS = cfg.DeadlinesMS[mix.Intn(len(cfg.DeadlinesMS))]
		}
		tr = append(tr, req)
	}
	if cfg.ChurnRate > 0 {
		tr = mergeChurn(tr, cfg, horizonMS)
	}
	return tr, nil
}

// mergeChurn interleaves the churn PATCH process into a solve trace. The
// patch arrivals and their op parameters come from dedicated substreams
// ("churn", "churn-ops"), so enabling churn never perturbs the solve
// sequence, and a given Config always yields the same merged trace. Each
// patch is size-neutral — drop the market's current first advertiser, add a
// fresh one — which keeps every op valid no matter how patches and solves
// interleave at the server.
func mergeChurn(tr Trace, cfg Config, horizonMS float64) Trace {
	arr := rng.New(cfg.Seed).Derive("churn")
	ops := rng.New(cfg.Seed).Derive("churn-ops")

	var patches Trace
	for t := expSample(arr) / cfg.ChurnRate; len(tr)+len(patches) < cfg.MaxRequests; t += expSample(arr) / cfg.ChurnRate {
		atMS := math.Round(t*1e6) / 1e3
		if atMS >= horizonMS {
			break
		}
		demand := int64(10 + ops.Intn(90))
		req := Request{
			AtMS: atMS,
			Patch: []catalog.PatchOp{
				{Op: "add", Demand: demand, Payment: float64(demand)},
				{Op: "remove", Advertiser: 0},
			},
		}
		if len(cfg.Instances) > 0 {
			req.Instance = cfg.Instances[ops.Intn(len(cfg.Instances))]
		}
		patches = append(patches, req)
	}
	merged := append(tr, patches...)
	// Stable by timestamp: a solve and a patch sharing an instant keep
	// solve-before-patch order, matching the pre-merge positions.
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].AtMS < merged[b].AtMS })
	for i := range merged {
		merged[i].Index = i
	}
	return merged
}

// arrivalProcess returns the next-arrival function for cfg: given the
// previous arrival time (seconds) and the timing stream, it returns the
// next arrival time.
func arrivalProcess(cfg Config) func(t float64, r *rng.RNG) float64 {
	switch cfg.Arrival {
	case ArrivalUniform:
		gap := 1 / cfg.Rate
		return func(t float64, _ *rng.RNG) float64 { return t + gap }
	case ArrivalBurst:
		return burstProcess(cfg)
	default: // ArrivalPoisson
		return func(t float64, r *rng.RNG) float64 { return t + expSample(r)/cfg.Rate }
	}
}

// expSample draws a unit-rate exponential via inversion. Float64 is in
// [0, 1), so 1−u is in (0, 1] and the log is finite.
func expSample(r *rng.RNG) float64 {
	return -math.Log(1 - r.Float64())
}

// burstProcess samples a Poisson process whose rate alternates between
// factor×Rate (the first duty fraction of every period) and a low rate
// chosen so the long-run mean is Rate. Sampling integrates a unit-rate
// exponential through the piecewise-constant rate function, which is exact:
// the burst trace is not a thinned approximation.
func burstProcess(cfg Config) func(t float64, r *rng.RNG) float64 {
	period := cfg.BurstPeriod.Seconds()
	duty := cfg.BurstDuty
	high := cfg.BurstFactor * cfg.Rate
	// Mean over one period must be Rate: high·duty + low·(1−duty) = Rate.
	low := cfg.Rate * (1 - cfg.BurstFactor*duty) / (1 - duty)
	if low < 0 {
		low = 0 // factor×duty ≥ 1: bursts alone exceed the mean; the lull is silent
	}
	return func(t float64, r *rng.RNG) float64 {
		e := expSample(r)
		for {
			// Position within the current period decides the phase.
			k := math.Floor(t / period)
			pos := t - k*period
			rate, phaseEnd := high, k*period+duty*period
			if pos >= duty*period {
				rate, phaseEnd = low, (k+1)*period
			}
			if rate > 0 {
				if dt := e / rate; t+dt < phaseEnd {
					return t + dt
				}
				e -= rate * (phaseEnd - t)
			}
			t = phaseEnd
		}
	}
}

// WriteJSONL writes the trace as one marshaled Request per line. The
// encoding is deterministic: struct-order fields, shortest-form floats, no
// maps anywhere.
func (t Trace) WriteJSONL(w io.Writer) error {
	for _, req := range t {
		line, err := json.Marshal(req)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// SHA256 returns the hex digest of the trace's JSONL serialization — the
// identity two same-seed runs are asserted byte-identical under.
func (t Trace) SHA256() string {
	h := sha256.New()
	t.WriteJSONL(h) // hash.Hash writes never fail
	return hex.EncodeToString(h.Sum(nil))
}
