package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
)

// This file implements the server side of the delta-solve path (DESIGN.md
// §16): the incumbent store that remembers the last completed plan per
// (instance, model) pair, the PATCH /instances/{name}/advertisers endpoint
// that applies advertiser churn as a copy-on-write catalog rebuild, and the
// remapping that carries incumbents across a patch so a follow-up
// "warm_start": true solve can seed from them.

// incumbent is one stored plan: the per-advertiser billboard sets of the
// last completed, untruncated solve against a given (instance, model) pair,
// stamped with the catalog generation they are valid for. dirty and freed
// accumulate what PATCHes did to the entry since the plan was computed —
// exactly the core.WarmStart fields a delta solve needs.
type incumbent struct {
	generation uint64
	sets       [][]int
	dirty      []bool
	freed      bool
}

// incumbentKey joins instance name and model kind with a byte no valid
// instance name contains, so distinct pairs can never collide.
func incumbentKey(name, model string) string { return name + "\x00" + model }

// incumbentFor returns the warm-start seed for the entry's exact snapshot,
// or nil when the store has nothing usable — no plan recorded yet, or one
// recorded against a different generation that no remap has carried
// forward. The returned slices are never mutated by the store (remaps build
// fresh ones), so handing them to a running solve is safe.
func (s *Server) incumbentFor(entry *catalog.Entry) *core.WarmStart {
	s.incMu.Lock()
	defer s.incMu.Unlock()
	inc := s.incumbents[incumbentKey(entry.Name, entry.Info.Model)]
	if inc == nil || inc.generation != entry.Generation {
		return nil
	}
	return &core.WarmStart{Sets: inc.sets, Dirty: inc.dirty, FreedSupply: inc.freed}
}

// storeIncumbent records a computed solve's plan as the incumbent for its
// (instance, model) pair. Truncated results are not incumbents — they are
// not the deterministic fixed point a warm replay wants to start from. The
// generation guard keeps a slow solve that resolved an old snapshot from
// overwriting the plan of a successor generation.
func (s *Server) storeIncumbent(entry *catalog.Entry, res *core.Anytime) {
	if res == nil || res.Plan == nil || res.Truncated {
		return
	}
	n := entry.Instance.NumAdvertisers()
	sets := make([][]int, n)
	for i := range sets {
		sets[i] = res.Plan.Set(i, nil)
	}
	key := incumbentKey(entry.Name, entry.Info.Model)
	s.incMu.Lock()
	defer s.incMu.Unlock()
	if cur := s.incumbents[key]; cur != nil && cur.generation > entry.Generation {
		return
	}
	s.incumbents[key] = &incumbent{generation: entry.Generation, sets: sets}
}

// patchIncumbents carries every incumbent for the name across one PATCH:
// sets are remapped through PatchResult.OldIndexOf (new advertisers start
// empty and dirty), dirt accumulates, and a removal marks the supply freed.
// The remap allocates fresh slices so a solve concurrently reading the old
// incumbent observes a consistent snapshot.
func (s *Server) patchIncumbents(name string, gen uint64, pr catalog.PatchResult) {
	prefix := name + "\x00"
	s.incMu.Lock()
	defer s.incMu.Unlock()
	for key, inc := range s.incumbents {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		sets := make([][]int, len(pr.OldIndexOf))
		dirty := make([]bool, len(pr.OldIndexOf))
		for j, oi := range pr.OldIndexOf {
			dirty[j] = pr.Dirty[j]
			if oi < 0 || oi >= len(inc.sets) {
				dirty[j] = true
				continue
			}
			sets[j] = inc.sets[oi]
			if oi < len(inc.dirty) && inc.dirty[oi] {
				dirty[j] = true
			}
		}
		s.incumbents[key] = &incumbent{
			generation: gen,
			sets:       sets,
			dirty:      dirty,
			freed:      inc.freed || pr.Removed > 0,
		}
	}
}

// dropIncumbents forgets every incumbent for the name — a PUT reload or
// DELETE rebuilds or removes the advertiser set wholesale, and no index
// mapping survives that.
func (s *Server) dropIncumbents(name string) {
	prefix := name + "\x00"
	s.incMu.Lock()
	defer s.incMu.Unlock()
	for key := range s.incumbents {
		if strings.HasPrefix(key, prefix) {
			delete(s.incumbents, key)
		}
	}
}

// patchRequest is the JSON body of PATCH /instances/{name}/advertisers.
type patchRequest struct {
	Ops []catalog.PatchOp `json:"ops"`
}

// handleInstancePatch applies an op list to the named instance as one
// atomic generation bump. Unknown advertiser indexes answer 409 — the
// caller's view of the market is stale and it should re-read before
// retrying — and an unknown name 404. On success the cache entries for the
// name are dropped eagerly (the new generation could never hit them anyway)
// and the stored incumbents are remapped so a warm-started solve can pick
// up right where the patched market's predecessor left off.
func (s *Server) handleInstancePatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req patchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode patch: %v", err)
		return
	}
	e, pr, err := s.catalog.Patch(name, req.Ops)
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		writeError(w, http.StatusNotFound, "unknown instance %q", name)
		return
	case errors.Is(err, catalog.ErrUnknownAdvertiser):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.patches.Inc()
	if s.cache != nil {
		s.cache.InvalidateInstance(e.Name)
	}
	s.patchIncumbents(e.Name, e.Generation, pr)
	s.log.Info("instance patched",
		"instance", e.Name,
		"generation", e.Generation,
		"ops", len(req.Ops),
		"removed", pr.Removed,
		"advertisers", e.Info.Advertisers)
	writeJSON(w, http.StatusOK, s.instanceInfo(e))
}
