package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// The /debug/traces endpoints expose the in-daemon span store: a bounded,
// tail-sampled ring of completed request traces. Like /metrics and the
// /instances admin surface they carry no built-in authentication — deploy
// them on the ops listener behind the same network controls (DESIGN.md §14).

// TraceSummary is one row of the GET /debug/traces listing.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Outcome    string    `json:"outcome"`
	Instance   string    `json:"instance,omitempty"`
	Algorithm  string    `json:"algorithm,omitempty"`
	Model      string    `json:"model,omitempty"`
	Status     int       `json:"status"`
	Spans      int       `json:"spans"`
}

// TraceList is the GET /debug/traces response. SampledOut counts the plain
// served traces tail sampling declined — dropped traces are counted, never
// silently gone.
type TraceList struct {
	Capacity   int            `json:"capacity"`
	Kept       int64          `json:"kept"`
	SampledOut int64          `json:"sampled_out"`
	Count      int            `json:"count"`
	Traces     []TraceSummary `json:"traces"`
}

// SpanNode is one span with its children nested under it — the tree shape
// GET /debug/traces/{id} answers with.
type SpanNode struct {
	obs.Span
	DurationMS float64     `json:"duration_ms"`
	Children   []*SpanNode `json:"children,omitempty"`
}

// TraceTree is the GET /debug/traces/{id} response: the record's summary
// plus its spans nested parent→child. Roots has one entry per span whose
// parent the server never recorded — normally exactly the request root
// (whose own parent, if any, is the client's span).
type TraceTree struct {
	TraceID    string      `json:"trace_id"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Outcome    string      `json:"outcome"`
	Instance   string      `json:"instance,omitempty"`
	Algorithm  string      `json:"algorithm,omitempty"`
	Model      string      `json:"model,omitempty"`
	Status     int         `json:"status"`
	Roots      []*SpanNode `json:"roots"`
}

func durationMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func (s *Server) handleTracesList(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (start the server with a trace store)")
		return
	}
	q := r.URL.Query()
	outcome, instance, model := q.Get("outcome"), q.Get("instance"), q.Get("model")
	var minDur time.Duration
	if v := q.Get("min_duration_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			writeError(w, http.StatusBadRequest, "min_duration_ms: want a non-negative number, got %q", v)
			return
		}
		minDur = time.Duration(f * float64(time.Millisecond))
	}
	limit := s.traces.Cap()
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "limit: want a positive integer, got %q", v)
			return
		}
		limit = n
	}
	list := TraceList{
		Capacity:   s.traces.Cap(),
		Kept:       s.traces.Kept(),
		SampledOut: s.traces.SampledOut(),
		Traces:     []TraceSummary{}, // [] not null when nothing matches
	}
	for _, rec := range s.traces.Snapshot() { // newest first
		if outcome != "" && rec.Outcome != outcome {
			continue
		}
		if instance != "" && rec.Instance != instance {
			continue
		}
		if model != "" && rec.Model != model {
			continue
		}
		if rec.Duration < minDur {
			continue
		}
		list.Traces = append(list.Traces, TraceSummary{
			TraceID:    rec.TraceID,
			Start:      rec.Start,
			DurationMS: durationMS(rec.Duration),
			Outcome:    rec.Outcome,
			Instance:   rec.Instance,
			Algorithm:  rec.Algorithm,
			Model:      rec.Model,
			Status:     rec.Status,
			Spans:      len(rec.Spans),
		})
		if len(list.Traces) == limit {
			break
		}
	}
	list.Count = len(list.Traces)
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (start the server with a trace store)")
		return
	}
	id := r.PathValue("id")
	rec, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained trace %q (evicted, sampled out, or never seen)", id)
		return
	}
	writeJSON(w, http.StatusOK, traceTree(rec))
}

// traceTree nests a record's flat span slice into parent→child form. Spans
// are already sorted by start time, so children appear in phase order.
func traceTree(rec *obs.TraceRecord) TraceTree {
	tree := TraceTree{
		TraceID:    rec.TraceID,
		Start:      rec.Start,
		DurationMS: durationMS(rec.Duration),
		Outcome:    rec.Outcome,
		Instance:   rec.Instance,
		Algorithm:  rec.Algorithm,
		Model:      rec.Model,
		Status:     rec.Status,
		Roots:      []*SpanNode{},
	}
	nodes := make(map[string]*SpanNode, len(rec.Spans))
	for _, sp := range rec.Spans {
		nodes[sp.SpanID] = &SpanNode{Span: sp, DurationMS: durationMS(sp.Duration)}
	}
	for _, sp := range rec.Spans { // second pass keeps input (start-time) order
		n := nodes[sp.SpanID]
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, n)
		} else {
			tree.Roots = append(tree.Roots, n)
		}
	}
	return tree
}
