// Package server implements mroamd's HTTP serving layer over the anytime
// solve engine: a JSON API that accepts per-request algorithm and deadline
// selection, a bounded worker pool with queue admission control (overload
// answers 429 instead of piling up goroutines), and per-request metrics
// exposed on /stats.
//
// Endpoints:
//
//	POST   /solve             run one solve against a catalog instance
//	GET    /healthz           liveness probe
//	GET    /stats             aggregate request metrics (JSON)
//	GET    /metrics           the same aggregates in Prometheus text exposition
//	GET    /instances         list the loaded instances
//	PUT    /instances/{name}  load or hot-swap an instance from a Spec body
//	DELETE /instances/{name}  unload an instance (the default is protected)
//
// Every /solve request is assigned a process-unique request ID, echoed in
// the X-Request-ID response header, propagated through the request context
// into the solver, and stamped on the one structured log line emitted per
// request (outcome, algorithm, seed, restarts completed, truncation,
// latency). When Config.Logger admits Debug records, solver progress
// events (restart schedule, incumbent improvements) are logged too, via a
// core.Tracer — tracing is observational, so traced and untraced solves
// return bit-identical plans.
//
// The server serves a catalog.Catalog of named immutable instances. A
// /solve request picks one with its optional "instance" field; omitting it
// selects the catalog's default instance, which preserves the single-
// instance wire format exactly (covered by a golden test). Solves are
// read-only with respect to the instance they resolved at admission, so any
// number can run concurrently, and a PUT reload hot-swaps the name without
// blocking or perturbing them — in-flight solves finish on the snapshot
// they started with. The worker pool bounds CPU oversubscription, and the
// queue bounds latency: a request that cannot be admitted is rejected
// immediately with 429 so the client can retry against another replica
// instead of waiting behind an unbounded backlog.
//
// With Config.CacheEntries > 0 the server memoizes completed untruncated
// solves in a solvecache.Cache keyed by the deterministic request tuple
// (instance name + catalog generation, algorithm, seed, restarts,
// improvement ratio): a repeated request is answered from cache without
// consuming a worker slot ("cached": true plus the entry's age in the
// response), and identical concurrent requests coalesce onto one in-flight
// solve. The generation in the key makes a hot-swap an automatic miss, and
// DELETE (or a reload) drops the name's dead entries eagerly.
//
// The /instances admin endpoints mutate the catalog and carry no built-in
// authentication, mirroring the ops-port posture (DESIGN.md §10): deploy
// them behind the same network controls as /debug/pprof, or keep the API
// listener private.
//
// Graceful shutdown is delegated to net/http: http.Server.Shutdown stops
// accepting connections and waits for in-flight handlers — and therefore
// in-flight solves — to drain. Solves additionally run under the request
// context, so a client that disconnects (or a server closed with
// http.Server.Close) cancels its solve mid-restart via the anytime engine
// rather than leaking a runaway computation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/solvecache"
)

// Config parameterizes a Server.
type Config struct {
	// Catalog holds the named instances /solve requests run against; a
	// request's "instance" field picks one, defaulting to the catalog's
	// default entry. Required, with at least one instance loaded.
	Catalog *catalog.Catalog
	// Workers bounds the number of concurrently executing solves.
	// Values < 1 select runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker slot
	// beyond the Workers executing ones. Requests arriving with the queue
	// full are rejected with 429. Values < 0 select 2×Workers.
	QueueDepth int
	// DefaultDeadline is applied to requests that do not set deadline_ms.
	// Zero means no implicit deadline.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadline (and bounds how long a
	// drain can take). Zero means no cap.
	MaxDeadline time.Duration
	// MaxRestarts caps the per-request restart budget as an admission
	// guard against accidentally enormous requests. Values < 1 select
	// DefaultMaxRestarts.
	MaxRestarts int
	// CacheEntries bounds the solve-result cache: completed untruncated
	// solves are memoized by their deterministic request tuple (instance
	// name + catalog generation, algorithm, seed, restarts, improvement
	// ratio), and identical concurrent requests coalesce onto one
	// in-flight solve. 0 (the default) disables caching entirely.
	CacheEntries int
	// Admission selects the admission policy: AdmitShed (the default,
	// byte-identical to the pre-policy server), AdmitDeadline (shed
	// requests whose deadline the queue provably cannot meet at the
	// current drain rate) or AdmitFair (cap any one instance's share of
	// the admission capacity). Empty selects AdmitShed.
	Admission string
	// FairShare caps how many admission slots (queued + executing
	// requests) one instance may hold under AdmitFair. Values < 1 select
	// half the total capacity, rounded up. Ignored by the other policies.
	FairShare int
	// TraceCapacity bounds the in-daemon span store: completed request
	// traces are retained in a ring of this many slots and served on
	// /debug/traces. 0 (the default) disables span tracing entirely — the
	// request path then mints no span IDs and records no spans, and solve
	// results are bit-identical either way (tracing is observational).
	TraceCapacity int
	// TraceKeepSlowest is the fraction of plain served traces tail
	// sampling keeps once warmed up (errors, sheds and truncations are
	// always kept). Non-positive selects obs.DefaultTraceKeepSlowest;
	// values ≥ 1 keep everything.
	TraceKeepSlowest float64
	// Logger receives one structured record per /solve request plus
	// lifecycle events. nil discards everything. A logger whose level
	// admits Debug additionally gets per-restart solver trace events.
	Logger *slog.Logger

	// solve overrides the solve call in tests (e.g. to gate completion
	// deterministically). nil selects core.SolveAnytime.
	solve func(ctx context.Context, alg core.Algorithm, inst *core.Instance) *core.Anytime
}

// DefaultMaxRestarts is the per-request restart cap when Config.MaxRestarts
// is unset.
const DefaultMaxRestarts = 1000

// Server serves solve requests over a catalog of MROAM instances.
type Server struct {
	cfg     Config
	catalog *catalog.Catalog
	log     *slog.Logger
	mux     *http.ServeMux
	queue   chan struct{} // waiting-room tokens: capacity QueueDepth
	workers chan struct{} // execution tokens: capacity Workers
	metrics *metrics
	cache   *solvecache.Cache // nil when Config.CacheEntries == 0
	traces  *obs.SpanStore    // nil when Config.TraceCapacity == 0
	adm     *admission

	// incumbents carries the last completed plan per (instance, model) for
	// warm-started solves; incumbent.go owns it.
	incMu      sync.Mutex
	incumbents map[string]*incumbent
}

// backlog is the number of admitted requests currently holding an admission
// slot — waiting for a worker plus executing on one. Every estimate the
// admission layer makes (Retry-After, deadline feasibility, /stats, the
// queue-depth gauge) consumes this one definition, so the two token
// channels can never be counted inconsistently: a request holds exactly one
// of the two tokens at any instant.
func (s *Server) backlog() int { return len(s.queue) + len(s.workers) }

// New validates cfg and returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, errors.New("server: Config.Catalog is required")
	}
	if cfg.Catalog.Len() == 0 {
		return nil, errors.New("server: Config.Catalog has no instances loaded")
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.MaxRestarts < 1 {
		cfg.MaxRestarts = DefaultMaxRestarts
	}
	if cfg.Admission == "" {
		cfg.Admission = AdmitShed
	}
	if !validPolicy(cfg.Admission) {
		return nil, fmt.Errorf("server: unknown admission policy %q (want %s, %s or %s)",
			cfg.Admission, AdmitShed, AdmitDeadline, AdmitFair)
	}
	if cfg.FairShare < 1 {
		cfg.FairShare = DefaultFairShare(cfg.Workers + cfg.QueueDepth)
	}
	if cfg.solve == nil {
		cfg.solve = core.SolveAnytime
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	s := &Server{
		cfg:        cfg,
		catalog:    cfg.Catalog,
		log:        cfg.Logger,
		mux:        http.NewServeMux(),
		queue:      make(chan struct{}, cfg.QueueDepth),
		workers:    make(chan struct{}, cfg.Workers),
		metrics:    newMetrics(cfg.Catalog),
		incumbents: map[string]*incumbent{},
		adm: &admission{
			policy:    cfg.Admission,
			workers:   cfg.Workers,
			capacity:  cfg.Workers + cfg.QueueDepth,
			fairShare: cfg.FairShare,
		},
	}
	s.metrics.reg.GaugeFunc("mroamd_queue_depth",
		"Admitted requests currently queued or executing.",
		func() float64 { return float64(s.backlog()) })
	s.metrics.reg.GaugeFunc("mroamd_inflight_solves",
		"Solves currently holding a worker slot.",
		func() float64 { return float64(len(s.workers)) })
	if cfg.CacheEntries > 0 {
		s.cache = solvecache.New(solvecache.Config{
			Entries: cfg.CacheEntries,
			// A flight detached from its requesters still never runs
			// longer than any client could have asked for.
			MaxFlight: cfg.MaxDeadline,
			OnEvent:   func(ev solvecache.Event) { s.metrics.solveCache.With(string(ev)).Inc() },
		})
	}
	if cfg.TraceCapacity > 0 {
		s.traces = obs.NewSpanStore(cfg.TraceCapacity, cfg.TraceKeepSlowest)
		s.traces.OnEvent = func(kept bool) {
			if kept {
				s.metrics.traceEvents.With("stored").Inc()
			} else {
				s.metrics.traceEvents.With("sampled_out").Inc()
			}
		}
		s.metrics.reg.GaugeFunc("mroamd_trace_store_traces",
			"Completed request traces currently retained in the span store.",
			func() float64 { return float64(s.traces.Len()) })
	}
	s.metrics.reg.GaugeFunc("mroamd_solve_cache_entries",
		"Completed solve results currently cached.",
		func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.Len())
		})
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.Handle("/metrics", s.MetricsHandler())
	s.mux.HandleFunc("GET /instances", s.handleInstancesList)
	s.mux.HandleFunc("PUT /instances/{name}", s.handleInstancePut)
	s.mux.HandleFunc("PATCH /instances/{name}/advertisers", s.handleInstancePatch)
	s.mux.HandleFunc("DELETE /instances/{name}", s.handleInstanceDelete)
	s.mux.Handle("/debug/traces", s.TracesHandler())
	s.mux.Handle("/debug/traces/{id}", s.TracesHandler())
	return s, nil
}

// TracesHandler returns the /debug/traces handlers on their own, so a
// separate ops listener can serve them without exposing /solve (mirroring
// MetricsHandler). With tracing disabled the handlers answer 404.
func (s *Server) TracesHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", s.handleTracesList)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	return mux
}

// Handler returns the HTTP handler tree; mount it on an http.Server (whose
// Shutdown drains in-flight solves).
func (s *Server) Handler() http.Handler { return s.mux }

// MetricsHandler returns the Prometheus exposition handler on its own, so
// a separate ops listener can serve /metrics without exposing /solve.
func (s *Server) MetricsHandler() http.Handler { return s.metrics.reg.Handler() }

// SolveRequest is the JSON body of POST /solve.
type SolveRequest struct {
	// Instance names the catalog instance to solve against; empty selects
	// the server's default instance.
	Instance string `json:"instance,omitempty"`
	// Algorithm is the figure name of the solver: "G-Order", "G-Global",
	// "ALS" or "BLS".
	Algorithm string `json:"algorithm"`
	// Restarts is the ALS/BLS restart budget (0 selects the library
	// default). Capped by the server's MaxRestarts admission guard.
	Restarts int `json:"restarts"`
	// Seed drives the randomized local search; equal seeds give equal
	// plans (when no deadline fires).
	Seed uint64 `json:"seed"`
	// DeadlineMS is the solve's latency budget in milliseconds. 0 selects
	// the server default; the server's MaxDeadline caps it either way.
	DeadlineMS int64 `json:"deadline_ms"`
	// ImprovementRatio is Definition 6.1's r for BLS.
	ImprovementRatio float64 `json:"improvement_ratio"`
	// SearchWorkers fans one solve's restart loop over N goroutines
	// (0 = serial). Results are identical for any value.
	SearchWorkers int `json:"search_workers"`
	// IncludeAssignments adds the full per-advertiser billboard sets to
	// the response.
	IncludeAssignments bool `json:"include_assignments"`
	// WarmStart seeds the solve from the daemon's last completed plan for
	// the same (instance, model) pair, when one exists at the instance's
	// current generation — the delta-solve path for patched markets. With
	// no usable incumbent the solve runs cold and the response says so
	// (warm_started absent). Warm-started results are never served from or
	// stored into the solve cache: the incumbent is part of the effective
	// input but not of the cache key.
	WarmStart bool `json:"warm_start,omitempty"`
}

// SolveResponse is the JSON body answering POST /solve. Instance and
// Generation identify the exact catalog snapshot that was solved; they are
// echoed only when the request named an instance, which keeps the default-
// instance response byte-identical to the pre-catalog wire format.
type SolveResponse struct {
	Algorithm  string `json:"algorithm"`
	Instance   string `json:"instance,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// Model is the resolved instance's regret-model kind. Echoed whenever
	// the instance carries a variant model; for base instances it follows
	// the Instance/Generation rule (named requests only) so the default-
	// instance body stays byte-identical to the pre-model wire format.
	Model             string  `json:"model,omitempty"`
	TotalRegret       float64 `json:"total_regret"`
	Excess            float64 `json:"excess_regret"`
	Unsatisfied       float64 `json:"unsatisfied_regret"`
	Revenue           float64 `json:"revenue"`
	Satisfied         int     `json:"satisfied"`
	Advertisers       int     `json:"advertisers"`
	RestartsRequested int     `json:"restarts_requested"`
	RestartsCompleted int     `json:"restarts_completed"`
	Truncated         bool    `json:"truncated"`
	Evals             int64   `json:"evals"`
	LatencyMS         float64 `json:"latency_ms"`
	// EffectiveDeadlineMS echoes the deadline the solve actually ran under
	// whenever it differs from the one the request asked for — a clamp to
	// MaxDeadline, or a default applied to a request that set none — so a
	// truncated response is always explicable. Omitted when the requested
	// deadline was used verbatim.
	EffectiveDeadlineMS int64 `json:"effective_deadline_ms,omitempty"`
	// Cached is true when the result came from the solve cache — a
	// completed entry, or an identical in-flight solve this request
	// coalesced onto. CacheAgeMS is how long the entry had been cached
	// (0 for coalesced results, which are brand new).
	Cached     bool    `json:"cached,omitempty"`
	CacheAgeMS float64 `json:"cache_age_ms,omitempty"`
	// WarmStarted reports that the solve was seeded from a validated
	// incumbent plan (requests with "warm_start": true only); false there
	// means the daemon had no incumbent at the instance's current
	// generation and ran cold. FrozenAdvertisers is how many advertisers
	// the branch-switch screen kept out of the warm descent.
	WarmStarted       bool    `json:"warm_started,omitempty"`
	FrozenAdvertisers int     `json:"frozen_advertisers,omitempty"`
	Assignments       [][]int `json:"assignments,omitempty"`
}

// errorResponse is the JSON body of non-200 answers.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body) // headers are out; nothing useful left to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxRequestBody bounds /solve bodies; solve requests are a handful of
// scalar knobs, so anything larger is a client bug.
const maxRequestBody = 1 << 20

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Admission stamps every request — even ones about to be rejected —
	// with an ID, so a log line can always be tied back to the response the
	// client saw. A request arriving with a valid traceparent uses its
	// trace ID as that identifier end to end (X-Request-ID, log line,
	// /debug/traces); anything else gets a legacy process-unique ID.
	admitted := time.Now()
	lc := s.startLifecycle(w, r, admitted)
	reqID := lc.requestID
	w.Header().Set("X-Request-ID", reqID)
	ctx := obs.WithRequestID(r.Context(), reqID)
	reqLog := s.log.With("req", reqID)
	if lc.traceID != "" && lc.traceID != reqID {
		reqLog = reqLog.With("trace", lc.traceID)
	}
	logOutcome := func(status int, attrs ...any) {
		attrs = append(attrs,
			"status", status,
			"elapsed_ms", float64(time.Since(admitted).Microseconds())/1e3)
		reqLog.Info("solve request", attrs...)
	}
	fail := func(status int, outcome, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		logOutcome(status, "error", msg)
		writeJSON(w, status, errorResponse{Error: msg})
		lc.finish(status, outcome)
	}

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		fail(http.StatusMethodNotAllowed, "error", "POST only")
		return
	}
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "error", "decode request: %v", err)
		return
	}
	if req.Restarts < 0 || req.DeadlineMS < 0 {
		fail(http.StatusBadRequest, "error", "restarts and deadline_ms must be non-negative")
		return
	}
	if req.Restarts > s.cfg.MaxRestarts {
		fail(http.StatusBadRequest, "error", "restarts %d exceeds server cap %d", req.Restarts, s.cfg.MaxRestarts)
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = "BLS"
	}
	// Resolve the instance once, at admission: everything below — solve,
	// metrics, response dimensions — uses this one immutable snapshot, so a
	// concurrent hot-swap can never produce a torn response.
	entry, ok := s.catalog.Get(req.Instance)
	if !ok {
		fail(http.StatusNotFound, "error", "unknown instance %q", req.Instance)
		return
	}
	// Tracing is observational (bit-identical results), so attaching it —
	// the Debug log tracer, the restart-span tracer, or both — cannot
	// change answers. The span tracer is constructed unarmed here and armed
	// at solve start; until then (and with tracing disabled, where it is
	// nil) it ignores every event.
	var tracer core.Tracer
	if reqLog.Enabled(ctx, slog.LevelDebug) {
		tracer = obs.LogTracer{L: reqLog}
	}
	if lc.tracer != nil {
		if tracer != nil {
			tracer = obs.MultiTracer{lc.tracer, tracer}
		} else {
			tracer = lc.tracer
		}
	}
	// Resolve the warm-start incumbent against the same snapshot as the
	// solve: the store only answers with a plan recorded at exactly
	// entry.Generation (remapped through any PATCHes), so the seed can never
	// reference advertisers the snapshot does not have.
	var ws *core.WarmStart
	if req.WarmStart {
		ws = s.incumbentFor(entry)
	}
	alg, err := core.AlgorithmByNameOpts(req.Algorithm, core.LocalSearchOptions{
		Seed:             req.Seed,
		Restarts:         req.Restarts,
		ImprovementRatio: req.ImprovementRatio,
		Workers:          max(req.SearchWorkers, 1), // serial unless asked; the pool owns parallelism
		Tracer:           tracer,
		WarmStart:        ws,
	})
	if err != nil {
		fail(http.StatusBadRequest, "error", "%v", err)
		return
	}
	lc.noteTarget(entry.Name, alg.Name(), entry.Info.Model)

	// The effective deadline is computed before admission so the cache
	// fast path and the response echo share it. When it differs from what
	// the request asked for — a clamp to MaxDeadline, or a default applied
	// to a deadline-less request — it is echoed back instead of being
	// applied silently.
	requested := time.Duration(req.DeadlineMS) * time.Millisecond
	deadline := requested
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (deadline == 0 || deadline > s.cfg.MaxDeadline) {
		deadline = s.cfg.MaxDeadline
	}
	var effDeadlineMS int64
	if deadline != requested {
		effDeadlineMS = deadline.Milliseconds()
	}

	// Cache fast path: a completed identical solve answers immediately,
	// without consuming a queue or worker token. The key carries the
	// snapshot's generation, so a hot-swapped instance is a natural miss.
	// Warm-started requests bypass the cache in both directions — their
	// effective input includes the incumbent, which the key does not carry,
	// so serving or storing them under the plain tuple would alias two
	// different computations.
	useCache := s.cache != nil && !req.WarmStart
	var key solvecache.Key
	if useCache {
		key = solvecache.Key{
			Instance:         entry.Name,
			Generation:       entry.Generation,
			Algorithm:        alg.Name(),
			Model:            entry.Info.Model,
			Seed:             req.Seed,
			Restarts:         req.Restarts,
			ImprovementRatio: req.ImprovementRatio,
		}
		lc.enterCacheLookup(time.Now())
		if res, age, ok := s.cache.Lookup(key); ok {
			latency := time.Since(admitted)
			s.metrics.observeRequest(req.Algorithm, entry.Name, entry.Info.Model, res, latency)
			lc.cacheHit(time.Now())
			s.finishSolve(w, logOutcome, lc, req, alg.Name(), entry, res, latency, true, age, effDeadlineMS)
			return
		}
	}
	lc.enterQueue(time.Now())

	// Admission. Every shed answers 429 with the reason labeled on the
	// rejection counter, echoed in X-Reject-Reason, and a Retry-After hint
	// derived from the current queue drain rate (backlog × mean worker-hold
	// time ÷ workers; 1s before any request has completed).
	reject := func(reason, format string, args ...any) {
		s.metrics.rejected.With(reason).Inc()
		w.Header().Set("X-Reject-Reason", reason)
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(s.backlog(), s.adm.workers, s.adm.serviceEstimate())))
		fail(http.StatusTooManyRequests, "shed_"+reason, format, args...)
	}

	// Per-instance occupancy: reserve the slot first (Add returns the new
	// value, so reservation and the fair-share check are one atomic step —
	// occupancy above the cap is never admitted), release it when the
	// request unwinds, whatever the outcome.
	inflight := s.metrics.instanceInflight.With(entry.Name)
	if n := inflight.Add(1); s.adm.policy == AdmitFair && n > int64(s.adm.fairShare) {
		inflight.Add(-1)
		reject(rejectFairness, "instance %q already holds its fair share (%d) of admission slots",
			entry.Name, s.adm.fairShare)
		return
	}
	defer inflight.Add(-1)

	// Deadline feasibility: shed a request whose solve budget would already
	// be spent by the time the current backlog drains to a worker, instead
	// of queueing it toward a degenerate truncated answer.
	if s.adm.policy == AdmitDeadline {
		if queued, svc := s.backlog(), s.adm.serviceEstimate(); !DeadlineFeasible(deadline, queued, s.adm.workers, svc) {
			reject(rejectDeadlineInfeasible,
				"deadline %v infeasible: estimated queue wait %v (%d queued, %d workers, ~%v per solve)",
				deadline, EstimatedQueueWait(queued, s.adm.workers, svc), queued, s.adm.workers, svc)
			return
		}
	}

	// Admission tokens. A request holds exactly one of the two at any
	// instant: an execution token while solving, or a waiting-room token
	// while blocked for one. The fast path claims a free worker directly —
	// with QueueDepth = 0 the waiting room has no capacity at all, and a
	// request either starts immediately or is shed.
	select {
	case s.workers <- struct{}{}:
		defer func() { <-s.workers }()
	default:
		// No worker free: enter the waiting room without blocking, or shed
		// load now.
		select {
		case s.queue <- struct{}{}:
		default:
			reject(rejectCapacity, "solver queue full")
			return
		}
		// Wait (bounded by the waiting-room capacity above) for an
		// execution slot, trading the queue token for the worker token at
		// acquisition. A client that gives up while queued abandons the
		// request without ever occupying a worker.
		select {
		case s.workers <- struct{}{}:
			<-s.queue
			defer func() { <-s.workers }()
		case <-ctx.Done():
			<-s.queue
			s.metrics.abandoned.Inc()
			fail(statusClientClosedRequest, "abandoned", "client closed request while queued")
			return
		}
	}

	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	start := time.Now()
	lc.enterSolve(start)
	var res *core.Anytime
	cached := false
	var age time.Duration
	if useCache {
		// Compute-once path: identical concurrent requests coalesce onto
		// one flight, which runs detached from every requester (bounded by
		// MaxDeadline) so an impatient client cannot starve the rest. This
		// request still waits under its own ctx.
		var info solvecache.Info
		res, info = s.cache.Do(ctx, key, func(fctx context.Context) *core.Anytime {
			return s.cfg.solve(fctx, alg, entry.Instance)
		})
		switch info.Outcome {
		case solvecache.Hit:
			cached, age = true, info.Age
		case solvecache.Followed:
			cached = true
		case solvecache.Expired:
			if r.Context().Err() == nil {
				// The request's own deadline fired while waiting on the
				// flight. Honor the anytime contract the uncached path
				// offers: solving under the already-expired ctx returns
				// the best-so-far truncated result immediately.
				res = s.cfg.solve(ctx, alg, entry.Instance)
			}
		}
	} else {
		res = s.cfg.solve(ctx, alg, entry.Instance)
	}
	latency := time.Since(start)
	// However the result was produced, this request held a worker slot for
	// `latency`: fold it into the drain-rate estimate behind deadline
	// feasibility and Retry-After.
	s.adm.observeService(latency)

	// A client that hung up mid-solve never saw an answer: count it as
	// abandoned and answer 499, exactly like a disconnect in the queue —
	// not as a completed 200 that skews the latency and regret series.
	if err := r.Context().Err(); err != nil {
		s.metrics.abandoned.Inc()
		fail(statusClientClosedRequest, "abandoned", "client closed request during solve")
		return
	}

	if cached {
		// The flight's solver work was (or will be) recorded by the
		// request that ran it; this request only contributes the
		// response-level series.
		s.metrics.observeRequest(req.Algorithm, entry.Name, entry.Info.Model, res, latency)
	} else {
		s.metrics.observe(req.Algorithm, entry.Name, entry.Info.Model, res, latency)
		// A computed, complete solve becomes the incumbent future
		// warm-started requests for this (instance, model) seed from.
		s.storeIncumbent(entry, res)
	}
	// The solve phase ends exactly where it started plus the measured
	// latency, keeping the span layout contiguous.
	lc.enterEncode(start.Add(latency), latency)
	s.finishSolve(w, logOutcome, lc, req, alg.Name(), entry, res, latency, cached, age, effDeadlineMS)
}

// finishSolve emits the one structured log line, the Server-Timing header
// and the SolveResponse body for a completed solve, whether it ran on this
// request's worker slot or was served from the cache, then completes the
// request's trace.
func (s *Server) finishSolve(w http.ResponseWriter, logOutcome func(int, ...any),
	lc *reqLifecycle, req SolveRequest, algName string, entry *catalog.Entry, res *core.Anytime,
	latency time.Duration, cached bool, age time.Duration, effDeadlineMS int64) {
	attrs := []any{
		"algorithm", algName,
		"instance", entry.Name,
		"generation", entry.Generation,
		"seed", req.Seed,
		"regret", res.TotalRegret,
		"restarts_completed", res.RestartsCompleted,
		"truncated", res.Truncated,
		"evals", res.Evals,
		"solve_ms", float64(latency.Microseconds()) / 1e3,
	}
	if cached {
		attrs = append(attrs, "cached", true)
	}
	logOutcome(http.StatusOK, attrs...)

	plan := res.Plan
	excess, unsat := plan.Breakdown()
	resp := SolveResponse{
		Algorithm:           algName,
		TotalRegret:         res.TotalRegret,
		Excess:              excess,
		Unsatisfied:         unsat,
		Revenue:             core.Revenue(plan),
		Satisfied:           plan.SatisfiedCount(),
		Advertisers:         entry.Instance.NumAdvertisers(),
		RestartsRequested:   res.RestartsRequested,
		RestartsCompleted:   res.RestartsCompleted,
		Truncated:           res.Truncated,
		Evals:               res.Evals,
		LatencyMS:           float64(latency.Microseconds()) / 1e3,
		EffectiveDeadlineMS: effDeadlineMS,
		Cached:              cached,
		CacheAgeMS:          float64(age.Microseconds()) / 1e3,
		WarmStarted:         res.WarmStarted,
		FrozenAdvertisers:   res.FrozenAdvertisers,
	}
	if req.Instance != "" {
		// Echo the snapshot identity only for requests that opted into
		// instance selection; the default-instance body stays byte-
		// compatible with the single-instance wire format.
		resp.Instance = entry.Name
		resp.Generation = entry.Generation
		resp.Model = entry.Info.Model
	}
	if entry.Info.Model != "" && entry.Info.Model != core.ModelBase {
		// A variant answer is always labeled, even on the default instance —
		// the numbers are not comparable to base-model output.
		resp.Model = entry.Info.Model
	}
	if req.IncludeAssignments {
		resp.Assignments = make([][]int, entry.Instance.NumAdvertisers())
		for i := range resp.Assignments {
			resp.Assignments[i] = plan.Set(i, []int{})
		}
	}
	w.Header().Set("Server-Timing", lc.serverTiming())
	writeJSON(w, http.StatusOK, resp)
	outcome := "served"
	if res.Truncated {
		outcome = "served_truncated"
	}
	lc.finish(http.StatusOK, outcome)
}

// statusClientClosedRequest is nginx's non-standard 499 — the closest thing
// to a status for "the client hung up while we were still queueing".
const statusClientClosedRequest = 499

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	body := map[string]any{
		"status":      "ok",
		"workers":     s.cfg.Workers,
		"queue_depth": s.cfg.QueueDepth,
		"instances":   s.catalog.Len(),
		"admission":   s.adm.policy,
		"fair_share":  s.adm.fairShare,
	}
	// billboards/advertisers report the default instance's dimensions, as
	// they did when the server held exactly one instance.
	if e, ok := s.catalog.Get(""); ok {
		body["default"] = e.Name
		body["billboards"] = e.Instance.Universe().NumBillboards()
		body["advertisers"] = e.Instance.NumAdvertisers()
		body["corridors"] = e.Info.Corridors
		body["compression_ratio"] = e.Info.CompressionRatio
		body["model"] = e.Instance.Model().Kind()
	}
	writeJSON(w, http.StatusOK, body)
}

// InstanceInfo is the JSON description of one loaded instance, served by the
// /instances admin endpoints.
type InstanceInfo struct {
	Name       string            `json:"name"`
	Generation uint64            `json:"generation"`
	Default    bool              `json:"default,omitempty"`
	Spec       catalog.Spec      `json:"spec"`
	Info       catalog.BuildInfo `json:"info"`
}

func (s *Server) instanceInfo(e *catalog.Entry) InstanceInfo {
	return InstanceInfo{
		Name:       e.Name,
		Generation: e.Generation,
		Default:    e.Name == s.catalog.DefaultName(),
		Spec:       e.Spec,
		Info:       e.Info,
	}
}

func (s *Server) handleInstancesList(w http.ResponseWriter, r *http.Request) {
	entries := s.catalog.List()
	infos := make([]InstanceInfo, len(entries))
	for i, e := range entries {
		infos[i] = s.instanceInfo(e)
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleInstancePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := catalog.ValidateName(name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var spec catalog.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if spec.Name != "" && spec.Name != name {
		writeError(w, http.StatusBadRequest,
			"spec name %q disagrees with URL name %q", spec.Name, name)
		return
	}
	_, existed := s.catalog.Get(name)
	start := time.Now()
	e, err := s.catalog.Load(name, spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "build instance: %v", err)
		return
	}
	s.metrics.reloads.Inc()
	if s.cache != nil && existed {
		// Entries for the replaced generations could never be hit again
		// (the key carries the generation), but dropping them returns
		// their capacity immediately.
		s.cache.InvalidateInstance(name)
	}
	// A reload rebuilds the advertiser set from scratch — no index mapping
	// survives, so any incumbent plans for the name are dead.
	s.dropIncumbents(name)
	s.log.Info("instance loaded",
		"instance", e.Name,
		"generation", e.Generation,
		"reload", existed,
		"billboards", e.Info.Billboards,
		"advertisers", e.Info.Advertisers,
		"build_ms", float64(time.Since(start).Microseconds())/1e3)
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, s.instanceInfo(e))
}

func (s *Server) handleInstanceDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	err := s.catalog.Delete(name)
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		writeError(w, http.StatusNotFound, "unknown instance %q", name)
		return
	case errors.Is(err, catalog.ErrDefaultDelete):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Retire the deleted instance's metric series; if the name is ever
	// reloaded its counter restarts at zero (the Prometheus reset semantic).
	s.metrics.instanceReqs.Delete(name)
	s.metrics.instanceInflight.Delete(name)
	if s.cache != nil {
		s.cache.InvalidateInstance(name)
	}
	s.dropIncumbents(name)
	s.log.Info("instance deleted", "instance", name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.backlog()))
}
