package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitTokens polls until the server holds exactly n admission tokens
// (queued + executing requests).
func waitTokens(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.backlog() != n {
		if time.Now().After(deadline) {
			t.Fatalf("backlog stuck at %d tokens, want %d", s.backlog(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// asyncSolve posts one solve on its own goroutine and returns a channel
// carrying the status code.
func asyncSolve(t *testing.T, ts *httptest.Server, body string) <-chan int {
	t.Helper()
	status := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	return status
}

// postRaw posts one solve synchronously and returns the raw response.
func postRaw(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestAdmissionDeadlineSheds pins the deadline policy end to end with a
// fully deterministic queue: two gated solves saturate a 1-worker/1-slot
// pool, the drain estimate is pinned at 3s per solve, and then
//
//   - a request with a 100ms deadline is provably infeasible (estimated
//     wait 6s) and must shed with reason deadline_infeasible and a
//     drain-rate-derived Retry-After of 6s;
//   - a request with no deadline passes the screen and sheds on plain
//     capacity instead, proving the checks fire in order;
//   - after the queue drains, the same 100ms request is admitted — the
//     policy sheds on queue state, not on the deadline's absolute size.
func TestAdmissionDeadlineSheds(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 1, 1)
	cfg.Admission = AdmitDeadline
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Pin the EWMA drain estimate to 3s per solve so the feasibility
	// arithmetic is exact: with 2 outstanding tokens and 1 worker the
	// estimated wait is (2-1+1)×3s = 6s.
	s.adm.svcMicros.Store(3_000_000)

	first := asyncSolve(t, ts, `{"algorithm":"G-Order"}`)
	<-started // executing
	second := asyncSolve(t, ts, `{"algorithm":"G-Order"}`)
	waitTokens(t, s, 2) // queued behind the gate

	resp := postRaw(t, ts, `{"algorithm":"G-Order","deadline_ms":100}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("infeasible deadline: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Reject-Reason"); got != "deadline_infeasible" {
		t.Fatalf("reject reason %q, want deadline_infeasible", got)
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Fatalf("Retry-After %q, want 6 (6s estimated drain)", got)
	}

	// A deadline-free request survives the screen and hits the capacity
	// wall instead.
	resp = postRaw(t, ts, `{"algorithm":"G-Order"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("deadline-free overflow: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Reject-Reason"); got != "capacity" {
		t.Fatalf("reject reason %q, want capacity", got)
	}

	release()
	for _, ch := range []<-chan int{first, second} {
		if got := <-ch; got != http.StatusOK {
			t.Fatalf("admitted solve finished %d, want 200", got)
		}
	}
	waitTokens(t, s, 0)

	// Same 100ms deadline, empty queue: estimated wait 0, admitted.
	resp = postRaw(t, ts, `{"algorithm":"G-Order","deadline_ms":100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained-queue deadline solve: status %d, want 200", resp.StatusCode)
	}

	var st Stats
	getStats(t, ts, &st)
	if st.RejectedByReason["deadline_infeasible"] != 1 || st.RejectedByReason["capacity"] != 1 {
		t.Errorf("rejected_by_reason = %v, want 1 deadline_infeasible + 1 capacity", st.RejectedByReason)
	}
	if st.Rejected != 2 {
		t.Errorf("rejected total %d, want 2", st.Rejected)
	}
	ts.Client().CloseIdleConnections()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestAdmissionFairShareCap pins the fair policy: with FairShare=2 an
// instance sending its third concurrent request sheds with reason fairness
// no matter how much total capacity remains, other instances keep being
// admitted, and the occupancy accounting releases slots on completion so
// the shed instance recovers.
func TestAdmissionFairShareCap(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 2, 2)
	cfg.Admission = AdmitFair
	cfg.FairShare = 2
	if _, err := cfg.Catalog.AddInstance("other", testInstance(t, 50, 8, 2)); err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two "default" requests occupy the fair share (both executing).
	d1 := asyncSolve(t, ts, `{"algorithm":"G-Order"}`)
	<-started
	d2 := asyncSolve(t, ts, `{"algorithm":"G-Order"}`)
	<-started

	// The third "default" request must shed on fairness even though half
	// the admission capacity (2 of 4 tokens) is free.
	resp := postRaw(t, ts, `{"algorithm":"G-Order"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-share request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Reject-Reason"); got != "fairness" {
		t.Fatalf("reject reason %q, want fairness", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fairness shed missing Retry-After")
	}

	// "other" still gets its share: two admitted (queued behind the
	// gate), the third sheds on fairness.
	o1 := asyncSolve(t, ts, `{"algorithm":"G-Order","instance":"other"}`)
	waitTokens(t, s, 3)
	o2 := asyncSolve(t, ts, `{"algorithm":"G-Order","instance":"other"}`)
	waitTokens(t, s, 4)
	resp = postRaw(t, ts, `{"algorithm":"G-Order","instance":"other"}`)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("X-Reject-Reason") != "fairness" {
		t.Fatalf("third other request: status %d reason %q, want 429 fairness",
			resp.StatusCode, resp.Header.Get("X-Reject-Reason"))
	}

	release()
	for _, ch := range []<-chan int{d1, d2, o1, o2} {
		if got := <-ch; got != http.StatusOK {
			t.Fatalf("admitted solve finished %d, want 200", got)
		}
	}
	waitTokens(t, s, 0)

	// Slots were released: the previously capped instance is admitted
	// again.
	resp = postRaw(t, ts, `{"algorithm":"G-Order"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain solve: status %d, want 200", resp.StatusCode)
	}

	var st Stats
	getStats(t, ts, &st)
	if st.RejectedByReason["fairness"] != 2 {
		t.Errorf("fairness rejections %d, want 2 (by reason: %v)", st.RejectedByReason["fairness"], st.RejectedByReason)
	}
	ts.Client().CloseIdleConnections()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestAdmissionConfigValidation: empty selects shed, unknown policies are
// a construction-time error, and the default fair share is half the
// capacity rounded up.
func TestAdmissionConfigValidation(t *testing.T) {
	inst := testInstance(t, 50, 8, 2)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 3, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.adm.policy != AdmitShed {
		t.Errorf("default policy %q, want shed", s.adm.policy)
	}
	if s.adm.fairShare != 3 { // (3+2+1)/2
		t.Errorf("default fair share %d, want 3", s.adm.fairShare)
	}
	if _, err := New(Config{Catalog: catalogFor(t, inst), Admission: "lifo"}); err == nil ||
		!strings.Contains(err.Error(), "admission policy") {
		t.Errorf("unknown policy error: %v", err)
	}
}

// TestAdmissionDeadlineNoEvidenceAdmits: before any request has completed
// there is no drain estimate, and the deadline policy must admit even very
// tight deadlines — it sheds only on positive evidence of infeasibility.
func TestAdmissionDeadlineNoEvidenceAdmits(t *testing.T) {
	inst := testInstance(t, 50, 8, 2)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 1, Admission: AdmitDeadline})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postRaw(t, ts, `{"algorithm":"G-Order","deadline_ms":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tight deadline with no estimate: status %d, want 200", resp.StatusCode)
	}
}

// getStats decodes GET /stats.
func getStats(t *testing.T, ts *httptest.Server, st *Stats) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterCountsExecutingSolves pins the backlog accounting behind
// Retry-After: with every worker busy and the waiting room EMPTY
// (QueueDepth=0), the drain estimate must still see the executing solves.
// An accounting that read only the waiting room would see backlog 0 here
// and emit the trivial 1-second fallback; the correct estimate for two
// 10s solves sharing two workers is (2-2+1)*10s/2 = 5s.
func TestRetryAfterCountsExecutingSolves(t *testing.T) {
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 2, 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer release()

	// Pin the EWMA so the arithmetic is exact: 10s per solve.
	s.adm.svcMicros.Store(10_000_000)

	first := asyncSolve(t, ts, `{"algorithm":"G-Order"}`)
	second := asyncSolve(t, ts, `{"algorithm":"G-Order"}`)
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never started")
		}
	}
	waitTokens(t, s, 2) // both tokens are execution tokens; the queue is empty

	resp := postRaw(t, ts, `{"algorithm":"G-Order"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Reject-Reason"); got != "capacity" {
		t.Fatalf("reject reason %q, want capacity", got)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After %q, want 5 (two executing 10s solves over two workers)", got)
	}

	release()
	for _, ch := range []<-chan int{first, second} {
		if got := <-ch; got != http.StatusOK {
			t.Fatalf("admitted solve finished %d, want 200", got)
		}
	}
}
