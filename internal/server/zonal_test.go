package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/solvecache"
)

// putSpec hot-swaps an instance via PUT /instances/{name}, failing the test
// on any non-200 answer.
func putSpec(tb testing.TB, client *http.Client, url string, spec catalog.Spec) {
	tb.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		tb.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("PUT %s: %d", url, resp.StatusCode)
	}
}

// zonalServerSpec is serverSpec(5) under the zonal model at a cap the base
// optimum violates (pinned by catalog's TestBuildZonal), so the constraint
// demonstrably flows through the server rather than riding along inertly.
func zonalServerSpec() catalog.Spec {
	s := serverSpec(5)
	s.Model = &catalog.ModelSpec{Kind: "zonal", ZoneCap: 10}
	return s
}

// TestSolveZonalEndToEnd drives a zonal instance through the full daemon
// path: the response echoes the model kind, the returned assignments respect
// every per-zone cap (checked against an independently built reference
// model), the answer is bit-identical to the library run, and — the cache-
// isolation contract — a base request can never be answered from a zonal
// cache entry, because the model kind is part of the solve-cache key.
func TestSolveZonalEndToEnd(t *testing.T) {
	spec := zonalServerSpec()
	zinst, zinfo, err := catalog.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	zm, ok := zinst.Model().(*core.ZonalModel)
	if !ok {
		t.Fatalf("reference build carries %T, want *core.ZonalModel", zinst.Model())
	}

	cat := catalog.New()
	if _, err := cat.Load("M", spec); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for _, tc := range []struct {
		alg string
		ref core.Algorithm
	}{
		{"BLS", core.BLSAlgorithm{Opts: core.LocalSearchOptions{Seed: 9, Restarts: 2, Workers: 1}}},
		{"G-Global", core.GGlobalAlgorithm{}},
	} {
		status, resp, fail := postSolve(t, client, ts.URL, SolveRequest{
			Algorithm: tc.alg, Restarts: 2, Seed: 9, Instance: "M",
			IncludeAssignments: true,
		})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", tc.alg, status, fail.Error)
		}
		if resp.Model != core.ModelZonal {
			t.Errorf("%s: response model %q, want %q", tc.alg, resp.Model, core.ModelZonal)
		}

		// Every advertiser's counted influence stays within the cap in
		// every zone, verified with the independently built partition.
		for i, set := range resp.Assignments {
			loads := make(map[int]int64)
			for _, b := range set {
				z := zm.ZoneOf(b)
				loads[z] += int64(zinst.Universe().Degree(b))
				if loads[z] > zm.Cap() {
					t.Errorf("%s: advertiser %d exceeds cap %d in zone %d (load %d)",
						tc.alg, i, zm.Cap(), z, loads[z])
				}
			}
		}

		// The server's answer is the library's answer on the zonal instance.
		ref := core.SolveAnytime(context.Background(), tc.ref, zinst)
		if resp.TotalRegret != ref.TotalRegret || resp.Evals != ref.Evals {
			t.Errorf("%s: server (regret %v, evals %d) != library (regret %v, evals %d)",
				tc.alg, resp.TotalRegret, resp.Evals, ref.TotalRegret, ref.Evals)
		}
	}

	// /instances and /healthz report the variant.
	if zinfo.Model != core.ModelZonal || zinfo.Zones < 2 || zinfo.ZoneCap != 10 {
		t.Errorf("build info %+v does not describe the zonal variant", zinfo)
	}
	hresp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var health map[string]any
	if err := json.Unmarshal(hraw, &health); err != nil {
		t.Fatal(err)
	}
	if health["model"] != core.ModelZonal {
		t.Errorf("healthz model = %v, want %q", health["model"], core.ModelZonal)
	}
}

// TestSolveCacheModelIsolation pins the acceptance criterion that a base
// request of the same name and generation cannot hit a zonal cache entry:
// the model kind participates in the solve-cache key, so two otherwise
// identical request tuples that resolved different models are distinct
// entries. The key-level check is exact (same name, same generation); the
// HTTP-level check then hot-swaps a zonal instance to base and verifies the
// repeat request misses and is re-answered with base numbers.
func TestSolveCacheModelIsolation(t *testing.T) {
	zonal := solvecache.Key{
		Instance: "M", Generation: 7, Model: core.ModelZonal,
		Algorithm: "BLS", Seed: 9, Restarts: 2,
	}
	base := zonal
	base.Model = core.ModelBase
	if zonal == base {
		t.Fatal("keys differing only in model compare equal")
	}

	zspec, bspec := zonalServerSpec(), serverSpec(5)
	cat := catalog.New()
	if _, err := cat.Load("M", zspec); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	req := SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 9, Instance: "M"}

	// Prime the cache with the zonal answer and confirm it hits.
	status, zfirst, _ := postSolve(t, client, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("zonal solve: %d", status)
	}
	status, zrepeat, _ := postSolve(t, client, ts.URL, req)
	if status != http.StatusOK || !zrepeat.Cached {
		t.Fatalf("zonal repeat: status %d cached %v, want 200 cached", status, zrepeat.Cached)
	}

	// Hot-swap "M" to the base model and repeat the identical request: it
	// must run a fresh base solve, not surface the zonal entry.
	putSpec(t, client, ts.URL+"/instances/M", bspec)
	status, bresp, _ := postSolve(t, client, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("base solve after swap: %d", status)
	}
	if bresp.Cached {
		t.Error("base request after swap served from cache")
	}
	if bresp.Model != core.ModelBase {
		t.Errorf("base response model %q, want %q", bresp.Model, core.ModelBase)
	}
	ref := baselineFor(t, bspec)
	if bresp.TotalRegret != ref.regret || bresp.Evals != ref.evals {
		t.Errorf("base answer (regret %v, evals %d) != base baseline (regret %v, evals %d)",
			bresp.TotalRegret, bresp.Evals, ref.regret, ref.evals)
	}
	if bresp.TotalRegret == zfirst.TotalRegret && bresp.Evals == zfirst.Evals {
		t.Errorf("base answer indistinguishable from zonal answer %+v; cap does not bind", zfirst)
	}
}
