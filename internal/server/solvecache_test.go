package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"

	"context"
)

// postSolveRaw sends one /solve request and returns the undecoded body, for
// tests that assert on the wire format itself (field presence, not values).
func postSolveRaw(tb testing.TB, client *http.Client, url string, req SolveRequest) (int, []byte) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := client.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestSolveClientDisconnectMidSolve: a client that hangs up while its solve
// is executing must be answered 499 and counted as abandoned — not logged as
// a 200 whose latency and regret pollute the completion series. The handler
// is driven directly with a cancellable context (as in
// TestQueuedClientDisconnect) so the disconnect lands deterministically
// mid-solve.
func TestSolveClientDisconnectMidSolve(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 1, 2)
	var logBuf bytes.Buffer
	cfg.Logger = obs.NewLogger(&logBuf, slog.LevelInfo)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(SolveRequest{Algorithm: "G-Global"})
	if err != nil {
		t.Fatal(err)
	}
	reqCtx, cancel := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body)).WithContext(reqCtx)
		s.Handler().ServeHTTP(rec, req)
		done <- rec
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("solve never started")
	}

	// The client leaves while the solve is executing; then the solve
	// finishes anyway (the gated stub ignores cancellation, like a solver
	// between cancellation checkpoints).
	cancel()
	release()

	var rec *httptest.ResponseRecorder
	select {
	case rec = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never unwound")
	}
	if rec.Code != statusClientClosedRequest {
		t.Errorf("disconnected client answered %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if n := s.metrics.abandoned.Value(); n != 1 {
		t.Errorf("abandoned = %d, want 1", n)
	}
	// Nothing was completed: the latency/regret histograms and the
	// per-algorithm counters must be untouched.
	if n := s.metrics.latency.Count(); n != 0 {
		t.Errorf("latency histogram recorded %d completions, want 0", n)
	}
	if n := s.metrics.regret.Count(); n != 0 {
		t.Errorf("regret histogram recorded %d completions, want 0", n)
	}
	logs := logBuf.String()
	if strings.Contains(logs, `"status":200`) {
		t.Errorf("abandoned request logged as 200:\n%s", logs)
	}
	if !strings.Contains(logs, `"status":499`) {
		t.Errorf("abandoned request not logged as 499:\n%s", logs)
	}

	// The exposition stays internally consistent (untouched histograms
	// still carry their full bucket/sum/count shape).
	mrec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if err := obs.ValidateExposition(mrec.Body.Bytes()); err != nil {
		t.Errorf("invalid exposition after abandoned solve: %v", err)
	}
	assertNoGoroutineLeak(t, baseline)
}

// TestDeadlineClampEcho: whenever the deadline a solve runs under differs
// from the one the request asked for — a clamp to MaxDeadline, or the
// server default applied to a deadline-less request — the response says so
// in effective_deadline_ms. A deadline used verbatim is not echoed, keeping
// the wire format unchanged for requests the server honored as-is.
func TestDeadlineClampEcho(t *testing.T) {
	inst := testInstance(t, 50, 8, 2)
	s, err := New(Config{
		Catalog:         catalogFor(t, inst),
		Workers:         2,
		DefaultDeadline: 100 * time.Millisecond,
		MaxDeadline:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Asked for 5s, clamped to the 200ms cap.
	status, got, _ := postSolve(t, ts.Client(), ts.URL,
		SolveRequest{Algorithm: "G-Order", DeadlineMS: 5000})
	if status != http.StatusOK {
		t.Fatalf("clamped solve: %d", status)
	}
	if got.EffectiveDeadlineMS != 200 {
		t.Errorf("clamped effective_deadline_ms = %d, want 200", got.EffectiveDeadlineMS)
	}

	// Asked for nothing, got the 100ms server default.
	status, got, _ = postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Order"})
	if status != http.StatusOK {
		t.Fatalf("defaulted solve: %d", status)
	}
	if got.EffectiveDeadlineMS != 100 {
		t.Errorf("defaulted effective_deadline_ms = %d, want 100", got.EffectiveDeadlineMS)
	}

	// Asked for 150ms, which the server honored verbatim: the field is
	// absent from the wire, not echoed as 150.
	status, raw := postSolveRaw(t, ts.Client(), ts.URL,
		SolveRequest{Algorithm: "G-Order", DeadlineMS: 150})
	if status != http.StatusOK {
		t.Fatalf("verbatim solve: %d", status)
	}
	if strings.Contains(string(raw), "effective_deadline_ms") {
		t.Errorf("verbatim deadline echoed:\n%s", raw)
	}
}

// TestSolveCacheHitAndInvalidation walks the cache lifecycle end to end on
// real solves: miss → hit (with age and events), hot-swap → natural miss via
// the generation in the key (plus eager invalidation), and DELETE dropping
// the name's entries. Work counters must reflect solver work done, not
// requests answered.
func TestSolveCacheHitAndInvalidation(t *testing.T) {
	specOld, specNew := serverSpec(5), serverSpec(6)
	baseOld, baseNew := baselineFor(t, specOld), baselineFor(t, specNew)
	cat := catalog.New()
	if _, err := cat.Load("A", specOld); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	matches := func(r SolveResponse, b solveBaseline) bool {
		return r.TotalRegret == b.regret && r.Evals == b.evals && r.Advertisers == b.advertisers
	}
	req := SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 9, Instance: "A"}

	// First solve: a miss that runs the solver; no cache fields on the wire.
	status, raw := postSolveRaw(t, client, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("first solve: %d", status)
	}
	if strings.Contains(string(raw), `"cached"`) {
		t.Errorf("uncached response carries cache fields:\n%s", raw)
	}
	var first SolveResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if !matches(first, baseOld) {
		t.Errorf("first solve %+v does not match baseline %+v", first, baseOld)
	}

	// Identical request: served from cache, bit-identical, flagged.
	status, raw = postSolveRaw(t, client, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("second solve: %d", status)
	}
	if !strings.Contains(string(raw), `"cached": true`) {
		t.Errorf("repeat response not flagged cached:\n%s", raw)
	}
	var second SolveResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || !matches(second, baseOld) {
		t.Errorf("cached solve %+v differs from baseline %+v", second, baseOld)
	}
	if second.CacheAgeMS < 0 {
		t.Errorf("negative cache age %v", second.CacheAgeMS)
	}
	if hits := s.metrics.solveCache.With("hit").Value(); hits != 1 {
		t.Errorf("hit events = %d, want 1", hits)
	}
	if misses := s.metrics.solveCache.With("miss").Value(); misses != 1 {
		t.Errorf("miss events = %d, want 1", misses)
	}
	if n := s.cache.Len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1", n)
	}

	// Hot-swap "A": the new generation is a natural miss, and the dead
	// entry is invalidated eagerly.
	body, _ := json.Marshal(specNew)
	putReq, err := http.NewRequest(http.MethodPut, ts.URL+"/instances/A", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d", putResp.StatusCode)
	}
	if evicted := s.metrics.solveCache.With("evicted").Value(); evicted != 1 {
		t.Errorf("evicted events after reload = %d, want 1", evicted)
	}

	status, third, _ := postSolve(t, client, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-swap solve: %d", status)
	}
	if third.Cached || !matches(third, baseNew) {
		t.Errorf("post-swap solve %+v (cached=%v), want uncached match of %+v",
			third, third.Cached, baseNew)
	}
	status, fourth, _ := postSolve(t, client, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-swap repeat: %d", status)
	}
	if !fourth.Cached || !matches(fourth, baseNew) {
		t.Errorf("post-swap repeat %+v (cached=%v), want cached match of %+v",
			fourth, fourth.Cached, baseNew)
	}

	// Solver work ran twice (2 restarts each); the two cached responses
	// contributed no restarts, evals or gain-cache events.
	if n := s.metrics.restarts.Value(); n != 4 {
		t.Errorf("solver restarts total = %d, want 4 (2 real solves x 2 restarts)", n)
	}
	if n := s.metrics.latency.Count(); n != 4 {
		t.Errorf("completed requests = %d, want 4", n)
	}
	wantEvals := baseOld.evals + baseNew.evals
	if n := s.metrics.evals.Value(); n != wantEvals {
		t.Errorf("solver evals total = %d, want %d", n, wantEvals)
	}

	// DELETE drops the deleted instance's entries from the cache (and only
	// those). "A" is the default and cannot be deleted, so use a second
	// instance.
	body, _ = json.Marshal(specOld)
	putReq, err = http.NewRequest(http.MethodPut, ts.URL+"/instances/B", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err = client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusCreated {
		t.Fatalf("create B: %d", putResp.StatusCode)
	}
	reqB := req
	reqB.Instance = "B"
	if status, _, fail := postSolve(t, client, ts.URL, reqB); status != http.StatusOK {
		t.Fatalf("solve B: %d (%s)", status, fail.Error)
	}
	if n := s.cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries before delete, want 2", n)
	}
	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/instances/B", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := client.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, delResp.Body)
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", delResp.StatusCode)
	}
	if n := s.cache.Len(); n != 1 {
		t.Errorf("cache holds %d entries after delete, want A's 1", n)
	}

	// The exposition carries the cache series and stays valid.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := obs.ValidateExposition(expo); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, expo)
	}
	for _, want := range []string{
		`mroamd_solve_cache_events_total{event="hit"} 2`,
		`mroamd_solve_cache_events_total{event="evicted"} 2`,
		"mroamd_solve_cache_entries 1",
	} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}

// TestSolveCacheCoalescing: identical requests arriving while the answer is
// still being computed join the one in-flight solve instead of starting
// their own. The gated solve makes the overlap deterministic: exactly one
// solver execution serves all three clients.
func TestSolveCacheCoalescing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 3, 4)
	cfg.CacheEntries = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const clients = 3
	results := make(chan SolveResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, got, fail := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Global"})
			if status != http.StatusOK {
				t.Errorf("solve: %d (%s)", status, fail.Error)
				return
			}
			results <- got
		}()
	}

	// One flight starts; the other two must have coalesced onto it before
	// the gate opens.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("flight never started")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.solveCache.With("coalesced").Value() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests coalesced, want %d",
				s.metrics.solveCache.With("coalesced").Value(), clients-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	release()
	wg.Wait()
	close(results)

	select {
	case <-started:
		t.Fatal("a second solver execution started for identical requests")
	default:
	}
	cachedCount := 0
	for got := range results {
		if got.Cached {
			cachedCount++
		}
	}
	// The leader reports an uncached solve; both followers report cached.
	if cachedCount != clients-1 {
		t.Errorf("%d responses flagged cached, want %d", cachedCount, clients-1)
	}
	if misses := s.metrics.solveCache.With("miss").Value(); misses != 1 {
		t.Errorf("miss events = %d, want 1", misses)
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestCacheHammerUnderHotSwap is the cache's core concurrency contract, run
// under -race: clients hammer one identical request while a writer keeps
// hot-swapping the instance underneath them. Every response must match the
// baseline of the exact generation it reports, and — the compute-once
// guarantee — the solver runs at most once per catalog build, no matter how
// the hits, coalesced waits and misses interleave.
func TestCacheHammerUnderHotSwap(t *testing.T) {
	baseline := runtime.NumGoroutine()
	specOld, specNew := serverSpec(5), serverSpec(6)
	baseOld, baseNew := baselineFor(t, specOld), baselineFor(t, specNew)
	if baseOld == baseNew {
		t.Fatalf("test needs distinguishable builds, both gave %+v", baseOld)
	}

	cat := catalog.New()
	entry0, err := cat.Load("A", specOld)
	if err != nil {
		t.Fatal(err)
	}

	// Count solver executions per instance build. Each catalog.Load builds
	// a fresh *core.Instance, so the pointer identifies the generation.
	var solveMu sync.Mutex
	solves := make(map[*core.Instance]int)
	cfg := Config{
		Catalog:      cat,
		Workers:      4,
		QueueDepth:   64,
		CacheEntries: 64,
		solve: func(ctx context.Context, alg core.Algorithm, in *core.Instance) *core.Anytime {
			solveMu.Lock()
			solves[in]++
			solveMu.Unlock()
			return core.SolveAnytime(ctx, alg, in)
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// generation -> the baseline its build must solve to.
	genBase := map[uint64]solveBaseline{entry0.Generation: baseOld}
	var genMu sync.Mutex

	const clients, perClient = 4, 25
	results := make(chan SolveResponse, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, got, fail := postSolve(t, ts.Client(), ts.URL,
					SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 9, Instance: "A"})
				if status != http.StatusOK {
					t.Errorf("solve: %d (%s)", status, fail.Error)
					return
				}
				results <- got
			}
		}()
	}

	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 20; i++ {
			spec, base := specNew, baseNew
			if i%2 == 1 {
				spec, base = specOld, baseOld
			}
			body, _ := json.Marshal(spec)
			putReq, err := http.NewRequest(http.MethodPut, ts.URL+"/instances/A", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(putReq)
			if err != nil {
				t.Error(err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: %d", i, resp.StatusCode)
				return
			}
			var info InstanceInfo
			if err := json.Unmarshal(raw, &info); err != nil {
				t.Error(err)
				return
			}
			genMu.Lock()
			genBase[info.Generation] = base
			genMu.Unlock()
		}
	}()

	wg.Wait()
	<-swapDone
	close(results)

	sawCached := 0
	for got := range results {
		base, known := genBase[got.Generation]
		if !known {
			t.Errorf("response reports unknown generation %d: %+v", got.Generation, got)
			continue
		}
		if got.TotalRegret != base.regret || got.Evals != base.evals || got.Advertisers != base.advertisers {
			t.Errorf("generation %d response %+v does not match its build's baseline %+v",
				got.Generation, got, base)
		}
		if got.Truncated {
			t.Errorf("truncated response without a deadline: %+v", got)
		}
		if got.Cached {
			sawCached++
		}
	}
	// 100 identical requests over at most 21 generations: the pigeonhole
	// guarantees repeats, and repeats must have been served by the cache.
	if sawCached == 0 {
		t.Error("no response was served from the cache")
	}

	// Compute-once: no build was ever solved twice.
	solveMu.Lock()
	for in, n := range solves {
		if n != 1 {
			t.Errorf("build %p solved %d times, want 1", in, n)
		}
	}
	total := len(solves)
	solveMu.Unlock()
	if total > len(genBase) {
		t.Errorf("%d solver executions for %d generations", total, len(genBase))
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}
