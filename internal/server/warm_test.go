package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// doPatch issues PATCH /instances/{name}/advertisers and decodes the
// response into info when the status is 200.
func doPatch(tb testing.TB, ts *httptest.Server, name string, ops []catalog.PatchOp, info *InstanceInfo) int {
	tb.Helper()
	body, err := json.Marshal(map[string]any{"ops": ops})
	if err != nil {
		tb.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch,
		ts.URL+"/instances/"+name+"/advertisers", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && info != nil {
		if err := json.NewDecoder(resp.Body).Decode(info); err != nil {
			tb.Fatal(err)
		}
	}
	return resp.StatusCode
}

// warmTestInstance is testInstance optionally wrapped in a zonal model, so
// the churn tests cover both the base fast path and the constrained
// CanAssign path of the incumbent replay.
func warmTestInstance(tb testing.TB, zonal bool) *core.Instance {
	tb.Helper()
	inst := testInstance(tb, 60, 10, 4)
	if !zonal {
		return inst
	}
	zoneOf := make([]int, inst.Universe().NumBillboards())
	for b := range zoneOf {
		zoneOf[b] = b % 3
	}
	zm, err := core.NewZonalModel(zoneOf, int64(inst.Universe().TotalSupply()))
	if err != nil {
		tb.Fatal(err)
	}
	zinst, err := inst.WithModel(zm)
	if err != nil {
		tb.Fatal(err)
	}
	return zinst
}

// churnDays is the replayed op sequence both sides of the determinism test
// apply: every op kind appears, including a removal (which frees supply).
var churnDays = [][]catalog.PatchOp{
	{{Op: "add", Demand: 35, Payment: 35}},
	{{Op: "remove", Advertiser: 1}, {Op: "revise", Advertiser: 0, Demand: 28}},
	{{Op: "revise", Advertiser: 2, Demand: 31, Payment: 44}, {Op: "add", Demand: 22, Payment: 20}},
}

// TestWarmStartChurnReplayMatchesColdSolve is the acceptance check for the
// delta-solve path: a market driven through a PATCH + warm-start solve per
// churn day must end on the bit-identical plan a cold solve of the final
// market produces — for one and for four search workers, under both the
// base and the zonal model.
func TestWarmStartChurnReplayMatchesColdSolve(t *testing.T) {
	const seed, restarts = 5, 4
	for _, zonal := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("zonal=%v/workers=%d", zonal, workers)
			solveReq := SolveRequest{
				Instance:           "m",
				Algorithm:          "BLS",
				Seed:               seed,
				Restarts:           restarts,
				SearchWorkers:      workers,
				IncludeAssignments: true,
			}

			// Churn side: cold solve, then PATCH + warm solve per day.
			catA := catalog.New()
			if _, err := catA.AddInstance("m", warmTestInstance(t, zonal)); err != nil {
				t.Fatal(err)
			}
			srvA, err := New(Config{Catalog: catA, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			tsA := httptest.NewServer(srvA.Handler())

			status, warm, errResp := postSolve(t, tsA.Client(), tsA.URL, solveReq)
			if status != http.StatusOK {
				t.Fatalf("%s: cold seed solve: %d %s", name, status, errResp.Error)
			}
			warmReq := solveReq
			warmReq.WarmStart = true
			for day, ops := range churnDays {
				if st := doPatch(t, tsA, "m", ops, nil); st != http.StatusOK {
					t.Fatalf("%s: day %d patch: status %d", name, day, st)
				}
				status, warm, errResp = postSolve(t, tsA.Client(), tsA.URL, warmReq)
				if status != http.StatusOK {
					t.Fatalf("%s: day %d warm solve: %d %s", name, day, status, errResp.Error)
				}
				if !warm.WarmStarted {
					t.Fatalf("%s: day %d solve ran cold despite an incumbent", name, day)
				}
			}
			tsA.Close()

			// Cold side: the same ops applied to a fresh catalog, one cold
			// solve of the final market.
			catB := catalog.New()
			if _, err := catB.AddInstance("m", warmTestInstance(t, zonal)); err != nil {
				t.Fatal(err)
			}
			for day, ops := range churnDays {
				if _, _, err := catB.Patch("m", ops); err != nil {
					t.Fatalf("%s: day %d direct patch: %v", name, day, err)
				}
			}
			srvB, err := New(Config{Catalog: catB, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			tsB := httptest.NewServer(srvB.Handler())
			status, cold, errResp := postSolve(t, tsB.Client(), tsB.URL, solveReq)
			tsB.Close()
			if status != http.StatusOK {
				t.Fatalf("%s: cold final solve: %d %s", name, status, errResp.Error)
			}

			if warm.TotalRegret != cold.TotalRegret {
				t.Fatalf("%s: warm regret %v != cold regret %v", name, warm.TotalRegret, cold.TotalRegret)
			}
			if !reflect.DeepEqual(warm.Assignments, cold.Assignments) {
				t.Fatalf("%s: warm plan diverged from cold plan\nwarm: %v\ncold: %v",
					name, warm.Assignments, cold.Assignments)
			}
			if cold.WarmStarted || cold.FrozenAdvertisers != 0 {
				t.Fatalf("%s: cold response claims warm start", name)
			}
		}
	}
}

// TestSolveCachePatchInvalidation pins the cacheability contract around
// PATCH: a patch bumps the generation so the identical request misses, and
// warm-started results are neither served from nor stored into the plain
// solve cache.
func TestSolveCachePatchInvalidation(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.AddInstance("m", warmTestInstance(t, false)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 2, CacheEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SolveRequest{Instance: "m", Algorithm: "BLS", Seed: 3, Restarts: 2}
	solve := func(r SolveRequest) SolveResponse {
		t.Helper()
		status, resp, errResp := postSolve(t, ts.Client(), ts.URL, r)
		if status != http.StatusOK {
			t.Fatalf("solve: %d %s", status, errResp.Error)
		}
		return resp
	}

	first := solve(req)
	if first.Cached {
		t.Fatal("first solve served from cache")
	}
	if again := solve(req); !again.Cached {
		t.Fatal("identical request missed the cache")
	}

	var info InstanceInfo
	if st := doPatch(t, ts, "m", []catalog.PatchOp{{Op: "add", Demand: 20, Payment: 20}}, &info); st != http.StatusOK {
		t.Fatalf("patch status %d", st)
	}
	if info.Generation <= first.Generation {
		t.Fatalf("patch did not bump generation: %d -> %d", first.Generation, info.Generation)
	}

	afterPatch := solve(req)
	if afterPatch.Cached {
		t.Fatal("post-patch request hit a stale cache entry")
	}
	if afterPatch.Generation != info.Generation {
		t.Fatalf("post-patch solve ran generation %d, want %d", afterPatch.Generation, info.Generation)
	}

	// Warm solves bypass the cache in both directions.
	warmReq := req
	warmReq.WarmStart = true
	w1 := solve(warmReq)
	if !w1.WarmStarted {
		t.Fatal("warm solve ran cold despite a remapped incumbent")
	}
	if w1.Cached {
		t.Fatal("warm-started solve served from the plain cache")
	}
	if w2 := solve(warmReq); w2.Cached {
		t.Fatal("repeated warm-started solve served from the plain cache")
	}

	// The plain request still hits the entry its own computed solve stored —
	// warm results never aliased it.
	if plain := solve(req); !plain.Cached || plain.WarmStarted {
		t.Fatalf("plain request after warm solves: cached=%v warm=%v, want cached, not warm",
			plain.Cached, plain.WarmStarted)
	}

	// After another patch, only warm solves run; the next plain request must
	// MISS — if the warm result had been stored under the plain key this
	// would be a hit.
	if st := doPatch(t, ts, "m", []catalog.PatchOp{{Op: "revise", Advertiser: 0, Demand: 25}}, nil); st != http.StatusOK {
		t.Fatalf("second patch status %d", st)
	}
	if w := solve(warmReq); !w.WarmStarted || w.Cached {
		t.Fatalf("warm solve after second patch: warm=%v cached=%v", w.WarmStarted, w.Cached)
	}
	if plain := solve(req); plain.Cached {
		t.Fatal("warm-started result leaked into the plain solve cache")
	}
}

// TestPatchAPIErrors pins the endpoint's error mapping: 404 for unknown
// names, 409 for stale advertiser indexes, 400 for malformed ops.
func TestPatchAPIErrors(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.AddInstance("m", warmTestInstance(t, false)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if st := doPatch(t, ts, "ghost", []catalog.PatchOp{{Op: "add", Demand: 1, Payment: 1}}, nil); st != http.StatusNotFound {
		t.Fatalf("unknown instance: status %d, want 404", st)
	}
	if st := doPatch(t, ts, "m", []catalog.PatchOp{{Op: "remove", Advertiser: 99}}, nil); st != http.StatusConflict {
		t.Fatalf("stale advertiser index: status %d, want 409", st)
	}
	if st := doPatch(t, ts, "m", []catalog.PatchOp{{Op: "upsert"}}, nil); st != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", st)
	}
	if st := doPatch(t, ts, "m", nil, nil); st != http.StatusBadRequest {
		t.Fatalf("empty ops: status %d, want 400", st)
	}
}

// TestWarmStartWithoutIncumbentRunsCold: a warm_start request before any
// solve has completed (or after a reload dropped the incumbents) must run
// cold and say so, not fail.
func TestWarmStartWithoutIncumbentRunsCold(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.AddInstance("m", warmTestInstance(t, false)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SolveRequest{Instance: "m", Algorithm: "BLS", Seed: 1, Restarts: 2, WarmStart: true}
	status, resp, errResp := postSolve(t, ts.Client(), ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("warm solve without incumbent: %d %s", status, errResp.Error)
	}
	if resp.WarmStarted {
		t.Fatal("solve claims a warm start with no incumbent stored")
	}
}
