package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

// serverSpec is a catalog spec small enough to rebuild repeatedly inside
// tests (a few ms per build).
func serverSpec(seed uint64) catalog.Spec {
	return catalog.Spec{City: "NYC", Scale: 0.02, Seed: seed, Alpha: 2.0, P: 0.1}
}

// latencyRE normalizes the only nondeterministic field in a /solve response.
var latencyRE = regexp.MustCompile(`"latency_ms": [0-9.eE+-]+`)

// TestSolveDefaultGolden pins the catalog refactor's back-compat contract:
// a /solve request that does not name an instance answers byte-for-byte
// what the single-instance server answered (the golden was captured before
// the Config.Instance → Config.Catalog change), latency aside. In
// particular no instance/generation keys may appear.
func TestSolveDefaultGolden(t *testing.T) {
	inst := testInstance(t, 200, 30, 4)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(SolveRequest{Algorithm: "BLS", Restarts: 3, Seed: 9})
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := latencyRE.ReplaceAll(raw, []byte(`"latency_ms": 0`))

	want, err := os.ReadFile(filepath.Join("testdata", "solve_default.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("default-instance response drifted from the pre-catalog wire format:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSolveNamedInstance: naming an instance routes the solve to it and the
// response reports the snapshot actually solved — name, generation, and the
// dimensions of that instance, not the default's.
func TestSolveNamedInstance(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Load("nyc", serverSpec(5)); err != nil {
		t.Fatal(err)
	}
	// A second instance with a different advertiser count (α=1 ⇒ 20 vs 10),
	// so routing to the wrong one is visible in the response dims.
	other := serverSpec(5)
	other.Alpha = 1.0
	if _, err := cat.Load("alt", other); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, def, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Global"})
	if status != http.StatusOK {
		t.Fatalf("default solve: %d", status)
	}
	if def.Instance != "" || def.Generation != 0 {
		t.Errorf("default solve leaked instance identity: %q gen %d", def.Instance, def.Generation)
	}

	status, alt, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Global", Instance: "alt"})
	if status != http.StatusOK {
		t.Fatalf("named solve: %d", status)
	}
	altEntry, _ := cat.Get("alt")
	if alt.Instance != "alt" || alt.Generation != altEntry.Generation {
		t.Errorf("named solve reported %q gen %d, want alt gen %d", alt.Instance, alt.Generation, altEntry.Generation)
	}
	if alt.Advertisers != altEntry.Instance.NumAdvertisers() || alt.Advertisers == def.Advertisers {
		t.Errorf("named solve dims %d, want alt's %d (default has %d)",
			alt.Advertisers, altEntry.Instance.NumAdvertisers(), def.Advertisers)
	}

	status, _, fail := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Global", Instance: "nope"})
	if status != http.StatusNotFound || !strings.Contains(fail.Error, "nope") {
		t.Errorf("unknown instance: %d (%s), want 404", status, fail.Error)
	}
}

// TestInstanceAdminEndpoints walks the admin lifecycle: list, create via
// PUT, reload, delete, and every error path's status code.
func TestInstanceAdminEndpoints(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Load("main", serverSpec(5)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	doPut := func(name, body string) (int, InstanceInfo, errorResponse) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/instances/"+name, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var info InstanceInfo
		var fail errorResponse
		if resp.StatusCode < 300 {
			if err := json.Unmarshal(raw, &info); err != nil {
				t.Fatalf("decode %d body %q: %v", resp.StatusCode, raw, err)
			}
		} else {
			_ = json.Unmarshal(raw, &fail)
		}
		return resp.StatusCode, info, fail
	}
	doDelete := func(name string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/instances/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	list := func() []InstanceInfo {
		t.Helper()
		resp, err := client.Get(ts.URL + "/instances")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /instances: %d", resp.StatusCode)
		}
		var infos []InstanceInfo
		if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
			t.Fatal(err)
		}
		return infos
	}

	if infos := list(); len(infos) != 1 || infos[0].Name != "main" || !infos[0].Default {
		t.Fatalf("initial list %+v, want [main (default)]", infos)
	}

	// Create: 201, with dims and generation.
	status, info, _ := doPut("sg", `{"city":"SG","scale":0.02,"seed":7}`)
	if status != http.StatusCreated {
		t.Fatalf("create: %d", status)
	}
	if info.Name != "sg" || info.Default || info.Info.Billboards == 0 || info.Spec.City != "SG" {
		t.Errorf("created info %+v", info)
	}

	// Reload the same name: 200, generation strictly above.
	status, again, _ := doPut("sg", `{"city":"SG","scale":0.02,"seed":8}`)
	if status != http.StatusOK {
		t.Fatalf("reload: %d", status)
	}
	if again.Generation <= info.Generation || again.Spec.Seed != 8 {
		t.Errorf("reload info %+v after %+v", again, info)
	}

	// Error paths.
	if status, _, fail := doPut("sg", `{"city":"Atlantis"}`); status != http.StatusBadRequest {
		t.Errorf("bad city: %d (%s)", status, fail.Error)
	}
	if status, _, fail := doPut("sg", `{"name":"other"}`); status != http.StatusBadRequest {
		t.Errorf("name mismatch: %d (%s)", status, fail.Error)
	}
	if status, _, fail := doPut("bad%20name", `{}`); status != http.StatusBadRequest {
		t.Errorf("invalid name: %d (%s)", status, fail.Error)
	}
	if status, _, fail := doPut("sg", `{"frobnicate":1}`); status != http.StatusBadRequest {
		t.Errorf("unknown field: %d (%s)", status, fail.Error)
	}

	// Solve the new instance once so it owns a metric series, then delete.
	if status, _, _ := postSolve(t, client, ts.URL, SolveRequest{Algorithm: "G-Order", Instance: "sg"}); status != http.StatusOK {
		t.Fatalf("solve sg: %d", status)
	}
	if status := doDelete("main"); status != http.StatusConflict {
		t.Errorf("delete default: %d, want 409", status)
	}
	if status := doDelete("missing"); status != http.StatusNotFound {
		t.Errorf("delete missing: %d, want 404", status)
	}
	if status := doDelete("sg"); status != http.StatusNoContent {
		t.Errorf("delete sg: %d, want 204", status)
	}
	if infos := list(); len(infos) != 1 || infos[0].Name != "main" {
		t.Errorf("list after delete %+v", infos)
	}

	// The deleted instance's series is retired from the exposition.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(expo), `mroamd_instance_requests_total{instance="sg"}`) {
		t.Errorf("deleted instance still in exposition:\n%s", expo)
	}
	if !strings.Contains(string(expo), "mroamd_instances_loaded 1") {
		t.Errorf("instances gauge wrong:\n%s", expo)
	}
}

// TestStatsPerInstance: /stats joins each loaded instance's identity and
// dimensions with its request count, and /metrics carries the same counts
// under mroamd_instance_requests_total.
func TestStatsPerInstance(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Load("a", serverSpec(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Load("b", serverSpec(6)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two solves against "a" (one implicit via the default), one against "b".
	for _, name := range []string{"", "a", "b"} {
		if status, _, fail := postSolve(t, ts.Client(), ts.URL,
			SolveRequest{Algorithm: "G-Order", Instance: name}); status != http.StatusOK {
			t.Fatalf("solve %q: %d (%s)", name, status, fail.Error)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	entryA, _ := cat.Get("a")
	// Catalog-built instances are served on the corridor-compressed
	// substrate; /stats must surface the corridor count and ratio.
	if entryA.Info.Corridors <= 0 || entryA.Info.Corridors > entryA.Info.Trajectories {
		t.Errorf("corridors %d outside (0, %d]", entryA.Info.Corridors, entryA.Info.Trajectories)
	}
	if entryA.Info.CompressionRatio < 1 {
		t.Errorf("compression ratio %v < 1", entryA.Info.CompressionRatio)
	}
	want := fmt.Sprintf("%v", []InstanceCount{
		{Instance: "a", Generation: entryA.Generation,
			Billboards: entryA.Info.Billboards, Advertisers: entryA.Info.Advertisers,
			Corridors: entryA.Info.Corridors, CompressionRatio: entryA.Info.CompressionRatio, Requests: 2},
		{Instance: "b", Generation: 2,
			Billboards: stats.PerInstance[1].Billboards, Advertisers: stats.PerInstance[1].Advertisers,
			Corridors: stats.PerInstance[1].Corridors, CompressionRatio: stats.PerInstance[1].CompressionRatio, Requests: 1},
	})
	if got := fmt.Sprintf("%v", stats.PerInstance); got != want {
		t.Errorf("per_instance %s, want %s", got, want)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		`mroamd_instance_requests_total{instance="a"} 2`,
		`mroamd_instance_requests_total{instance="b"} 1`,
		"mroamd_instances_loaded 2",
	} {
		if !strings.Contains(string(expo), line) {
			t.Errorf("exposition missing %q:\n%s", line, expo)
		}
	}
}

// baselineFor solves one catalog build the way the hammer requests do, so a
// server response can be matched against the exact build it claims to have
// solved.
type solveBaseline struct {
	regret      float64
	evals       int64
	advertisers int
}

func baselineFor(tb testing.TB, spec catalog.Spec) solveBaseline {
	tb.Helper()
	inst, _, err := catalog.Build(spec)
	if err != nil {
		tb.Fatal(err)
	}
	res := core.SolveAnytime(context.Background(),
		core.BLSAlgorithm{Opts: core.LocalSearchOptions{Seed: 9, Restarts: 2, Workers: 1}}, inst)
	return solveBaseline{regret: res.TotalRegret, evals: res.Evals, advertisers: inst.NumAdvertisers()}
}

// TestHotSwapUnderLoad is the catalog's core concurrency contract, run
// under -race: clients hammer /solve on instance "A" while a writer keeps
// PUT-reloading "A" with a different seed. Every response must be
// internally consistent — its (regret, evals, advertisers) triple matches
// exactly one of the two builds, never a mix — and nothing may leak.
func TestHotSwapUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	specOld, specNew := serverSpec(5), serverSpec(6)
	baseOld, baseNew := baselineFor(t, specOld), baselineFor(t, specNew)
	if baseOld == baseNew {
		t.Fatalf("test needs distinguishable builds, both gave %+v", baseOld)
	}

	cat := catalog.New()
	if _, err := cat.Load("A", specOld); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Catalog: cat, Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	matches := func(r SolveResponse, b solveBaseline) bool {
		return r.TotalRegret == b.regret && r.Evals == b.evals && r.Advertisers == b.advertisers
	}

	const clients, perClient = 4, 25
	var sawOld, sawNew atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, got, fail := postSolve(t, ts.Client(), ts.URL,
					SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 9, Instance: "A"})
				if status != http.StatusOK {
					t.Errorf("solve: %d (%s)", status, fail.Error)
					return
				}
				switch {
				case matches(got, baseOld):
					sawOld.Add(1)
				case matches(got, baseNew):
					sawNew.Add(1)
				default:
					t.Errorf("torn response %+v matches neither build (old %+v, new %+v)",
						got, baseOld, baseNew)
					return
				}
				if got.Instance != "A" || got.Generation == 0 || got.Truncated {
					t.Errorf("inconsistent response identity: %+v", got)
					return
				}
			}
		}()
	}

	// The writer alternates the two specs, so readers race an endless
	// stream of swaps rather than a single lucky one.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 20; i++ {
			spec := specNew
			if i%2 == 1 {
				spec = specOld
			}
			body, _ := json.Marshal(spec)
			req, err := http.NewRequest(http.MethodPut, ts.URL+"/instances/A", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	<-swapDone
	if sawOld.Load() == 0 || sawNew.Load() == 0 {
		t.Logf("note: swaps were not observed interleaved (old=%d new=%d); consistency still held",
			sawOld.Load(), sawNew.Load())
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestReloadDoesNotDisturbInFlightSolve: a PUT reload that lands while a
// solve is executing must neither cancel it nor change its result — the
// solve finishes on the snapshot it resolved at admission and reports that
// snapshot's generation.
func TestReloadDoesNotDisturbInFlightSolve(t *testing.T) {
	specOld, specNew := serverSpec(5), serverSpec(6)
	want := baselineFor(t, specOld)

	cat := catalog.New()
	oldEntry, err := cat.Load("A", specOld)
	if err != nil {
		t.Fatal(err)
	}
	// Gate the solve so the reload deterministically lands mid-flight.
	started := make(chan struct{}, 2) // the post-reload solve passes through too
	proceed := make(chan struct{})
	cfg := Config{
		Catalog: cat,
		Workers: 1,
		solve: func(ctx context.Context, alg core.Algorithm, inst *core.Instance) *core.Anytime {
			started <- struct{}{}
			<-proceed
			return core.SolveAnytime(ctx, alg, inst)
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		resp   SolveResponse
	}
	done := make(chan result, 1)
	go func() {
		status, resp, _ := postSolve(t, ts.Client(), ts.URL,
			SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 9, Instance: "A"})
		done <- result{status, resp}
	}()
	<-started

	body, _ := json.Marshal(specNew)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/instances/A", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d", resp.StatusCode)
	}
	close(proceed)

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight solve: %d", r.status)
	}
	if r.resp.Truncated {
		t.Error("reload truncated the in-flight solve")
	}
	if r.resp.TotalRegret != want.regret || r.resp.Evals != want.evals {
		t.Errorf("reload changed the in-flight result: %+v, want regret %v evals %d",
			r.resp, want.regret, want.evals)
	}
	if r.resp.Generation != oldEntry.Generation {
		t.Errorf("in-flight solve reported generation %d, want the admitted snapshot's %d",
			r.resp.Generation, oldEntry.Generation)
	}
	// New requests land on the swapped build.
	status, after, _ := postSolve(t, ts.Client(), ts.URL,
		SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 9, Instance: "A"})
	if status != http.StatusOK {
		t.Fatalf("post-reload solve: %d", status)
	}
	if after.Generation <= oldEntry.Generation {
		t.Errorf("post-reload generation %d not above %d", after.Generation, oldEntry.Generation)
	}
}
