package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsEndpoint: /metrics must serve a valid Prometheus exposition
// whose counters reflect the served traffic and agree with /stats.
func TestMetricsEndpoint(t *testing.T) {
	inst := testInstance(t, 200, 30, 4)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for seed := uint64(0); seed < 3; seed++ {
		status, _, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: seed})
		if status != http.StatusOK {
			t.Fatalf("solve: %d", status)
		}
	}
	status, _, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Global"})
	if status != http.StatusOK {
		t.Fatalf("solve: %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		`mroamd_requests_total{algorithm="BLS",model="base"} 3`,
		`mroamd_requests_total{algorithm="G-Global",model="base"} 1`,
		`mroamd_requests_total{algorithm="ALS",model="base"} 0`,
		`mroamd_requests_total{algorithm="G-Order",model="base"} 0`,
		"mroamd_solve_latency_seconds_count 4",
		"mroamd_solve_regret_count 4",
		"# TYPE mroamd_solve_latency_seconds histogram",
		`mroamd_requests_rejected_total{reason="capacity"} 0`,
		`mroamd_requests_rejected_total{reason="deadline_infeasible"} 0`,
		`mroamd_requests_rejected_total{reason="fairness"} 0`,
		"mroamd_gain_cache_events_total{event=",
		"mroamd_queue_depth 0",
		`mroamd_instance_inflight{instance="default"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// /stats is derived from the same primitives and must agree.
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 4 {
		t.Errorf("/stats completed %d, want 4", st.Completed)
	}
	if st.LatencyAvgMS <= 0 || st.LatencyMaxMS < st.LatencyAvgMS {
		t.Errorf("latency stats inconsistent: avg %v, max %v", st.LatencyAvgMS, st.LatencyMaxMS)
	}
	if st.Evals <= 0 || st.Restarts <= 0 {
		t.Errorf("work counters empty: %+v", st)
	}
}

// TestRequestLogging: every /solve outcome emits exactly one JSON log line
// carrying the same request ID the client saw in X-Request-ID.
func TestRequestLogging(t *testing.T) {
	inst := testInstance(t, 150, 20, 3)
	var logBuf bytes.Buffer
	s, err := New(Config{
		Catalog: catalogFor(t, inst),
		Workers: 1,
		Logger:  obs.NewLogger(&logBuf, slog.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"algorithm":"G-Order"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-ID")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
	if reqID == "" {
		t.Fatal("missing X-Request-ID header")
	}

	// A malformed request logs its failure outcome too.
	resp, err = ts.Client().Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"algorithm":`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed solve: %d", resp.StatusCode)
	}
	badID := resp.Header.Get("X-Request-ID")
	if badID == "" || badID == reqID {
		t.Fatalf("bad request ID %q (ok request had %q)", badID, reqID)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	type record struct {
		Msg       string  `json:"msg"`
		Req       string  `json:"req"`
		Status    int     `json:"status"`
		Algorithm string  `json:"algorithm"`
		ElapsedMS float64 `json:"elapsed_ms"`
		Truncated *bool   `json:"truncated"`
		Error     string  `json:"error"`
	}
	var ok, bad record
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatalf("log line %q: %v", lines[0], err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &bad); err != nil {
		t.Fatalf("log line %q: %v", lines[1], err)
	}
	if ok.Req != reqID || ok.Status != http.StatusOK || ok.Algorithm != "G-Order" || ok.Truncated == nil {
		t.Errorf("success record wrong: %+v", ok)
	}
	if ok.ElapsedMS <= 0 {
		t.Errorf("success record has no latency: %+v", ok)
	}
	if bad.Req != badID || bad.Status != http.StatusBadRequest || bad.Error == "" {
		t.Errorf("failure record wrong: %+v", bad)
	}
}

// TestDebugLoggerAttachesTracer: at Debug level the solver's trace events
// appear in the log, tagged with the request ID — and the solve result is
// unchanged (checked against the Info-level run).
func TestDebugLoggerAttachesTracer(t *testing.T) {
	inst := testInstance(t, 150, 20, 3)
	run := func(level slog.Level) (SolveResponse, string) {
		var logBuf bytes.Buffer
		s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 1, Logger: obs.NewLogger(&logBuf, level)})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		status, res, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "BLS", Restarts: 2, Seed: 4})
		if status != http.StatusOK {
			t.Fatalf("solve: %d", status)
		}
		return res, logBuf.String()
	}
	info, infoLog := run(slog.LevelInfo)
	debug, debugLog := run(slog.LevelDebug)
	if info.TotalRegret != debug.TotalRegret || info.Evals != debug.Evals {
		t.Errorf("tracing changed the answer: info %+v, debug %+v", info, debug)
	}
	if strings.Contains(infoLog, "restart done") {
		t.Error("trace events leaked into Info-level logs")
	}
	if !strings.Contains(debugLog, "restart done") || !strings.Contains(debugLog, "incumbent improved") {
		t.Errorf("debug log missing trace events:\n%s", debugLog)
	}
}
