package server

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/obs"
)

// metrics aggregates per-request observations on obs primitives. The same
// counters and histograms back both the Prometheus exposition on /metrics
// and the JSON snapshot on /stats, so the two views can never disagree;
// everything on the hot path is lock-free (the CounterVec children are
// created once per label value and cached inside the vec).
type metrics struct {
	start time.Time
	reg   *obs.Registry
	cat   *catalog.Catalog

	requests         *obs.CounterVec   // completed solves by algorithm × model
	instanceReqs     *obs.CounterVec   // completed solves by catalog instance
	instanceInflight *obs.GaugeVec     // admitted (queued or executing) requests by instance
	reloads          *obs.Counter      // successful PUT /instances loads
	patches          *obs.Counter      // successful PATCH /instances/{name}/advertisers ops
	latency          *obs.Histogram    // seconds per completed solve
	regret           *obs.Histogram    // final total regret per completed solve
	truncated        *obs.Counter      // completed solves cut off by deadline/cancel
	rejected         *obs.CounterVec   // 429s at admission, by reason
	abandoned        *obs.Counter      // client gone while waiting for a worker slot
	restarts         *obs.Counter      // sum of RestartsCompleted
	evals            *obs.Counter      // sum of Evals
	cache            *obs.CounterVec   // gain-cache events by kind
	solveCache       *obs.CounterVec   // solve-result cache events by kind
	queueWait        *obs.Histogram    // seconds between queue entry and worker-slot acquisition
	solvePhase       *obs.HistogramVec // seconds per request phase (admission/solve/encode)
	traceEvents      *obs.CounterVec   // span-store admissions by outcome (stored/sampled_out)

	// Histograms do not retain a max, so /stats keeps its own (CAS loop,
	// still lock-free).
	latencyMaxMicros atomic.Int64
}

// Latency buckets span 1ms..~16s doubling per bucket — wide enough for a
// city-scale BLS solve, fine enough to see the greedy algorithms. Regret
// buckets span 1..~8.4M the same way; regret is instance-scale dependent,
// so the range is deliberately generous.
var (
	latencyBuckets = obs.ExpBuckets(0.001, 2, 15)
	regretBuckets  = obs.ExpBuckets(1, 2, 24)
)

func newMetrics(cat *catalog.Catalog) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{start: time.Now(), reg: reg, cat: cat}
	m.requests = reg.CounterVec("mroamd_requests_total",
		"Completed solve requests by algorithm and regret-model kind.",
		"algorithm", "model")
	// Pre-create the base-model series for every solver so the exposition
	// shows explicit zeros before the first request (variant series appear
	// when a variant instance first serves).
	for _, alg := range []string{"ALS", "BLS", "G-Global", "G-Order"} {
		m.requests.With(alg, core.ModelBase)
	}
	m.instanceReqs = reg.CounterVec("mroamd_instance_requests_total",
		"Completed solve requests by catalog instance.", "instance")
	m.instanceInflight = reg.GaugeVec("mroamd_instance_inflight",
		"Requests currently admitted (queued or executing) per instance.", "instance")
	m.reloads = reg.Counter("mroamd_instance_reloads_total",
		"Instances loaded or hot-swapped via PUT /instances.")
	m.patches = reg.Counter("mroamd_instance_patches_total",
		"Advertiser patches applied via PATCH /instances/{name}/advertisers.")
	reg.GaugeFunc("mroamd_instances_loaded",
		"Instances currently resident in the catalog.",
		func() float64 { return float64(cat.Len()) })
	m.latency = reg.Histogram("mroamd_solve_latency_seconds",
		"Wall-clock latency of completed solves.", latencyBuckets)
	m.regret = reg.Histogram("mroamd_solve_regret",
		"Final total regret of completed solves.", regretBuckets)
	m.truncated = reg.Counter("mroamd_solves_truncated_total",
		"Completed solves cut short by deadline or client disconnect.")
	m.rejected = reg.CounterVec("mroamd_requests_rejected_total",
		"Requests shed with 429 at admission, by reason: capacity = queue full, "+
			"deadline_infeasible = the deadline policy judged the request's deadline "+
			"unmeetable at the current drain rate, fairness = the instance exceeded "+
			"its fair share of admission slots.",
		"reason")
	// Pre-create every reason series so a zero stays visible in the
	// exposition (absent series read as "never possible", zeros as "not yet").
	for _, reason := range rejectReasons {
		m.rejected.With(reason)
	}
	m.abandoned = reg.Counter("mroamd_requests_abandoned_total",
		"Requests whose client disconnected while queued (499).")
	m.restarts = reg.Counter("mroamd_solver_restarts_total",
		"Local-search restarts completed across all solves.")
	m.evals = reg.Counter("mroamd_solver_evals_total",
		"Candidate plan evaluations across all solves.")
	m.cache = reg.CounterVec("mroamd_gain_cache_events_total",
		"Gain-cache outcomes: hit = evaluation avoided by a CELF bound, "+
			"miss = candidate evaluated exactly, rescan = selection fell back to a full scan.",
		"event")
	m.solveCache = reg.CounterVec("mroamd_solve_cache_events_total",
		"Solve-result cache outcomes: hit = served from cache, miss = a new solve started, "+
			"coalesced = joined an identical in-flight solve, evicted = entry dropped "+
			"(capacity or instance invalidation).",
		"event")
	m.queueWait = reg.Histogram("mroamd_queue_wait_seconds",
		"Time admitted requests spent waiting for a worker slot, measured at "+
			"slot acquisition and excluded from the solve phase by construction.",
		latencyBuckets)
	m.solvePhase = reg.HistogramVec("mroamd_solve_phase_seconds",
		"Per-phase server time for /solve requests: admission = decode, validation "+
			"and the cache probe; solve = solver (or coalesced flight) execution, queue "+
			"wait excluded; encode = response serialization. admission + "+
			"mroamd_queue_wait_seconds + solve + encode sum to a request's total server "+
			"time; phases a request never reached contribute nothing.",
		latencyBuckets, "phase")
	for _, phase := range []string{"admission", "solve", "encode"} {
		m.solvePhase.With(phase)
	}
	m.traceEvents = reg.CounterVec("mroamd_trace_events_total",
		"Completed-trace span-store admissions: stored = the trace entered the ring "+
			"(errors, sheds and truncations always do), sampled_out = a plain served "+
			"trace below the slowest-quantile threshold was dropped by tail sampling.",
		"event")
	m.traceEvents.With("stored")
	m.traceEvents.With("sampled_out")
	reg.GaugeFunc("mroamd_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// observe records one finished solve that ran solver work on behalf of this
// request: the request-level aggregates plus the work counters.
func (m *metrics) observe(algorithm, instance, model string, res *core.Anytime, latency time.Duration) {
	m.observeRequest(algorithm, instance, model, res, latency)
	m.restarts.Add(int64(res.RestartsCompleted))
	m.evals.Add(res.Evals)
	m.cache.With("hit").Add(res.Cache.Hits)
	m.cache.With("miss").Add(res.Cache.Misses)
	m.cache.With("rescan").Add(res.Cache.Rescans)
}

// observeRequest records the request-level aggregates — completion counters
// and the latency/regret histograms — without the solver-work counters
// (restarts, evals, gain-cache events), which belong to the one request whose
// flight actually ran the solve. Solve-cache hits and coalesced followers go
// through here, so the response-facing series stay truthful per request while
// solver work is never double-counted.
func (m *metrics) observeRequest(algorithm, instance, model string, res *core.Anytime, latency time.Duration) {
	m.requests.With(algorithm, model).Inc()
	m.instanceReqs.With(instance).Inc()
	m.latency.Observe(latency.Seconds())
	m.regret.Observe(res.TotalRegret)
	if res.Truncated {
		m.truncated.Inc()
	}
	us := latency.Microseconds()
	for {
		cur := m.latencyMaxMicros.Load()
		if us <= cur || m.latencyMaxMicros.CompareAndSwap(cur, us) {
			break
		}
	}
}

// AlgoCount is one per-algorithm request total in a Stats snapshot.
type AlgoCount struct {
	Algorithm string `json:"algorithm"`
	Requests  int64  `json:"requests"`
}

// InstanceCount is one loaded instance's identity, dimensions and request
// total in a Stats snapshot. Corridors/CompressionRatio describe the
// corridor-compressed coverage substrate the instance is served on (see
// coverage.Compress).
type InstanceCount struct {
	Instance         string  `json:"instance"`
	Generation       uint64  `json:"generation"`
	Billboards       int     `json:"billboards"`
	Advertisers      int     `json:"advertisers"`
	Corridors        int     `json:"corridors"`
	CompressionRatio float64 `json:"compression_ratio"`
	Requests         int64   `json:"requests"`
	// Inflight is the instance's currently admitted (queued or executing)
	// request count at snapshot time, so a load run can correlate observed
	// shedding with per-instance queue pressure.
	Inflight int64 `json:"inflight"`
}

// Stats is the JSON document served on GET /stats. Its shape predates the
// Prometheus exposition and is kept backward-compatible; the values are
// derived from the same underlying counters and histograms.
type Stats struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Completed      int64   `json:"completed"`
	Truncated      int64   `json:"truncated"`
	TruncationRate float64 `json:"truncation_rate"`
	Rejected       int64   `json:"rejected"`
	// RejectedByReason splits Rejected by admission reason (capacity,
	// deadline_infeasible, fairness); the values sum to Rejected.
	RejectedByReason map[string]int64 `json:"rejected_by_reason"`
	Abandoned        int64            `json:"abandoned"`
	// QueueDepth is the number of admission tokens held at snapshot time
	// (requests queued or executing), the same value as the
	// mroamd_queue_depth gauge.
	QueueDepth   int         `json:"queue_depth"`
	LatencyAvgMS float64     `json:"latency_avg_ms"`
	LatencyMaxMS float64     `json:"latency_max_ms"`
	Restarts     int64       `json:"restarts"`
	Evals        int64       `json:"evals"`
	PerAlgorithm []AlgoCount `json:"per_algorithm"`
	// PerInstance reports the catalog's currently loaded instances — name,
	// generation, dimensions — joined with each one's completed-request
	// count. Requests against a since-reloaded generation still count under
	// the name; requests against a since-deleted name are dropped with it.
	PerInstance []InstanceCount `json:"per_instance"`
}

func (m *metrics) snapshot(queueDepth int) Stats {
	s := Stats{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Completed:        m.latency.Count(),
		Truncated:        m.truncated.Value(),
		RejectedByReason: make(map[string]int64, len(rejectReasons)),
		Abandoned:        m.abandoned.Value(),
		QueueDepth:       queueDepth,
		Restarts:         m.restarts.Value(),
		Evals:            m.evals.Value(),
		LatencyMaxMS:     float64(m.latencyMaxMicros.Load()) / 1e3,
	}
	m.rejected.Each(func(values []string, n int64) {
		s.RejectedByReason[values[0]] = n
		s.Rejected += n
	})
	if s.Completed > 0 {
		s.LatencyAvgMS = m.latency.Sum() / float64(s.Completed) * 1e3
		s.TruncationRate = float64(s.Truncated) / float64(s.Completed)
	}
	// /stats predates the model label: PerAlgorithm stays a per-algorithm
	// total, summed across model kinds.
	byAlg := make(map[string]int64)
	m.requests.Each(func(values []string, n int64) { byAlg[values[0]] += n })
	for alg, n := range byAlg {
		if n == 0 {
			// Pre-created zero series stay visible on /metrics but do not
			// grow the /stats document (its pre-label shape listed only
			// algorithms that had served).
			continue
		}
		s.PerAlgorithm = append(s.PerAlgorithm, AlgoCount{Algorithm: alg, Requests: n})
	}
	sort.Slice(s.PerAlgorithm, func(i, j int) bool {
		return s.PerAlgorithm[i].Algorithm < s.PerAlgorithm[j].Algorithm
	})
	counts := make(map[string]int64)
	m.instanceReqs.Each(func(values []string, n int64) { counts[values[0]] = n })
	inflight := make(map[string]int64)
	m.instanceInflight.Each(func(values []string, n int64) { inflight[values[0]] = n })
	for _, e := range m.cat.List() { // List is sorted by name
		s.PerInstance = append(s.PerInstance, InstanceCount{
			Instance:         e.Name,
			Generation:       e.Generation,
			Billboards:       e.Info.Billboards,
			Advertisers:      e.Info.Advertisers,
			Corridors:        e.Info.Corridors,
			CompressionRatio: e.Info.CompressionRatio,
			Requests:         counts[e.Name],
			Inflight:         inflight[e.Name],
		})
	}
	return s
}
