package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// metrics aggregates per-request observations with lock-free counters on
// the hot path; only the per-algorithm breakdown takes a mutex, after the
// solve has already finished.
type metrics struct {
	start time.Time

	completed atomic.Int64 // solves that returned a plan (truncated or not)
	truncated atomic.Int64 // subset of completed cut off by deadline/cancel
	rejected  atomic.Int64 // 429s: queue full at admission
	abandoned atomic.Int64 // client gone while waiting for a worker slot

	latencyMicros    atomic.Int64 // sum over completed
	latencyMaxMicros atomic.Int64
	restarts         atomic.Int64 // sum of RestartsCompleted
	evals            atomic.Int64 // sum of Evals

	mu      sync.Mutex
	perAlgo map[string]int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), perAlgo: make(map[string]int64)}
}

// observe records one finished solve.
func (m *metrics) observe(algorithm string, res *core.Anytime, latency time.Duration) {
	m.completed.Add(1)
	if res.Truncated {
		m.truncated.Add(1)
	}
	us := latency.Microseconds()
	m.latencyMicros.Add(us)
	for {
		cur := m.latencyMaxMicros.Load()
		if us <= cur || m.latencyMaxMicros.CompareAndSwap(cur, us) {
			break
		}
	}
	m.restarts.Add(int64(res.RestartsCompleted))
	m.evals.Add(res.Evals)
	m.mu.Lock()
	m.perAlgo[algorithm]++
	m.mu.Unlock()
}

// AlgoCount is one per-algorithm request total in a Stats snapshot.
type AlgoCount struct {
	Algorithm string `json:"algorithm"`
	Requests  int64  `json:"requests"`
}

// Stats is the JSON document served on GET /stats.
type Stats struct {
	UptimeSeconds  float64     `json:"uptime_seconds"`
	Completed      int64       `json:"completed"`
	Truncated      int64       `json:"truncated"`
	TruncationRate float64     `json:"truncation_rate"`
	Rejected       int64       `json:"rejected"`
	Abandoned      int64       `json:"abandoned"`
	LatencyAvgMS   float64     `json:"latency_avg_ms"`
	LatencyMaxMS   float64     `json:"latency_max_ms"`
	Restarts       int64       `json:"restarts"`
	Evals          int64       `json:"evals"`
	PerAlgorithm   []AlgoCount `json:"per_algorithm"`
}

func (m *metrics) snapshot() Stats {
	s := Stats{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Completed:     m.completed.Load(),
		Truncated:     m.truncated.Load(),
		Rejected:      m.rejected.Load(),
		Abandoned:     m.abandoned.Load(),
		Restarts:      m.restarts.Load(),
		Evals:         m.evals.Load(),
		LatencyMaxMS:  float64(m.latencyMaxMicros.Load()) / 1e3,
	}
	if s.Completed > 0 {
		s.LatencyAvgMS = float64(m.latencyMicros.Load()) / float64(s.Completed) / 1e3
		s.TruncationRate = float64(s.Truncated) / float64(s.Completed)
	}
	m.mu.Lock()
	for name, n := range m.perAlgo {
		s.PerAlgorithm = append(s.PerAlgorithm, AlgoCount{Algorithm: name, Requests: n})
	}
	m.mu.Unlock()
	sort.Slice(s.PerAlgorithm, func(i, j int) bool {
		return s.PerAlgorithm[i].Algorithm < s.PerAlgorithm[j].Algorithm
	})
	return s
}
