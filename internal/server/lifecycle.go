package server

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// reqLifecycle tracks one /solve request's phase boundaries — admission →
// cache lookup → queue wait → solve → encode — and, when the server has a
// span store, records the same boundaries as a span tree. The phase
// timestamps always exist (they feed the mroamd_queue_wait_seconds and
// mroamd_solve_phase_seconds histograms and the Server-Timing header);
// spans exist only when tracing is enabled, so the disabled path mints no
// IDs and allocates nothing per request beyond this struct.
//
// Adjacent phases share their boundary timestamp, so phase durations sum
// exactly (integer nanoseconds) to the root span's duration — the property
// the trace-smoke target and TestTracePhaseSums assert.
type reqLifecycle struct {
	m     *metrics
	store *obs.SpanStore

	start time.Time
	// requestID is the X-Request-ID value: the client's trace ID when it
	// supplied a valid traceparent, a legacy process-unique ID otherwise.
	requestID string
	// traceID is non-empty whenever the request has a trace identity —
	// always when tracing is enabled, and when the client sent a valid
	// traceparent even with tracing off.
	traceID string

	rec    *obs.SpanRecorder
	root   *obs.ActiveSpan
	phase  *obs.ActiveSpan // currently open phase span (child of root)
	tracer *obs.SpanTracer // armed at solve start; restart slots become spans

	queueAt   time.Time     // queue phase start
	queueWait time.Duration // known once a worker slot was acquired
	solveDur  time.Duration // known once the solve phase ended
	encodeAt  time.Time     // encode phase start; zero if never reached

	instance  string
	algorithm string
	model     string
	done      bool
}

// startLifecycle begins a request's lifecycle at its arrival instant:
// resolves the trace identity from the incoming traceparent header, opens
// the root and admission spans when tracing is enabled, and stamps the
// response's traceparent echo so every answer — including 429s — carries it.
func (s *Server) startLifecycle(w http.ResponseWriter, r *http.Request, start time.Time) *reqLifecycle {
	lc := &reqLifecycle{m: s.metrics, store: s.traces, start: start}
	clientTrace, clientSpan, sampled, ok := obs.ParseTraceparent(r.Header.Get("Traceparent"))
	if ok {
		// The client's trace ID is the request's identity end to end: the
		// same string appears in the client's records, X-Request-ID, the
		// server log line and /debug/traces.
		lc.requestID = clientTrace
		lc.traceID = clientTrace
	} else {
		lc.requestID = obs.NewRequestID()
	}
	if s.traces != nil {
		lc.rec = obs.NewSpanRecorder(clientTrace)
		lc.traceID = lc.rec.TraceID()
		lc.root = lc.rec.StartSpanAt("request", clientSpan, start)
		lc.phase = lc.root.StartChildAt("admission", start)
		lc.tracer = &obs.SpanTracer{}
		// Echo our root span as the server's contribution to the trace.
		w.Header().Set("Traceparent", obs.FormatTraceparent(lc.traceID, lc.root.ID(), true))
	} else if ok {
		// Tracing disabled: still echo the client's context back verbatim
		// (normalized), so propagation round-trips are observable.
		w.Header().Set("Traceparent", obs.FormatTraceparent(clientTrace, clientSpan, sampled))
	}
	return lc
}

// noteTarget records the request's routing dimensions once the instance
// resolved and the algorithm validated. model is the resolved instance's
// regret-model kind.
func (l *reqLifecycle) noteTarget(instance, algorithm, model string) {
	l.instance, l.algorithm, l.model = instance, algorithm, model
	if l.root != nil {
		l.root.SetAttr("instance", instance)
		l.root.SetAttr("algorithm", algorithm)
		l.root.SetAttr("model", model)
	}
}

// nextPhase closes the open phase span and opens the next at the same
// instant (no-op without tracing).
func (l *reqLifecycle) nextPhase(name string, at time.Time) {
	if l.rec == nil {
		return
	}
	l.phase.EndAt(at)
	l.phase = l.root.StartChildAt(name, at)
}

// enterCacheLookup marks the boundary between request admission work and
// the solve-cache fast-path probe.
func (l *reqLifecycle) enterCacheLookup(at time.Time) {
	l.nextPhase("cache_lookup", at)
}

// cacheHit marks a fast-path answer: the request goes straight to encoding,
// never holding a queue or worker token. Only the admission phase histogram
// is observed — there was no queue wait and no solve.
func (l *reqLifecycle) cacheHit(at time.Time) {
	l.m.solvePhase.With("admission").Observe(at.Sub(l.start).Seconds())
	l.encodeAt = at
	if l.root != nil {
		l.root.SetAttr("cached", true)
	}
	l.nextPhase("encode", at)
}

// enterQueue ends the admission work (observed into the admission phase
// histogram, cache probe included) and starts the queue wait.
func (l *reqLifecycle) enterQueue(at time.Time) {
	l.queueAt = at
	l.m.solvePhase.With("admission").Observe(at.Sub(l.start).Seconds())
	l.nextPhase("queue", at)
}

// enterSolve records the queue wait — measured here, at worker-slot
// acquisition, so it is never folded into the solve phase — and arms the
// restart-slot tracer under the solve span.
func (l *reqLifecycle) enterSolve(at time.Time) {
	l.queueWait = at.Sub(l.queueAt)
	l.m.queueWait.Observe(l.queueWait.Seconds())
	l.nextPhase("solve", at)
	if l.tracer != nil {
		l.tracer.Begin(l.phase, at)
	}
}

// enterEncode ends the solve phase (observed into the solve phase
// histogram, queue wait excluded by construction) and starts encoding. at
// is the solve's end boundary — the solve start plus solveDur, so the span
// layout stays contiguous.
func (l *reqLifecycle) enterEncode(at time.Time, solveDur time.Duration) {
	l.solveDur = solveDur
	l.m.solvePhase.With("solve").Observe(solveDur.Seconds())
	l.encodeAt = at
	l.nextPhase("encode", at)
}

// finish completes the lifecycle: ends the open phase and the root span at
// one shared instant, observes the encode phase, and offers the trace to
// the store (tail-sampled). Idempotent; error paths call it defensively.
func (l *reqLifecycle) finish(status int, outcome string) {
	if l.done {
		return
	}
	l.done = true
	end := time.Now()
	if !l.encodeAt.IsZero() {
		l.m.solvePhase.With("encode").Observe(end.Sub(l.encodeAt).Seconds())
	}
	if l.rec == nil {
		return
	}
	l.phase.EndAt(end)
	l.root.SetAttr("outcome", outcome)
	l.root.EndAt(end)
	spans := l.rec.Spans()
	obs.SortSpans(spans)
	l.store.Add(&obs.TraceRecord{
		TraceID:   l.rec.TraceID(),
		Start:     l.start,
		Duration:  l.root.Duration(),
		Outcome:   outcome,
		Instance:  l.instance,
		Algorithm: l.algorithm,
		Model:     l.model,
		Status:    status,
		Spans:     spans,
	})
}

// serverTiming renders the Server-Timing header for this request: queue
// wait, solve time and total server time so far (encoding happens after
// headers flush and cannot be included).
func (l *reqLifecycle) serverTiming() string {
	return obs.FormatServerTiming(l.queueWait, l.solveDur, time.Since(l.start))
}
