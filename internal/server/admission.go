package server

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Admission policies. All three shed rather than queue unboundedly; they
// differ in which requests they are willing to shed before the queue is
// actually full:
//
//   - AdmitShed (the default) is the original binary policy: admit FIFO
//     while the queue has space, answer 429 reason=capacity otherwise. Its
//     behavior — including every response byte on the default instance — is
//     identical to the pre-policy server.
//   - AdmitDeadline additionally screens each request's solve deadline
//     against the queue's estimated drain: a request whose deadline would
//     already be spent by the time a worker frees is shed immediately
//     (reason=deadline_infeasible) instead of being admitted only to return
//     a degenerate truncated result. The admitted set is feasible by
//     construction with respect to the estimate in force at admission.
//   - AdmitFair additionally caps any one instance's share of the admission
//     capacity (FairShare slots), so a hot market cannot occupy the whole
//     queue and starve requests for every other instance
//     (reason=fairness).
const (
	AdmitShed     = "shed"
	AdmitDeadline = "deadline"
	AdmitFair     = "fair"
)

// Reject reasons, used as the "reason" label on
// mroamd_requests_rejected_total and echoed in the X-Reject-Reason header
// of 429 responses.
const (
	rejectCapacity           = "capacity"
	rejectDeadlineInfeasible = "deadline_infeasible"
	rejectFairness           = "fairness"
)

// rejectReasons lists every reason label, in exposition order.
var rejectReasons = []string{rejectCapacity, rejectDeadlineInfeasible, rejectFairness}

// admission holds the policy state consulted on every /solve request. The
// only mutable field is the service-time estimate, a lock-free EWMA of how
// long completed requests held their worker slot — which is exactly the
// queue's drain rate: with W workers and a mean hold time s, admitted
// requests drain at W/s per second regardless of how much of s was solver
// work versus cache coordination.
type admission struct {
	policy    string
	workers   int
	capacity  int // workers + queue depth: total admission tokens
	fairShare int // max admission slots one instance may hold (fair policy)

	svcMicros atomic.Int64 // EWMA worker-hold time in µs; 0 = no samples yet
}

// validPolicy reports whether name is a known admission policy.
func validPolicy(name string) bool {
	return name == AdmitShed || name == AdmitDeadline || name == AdmitFair
}

// ewmaWeight is the weight of each new service-time sample. 1/4 keeps the
// estimate responsive to load shifts (a burst of big BLS solves moves it
// within a few requests) without letting one outlier rewrite it.
const ewmaWeight = 0.25

// observeService folds one completed request's worker-hold time into the
// drain-rate estimate.
func (a *admission) observeService(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1 // a sub-µs hold still drains a token
	}
	for {
		old := a.svcMicros.Load()
		next := us
		if old != 0 {
			next = int64(float64(old)*(1-ewmaWeight) + float64(us)*ewmaWeight)
			if next < 1 {
				next = 1
			}
		}
		if a.svcMicros.CompareAndSwap(old, next) {
			return
		}
	}
}

// serviceEstimate returns the current EWMA worker-hold time, or 0 when no
// request has completed yet.
func (a *admission) serviceEstimate() time.Duration {
	return time.Duration(a.svcMicros.Load()) * time.Microsecond
}

// EstimatedQueueWait is the expected time a request admitted now spends
// waiting before a worker picks it up, given `queued` admission tokens
// outstanding (queued + executing requests), `workers` parallel slots and a
// mean worker-hold time of svc. With fewer outstanding requests than
// workers a slot is free (or about to be) and the wait is zero; beyond
// that, each batch of `workers` completions takes svc, so the request at
// depth d starts after roughly (d−workers+1)·svc/workers.
func EstimatedQueueWait(queued, workers int, svc time.Duration) time.Duration {
	ahead := queued - workers + 1
	if ahead <= 0 || svc <= 0 {
		return 0
	}
	return time.Duration(float64(ahead) * float64(svc) / float64(workers))
}

// DeadlineFeasible reports whether a request with the given solve deadline,
// arriving when `queued` admission tokens are outstanding, can still have
// budget left when it reaches a worker. A request with no deadline is
// always feasible (its budget is unbounded), and with no service samples
// yet there is nothing to prove infeasibility against, so the request is
// admitted — the deadline policy only ever sheds on positive evidence.
func DeadlineFeasible(deadline time.Duration, queued, workers int, svc time.Duration) bool {
	if deadline <= 0 {
		return true
	}
	return deadline > EstimatedQueueWait(queued, workers, svc)
}

// retryAfterSeconds derives the Retry-After hint on a 429 from the current
// queue drain rate: the estimated time for the backlog to drain, rounded up
// to whole seconds and clamped to [1, 60]. With no service samples yet it
// falls back to 1 second, the pre-policy constant.
func retryAfterSeconds(queued, workers int, svc time.Duration) int {
	wait := EstimatedQueueWait(queued, workers, svc)
	if wait <= 0 {
		return 1
	}
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// DefaultFairShare is the fair policy's per-instance admission cap when
// Config.FairShare is unset: half the total capacity, rounded up, so a
// single instance can never occupy the entire queue but a two-instance
// fleet can still use all of it.
func DefaultFairShare(capacity int) int {
	share := (capacity + 1) / 2
	if share < 1 {
		share = 1
	}
	return share
}

// String renders the admission configuration for logs and /healthz.
func (a *admission) String() string {
	if a.policy == AdmitFair {
		return fmt.Sprintf("%s(share=%d)", a.policy, a.fairShare)
	}
	return a.policy
}
