package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// postSolveTraced sends one /solve request with an optional traceparent and
// returns the raw response plus its headers.
func postSolveTraced(tb testing.TB, client *http.Client, url, traceparent string, req SolveRequest) (*http.Response, []byte) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/solve", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("Traceparent", traceparent)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, raw
}

// fetchTrace polls /debug/traces/{id} until the trace lands in the store
// (the record is added after the response body flushes, so a fast client
// can outrun it).
func fetchTrace(tb testing.TB, client *http.Client, url, id string) TraceTree {
	tb.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := client.Get(url + "/debug/traces/" + id)
		if err != nil {
			tb.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			tb.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var tree TraceTree
			if err := json.Unmarshal(raw, &tree); err != nil {
				tb.Fatalf("decode trace %q: %v", raw, err)
			}
			return tree
		}
		if time.Now().After(deadline) {
			tb.Fatalf("trace %s never appeared: %d %s", id, resp.StatusCode, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceEndToEnd drives one traced request through the full lifecycle:
// client traceparent in, same ID on X-Request-ID and the traceparent echo,
// Server-Timing phases on the response, and a span tree on /debug/traces/{id}
// covering admission→queue→solve→encode with restart child spans, whose
// phase durations sum exactly to the root duration.
func TestTraceEndToEnd(t *testing.T) {
	inst := testInstance(t, 200, 30, 4)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 2, TraceCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clientTrace, clientSpan := obs.NewTraceID(), obs.NewSpanID()
	tp := obs.FormatTraceparent(clientTrace, clientSpan, true)
	resp, raw := postSolveTraced(t, ts.Client(), ts.URL, tp, SolveRequest{Algorithm: "BLS", Restarts: 3, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, raw)
	}
	var sr SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}

	// Satellite: X-Request-ID and the trace id are the same identifier when
	// the client supplied a valid traceparent.
	if got := resp.Header.Get("X-Request-ID"); got != clientTrace {
		t.Errorf("X-Request-ID = %q, want client trace id %q", got, clientTrace)
	}
	echoTrace, echoSpan, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || echoTrace != clientTrace {
		t.Errorf("traceparent echo = %q, want trace %s", resp.Header.Get("Traceparent"), clientTrace)
	}
	st := obs.ParseServerTiming(resp.Header.Get("Server-Timing"))
	for _, name := range []string{"queue", "solve", "total"} {
		if _, present := st[name]; !present {
			t.Errorf("Server-Timing %q missing %s", resp.Header.Get("Server-Timing"), name)
		}
	}
	if st["total"] < st["queue"]+st["solve"] {
		t.Errorf("Server-Timing total %.3f < queue %.3f + solve %.3f", st["total"], st["queue"], st["solve"])
	}

	tree := fetchTrace(t, ts.Client(), ts.URL, clientTrace)
	if tree.Outcome != "served" || tree.Status != http.StatusOK {
		t.Errorf("trace outcome=%q status=%d, want served/200", tree.Outcome, tree.Status)
	}
	if tree.Instance != "default" || tree.Algorithm != "BLS" {
		t.Errorf("trace dims = %s/%s", tree.Instance, tree.Algorithm)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Name != "request" || root.ParentID != clientSpan {
		t.Errorf("root = %s (parent %q), want request under client span %q", root.Name, root.ParentID, clientSpan)
	}
	if echoSpan != root.SpanID {
		t.Errorf("traceparent echoed span %q, want server root %q", echoSpan, root.SpanID)
	}

	// The acceptance criterion: phase spans are contiguous, so their int64
	// durations sum exactly to the root's, and the root matches the
	// response's recorded latency bound.
	var phaseSum time.Duration
	phases := make(map[string]time.Duration)
	var restarts int
	for _, ph := range root.Children {
		phases[ph.Name] = ph.Duration
		phaseSum += ph.Duration
		for _, child := range ph.Children {
			if child.Name == "restart" {
				restarts++
				if child.Attrs["slot"] == "" || child.Attrs["regret"] == "" {
					t.Errorf("restart span missing attrs: %v", child.Attrs)
				}
			}
		}
	}
	for _, want := range []string{"admission", "queue", "solve", "encode"} {
		if _, present := phases[want]; !present {
			t.Errorf("trace missing phase %q (have %v)", want, phases)
		}
	}
	if phaseSum != root.Duration {
		t.Errorf("phase durations sum to %v, root is %v", phaseSum, root.Duration)
	}
	if solveMS := float64(phases["solve"].Microseconds()) / 1e3; solveMS > sr.LatencyMS+1 {
		t.Errorf("solve span %.3fms exceeds recorded latency %.3fms", solveMS, sr.LatencyMS)
	}
	if restarts == 0 {
		t.Error("no restart child spans under the solve span")
	}

	// Satellite bugfix assertion at the metrics layer: admission +
	// queue wait + solve + encode account for the request's total server
	// time (the root span) within float tolerance.
	histSum := s.metrics.queueWait.Sum()
	for _, ph := range []string{"admission", "solve", "encode"} {
		histSum += s.metrics.solvePhase.With(ph).Sum()
	}
	if total := root.Duration.Seconds(); math.Abs(histSum-total) > 0.005 {
		t.Errorf("phase histograms sum to %.6fs, span total %.6fs", histSum, total)
	}
	if s.metrics.queueWait.Count() != 1 || s.metrics.solvePhase.With("solve").Count() != 1 {
		t.Errorf("phase histogram counts: queue=%d solve=%d, want 1,1",
			s.metrics.queueWait.Count(), s.metrics.solvePhase.With("solve").Count())
	}

	// List view: present unfiltered, filterable by outcome/instance, and
	// excluded by an impossible min-duration.
	var list TraceList
	get := func(path string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
	}
	get("/debug/traces")
	if list.Count != 1 || list.Traces[0].TraceID != clientTrace || list.Kept != 1 {
		t.Errorf("list = %+v, want the one kept trace", list)
	}
	get("/debug/traces?outcome=served&instance=default")
	if list.Count != 1 {
		t.Errorf("filtered list count = %d, want 1", list.Count)
	}
	get("/debug/traces?min_duration_ms=3600000")
	if list.Count != 0 {
		t.Errorf("min-duration filter kept %d traces, want 0", list.Count)
	}
	get("/debug/traces?outcome=shed_capacity")
	if list.Count != 0 {
		t.Errorf("outcome filter kept %d traces, want 0", list.Count)
	}
}

// TestTracingDisabledBitIdentical extends PR 3's zero-perturbation proof to
// span tracing: the same request against a traced and an untraced server
// returns identical solver results, and the untraced server neither mints
// trace headers nor serves /debug/traces.
func TestTracingDisabledBitIdentical(t *testing.T) {
	inst := testInstance(t, 200, 30, 4)
	req := SolveRequest{Algorithm: "BLS", Restarts: 4, Seed: 42, IncludeAssignments: true}

	run := func(traceCap int) (*http.Response, SolveResponse, string) {
		s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 2, TraceCapacity: traceCap})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, raw := postSolveTraced(t, ts.Client(), ts.URL, "", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: %d %s", resp.StatusCode, raw)
		}
		var sr SolveResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		dresp, err := ts.Client().Get(ts.URL + "/debug/traces")
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		return resp, sr, http.StatusText(dresp.StatusCode)
	}

	respOff, off, debugOff := run(0)
	respOn, on, debugOn := run(64)

	if off.TotalRegret != on.TotalRegret || off.Evals != on.Evals ||
		off.RestartsCompleted != on.RestartsCompleted {
		t.Errorf("traced solve diverged: off=(%v,%d,%d) on=(%v,%d,%d)",
			off.TotalRegret, off.Evals, off.RestartsCompleted,
			on.TotalRegret, on.Evals, on.RestartsCompleted)
	}
	offPlans, _ := json.Marshal(off.Assignments)
	onPlans, _ := json.Marshal(on.Assignments)
	if !bytes.Equal(offPlans, onPlans) {
		t.Error("traced and untraced assignments differ")
	}
	if h := respOff.Header.Get("Traceparent"); h != "" {
		t.Errorf("untraced server emitted traceparent %q", h)
	}
	if h := respOn.Header.Get("Traceparent"); h == "" {
		t.Error("traced server emitted no traceparent")
	}
	if debugOff != http.StatusText(http.StatusNotFound) {
		t.Errorf("disabled /debug/traces answered %s, want Not Found", debugOff)
	}
	if debugOn != http.StatusText(http.StatusOK) {
		t.Errorf("enabled /debug/traces answered %s, want OK", debugOn)
	}
	// Request IDs without a client traceparent keep the legacy shape.
	if id := respOff.Header.Get("X-Request-ID"); len(id) != len("00000000-000000") {
		t.Errorf("legacy request id %q has unexpected shape", id)
	}
	if id := respOn.Header.Get("X-Request-ID"); len(id) != len("00000000-000000") {
		t.Errorf("request id without client traceparent should stay legacy, got %q", id)
	}
}

// TestShedTraceparentEchoAndRetention fills the admission capacity and
// asserts the 429 still echoes the client's traceparent, and that the shed
// trace is retained with its reason as the outcome.
func TestShedTraceparentEchoAndRetention(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 60, 10, 3)
	cfg, release, started := gatedConfig(t, inst, 1, 0)
	cfg.TraceCapacity = 32
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Order"})
		if status != http.StatusOK {
			t.Errorf("gated solve: %d", status)
		}
	}()
	<-started // the one worker slot is now held

	shedTrace := obs.NewTraceID()
	tp := obs.FormatTraceparent(shedTrace, obs.NewSpanID(), true)
	resp, raw := postSolveTraced(t, ts.Client(), ts.URL, tp, SolveRequest{Algorithm: "G-Order"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d %s", resp.StatusCode, raw)
	}
	if echo, _, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); !ok || echo != shedTrace {
		t.Errorf("429 traceparent echo = %q, want trace %s", resp.Header.Get("Traceparent"), shedTrace)
	}
	if got := resp.Header.Get("X-Request-ID"); got != shedTrace {
		t.Errorf("429 X-Request-ID = %q, want %s", got, shedTrace)
	}

	tree := fetchTrace(t, ts.Client(), ts.URL, shedTrace)
	if tree.Outcome != "shed_capacity" || tree.Status != http.StatusTooManyRequests {
		t.Errorf("shed trace outcome=%q status=%d, want shed_capacity/429", tree.Outcome, tree.Status)
	}

	release()
	wg.Wait()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestTraceScrapeUnderLoad hammers /debug/traces reads against live solve
// traffic (run under -race) and checks the store never exceeds its bound
// and no goroutines leak.
func TestTraceScrapeUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 100, 15, 3)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 4, TraceCapacity: 16, TraceKeepSlowest: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const writers, perWriter = 4, 20
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/debug/traces")
				if err != nil {
					return
				}
				var list TraceList
				_ = json.NewDecoder(resp.Body).Decode(&list)
				resp.Body.Close()
				if list.Count > 16 {
					t.Errorf("list count %d exceeds capacity 16", list.Count)
					return
				}
				for _, tr := range list.Traces {
					resp, err := ts.Client().Get(ts.URL + "/debug/traces/" + tr.TraceID)
					if err != nil {
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tp := obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID(), true)
				resp, _ := postSolveTraced(t, ts.Client(), ts.URL, tp, SolveRequest{
					Algorithm: "ALS", Restarts: 1, Seed: uint64(w*1000 + i),
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("solve %d/%d: %d", w, i, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if n := s.traces.Len(); n > 16 {
		t.Errorf("store holds %d traces, capacity 16", n)
	}
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}
