package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// catalogFor wraps a single pre-built instance in a catalog, as the default
// entry named "default" — the single-instance shape most tests need.
func catalogFor(tb testing.TB, inst *core.Instance) *catalog.Catalog {
	tb.Helper()
	c := catalog.New()
	if _, err := c.AddInstance("default", inst); err != nil {
		tb.Fatal(err)
	}
	return c
}

// testInstance builds a deterministic random instance sized by the caller.
func testInstance(tb testing.TB, nTraj, nBB, nAdv int) *core.Instance {
	tb.Helper()
	r := rng.New(11)
	lists := make([]coverage.List, nBB)
	for b := range lists {
		deg := 1 + r.Intn(nTraj/3+1)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(nTraj))
		}
		lists[b] = coverage.NewList(ids)
	}
	u, err := coverage.NewUniverse(nTraj, lists)
	if err != nil {
		tb.Fatal(err)
	}
	per := 1.1 * float64(u.TotalSupply()) / float64(nAdv)
	advs := make([]core.Advertiser, nAdv)
	for i := range advs {
		d := int64(per * r.Range(0.8, 1.2))
		if d < 1 {
			d = 1
		}
		advs[i] = core.Advertiser{Demand: d, Payment: float64(d)}
	}
	inst, err := core.NewInstance(u, advs, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

// postSolve sends one /solve request and decodes the response.
func postSolve(tb testing.TB, client *http.Client, url string, req SolveRequest) (int, SolveResponse, errorResponse) {
	tb.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := client.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	var ok SolveResponse
	var fail errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			tb.Fatalf("decode 200 body %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &fail); err != nil {
		tb.Fatalf("decode %d body %q: %v", resp.StatusCode, raw, err)
	}
	return resp.StatusCode, ok, fail
}

// assertNoGoroutineLeak waits for the goroutine count to return to the
// baseline captured before the test's server work (the in-tree stand-in for
// goleak, which is not vendored).
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSolveEndpointMatchesLibrary(t *testing.T) {
	inst := testInstance(t, 200, 30, 4)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SolveRequest{Algorithm: "BLS", Restarts: 3, Seed: 9, IncludeAssignments: true}
	status, got, _ := postSolve(t, ts.Client(), ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	want := core.BLSAlgorithm{Opts: core.LocalSearchOptions{Restarts: 3, Seed: 9, Workers: 1}}.Solve(inst)
	if got.TotalRegret != want.TotalRegret() {
		t.Errorf("regret %v, want %v", got.TotalRegret, want.TotalRegret())
	}
	if got.Truncated {
		t.Error("truncated without a deadline")
	}
	if got.RestartsCompleted != 3 || got.RestartsRequested != 3 {
		t.Errorf("restarts %d/%d, want 3/3", got.RestartsCompleted, got.RestartsRequested)
	}
	if got.Satisfied != want.SatisfiedCount() || got.Advertisers != inst.NumAdvertisers() {
		t.Errorf("satisfied %d/%d, want %d/%d",
			got.Satisfied, got.Advertisers, want.SatisfiedCount(), inst.NumAdvertisers())
	}
	if len(got.Assignments) != inst.NumAdvertisers() {
		t.Fatalf("assignments for %d advertisers, want %d", len(got.Assignments), inst.NumAdvertisers())
	}
	for i, set := range got.Assignments {
		w := want.Set(i, nil)
		if len(set) != len(w) {
			t.Errorf("advertiser %d assignment %v, want %v", i, set, w)
		}
	}
	if got.LatencyMS < 0 {
		t.Errorf("negative latency %v", got.LatencyMS)
	}

	// Same seed again: deterministic answer.
	_, again, _ := postSolve(t, ts.Client(), ts.URL, req)
	if again.TotalRegret != got.TotalRegret || again.Evals != got.Evals {
		t.Errorf("repeat solve differs: %v/%d vs %v/%d",
			again.TotalRegret, again.Evals, got.TotalRegret, got.Evals)
	}
}

func TestSolveDeadlineTruncates(t *testing.T) {
	inst := testInstance(t, 20000, 600, 6)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, got, _ := postSolve(t, ts.Client(), ts.URL,
		SolveRequest{Algorithm: "BLS", Restarts: 500, Seed: 1, DeadlineMS: 25})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !got.Truncated {
		t.Error("500-restart BLS on a 600-billboard instance finished in 25ms?")
	}
	if got.RestartsCompleted >= got.RestartsRequested {
		t.Errorf("restarts %d/%d under a 25ms deadline", got.RestartsCompleted, got.RestartsRequested)
	}

	// The truncation must be visible in /stats.
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 || stats.Truncated != 1 || stats.TruncationRate != 1 {
		t.Errorf("stats completed=%d truncated=%d rate=%v, want 1/1/1",
			stats.Completed, stats.Truncated, stats.TruncationRate)
	}
	if stats.LatencyMaxMS <= 0 || stats.Evals <= 0 {
		t.Errorf("stats latency_max=%v evals=%d, want positive", stats.LatencyMaxMS, stats.Evals)
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	inst := testInstance(t, 50, 8, 2)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 1, MaxRestarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get, err := ts.Client().Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: %d, want 405", get.StatusCode)
	}

	bad, err := ts.Client().Post(ts.URL+"/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: %d, want 400", bad.StatusCode)
	}

	cases := []SolveRequest{
		{Algorithm: "Simplex"},
		{Algorithm: "BLS", Restarts: -1},
		{Algorithm: "BLS", DeadlineMS: -5},
		{Algorithm: "BLS", Restarts: 11}, // above MaxRestarts
	}
	for _, req := range cases {
		status, _, fail := postSolve(t, ts.Client(), ts.URL, req)
		if status != http.StatusBadRequest {
			t.Errorf("%+v: status %d (%s), want 400", req, status, fail.Error)
		}
	}
}

func TestHealthz(t *testing.T) {
	inst := testInstance(t, 50, 8, 2)
	s, err := New(Config{Catalog: catalogFor(t, inst)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("status field %v", body["status"])
	}
	// The probe reports the default instance's corridor-compressed coverage
	// substrate. testInstance registers a dense (uncompressed) universe, so
	// corridors == |T| and the ratio is exactly 1.
	if c, ok := body["corridors"].(float64); !ok || c != 50 {
		t.Errorf("corridors %v, want 50", body["corridors"])
	}
	if r, ok := body["compression_ratio"].(float64); !ok || r != 1.0 {
		t.Errorf("compression_ratio %v, want 1", body["compression_ratio"])
	}
}

// gatedConfig returns a Config whose solves block until the returned
// release function is called, plus a channel that receives one token per
// solve that has started executing.
func gatedConfig(tb testing.TB, inst *core.Instance, workers, queue int) (Config, func(), chan struct{}) {
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	cfg := Config{
		Catalog:    catalogFor(tb, inst),
		Workers:    workers,
		QueueDepth: queue,
		solve: func(ctx context.Context, alg core.Algorithm, in *core.Instance) *core.Anytime {
			started <- struct{}{}
			<-gate
			p := core.NewPlan(in)
			return &core.Anytime{Plan: p, TotalRegret: p.TotalRegret()}
		},
	}
	var once sync.Once
	return cfg, func() { once.Do(func() { close(gate) }) }, started
}

// TestBurstSheds429 drives the pool at 4× its admission capacity: the
// excess must be rejected with 429 immediately (while every admitted solve
// is still blocked), admitted requests must all complete once unblocked,
// and nothing may leak.
func TestBurstSheds429(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	const workers, queue = 2, 2
	capacity := workers + queue // 4
	burst := 4 * capacity       // 16

	cfg, release, started := gatedConfig(t, inst, workers, queue)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	statuses := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: "G-Global"})
			statuses <- status
		}()
	}

	// All worker slots must fill; rejections happen at admission without
	// ever reaching a worker.
	for i := 0; i < workers; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never started")
		}
	}

	// While the gate is closed no admission token can recycle, so exactly
	// the excess must bounce with 429. Collect all of them before opening
	// the gate — releasing earlier would let tokens recycle and admit
	// stragglers.
	var ok, rejected, other int
	for rejected < burst-capacity {
		select {
		case status := <-statuses:
			switch status {
			case http.StatusTooManyRequests:
				rejected++
			case http.StatusOK:
				ok++ // impossible while gated; counted so the final check reports it
			default:
				other++
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled with %d ok / %d rejected / %d other", ok, rejected, other)
		}
	}
	release()
	wg.Wait()
	close(statuses)

	for status := range statuses {
		switch status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			other++
		}
	}
	if ok != capacity || rejected != burst-capacity || other != 0 {
		t.Errorf("burst of %d: %d ok, %d rejected, %d other; want %d/%d/0",
			burst, ok, rejected, other, capacity, burst-capacity)
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Rejected != int64(burst-capacity) || stats.Completed != int64(capacity) {
		t.Errorf("stats rejected=%d completed=%d, want %d/%d",
			stats.Rejected, stats.Completed, burst-capacity, capacity)
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	assertNoGoroutineLeak(t, baseline)
}

// TestGracefulShutdownDrains pins the SIGTERM contract: Shutdown must wait
// for the in-flight solve, the solve must still answer 200, and afterwards
// the listener is closed and no goroutines remain.
func TestGracefulShutdownDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 1, 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	url := "http://" + ln.Addr().String()
	client := &http.Client{}

	solveDone := make(chan int, 1)
	go func() {
		status, _, _ := postSolve(t, client, url, SolveRequest{Algorithm: "G-Order"})
		solveDone <- status
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("solve never started")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- httpSrv.Shutdown(ctx)
	}()

	// Shutdown must block while the solve is in flight.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight solve finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	release()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if status := <-solveDone; status != http.StatusOK {
		t.Errorf("drained solve answered %d, want 200", status)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}

	// The listener is down: new requests must fail to connect.
	if _, err := client.Post(url+"/solve", "application/json", strings.NewReader("{}")); err == nil {
		t.Error("request succeeded after shutdown")
	}

	client.CloseIdleConnections()
	assertNoGoroutineLeak(t, baseline)
}

// TestQueuedClientDisconnect covers the admission path where a queued
// client gives up before a worker frees: the handler must unwind with 499
// without ever occupying a worker slot, and count the request as
// abandoned. The handler is driven directly with a cancellable request
// context — net/http only propagates a real client hang-up after its
// background connection read notices, which is too timing-dependent to
// assert on.
func TestQueuedClientDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inst := testInstance(t, 50, 8, 2)
	cfg, release, started := gatedConfig(t, inst, 1, 2)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(SolveRequest{Algorithm: "G-Global"})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single worker.
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body)))
		first <- rec
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first solve never started")
	}

	// Queue a second request, then cancel its context while it waits for
	// the worker slot.
	reqCtx, cancel := context.WithCancel(context.Background())
	second := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body)).WithContext(reqCtx)
		s.Handler().ServeHTTP(rec, req)
		second <- rec
	}()
	time.Sleep(20 * time.Millisecond) // let it pass admission and block on the worker slot
	cancel()

	select {
	case rec := <-second:
		if rec.Code != statusClientClosedRequest {
			t.Errorf("abandoned request answered %d, want %d", rec.Code, statusClientClosedRequest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned request never unwound")
	}
	if n := s.metrics.abandoned.Value(); n != 1 {
		t.Errorf("abandoned = %d, want 1", n)
	}

	// The worker was never handed to the abandoned request; the first
	// solve still completes normally.
	release()
	select {
	case rec := <-first:
		if rec.Code != http.StatusOK {
			t.Errorf("first solve answered %d", rec.Code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first solve never finished")
	}
	assertNoGoroutineLeak(t, baseline)
}

func TestNewRequiresCatalog(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil catalog accepted")
	}
	if _, err := New(Config{Catalog: catalog.New()}); err == nil {
		t.Fatal("empty catalog accepted")
	}
}

func TestStatsPerAlgorithm(t *testing.T) {
	inst := testInstance(t, 80, 10, 2)
	s, err := New(Config{Catalog: catalogFor(t, inst), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, alg := range []string{"G-Order", "G-Global", "G-Global"} {
		if status, _, fail := postSolve(t, ts.Client(), ts.URL, SolveRequest{Algorithm: alg}); status != 200 {
			t.Fatalf("%s: %d (%s)", alg, status, fail.Error)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", []AlgoCount{{"G-Global", 2}, {"G-Order", 1}})
	if got := fmt.Sprintf("%v", stats.PerAlgorithm); got != want {
		t.Errorf("per_algorithm %s, want %s", got, want)
	}
	if stats.Completed != 3 || stats.Truncated != 0 {
		t.Errorf("completed=%d truncated=%d, want 3/0", stats.Completed, stats.Truncated)
	}
}
