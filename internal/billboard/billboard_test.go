package billboard

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/rng"
)

func sampleDB() *DB {
	return NewDB([]Billboard{
		{Loc: geo.Point{X: 10, Y: 20}},
		{Loc: geo.Point{X: 30, Y: 40}},
		{Loc: geo.Point{X: 50, Y: 60}},
	})
}

func TestNewDBAssignsDenseIDs(t *testing.T) {
	db := sampleDB()
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	for i := 0; i < db.Len(); i++ {
		b := db.At(i)
		if int(b.ID) != i {
			t.Errorf("billboard %d has ID %d", i, b.ID)
		}
		if b.Kind != Static || b.PanelID != -1 || b.Slot != 0 {
			t.Errorf("static billboard %d has digital fields: %+v", i, b)
		}
	}
}

func TestLocations(t *testing.T) {
	db := sampleDB()
	locs := db.Locations()
	if len(locs) != 3 || locs[1] != (geo.Point{X: 30, Y: 40}) {
		t.Errorf("Locations = %v", locs)
	}
}

func TestAssignCosts(t *testing.T) {
	db := sampleDB()
	influences := []int{100, 200, 0}
	if err := db.AssignCosts(influences, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	// w = floor(tau * I/10), tau in [0.9, 1.1).
	if c := db.At(0).Cost; c < 9 || c > 11 {
		t.Errorf("cost[0] = %d, want in [9, 11]", c)
	}
	if c := db.At(1).Cost; c < 18 || c > 22 {
		t.Errorf("cost[1] = %d, want in [18, 22]", c)
	}
	if c := db.At(2).Cost; c != 0 {
		t.Errorf("cost[2] = %d, want 0", c)
	}
	if err := db.AssignCosts([]int{1}, rng.New(1)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAssignCostsDeterministic(t *testing.T) {
	a, b := sampleDB(), sampleDB()
	infl := []int{1000, 2000, 3000}
	if err := a.AssignCosts(infl, rng.New(42)); err != nil {
		t.Fatal(err)
	}
	if err := b.AssignCosts(infl, rng.New(42)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Cost != b.At(i).Cost {
			t.Fatalf("same seed gave different costs at %d", i)
		}
	}
}

func TestExpandDigital(t *testing.T) {
	db := sampleDB()
	out, err := db.ExpandDigital([]int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 { // 2 static + 4 slots
		t.Fatalf("expanded Len = %d, want 6", out.Len())
	}
	slots := 0
	for i := 0; i < out.Len(); i++ {
		b := out.At(i)
		if b.Kind == DigitalSlot {
			slots++
			if b.PanelID != 1 {
				t.Errorf("slot has PanelID %d, want 1", b.PanelID)
			}
			if b.Loc != (geo.Point{X: 30, Y: 40}) {
				t.Errorf("slot moved: %v", b.Loc)
			}
		}
	}
	if slots != 4 {
		t.Errorf("%d slots, want 4", slots)
	}
	if _, err := db.ExpandDigital([]int{0}, 0); err == nil {
		t.Error("slots=0 accepted")
	}
	if _, err := db.ExpandDigital([]int{99}, 2); err == nil {
		t.Error("out-of-range panel accepted")
	}
}

func TestKindString(t *testing.T) {
	if Static.String() != "static" || DigitalSlot.String() != "digital-slot" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown Kind.String should include the value")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := sampleDB()
	if err := db.AssignCosts([]int{100, 200, 300}, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	expanded, err := db.ExpandDigital([]int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, expanded); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != expanded.Len() {
		t.Fatalf("round trip Len = %d, want %d", got.Len(), expanded.Len())
	}
	for i := 0; i < expanded.Len(); i++ {
		a, b := expanded.At(i), got.At(i)
		if a.Kind != b.Kind || a.PanelID != b.PanelID || a.Slot != b.Slot || a.Cost != b.Cost {
			t.Errorf("billboard %d: got %+v, want %+v", i, b, a)
		}
		if a.Loc.Dist(b.Loc) > 0.01 {
			t.Errorf("billboard %d location drifted: %v vs %v", i, b.Loc, a.Loc)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "a,b,c,d,e,f,g\n",
		"wrong cols":   "id,x\n",
		"bad id":       "id,x,y,kind,panel_id,slot,cost\nxx,1,2,0,-1,0,5\n",
		"non-dense id": "id,x,y,kind,panel_id,slot,cost\n1,1,2,0,-1,0,5\n",
		"bad x":        "id,x,y,kind,panel_id,slot,cost\n0,xx,2,0,-1,0,5\n",
		"bad y":        "id,x,y,kind,panel_id,slot,cost\n0,1,xx,0,-1,0,5\n",
		"bad kind":     "id,x,y,kind,panel_id,slot,cost\n0,1,2,9,-1,0,5\n",
		"bad panel":    "id,x,y,kind,panel_id,slot,cost\n0,1,2,0,xx,0,5\n",
		"bad slot":     "id,x,y,kind,panel_id,slot,cost\n0,1,2,0,-1,xx,5\n",
		"bad cost":     "id,x,y,kind,panel_id,slot,cost\n0,1,2,0,-1,0,xx\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV accepted invalid input", name)
		}
	}
}
