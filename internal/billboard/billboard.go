// Package billboard models the host's inventory: billboard locations, the
// influence-proportional cost model of §7.1.2, digital billboards as
// time-sliced virtual billboards (§3.2 Discussion), and a CSV codec.
package billboard

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geo"
	"repro/internal/rng"
)

// Kind distinguishes physical from digital (time-sliced) billboards.
type Kind uint8

const (
	// Static is a conventional billboard showing one ad at a time.
	Static Kind = iota
	// DigitalSlot is one time slot of a digital billboard. The paper
	// treats a digital billboard as "multiple billboards", one per slot;
	// slots of the same panel share a location and a PanelID.
	DigitalSlot
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case DigitalSlot:
		return "digital-slot"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Billboard is one unit the host can assign to an advertiser.
type Billboard struct {
	ID   int32
	Loc  geo.Point
	Kind Kind
	// PanelID groups DigitalSlot billboards belonging to one physical
	// digital panel; -1 for static billboards.
	PanelID int32
	// Slot is the time-slot index within the panel for DigitalSlot
	// billboards; 0 for static billboards.
	Slot int16
	// Cost is the leasing cost w = ⌊τ·I(o)/10⌋ with τ ∈ [0.9, 1.1]
	// (§7.1.2). The regret objective is cost-free (§3.2 Discussion); the
	// cost is carried for reporting and for host-side accounting.
	Cost int64
}

// DB is an immutable collection of billboards addressed by dense IDs
// 0..Len()-1.
type DB struct {
	billboards []Billboard
}

// NewDB assigns dense IDs in slice order and returns the database.
func NewDB(bs []Billboard) *DB {
	for i := range bs {
		bs[i].ID = int32(i)
		if bs[i].Kind == Static {
			bs[i].PanelID = -1
			bs[i].Slot = 0
		}
	}
	return &DB{billboards: bs}
}

// Len returns the number of billboards.
func (db *DB) Len() int { return len(db.billboards) }

// At returns the billboard with the given ID.
func (db *DB) At(id int) *Billboard { return &db.billboards[id] }

// Locations returns the location of every billboard, indexed by ID.
func (db *DB) Locations() []geo.Point {
	pts := make([]geo.Point, len(db.billboards))
	for i := range db.billboards {
		pts[i] = db.billboards[i].Loc
	}
	return pts
}

// AssignCosts sets each billboard's cost from its influence using the
// paper's model w = ⌊τ·I(o)/10⌋, τ uniform in [0.9, 1.1]. influences[i] must
// be I({o_i}) for billboard i.
func (db *DB) AssignCosts(influences []int, r *rng.RNG) error {
	if len(influences) != len(db.billboards) {
		return fmt.Errorf("billboard: %d influences for %d billboards", len(influences), len(db.billboards))
	}
	for i := range db.billboards {
		tau := r.Range(0.9, 1.1)
		db.billboards[i].Cost = int64(tau * float64(influences[i]) / 10)
	}
	return nil
}

// ExpandDigital returns a new DB in which each listed panel (an index into
// db) is replaced by `slots` DigitalSlot billboards at the same location.
// Billboards not listed are copied through as-is. This implements the
// paper's treatment of digital billboards as multiple billboards, one per
// time slot; the influence model later scales a slot's coverage by its share
// of the day.
func (db *DB) ExpandDigital(panels []int, slots int) (*DB, error) {
	if slots < 1 {
		return nil, fmt.Errorf("billboard: slots %d < 1", slots)
	}
	isPanel := make(map[int]bool, len(panels))
	for _, p := range panels {
		if p < 0 || p >= db.Len() {
			return nil, fmt.Errorf("billboard: panel index %d out of range", p)
		}
		isPanel[p] = true
	}
	out := make([]Billboard, 0, db.Len()+len(panels)*(slots-1))
	for i := range db.billboards {
		b := db.billboards[i]
		if !isPanel[i] {
			out = append(out, b)
			continue
		}
		for s := 0; s < slots; s++ {
			slot := b
			slot.Kind = DigitalSlot
			slot.PanelID = int32(i)
			slot.Slot = int16(s)
			out = append(out, slot)
		}
	}
	return NewDB(out), nil
}

var csvHeader = []string{"id", "x", "y", "kind", "panel_id", "slot", "cost"}

// WriteCSV serializes the database to w.
func WriteCSV(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("billboard: write header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i := range db.billboards {
		b := &db.billboards[i]
		row[0] = strconv.Itoa(int(b.ID))
		row[1] = strconv.FormatFloat(b.Loc.X, 'f', 2, 64)
		row[2] = strconv.FormatFloat(b.Loc.Y, 'f', 2, 64)
		row[3] = strconv.Itoa(int(b.Kind))
		row[4] = strconv.Itoa(int(b.PanelID))
		row[5] = strconv.Itoa(int(b.Slot))
		row[6] = strconv.FormatInt(b.Cost, 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("billboard: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a database written by WriteCSV.
func ReadCSV(r io.Reader) (*DB, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("billboard: read header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("billboard: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("billboard: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var bs []Billboard
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("billboard: read: %w", err)
		}
		line++
		id, err := strconv.Atoi(rec[0])
		if err != nil || id != len(bs) {
			return nil, fmt.Errorf("billboard: line %d: bad or non-dense id %q", line, rec[0])
		}
		x, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("billboard: line %d: bad x %q", line, rec[1])
		}
		y, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("billboard: line %d: bad y %q", line, rec[2])
		}
		kind, err := strconv.Atoi(rec[3])
		if err != nil || kind > int(DigitalSlot) || kind < 0 {
			return nil, fmt.Errorf("billboard: line %d: bad kind %q", line, rec[3])
		}
		panel, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("billboard: line %d: bad panel_id %q", line, rec[4])
		}
		slot, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("billboard: line %d: bad slot %q", line, rec[5])
		}
		cost, err := strconv.ParseInt(rec[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("billboard: line %d: bad cost %q", line, rec[6])
		}
		bs = append(bs, Billboard{
			Loc:     geo.Point{X: x, Y: y},
			Kind:    Kind(kind),
			PanelID: int32(panel),
			Slot:    int16(slot),
			Cost:    cost,
		})
	}
	return NewDB(bs), nil
}
