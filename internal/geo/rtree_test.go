package geo

import (
	"testing"

	"repro/internal/rng"
)

func randomPoints(seed uint64, n int, w, h float64) []Point {
	r := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Range(0, w), r.Range(0, h)}
	}
	return pts
}

func TestRTreeEmpty(t *testing.T) {
	tr := NewRTree(nil)
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Fatal("empty tree dims wrong")
	}
	if got := tr.Within(Point{0, 0}, 10, nil); len(got) != 0 {
		t.Fatal("empty tree returned results")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeSinglePoint(t *testing.T) {
	tr := NewRTree([]Point{{5, 5}})
	if tr.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", tr.Depth())
	}
	if got := tr.Within(Point{5, 5}, 0, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Within = %v", got)
	}
	if got := tr.Within(Point{6, 5}, 0.5, nil); len(got) != 0 {
		t.Fatalf("far query = %v", got)
	}
}

func TestRTreeValidate(t *testing.T) {
	for _, n := range []int{1, 15, 16, 17, 100, 1000, 5000} {
		tr := NewRTree(randomPoints(uint64(n), n, 10000, 8000))
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
	}
}

func TestRTreeDepthLogarithmic(t *testing.T) {
	tr := NewRTree(randomPoints(9, 10000, 10000, 10000))
	// fan-out 16: 10000 points → ⌈log16(625)⌉+1 ≈ 4 levels.
	if d := tr.Depth(); d < 2 || d > 5 {
		t.Fatalf("Depth = %d, want 2..5 for 10k points", d)
	}
}

func TestRTreeMatchesBruteForceAndGrid(t *testing.T) {
	points := randomPoints(42, 3000, 5000, 3000)
	tr := NewRTree(points)
	g := NewGrid(points, 150)
	r := rng.New(7)
	for trial := 0; trial < 60; trial++ {
		q := Point{r.Range(-300, 5300), r.Range(-300, 3300)}
		radius := r.Range(0, 500)
		want := bruteWithin(points, q, radius)
		gotTree := tr.Within(q, radius, nil)
		if len(gotTree) != len(want) {
			t.Fatalf("trial %d: rtree %d hits, brute %d", trial, len(gotTree), len(want))
		}
		for _, id := range gotTree {
			if !want[id] {
				t.Fatalf("trial %d: rtree returned wrong id %d", trial, id)
			}
		}
		gotGrid := g.Within(q, radius, nil)
		if len(gotGrid) != len(gotTree) {
			t.Fatalf("trial %d: grid %d hits, rtree %d", trial, len(gotGrid), len(gotTree))
		}
	}
}

func TestRTreeNegativeRadius(t *testing.T) {
	tr := NewRTree([]Point{{0, 0}})
	if got := tr.Within(Point{0, 0}, -1, nil); len(got) != 0 {
		t.Fatal("negative radius returned results")
	}
}

func TestRTreeCoincidentPoints(t *testing.T) {
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{1, 1}
	}
	tr := NewRTree(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Within(Point{1, 1}, 0, nil); len(got) != 100 {
		t.Fatalf("coincident points: %d hits, want 100", len(got))
	}
}

func BenchmarkRTreeBuild(b *testing.B) {
	points := randomPoints(1, 100000, 20000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewRTree(points)
	}
}

func BenchmarkRTreeWithin(b *testing.B) {
	points := randomPoints(1, 100000, 20000, 20000)
	tr := NewRTree(points)
	r := rng.New(2)
	buf := make([]int32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Point{r.Range(0, 20000), r.Range(0, 20000)}
		buf = tr.Within(q, 100, buf[:0])
	}
}
