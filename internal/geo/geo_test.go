package geo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1, 1}, Point{1, 2}, 1},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestDistSymmetricAndNonNegative(t *testing.T) {
	check := func(ax, ay, bx, by float64) bool {
		p, q := Point{ax, ay}, Point{bx, by}
		d1, d2 := p.Dist(q), q.Dist(p)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	check := func(ax, ay, bx, by int16) bool {
		p, q := Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}
		d := p.Dist(q)
		return math.Abs(p.Dist2(q)-d*d) < 1e-6*(1+d*d)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{0, 4})
	if r.Min != (Point{0, 1}) || r.Max != (Point{5, 4}) {
		t.Fatalf("NewRect normalized corners wrong: %+v", r)
	}
	if !r.Contains(Point{2, 2}) || !r.Contains(Point{0, 1}) || !r.Contains(Point{5, 4}) {
		t.Error("Contains should include interior and boundary")
	}
	if r.Contains(Point{-0.1, 2}) || r.Contains(Point{2, 4.1}) {
		t.Error("Contains should exclude exterior")
	}
	if r.Width() != 5 || r.Height() != 3 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	e := r.Expand(1)
	if e.Min != (Point{-1, 0}) || e.Max != (Point{6, 5}) {
		t.Errorf("Expand = %+v", e)
	}
	u := r.Union(NewRect(Point{-2, -2}, Point{1, 1}))
	if u.Min != (Point{-2, -2}) || u.Max != (Point{5, 4}) {
		t.Errorf("Union = %+v", u)
	}
}

func TestBoundingRect(t *testing.T) {
	empty := BoundingRect(nil)
	if empty.Max.X >= empty.Min.X {
		t.Error("empty bounding rect should be empty")
	}
	pts := []Point{{1, 5}, {-3, 2}, {4, -1}}
	r := BoundingRect(pts)
	if r.Min != (Point{-3, -1}) || r.Max != (Point{4, 5}) {
		t.Errorf("BoundingRect = %+v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect excludes its own point %v", p)
		}
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("PathLength(nil) = %v", got)
	}
	if got := PathLength([]Point{{0, 0}}); got != 0 {
		t.Errorf("PathLength(single) = %v", got)
	}
	got := PathLength([]Point{{0, 0}, {3, 4}, {3, 10}})
	if math.Abs(got-11) > 1e-12 {
		t.Errorf("PathLength = %v, want 11", got)
	}
}

// bruteWithin is the O(n) reference for grid queries.
func bruteWithin(points []Point, q Point, r float64) map[int32]bool {
	out := map[int32]bool{}
	for i, p := range points {
		if p.Dist(q) <= r {
			out[int32(i)] = true
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	r := rng.New(77)
	points := make([]Point, 2000)
	for i := range points {
		points[i] = Point{r.Range(0, 5000), r.Range(0, 3000)}
	}
	for _, cell := range []float64{25, 100, 400, 1000} {
		g := NewGrid(points, cell)
		for trial := 0; trial < 50; trial++ {
			q := Point{r.Range(-200, 5200), r.Range(-200, 3200)}
			radius := r.Range(0, 600)
			want := bruteWithin(points, q, radius)
			got := g.Within(q, radius, nil)
			if len(got) != len(want) {
				t.Fatalf("cell=%v: Within returned %d ids, want %d", cell, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("cell=%v: Within returned wrong id %d", cell, id)
				}
			}
			if g.AnyWithin(q, radius) != (len(want) > 0) {
				t.Fatalf("cell=%v: AnyWithin disagrees with Within", cell)
			}
		}
	}
}

func TestGridEmptyAndDegenerate(t *testing.T) {
	g := NewGrid(nil, 100)
	if got := g.Within(Point{0, 0}, 50, nil); len(got) != 0 {
		t.Errorf("empty grid returned %d ids", len(got))
	}
	if g.AnyWithin(Point{0, 0}, 50) {
		t.Error("empty grid AnyWithin = true")
	}
	// All points identical: a single cell.
	pts := []Point{{1, 1}, {1, 1}, {1, 1}}
	g = NewGrid(pts, 10)
	if got := g.Within(Point{1, 1}, 0, nil); len(got) != 3 {
		t.Errorf("coincident points: got %d, want 3", len(got))
	}
	if got := g.Within(Point{5, 5}, 1, nil); len(got) != 0 {
		t.Errorf("far query: got %d, want 0", len(got))
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGrid([]Point{{0, 0}}, 10)
	if got := g.Within(Point{0, 0}, -1, nil); len(got) != 0 {
		t.Errorf("negative radius returned %d ids", len(got))
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	g := NewGrid([]Point{{0, 0}, {100, 0}}, 50)
	got := g.Within(Point{50, 0}, 50, nil)
	if len(got) != 2 {
		t.Errorf("boundary radius: got %d hits, want 2 (inclusive)", len(got))
	}
}

func TestGridPanicsOnBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(cellSize=0) did not panic")
		}
	}()
	NewGrid([]Point{{0, 0}}, 0)
}

func TestGridDstReuse(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 0}}
	g := NewGrid(pts, 1)
	buf := make([]int32, 0, 8)
	got := g.Within(Point{0, 0}, 1.5, buf)
	if len(got) != 2 {
		t.Fatalf("got %d ids, want 2", len(got))
	}
}

func BenchmarkGridBuild(b *testing.B) {
	r := rng.New(1)
	points := make([]Point, 100000)
	for i := range points {
		points[i] = Point{r.Range(0, 20000), r.Range(0, 20000)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewGrid(points, 100)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	r := rng.New(1)
	points := make([]Point, 100000)
	for i := range points {
		points[i] = Point{r.Range(0, 20000), r.Range(0, 20000)}
	}
	g := NewGrid(points, 100)
	buf := make([]int32, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Point{r.Range(0, 20000), r.Range(0, 20000)}
		buf = g.Within(q, 100, buf[:0])
	}
}
