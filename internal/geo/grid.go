package geo

import (
	"fmt"
	"math"
)

// Grid is a uniform grid spatial index over a fixed set of points. It answers
// radius queries ("which points lie within λ meters of q?") by scanning only
// the cells overlapping the query disk.
//
// The influence model uses one Grid over all trajectory points of a dataset;
// with cell size close to the query radius a query touches at most 9 cells.
// Build cost is O(n), memory is O(n + cells).
type Grid struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	// cellStart[c] .. cellStart[c+1] delimit the ids of the points in cell c
	// inside the flat ids slice (counting-sort layout; no per-cell slices).
	cellStart []int32
	ids       []int32
	points    []Point
}

// NewGrid indexes the given points with the given cell size (meters). The
// point slice is retained (not copied); callers must not mutate it afterwards.
// NewGrid panics if cellSize <= 0.
func NewGrid(points []Point, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic(fmt.Sprintf("geo: NewGrid cell size %v <= 0", cellSize))
	}
	g := &Grid{cellSize: cellSize, points: points}
	g.bounds = BoundingRect(points)
	if len(points) == 0 {
		g.cols, g.rows = 1, 1
		g.cellStart = make([]int32, 2)
		return g
	}
	g.cols = int(math.Floor(g.bounds.Width()/cellSize)) + 1
	g.rows = int(math.Floor(g.bounds.Height()/cellSize)) + 1
	nCells := g.cols * g.rows

	counts := make([]int32, nCells+1)
	for _, p := range points {
		counts[g.cellOf(p)+1]++
	}
	for c := 0; c < nCells; c++ {
		counts[c+1] += counts[c]
	}
	g.cellStart = counts
	g.ids = make([]int32, len(points))
	cursor := make([]int32, nCells)
	for i, p := range points {
		c := g.cellOf(p)
		g.ids[g.cellStart[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	return g
}

// cellOf returns the flat cell index containing p. Points on the far
// boundary land in the last row/column by construction of cols/rows.
func (g *Grid) cellOf(p Point) int {
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }

// CellSize returns the configured cell size in meters.
func (g *Grid) CellSize() float64 { return g.cellSize }

// Within appends to dst the indices of all points within radius r of q and
// returns the extended slice. Indices refer to the slice passed to NewGrid.
// The order of results is unspecified. Pass dst = nil to allocate.
func (g *Grid) Within(q Point, r float64, dst []int32) []int32 {
	if len(g.points) == 0 || r < 0 {
		return dst
	}
	r2 := r * r
	minCX := int(math.Floor((q.X - r - g.bounds.Min.X) / g.cellSize))
	maxCX := int(math.Floor((q.X + r - g.bounds.Min.X) / g.cellSize))
	minCY := int(math.Floor((q.Y - r - g.bounds.Min.Y) / g.cellSize))
	maxCY := int(math.Floor((q.Y + r - g.bounds.Min.Y) / g.cellSize))
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			c := cy*g.cols + cx
			for _, id := range g.ids[g.cellStart[c]:g.cellStart[c+1]] {
				if g.points[id].Dist2(q) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// AnyWithin reports whether any indexed point lies within radius r of q.
// It short-circuits on the first hit, making it cheaper than Within when
// only existence matters.
func (g *Grid) AnyWithin(q Point, r float64) bool {
	if len(g.points) == 0 || r < 0 {
		return false
	}
	r2 := r * r
	minCX := int(math.Floor((q.X - r - g.bounds.Min.X) / g.cellSize))
	maxCX := int(math.Floor((q.X + r - g.bounds.Min.X) / g.cellSize))
	minCY := int(math.Floor((q.Y - r - g.bounds.Min.Y) / g.cellSize))
	maxCY := int(math.Floor((q.Y + r - g.bounds.Min.Y) / g.cellSize))
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			c := cy*g.cols + cx
			for _, id := range g.ids[g.cellStart[c]:g.cellStart[c+1]] {
				if g.points[id].Dist2(q) <= r2 {
					return true
				}
			}
		}
	}
	return false
}
