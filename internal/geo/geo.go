// Package geo provides the planar geometry primitives used by the influence
// model: points in a local meter-based coordinate system, distances, bounding
// boxes and a uniform grid index for radius queries.
//
// The paper measures billboard influence with a Euclidean distance threshold
// λ (meters) between a trajectory point and a billboard location (§7.1.2).
// Rather than carrying latitude/longitude and great-circle math everywhere,
// datasets in this repository are generated directly in a city-local planar
// frame whose unit is one meter; Euclidean distance in that frame is then
// exactly the dist(·) of the paper.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the city-local planar frame, in meters.
type Point struct {
	X float64
	Y float64
}

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids the
// square root in radius tests: p.Dist2(q) <= r*r  iff  p.Dist(q) <= r.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned bounding box. Min is the lower-left corner and Max
// the upper-right; a Rect with Max < Min on either axis is empty.
type Rect struct {
	Min Point
	Max Point
}

// NewRect returns the rectangle spanning the two corner points in either order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Expand returns r grown by d meters on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// BoundingRect returns the bounding box of the points, or an empty Rect if
// pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{Min: Point{0, 0}, Max: Point{-1, -1}}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}

// PathLength returns the total polyline length of the points in meters.
func PathLength(pts []Point) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}
