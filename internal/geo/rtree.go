package geo

import (
	"fmt"
	"math"
	"sort"
)

// RTree is a static R-tree over points, bulk-loaded with the Sort-Tile-
// Recursive (STR) packing of Leutenegger et al. It answers the same radius
// queries as Grid and exists as the classical database alternative: STR
// packing gives near-perfect node utilization and needs no tuning, whereas
// the grid needs a cell size matched to the query radius. The influence
// model defaults to the grid; BenchmarkAblation_SpatialIndex compares them.
type RTree struct {
	points []Point
	nodes  []rtreeNode
	perm   []int32 // STR-permuted point ids referenced by leaves
	root   int32   // index into nodes, -1 when empty
	leafM  int     // max entries per leaf
}

// rtreeNode is one internal or leaf node. Leaves reference a contiguous
// range of the permuted point order; internal nodes reference child nodes.
type rtreeNode struct {
	box      Rect
	children []int32 // node indices; nil for leaves
	from, to int32   // leaf point range [from, to) into perm
}

// rtreeEntry pairs a point with its original index during packing.
type rtreeEntry struct {
	id int32
	p  Point
}

// rtreeDefaultM is the node fan-out.
const rtreeDefaultM = 16

// NewRTree bulk-loads a static R-tree over the points with STR packing.
// The point slice is retained; callers must not mutate it afterwards.
func NewRTree(points []Point) *RTree {
	t := &RTree{points: points, root: -1, leafM: rtreeDefaultM}
	n := len(points)
	if n == 0 {
		return t
	}
	entries := make([]rtreeEntry, n)
	for i, p := range points {
		entries[i] = rtreeEntry{id: int32(i), p: p}
	}

	// STR leaf packing: sort by x, slice into vertical strips of
	// ⌈√(n/M)⌉ · M points, sort each strip by y, and cut leaves of M.
	m := t.leafM
	leafCount := (n + m - 1) / m
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	stripSize := stripCount * m

	sort.Slice(entries, func(i, j int) bool { return entries[i].p.X < entries[j].p.X })
	var leaves []int32
	t.perm = make([]int32, n)
	cursor := int32(0)
	for s := 0; s < n; s += stripSize {
		end := s + stripSize
		if end > n {
			end = n
		}
		strip := entries[s:end]
		sort.Slice(strip, func(i, j int) bool { return strip[i].p.Y < strip[j].p.Y })
		for l := 0; l < len(strip); l += m {
			lend := l + m
			if lend > len(strip) {
				lend = len(strip)
			}
			from := cursor
			box := Rect{Min: strip[l].p, Max: strip[l].p}
			for _, e := range strip[l:lend] {
				t.perm[cursor] = e.id
				cursor++
				box = box.Union(Rect{Min: e.p, Max: e.p})
			}
			t.nodes = append(t.nodes, rtreeNode{box: box, from: from, to: cursor})
			leaves = append(leaves, int32(len(t.nodes)-1))
		}
	}

	// Pack upper levels the same way on node centers until one root.
	level := leaves
	for len(level) > 1 {
		level = t.packLevel(level)
	}
	t.root = level[0]
	return t
}

// packLevel groups the given node indices into parents of fan-out M using
// STR on the nodes' box centers and returns the parent indices.
func (t *RTree) packLevel(level []int32) []int32 {
	m := t.leafM
	n := len(level)
	parentCount := (n + m - 1) / m
	stripCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	stripSize := stripCount * m

	centerX := func(i int32) float64 {
		b := t.nodes[i].box
		return (b.Min.X + b.Max.X) / 2
	}
	centerY := func(i int32) float64 {
		b := t.nodes[i].box
		return (b.Min.Y + b.Max.Y) / 2
	}
	sorted := append([]int32(nil), level...)
	sort.Slice(sorted, func(i, j int) bool { return centerX(sorted[i]) < centerX(sorted[j]) })

	var parents []int32
	for s := 0; s < n; s += stripSize {
		end := s + stripSize
		if end > n {
			end = n
		}
		strip := sorted[s:end]
		sort.Slice(strip, func(i, j int) bool { return centerY(strip[i]) < centerY(strip[j]) })
		for l := 0; l < len(strip); l += m {
			lend := l + m
			if lend > len(strip) {
				lend = len(strip)
			}
			children := append([]int32(nil), strip[l:lend]...)
			box := t.nodes[children[0]].box
			for _, c := range children[1:] {
				box = box.Union(t.nodes[c].box)
			}
			t.nodes = append(t.nodes, rtreeNode{box: box, children: children})
			parents = append(parents, int32(len(t.nodes)-1))
		}
	}
	return parents
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return len(t.points) }

// Within appends the indices of all points within radius r of q to dst.
func (t *RTree) Within(q Point, r float64, dst []int32) []int32 {
	if t.root < 0 || r < 0 {
		return dst
	}
	r2 := r * r
	var visit func(ni int32)
	visit = func(ni int32) {
		node := &t.nodes[ni]
		if !circleIntersectsRect(q, r2, node.box) {
			return
		}
		if node.children == nil {
			for _, id := range t.perm[node.from:node.to] {
				if t.points[id].Dist2(q) <= r2 {
					dst = append(dst, id)
				}
			}
			return
		}
		for _, c := range node.children {
			visit(c)
		}
	}
	visit(t.root)
	return dst
}

// circleIntersectsRect reports whether the disk centered at q with squared
// radius r2 intersects box.
func circleIntersectsRect(q Point, r2 float64, box Rect) bool {
	dx := 0.0
	if q.X < box.Min.X {
		dx = box.Min.X - q.X
	} else if q.X > box.Max.X {
		dx = q.X - box.Max.X
	}
	dy := 0.0
	if q.Y < box.Min.Y {
		dy = box.Min.Y - q.Y
	} else if q.Y > box.Max.Y {
		dy = q.Y - box.Max.Y
	}
	return dx*dx+dy*dy <= r2
}

// Depth returns the tree height (0 for an empty tree, 1 for a single leaf).
func (t *RTree) Depth() int {
	if t.root < 0 {
		return 0
	}
	depth := 1
	ni := t.root
	for t.nodes[ni].children != nil {
		ni = t.nodes[ni].children[0]
		depth++
	}
	return depth
}

// Validate checks structural invariants: every child box is contained in
// its parent box and every point is inside its leaf box. It exists for
// tests.
func (t *RTree) Validate() error {
	if t.root < 0 {
		if len(t.points) != 0 {
			return fmt.Errorf("geo: rtree has points but no root")
		}
		return nil
	}
	seen := make([]bool, len(t.points))
	var visit func(ni int32) error
	visit = func(ni int32) error {
		node := &t.nodes[ni]
		if node.children == nil {
			for _, id := range t.perm[node.from:node.to] {
				if !node.box.Contains(t.points[id]) {
					return fmt.Errorf("geo: point %d outside its leaf box", id)
				}
				if seen[id] {
					return fmt.Errorf("geo: point %d in two leaves", id)
				}
				seen[id] = true
			}
			return nil
		}
		for _, c := range node.children {
			cb := t.nodes[c].box
			if !node.box.Contains(cb.Min) || !node.box.Contains(cb.Max) {
				return fmt.Errorf("geo: child box escapes parent")
			}
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(t.root); err != nil {
		return err
	}
	for id, s := range seen {
		if !s {
			return fmt.Errorf("geo: point %d missing from tree", id)
		}
	}
	return nil
}
