package coverage

import "fmt"

// UnionCountK evaluates the impression-count influence I_k(S) from scratch:
// the number of trajectories covered by at least k of the given billboards
// (Zhang et al., KDD 2019, the alternative measurement the paper cites in
// §2.2). With k = 1 it equals UnionCount. It is the reference evaluator for
// Counters built with NewCounterWithThreshold.
func (u *Universe) UnionCountK(billboards []int, k int) int {
	if k < 1 {
		panic(fmt.Sprintf("coverage: impression threshold %d < 1", k))
	}
	counts := make([]int32, u.numIDs)
	covered := 0
	for _, b := range billboards {
		for _, t := range u.lists[b] {
			counts[t]++
			if counts[t] == int32(k) {
				covered += u.Weight(t)
			}
		}
	}
	return covered
}
