package coverage

// Corridor pre-aggregation. Two trajectories with the same coverage
// signature — covered by exactly the same billboards — are interchangeable
// to every algorithm in this repository: I(S) only asks how many
// trajectories the union covers, never which. Compress exploits this by
// collapsing each signature class into one weighted "corridor" ID, shrinking
// the coverage ID space from |T| to the number of distinct signatures. In
// gridded synthetic data (and the corridor-following movement of the real
// datasets) that is a 4–50× reduction: every bus rider boarding and
// alighting at the same pair of stops shares one corridor.
//
// Correctness is by construction, not approximation. For any billboard set S
//
//	I(S) = |⋃_{b∈S} cover(b)| = Σ_{corridors c hit by S} weight(c)
//
// because the signature classes partition the covered trajectories and a
// corridor is hit by S iff each of its trajectories is covered by S. Degree,
// MaxDegree, TotalSupply, Counter gains/losses and every CELF bound are
// therefore bit-identical between the substrates, and so are the solver's
// plans: tie-breaks compare billboard IDs and influence values only, never
// raw trajectory IDs.

import (
	"fmt"
	"slices"
)

// CompressionStats reports what corridor compression achieved on one
// universe.
type CompressionStats struct {
	// RawTrajectories is |T| of the source universe, including
	// trajectories covered by no billboard.
	RawTrajectories int `json:"raw_trajectories"`
	// Covered is the number of raw trajectories with non-empty coverage —
	// the only ones that need a corridor.
	Covered int `json:"covered_trajectories"`
	// Corridors is the number of distinct coverage signatures: the size of
	// the compressed ID space.
	Corridors int `json:"corridors"`
	// Ratio is RawTrajectories / Corridors — how much smaller every
	// per-ID array and bitset becomes (1 when nothing compressed).
	Ratio float64 `json:"compression_ratio"`
}

// statsFor fills the derived Ratio field.
func statsFor(raw, covered, corridors int) CompressionStats {
	s := CompressionStats{RawTrajectories: raw, Covered: covered, Corridors: corridors}
	if corridors > 0 {
		s.Ratio = float64(raw) / float64(corridors)
	} else {
		s.Ratio = 1
	}
	return s
}

// Compress returns a corridor-compressed universe equivalent to u: same
// billboards, same influence for every billboard set, but with trajectories
// of identical coverage signature collapsed into single weighted corridor
// IDs. A universe that is already compressed is returned unchanged.
//
// Corridor IDs are assigned in ascending order of each class's smallest raw
// trajectory ID, so the result is deterministic and independent of internal
// grouping order.
func Compress(u *Universe) (*Universe, CompressionStats) {
	if u.weights != nil {
		var covered int64
		for _, w := range u.weights {
			covered += int64(w)
		}
		return u, statsFor(u.numTrajectories, int(covered), u.numIDs)
	}

	// Invert the billboard→trajectory lists into one CSR signature table:
	// sig(t) = ascending billboard IDs covering t. Iterating billboards in
	// ascending order builds each row already sorted.
	n := u.numIDs
	deg := make([]int32, n)
	for _, l := range u.lists {
		for _, t := range l {
			deg[t]++
		}
	}
	offsets := make([]int64, n+1)
	for t := 0; t < n; t++ {
		offsets[t+1] = offsets[t] + int64(deg[t])
	}
	sig := make([]int32, offsets[n])
	fill := make([]int64, n)
	copy(fill, offsets[:n])
	for b, l := range u.lists {
		for _, t := range l {
			sig[fill[t]] = int32(b)
			fill[t]++
		}
	}
	sigOf := func(t int32) []int32 { return sig[offsets[t]:offsets[t+1]] }

	// Group trajectories by signature: hash buckets, then exact
	// verification inside each bucket so collisions can never merge two
	// distinct signatures. Bucket members arrive in ascending trajectory
	// order, so each class's first member is its smallest.
	buckets := make(map[uint64][]int32, n)
	covered := 0
	for t := int32(0); int(t) < n; t++ {
		s := sigOf(t)
		if len(s) == 0 {
			continue // uncovered: contributes to no influence, needs no ID
		}
		covered++
		h := hashSignature(s)
		buckets[h] = append(buckets[h], t)
	}

	type class struct {
		rep     int32 // smallest member trajectory: the ID-order key
		members int32
	}
	var classes []class
	for _, bucket := range buckets {
		// Nearly every bucket is a single class; the quadratic split only
		// runs across genuinely colliding signatures.
		for len(bucket) > 0 {
			rep := bucket[0]
			repSig := sigOf(rep)
			members := int32(0)
			rest := bucket[:0]
			for _, t := range bucket {
				if slices.Equal(sigOf(t), repSig) {
					members++
				} else {
					rest = append(rest, t)
				}
			}
			classes = append(classes, class{rep: rep, members: members})
			bucket = rest
		}
	}
	slices.SortFunc(classes, func(a, b class) int { return int(a.rep - b.rep) })

	// Emit corridor-ID lists: walking classes in corridor-ID order appends
	// ascending IDs to every billboard, so the new lists are born sorted.
	weights := make([]int32, len(classes))
	newLists := make([]List, len(u.lists))
	newDeg := make([]int32, len(u.lists))
	for _, cl := range classes {
		for _, b := range sigOf(cl.rep) {
			newDeg[b]++
		}
	}
	for b := range newLists {
		newLists[b] = make(List, 0, newDeg[b])
	}
	for cid, cl := range classes {
		weights[cid] = cl.members
		for _, b := range sigOf(cl.rep) {
			newLists[b] = append(newLists[b], int32(cid))
		}
	}

	cu, err := NewWeightedUniverse(u.numTrajectories, newLists, weights)
	if err != nil {
		panic(fmt.Sprintf("coverage: Compress produced invalid universe: %v", err))
	}
	// The compressed substrate must preserve every per-billboard influence
	// exactly; a mismatch means the grouping above is wrong, and silently
	// returning it would corrupt every downstream solve.
	for b := range u.lists {
		if cu.Degree(b) != u.Degree(b) {
			panic(fmt.Sprintf("coverage: Compress changed Degree(%d): %d != %d", b, cu.Degree(b), u.Degree(b)))
		}
	}
	return cu, statsFor(u.numTrajectories, covered, len(classes))
}

// hashSignature is FNV-1a over the signature's billboard IDs.
func hashSignature(s []int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range s {
		v := uint32(b)
		for i := 0; i < 4; i++ {
			h ^= uint64(v & 0xff)
			h *= prime64
			v >>= 8
		}
	}
	return h
}
