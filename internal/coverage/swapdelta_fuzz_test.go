package coverage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// decodeSwapCase deterministically builds a universe, a counter state and a
// swap (out, in) pair from fuzz bytes. Returns ok=false when the bytes
// cannot yield a legal swap (no member or no non-member).
func decodeSwapCase(data []byte) (c *Counter, out, in int, ok bool) {
	if len(data) < 4 {
		return nil, 0, 0, false
	}
	const nBB = 6
	nTraj := 1 + int(data[0])%48
	k := 1 + int(data[1])%3
	memberMask := data[2]
	sel := data[3]
	raw := make([][]int32, nBB)
	for i, v := range data[4:] {
		raw[i%nBB] = append(raw[i%nBB], int32(int(v)%nTraj))
	}
	lists := make([]List, nBB)
	for b := range lists {
		lists[b] = NewList(raw[b])
	}
	c = NewCounterWithThreshold(MustUniverse(nTraj, lists), k)
	var members, rest []int
	for b := 0; b < nBB; b++ {
		if memberMask>>uint(b)&1 == 1 {
			c.Add(b)
			members = append(members, b)
		} else {
			rest = append(rest, b)
		}
	}
	if len(members) == 0 || len(rest) == 0 {
		return nil, 0, 0, false
	}
	return c, members[int(sel&0x0f)%len(members)], rest[int(sel>>4)%len(rest)], true
}

// FuzzSwapDeltaMerge cross-checks Counter.SwapDelta's linear merge walk
// against two independent oracles on fuzz-built universes and thresholds:
// a binary-search formulation (List.Contains, skipping shared
// trajectories) and the ground truth of mutating a cloned counter. The
// query must also leave the counter untouched.
func FuzzSwapDeltaMerge(f *testing.F) {
	for _, seed := range swapDeltaSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, out, in, ok := decodeSwapCase(data)
		if !ok {
			return
		}
		before := c.Covered()
		got := c.SwapDelta(out, in)

		// Oracle 1: per-trajectory binary search, skipping trajectories
		// covered by both billboards (their impression count is unchanged).
		outList, inList := c.Universe().List(out), c.Universe().List(in)
		want := 0
		for _, tr := range outList {
			if inList.Contains(tr) {
				continue
			}
			if c.counts[tr] == c.k {
				want--
			}
		}
		for _, tr := range inList {
			if outList.Contains(tr) {
				continue
			}
			if c.counts[tr] == c.k-1 {
				want++
			}
		}
		if got != want {
			t.Fatalf("SwapDelta(%d, %d) = %d, binary-search oracle %d (k=%d, data=%v)",
				out, in, got, want, c.k, data)
		}

		// Oracle 2: actually perform the swap on a clone.
		cl := c.Clone()
		cl.Remove(out)
		cl.Add(in)
		if truth := cl.Covered() - before; got != truth {
			t.Fatalf("SwapDelta(%d, %d) = %d, mutation ground truth %d (k=%d, data=%v)",
				out, in, got, truth, c.k, data)
		}

		// The query is advertised as non-mutating.
		if c.Covered() != before {
			t.Fatalf("SwapDelta mutated the counter: covered %d -> %d", before, c.Covered())
		}
	})
}

// swapDeltaSeeds hand-picks inputs that exercise every merge-walk branch:
// disjoint lists, identical lists, partial overlap, k>1, and tails where
// one list outlives the other.
func swapDeltaSeeds() [][]byte {
	return [][]byte{
		// nTraj=11, k=1, members={0}, swap 0 for 1; disjoint short lists.
		{10, 0, 0x01, 0x00, 1, 2, 3, 4, 5, 6},
		// Identical coverage for every billboard (delta must be 0).
		{10, 0, 0x03, 0x00, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		// k=2 with heavy overlap across members.
		{20, 1, 0x07, 0x10, 3, 3, 3, 9, 9, 9, 14, 14, 14, 3, 9, 14},
		// Long in-list tail after the out-list is exhausted.
		{40, 0, 0x01, 0x00, 1, 5, 9, 13, 17, 21, 25, 29, 33, 37, 2, 6},
		// Everything assigned except one billboard; k=3.
		{30, 2, 0x3e, 0x21, 8, 8, 8, 8, 8, 16, 16, 16, 16, 16, 24, 24},
	}
}

// TestRegenerateFuzzSwapCorpus mirrors core's corpus regeneration: with
// UPDATE_FUZZ_CORPUS=1 it rewrites testdata/fuzz/FuzzSwapDeltaMerge;
// otherwise it fails if the checked-in corpus went missing.
func TestRegenerateFuzzSwapCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSwapDeltaMerge")
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("fuzz seed corpus %s missing; regenerate with UPDATE_FUZZ_CORPUS=1 go test -run TestRegenerate", dir)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range swapDeltaSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
