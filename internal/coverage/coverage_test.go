package coverage

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustU(t *testing.T, n int, lists []List) *Universe {
	t.Helper()
	u, err := NewUniverse(n, lists)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestNewListSortsAndDedups(t *testing.T) {
	l := NewList([]int32{5, 1, 3, 1, 5, 2})
	want := []int32{1, 2, 3, 5}
	if len(l) != len(want) {
		t.Fatalf("NewList = %v, want %v", l, want)
	}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("NewList = %v, want %v", l, want)
		}
	}
}

func TestListContains(t *testing.T) {
	l := List{1, 3, 7, 100}
	for _, id := range []int32{1, 3, 7, 100} {
		if !l.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []int32{0, 2, 8, 99, 101} {
		if l.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
	if (List{}).Contains(0) {
		t.Error("empty list Contains(0) = true")
	}
}

func TestNewUniverseValidation(t *testing.T) {
	if _, err := NewUniverse(-1, nil); err == nil {
		t.Error("negative trajectory count accepted")
	}
	if _, err := NewUniverse(5, []List{{0, 5}}); err == nil {
		t.Error("out-of-range trajectory accepted")
	}
	if _, err := NewUniverse(5, []List{{-1}}); err == nil {
		t.Error("negative trajectory accepted")
	}
	if _, err := NewUniverse(5, []List{{2, 1}}); err == nil {
		t.Error("unsorted list accepted")
	}
	if _, err := NewUniverse(5, []List{{1, 1}}); err == nil {
		t.Error("duplicate entry accepted")
	}
	if _, err := NewUniverse(5, []List{{0, 1}, {}, {4}}); err != nil {
		t.Errorf("valid universe rejected: %v", err)
	}
}

func TestUniverseBasics(t *testing.T) {
	u := mustU(t, 10, []List{{0, 1, 2}, {2, 3}, {}})
	if u.NumTrajectories() != 10 || u.NumBillboards() != 3 {
		t.Fatalf("dims wrong: %d, %d", u.NumTrajectories(), u.NumBillboards())
	}
	if u.Degree(0) != 3 || u.Degree(1) != 2 || u.Degree(2) != 0 {
		t.Error("Degree wrong")
	}
	if u.TotalSupply() != 5 {
		t.Errorf("TotalSupply = %d, want 5", u.TotalSupply())
	}
	if got := u.UnionCount([]int{0, 1}); got != 4 {
		t.Errorf("UnionCount = %d, want 4 (overlap at 2)", got)
	}
	if got := u.UnionCount(nil); got != 0 {
		t.Errorf("UnionCount(nil) = %d", got)
	}
	bs := u.UnionBitset([]int{1, 2})
	if bs.Count() != 2 || !bs.Test(2) || !bs.Test(3) {
		t.Error("UnionBitset wrong")
	}
}

func TestCounterAddRemove(t *testing.T) {
	u := mustU(t, 6, []List{{0, 1}, {1, 2}, {3, 4, 5}})
	c := NewCounter(u)
	if c.Covered() != 0 || c.Size() != 0 {
		t.Fatal("fresh counter not empty")
	}
	c.Add(0)
	if c.Covered() != 2 {
		t.Errorf("after Add(0): covered = %d, want 2", c.Covered())
	}
	c.Add(1)
	if c.Covered() != 3 {
		t.Errorf("after Add(1): covered = %d, want 3 (overlap at t=1)", c.Covered())
	}
	if !c.Has(0) || !c.Has(1) || c.Has(2) {
		t.Error("membership wrong")
	}
	if got := c.Members(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Members = %v", got)
	}
	c.Remove(0)
	if c.Covered() != 2 {
		t.Errorf("after Remove(0): covered = %d, want 2", c.Covered())
	}
	c.Remove(1)
	if c.Covered() != 0 || c.Size() != 0 {
		t.Error("counter not empty after removing all")
	}
}

func TestCounterGainLoss(t *testing.T) {
	u := mustU(t, 6, []List{{0, 1}, {1, 2}, {3, 4, 5}, {}})
	c := NewCounter(u)
	if g := c.Gain(0); g != 2 {
		t.Errorf("Gain(0) on empty = %d, want 2", g)
	}
	c.Add(0)
	if g := c.Gain(1); g != 1 {
		t.Errorf("Gain(1) = %d, want 1", g)
	}
	if g := c.Gain(2); g != 3 {
		t.Errorf("Gain(2) = %d, want 3", g)
	}
	if g := c.Gain(3); g != 0 {
		t.Errorf("Gain(3) = %d, want 0 (empty billboard)", g)
	}
	c.Add(1)
	if l := c.Loss(0); l != 1 {
		t.Errorf("Loss(0) = %d, want 1 (t=0 uniquely covered)", l)
	}
	if l := c.Loss(1); l != 1 {
		t.Errorf("Loss(1) = %d, want 1 (t=2 uniquely covered)", l)
	}
}

func TestCounterPanics(t *testing.T) {
	u := mustU(t, 3, []List{{0}, {1}})
	c := NewCounter(u)
	c.Add(0)
	for name, f := range map[string]func(){
		"double Add":          func() { c.Add(0) },
		"Remove non-member":   func() { c.Remove(1) },
		"Gain of member":      func() { c.Gain(0) },
		"Loss of non-member":  func() { c.Loss(1) },
		"SwapDelta bad out":   func() { c.SwapDelta(1, 0) },
		"SwapDelta member in": func() { c.SwapDelta(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSwapDeltaHandsOff(t *testing.T) {
	// Example 3 of the paper (x = 5): o1 covers {t1..t4}, o2 covers
	// {t1..t3, t5}, o3 covers {t5, t6}. With S = {o1, o2}, swapping o1 out
	// for o3 keeps coverage at 5 trajectories... compute by hand:
	// S = {o1,o2} covers {1,2,3,4,5} (5). (S\{o1})∪{o3} = {o2,o3} covers
	// {1,2,3,5,6} (5). Delta = 0.
	u := mustU(t, 7, []List{
		{1, 2, 3, 4},
		{1, 2, 3, 5},
		{5, 6},
	})
	c := NewCounter(u)
	c.Add(0)
	c.Add(1)
	if got := c.SwapDelta(0, 2); got != 0 {
		t.Errorf("SwapDelta(0,2) = %d, want 0", got)
	}
	// Swapping o2 out for o3: {o1,o3} covers {1,2,3,4,5,6} (6): delta +1.
	if got := c.SwapDelta(1, 2); got != 1 {
		t.Errorf("SwapDelta(1,2) = %d, want 1", got)
	}
}

// randomUniverse builds a universe with random coverage lists for property
// tests.
func randomUniverse(r *rng.RNG, nTraj, nBB, maxDeg int) *Universe {
	lists := make([]List, nBB)
	for b := range lists {
		deg := r.Intn(maxDeg + 1)
		ids := make([]int32, 0, deg)
		for i := 0; i < deg; i++ {
			ids = append(ids, int32(r.Intn(nTraj)))
		}
		lists[b] = NewList(ids)
	}
	return MustUniverse(nTraj, lists)
}

func TestCounterMatchesUnionCountRandom(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 30; trial++ {
		u := randomUniverse(r, 200, 30, 40)
		c := NewCounter(u)
		var members []int
		for step := 0; step < 200; step++ {
			b := r.Intn(u.NumBillboards())
			if c.Has(b) {
				// Verify Loss against from-scratch recomputation first.
				withoutB := make([]int, 0, len(members))
				for _, m := range members {
					if m != b {
						withoutB = append(withoutB, m)
					}
				}
				wantLoss := c.Covered() - u.UnionCount(withoutB)
				if got := c.Loss(b); got != wantLoss {
					t.Fatalf("trial %d step %d: Loss(%d) = %d, want %d", trial, step, b, got, wantLoss)
				}
				c.Remove(b)
				members = withoutB
			} else {
				withB := append(append([]int{}, members...), b)
				wantGain := u.UnionCount(withB) - c.Covered()
				if got := c.Gain(b); got != wantGain {
					t.Fatalf("trial %d step %d: Gain(%d) = %d, want %d", trial, step, b, got, wantGain)
				}
				c.Add(b)
				members = withB
			}
			if got, want := c.Covered(), u.UnionCount(members); got != want {
				t.Fatalf("trial %d step %d: covered = %d, want %d", trial, step, got, want)
			}
			if c.Size() != len(members) {
				t.Fatalf("trial %d step %d: size = %d, want %d", trial, step, c.Size(), len(members))
			}
		}
	}
}

func TestSwapDeltaMatchesRecompute(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 20; trial++ {
		u := randomUniverse(r, 150, 20, 30)
		c := NewCounter(u)
		var members []int
		for b := 0; b < u.NumBillboards(); b += 2 {
			c.Add(b)
			members = append(members, b)
		}
		for _, out := range members {
			for in := 1; in < u.NumBillboards(); in += 2 {
				swapped := make([]int, 0, len(members))
				for _, m := range members {
					if m != out {
						swapped = append(swapped, m)
					}
				}
				swapped = append(swapped, in)
				want := u.UnionCount(swapped) - c.Covered()
				if got := c.SwapDelta(out, in); got != want {
					t.Fatalf("trial %d: SwapDelta(%d,%d) = %d, want %d", trial, out, in, got, want)
				}
			}
		}
	}
}

func TestSwapDeltaDoesNotMutate(t *testing.T) {
	u := mustU(t, 5, []List{{0, 1}, {2, 3}, {1, 2}})
	c := NewCounter(u)
	c.Add(0)
	c.Add(1)
	before := c.Covered()
	_ = c.SwapDelta(0, 2)
	if c.Covered() != before || !c.Has(0) || c.Has(2) {
		t.Fatal("SwapDelta mutated the counter")
	}
}

func TestResetAndClone(t *testing.T) {
	u := mustU(t, 5, []List{{0, 1}, {2, 3}})
	c := NewCounter(u)
	c.Add(0)
	c.Add(1)
	cl := c.Clone()
	c.Reset()
	if c.Covered() != 0 || c.Size() != 0 {
		t.Error("Reset did not empty counter")
	}
	if cl.Covered() != 4 || cl.Size() != 2 || !cl.Has(0) {
		t.Error("Clone affected by Reset of original")
	}
	cl.Remove(0)
	if cl.Covered() != 2 {
		t.Error("clone Remove wrong")
	}
}

func TestCounterPropertyGainLossInverse(t *testing.T) {
	// For any membership state and billboard b not in S:
	// after Add(b), Loss(b) must equal the Gain(b) before.
	r := rng.New(555)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		u := randomUniverse(r, 100, 10, 20)
		c := NewCounter(u)
		for i := 0; i < 5; i++ {
			b := rr.Intn(u.NumBillboards())
			if !c.Has(b) {
				c.Add(b)
			}
		}
		for b := 0; b < u.NumBillboards(); b++ {
			if c.Has(b) {
				continue
			}
			g := c.Gain(b)
			c.Add(b)
			if c.Loss(b) != g {
				return false
			}
			c.Remove(b)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCounterAddRemove(b *testing.B) {
	r := rng.New(1)
	u := randomUniverse(r, 50000, 500, 400)
	c := NewCounter(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := i % u.NumBillboards()
		if c.Has(bb) {
			c.Remove(bb)
		} else {
			c.Add(bb)
		}
	}
}

func BenchmarkCounterGain(b *testing.B) {
	r := rng.New(1)
	u := randomUniverse(r, 50000, 500, 400)
	c := NewCounter(u)
	for i := 0; i < 50; i++ {
		c.Add(i * 7 % u.NumBillboards())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := i % u.NumBillboards()
		if !c.Has(bb) {
			_ = c.Gain(bb)
		}
	}
}

func BenchmarkUnionCount(b *testing.B) {
	r := rng.New(1)
	u := randomUniverse(r, 50000, 500, 400)
	set := make([]int, 50)
	for i := range set {
		set[i] = i * 9 % u.NumBillboards()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.UnionCount(set)
	}
}

// swapDeltaBinarySearch is the previous SwapDelta implementation (binary
// searching each list for membership in the other), kept as the reference
// for the linear merge walk that replaced it.
func swapDeltaBinarySearch(c *Counter, out, in int) int {
	outList := c.u.lists[out]
	inList := c.u.lists[in]
	delta := 0
	for _, t := range outList {
		if c.counts[t] == c.k && !inList.Contains(t) {
			delta--
		}
	}
	for _, t := range inList {
		if c.counts[t] == c.k-1 && !outList.Contains(t) {
			delta++
		}
	}
	return delta
}

// TestSwapDeltaMergeMatchesBinarySearch: the merge-walk SwapDelta must
// agree with the old binary-search implementation on random universes,
// member sets and swap pairs, for thresholds k=1 and k=2.
func TestSwapDeltaMergeMatchesBinarySearch(t *testing.T) {
	r := rng.New(20240805)
	for trial := 0; trial < 40; trial++ {
		u := randomUniverse(r, 50+r.Intn(300), 4+r.Intn(30), 1+r.Intn(60))
		k := 1 + trial%2
		c := NewCounterWithThreshold(u, k)
		var members []int
		for b := 0; b < u.NumBillboards(); b++ {
			if r.Float64() < 0.4 {
				c.Add(b)
				members = append(members, b)
			}
		}
		if len(members) == 0 || len(members) == u.NumBillboards() {
			continue
		}
		for probe := 0; probe < 20; probe++ {
			out := members[r.Intn(len(members))]
			in := r.Intn(u.NumBillboards())
			if c.Has(in) {
				continue
			}
			got := c.SwapDelta(out, in)
			want := swapDeltaBinarySearch(c, out, in)
			if got != want {
				t.Fatalf("trial %d k=%d swap(%d,%d): merge %d, binary search %d",
					trial, k, out, in, got, want)
			}
		}
	}
}

func BenchmarkSwapDelta(b *testing.B) {
	r := rng.New(1)
	u := randomUniverse(r, 50000, 500, 400)
	c := NewCounter(u)
	for i := 0; i < 50; i++ {
		c.Add(i * 7 % u.NumBillboards())
	}
	out := 0 * 7 % u.NumBillboards()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := i % u.NumBillboards()
		if !c.Has(in) {
			_ = c.SwapDelta(out, in)
		}
	}
}

// BenchmarkNewList measures the coverage-list constructor on the
// mostly-sorted input the spatial join produces (trajectory IDs arrive in
// generation order with local back-references). slices.Sort's pdqsort
// exploits that structure where the old sort.Slice interface path could
// not; see the recorded comparison in DESIGN.md §12.
func BenchmarkNewList(b *testing.B) {
	r := rng.New(1)
	ids := make([]int32, 4096)
	for i := range ids {
		// Nearly sorted with occasional displaced entries and duplicates,
		// like a billboard's hits across generation-ordered chunks.
		ids[i] = int32(i) + int32(r.Intn(8)) - 4
		if ids[i] < 0 {
			ids[i] = 0
		}
	}
	scratch := make([]int32, len(ids))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, ids)
		_ = NewList(scratch)
	}
}
