package coverage

import (
	"slices"
	"testing"

	"repro/internal/rng"
)

func TestCompressGroupsIdenticalSignatures(t *testing.T) {
	// Trajectories 0,2,4 share signature {0,1}; 1,3 share {1}; 5 has {2};
	// 6..9 are uncovered. Expect 3 corridors ordered by smallest member.
	u := mustU(t, 10, []List{
		{0, 2, 4},       // billboard 0
		{0, 1, 2, 3, 4}, // billboard 1
		{5},             // billboard 2
		{},              // billboard 3
	})
	cu, stats := Compress(u)
	if stats.Corridors != 3 || stats.Covered != 6 || stats.RawTrajectories != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	if cu.NumTrajectories() != 10 || cu.NumIDs() != 3 {
		t.Fatalf("dims %d/%d", cu.NumTrajectories(), cu.NumIDs())
	}
	// Corridor 0 = {0,2,4} (rep 0, weight 3), corridor 1 = {1,3} (rep 1,
	// weight 2), corridor 2 = {5} (rep 5, weight 1).
	for id, want := range []int{3, 2, 1} {
		if got := cu.Weight(int32(id)); got != want {
			t.Errorf("Weight(%d) = %d, want %d", id, got, want)
		}
	}
	wantLists := []List{{0}, {0, 1}, {2}, {}}
	for b, want := range wantLists {
		if !slices.Equal(cu.List(b), want) {
			t.Errorf("List(%d) = %v, want %v", b, cu.List(b), want)
		}
	}
	if got := cu.UnionCount([]int{0}); got != 3 {
		t.Errorf("UnionCount({0}) = %d, want 3", got)
	}
	if got := cu.UnionCount([]int{0, 1, 2}); got != 6 {
		t.Errorf("UnionCount(all) = %d, want 6", got)
	}
}

func TestCompressPreservesAllInfluenceQuantities(t *testing.T) {
	r := rng.New(20260807)
	for trial := 0; trial < 25; trial++ {
		// Low trajectory count relative to degrees yields many duplicate
		// signatures, so compression genuinely collapses classes.
		u := randomUniverse(r, 60+r.Intn(140), 4+r.Intn(20), 1+r.Intn(50))
		cu, stats := Compress(u)
		if stats.Corridors > stats.Covered || stats.Covered > stats.RawTrajectories {
			t.Fatalf("inconsistent stats %+v", stats)
		}
		if cu.NumTrajectories() != u.NumTrajectories() {
			t.Fatalf("raw |T| changed: %d != %d", cu.NumTrajectories(), u.NumTrajectories())
		}
		if cu.MaxDegree() != u.MaxDegree() || cu.TotalSupply() != u.TotalSupply() {
			t.Fatalf("MaxDegree/TotalSupply changed: %d/%d != %d/%d",
				cu.MaxDegree(), cu.TotalSupply(), u.MaxDegree(), u.TotalSupply())
		}
		for b := 0; b < u.NumBillboards(); b++ {
			if cu.Degree(b) != u.Degree(b) {
				t.Fatalf("Degree(%d): %d != %d", b, cu.Degree(b), u.Degree(b))
			}
		}
		// Random subsets: union influence must match exactly, for both the
		// plain and the k-threshold evaluators.
		for q := 0; q < 20; q++ {
			var set []int
			for b := 0; b < u.NumBillboards(); b++ {
				if r.Intn(3) == 0 {
					set = append(set, b)
				}
			}
			if got, want := cu.UnionCount(set), u.UnionCount(set); got != want {
				t.Fatalf("UnionCount(%v): %d != %d", set, got, want)
			}
			k := 1 + r.Intn(3)
			if got, want := cu.UnionCountK(set, k), u.UnionCountK(set, k); got != want {
				t.Fatalf("UnionCountK(%v, %d): %d != %d", set, k, got, want)
			}
		}
	}
}

func TestCompressedCounterMatchesDenseCounter(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		u := randomUniverse(r, 80+r.Intn(120), 6+r.Intn(14), 1+r.Intn(40))
		cu, _ := Compress(u)
		dc := NewCounter(u)
		cc := NewCounter(cu)
		for step := 0; step < 300; step++ {
			b := r.Intn(u.NumBillboards())
			if dc.Has(b) != cc.Has(b) {
				t.Fatalf("membership diverged at billboard %d", b)
			}
			if dc.Has(b) {
				if got, want := cc.Loss(b), dc.Loss(b); got != want {
					t.Fatalf("Loss(%d): %d != %d", b, got, want)
				}
				// Exercise SwapDelta against a random non-member.
				if in := r.Intn(u.NumBillboards()); !dc.Has(in) {
					if got, want := cc.SwapDelta(b, in), dc.SwapDelta(b, in); got != want {
						t.Fatalf("SwapDelta(%d,%d): %d != %d", b, in, got, want)
					}
				}
				dc.Remove(b)
				cc.Remove(b)
			} else {
				if got, want := cc.Gain(b), dc.Gain(b); got != want {
					t.Fatalf("Gain(%d): %d != %d", b, got, want)
				}
				dc.Add(b)
				cc.Add(b)
			}
			if dc.Covered() != cc.Covered() {
				t.Fatalf("Covered: dense %d, compressed %d", dc.Covered(), cc.Covered())
			}
			// Route the walk through Clone and CopyFrom periodically: a
			// clone that dropped the weight table would silently revert to
			// unit counting (the BLS trial-plan path hits exactly this).
			if step%37 == 17 {
				cc = cc.Clone()
			}
			if step%53 == 29 {
				fresh := NewCounter(cu)
				fresh.CopyFrom(cc)
				cc = fresh
			}
		}
	}
}

func TestCompressDeterministicAndIdempotent(t *testing.T) {
	r := rng.New(7)
	u := randomUniverse(r, 300, 25, 60)
	cu1, s1 := Compress(u)
	cu2, s2 := Compress(u)
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if cu1.NumIDs() != cu2.NumIDs() {
		t.Fatalf("corridor counts differ")
	}
	for b := 0; b < cu1.NumBillboards(); b++ {
		if !slices.Equal(cu1.List(b), cu2.List(b)) {
			t.Fatalf("List(%d) not deterministic", b)
		}
	}
	for id := 0; id < cu1.NumIDs(); id++ {
		if cu1.Weight(int32(id)) != cu2.Weight(int32(id)) {
			t.Fatalf("Weight(%d) not deterministic", id)
		}
	}
	// Compressing a compressed universe is the identity.
	cu3, s3 := Compress(cu1)
	if cu3 != cu1 {
		t.Fatal("re-compression did not return the same universe")
	}
	if s3.Corridors != s1.Corridors || s3.RawTrajectories != s1.RawTrajectories {
		t.Fatalf("re-compression stats %+v, want %+v", s3, s1)
	}
}

func TestWeightedSubuniverseCarriesWeights(t *testing.T) {
	r := rng.New(13)
	u := randomUniverse(r, 200, 20, 50)
	cu, _ := Compress(u)
	keep := []int{3, 7, 11, 19}
	subDense, err := u.Subuniverse(keep)
	if err != nil {
		t.Fatal(err)
	}
	subComp, err := cu.Subuniverse(keep)
	if err != nil {
		t.Fatal(err)
	}
	if !subComp.Weighted() {
		t.Fatal("compressed subuniverse lost its weights")
	}
	if subComp.MaxDegree() != subDense.MaxDegree() || subComp.TotalSupply() != subDense.TotalSupply() {
		t.Fatalf("sub MaxDegree/TotalSupply: %d/%d != %d/%d",
			subComp.MaxDegree(), subComp.TotalSupply(), subDense.MaxDegree(), subDense.TotalSupply())
	}
	for i := range keep {
		if subComp.Degree(i) != subDense.Degree(i) {
			t.Fatalf("sub Degree(%d): %d != %d", i, subComp.Degree(i), subDense.Degree(i))
		}
	}
	for q := 0; q < 10; q++ {
		set := []int{r.Intn(len(keep)), r.Intn(len(keep))}
		if set[0] == set[1] {
			set = set[:1]
		}
		if got, want := subComp.UnionCount(set), subDense.UnionCount(set); got != want {
			t.Fatalf("sub UnionCount(%v): %d != %d", set, got, want)
		}
	}
}

func TestNewWeightedUniverseValidation(t *testing.T) {
	if _, err := NewWeightedUniverse(-1, nil, nil); err == nil {
		t.Error("negative trajectory count accepted")
	}
	if _, err := NewWeightedUniverse(10, []List{{0}}, []int32{0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewWeightedUniverse(3, []List{{0, 1}}, []int32{2, 2}); err == nil {
		t.Error("weights exceeding |T| accepted")
	}
	if _, err := NewWeightedUniverse(10, []List{{1}}, []int32{5}); err == nil {
		t.Error("out-of-range corridor ID accepted")
	}
	u, err := NewWeightedUniverse(10, []List{{0, 1}, {1}}, []int32{4, 5})
	if err != nil {
		t.Fatalf("valid weighted universe rejected: %v", err)
	}
	if u.Degree(0) != 9 || u.Degree(1) != 5 || u.MaxDegree() != 9 || u.TotalSupply() != 14 {
		t.Fatalf("weighted accessors wrong: %d/%d/%d/%d",
			u.Degree(0), u.Degree(1), u.MaxDegree(), u.TotalSupply())
	}
	if u.NumTrajectories() != 10 || u.NumIDs() != 2 {
		t.Fatalf("dims %d/%d", u.NumTrajectories(), u.NumIDs())
	}
}
