package coverage

import (
	"testing"

	"repro/internal/rng"
)

func TestThresholdCounterBasics(t *testing.T) {
	// Three billboards over six trajectories with overlap at t=1, t=2.
	u := MustUniverse(6, []List{
		{0, 1, 2},
		{1, 2, 3},
		{2, 4, 5},
	})
	c := NewCounterWithThreshold(u, 2)
	if c.Threshold() != 2 || c.Covered() != 0 {
		t.Fatal("fresh counter wrong")
	}
	c.Add(0)
	if c.Covered() != 0 {
		t.Errorf("one billboard cannot reach k=2: covered = %d", c.Covered())
	}
	c.Add(1) // t=1, t=2 now have 2 impressions
	if c.Covered() != 2 {
		t.Errorf("covered = %d, want 2", c.Covered())
	}
	c.Add(2) // t=2 has 3 impressions, others at 1
	if c.Covered() != 2 {
		t.Errorf("covered = %d, want 2 (t2 already counted)", c.Covered())
	}
	c.Remove(1)
	if c.Covered() != 1 { // only t=2 still has 2 impressions (b0 and b2)
		t.Errorf("after remove covered = %d, want 1", c.Covered())
	}
	if got := c.Members(nil); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Members = %v", got)
	}
}

func TestCounterThresholdOneMatchesPlain(t *testing.T) {
	r := rng.New(77)
	u := randomUniverse(r, 200, 25, 30)
	c1 := NewCounter(u)
	ck := NewCounterWithThreshold(u, 1)
	for step := 0; step < 300; step++ {
		b := r.Intn(u.NumBillboards())
		if c1.Has(b) {
			c1.Remove(b)
			ck.Remove(b)
		} else {
			if c1.Gain(b) != ck.Gain(b) {
				t.Fatalf("step %d: Gain differs", step)
			}
			c1.Add(b)
			ck.Add(b)
		}
		if c1.Covered() != ck.Covered() {
			t.Fatalf("step %d: covered %d vs %d", step, c1.Covered(), ck.Covered())
		}
	}
}

func TestThresholdCounterMatchesUnionCountK(t *testing.T) {
	r := rng.New(88)
	for _, k := range []int{1, 2, 3} {
		u := randomUniverse(r, 150, 20, 40)
		c := NewCounterWithThreshold(u, k)
		var members []int
		for step := 0; step < 150; step++ {
			b := r.Intn(u.NumBillboards())
			if c.Has(b) {
				wantLoss := c.Covered() - u.UnionCountK(remove(members, b), k)
				if got := c.Loss(b); got != wantLoss {
					t.Fatalf("k=%d step %d: Loss(%d) = %d, want %d", k, step, b, got, wantLoss)
				}
				c.Remove(b)
				members = remove(members, b)
			} else {
				withB := append(append([]int{}, members...), b)
				wantGain := u.UnionCountK(withB, k) - c.Covered()
				if got := c.Gain(b); got != wantGain {
					t.Fatalf("k=%d step %d: Gain(%d) = %d, want %d", k, step, b, got, wantGain)
				}
				c.Add(b)
				members = withB
			}
			if got, want := c.Covered(), u.UnionCountK(members, k); got != want {
				t.Fatalf("k=%d step %d: covered %d, want %d", k, step, got, want)
			}
		}
	}
}

func TestThresholdSwapDeltaMatchesRecompute(t *testing.T) {
	r := rng.New(99)
	for _, k := range []int{1, 2, 3} {
		u := randomUniverse(r, 120, 16, 30)
		c := NewCounterWithThreshold(u, k)
		var members []int
		for b := 0; b < u.NumBillboards(); b += 2 {
			c.Add(b)
			members = append(members, b)
		}
		for _, out := range members {
			for in := 1; in < u.NumBillboards(); in += 2 {
				swapped := append(remove(members, out), in)
				want := u.UnionCountK(swapped, k) - c.Covered()
				if got := c.SwapDelta(out, in); got != want {
					t.Fatalf("k=%d: SwapDelta(%d, %d) = %d, want %d", k, out, in, got, want)
				}
			}
		}
	}
}

func TestThresholdCounterPanics(t *testing.T) {
	u := MustUniverse(3, []List{{0}, {1}})
	for name, f := range map[string]func(){
		"k=0":      func() { NewCounterWithThreshold(u, 0) },
		"UnionK k": func() { u.UnionCountK(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	c := NewCounterWithThreshold(u, 2)
	c.Add(0)
	for name, f := range map[string]func(){
		"double add":   func() { c.Add(0) },
		"bad remove":   func() { c.Remove(1) },
		"gain member":  func() { c.Gain(0) },
		"loss missing": func() { c.Loss(1) },
		"swap bad out": func() { c.SwapDelta(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// remove returns members without b (order preserved).
func remove(members []int, b int) []int {
	out := make([]int, 0, len(members))
	for _, m := range members {
		if m != b {
			out = append(out, m)
		}
	}
	return out
}
