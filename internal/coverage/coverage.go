// Package coverage represents which trajectories each billboard influences
// and evaluates the influence I(S) of billboard sets, both from scratch and
// incrementally.
//
// Under the paper's influence model (§7.1.2) a billboard o influences a
// trajectory t iff some point of t lies within λ meters of o, and the
// influence of a set S is the number of distinct trajectories influenced by
// at least one member:
//
//	I(S) = Σ_t [1 − Π_{o∈S}(1 − I(o,t))] = |⋃_{o∈S} cover(o)|
//
// because I(o,t) ∈ {0,1}. All four MROAM algorithms spend nearly all their
// time asking "what does adding/removing/swapping one billboard do to I(S_i)?"
// The Counter type answers those queries in O(deg(o)) by maintaining, for one
// advertiser's set, a per-trajectory multiset count of how many assigned
// billboards cover it.
package coverage

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/bitset"
)

// List is the set of coverage IDs covered by one billboard, sorted
// ascending with no duplicates. In an uncompressed universe the IDs are
// trajectory IDs; in a corridor-compressed universe (see Compress) they are
// corridor IDs.
type List []int32

// NewList sorts and deduplicates ids into a valid List. The input slice may
// be reused as backing storage. (slices.Sort, not sort.Slice: the radix-ish
// pdqsort specialization for ordered element types avoids the interface
// indirection per comparison — this is the hottest sort in dataset builds.)
func NewList(ids []int32) List {
	slices.Sort(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return List(out)
}

// Contains reports whether the list covers trajectory id, by binary search.
func (l List) Contains(id int32) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	return i < len(l) && l[i] == id
}

// Universe holds the coverage lists of every billboard in a dataset together
// with the trajectory count. It is immutable after construction and shared by
// all Counters, algorithms and experiments that operate on the dataset.
//
// A universe may be corridor-compressed (see Compress): coverage IDs then
// name corridors — groups of trajectories with identical coverage — and
// weights[id] counts the trajectories collapsed into each. Every influence
// quantity (Degree, MaxDegree, TotalSupply, UnionCount, Counter results) is
// expressed in raw trajectories in both forms, so algorithms never need to
// know which substrate they run on: the weighted sums are bit-identical to
// the uncompressed answers by construction.
type Universe struct {
	numTrajectories int // raw trajectory total |T|, the paper's universe size
	numIDs          int // coverage ID space; == numTrajectories when unweighted
	lists           []List
	weights         []int32 // weights[id] ≥ 1, raw trajectories per ID; nil = all 1
	degrees         []int   // weighted Degree per billboard; nil = len(lists[b])
	maxDegree       int
	totalSupply     int64
}

// NewUniverse constructs a Universe over numTrajectories trajectories with
// the given per-billboard coverage lists. It returns an error if any list is
// unsorted, contains duplicates, or references a trajectory out of range.
func NewUniverse(numTrajectories int, lists []List) (*Universe, error) {
	if numTrajectories < 0 {
		return nil, fmt.Errorf("coverage: negative trajectory count %d", numTrajectories)
	}
	if err := validateLists(lists, numTrajectories); err != nil {
		return nil, err
	}
	u := &Universe{numTrajectories: numTrajectories, numIDs: numTrajectories, lists: lists}
	for _, l := range lists {
		if len(l) > u.maxDegree {
			u.maxDegree = len(l)
		}
		u.totalSupply += int64(len(l))
	}
	return u, nil
}

// NewWeightedUniverse constructs a corridor-compressed Universe: lists hold
// corridor IDs in [0, len(weights)), and weights[id] is the number of raw
// trajectories collapsed into corridor id. numTrajectories remains the raw
// total (corridor weights need not sum to it — trajectories covered by no
// billboard have no corridor). Influence accessors return weighted values.
func NewWeightedUniverse(numTrajectories int, lists []List, weights []int32) (*Universe, error) {
	if numTrajectories < 0 {
		return nil, fmt.Errorf("coverage: negative trajectory count %d", numTrajectories)
	}
	if err := validateLists(lists, len(weights)); err != nil {
		return nil, err
	}
	var sum int64
	for id, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("coverage: corridor %d has weight %d < 1", id, w)
		}
		sum += int64(w)
	}
	if sum > int64(numTrajectories) {
		return nil, fmt.Errorf("coverage: corridor weights sum to %d, universe has %d trajectories", sum, numTrajectories)
	}
	u := &Universe{
		numTrajectories: numTrajectories,
		numIDs:          len(weights),
		lists:           lists,
		weights:         weights,
		degrees:         make([]int, len(lists)),
	}
	for b, l := range lists {
		d := 0
		for _, id := range l {
			d += int(weights[id])
		}
		u.degrees[b] = d
		if d > u.maxDegree {
			u.maxDegree = d
		}
		u.totalSupply += int64(d)
	}
	return u, nil
}

// validateLists checks every list is sorted, duplicate-free, and references
// IDs inside [0, numIDs).
func validateLists(lists []List, numIDs int) error {
	for b, l := range lists {
		for i, id := range l {
			if id < 0 || int(id) >= numIDs {
				return fmt.Errorf("coverage: billboard %d covers ID %d, universe has %d", b, id, numIDs)
			}
			if i > 0 && l[i-1] >= id {
				return fmt.Errorf("coverage: billboard %d list unsorted or duplicated at index %d", b, i)
			}
		}
	}
	return nil
}

// MustUniverse is NewUniverse that panics on error, for tests and generators
// that construct lists they know to be valid.
func MustUniverse(numTrajectories int, lists []List) *Universe {
	u, err := NewUniverse(numTrajectories, lists)
	if err != nil {
		panic(err)
	}
	return u
}

// NumTrajectories returns the number of raw trajectories in the universe —
// the paper's |T|. Corridor compression never changes this value.
func (u *Universe) NumTrajectories() int { return u.numTrajectories }

// NumIDs returns the size of the coverage ID space: the value to size
// per-ID scratch arrays and bitsets by. It equals NumTrajectories for an
// uncompressed universe and the corridor count for a compressed one.
func (u *Universe) NumIDs() int { return u.numIDs }

// Weighted reports whether the universe is corridor-compressed.
func (u *Universe) Weighted() bool { return u.weights != nil }

// Weight returns the number of raw trajectories behind coverage ID id
// (1 for every ID of an uncompressed universe).
func (u *Universe) Weight(id int32) int {
	if u.weights == nil {
		return 1
	}
	return int(u.weights[id])
}

// NumBillboards returns the number of billboards in the universe.
func (u *Universe) NumBillboards() int { return len(u.lists) }

// List returns the coverage list of billboard b. The returned slice must not
// be modified.
func (u *Universe) List(b int) List { return u.lists[b] }

// Degree returns |cover(b)| in raw trajectories — I({b}), the influence of
// the single billboard — regardless of substrate.
func (u *Universe) Degree(b int) int {
	if u.degrees == nil {
		return len(u.lists[b])
	}
	return u.degrees[b]
}

// MaxDegree returns the largest single-billboard influence max_o I({o}),
// precomputed at construction. The lazy-greedy selection uses it to decide
// whether any billboard could cross an advertiser's remaining demand.
func (u *Universe) MaxDegree() int { return u.maxDegree }

// TotalSupply returns I* = Σ_o I({o}), the host's supply as defined for the
// demand-supply ratio α (§7.1.3). Note this sums individual influences and
// intentionally double-counts overlap, exactly as the paper defines I*.
func (u *Universe) TotalSupply() int64 { return u.totalSupply }

// UnionCount returns I(S) = |⋃_{b∈S} cover(b)| in raw trajectories,
// computed from scratch. Counters are faster for incremental work; this is
// the reference evaluator and the right tool for one-shot queries. The
// union is taken in the compressed substrate (roaring-style containers), so
// the scratch cost scales with the IDs actually covered, not the ID space.
func (u *Universe) UnionCount(billboards []int) int {
	un := u.UnionCompressed(billboards)
	if u.weights == nil {
		return un.Count()
	}
	total := 0
	un.Range(func(id int) bool {
		total += int(u.weights[id])
		return true
	})
	return total
}

// UnionCompressed returns the union coverage of the given billboards as a
// compressed set over the universe's ID space.
func (u *Universe) UnionCompressed(billboards []int) *bitset.Compressed {
	un := bitset.NewCompressed()
	for _, b := range billboards {
		un.Or(bitset.FromSortedIDs(u.lists[b]))
	}
	return un
}

// UnionBitset returns the union coverage of the given billboards as a dense
// bitset sized to the universe's ID space. Use WeightSum to convert a set of
// coverage IDs into raw trajectories.
func (u *Universe) UnionBitset(billboards []int) *bitset.Set {
	bs := bitset.New(u.numIDs)
	for _, b := range billboards {
		bs.SetIDs(u.lists[b])
	}
	return bs
}

// WeightSum returns the raw-trajectory total behind the set bits of bs,
// which must be sized to the universe's ID space. For an uncompressed
// universe this is bs.Count().
func (u *Universe) WeightSum(bs *bitset.Set) int {
	if u.weights == nil {
		return bs.Count()
	}
	total := 0
	bs.Range(func(id int) bool {
		total += int(u.weights[id])
		return true
	})
	return total
}

// Counter incrementally tracks I(S) for one mutable billboard set S. Adding
// or removing a billboard costs O(deg(b)); marginal-gain/loss queries cost
// the same without mutating the set.
//
// A Counter can also evaluate the impression-count influence measure of
// Zhang et al., KDD 2019 ("Optimizing Impression Counts for Outdoor
// Advertising"), which the paper cites as an orthogonal alternative (§2.2,
// §3.1): with threshold k, a trajectory counts as influenced only after it
// meets at least k billboards of the set. NewCounter uses k = 1 (the
// paper's union coverage); NewCounterWithThreshold selects a larger k.
type Counter struct {
	u       *Universe
	k       int32   // impression threshold; 1 = plain union coverage
	counts  []int32 // counts[id] = #{b ∈ S : b covers id}
	w       []int32 // the universe's corridor weights; nil when unweighted
	covered int     // Σ_{id : counts[id] >= k} weight(id); this is I_k(S)
	member  []bool  // member[b] = b ∈ S
	size    int     // |S|
}

// NewCounter returns an empty Counter over the universe using the paper's
// union-coverage influence (impression threshold 1).
func NewCounter(u *Universe) *Counter {
	return NewCounterWithThreshold(u, 1)
}

// NewCounterWithThreshold returns an empty Counter requiring k impressions
// before a trajectory counts as influenced. It panics if k < 1.
//
// On a corridor-compressed universe the threshold applies per corridor,
// which is exactly the per-trajectory semantics: every trajectory in a
// corridor is covered by the same billboards, so their impression counts
// are equal at all times.
func NewCounterWithThreshold(u *Universe, k int) *Counter {
	if k < 1 {
		panic(fmt.Sprintf("coverage: impression threshold %d < 1", k))
	}
	return &Counter{
		u:      u,
		k:      int32(k),
		counts: make([]int32, u.numIDs),
		w:      u.weights,
		member: make([]bool, len(u.lists)),
	}
}

// Threshold returns the impression threshold k.
func (c *Counter) Threshold() int { return int(c.k) }

// Covered returns I_k(S): with the default threshold 1, the number of
// distinct trajectories covered.
func (c *Counter) Covered() int { return c.covered }

// Size returns |S|, the number of billboards in the set.
func (c *Counter) Size() int { return c.size }

// Has reports whether billboard b is in the set.
func (c *Counter) Has(b int) bool { return c.member[b] }

// Members appends the billboards currently in the set to dst in ascending
// order and returns the extended slice.
func (c *Counter) Members(dst []int) []int {
	for b, in := range c.member {
		if in {
			dst = append(dst, b)
		}
	}
	return dst
}

// Add inserts billboard b into the set. It panics if b is already a member.
//
// The unweighted loop is kept separate from the weighted one (here and in
// Remove/Gain/Loss/SwapDelta): these are the innermost solver loops, and a
// per-element weight lookup on the unit-weight substrate would cost a load
// and branch per covered ID for nothing.
func (c *Counter) Add(b int) {
	if c.member[b] {
		panic(fmt.Sprintf("coverage: Add(%d): already a member", b))
	}
	c.member[b] = true
	c.size++
	if c.w == nil {
		for _, t := range c.u.lists[b] {
			c.counts[t]++
			if c.counts[t] == c.k {
				c.covered++
			}
		}
		return
	}
	for _, t := range c.u.lists[b] {
		c.counts[t]++
		if c.counts[t] == c.k {
			c.covered += int(c.w[t])
		}
	}
}

// Remove deletes billboard b from the set. It panics if b is not a member.
func (c *Counter) Remove(b int) {
	if !c.member[b] {
		panic(fmt.Sprintf("coverage: Remove(%d): not a member", b))
	}
	c.member[b] = false
	c.size--
	if c.w == nil {
		for _, t := range c.u.lists[b] {
			if c.counts[t] == c.k {
				c.covered--
			}
			c.counts[t]--
		}
		return
	}
	for _, t := range c.u.lists[b] {
		if c.counts[t] == c.k {
			c.covered -= int(c.w[t])
		}
		c.counts[t]--
	}
}

// Gain returns I(S ∪ {b}) − I(S): how many new trajectories b would cover.
// b must not be a member (the gain of a member is trivially 0, and asking
// for it almost always indicates an algorithmic bug, so it panics).
func (c *Counter) Gain(b int) int {
	if c.member[b] {
		panic(fmt.Sprintf("coverage: Gain(%d): already a member", b))
	}
	gain := 0
	if c.w == nil {
		for _, t := range c.u.lists[b] {
			if c.counts[t] == c.k-1 {
				gain++
			}
		}
		return gain
	}
	for _, t := range c.u.lists[b] {
		if c.counts[t] == c.k-1 {
			gain += int(c.w[t])
		}
	}
	return gain
}

// Loss returns I(S) − I(S \ {b}): how many trajectories only b covers.
// It panics if b is not a member.
func (c *Counter) Loss(b int) int {
	if !c.member[b] {
		panic(fmt.Sprintf("coverage: Loss(%d): not a member", b))
	}
	loss := 0
	if c.w == nil {
		for _, t := range c.u.lists[b] {
			if c.counts[t] == c.k {
				loss++
			}
		}
		return loss
	}
	for _, t := range c.u.lists[b] {
		if c.counts[t] == c.k {
			loss += int(c.w[t])
		}
	}
	return loss
}

// SwapDelta returns I((S \ {out}) ∪ {in}) − I(S) without mutating the set.
// out must be a member and in must not be. The two sorted coverage lists
// are walked in a single linear merge, so the cost is
// O(deg(out) + deg(in)) — IDs covered by both billboards keep their
// impression count and are skipped.
func (c *Counter) SwapDelta(out, in int) int {
	if !c.member[out] {
		panic(fmt.Sprintf("coverage: SwapDelta(out=%d): not a member", out))
	}
	if c.member[in] {
		panic(fmt.Sprintf("coverage: SwapDelta(in=%d): already a member", in))
	}
	outList := c.u.lists[out]
	inList := c.u.lists[in]
	delta := 0
	i, j := 0, 0
	for i < len(outList) || j < len(inList) {
		switch {
		case j == len(inList) || (i < len(outList) && outList[i] < inList[j]):
			// Covered by out only: loses an impression.
			if t := outList[i]; c.counts[t] == c.k {
				delta -= c.weight(t)
			}
			i++
		case i == len(outList) || inList[j] < outList[i]:
			// Covered by in only: gains an impression.
			if t := inList[j]; c.counts[t] == c.k-1 {
				delta += c.weight(t)
			}
			j++
		default:
			// Covered by both: impression count unchanged.
			i++
			j++
		}
	}
	return delta
}

// weight returns the raw trajectories behind coverage ID t.
func (c *Counter) weight(t int32) int {
	if c.w == nil {
		return 1
	}
	return int(c.w[t])
}

// Reset empties the set in O(Σ deg(member)).
func (c *Counter) Reset() {
	for b, in := range c.member {
		if in {
			c.Remove(b)
		}
	}
}

// CopyFrom overwrites this counter's state with src's, reusing the existing
// storage. Both counters must share the same universe and threshold; this
// is the allocation-free alternative to Clone for scratch counters reused
// across local-search sweeps.
func (c *Counter) CopyFrom(src *Counter) {
	if c.u != src.u || c.k != src.k {
		panic("coverage: CopyFrom across universes or thresholds")
	}
	if c == src {
		return
	}
	copy(c.counts, src.counts)
	copy(c.member, src.member)
	c.covered = src.covered
	c.size = src.size
}

// Clone returns an independent copy of the counter state.
func (c *Counter) Clone() *Counter {
	n := &Counter{
		u:       c.u,
		k:       c.k,
		counts:  make([]int32, len(c.counts)),
		w:       c.w,
		covered: c.covered,
		member:  make([]bool, len(c.member)),
		size:    c.size,
	}
	copy(n.counts, c.counts)
	copy(n.member, c.member)
	return n
}

// Universe returns the universe this counter operates over.
func (c *Counter) Universe() *Universe { return c.u }
