// Package coverage represents which trajectories each billboard influences
// and evaluates the influence I(S) of billboard sets, both from scratch and
// incrementally.
//
// Under the paper's influence model (§7.1.2) a billboard o influences a
// trajectory t iff some point of t lies within λ meters of o, and the
// influence of a set S is the number of distinct trajectories influenced by
// at least one member:
//
//	I(S) = Σ_t [1 − Π_{o∈S}(1 − I(o,t))] = |⋃_{o∈S} cover(o)|
//
// because I(o,t) ∈ {0,1}. All four MROAM algorithms spend nearly all their
// time asking "what does adding/removing/swapping one billboard do to I(S_i)?"
// The Counter type answers those queries in O(deg(o)) by maintaining, for one
// advertiser's set, a per-trajectory multiset count of how many assigned
// billboards cover it.
package coverage

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// List is the set of trajectory IDs covered by one billboard, sorted
// ascending with no duplicates.
type List []int32

// NewList sorts and deduplicates ids into a valid List. The input slice may
// be reused as backing storage.
func NewList(ids []int32) List {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return List(out)
}

// Contains reports whether the list covers trajectory id, by binary search.
func (l List) Contains(id int32) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= id })
	return i < len(l) && l[i] == id
}

// Universe holds the coverage lists of every billboard in a dataset together
// with the trajectory count. It is immutable after construction and shared by
// all Counters, algorithms and experiments that operate on the dataset.
type Universe struct {
	numTrajectories int
	lists           []List
	maxDegree       int
}

// NewUniverse constructs a Universe over numTrajectories trajectories with
// the given per-billboard coverage lists. It returns an error if any list is
// unsorted, contains duplicates, or references a trajectory out of range.
func NewUniverse(numTrajectories int, lists []List) (*Universe, error) {
	if numTrajectories < 0 {
		return nil, fmt.Errorf("coverage: negative trajectory count %d", numTrajectories)
	}
	for b, l := range lists {
		for i, id := range l {
			if id < 0 || int(id) >= numTrajectories {
				return nil, fmt.Errorf("coverage: billboard %d covers trajectory %d, universe has %d", b, id, numTrajectories)
			}
			if i > 0 && l[i-1] >= id {
				return nil, fmt.Errorf("coverage: billboard %d list unsorted or duplicated at index %d", b, i)
			}
		}
	}
	maxDeg := 0
	for _, l := range lists {
		if len(l) > maxDeg {
			maxDeg = len(l)
		}
	}
	return &Universe{numTrajectories: numTrajectories, lists: lists, maxDegree: maxDeg}, nil
}

// MustUniverse is NewUniverse that panics on error, for tests and generators
// that construct lists they know to be valid.
func MustUniverse(numTrajectories int, lists []List) *Universe {
	u, err := NewUniverse(numTrajectories, lists)
	if err != nil {
		panic(err)
	}
	return u
}

// NumTrajectories returns the number of trajectories in the universe.
func (u *Universe) NumTrajectories() int { return u.numTrajectories }

// NumBillboards returns the number of billboards in the universe.
func (u *Universe) NumBillboards() int { return len(u.lists) }

// List returns the coverage list of billboard b. The returned slice must not
// be modified.
func (u *Universe) List(b int) List { return u.lists[b] }

// Degree returns |cover(b)|, the number of trajectories billboard b covers.
// This is I({b}), the influence of the single billboard.
func (u *Universe) Degree(b int) int { return len(u.lists[b]) }

// MaxDegree returns the largest single-billboard influence max_o I({o}),
// precomputed at construction. The lazy-greedy selection uses it to decide
// whether any billboard could cross an advertiser's remaining demand.
func (u *Universe) MaxDegree() int { return u.maxDegree }

// TotalSupply returns I* = Σ_o I({o}), the host's supply as defined for the
// demand-supply ratio α (§7.1.3). Note this sums individual influences and
// intentionally double-counts overlap, exactly as the paper defines I*.
func (u *Universe) TotalSupply() int64 {
	var total int64
	for _, l := range u.lists {
		total += int64(len(l))
	}
	return total
}

// UnionCount returns I(S) = |⋃_{b∈S} cover(b)| computed from scratch with a
// bitset. Counters are faster for incremental work; this is the reference
// evaluator and the right tool for one-shot queries.
func (u *Universe) UnionCount(billboards []int) int {
	bs := bitset.New(u.numTrajectories)
	for _, b := range billboards {
		bs.SetIDs(u.lists[b])
	}
	return bs.Count()
}

// UnionBitset returns the union coverage of the given billboards as a bitset
// sized to the universe.
func (u *Universe) UnionBitset(billboards []int) *bitset.Set {
	bs := bitset.New(u.numTrajectories)
	for _, b := range billboards {
		bs.SetIDs(u.lists[b])
	}
	return bs
}

// Counter incrementally tracks I(S) for one mutable billboard set S. Adding
// or removing a billboard costs O(deg(b)); marginal-gain/loss queries cost
// the same without mutating the set.
//
// A Counter can also evaluate the impression-count influence measure of
// Zhang et al., KDD 2019 ("Optimizing Impression Counts for Outdoor
// Advertising"), which the paper cites as an orthogonal alternative (§2.2,
// §3.1): with threshold k, a trajectory counts as influenced only after it
// meets at least k billboards of the set. NewCounter uses k = 1 (the
// paper's union coverage); NewCounterWithThreshold selects a larger k.
type Counter struct {
	u       *Universe
	k       int32   // impression threshold; 1 = plain union coverage
	counts  []int32 // counts[t] = #{b ∈ S : b covers t}
	covered int     // #{t : counts[t] >= k}; this is I_k(S)
	member  []bool  // member[b] = b ∈ S
	size    int     // |S|
}

// NewCounter returns an empty Counter over the universe using the paper's
// union-coverage influence (impression threshold 1).
func NewCounter(u *Universe) *Counter {
	return NewCounterWithThreshold(u, 1)
}

// NewCounterWithThreshold returns an empty Counter requiring k impressions
// before a trajectory counts as influenced. It panics if k < 1.
func NewCounterWithThreshold(u *Universe, k int) *Counter {
	if k < 1 {
		panic(fmt.Sprintf("coverage: impression threshold %d < 1", k))
	}
	return &Counter{
		u:      u,
		k:      int32(k),
		counts: make([]int32, u.numTrajectories),
		member: make([]bool, len(u.lists)),
	}
}

// Threshold returns the impression threshold k.
func (c *Counter) Threshold() int { return int(c.k) }

// Covered returns I_k(S): with the default threshold 1, the number of
// distinct trajectories covered.
func (c *Counter) Covered() int { return c.covered }

// Size returns |S|, the number of billboards in the set.
func (c *Counter) Size() int { return c.size }

// Has reports whether billboard b is in the set.
func (c *Counter) Has(b int) bool { return c.member[b] }

// Members appends the billboards currently in the set to dst in ascending
// order and returns the extended slice.
func (c *Counter) Members(dst []int) []int {
	for b, in := range c.member {
		if in {
			dst = append(dst, b)
		}
	}
	return dst
}

// Add inserts billboard b into the set. It panics if b is already a member.
func (c *Counter) Add(b int) {
	if c.member[b] {
		panic(fmt.Sprintf("coverage: Add(%d): already a member", b))
	}
	c.member[b] = true
	c.size++
	for _, t := range c.u.lists[b] {
		c.counts[t]++
		if c.counts[t] == c.k {
			c.covered++
		}
	}
}

// Remove deletes billboard b from the set. It panics if b is not a member.
func (c *Counter) Remove(b int) {
	if !c.member[b] {
		panic(fmt.Sprintf("coverage: Remove(%d): not a member", b))
	}
	c.member[b] = false
	c.size--
	for _, t := range c.u.lists[b] {
		if c.counts[t] == c.k {
			c.covered--
		}
		c.counts[t]--
	}
}

// Gain returns I(S ∪ {b}) − I(S): how many new trajectories b would cover.
// b must not be a member (the gain of a member is trivially 0, and asking
// for it almost always indicates an algorithmic bug, so it panics).
func (c *Counter) Gain(b int) int {
	if c.member[b] {
		panic(fmt.Sprintf("coverage: Gain(%d): already a member", b))
	}
	gain := 0
	for _, t := range c.u.lists[b] {
		if c.counts[t] == c.k-1 {
			gain++
		}
	}
	return gain
}

// Loss returns I(S) − I(S \ {b}): how many trajectories only b covers.
// It panics if b is not a member.
func (c *Counter) Loss(b int) int {
	if !c.member[b] {
		panic(fmt.Sprintf("coverage: Loss(%d): not a member", b))
	}
	loss := 0
	for _, t := range c.u.lists[b] {
		if c.counts[t] == c.k {
			loss++
		}
	}
	return loss
}

// SwapDelta returns I((S \ {out}) ∪ {in}) − I(S) without mutating the set.
// out must be a member and in must not be. The two sorted coverage lists
// are walked in a single linear merge, so the cost is
// O(deg(out) + deg(in)) — trajectories covered by both billboards keep
// their impression count and are skipped.
func (c *Counter) SwapDelta(out, in int) int {
	if !c.member[out] {
		panic(fmt.Sprintf("coverage: SwapDelta(out=%d): not a member", out))
	}
	if c.member[in] {
		panic(fmt.Sprintf("coverage: SwapDelta(in=%d): already a member", in))
	}
	outList := c.u.lists[out]
	inList := c.u.lists[in]
	delta := 0
	i, j := 0, 0
	for i < len(outList) || j < len(inList) {
		switch {
		case j == len(inList) || (i < len(outList) && outList[i] < inList[j]):
			// Covered by out only: loses an impression.
			if c.counts[outList[i]] == c.k {
				delta--
			}
			i++
		case i == len(outList) || inList[j] < outList[i]:
			// Covered by in only: gains an impression.
			if c.counts[inList[j]] == c.k-1 {
				delta++
			}
			j++
		default:
			// Covered by both: impression count unchanged.
			i++
			j++
		}
	}
	return delta
}

// Reset empties the set in O(Σ deg(member)).
func (c *Counter) Reset() {
	for b, in := range c.member {
		if in {
			c.Remove(b)
		}
	}
}

// CopyFrom overwrites this counter's state with src's, reusing the existing
// storage. Both counters must share the same universe and threshold; this
// is the allocation-free alternative to Clone for scratch counters reused
// across local-search sweeps.
func (c *Counter) CopyFrom(src *Counter) {
	if c.u != src.u || c.k != src.k {
		panic("coverage: CopyFrom across universes or thresholds")
	}
	if c == src {
		return
	}
	copy(c.counts, src.counts)
	copy(c.member, src.member)
	c.covered = src.covered
	c.size = src.size
}

// Clone returns an independent copy of the counter state.
func (c *Counter) Clone() *Counter {
	n := &Counter{
		u:       c.u,
		k:       c.k,
		counts:  make([]int32, len(c.counts)),
		covered: c.covered,
		member:  make([]bool, len(c.member)),
		size:    c.size,
	}
	copy(n.counts, c.counts)
	copy(n.member, c.member)
	return n
}

// Universe returns the universe this counter operates over.
func (c *Counter) Universe() *Universe { return c.u }
