package coverage

import (
	"testing"

	"repro/internal/rng"
)

func TestSubuniverseBasic(t *testing.T) {
	u := MustUniverse(10, []List{{0, 1}, {2, 3, 4}, {5}, {}})
	sub, err := u.Subuniverse([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumBillboards() != 2 || sub.NumTrajectories() != 10 {
		t.Fatalf("dims %d/%d", sub.NumBillboards(), sub.NumTrajectories())
	}
	// Sub-ID 0 is original billboard 2, sub-ID 1 is original 0.
	if sub.Degree(0) != 1 || sub.Degree(1) != 2 {
		t.Fatalf("degrees %d/%d", sub.Degree(0), sub.Degree(1))
	}
	if !sub.List(0).Contains(5) || !sub.List(1).Contains(0) {
		t.Fatal("lists not remapped in keep order")
	}
}

func TestSubuniverseValidation(t *testing.T) {
	u := MustUniverse(5, []List{{0}, {1}})
	if _, err := u.Subuniverse([]int{0, 0}); err == nil {
		t.Error("duplicate keep accepted")
	}
	if _, err := u.Subuniverse([]int{2}); err == nil {
		t.Error("out-of-range keep accepted")
	}
	if _, err := u.Subuniverse([]int{-1}); err == nil {
		t.Error("negative keep accepted")
	}
	empty, err := u.Subuniverse(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumBillboards() != 0 {
		t.Error("empty keep should give empty universe")
	}
}

func TestSubuniverseInfluenceInvariant(t *testing.T) {
	// Influence of any billboard set computed in the subuniverse must
	// equal its influence in the original.
	r := rng.New(606)
	u := randomUniverse(r, 300, 30, 40)
	keep := r.Perm(30)[:15]
	sub, err := u.Subuniverse(keep)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		var subSet, origSet []int
		for i := range keep {
			if r.Float64() < 0.4 {
				subSet = append(subSet, i)
				origSet = append(origSet, keep[i])
			}
		}
		if got, want := sub.UnionCount(subSet), u.UnionCount(origSet); got != want {
			t.Fatalf("trial %d: sub influence %d, original %d", trial, got, want)
		}
	}
}

func TestSubuniverseCountersWork(t *testing.T) {
	u := MustUniverse(6, []List{{0, 1}, {1, 2}, {3, 4, 5}})
	sub, err := u.Subuniverse([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(sub)
	c.Add(0) // original billboard 1
	c.Add(1) // original billboard 2
	if c.Covered() != 5 {
		t.Fatalf("covered = %d, want 5", c.Covered())
	}
}
