package coverage

import "fmt"

// Subuniverse restricts a universe to a subset of its billboards — the
// operation a host performs when part of the inventory is already leased:
// the day's allocation problem only sees the free billboards.
//
// The returned universe shares the coverage lists of the original (they are
// immutable) and exposes the kept billboards under dense IDs 0..len(keep)−1
// in the order given. The trajectory universe is unchanged, so influences
// computed in the subuniverse equal those in the original. The mapping from
// sub-IDs back to original IDs is the keep slice itself.
func (u *Universe) Subuniverse(keep []int) (*Universe, error) {
	lists := make([]List, len(keep))
	seen := make(map[int]bool, len(keep))
	sub := &Universe{
		numTrajectories: u.numTrajectories,
		numIDs:          u.numIDs,
		lists:           lists,
		weights:         u.weights,
	}
	if u.degrees != nil {
		sub.degrees = make([]int, len(keep))
	}
	for i, b := range keep {
		if b < 0 || b >= len(u.lists) {
			return nil, fmt.Errorf("coverage: keep[%d] = %d out of range [0, %d)", i, b, len(u.lists))
		}
		if seen[b] {
			return nil, fmt.Errorf("coverage: keep[%d] = %d duplicated", i, b)
		}
		seen[b] = true
		lists[i] = u.lists[b]
		d := u.Degree(b)
		if sub.degrees != nil {
			sub.degrees[i] = d
		}
		if d > sub.maxDegree {
			sub.maxDegree = d
		}
		sub.totalSupply += int64(d)
	}
	return sub, nil
}
