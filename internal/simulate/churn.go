package simulate

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// This file implements the churn replay: the delta-solve counterpart of the
// rolling-market simulator. Instead of fresh proposals competing for free
// inventory, one market lives on a fixed universe and mutates day over day —
// an advertiser leaves, another revises its demand, a new one arrives — and
// each day the replay solves the mutated market twice: cold (from scratch,
// what a host without the delta-solve path pays) and warm (seeded from the
// previous day's plan through core.WarmStart, what the daemon's PATCH +
// "warm_start": true path pays). The gap between the two eval counts is the
// operational case for incremental MROAM (DESIGN.md §16).

// ChurnConfig parameterizes a churn replay.
type ChurnConfig struct {
	// Days is the number of churn days after the seed solve. Must be >= 1.
	Days int
	// Advertisers is the seed market size. Must be >= 3 so the daily
	// remove+revise+add mix always has distinct targets.
	Advertisers int
	// DemandFraction bounds each advertiser's demand as a fraction of the
	// universe's total supply: uniform in [Lo, Hi).
	DemandFractionLo, DemandFractionHi float64
	// PaymentFactor bounds ε in L = ⌊ε·I⌋; zero values select [0.9, 1.1).
	PaymentFactorLo, PaymentFactorHi float64
	// Gamma is the unsatisfied penalty ratio of Equation 1.
	Gamma float64
	// Seed drives the seed market, the daily churn ops, and the solver.
	Seed uint64
	// Restarts is the local search restart count; 0 selects
	// core.DefaultRestarts. Cold and warm solves use the same count, so
	// their eval totals are directly comparable.
	Restarts int
	// ZoneOf and ZoneCap optionally impose the zonal regret model, as in
	// Config.
	ZoneOf  []int
	ZoneCap int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.PaymentFactorLo == 0 && c.PaymentFactorHi == 0 {
		c.PaymentFactorLo, c.PaymentFactorHi = 0.9, 1.1
	}
	if c.Restarts == 0 {
		c.Restarts = core.DefaultRestarts
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c ChurnConfig) Validate() error {
	c = c.withDefaults()
	if c.Days < 1 {
		return fmt.Errorf("simulate: churn days %d < 1", c.Days)
	}
	if c.Advertisers < 3 {
		return fmt.Errorf("simulate: churn market of %d advertisers < 3", c.Advertisers)
	}
	if c.DemandFractionLo <= 0 || c.DemandFractionHi < c.DemandFractionLo || c.DemandFractionHi > 1 {
		return fmt.Errorf("simulate: demand fraction [%v, %v) invalid", c.DemandFractionLo, c.DemandFractionHi)
	}
	if c.PaymentFactorLo <= 0 || c.PaymentFactorHi < c.PaymentFactorLo {
		return fmt.Errorf("simulate: payment factor [%v, %v) invalid", c.PaymentFactorLo, c.PaymentFactorHi)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("simulate: gamma %v outside [0, 1]", c.Gamma)
	}
	if c.Restarts < 0 {
		return fmt.Errorf("simulate: restarts %d < 0", c.Restarts)
	}
	if len(c.ZoneOf) > 0 && c.ZoneCap < 1 {
		return fmt.Errorf("simulate: zone partition set but zone cap %d < 1", c.ZoneCap)
	}
	return nil
}

// ChurnDay is the outcome of one churn day: the mutation applied and the
// cold-vs-warm cost of re-solving the mutated market.
type ChurnDay struct {
	Day         int
	Advertisers int // market size after the day's ops
	// Removed/Revised/Added count the day's ops by kind.
	Removed, Revised, Added int
	// Cold* measures the from-scratch solve of the day's market; Warm* the
	// solve seeded from the previous day's plan.
	ColdRegret, WarmRegret float64
	ColdEvals, WarmEvals   int64
	ColdMillis, WarmMillis float64
	// WarmStarted reports that the incumbent validated against the mutated
	// market and actually seeded the warm solve.
	WarmStarted bool
	// Frozen is how many advertisers the warm slot's screen excluded from
	// search.
	Frozen int
	// Matched reports that warm and cold converged to the same total
	// regret.
	Matched bool
}

// ChurnResult aggregates a churn replay.
type ChurnResult struct {
	Days []ChurnDay
	// SeedRegret/SeedEvals describe the initial cold solve that produced
	// the first incumbent (not counted in the totals below).
	SeedRegret float64
	SeedEvals  int64
	// Totals over the churn days.
	ColdEvals, WarmEvals   int64
	ColdMillis, WarmMillis float64
	MatchedDays            int
}

// ChurnReplay runs a day-over-day churn market on the universe, solving each
// mutated market cold and warm with the same BLS configuration, and carrying
// the warm plan forward as the next day's incumbent. All randomness comes
// from substreams of cfg.Seed, so two replays with the same inputs report
// identical regrets and eval counts (wall-clock excepted).
func ChurnReplay(u *coverage.Universe, cfg ChurnConfig) (*ChurnResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if u.TotalSupply() == 0 {
		return nil, fmt.Errorf("simulate: universe has zero supply")
	}
	if len(cfg.ZoneOf) > 0 && len(cfg.ZoneOf) != u.NumBillboards() {
		return nil, fmt.Errorf("simulate: zone partition covers %d billboards, universe has %d",
			len(cfg.ZoneOf), u.NumBillboards())
	}

	r := rng.New(cfg.Seed).Derive("churn")
	totalSupply := float64(u.TotalSupply())
	draw := func() core.Advertiser {
		demand := int64(r.Range(cfg.DemandFractionLo, cfg.DemandFractionHi) * totalSupply)
		if demand < 1 {
			demand = 1
		}
		payment := float64(int64(r.Range(cfg.PaymentFactorLo, cfg.PaymentFactorHi) * float64(demand)))
		if payment < 1 {
			payment = 1
		}
		return core.Advertiser{Demand: demand, Payment: payment}
	}
	build := func(advs []core.Advertiser) (*core.Instance, error) {
		inst, err := core.NewInstance(u, advs, cfg.Gamma)
		if err != nil {
			return nil, err
		}
		if len(cfg.ZoneOf) > 0 {
			zm, err := core.NewZonalModel(cfg.ZoneOf, cfg.ZoneCap)
			if err != nil {
				return nil, err
			}
			if inst, err = inst.WithModel(zm); err != nil {
				return nil, err
			}
		}
		return inst, nil
	}
	coldAlg, err := core.AlgorithmByNameOpts("BLS", core.LocalSearchOptions{Seed: cfg.Seed, Restarts: cfg.Restarts})
	if err != nil {
		return nil, err
	}

	advs := make([]core.Advertiser, cfg.Advertisers)
	for i := range advs {
		advs[i] = draw()
	}
	inst, err := build(advs)
	if err != nil {
		return nil, err
	}
	seed := core.SolveAnytime(context.Background(), coldAlg, inst)
	res := &ChurnResult{SeedRegret: seed.TotalRegret, SeedEvals: seed.Evals}
	sets := planSets(seed.Plan, len(advs))

	for day := 0; day < cfg.Days; day++ {
		dirty := make([]bool, len(advs))
		freed := false

		// The day's churn mix: one departure, one revision, one arrival —
		// market size stays constant while roughly a third of the demand
		// book turns over. The removal frees supply, so the warm screen
		// must keep under-satisfied advertisers unfrozen (DESIGN.md §16).
		ri := r.Intn(len(advs))
		advs = append(advs[:ri], advs[ri+1:]...)
		sets = append(sets[:ri], sets[ri+1:]...)
		dirty = append(dirty[:ri], dirty[ri+1:]...)
		freed = true

		vi := r.Intn(len(advs))
		revised := draw()
		advs[vi].Demand = revised.Demand
		dirty[vi] = true

		advs = append(advs, draw())
		sets = append(sets, nil)
		dirty = append(dirty, true)

		inst, err := build(advs)
		if err != nil {
			return nil, err
		}

		warmAlg, err := core.AlgorithmByNameOpts("BLS", core.LocalSearchOptions{
			Seed:     cfg.Seed,
			Restarts: cfg.Restarts,
			WarmStart: &core.WarmStart{
				Sets:        sets,
				Dirty:       dirty,
				FreedSupply: freed,
			},
		})
		if err != nil {
			return nil, err
		}
		warmStart := time.Now()
		warm := core.SolveAnytime(context.Background(), warmAlg, inst)
		warmMillis := float64(time.Since(warmStart).Microseconds()) / 1e3

		coldStart := time.Now()
		cold := core.SolveAnytime(context.Background(), coldAlg, inst)
		coldMillis := float64(time.Since(coldStart).Microseconds()) / 1e3

		d := ChurnDay{
			Day:         day + 1,
			Advertisers: len(advs),
			Removed:     1,
			Revised:     1,
			Added:       1,
			ColdRegret:  cold.TotalRegret,
			WarmRegret:  warm.TotalRegret,
			ColdEvals:   cold.Evals,
			WarmEvals:   warm.Evals,
			ColdMillis:  coldMillis,
			WarmMillis:  warmMillis,
			WarmStarted: warm.WarmStarted,
			Frozen:      warm.FrozenAdvertisers,
			Matched:     warm.TotalRegret == cold.TotalRegret,
		}
		res.Days = append(res.Days, d)
		res.ColdEvals += d.ColdEvals
		res.WarmEvals += d.WarmEvals
		res.ColdMillis += d.ColdMillis
		res.WarmMillis += d.WarmMillis
		if d.Matched {
			res.MatchedDays++
		}

		// The warm plan becomes tomorrow's incumbent — the same
		// carry-forward the daemon's incumbent store performs.
		sets = planSets(warm.Plan, len(advs))
	}
	return res, nil
}

// planSets extracts the per-advertiser billboard sets of a plan as fresh
// slices, the form core.WarmStart consumes.
func planSets(p *core.Plan, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = p.Set(i, nil)
	}
	return out
}
