// Package simulate models the operational setting that motivates the paper
// (§1): a host "needs to deal with multiple advertisers coming every day."
// Each simulated day a batch of campaign proposals arrives, the host
// allocates its currently free billboards to the day's proposals with a
// chosen MROAM algorithm, contracts occupy their billboards for a number of
// days, and payments are collected when contracts end (full payment if the
// demand was met, the γ-scaled fraction otherwise — the business model of
// Equation 1).
//
// The simulator turns the one-shot MROAM solvers into a rolling policy and
// measures what the host actually cares about over time: collected revenue,
// cumulative regret, and inventory utilization. It is the substrate behind
// examples/dailyops and the policy-comparison bench.
package simulate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// Config parameterizes a simulation.
type Config struct {
	// Days is the horizon length. Must be >= 1.
	Days int
	// ArrivalsPerDay is the expected number of proposals per day; the
	// realized count is uniform in [1, 2·ArrivalsPerDay−1]. Must be >= 1.
	ArrivalsPerDay int
	// ContractMinDays/ContractMaxDays bound each contract's duration.
	ContractMinDays, ContractMaxDays int
	// DemandFraction bounds each proposal's demand as a fraction of the
	// host's total supply I*: uniform in [Lo, Hi). Advertisers do not
	// see the host's inventory state, so demands are policy-independent;
	// the realized daily demand-supply pressure emerges from arrivals ×
	// demand against whatever inventory is currently free.
	DemandFractionLo, DemandFractionHi float64
	// PaymentFactor bounds ε in L = ⌊ε·I⌋, as in the paper (§7.1.3);
	// zero values select [0.9, 1.1).
	PaymentFactorLo, PaymentFactorHi float64
	// Gamma is the unsatisfied penalty ratio of Equation 1.
	Gamma float64
	// Seed drives arrivals and proposal noise.
	Seed uint64
	// ZoneOf and ZoneCap optionally impose the zonal regret model on every
	// daily allocation: ZoneOf maps each billboard of the full universe to
	// its zone, and no contract may count more than ZoneCap influence from
	// one zone. Empty ZoneOf (the default) runs the base model. ZoneOf is
	// indexed by the full universe's billboard IDs; Run restricts it to
	// each day's free inventory.
	ZoneOf  []int
	ZoneCap int64
}

func (c Config) withDefaults() Config {
	if c.PaymentFactorLo == 0 && c.PaymentFactorHi == 0 {
		c.PaymentFactorLo, c.PaymentFactorHi = 0.9, 1.1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Days < 1 {
		return fmt.Errorf("simulate: days %d < 1", c.Days)
	}
	if c.ArrivalsPerDay < 1 {
		return fmt.Errorf("simulate: arrivals/day %d < 1", c.ArrivalsPerDay)
	}
	if c.ContractMinDays < 1 || c.ContractMaxDays < c.ContractMinDays {
		return fmt.Errorf("simulate: contract days [%d, %d] invalid", c.ContractMinDays, c.ContractMaxDays)
	}
	if c.DemandFractionLo <= 0 || c.DemandFractionHi < c.DemandFractionLo || c.DemandFractionHi > 1 {
		return fmt.Errorf("simulate: demand fraction [%v, %v) invalid", c.DemandFractionLo, c.DemandFractionHi)
	}
	if c.PaymentFactorLo <= 0 || c.PaymentFactorHi < c.PaymentFactorLo {
		return fmt.Errorf("simulate: payment factor [%v, %v) invalid", c.PaymentFactorLo, c.PaymentFactorHi)
	}
	if c.Gamma < 0 || c.Gamma > 1 {
		return fmt.Errorf("simulate: gamma %v outside [0, 1]", c.Gamma)
	}
	if len(c.ZoneOf) > 0 && c.ZoneCap < 1 {
		return fmt.Errorf("simulate: zone partition set but zone cap %d < 1", c.ZoneCap)
	}
	return nil
}

// contract is a running engagement: the billboards (original IDs) it holds
// and the terms agreed on arrival.
type contract struct {
	demand     int64
	payment    float64
	achieved   int // influence delivered by the held billboards
	billboards []int
	endDay     int // exclusive: billboards free again on endDay
}

// DayReport is the outcome of one simulated day.
type DayReport struct {
	Day            int
	Arrived        int
	Satisfied      int     // today's proposals whose demand was met
	DayRegret      float64 // regret of today's allocation (Equation 1)
	RevenueBooked  float64 // payments that will be collected for today's contracts
	FreeBillboards int     // free inventory before today's allocation
	HeldBillboards int     // inventory locked by running contracts
}

// Result aggregates a full simulation.
type Result struct {
	Days []DayReport
	// TotalRevenue is the sum of collected payments over the horizon.
	TotalRevenue float64
	// TotalRegret is the sum of daily allocation regrets.
	TotalRegret float64
	// TotalProposals and TotalSatisfied count proposals over the horizon.
	TotalProposals int
	TotalSatisfied int
}

// Run simulates the rolling market on the universe using the algorithm as
// the daily allocation policy.
func Run(u *coverage.Universe, alg core.Algorithm, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if u.TotalSupply() == 0 {
		return nil, fmt.Errorf("simulate: universe has zero supply")
	}
	if len(cfg.ZoneOf) > 0 && len(cfg.ZoneOf) != u.NumBillboards() {
		return nil, fmt.Errorf("simulate: zone partition covers %d billboards, universe has %d",
			len(cfg.ZoneOf), u.NumBillboards())
	}
	r := rng.New(cfg.Seed).Derive("simulate")

	held := make([]bool, u.NumBillboards()) // billboard -> locked by a contract
	var active []contract
	res := &Result{}

	for day := 0; day < cfg.Days; day++ {
		// Expire contracts and collect their payments.
		kept := active[:0]
		for _, ct := range active {
			if ct.endDay <= day {
				res.TotalRevenue += collect(ct, cfg.Gamma)
				for _, b := range ct.billboards {
					held[b] = false
				}
				continue
			}
			kept = append(kept, ct)
		}
		active = kept

		// Free inventory view.
		free := make([]int, 0, u.NumBillboards())
		for b, h := range held {
			if !h {
				free = append(free, b)
			}
		}
		sub, err := u.Subuniverse(free)
		if err != nil {
			return nil, err
		}

		// Today's proposals, scaled to the total supply. All randomness
		// for the day (arrivals, demands, payments, contract duration)
		// is drawn here unconditionally, so the market is identical
		// across allocation policies run with the same seed even when
		// their inventory states diverge.
		arrivals := 1 + r.Intn(2*cfg.ArrivalsPerDay-1)
		totalSupply := float64(u.TotalSupply())
		advs := make([]core.Advertiser, 0, arrivals)
		for k := 0; k < arrivals; k++ {
			demand := int64(r.Range(cfg.DemandFractionLo, cfg.DemandFractionHi) * totalSupply)
			if demand < 1 {
				demand = 1
			}
			payment := float64(int64(r.Range(cfg.PaymentFactorLo, cfg.PaymentFactorHi) * float64(demand)))
			advs = append(advs, core.Advertiser{Demand: demand, Payment: payment})
		}
		duration := cfg.ContractMinDays
		if cfg.ContractMaxDays > cfg.ContractMinDays {
			duration += r.Intn(cfg.ContractMaxDays - cfg.ContractMinDays + 1)
		}

		report := DayReport{
			Day:            day,
			Arrived:        arrivals,
			FreeBillboards: len(free),
			HeldBillboards: u.NumBillboards() - len(free),
		}

		if len(free) > 0 && sub.TotalSupply() > 0 {
			inst, err := core.NewInstance(sub, advs, cfg.Gamma)
			if err != nil {
				return nil, err
			}
			if len(cfg.ZoneOf) > 0 {
				// Restrict the full-universe partition to today's free
				// inventory: sub-billboard i is original billboard free[i].
				zoneSub := make([]int, len(free))
				for i, b := range free {
					zoneSub[i] = cfg.ZoneOf[b]
				}
				zm, err := core.NewZonalModel(zoneSub, cfg.ZoneCap)
				if err != nil {
					return nil, err
				}
				if inst, err = inst.WithModel(zm); err != nil {
					return nil, err
				}
			}
			plan := alg.Solve(inst)
			report.DayRegret = plan.TotalRegret()

			for i := range advs {
				set := plan.Set(i, nil)
				if len(set) == 0 {
					continue // proposal declined: nothing allocated
				}
				ct := contract{
					demand:   advs[i].Demand,
					payment:  advs[i].Payment,
					achieved: plan.Influence(i),
					endDay:   day + duration,
				}
				for _, sb := range set {
					b := free[sb] // map sub-ID back to original ID
					held[b] = true
					ct.billboards = append(ct.billboards, b)
				}
				active = append(active, ct)
				report.RevenueBooked += collect(ct, cfg.Gamma)
				if plan.Satisfied(i) {
					report.Satisfied++
				}
			}
		} else {
			// No inventory: every proposal goes unserved at full regret.
			for i := range advs {
				report.DayRegret += advs[i].Payment
			}
		}

		res.Days = append(res.Days, report)
		res.TotalRegret += report.DayRegret
		res.TotalProposals += arrivals
		res.TotalSatisfied += report.Satisfied
	}

	// Collect payments of contracts still running at the horizon.
	for _, ct := range active {
		res.TotalRevenue += collect(ct, cfg.Gamma)
	}
	return res, nil
}

// collect returns the payment a finished contract yields: full payment when
// satisfied, the γ-scaled achieved fraction otherwise.
func collect(ct contract, gamma float64) float64 {
	if int64(ct.achieved) >= ct.demand {
		return ct.payment
	}
	return gamma * ct.payment * float64(ct.achieved) / float64(ct.demand)
}

// ComparePolicies runs the same market once per algorithm (same seed, so
// identical arrival sequences) and returns the results keyed by algorithm
// name — the host's "which allocator should I run nightly" question.
func ComparePolicies(u *coverage.Universe, algs []core.Algorithm, cfg Config) (map[string]*Result, error) {
	out := make(map[string]*Result, len(algs))
	for _, alg := range algs {
		res, err := Run(u, alg, cfg)
		if err != nil {
			return nil, err
		}
		out[alg.Name()] = res
	}
	return out, nil
}
