package simulate

import (
	"testing"
)

func validChurnConfig() ChurnConfig {
	return ChurnConfig{
		Days:             5,
		Advertisers:      6,
		DemandFractionLo: 0.08,
		DemandFractionHi: 0.2,
		Gamma:            0.5,
		Seed:             7,
		Restarts:         3,
	}
}

func TestChurnConfigValidate(t *testing.T) {
	if err := validChurnConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*ChurnConfig){
		func(c *ChurnConfig) { c.Days = 0 },
		func(c *ChurnConfig) { c.Advertisers = 2 },
		func(c *ChurnConfig) { c.DemandFractionLo = 0 },
		func(c *ChurnConfig) { c.DemandFractionHi = 1.5 },
		func(c *ChurnConfig) { c.DemandFractionLo = 0.3; c.DemandFractionHi = 0.2 },
		func(c *ChurnConfig) { c.PaymentFactorLo = -1; c.PaymentFactorHi = 1 },
		func(c *ChurnConfig) { c.Gamma = 1.5 },
		func(c *ChurnConfig) { c.Restarts = -1 },
		func(c *ChurnConfig) { c.ZoneOf = []int{0}; c.ZoneCap = 0 },
	}
	for i, mutate := range mutations {
		c := validChurnConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

// TestChurnReplayWarmCheaper is the headline property of the delta-solve
// path: over a churned horizon the warm-started solves must spend strictly
// fewer marginal evaluations than the cold solves of the same markets.
func TestChurnReplayWarmCheaper(t *testing.T) {
	u := testUniverse(5)
	cfg := validChurnConfig()
	res, err := ChurnReplay(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != cfg.Days {
		t.Fatalf("%d day reports, want %d", len(res.Days), cfg.Days)
	}
	if res.SeedEvals <= 0 {
		t.Fatal("seed solve reported no work")
	}
	for _, d := range res.Days {
		if !d.WarmStarted {
			t.Errorf("day %d: incumbent failed to seed the warm solve", d.Day)
		}
		if d.Advertisers != cfg.Advertisers {
			t.Errorf("day %d: market drifted to %d advertisers, want %d", d.Day, d.Advertisers, cfg.Advertisers)
		}
		if d.ColdEvals <= 0 || d.WarmEvals <= 0 {
			t.Errorf("day %d: evals cold=%d warm=%d, want both > 0", d.Day, d.ColdEvals, d.WarmEvals)
		}
	}
	if res.WarmEvals >= res.ColdEvals {
		t.Fatalf("warm solves cost %d evals, cold %d — warm must be strictly cheaper",
			res.WarmEvals, res.ColdEvals)
	}
}

// TestChurnReplayDeterministic: identical inputs must reproduce every regret
// and eval count (wall-clock excepted) — the replay is seed-driven end to
// end.
func TestChurnReplayDeterministic(t *testing.T) {
	u := testUniverse(11)
	cfg := validChurnConfig()
	cfg.Seed = 13
	a, err := ChurnReplay(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnReplay(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.SeedRegret != b.SeedRegret || a.SeedEvals != b.SeedEvals {
		t.Fatalf("seed solve diverged: (%v, %d) vs (%v, %d)",
			a.SeedRegret, a.SeedEvals, b.SeedRegret, b.SeedEvals)
	}
	for i := range a.Days {
		da, db := a.Days[i], b.Days[i]
		if da.ColdRegret != db.ColdRegret || da.WarmRegret != db.WarmRegret ||
			da.ColdEvals != db.ColdEvals || da.WarmEvals != db.WarmEvals ||
			da.Frozen != db.Frozen {
			t.Fatalf("day %d diverged between runs:\n%+v\n%+v", da.Day, da, db)
		}
	}
}

// TestChurnReplayZonal exercises the replay under the zonal model: the
// incumbent must still validate (the cap gates CanAssign during the replay)
// and the warm path must still win.
func TestChurnReplayZonal(t *testing.T) {
	u := testUniverse(5)
	cfg := validChurnConfig()
	cfg.ZoneOf = make([]int, u.NumBillboards())
	for b := range cfg.ZoneOf {
		cfg.ZoneOf[b] = b % 3
	}
	cfg.ZoneCap = int64(u.TotalSupply())
	res, err := ChurnReplay(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Days {
		if !d.WarmStarted {
			t.Errorf("day %d: zonal incumbent failed to seed the warm solve", d.Day)
		}
	}
	if res.WarmEvals >= res.ColdEvals {
		t.Fatalf("zonal warm solves cost %d evals, cold %d", res.WarmEvals, res.ColdEvals)
	}
}

// TestChurnReplayRejectsBadInputs covers the universe-level errors.
func TestChurnReplayRejectsBadInputs(t *testing.T) {
	u := testUniverse(5)
	cfg := validChurnConfig()
	cfg.ZoneOf = []int{0, 1}
	cfg.ZoneCap = 10
	if _, err := ChurnReplay(u, cfg); err == nil {
		t.Fatal("mismatched zone partition accepted")
	}
	cfg = validChurnConfig()
	cfg.Days = 0
	if _, err := ChurnReplay(u, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}
