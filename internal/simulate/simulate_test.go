package simulate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/rng"
)

// testUniverse builds a moderately overlapping universe for the simulator.
func testUniverse(seed uint64) *coverage.Universe {
	r := rng.New(seed)
	lists := make([]coverage.List, 40)
	for b := range lists {
		deg := 5 + r.Intn(40)
		ids := make([]int32, deg)
		for i := range ids {
			ids[i] = int32(r.Intn(800))
		}
		lists[b] = coverage.NewList(ids)
	}
	return coverage.MustUniverse(800, lists)
}

func validConfig() Config {
	return Config{
		Days:             20,
		ArrivalsPerDay:   3,
		ContractMinDays:  2,
		ContractMaxDays:  5,
		DemandFractionLo: 0.05,
		DemandFractionHi: 0.15,
		Gamma:            0.5,
		Seed:             9,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.ArrivalsPerDay = 0 },
		func(c *Config) { c.ContractMinDays = 0 },
		func(c *Config) { c.ContractMaxDays = 1; c.ContractMinDays = 3 },
		func(c *Config) { c.DemandFractionLo = 0 },
		func(c *Config) { c.DemandFractionHi = 1.5 },
		func(c *Config) { c.DemandFractionLo = 0.3; c.DemandFractionHi = 0.2 },
		func(c *Config) { c.PaymentFactorLo = -1; c.PaymentFactorHi = 1 },
		func(c *Config) { c.Gamma = 1.5 },
		func(c *Config) { c.Gamma = -0.1 },
	}
	for i, mutate := range mutations {
		c := validConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

func TestRunBasicInvariants(t *testing.T) {
	u := testUniverse(5)
	res, err := Run(u, core.GGlobalAlgorithm{}, validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 20 {
		t.Fatalf("%d day reports, want 20", len(res.Days))
	}
	if res.TotalRevenue <= 0 {
		t.Error("no revenue collected over 20 days")
	}
	if res.TotalProposals < 20 {
		t.Errorf("TotalProposals = %d, want >= days", res.TotalProposals)
	}
	if res.TotalSatisfied > res.TotalProposals {
		t.Error("satisfied exceeds proposals")
	}
	arrivedSum, satSum := 0, 0
	for i, d := range res.Days {
		if d.Day != i {
			t.Fatalf("day %d labeled %d", i, d.Day)
		}
		if d.Arrived < 1 || d.Arrived > 5 { // 1..2·3−1
			t.Fatalf("day %d arrivals %d outside [1, 5]", i, d.Arrived)
		}
		if d.FreeBillboards+d.HeldBillboards != u.NumBillboards() {
			t.Fatalf("day %d inventory accounting wrong", i)
		}
		if d.DayRegret < 0 || d.RevenueBooked < 0 {
			t.Fatalf("day %d negative metrics", i)
		}
		arrivedSum += d.Arrived
		satSum += d.Satisfied
	}
	if arrivedSum != res.TotalProposals || satSum != res.TotalSatisfied {
		t.Error("aggregates do not match day reports")
	}
}

func TestRunDeterministic(t *testing.T) {
	u := testUniverse(5)
	a, err := Run(u, core.GGlobalAlgorithm{}, validConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(u, core.GGlobalAlgorithm{}, validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRevenue != b.TotalRevenue || a.TotalRegret != b.TotalRegret {
		t.Fatal("same seed produced different simulations")
	}
}

func TestRevenueBookedMatchesCollected(t *testing.T) {
	// Every booked payment is eventually collected (contracts that cross
	// the horizon are settled at the end), so totals must match.
	u := testUniverse(6)
	res, err := Run(u, core.GGlobalAlgorithm{}, validConfig())
	if err != nil {
		t.Fatal(err)
	}
	booked := 0.0
	for _, d := range res.Days {
		booked += d.RevenueBooked
	}
	if math.Abs(booked-res.TotalRevenue) > 1e-6 {
		t.Fatalf("booked %v != collected %v", booked, res.TotalRevenue)
	}
}

func TestInventoryLocking(t *testing.T) {
	// With long contracts and heavy demand, held inventory must build up
	// across the first days.
	u := testUniverse(7)
	cfg := validConfig()
	cfg.ContractMinDays, cfg.ContractMaxDays = 10, 10
	cfg.DemandFractionLo, cfg.DemandFractionHi = 0.2, 0.4
	res, err := Run(u, core.GGlobalAlgorithm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Days[0].HeldBillboards != 0 {
		t.Error("day 0 should start with all inventory free")
	}
	if res.Days[3].HeldBillboards == 0 {
		t.Error("inventory should be locked after heavy demand days")
	}
}

func TestZeroSupplyUniverse(t *testing.T) {
	u := coverage.MustUniverse(10, []coverage.List{{}, {}})
	if _, err := Run(u, core.GGlobalAlgorithm{}, validConfig()); err == nil {
		t.Fatal("zero-supply universe accepted")
	}
}

func TestComparePoliciesSameMarket(t *testing.T) {
	u := testUniverse(8)
	cfg := validConfig()
	cfg.Days = 10
	algs := []core.Algorithm{
		core.GOrderAlgorithm{},
		core.GGlobalAlgorithm{},
		core.BLSAlgorithm{Opts: core.LocalSearchOptions{Restarts: 1, Seed: 1}},
	}
	results, err := ComparePolicies(u, algs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	// Same seed → identical arrival sequences → proposal counts match.
	n := results["G-Order"].TotalProposals
	for name, res := range results {
		if res.TotalProposals != n {
			t.Fatalf("%s saw %d proposals, others %d — arrivals not policy-independent",
				name, res.TotalProposals, n)
		}
	}
	// The better allocator should not collect less revenue than the
	// worst one by a large margin; in particular BLS's daily regret sum
	// should not exceed G-Global's (it starts from G-Global's plan).
	if results["BLS"].TotalRegret > results["G-Global"].TotalRegret+1e-6 {
		t.Errorf("BLS rolling regret %v > G-Global %v",
			results["BLS"].TotalRegret, results["G-Global"].TotalRegret)
	}
}

func TestCollectFunction(t *testing.T) {
	full := contract{demand: 100, payment: 50, achieved: 100}
	if collect(full, 0.5) != 50 {
		t.Error("satisfied contract should collect full payment")
	}
	over := contract{demand: 100, payment: 50, achieved: 130}
	if collect(over, 0.5) != 50 {
		t.Error("over-satisfied contract should collect exactly full payment")
	}
	half := contract{demand: 100, payment: 50, achieved: 50}
	if got := collect(half, 0.5); got != 12.5 {
		t.Errorf("half-satisfied at γ=0.5 collected %v, want 12.5", got)
	}
	if got := collect(half, 0); got != 0 {
		t.Errorf("γ=0 unsatisfied collected %v, want 0", got)
	}
}

func TestGammaExtremesRevenue(t *testing.T) {
	// γ=0: unsatisfied contracts pay nothing, so revenue only comes from
	// satisfied ones; γ=1 collects the most for the same plan quality.
	u := testUniverse(9)
	base := validConfig()
	base.Days = 8

	cfg0 := base
	cfg0.Gamma = 0
	r0, err := Run(u, core.GGlobalAlgorithm{}, cfg0)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := base
	cfg1.Gamma = 1
	r1, err := Run(u, core.GGlobalAlgorithm{}, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	// Same arrivals (same seed), allocation plans may differ slightly
	// because γ enters the greedy criterion, but the partial-payment
	// credit should not make γ=1 collect less than γ=0 by a wide margin.
	if r1.TotalRevenue < r0.TotalRevenue*0.9 {
		t.Fatalf("γ=1 revenue %v far below γ=0 revenue %v", r1.TotalRevenue, r0.TotalRevenue)
	}
}

func TestSimulationSingleDay(t *testing.T) {
	u := testUniverse(10)
	cfg := validConfig()
	cfg.Days = 1
	res, err := Run(u, core.GOrderAlgorithm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 1 || res.Days[0].HeldBillboards != 0 {
		t.Fatal("single-day simulation malformed")
	}
}

func TestSimulationLongHorizonStable(t *testing.T) {
	// A 100-day horizon must terminate, keep collecting revenue, and
	// never leak inventory (held + free == total each day).
	u := testUniverse(11)
	cfg := validConfig()
	cfg.Days = 100
	res, err := Run(u, core.GGlobalAlgorithm{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Days {
		if d.FreeBillboards+d.HeldBillboards != u.NumBillboards() {
			t.Fatalf("day %d inventory leak", d.Day)
		}
	}
	if res.TotalRevenue <= 0 {
		t.Fatal("no revenue over 100 days")
	}
}
